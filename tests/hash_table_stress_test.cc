// Stress tests for the core package's "Enhanced Functionality" guarantees:
//   * "Inserts never fail because too many keys hash to the same value."
//   * "Inserts never fail because key and/or associated data is too large."
//   * "Hash functions may be user-specified."
// plus behaviour under every built-in hash function and under severe
// memory pressure.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/core/hash_table.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

// A worst-case "user-supplied" hash: every key collides completely.
uint32_t ConstantHash(const void*, size_t) { return 0x12345678; }

TEST(HashTableCollisionStress, InsertsNeverFailWhenEveryKeyCollides) {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  opts.cachesize = 256 * 1024;
  opts.custom_hash = &ConstantHash;  // dbm would die here; the package must not
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  constexpr int kCount = 2000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_OK(table->Put("collide-" + std::to_string(i), "value-" + std::to_string(i)))
        << "insert " << i;
  }
  EXPECT_EQ(table->size(), static_cast<uint64_t>(kCount));
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (int i = 0; i < kCount; i += 17) {
    ASSERT_OK(table->Get("collide-" + std::to_string(i), &value));
    ASSERT_EQ(value, "value-" + std::to_string(i));
  }
  // Everything hashed to one bucket: one enormous chain.
  EXPECT_GT(table->stats().ovfl_pages_alloced - table->stats().ovfl_pages_freed, 50u);
  // Deletes and a scan still work on the degenerate chain.
  for (int i = 0; i < kCount; i += 2) {
    ASSERT_OK(table->Delete("collide-" + std::to_string(i)));
  }
  ASSERT_OK(table->CheckIntegrity());
  size_t scanned = 0;
  std::string k, v;
  Status st = table->Seq(&k, &v, true);
  while (st.ok()) {
    ++scanned;
    st = table->Seq(&k, &v, false);
  }
  EXPECT_EQ(scanned, table->size());
}

TEST(HashTableCollisionStress, ClusteringHashStillCorrect) {
  // identity4 clusters shared prefixes into shared buckets — terrible but
  // legal; correctness must hold.
  HashOptions opts;
  opts.bsize = 128;
  opts.ffactor = 4;
  opts.hash_id = HashFuncId::kIdentity4;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  std::map<std::string, std::string> model;
  Rng rng(41);
  for (int i = 0; i < 1500; ++i) {
    // Many keys share 4-byte prefixes.
    const std::string key = std::string("pfx") + static_cast<char>('a' + i % 7) +
                            rng.AsciiString(8);
    const std::string value = std::to_string(i);
    ASSERT_OK(table->Put(key, value));
    model[key] = value;
  }
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

class HashTableFunctionSweep : public ::testing::TestWithParam<HashFuncId> {};

TEST_P(HashTableFunctionSweep, FullWorkloadUnderEveryBuiltinFunction) {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  opts.hash_id = GetParam();
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  std::map<std::string, std::string> model;
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  for (int step = 0; step < 2500; ++step) {
    const std::string key = "s" + std::to_string(rng.Uniform(400));
    if (rng.Bernoulli(0.7)) {
      const std::string value = rng.ByteString(rng.Range(0, 50));
      ASSERT_OK(table->Put(key, value));
      model[key] = value;
    } else {
      const Status st = table->Delete(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
  }
  ASSERT_OK(table->CheckIntegrity());
  ASSERT_EQ(table->size(), model.size());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value));
    ASSERT_EQ(value, v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, HashTableFunctionSweep,
                         ::testing::ValuesIn(kAllHashFuncIds),
                         [](const ::testing::TestParamInfo<HashFuncId>& param_info) {
                           return std::string(HashFuncName(param_info.param));
                         });

TEST(HashTableLargePairs, HugePairsUnderTinyCache) {
  // Big pairs whose chains dwarf the buffer pool: the pool must spill and
  // reload without corruption.
  HashOptions opts;
  opts.bsize = 128;
  opts.ffactor = 4;
  opts.cachesize = 1024;  // ~8 frames for multi-page chains
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  Rng rng(17);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "huge-" + std::to_string(i);
    const std::string value = rng.ByteString(rng.Range(5000, 30000));
    ASSERT_OK(table->Put(key, value));
    model[key] = value;
  }
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
  EXPECT_GT(table->pool_stats().evictions, 100u);  // the pool really spilled
}

TEST(HashTableLargePairs, PairLargerThanWholeCacheRoundTrips) {
  HashOptions opts;
  opts.bsize = 256;
  opts.cachesize = 2048;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  const std::string value(1 << 20, 'M');  // 1 MB pair, 2 KB cache
  ASSERT_OK(table->Put("megabyte", value));
  std::string out;
  ASSERT_OK(table->Get("megabyte", &out));
  EXPECT_EQ(out, value);
  ASSERT_OK(table->CheckIntegrity());
}

TEST(HashTableChurn, AlternatingGrowShrinkKeepsIntegrity) {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 1500; ++i) {
      ASSERT_OK(table->Put("cycle-" + std::to_string(i), std::to_string(round)));
    }
    ASSERT_OK(table->CheckIntegrity()) << "round " << round << " after grow";
    for (int i = 0; i < 1500; ++i) {
      ASSERT_OK(table->Delete("cycle-" + std::to_string(i)));
    }
    ASSERT_OK(table->CheckIntegrity()) << "round " << round << " after shrink";
    EXPECT_EQ(table->size(), 0u);
  }
  // The footnote's point: the file does not contract, so the bucket count
  // reflects the high-water mark, not the (empty) current population.
  EXPECT_GT(table->bucket_count(), 100u);
}

TEST(HashTableDiskStress, ThousandsOfPairsOnRealFileWithSmallCache) {
  const std::string path = TempPath("disk_stress");
  HashOptions opts;
  opts.bsize = 512;
  opts.ffactor = 16;
  opts.cachesize = 4096;  // force constant I/O
  std::map<std::string, std::string> model;
  {
    auto table = std::move(HashTable::Open(path, opts, true).value());
    Rng rng(23);
    for (int i = 0; i < 5000; ++i) {
      const std::string key = "d" + std::to_string(i);
      const std::string value = rng.ByteString(rng.Range(10, 100));
      ASSERT_OK(table->Put(key, value));
      model[key] = value;
    }
    ASSERT_OK(table->Sync());
    EXPECT_GT(table->file_stats().writes, 1000u);  // really hit the disk
  }
  auto table = std::move(HashTable::Open(path, opts).value());
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

}  // namespace
}  // namespace hashkit
