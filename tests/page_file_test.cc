// Unit tests for the page-file backends (src/pagefile/page_file.h).

#include "src/pagefile/page_file.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace hashkit {
namespace {

enum class Backend { kDisk, kMem, kTemp };

class PageFileTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<PageFile> Open(size_t page_size) {
    switch (GetParam()) {
      case Backend::kDisk: {
        auto result = OpenDiskPageFile(TempPath("pagefile"), page_size, /*truncate=*/true);
        EXPECT_TRUE(result.ok());
        return std::move(result).value();
      }
      case Backend::kMem:
        return MakeMemPageFile(page_size);
      case Backend::kTemp: {
        auto result = OpenTempPageFile(page_size);
        EXPECT_TRUE(result.ok());
        return std::move(result).value();
      }
    }
    return nullptr;
  }
};

TEST_P(PageFileTest, WriteThenReadBack) {
  auto file = Open(256);
  std::vector<uint8_t> page(256, 0x5a);
  ASSERT_OK(file->WritePage(3, page));
  std::vector<uint8_t> out(256);
  ASSERT_OK(file->ReadPage(3, out));
  EXPECT_EQ(out, page);
  EXPECT_EQ(file->PageCount(), 4u);
}

TEST_P(PageFileTest, UnwrittenPagesReadAsZero) {
  auto file = Open(128);
  std::vector<uint8_t> page(128, 0xff);
  ASSERT_OK(file->WritePage(10, page));  // pages 0..9 are holes
  std::vector<uint8_t> out(128, 1);
  ASSERT_OK(file->ReadPage(5, out));
  EXPECT_EQ(out, std::vector<uint8_t>(128, 0));
  // Beyond EOF too.
  std::fill(out.begin(), out.end(), 1);
  ASSERT_OK(file->ReadPage(99, out));
  EXPECT_EQ(out, std::vector<uint8_t>(128, 0));
}

TEST_P(PageFileTest, OverwriteReplacesContent) {
  auto file = Open(64);
  std::vector<uint8_t> first(64, 1);
  std::vector<uint8_t> second(64, 2);
  ASSERT_OK(file->WritePage(0, first));
  ASSERT_OK(file->WritePage(0, second));
  std::vector<uint8_t> out(64);
  ASSERT_OK(file->ReadPage(0, out));
  EXPECT_EQ(out, second);
  EXPECT_EQ(file->PageCount(), 1u);
}

TEST_P(PageFileTest, SizeMismatchRejected) {
  auto file = Open(256);
  std::vector<uint8_t> wrong(128);
  EXPECT_FALSE(file->WritePage(0, wrong).ok());
  EXPECT_FALSE(file->ReadPage(0, std::span<uint8_t>(wrong)).ok());
}

TEST_P(PageFileTest, StatsCountOperations) {
  auto file = Open(64);
  std::vector<uint8_t> page(64, 7);
  ASSERT_OK(file->WritePage(0, page));
  ASSERT_OK(file->WritePage(1, page));
  ASSERT_OK(file->ReadPage(0, std::span<uint8_t>(page)));
  ASSERT_OK(file->ReadPage(9, std::span<uint8_t>(page)));  // zero-fill
  ASSERT_OK(file->Sync());
  EXPECT_EQ(file->stats().writes, 2u);
  EXPECT_EQ(file->stats().reads + file->stats().zero_fills, 2u);
  EXPECT_EQ(file->stats().zero_fills, 1u);
  EXPECT_EQ(file->stats().syncs, 1u);
  file->ResetStats();
  EXPECT_EQ(file->stats().writes, 0u);
}

TEST_P(PageFileTest, ManyPagesRoundTrip) {
  auto file = Open(128);
  for (uint64_t p = 0; p < 200; ++p) {
    std::vector<uint8_t> page(128, static_cast<uint8_t>(p));
    ASSERT_OK(file->WritePage(p, page));
  }
  for (uint64_t p = 0; p < 200; ++p) {
    std::vector<uint8_t> out(128);
    ASSERT_OK(file->ReadPage(p, out));
    EXPECT_EQ(out[0], static_cast<uint8_t>(p));
    EXPECT_EQ(out[127], static_cast<uint8_t>(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, PageFileTest,
                         ::testing::Values(Backend::kDisk, Backend::kMem, Backend::kTemp),
                         [](const ::testing::TestParamInfo<Backend>& param_info) {
                           switch (param_info.param) {
                             case Backend::kDisk:
                               return "Disk";
                             case Backend::kMem:
                               return "Mem";
                             case Backend::kTemp:
                               return "Temp";
                           }
                           return "Unknown";
                         });

TEST(DiskPageFileTest, PersistsAcrossReopen) {
  const std::string path = TempPath("persist_pf");
  {
    auto file = std::move(OpenDiskPageFile(path, 256, true).value());
    std::vector<uint8_t> page(256, 0x42);
    ASSERT_OK(file->WritePage(7, page));
    ASSERT_OK(file->Sync());
  }
  auto file = std::move(OpenDiskPageFile(path, 256, false).value());
  EXPECT_EQ(file->PageCount(), 8u);
  std::vector<uint8_t> out(256);
  ASSERT_OK(file->ReadPage(7, out));
  EXPECT_EQ(out[0], 0x42);
}

TEST(DiskPageFileTest, TruncateDiscardsContents) {
  const std::string path = TempPath("trunc_pf");
  {
    auto file = std::move(OpenDiskPageFile(path, 256, true).value());
    std::vector<uint8_t> page(256, 0x42);
    ASSERT_OK(file->WritePage(0, page));
  }
  auto file = std::move(OpenDiskPageFile(path, 256, true).value());
  EXPECT_EQ(file->PageCount(), 0u);
}

TEST(DiskPageFileTest, ZeroPageSizeRejected) {
  EXPECT_FALSE(OpenDiskPageFile(TempPath("zero_pf"), 0, true).ok());
  EXPECT_FALSE(OpenTempPageFile(0).ok());
}

}  // namespace
}  // namespace hashkit
