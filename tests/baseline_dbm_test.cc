// Tests for the dbm-family baselines (ndbm and sdbm clones), including the
// historical failure modes the paper criticizes.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "src/baselines/ndbm/ndbm.h"
#include "src/baselines/sdbm/sdbm.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace baseline {
namespace {

enum class Flavor { kNdbm, kSdbm };

class DbmFamilyTest : public ::testing::TestWithParam<Flavor> {
 protected:
  std::unique_ptr<DbmBase> Open(const std::string& tag, uint32_t block_size = 1024,
                                bool truncate = true) {
    const std::string path = TempPath(tag);
    if (GetParam() == Flavor::kNdbm) {
      auto result = NdbmClone::Open(path, block_size, truncate);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      return std::move(result).value();
    }
    auto result = SdbmClone::Open(path, block_size, truncate);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  // Reopen needs the same path; keep it around.
  std::string last_path_;
};

TEST_P(DbmFamilyTest, StoreFetchRemove) {
  auto db = Open("basic");
  ASSERT_OK(db->Store("alpha", "one", /*replace=*/true));
  ASSERT_OK(db->Store("beta", "two", true));
  std::string value;
  ASSERT_OK(db->Fetch("alpha", &value));
  EXPECT_EQ(value, "one");
  ASSERT_OK(db->Remove("alpha"));
  EXPECT_TRUE(db->Fetch("alpha", &value).IsNotFound());
  EXPECT_TRUE(db->Remove("alpha").IsNotFound());
  EXPECT_EQ(db->size(), 1u);
}

TEST_P(DbmFamilyTest, InsertModeRefusesDuplicates) {
  auto db = Open("dup");
  ASSERT_OK(db->Store("k", "v1", /*replace=*/false));
  EXPECT_TRUE(db->Store("k", "v2", false).IsExists());
  ASSERT_OK(db->Store("k", "v2", true));
  std::string value;
  ASSERT_OK(db->Fetch("k", &value));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(db->size(), 1u);
}

TEST_P(DbmFamilyTest, ThousandsOfKeysSplitCorrectly) {
  auto db = Open("many");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string value = "value-" + std::to_string(i * 13);
    ASSERT_OK(db->Store(key, value, true));
    model[key] = value;
  }
  EXPECT_GT(db->stats().splits, 10u);
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(db->Fetch(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

TEST_P(DbmFamilyTest, SeqEnumeratesEveryPairOnce) {
  auto db = Open("seq");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "s" + std::to_string(i);
    ASSERT_OK(db->Store(key, std::to_string(i), true));
    model[key] = std::to_string(i);
  }
  std::map<std::string, std::string> seen;
  std::string k, v;
  Status st = db->Seq(&k, &v, true);
  while (st.ok()) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate " << k;
    st = db->Seq(&k, &v, false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, model);
}

TEST_P(DbmFamilyTest, OversizedPairRejected) {
  // The shortcoming the paper fixes: "dbm cannot store data items whose
  // total key and data size exceed the page size".
  auto db = Open("oversize", /*block_size=*/256);
  const std::string big(300, 'x');
  EXPECT_TRUE(db->Store("big", big, true).IsFull());
  // An exactly-fitting pair still works.
  const std::string fits(256 - 8 - 4 - 3, 'y');
  EXPECT_OK(db->Store("big", fits, true));
}

TEST_P(DbmFamilyTest, CollidingKeysExceedingBlockFail) {
  // Second historical shortcoming: keys with identical hash values whose
  // total size exceeds one block cannot all be stored (splitting can never
  // separate them).
  auto db = Open("collide", /*block_size=*/256);
  // Build keys with identical hash values by brute force.
  const HashFn fn = GetParam() == Flavor::kNdbm ? &HashThompson : &HashSdbm;
  std::map<uint32_t, std::vector<std::string>> by_hash;
  std::vector<std::string> colliders;
  Rng rng(5);
  for (int i = 0; i < 4000000 && colliders.empty(); ++i) {
    std::string key = rng.AsciiString(6);
    auto& bucket = by_hash[fn(key.data(), key.size())];
    if (std::find(bucket.begin(), bucket.end(), key) == bucket.end()) {
      bucket.push_back(key);
    }
    if (bucket.size() >= 4) {
      colliders = bucket;
    }
  }
  if (colliders.empty()) {
    GTEST_SKIP() << "no 4-way hash collision found in budget";
  }
  const std::string value(80, 'z');  // 4 pairs x ~90 bytes > 248 usable
  Status last = Status::Ok();
  for (const std::string& key : colliders) {
    last = db->Store(key, value, true);
    if (!last.ok()) {
      break;
    }
  }
  EXPECT_TRUE(last.IsFull()) << "expected the colliding set to overflow the block";
}

TEST_P(DbmFamilyTest, PersistsAcrossReopen) {
  const std::string path = TempPath("dbm_persist");
  std::map<std::string, std::string> model;
  {
    std::unique_ptr<DbmBase> db;
    if (GetParam() == Flavor::kNdbm) {
      db = std::move(NdbmClone::Open(path, 1024, true).value());
    } else {
      db = std::move(SdbmClone::Open(path, 1024, true).value());
    }
    for (int i = 0; i < 1000; ++i) {
      const std::string key = "p" + std::to_string(i);
      ASSERT_OK(db->Store(key, std::to_string(i), true));
      model[key] = std::to_string(i);
    }
    ASSERT_OK(db->Sync());
  }
  std::unique_ptr<DbmBase> db;
  if (GetParam() == Flavor::kNdbm) {
    db = std::move(NdbmClone::Open(path, 1024, false).value());
  } else {
    db = std::move(SdbmClone::Open(path, 1024, false).value());
  }
  EXPECT_EQ(db->size(), model.size());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(db->Fetch(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

TEST_P(DbmFamilyTest, RandomOpsMatchReference) {
  auto db = Open("prop");
  Rng rng(GetParam() == Flavor::kNdbm ? 21 : 22);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 3000; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(300));
    const uint64_t op = rng.Uniform(10);
    if (op < 6) {
      const std::string value = rng.AsciiString(rng.Range(0, 60));
      ASSERT_OK(db->Store(key, value, true));
      model[key] = value;
    } else if (op < 8) {
      const Status st = db->Remove(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      std::string value;
      const Status st = db->Fetch(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
  }
  EXPECT_EQ(db->size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Flavors, DbmFamilyTest,
                         ::testing::Values(Flavor::kNdbm, Flavor::kSdbm),
                         [](const ::testing::TestParamInfo<Flavor>& param_info) {
                           return param_info.param == Flavor::kNdbm ? "ndbm" : "sdbm";
                         });

// The two databases are incompatible at the file level (different access
// and hash functions), as the paper notes.
TEST(DbmIncompatibilityTest, NdbmFileIsNotReadableAsSdbm) {
  const std::string path = TempPath("cross");
  {
    auto db = std::move(NdbmClone::Open(path, 1024, true).value());
    for (int i = 0; i < 500; ++i) {
      ASSERT_OK(db->Store("x" + std::to_string(i), "v", true));
    }
    ASSERT_OK(db->Sync());
  }
  auto db = std::move(SdbmClone::Open(path, 1024, false).value());
  // Some keys will happen to land right, but a large fraction must miss.
  int misses = 0;
  std::string value;
  for (int i = 0; i < 500; ++i) {
    if (!db->Fetch("x" + std::to_string(i), &value).ok()) {
      ++misses;
    }
  }
  EXPECT_GT(misses, 100);
}

}  // namespace
}  // namespace baseline
}  // namespace hashkit
