// Concurrency tests for the SynchronizedStore decorator: many threads
// hammering a shared store must neither race nor lose updates.

#include "src/kv/synchronized.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace kv {
namespace {

std::unique_ptr<KvStore> MakeSharedStore(StoreKind kind, const std::string& tag) {
  StoreOptions options;
  options.path = TempPath("sync_" + tag);
  options.page_size = 512;
  options.cachesize = 1024 * 1024;
  auto opened = OpenStore(kind, options);
  EXPECT_TRUE(opened.ok());
  return MakeSynchronized(std::move(opened).value());
}

TEST(SynchronizedStoreTest, ParallelDisjointWriters) {
  auto store = MakeSharedStore(StoreKind::kHashMemory, "disjoint");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        EXPECT_TRUE(store->Put(key, std::to_string(t * 100000 + i)).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store->Size(), static_cast<uint64_t>(kThreads) * kPerThread);
  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; i += 111) {
      const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_OK(store->Get(key, &value)) << key;
      ASSERT_EQ(value, std::to_string(t * 100000 + i));
    }
  }
}

TEST(SynchronizedStoreTest, MixedReadersWritersDeleters) {
  auto store = MakeSharedStore(StoreKind::kHashDisk, "mixed");
  // Preload a shared keyspace.
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(store->Put("shared" + std::to_string(i), "init"));
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      std::string value;
      for (int i = 0; i < 4000; ++i) {
        const std::string key = "shared" + std::to_string(rng.Uniform(500));
        const uint64_t op = rng.Uniform(10);
        if (op < 5) {
          const Status st = store->Get(key, &value);
          if (!st.ok() && !st.IsNotFound()) {
            ++read_errors;
          }
        } else if (op < 8) {
          if (!store->Put(key, "w" + std::to_string(i)).ok()) {
            ++read_errors;
          }
        } else {
          const Status st = store->Delete(key);
          if (!st.ok() && !st.IsNotFound()) {
            ++read_errors;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  stop = true;
  EXPECT_EQ(read_errors.load(), 0u);
  ASSERT_OK(store->Sync());
}

TEST(SynchronizedStoreTest, LostUpdateCheckViaCounters) {
  // Each thread increments its own counter key in read-modify-write style;
  // with external locking around the RMW the final counts must be exact.
  auto store = MakeSharedStore(StoreKind::kBtree, "counters");
  std::mutex rmw_mu;  // RMW atomicity is the application's job; store
                      // serialization alone keeps structures safe.
  constexpr int kThreads = 6;
  constexpr int kIncrements = 1000;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_OK(store->Put("counter" + std::to_string(t), "0"));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string key = "counter" + std::to_string(t % 3);  // contended
      for (int i = 0; i < kIncrements; ++i) {
        const std::lock_guard<std::mutex> lock(rmw_mu);
        std::string value;
        EXPECT_TRUE(store->Get(key, &value).ok());
        EXPECT_TRUE(store->Put(key, std::to_string(std::stoll(value) + 1)).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  long long total = 0;
  std::string value;
  for (int c = 0; c < 3; ++c) {
    ASSERT_OK(store->Get("counter" + std::to_string(c), &value));
    total += std::stoll(value);
  }
  EXPECT_EQ(total, static_cast<long long>(kThreads) * kIncrements);
}

// A store that reports how many Get calls ever overlap in time, and lets
// the test choose what Capabilities::concurrent_reads claims.  Used to
// prove which lock the wrapper takes: under the exclusive fallback two
// Gets can never overlap; under shared-lock reads they can.
class ConcurrencyCountingStore final : public KvStore {
 public:
  explicit ConcurrencyCountingStore(bool concurrent_reads)
      : concurrent_reads_(concurrent_reads) {}

  Status Put(std::string_view, std::string_view, bool) override { return Status::Ok(); }
  Status Get(std::string_view, std::string* value) override {
    const int now = active_gets_.fetch_add(1, std::memory_order_acq_rel) + 1;
    int seen = max_concurrent_gets_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_concurrent_gets_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    // Park long enough that overlapping callers are actually observed
    // overlapping (sleeping releases the CPU, so this works single-core).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    active_gets_.fetch_sub(1, std::memory_order_acq_rel);
    if (value != nullptr) {
      *value = "v";
    }
    return Status::Ok();
  }
  Status Delete(std::string_view) override { return Status::Ok(); }
  Status Scan(std::string*, std::string*, bool) override { return Status::NotFound(); }
  Status Sync() override { return Status::Ok(); }
  uint64_t Size() const override { return 0; }
  std::string Name() const override { return "counting-mock"; }
  Capabilities Caps() const override {
    Capabilities caps;
    caps.concurrent_reads = concurrent_reads_;
    return caps;
  }

  int max_concurrent_gets() const { return max_concurrent_gets_.load(); }

 private:
  const bool concurrent_reads_;
  std::atomic<int> active_gets_{0};
  std::atomic<int> max_concurrent_gets_{0};
};

int MaxObservedGetConcurrency(bool concurrent_reads) {
  auto base = std::make_unique<ConcurrencyCountingStore>(concurrent_reads);
  ConcurrencyCountingStore* counter = base.get();
  const auto store = MakeSynchronized(std::move(base));
  constexpr int kThreads = 4;
  constexpr int kGetsPerThread = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      std::string value;
      for (int i = 0; i < kGetsPerThread; ++i) {
        EXPECT_TRUE(store->Get("k", &value).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  return counter->max_concurrent_gets();
}

TEST(SynchronizedStoreTest, ExclusiveFallbackWhenBaseLacksConcurrentReads) {
  // concurrent_reads=false: the wrapper must take the exclusive lock for
  // Get, so the base store never sees two readers at once.
  EXPECT_EQ(MaxObservedGetConcurrency(/*concurrent_reads=*/false), 1);
}

TEST(SynchronizedStoreTest, SharedReadsWhenBaseAllowsThem) {
  // concurrent_reads=true: the shared lock must let readers overlap (each
  // Get parks 20 ms; with 4 threads x 5 gets an overlap is certain unless
  // reads serialize).
  EXPECT_GT(MaxObservedGetConcurrency(/*concurrent_reads=*/true), 1);
}

TEST(SynchronizedStoreTest, NamePreservesBase) {
  auto store = MakeSharedStore(StoreKind::kHashMemory, "name");
  EXPECT_EQ(store->Name(), "hash(mem)+sync");
  EXPECT_TRUE(store->Caps().grows);
}

}  // namespace
}  // namespace kv
}  // namespace hashkit
