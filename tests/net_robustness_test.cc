// Protocol-robustness tests: feed truncated, oversized, and garbage frames
// to a live server over raw sockets and assert the server answers with an
// error frame, closes the connection, counts the abuse, keeps serving
// other clients, and neither crashes nor leaks (run under ASan via the
// sanitize config, label `net`).  Also the client-deadline tests: a server
// that accepts but never answers, never reads, or never completes the
// handshake must surface Status::Timeout in bounded time, not hang.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/util/endian.h"
#include "src/util/histogram.h"
#include "tests/test_util.h"

namespace hashkit {
namespace net {
namespace {

// A raw TCP connection with a receive timeout, so a misbehaving server
// fails the test instead of hanging it.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct timeval tv = {10, 0};
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  bool connected() const { return connected_; }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until one Response decodes, EOF, or timeout.  Returns true with
  // the frame in `*out`; false means the stream ended first (`*eof`).
  bool ReadResponse(Response* out, bool* eof) {
    *eof = false;
    std::string buf;
    char chunk[4096];
    for (;;) {
      size_t consumed = 0;
      std::string error;
      if (DecodeResponse(&buf, out, &consumed, &error) == DecodeResult::kFrame) {
        return true;
      }
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        *eof = (n == 0);
        return false;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
  }

  // True when the peer has closed (read returns 0 within the timeout).
  bool AtEof() {
    char byte;
    const ssize_t n = ::read(fd_, &byte, 1);
    return n == 0;
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class NetRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kv::StoreOptions store_options;
    auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
    ASSERT_TRUE(opened.ok());
    store_ = kv::MakeSynchronized(std::move(opened).value());
    ServerOptions server_options;
    server_options.port = 0;
    server_options.workers = 1;
    server_ = std::make_unique<Server>(store_.get(), server_options);
    ASSERT_OK(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  // The server must still serve well-formed clients after the abuse.
  void ExpectServerStillHealthy() {
    auto connected = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    auto client = std::move(connected).value();
    EXPECT_OK(client->Ping("still-alive"));
  }

  std::unique_ptr<kv::KvStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetRobustnessTest, GarbageBytesGetErrorResponseAndClose) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(std::string(64, '\xff')));

  Response resp;
  bool eof = false;
  ASSERT_TRUE(conn.ReadResponse(&resp, &eof));
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);
  EXPECT_NE(resp.value.find("malformed"), std::string::npos);
  EXPECT_TRUE(conn.AtEof());
  EXPECT_GE(server_->stats().malformed_frames.load(), 1u);
  ExpectServerStillHealthy();
}

TEST_F(NetRobustnessTest, OversizedLengthIsRejectedBeforeBuffering) {
  // A header claiming a 1 GB value: must be refused on sight, not
  // accumulated.
  uint8_t header[kHeaderSize] = {};
  EncodeU16(header, kRequestMagic);
  header[2] = kProtocolVersion;
  header[3] = static_cast<uint8_t>(Opcode::kPut);
  EncodeU32(header + 8, 1);
  EncodeU32(header + 12, 4);
  EncodeU32(header + 16, 1u << 30);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(std::string(reinterpret_cast<char*>(header), kHeaderSize)));

  Response resp;
  bool eof = false;
  ASSERT_TRUE(conn.ReadResponse(&resp, &eof));
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.AtEof());
  EXPECT_GE(server_->stats().malformed_frames.load(), 1u);
  ExpectServerStillHealthy();
}

TEST_F(NetRobustnessTest, TruncatedFrameThenDisconnectIsHarmless) {
  // A valid header promising 100 payload bytes, but only 10 arrive before
  // the client goes away.  The server must just drop the connection state.
  uint8_t header[kHeaderSize] = {};
  EncodeU16(header, kRequestMagic);
  header[2] = kProtocolVersion;
  header[3] = static_cast<uint8_t>(Opcode::kPut);
  EncodeU32(header + 8, 1);
  EncodeU32(header + 12, 50);
  EncodeU32(header + 16, 50);
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    ASSERT_TRUE(conn.Send(std::string(reinterpret_cast<char*>(header), kHeaderSize) +
                          std::string(10, 'x')));
    conn.ShutdownWrite();
    EXPECT_TRUE(conn.AtEof());  // server closes without a response frame
  }
  EXPECT_EQ(server_->stats().malformed_frames.load(), 0u);  // truncation != malformed
  ExpectServerStillHealthy();
}

TEST_F(NetRobustnessTest, ByteAtATimeRequestStillParses) {
  Request req;
  req.op = Opcode::kPut;
  req.seq = 99;
  req.key = "dribble";
  req.value = "slowly";
  std::string wire;
  EncodeRequest(req, &wire);

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  for (const char byte : wire) {
    ASSERT_TRUE(conn.Send(std::string(1, byte)));
  }
  Response resp;
  bool eof = false;
  ASSERT_TRUE(conn.ReadResponse(&resp, &eof));
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.seq, 99u);

  std::string value;
  ASSERT_OK(store_->Get("dribble", &value));
  EXPECT_EQ(value, "slowly");
}

TEST_F(NetRobustnessTest, UnknownOpcodeGetsUnsupportedAndConnectionSurvives) {
  // An opcode from a future protocol revision must get a clean error frame
  // on the same connection — NOT a disconnect (a mixed-version cluster
  // would otherwise drop every inter-node connection during upgrades).
  uint8_t header[kHeaderSize] = {};
  EncodeU16(header, kRequestMagic);
  header[2] = kProtocolVersion;
  header[3] = kMaxOpcode + 1;
  EncodeU32(header + 8, 77);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(std::string(reinterpret_cast<char*>(header), kHeaderSize)));

  Response resp;
  bool eof = false;
  ASSERT_TRUE(conn.ReadResponse(&resp, &eof));
  EXPECT_EQ(resp.status, StatusCode::kUnsupported);
  EXPECT_EQ(resp.seq, 77u);

  // Same connection, well-formed follow-up: must still be served.
  Request ping;
  ping.op = Opcode::kPing;
  ping.seq = 78;
  ping.value = "after-unknown";
  std::string wire;
  EncodeRequest(ping, &wire);
  ASSERT_TRUE(conn.Send(wire));
  ASSERT_TRUE(conn.ReadResponse(&resp, &eof));
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.seq, 78u);
  EXPECT_EQ(resp.value, "after-unknown");

  EXPECT_EQ(server_->stats().malformed_frames.load(), 0u);  // not framing abuse
  EXPECT_GE(server_->stats().unknown_opcodes.load(), 1u);
  ExpectServerStillHealthy();
}

TEST_F(NetRobustnessTest, ManyAbusiveConnectionsDoNotStarveTheServer) {
  for (int i = 0; i < 20; ++i) {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    ASSERT_TRUE(conn.Send(std::string(32, static_cast<char>(i))));
  }
  // All 20 garbage connections were counted and torn down (or are about
  // to be); a fresh well-formed client still gets served.
  ExpectServerStillHealthy();
  EXPECT_GE(server_->stats().malformed_frames.load(), 1u);
}

// A listening socket that speaks no hashkit at all: it can complete TCP
// handshakes (and optionally accept) but never reads or writes — the
// stand-in for a hung server.
class MuteListener {
 public:
  explicit MuteListener(int backlog = 8) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    (void)::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    (void)::listen(fd_, backlog);
    socklen_t len = sizeof(addr);
    (void)::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~MuteListener() {
    for (const int fd : accepted_) {
      ::close(fd);
    }
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  uint16_t port() const { return port_; }
  // Accepts one pending connection and holds it open, never reading.
  bool AcceptAndHold() {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      return false;
    }
    accepted_.push_back(fd);
    return true;
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::vector<int> accepted_;
};

TEST(ClientTimeoutTest, RecvTimesOutAgainstSilentServer) {
  MuteListener listener;
  ClientOptions options;
  options.recv_timeout_ms = 200;
  auto connected = Client::Connect("127.0.0.1", listener.port(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  ASSERT_TRUE(listener.AcceptAndHold());

  const uint64_t t0 = MonotonicNanos();
  const Status st = (*connected)->Ping("anyone-home");
  const uint64_t elapsed_ms = (MonotonicNanos() - t0) / 1'000'000;
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_GE(elapsed_ms, 150u);   // the deadline was actually honored...
  EXPECT_LT(elapsed_ms, 5000u);  // ...and nothing hung
}

TEST(ClientTimeoutTest, SendTimesOutWhenPeerNeverReads) {
  MuteListener listener;
  ClientOptions options;
  options.send_timeout_ms = 200;
  options.recv_timeout_ms = 200;
  auto connected = Client::Connect("127.0.0.1", listener.port(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  ASSERT_TRUE(listener.AcceptAndHold());

  // The protocol's largest value: far beyond what the loopback send +
  // receive buffers can absorb, so the write must stall on a peer that
  // never reads, and the stall must trip the send deadline.
  const std::string huge(kMaxValueLen, 'x');
  const uint64_t t0 = MonotonicNanos();
  const Status st = (*connected)->Put("big", huge);
  const uint64_t elapsed_ms = (MonotonicNanos() - t0) / 1'000'000;
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_LT(elapsed_ms, 10000u);
}

TEST(ClientTimeoutTest, ConnectTimesOutOnUnresponsiveAcceptQueue) {
  // A full accept queue makes the kernel drop fresh SYNs: the connect
  // neither completes nor fails, which is exactly the case the connect
  // deadline exists for.  Saturate a backlog-1 listener with non-blocking
  // connects first.
  MuteListener listener(/*backlog=*/1);
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    (void)::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  // Give the first fillers time to occupy the queue.
  struct timespec ts = {0, 100 * 1000 * 1000};
  nanosleep(&ts, nullptr);

  ClientOptions options;
  options.connect_timeout_ms = 300;
  const uint64_t t0 = MonotonicNanos();
  auto connected = Client::Connect("127.0.0.1", listener.port(), options);
  const uint64_t elapsed_ms = (MonotonicNanos() - t0) / 1'000'000;
  ASSERT_FALSE(connected.ok());
  EXPECT_TRUE(connected.status().IsTimeout()) << connected.status().ToString();
  EXPECT_GE(elapsed_ms, 250u);
  EXPECT_LT(elapsed_ms, 5000u);
  for (const int fd : fillers) {
    ::close(fd);
  }
}

TEST(ClientTimeoutTest, ConnectToClosedPortFailsFastNotByTimeout) {
  // A dead port answers RST immediately: that is an IoError, and it must
  // arrive long before the connect deadline (no spurious timeouts).
  uint16_t dead_port = 0;
  {
    MuteListener probe;  // grab a free port, then release it
    dead_port = probe.port();
  }

  ClientOptions options;
  options.connect_timeout_ms = 10'000;
  const uint64_t t0 = MonotonicNanos();
  auto connected = Client::Connect("127.0.0.1", dead_port, options);
  const uint64_t elapsed_ms = (MonotonicNanos() - t0) / 1'000'000;
  EXPECT_FALSE(connected.ok());
  EXPECT_FALSE(connected.status().IsTimeout()) << connected.status().ToString();
  EXPECT_LT(elapsed_ms, 2000u);
}

}  // namespace
}  // namespace net
}  // namespace hashkit
