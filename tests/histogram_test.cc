// Tests for the hashkit-obs latency histogram: bucket-boundary math
// (exactness for small values, bounded relative error above), percentile
// monotonicity, merge algebra (associative + commutative, the property
// that lets per-shard/per-thread histograms combine in any order), and a
// multi-threaded recording stress run under the TSan configuration.

#include "src/util/histogram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/random.h"

namespace hashkit {
namespace {

TEST(HistBucketTest, SmallValuesMapExactly) {
  for (uint64_t v = 0; v < 2 * kHistSubBuckets; ++v) {
    EXPECT_EQ(HistBucketIndex(v), v);
    EXPECT_EQ(HistBucketUpperBound(static_cast<uint32_t>(v)), v);
  }
}

TEST(HistBucketTest, IndexIsMonotoneAndBounded) {
  uint32_t prev = 0;
  for (uint64_t v = 0; v < 1 << 20; v += 7) {
    const uint32_t idx = HistBucketIndex(v);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, kHistBuckets);
    prev = idx;
  }
  EXPECT_EQ(HistBucketIndex(UINT64_MAX), kHistBuckets - 1);
}

TEST(HistBucketTest, UpperBoundContainsValueWithBoundedError) {
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    // Spread samples across the magnitudes the top bucket does not saturate.
    const uint64_t v = rng.Uniform(uint64_t{1} << (10 + i % 32));
    const uint32_t idx = HistBucketIndex(v);
    const uint64_t ub = HistBucketUpperBound(idx);
    ASSERT_GE(ub, v) << "value " << v << " above its bucket bound";
    if (idx > 0) {
      ASSERT_LT(HistBucketUpperBound(idx - 1), v) << "value " << v << " fits a lower bucket";
    }
    // Relative quantization error bound: ub <= v * (1 + 1/kHistSubBuckets).
    ASSERT_LE(static_cast<double>(ub),
              static_cast<double>(v) * (1.0 + 1.0 / kHistSubBuckets) + 1.0)
        << "value " << v;
  }
}

TEST(HistogramSnapshotTest, EmptyReportsZeros) {
  const HistogramSnapshot h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  const PercentileSummary s = Summarize(h);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(HistogramSnapshotTest, PercentilesAreMonotoneAndClamped) {
  Rng rng(11);
  HistogramSnapshot h;
  uint64_t real_min = UINT64_MAX, real_max = 0, real_sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = rng.Uniform(10'000'000);
    h.Record(v);
    real_min = std::min(real_min, v);
    real_max = std::max(real_max, v);
    real_sum += v;
  }
  EXPECT_EQ(h.count, static_cast<uint64_t>(kSamples));
  EXPECT_EQ(h.sum, real_sum);
  EXPECT_EQ(h.min, real_min);
  EXPECT_EQ(h.max, real_max);
  EXPECT_EQ(h.ValueAt(0), real_min);
  EXPECT_EQ(h.ValueAt(100), real_max);

  uint64_t prev = 0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const uint64_t v = h.ValueAt(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, real_min);
    EXPECT_LE(v, real_max);
    prev = v;
  }
}

TEST(HistogramSnapshotTest, PercentileOfUniformIsCloseToExact) {
  // 1..N uniform: pXX should land within the 12.5% bucket quantization of
  // the true percentile.
  HistogramSnapshot h;
  constexpr uint64_t kN = 100000;
  for (uint64_t v = 1; v <= kN; ++v) {
    h.Record(v);
  }
  for (const double p : {50.0, 90.0, 99.0}) {
    const double exact = p / 100.0 * kN;
    const double got = static_cast<double>(h.ValueAt(p));
    EXPECT_GE(got, exact * 0.999);
    EXPECT_LE(got, exact * (1.0 + 1.0 / kHistSubBuckets) + 1.0);
  }
}

HistogramSnapshot RandomSnapshot(uint64_t seed, int samples) {
  Rng rng(seed);
  HistogramSnapshot h;
  for (int i = 0; i < samples; ++i) {
    h.Record(rng.Uniform(uint64_t{1} << (1 + i % 40)));
  }
  return h;
}

void ExpectSameDistribution(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(HistogramSnapshotTest, MergeIsAssociativeAndCommutative) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const HistogramSnapshot a = RandomSnapshot(seed, 500);
    const HistogramSnapshot b = RandomSnapshot(seed + 100, 300);
    const HistogramSnapshot c = RandomSnapshot(seed + 200, 700);

    HistogramSnapshot ab = a;
    ab.MergeFrom(b);
    HistogramSnapshot ab_c = ab;
    ab_c.MergeFrom(c);

    HistogramSnapshot bc = b;
    bc.MergeFrom(c);
    HistogramSnapshot a_bc = a;
    a_bc.MergeFrom(bc);

    ExpectSameDistribution(ab_c, a_bc);

    HistogramSnapshot ba = b;
    ba.MergeFrom(a);
    ExpectSameDistribution(ab, ba);
  }
}

TEST(HistogramSnapshotTest, MergeWithEmptyIsIdentity) {
  const HistogramSnapshot a = RandomSnapshot(3, 1000);
  HistogramSnapshot merged = a;
  merged.MergeFrom(HistogramSnapshot{});
  ExpectSameDistribution(merged, a);
  HistogramSnapshot from_empty;
  from_empty.MergeFrom(a);
  ExpectSameDistribution(from_empty, a);
}

TEST(HistogramSnapshotTest, MergeMatchesCombinedRecording) {
  Rng rng(99);
  HistogramSnapshot left, right, combined;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Uniform(1u << 30);
    combined.Record(v);
    if (i % 2 == 0) {
      left.Record(v);
    } else {
      right.Record(v);
    }
  }
  left.MergeFrom(right);
  ExpectSameDistribution(left, combined);
}

TEST(LatencyHistogramTest, SnapshotMatchesSingleThreadedRecording) {
  Rng rng(5);
  LatencyHistogram concurrent;
  HistogramSnapshot reference;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = rng.Uniform(10'000'000);
    concurrent.Record(v);
    reference.Record(v);
  }
  ExpectSameDistribution(concurrent.Snapshot(), reference);
  EXPECT_EQ(concurrent.count(), reference.count);
}

// The TSan target: many threads record while another thread snapshots.
// After the join, the final snapshot must account for every sample
// exactly; mid-flight snapshots must be internally sane (monotone
// percentiles, count never exceeding what was recorded).
TEST(LatencyHistogramTest, ConcurrentRecordStress) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::atomic<bool> done{false};

  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = hist.Snapshot();
      ASSERT_LE(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
      if (!snap.empty()) {
        ASSERT_LE(snap.p50(), snap.p999());
      }
    }
  });

  std::vector<std::thread> recorders;
  std::atomic<uint64_t> expected_sum{0};
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      uint64_t local_sum = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t v = rng.Uniform(1u << 22);
        hist.Record(v);
        local_sum += v;
      }
      expected_sum.fetch_add(local_sum, std::memory_order_relaxed);
    });
  }
  for (auto& thread : recorders) {
    thread.join();
  }
  done.store(true, std::memory_order_release);
  snapshotter.join();

  const HistogramSnapshot final_snap = hist.Snapshot();
  EXPECT_EQ(final_snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(final_snap.sum, expected_sum.load());
  uint64_t bucket_total = 0;
  for (const uint64_t b : final_snap.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, final_snap.count);
}

}  // namespace
}  // namespace hashkit
