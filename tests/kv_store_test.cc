// Contract tests: one behavioural suite run against every store through
// the uniform KvStore interface, honouring each store's declared
// capabilities.  This is the paper's "appear identical to the application
// layer" property, tested.

#include "src/kv/kv_store.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace kv {
namespace {

class KvContractTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  std::unique_ptr<KvStore> Open(const std::string& tag, bool truncate = true) {
    StoreOptions options;
    options.path = TempPath("kv_" + std::string(StoreKindName(GetParam())) + "_" + tag);
    last_path_ = options.path;
    options.truncate = truncate;
    options.page_size = 512;
    options.ffactor = 8;
    options.nelem = 8192;
    auto result = OpenStore(GetParam(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<KvStore> Reopen() {
    StoreOptions options;
    options.path = last_path_;
    options.truncate = false;
    options.page_size = 512;
    auto result = OpenStore(GetParam(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::string last_path_;
};

TEST_P(KvContractTest, PutGetRoundTrip) {
  auto store = Open("roundtrip");
  ASSERT_OK(store->Put("alpha", "one"));
  ASSERT_OK(store->Put("beta", "two"));
  std::string value;
  ASSERT_OK(store->Get("alpha", &value));
  EXPECT_EQ(value, "one");
  ASSERT_OK(store->Get("beta", &value));
  EXPECT_EQ(value, "two");
  EXPECT_TRUE(store->Get("gamma", &value).IsNotFound());
  EXPECT_EQ(store->Size(), 2u);
}

TEST_P(KvContractTest, NoOverwritePutReportsExists) {
  auto store = Open("noover");
  ASSERT_OK(store->Put("k", "v1", false));
  EXPECT_TRUE(store->Put("k", "v2", false).IsExists());
  std::string value;
  ASSERT_OK(store->Get("k", &value));
  EXPECT_EQ(value, "v1");
}

TEST_P(KvContractTest, OverwriteReplacesWhenSupported) {
  auto store = Open("over");
  if (!store->Caps().overwrites) {
    GTEST_SKIP();
  }
  ASSERT_OK(store->Put("k", "v1"));
  ASSERT_OK(store->Put("k", "v2"));
  std::string value;
  ASSERT_OK(store->Get("k", &value));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(store->Size(), 1u);
}

TEST_P(KvContractTest, DeleteWhenSupported) {
  auto store = Open("del");
  ASSERT_OK(store->Put("k", "v"));
  const Status st = store->Delete("k");
  if (store->Caps().deletes) {
    ASSERT_OK(st);
    std::string value;
    EXPECT_TRUE(store->Get("k", &value).IsNotFound());
    EXPECT_TRUE(store->Delete("k").IsNotFound());
  } else {
    EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  }
}

TEST_P(KvContractTest, ScanWhenSupported) {
  auto store = Open("scan");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "s" + std::to_string(i);
    ASSERT_OK(store->Put(key, std::to_string(i)));
    model[key] = std::to_string(i);
  }
  std::string k, v;
  Status st = store->Scan(&k, &v, true);
  if (!store->Caps().scans) {
    EXPECT_EQ(st.code(), StatusCode::kUnsupported);
    return;
  }
  std::map<std::string, std::string> seen;
  while (st.ok()) {
    EXPECT_TRUE(seen.emplace(k, v).second);
    st = store->Scan(&k, &v, false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, model);
}

TEST_P(KvContractTest, PersistenceWhenSupported) {
  std::map<std::string, std::string> model;
  {
    auto store = Open("persist");
    if (!store->Caps().persistent) {
      GTEST_SKIP();
    }
    for (int i = 0; i < 500; ++i) {
      const std::string key = "p" + std::to_string(i);
      ASSERT_OK(store->Put(key, std::to_string(i * 3)));
      model[key] = std::to_string(i * 3);
    }
    ASSERT_OK(store->Sync());
  }
  auto store = Reopen();
  EXPECT_EQ(store->Size(), model.size());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(store->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

TEST_P(KvContractTest, LargePairsWhenSupported) {
  auto store = Open("large");
  const std::string big(5000, 'X');  // > 512-byte page
  const Status st = store->Put("big", big);
  if (store->Caps().unlimited_pair) {
    ASSERT_OK(st);
    std::string value;
    ASSERT_OK(store->Get("big", &value));
    EXPECT_EQ(value, big);
  } else {
    EXPECT_TRUE(st.IsFull());
  }
}

TEST_P(KvContractTest, GrowthPastHintWhenSupported) {
  StoreOptions options;
  options.path = TempPath("kv_grow_" + std::string(StoreKindName(GetParam())));
  options.page_size = 512;
  options.nelem = 16;  // tiny hint / capacity
  auto result = OpenStore(GetParam(), options);
  ASSERT_TRUE(result.ok());
  auto store = std::move(result).value();

  Status last = Status::Ok();
  int stored = 0;
  for (int i = 0; i < 2000 && last.ok(); ++i) {
    last = store->Put("g" + std::to_string(i), "v");
    if (last.ok()) {
      ++stored;
    }
  }
  if (store->Caps().grows) {
    ASSERT_OK(last);
    EXPECT_EQ(stored, 2000);
  } else {
    EXPECT_TRUE(last.IsFull());
    EXPECT_LT(stored, 2000);
  }
}

TEST_P(KvContractTest, RandomOpsMatchReference) {
  auto store = Open("prop");
  const Capabilities caps = store->Caps();
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 1500; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(200));
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {
      const std::string value = rng.AsciiString(rng.Range(0, 40));
      if (model.count(key) && !caps.overwrites) {
        continue;
      }
      ASSERT_OK(store->Put(key, value));
      model[key] = value;
    } else if (op < 7 && caps.deletes) {
      const Status st = store->Delete(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      std::string value;
      const Status st = store->Get(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    ASSERT_EQ(store->Size(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, KvContractTest, ::testing::ValuesIn(kAllStoreKinds),
                         [](const ::testing::TestParamInfo<StoreKind>& param_info) {
                           return std::string(StoreKindName(param_info.param));
                         });

TEST(KvStoreTest, NamesAreStable) {
  EXPECT_EQ(StoreKindName(StoreKind::kHashDisk), "hash_disk");
  EXPECT_EQ(StoreKindName(StoreKind::kGdbm), "gdbm");
}

TEST(KvStoreTest, FileStoresRequirePath) {
  StoreOptions options;  // no path
  EXPECT_FALSE(OpenStore(StoreKind::kHashDisk, options).ok());
  EXPECT_FALSE(OpenStore(StoreKind::kNdbm, options).ok());
  EXPECT_FALSE(OpenStore(StoreKind::kGdbm, options).ok());
  // Memory stores do not.
  EXPECT_TRUE(OpenStore(StoreKind::kHashMemory, options).ok());
  EXPECT_TRUE(OpenStore(StoreKind::kDynahash, options).ok());
}

}  // namespace
}  // namespace kv
}  // namespace hashkit
