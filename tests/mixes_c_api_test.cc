// Tests for the operation-mix workload generator and the classic ndbm C
// API surface.

#include <fcntl.h>

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "src/core/hash_table.h"
#include "src/core/ndbm_c_api.h"
#include "src/workload/mixes.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

// ---- workload mixes ----

TEST(MixesTest, ProportionsApproximatelyHonoured) {
  workload::MixSpec spec = workload::MixB();  // 95/5
  spec.operations = 50000;
  const auto trace = workload::GenerateTrace(spec);
  size_t reads = 0;
  size_t updates = 0;
  for (const auto& op : trace.ops) {
    reads += op.type == workload::OpType::kRead;
    updates += op.type == workload::OpType::kUpdate;
  }
  EXPECT_NEAR(static_cast<double>(reads) / trace.ops.size(), 0.95, 0.01);
  EXPECT_NEAR(static_cast<double>(updates) / trace.ops.size(), 0.05, 0.01);
}

TEST(MixesTest, DeterministicForSeed) {
  const auto a = workload::GenerateTrace(workload::MixA());
  const auto b = workload::GenerateTrace(workload::MixA());
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); i += 997) {
    EXPECT_EQ(a.ops[i].key, b.ops[i].key);
    EXPECT_EQ(a.ops[i].type, b.ops[i].type);
  }
}

TEST(MixesTest, InsertsExtendTheKeyspace) {
  workload::MixSpec spec = workload::MixD();
  spec.initial_keys = 100;
  spec.operations = 5000;
  const auto trace = workload::GenerateTrace(spec);
  std::set<std::string> preload(trace.preload_keys.begin(), trace.preload_keys.end());
  size_t fresh_inserts = 0;
  for (const auto& op : trace.ops) {
    if (op.type == workload::OpType::kInsert && !preload.count(op.key)) {
      ++fresh_inserts;
    }
  }
  EXPECT_GT(fresh_inserts, 300u);  // ~10% of 5000
}

TEST(MixesTest, ZipfSkewConcentratesOnHotKeys) {
  workload::MixSpec spec = workload::MixC();
  spec.operations = 20000;
  spec.zipf_theta = 0.99;
  const auto trace = workload::GenerateTrace(spec);
  std::map<std::string, size_t> counts;
  for (const auto& op : trace.ops) {
    ++counts[op.key];
  }
  // The hottest key should see far more than uniform share (2 per key).
  size_t hottest = 0;
  for (const auto& [key, count] : counts) {
    hottest = std::max(hottest, count);
  }
  EXPECT_GT(hottest, 200u);
}

TEST(MixesTest, TraceRunsCleanlyAgainstTheTable) {
  workload::MixSpec spec = workload::MixA();
  spec.initial_keys = 500;
  spec.operations = 5000;
  spec.deletes = 0.1;  // custom: add deletes
  const auto trace = workload::GenerateTrace(spec);

  auto table = std::move(HashTable::OpenInMemory(HashOptions{}).value());
  for (const auto& key : trace.preload_keys) {
    ASSERT_OK(table->Put(key, trace.preload_value));
  }
  std::string value;
  for (const auto& op : trace.ops) {
    switch (op.type) {
      case workload::OpType::kRead: {
        const Status st = table->Get(op.key, &value);
        ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
        break;
      }
      case workload::OpType::kUpdate:
      case workload::OpType::kInsert:
        ASSERT_OK(table->Put(op.key, op.value));
        break;
      case workload::OpType::kDelete: {
        const Status st = table->Delete(op.key);
        ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
        break;
      }
    }
  }
  ASSERT_OK(table->CheckIntegrity());
}

// ---- classic C ndbm API ----

TEST(NdbmCApiTest, FullLifecycle) {
  const std::string path = TempPath("c_api");
  ndbm_c::DBM* db = ndbm_c::dbm_open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_NE(db, nullptr);

  char key_bytes[] = "the-key";
  char val_bytes[] = "the-value";
  ndbm_c::datum key{key_bytes, 7};
  ndbm_c::datum val{val_bytes, 9};
  EXPECT_EQ(ndbm_c::dbm_store(db, key, val, ndbm_c::DBM_REPLACE), 0);

  const ndbm_c::datum fetched = ndbm_c::dbm_fetch(db, key);
  ASSERT_NE(fetched.dptr, nullptr);
  EXPECT_EQ(std::string(static_cast<const char*>(fetched.dptr), fetched.dsize), "the-value");

  // DBM_INSERT refuses duplicates with return value 1.
  char val2_bytes[] = "other";
  EXPECT_EQ(ndbm_c::dbm_store(db, key, ndbm_c::datum{val2_bytes, 5}, ndbm_c::DBM_INSERT), 1);

  EXPECT_EQ(ndbm_c::dbm_delete(db, key), 0);
  EXPECT_EQ(ndbm_c::dbm_fetch(db, key).dptr, nullptr);
  EXPECT_LT(ndbm_c::dbm_delete(db, key), 0);

  EXPECT_EQ(ndbm_c::dbm_error(db), 0);
  ndbm_c::dbm_close(db);
}

TEST(NdbmCApiTest, KeyIterationAndPersistence) {
  const std::string path = TempPath("c_api_iter");
  {
    ndbm_c::DBM* db = ndbm_c::dbm_open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    ASSERT_NE(db, nullptr);
    for (int i = 0; i < 100; ++i) {
      std::string key = "iter" + std::to_string(i);
      std::string value = std::to_string(i);
      ndbm_c::datum k{key.data(), key.size()};
      ndbm_c::datum v{value.data(), value.size()};
      ASSERT_EQ(ndbm_c::dbm_store(db, k, v, ndbm_c::DBM_INSERT), 0);
    }
    ndbm_c::dbm_close(db);  // flushes via the table destructor
  }
  ndbm_c::DBM* db = ndbm_c::dbm_open(path.c_str(), O_RDWR, 0644);
  ASSERT_NE(db, nullptr);
  std::set<std::string> seen;
  for (ndbm_c::datum k = ndbm_c::dbm_firstkey(db); k.dptr != nullptr;
       k = ndbm_c::dbm_nextkey(db)) {
    seen.insert(std::string(static_cast<const char*>(k.dptr), k.dsize));
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_TRUE(seen.count("iter0"));
  EXPECT_TRUE(seen.count("iter99"));
  ndbm_c::dbm_close(db);
}

TEST(NdbmCApiTest, NullHandleSafety) {
  EXPECT_EQ(ndbm_c::dbm_fetch(nullptr, {}).dptr, nullptr);
  EXPECT_LT(ndbm_c::dbm_store(nullptr, {}, {}, ndbm_c::DBM_REPLACE), 0);
  EXPECT_LT(ndbm_c::dbm_delete(nullptr, {}), 0);
  EXPECT_EQ(ndbm_c::dbm_firstkey(nullptr).dptr, nullptr);
  EXPECT_EQ(ndbm_c::dbm_error(nullptr), 1);
}

// ---- Analyze() ----

TEST(AnalyzeTest, ReportsSaneOccupancy) {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK(table->Put("an" + std::to_string(i), "0123456789"));
  }
  const std::string big(4000, 'b');
  ASSERT_OK(table->Put("bigan", big));

  auto analysis = table->Analyze();
  ASSERT_TRUE(analysis.ok());
  const auto& a = *analysis;
  EXPECT_EQ(a.keys, 3001u);
  EXPECT_EQ(a.buckets, table->bucket_count());
  EXPECT_NEAR(a.avg_keys_per_bucket, static_cast<double>(a.keys) / a.buckets, 1e-9);
  EXPECT_GT(a.avg_bytes_per_page, 0.1);
  EXPECT_LE(a.avg_bytes_per_page, 1.0);
  EXPECT_GT(a.big_pair_pages, 10u);  // the 4000-byte pair spans many 248B segments
  EXPECT_GT(a.eq1_ffactor, 1.0);
  // eq1 recommends roughly bsize / (avg_pair + 4); our pairs ~14 bytes.
  EXPECT_NEAR(a.eq1_ffactor, 256.0 / (14.6 + 4.0), 3.0);
}

TEST(AnalyzeTest, EmptyTable) {
  auto table = std::move(HashTable::OpenInMemory(HashOptions{}).value());
  auto analysis = table->Analyze();
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->keys, 0u);
  EXPECT_EQ(analysis->buckets, 1u);
  EXPECT_EQ(analysis->empty_buckets, 1u);
  EXPECT_EQ(analysis->eq1_ffactor, 0.0);
}

}  // namespace
}  // namespace hashkit
