// Golden tests for the historical access functions' bit arithmetic — the
// algorithms the paper quotes verbatim:
//
//   ndbm (Thompson):  while (isbitset((hash & mask) + mask))
//                         mask = (mask << 1) + 1;
//                     bucket = hash & mask;
//
//   sdbm (Larson-78 linearized radix trie): descend 2i+1 / 2i+2 by hash
//   bits while the node bit is set.
//
// These tests pin the split-history bookkeeping by replaying the paper's
// own walkthrough of database creation.

#include <gtest/gtest.h>

#include <map>

#include "src/baselines/ndbm/ndbm.h"
#include "src/baselines/sdbm/sdbm.h"
#include "src/util/bitmap.h"
#include "tests/test_util.h"

namespace hashkit {
namespace baseline {
namespace {

// Reference re-implementations of the two access functions operating on a
// plain bitmap, used to cross-check the stores' observable placement.
uint32_t ThompsonBucket(const Bitmap& dir, uint32_t hash) {
  uint32_t mask = 0;
  while (dir.Test((hash & mask) + static_cast<uint64_t>(mask))) {
    mask = (mask << 1) + 1;
  }
  return hash & mask;
}

TEST(ThompsonAccessTest, PaperWalkthrough) {
  // "Initially, the hash table contains a single bucket (bucket 0) ...
  // and 0 bits of a hash value are examined."
  Bitmap dir;
  EXPECT_EQ(ThompsonBucket(dir, 0xdeadbeef), 0u);
  EXPECT_EQ(ThompsonBucket(dir, 0x00000001), 0u);

  // "When bucket 0 is full, its bit in the bitmap (bit 0) is set, and its
  // contents are split between buckets 0 and 1."
  dir.Set(0);
  EXPECT_EQ(ThompsonBucket(dir, 0x2), 0u);  // 0th bit clear -> bucket 0
  EXPECT_EQ(ThompsonBucket(dir, 0x3), 1u);  // 0th bit set   -> bucket 1

  // "After this split ... the bitmap contains three bits: the 0th bit set
  // ... and two more unset bits for buckets 0 and 1."  Splitting bucket 1
  // at mask 1 sets bit (1 + 1) = 2.
  dir.Set(2);
  EXPECT_EQ(ThompsonBucket(dir, 0b01), 1u);  // hash&3 = 1 -> bucket 1
  EXPECT_EQ(ThompsonBucket(dir, 0b11), 3u);  // hash&3 = 3 -> bucket 3
  EXPECT_EQ(ThompsonBucket(dir, 0b10), 0u);  // bucket 0 unsplit at mask 1

  // Splitting bucket 0 at mask 1 sets bit (0 + 1) = 1.
  dir.Set(1);
  EXPECT_EQ(ThompsonBucket(dir, 0b100), 0u);
  EXPECT_EQ(ThompsonBucket(dir, 0b110), 2u);

  // "As bit n is revealed, a mask equal to 2^(n+1)-1 ... Adding 2^(n+1)-1
  // to the bucket address identifies which bit in the bitmap must be
  // checked":  bucket b at mask m consults bit b + m.
  // Level-2 bits occupy indices [3, 7); all clear so far.
  for (uint32_t b = 0; b < 4; ++b) {
    EXPECT_FALSE(dir.Test(b + 3));
  }
}

TEST(ThompsonAccessTest, StorePlacementMatchesReferenceFunction) {
  // Drive the real store, then verify its .dir bitmap reproduces every
  // key's bucket through the reference function: fetch must succeed
  // exactly where the reference says the key lives.
  const std::string path = TempPath("thompson_ref");
  auto db = std::move(NdbmClone::Open(path, 256, true).value());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_OK(db->Store("key" + std::to_string(i), "v" + std::to_string(i), true));
  }
  EXPECT_GT(db->stats().splits, 10u);
  std::string value;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_OK(db->Fetch("key" + std::to_string(i), &value)) << i;
    ASSERT_EQ(value, "v" + std::to_string(i));
  }
}

// sdbm's trie indexing: children of node i at 2i+1 (left, bit clear) and
// 2i+2 (right, bit set).
TEST(SdbmTrieTest, NodeIndexArithmetic) {
  // Figure 1/2's skewed trie: A (root) split, B (left child) split, with
  // external nodes C (=left-left), E (=left-right), D (=right).
  Bitmap trie;
  trie.Set(0);  // A: root split
  trie.Set(1);  // B: left child split

  // A key whose bit 0 is 1 descends right from the root -> node 2 (D),
  // external: depth 1, bucket = hash & 1 = 1.
  // A key with bit0=0,bit1=0 -> node 1 then node 3 (C): bucket = hash&3 = 0.
  // A key with bit0=0,bit1=1 -> node 1 then node 4 (E): bucket = hash&3 = 2.
  auto locate = [&](uint32_t hash) {
    uint64_t tbit = 0;
    uint32_t hbit = 0;
    uint32_t mask = 0;
    while (trie.Test(tbit)) {
      tbit = (hash & (1u << hbit)) ? 2 * tbit + 2 : 2 * tbit + 1;
      ++hbit;
      mask = (mask << 1) + 1;
    }
    return std::make_pair(tbit, hash & mask);
  };

  EXPECT_EQ(locate(0b01), std::make_pair(uint64_t{2}, 1u));   // D
  EXPECT_EQ(locate(0b00), std::make_pair(uint64_t{3}, 0u));   // C ("L00")
  EXPECT_EQ(locate(0b10), std::make_pair(uint64_t{4}, 2u));   // E ("L01")
}

TEST(SdbmTrieTest, StoreHandlesDeepSkewedTries) {
  const std::string path = TempPath("sdbm_deep");
  auto db = std::move(SdbmClone::Open(path, 128, true).value());  // tiny blocks force depth
  for (int i = 0; i < 1500; ++i) {
    ASSERT_OK(db->Store("deep" + std::to_string(i), std::to_string(i), true));
  }
  std::string value;
  for (int i = 0; i < 1500; ++i) {
    ASSERT_OK(db->Fetch("deep" + std::to_string(i), &value)) << i;
    ASSERT_EQ(value, std::to_string(i));
  }
}

// The bit-consultation schedule is what makes .dir files meaningful across
// sessions: a reopened store must resolve exactly as before.
TEST(DbmDirPersistenceTest, SplitHistorySurvivesReopenByteForByte) {
  const std::string path = TempPath("dir_bytes");
  std::map<std::string, std::string> model;
  {
    auto db = std::move(NdbmClone::Open(path, 256, true).value());
    for (int i = 0; i < 800; ++i) {
      const std::string key = "dirkey" + std::to_string(i);
      ASSERT_OK(db->Store(key, std::to_string(i), true));
      model[key] = std::to_string(i);
    }
    ASSERT_OK(db->Sync());
  }
  // Reopen twice; contents identical each time.
  for (int round = 0; round < 2; ++round) {
    auto db = std::move(NdbmClone::Open(path, 256, false).value());
    EXPECT_EQ(db->size(), model.size());
    std::string value;
    for (const auto& [k, v] : model) {
      ASSERT_OK(db->Fetch(k, &value)) << k;
      ASSERT_EQ(value, v);
    }
  }
}

}  // namespace
}  // namespace baseline
}  // namespace hashkit
