// Property-based testing: the hash table must behave exactly like an
// in-memory reference map under arbitrary interleavings of put / overwrite
// / delete / get / scan, across the whole parameter space, with structural
// integrity maintained throughout, and the contents must survive
// close/reopen cycles.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/core/hash_table.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

struct PropertyParams {
  uint32_t bsize;
  uint32_t ffactor;
  uint64_t cachesize;
  SplitPolicy policy;
  bool big_pairs;  // include values larger than a page
  uint64_t seed;
  uint32_t format = kHashVersionV2;  // on-disk/page format under test
};

class HashTablePropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(HashTablePropertyTest, RandomOpsMatchReferenceModel) {
  const PropertyParams& p = GetParam();
  HashOptions opts;
  opts.bsize = p.bsize;
  opts.ffactor = p.ffactor;
  opts.cachesize = p.cachesize;
  opts.split_policy = p.policy;
  opts.format_version = p.format;
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  Rng rng(p.seed);
  std::map<std::string, std::string> model;
  std::vector<std::string> key_pool;
  for (int i = 0; i < 400; ++i) {
    key_pool.push_back("k" + std::to_string(i) + "-" + rng.AsciiString(rng.Range(0, 20)));
  }

  auto random_value = [&]() {
    const size_t max_len = p.big_pairs ? p.bsize * 3 : 40;
    return rng.ByteString(rng.Range(0, max_len));
  };

  for (int step = 0; step < 4000; ++step) {
    const std::string& key = key_pool[rng.Uniform(key_pool.size())];
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {  // put (overwrite)
      const std::string value = random_value();
      ASSERT_OK(table->Put(key, value));
      model[key] = value;
    } else if (op < 6) {  // put no-overwrite
      const std::string value = random_value();
      const Status st = table->Put(key, value, /*overwrite=*/false);
      if (model.count(key)) {
        ASSERT_TRUE(st.IsExists());
      } else {
        ASSERT_OK(st);
        model[key] = value;
      }
    } else if (op < 8) {  // delete
      const Status st = table->Delete(key);
      if (model.count(key)) {
        ASSERT_OK(st);
        model.erase(key);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {  // get
      std::string value;
      const Status st = table->Get(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    ASSERT_EQ(table->size(), model.size()) << "step " << step;
    if (step % 500 == 499) {
      ASSERT_OK(table->CheckIntegrity()) << "step " << step;
    }
  }

  // Final exhaustive comparison in both directions.
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
  std::map<std::string, std::string> scanned;
  std::string sk, sv;
  Status st = table->Seq(&sk, &sv, true);
  while (st.ok()) {
    ASSERT_TRUE(scanned.emplace(sk, sv).second);
    st = table->Seq(&sk, &sv, false);
  }
  ASSERT_TRUE(st.IsNotFound());
  ASSERT_EQ(scanned, model);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSpace, HashTablePropertyTest,
    ::testing::Values(
        PropertyParams{64, 1, 16 * 1024, SplitPolicy::kHybrid, false, 101},
        PropertyParams{64, 8, 0, SplitPolicy::kHybrid, true, 102},
        PropertyParams{128, 4, 64 * 1024, SplitPolicy::kControlledOnly, true, 103},
        PropertyParams{256, 8, 64 * 1024, SplitPolicy::kHybrid, false, 104},
        PropertyParams{256, 8, 1024 * 1024, SplitPolicy::kUncontrolledOnly, true, 105},
        PropertyParams{256, 64, 8 * 1024, SplitPolicy::kHybrid, true, 106},
        PropertyParams{512, 16, 0, SplitPolicy::kControlledOnly, false, 107},
        PropertyParams{1024, 32, 32 * 1024, SplitPolicy::kHybrid, true, 108},
        PropertyParams{4096, 8, 64 * 1024, SplitPolicy::kUncontrolledOnly, false, 109},
        PropertyParams{8192, 128, 128 * 1024, SplitPolicy::kHybrid, true, 110},
        // Format v1 must stay fully functional from the same binary (old
        // files open read/write), so the model check runs against it too.
        PropertyParams{64, 8, 0, SplitPolicy::kHybrid, true, 111, kHashVersionV1},
        PropertyParams{256, 8, 64 * 1024, SplitPolicy::kHybrid, false, 112, kHashVersionV1},
        PropertyParams{1024, 32, 32 * 1024, SplitPolicy::kHybrid, true, 113, kHashVersionV1}),
    [](const ::testing::TestParamInfo<PropertyParams>& param_info) {
      const PropertyParams& p = param_info.param;
      return "b" + std::to_string(p.bsize) + "_f" + std::to_string(p.ffactor) + "_c" +
             std::to_string(p.cachesize / 1024) + "k_p" +
             std::to_string(static_cast<int>(p.policy)) + (p.big_pairs ? "_big" : "_small") +
             "_s" + std::to_string(p.seed) + "_v" + std::to_string(p.format);
    });

// The same property across close/reopen cycles on a real file.
TEST(HashTablePersistenceProperty, RandomOpsSurviveReopenCycles) {
  const std::string path = TempPath("prop_persist");
  HashOptions opts;
  opts.bsize = 128;
  opts.ffactor = 4;
  opts.cachesize = 16 * 1024;

  Rng rng(777);
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 6; ++cycle) {
    auto table =
        std::move(HashTable::Open(path, opts, /*truncate=*/cycle == 0).value());
    ASSERT_EQ(table->size(), model.size()) << "cycle " << cycle;
    ASSERT_OK(table->CheckIntegrity());

    for (int step = 0; step < 600; ++step) {
      const std::string key = "c" + std::to_string(rng.Uniform(150));
      if (rng.Bernoulli(0.65)) {
        const std::string value = rng.ByteString(rng.Range(0, 500));
        ASSERT_OK(table->Put(key, value));
        model[key] = value;
      } else {
        const Status st = table->Delete(key);
        if (model.erase(key) > 0) {
          ASSERT_OK(st);
        } else {
          ASSERT_TRUE(st.IsNotFound());
        }
      }
    }
    ASSERT_OK(table->Sync());
    // Table closed by destructor at scope exit.
  }

  auto table = std::move(HashTable::Open(path, opts).value());
  ASSERT_OK(table->CheckIntegrity());
  ASSERT_EQ(table->size(), model.size());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

// Overflow-page recycling must keep the file from growing without bound
// under a steady-state churn workload.
TEST(HashTableChurnProperty, SteadyStateChurnDoesNotLeakPages) {
  HashOptions opts;
  opts.bsize = 128;
  opts.ffactor = 8;
  opts.cachesize = 64 * 1024;
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  Rng rng(31337);
  // Load a fixed population.
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(table->Put("churn" + std::to_string(i), rng.ByteString(300)));
  }
  ASSERT_OK(table->CheckIntegrity());
  const uint64_t pages_after_load = table->file_stats().writes + table->meta().spares[31];
  const uint32_t spares_after_load = table->meta().spares[31];

  // Replace values over and over; population (and bucket count) is stable,
  // so big-chain pages must be recycled, not newly carved.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_OK(table->Put("churn" + std::to_string(i), rng.ByteString(300)));
    }
  }
  ASSERT_OK(table->CheckIntegrity());
  const uint32_t spares_growth = table->meta().spares[31] - spares_after_load;
  EXPECT_LT(spares_growth, spares_after_load / 2)
      << "overflow pages leaked during churn (started " << spares_after_load << " -> grew "
      << spares_growth << ")";
  (void)pages_after_load;
}

}  // namespace
}  // namespace hashkit
