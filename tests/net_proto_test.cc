// Unit tests for the wire protocol: framing round trips, incremental
// decoding, and every malformed-header rejection path.

#include "src/net/proto.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/endian.h"

namespace hashkit {
namespace net {
namespace {

Request MakeRequest(Opcode op, std::string key, std::string value, uint8_t flags = 0,
                    uint32_t seq = 7) {
  Request req;
  req.op = op;
  req.flags = flags;
  req.seq = seq;
  req.key = std::move(key);
  req.value = std::move(value);
  return req;
}

TEST(ProtoTest, RequestRoundTrip) {
  const Request req = MakeRequest(Opcode::kPut, "key", "value", kFlagNoOverwrite, 42);
  std::string wire;
  EncodeRequest(req, &wire);
  EXPECT_EQ(wire.size(), kHeaderSize + 3 + 5);

  Request decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(consumed, kHeaderSize + 8);
  EXPECT_TRUE(wire.empty());
  EXPECT_EQ(decoded.op, Opcode::kPut);
  EXPECT_EQ(decoded.flags, kFlagNoOverwrite);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.key, "key");
  EXPECT_EQ(decoded.value, "value");
}

TEST(ProtoTest, ResponseRoundTrip) {
  Response resp;
  resp.op = Opcode::kScan;
  resp.status = StatusCode::kNotFound;
  resp.seq = 9;
  resp.key = "k";
  resp.value = "scan exhausted";
  std::string wire;
  EncodeResponse(resp, &wire);

  Response decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeResponse(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.op, Opcode::kScan);
  EXPECT_EQ(decoded.status, StatusCode::kNotFound);
  EXPECT_EQ(decoded.seq, 9u);
  EXPECT_EQ(decoded.key, "k");
  EXPECT_EQ(decoded.value, "scan exhausted");
}

TEST(ProtoTest, BinaryKeysAndValuesSurvive) {
  const std::string key("\x00\x01\xff\x00", 4);
  const std::string value(1024, '\0');
  const Request req = MakeRequest(Opcode::kGet, key, value);
  std::string wire;
  EncodeRequest(req, &wire);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.key, key);
  EXPECT_EQ(decoded.value, value);
}

TEST(ProtoTest, IncrementalDecodeNeedsWholeFrame) {
  const Request req = MakeRequest(Opcode::kPut, "incremental", "payload");
  std::string full;
  EncodeRequest(req, &full);

  // Feed one byte at a time; only the final byte yields the frame.
  std::string buf;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  for (size_t i = 0; i + 1 < full.size(); ++i) {
    buf.push_back(full[i]);
    ASSERT_EQ(DecodeRequest(&buf, &decoded, &consumed, &error), DecodeResult::kNeedMore)
        << "at byte " << i;
  }
  buf.push_back(full.back());
  ASSERT_EQ(DecodeRequest(&buf, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.key, "incremental");
  EXPECT_EQ(decoded.value, "payload");
}

TEST(ProtoTest, PipelinedFramesDecodeInOrder) {
  std::string wire;
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    EncodeRequest(MakeRequest(Opcode::kGet, "k" + std::to_string(seq), "", 0, seq), &wire);
  }
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    Request decoded;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
    EXPECT_EQ(decoded.seq, seq);
    EXPECT_EQ(decoded.key, "k" + std::to_string(seq));
  }
  EXPECT_TRUE(wire.empty());
}

// Builds a syntactically complete request frame, then lets a test corrupt
// specific header bytes.
std::string ValidFrame() {
  std::string wire;
  EncodeRequest(MakeRequest(Opcode::kPing, "", ""), &wire);
  return wire;
}

TEST(ProtoTest, RejectsBadMagic) {
  std::string wire = ValidFrame();
  wire[0] = 'X';
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ProtoTest, RejectsResponseMagicOnRequestPath) {
  Response resp;
  std::string wire;
  EncodeResponse(resp, &wire);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
}

TEST(ProtoTest, RejectsWrongVersion) {
  std::string wire = ValidFrame();
  wire[2] = kProtocolVersion + 1;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ProtoTest, RejectsUnknownOpcode) {
  std::string wire = ValidFrame();
  wire[3] = static_cast<char>(kMaxOpcode + 1);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("opcode"), std::string::npos);
}

TEST(ProtoTest, RejectsNonzeroReservedBytes) {
  std::string wire = ValidFrame();
  wire[6] = 1;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("reserved"), std::string::npos);
}

TEST(ProtoTest, RejectsOversizedKeyLength) {
  std::string wire = ValidFrame();
  EncodeU32(reinterpret_cast<uint8_t*>(wire.data()) + 12, kMaxKeyLen + 1);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("key length"), std::string::npos);
}

TEST(ProtoTest, RejectsOversizedValueLength) {
  std::string wire = ValidFrame();
  EncodeU32(reinterpret_cast<uint8_t*>(wire.data()) + 16, kMaxValueLen + 1);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("value length"), std::string::npos);
}

TEST(ProtoTest, MalformedLeavesBufferIntact) {
  std::string wire = ValidFrame();
  wire[0] = 'X';
  const std::string before = wire;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_EQ(consumed, 0u);
  EXPECT_EQ(wire, before);
}

TEST(ProtoTest, OpcodeNamesCoverAllOps) {
  EXPECT_EQ(OpcodeName(Opcode::kPing), "PING");
  EXPECT_EQ(OpcodeName(Opcode::kPut), "PUT");
  EXPECT_EQ(OpcodeName(Opcode::kGet), "GET");
  EXPECT_EQ(OpcodeName(Opcode::kDel), "DEL");
  EXPECT_EQ(OpcodeName(Opcode::kScan), "SCAN");
  EXPECT_EQ(OpcodeName(Opcode::kStats), "STATS");
  EXPECT_EQ(OpcodeName(Opcode::kSync), "SYNC");
}

}  // namespace
}  // namespace net
}  // namespace hashkit
