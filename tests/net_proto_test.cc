// Unit tests for the wire protocol: framing round trips, incremental
// decoding, and every malformed-header rejection path.

#include "src/net/proto.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/util/endian.h"

namespace hashkit {
namespace net {
namespace {

Request MakeRequest(Opcode op, std::string key, std::string value, uint8_t flags = 0,
                    uint32_t seq = 7) {
  Request req;
  req.op = op;
  req.flags = flags;
  req.seq = seq;
  req.key = std::move(key);
  req.value = std::move(value);
  return req;
}

TEST(ProtoTest, RequestRoundTrip) {
  const Request req = MakeRequest(Opcode::kPut, "key", "value", kFlagNoOverwrite, 42);
  std::string wire;
  EncodeRequest(req, &wire);
  EXPECT_EQ(wire.size(), kHeaderSize + 3 + 5);

  Request decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(consumed, kHeaderSize + 8);
  EXPECT_TRUE(wire.empty());
  EXPECT_EQ(decoded.op, Opcode::kPut);
  EXPECT_EQ(decoded.flags, kFlagNoOverwrite);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.key, "key");
  EXPECT_EQ(decoded.value, "value");
}

TEST(ProtoTest, ResponseRoundTrip) {
  Response resp;
  resp.op = Opcode::kScan;
  resp.status = StatusCode::kNotFound;
  resp.seq = 9;
  resp.key = "k";
  resp.value = "scan exhausted";
  std::string wire;
  EncodeResponse(resp, &wire);

  Response decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeResponse(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.op, Opcode::kScan);
  EXPECT_EQ(decoded.status, StatusCode::kNotFound);
  EXPECT_EQ(decoded.seq, 9u);
  EXPECT_EQ(decoded.key, "k");
  EXPECT_EQ(decoded.value, "scan exhausted");
}

TEST(ProtoTest, BinaryKeysAndValuesSurvive) {
  const std::string key("\x00\x01\xff\x00", 4);
  const std::string value(1024, '\0');
  const Request req = MakeRequest(Opcode::kGet, key, value);
  std::string wire;
  EncodeRequest(req, &wire);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.key, key);
  EXPECT_EQ(decoded.value, value);
}

TEST(ProtoTest, IncrementalDecodeNeedsWholeFrame) {
  const Request req = MakeRequest(Opcode::kPut, "incremental", "payload");
  std::string full;
  EncodeRequest(req, &full);

  // Feed one byte at a time; only the final byte yields the frame.
  std::string buf;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  for (size_t i = 0; i + 1 < full.size(); ++i) {
    buf.push_back(full[i]);
    ASSERT_EQ(DecodeRequest(&buf, &decoded, &consumed, &error), DecodeResult::kNeedMore)
        << "at byte " << i;
  }
  buf.push_back(full.back());
  ASSERT_EQ(DecodeRequest(&buf, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.key, "incremental");
  EXPECT_EQ(decoded.value, "payload");
}

TEST(ProtoTest, PipelinedFramesDecodeInOrder) {
  std::string wire;
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    EncodeRequest(MakeRequest(Opcode::kGet, "k" + std::to_string(seq), "", 0, seq), &wire);
  }
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    Request decoded;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
    EXPECT_EQ(decoded.seq, seq);
    EXPECT_EQ(decoded.key, "k" + std::to_string(seq));
  }
  EXPECT_TRUE(wire.empty());
}

// Builds a syntactically complete request frame, then lets a test corrupt
// specific header bytes.
std::string ValidFrame() {
  std::string wire;
  EncodeRequest(MakeRequest(Opcode::kPing, "", ""), &wire);
  return wire;
}

TEST(ProtoTest, RejectsBadMagic) {
  std::string wire = ValidFrame();
  wire[0] = 'X';
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ProtoTest, RejectsResponseMagicOnRequestPath) {
  Response resp;
  std::string wire;
  EncodeResponse(resp, &wire);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
}

TEST(ProtoTest, RejectsWrongVersion) {
  std::string wire = ValidFrame();
  wire[2] = kProtocolVersion + 1;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ProtoTest, UnknownOpcodeStillDecodesAsFrame) {
  // An unknown opcode is NOT a framing violation: a peer one protocol
  // revision ahead must get a clean kUnsupported answer, not a dropped
  // connection.  The decoder hands the frame up and dispatch rejects it.
  std::string wire = ValidFrame();
  wire[3] = static_cast<char>(kMaxOpcode + 1);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(static_cast<uint8_t>(decoded.op), kMaxOpcode + 1);
  EXPECT_TRUE(wire.empty());
}

TEST(ProtoTest, RejectsNonzeroReservedBytes) {
  std::string wire = ValidFrame();
  wire[6] = 1;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("reserved"), std::string::npos);
}

TEST(ProtoTest, RejectsOversizedKeyLength) {
  std::string wire = ValidFrame();
  EncodeU32(reinterpret_cast<uint8_t*>(wire.data()) + 12, kMaxKeyLen + 1);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("key length"), std::string::npos);
}

TEST(ProtoTest, RejectsOversizedValueLength) {
  std::string wire = ValidFrame();
  EncodeU32(reinterpret_cast<uint8_t*>(wire.data()) + 16, kMaxValueLen + 1);
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_NE(error.find("value length"), std::string::npos);
}

TEST(ProtoTest, MalformedLeavesBufferIntact) {
  std::string wire = ValidFrame();
  wire[0] = 'X';
  const std::string before = wire;
  Request decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(&wire, &decoded, &consumed, &error), DecodeResult::kMalformed);
  EXPECT_EQ(consumed, 0u);
  EXPECT_EQ(wire, before);
}

TEST(ProtoTest, OpcodeNamesCoverAllOps) {
  EXPECT_EQ(OpcodeName(Opcode::kPing), "PING");
  EXPECT_EQ(OpcodeName(Opcode::kPut), "PUT");
  EXPECT_EQ(OpcodeName(Opcode::kGet), "GET");
  EXPECT_EQ(OpcodeName(Opcode::kDel), "DEL");
  EXPECT_EQ(OpcodeName(Opcode::kScan), "SCAN");
  EXPECT_EQ(OpcodeName(Opcode::kStats), "STATS");
  EXPECT_EQ(OpcodeName(Opcode::kSync), "SYNC");
  EXPECT_EQ(OpcodeName(Opcode::kMapGet), "MAP_GET");
  EXPECT_EQ(OpcodeName(Opcode::kMoved), "MOVED");
  EXPECT_EQ(OpcodeName(Opcode::kMigrate), "MIGRATE");
}

// --- Byte goldens for the cluster frames (MAP_GET / MOVED / MIGRATE).
// These pin the wire layout: if any of them breaks, rolling upgrades of a
// live cluster break with it.

TEST(ProtoTest, GoldenMapGetRequest) {
  Request req;
  req.op = Opcode::kMapGet;
  req.seq = 3;
  std::string wire;
  EncodeRequest(req, &wire);
  const uint8_t golden[kHeaderSize] = {
      0x48, 0x4B,              // "HK" request magic
      0x01,                    // protocol version
      0x07,                    // opcode MAP_GET
      0x00,                    // flags
      0x00, 0x00, 0x00,        // reserved
      0x03, 0x00, 0x00, 0x00,  // seq = 3
      0x00, 0x00, 0x00, 0x00,  // key_len = 0
      0x00, 0x00, 0x00, 0x00,  // value_len = 0
  };
  ASSERT_EQ(wire.size(), kHeaderSize);
  EXPECT_EQ(std::memcmp(wire.data(), golden, kHeaderSize), 0);
}

TEST(ProtoTest, GoldenMovedResponse) {
  Response resp;
  resp.op = Opcode::kMoved;
  resp.status = StatusCode::kMoved;
  resp.seq = 5;
  resp.value = "MAPBYTES";  // a real reply carries the serialized map
  std::string wire;
  EncodeResponse(resp, &wire);
  const uint8_t golden[kHeaderSize] = {
      0x68, 0x6B,              // "hk" response magic
      0x01,                    // protocol version
      0x08,                    // opcode MOVED
      0x09,                    // status kMoved
      0x00, 0x00, 0x00,        // reserved
      0x05, 0x00, 0x00, 0x00,  // seq = 5
      0x00, 0x00, 0x00, 0x00,  // key_len = 0
      0x08, 0x00, 0x00, 0x00,  // value_len = 8
  };
  ASSERT_EQ(wire.size(), kHeaderSize + 8);
  EXPECT_EQ(std::memcmp(wire.data(), golden, kHeaderSize), 0);
  EXPECT_EQ(wire.substr(kHeaderSize), "MAPBYTES");

  Response decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeResponse(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.op, Opcode::kMoved);
  EXPECT_EQ(decoded.status, StatusCode::kMoved);
  EXPECT_EQ(decoded.value, "MAPBYTES");
}

TEST(ProtoTest, GoldenMigrateDataRequest) {
  Request req;
  req.op = Opcode::kMigrate;
  req.flags = kMigrateData;
  req.seq = 11;
  req.key = "k";
  req.value = "v";
  std::string wire;
  EncodeRequest(req, &wire);
  const uint8_t golden[kHeaderSize] = {
      0x48, 0x4B,              // "HK" request magic
      0x01,                    // protocol version
      0x09,                    // opcode MIGRATE
      0x02,                    // flags = kMigrateData
      0x00, 0x00, 0x00,        // reserved
      0x0B, 0x00, 0x00, 0x00,  // seq = 11
      0x01, 0x00, 0x00, 0x00,  // key_len = 1
      0x01, 0x00, 0x00, 0x00,  // value_len = 1
  };
  ASSERT_EQ(wire.size(), kHeaderSize + 2);
  EXPECT_EQ(std::memcmp(wire.data(), golden, kHeaderSize), 0);
  EXPECT_EQ(wire.substr(kHeaderSize), "kv");
}

// An OVERLOADED response (admission control shed) carries its retry-after
// hint as a u32 LE in the response *key* — this golden pins that byte
// layout (documented in PROTOCOL.md).
TEST(ProtoTest, GoldenOverloadedResponse) {
  Response resp;
  resp.op = Opcode::kPut;
  resp.status = StatusCode::kOverloaded;
  resp.seq = 7;
  EncodeRetryAfter(25, &resp.key);
  std::string wire;
  EncodeResponse(resp, &wire);
  const uint8_t golden[kHeaderSize + 4] = {
      0x68, 0x6B,              // "hk" response magic
      0x01,                    // protocol version
      0x01,                    // opcode PUT (the shed request's opcode)
      0x0A,                    // status kOverloaded
      0x00, 0x00, 0x00,        // reserved
      0x07, 0x00, 0x00, 0x00,  // seq = 7
      0x04, 0x00, 0x00, 0x00,  // key_len = 4 (the hint)
      0x00, 0x00, 0x00, 0x00,  // value_len = 0
      0x19, 0x00, 0x00, 0x00,  // retry-after = 25 ms, u32 LE
  };
  ASSERT_EQ(wire.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(wire.data(), golden, sizeof(golden)), 0);

  Response decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeResponse(&wire, &decoded, &consumed, &error), DecodeResult::kFrame);
  EXPECT_EQ(decoded.status, StatusCode::kOverloaded);
  EXPECT_EQ(DecodeRetryAfter(decoded.key), 25u);
}

// Regression: a kOverloaded frame from an older server may carry no hint
// at all.  DecodeRetryAfter must answer 0 for an empty or short key, never
// read out of bounds.
TEST(ProtoTest, DecodeRetryAfterToleratesShortKeys) {
  EXPECT_EQ(DecodeRetryAfter(""), 0u);
  EXPECT_EQ(DecodeRetryAfter("a"), 0u);
  EXPECT_EQ(DecodeRetryAfter(std::string_view("\x01\x02\x03", 3)), 0u);
  std::string key;
  EncodeRetryAfter(1234, &key);
  EXPECT_EQ(DecodeRetryAfter(key), 1234u);
}

TEST(ProtoTest, MigrateSubOpsAreDistinctSingleBits) {
  const uint8_t sub_ops[] = {kMigrateStart, kMigrateData, kMigrateEnd,  kMigrateMap,
                             kMigrateJoin,  kMigrateMove, kMigrateSplit, kMigrateLeave};
  uint8_t seen = 0;
  for (const uint8_t op : sub_ops) {
    EXPECT_EQ(op & (op - 1), 0) << "sub-op must be a single bit";
    EXPECT_EQ(seen & op, 0) << "sub-ops must not overlap";
    seen |= op;
  }
  EXPECT_EQ(seen, 0xFF);  // the flags byte is fully allocated
}

}  // namespace
}  // namespace net
}  // namespace hashkit
