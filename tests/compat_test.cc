// Tests for the ndbm and hsearch compatibility interfaces over the core
// package (the paper's "Enhanced Functionality" section).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/hsearch_compat.h"
#include "src/core/ndbm_compat.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

// ---- ndbm interface ----

TEST(NdbmCompatTest, StoreFetchDelete) {
  auto db = std::move(ndbm::Db::Open(TempPath("ndbmc")).value());
  EXPECT_EQ(db->Store(ndbm::Datum("key"), ndbm::Datum("value"), ndbm::StoreMode::kReplace), 0);
  const ndbm::Datum d = db->Fetch(ndbm::Datum("key"));
  ASSERT_FALSE(d.null());
  EXPECT_EQ(d.view(), "value");
  EXPECT_EQ(db->Delete(ndbm::Datum("key")), 0);
  EXPECT_TRUE(db->Fetch(ndbm::Datum("key")).null());
  EXPECT_EQ(db->Delete(ndbm::Datum("key")), -1);
}

TEST(NdbmCompatTest, InsertModeRefusesDuplicates) {
  auto db = std::move(ndbm::Db::Open(TempPath("ndbmi")).value());
  EXPECT_EQ(db->Store(ndbm::Datum("k"), ndbm::Datum("v1"), ndbm::StoreMode::kInsert), 0);
  EXPECT_EQ(db->Store(ndbm::Datum("k"), ndbm::Datum("v2"), ndbm::StoreMode::kInsert), 1);
  EXPECT_EQ(db->Fetch(ndbm::Datum("k")).view(), "v1");
  EXPECT_EQ(db->Store(ndbm::Datum("k"), ndbm::Datum("v2"), ndbm::StoreMode::kReplace), 0);
  EXPECT_EQ(db->Fetch(ndbm::Datum("k")).view(), "v2");
}

TEST(NdbmCompatTest, FirstkeyNextkeyEnumeratesAll) {
  auto db = std::move(ndbm::Db::Open(TempPath("ndbms")).value());
  std::set<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "seq" + std::to_string(i);
    ASSERT_EQ(db->Store(ndbm::Datum(key), ndbm::Datum("d"), ndbm::StoreMode::kInsert), 0);
    expected.insert(key);
  }
  std::set<std::string> seen;
  for (ndbm::Datum k = db->Firstkey(); !k.null(); k = db->Nextkey()) {
    EXPECT_TRUE(seen.insert(std::string(k.view())).second);
  }
  EXPECT_EQ(seen, expected);
}

TEST(NdbmCompatTest, EnhancedFunctionalityLargePairs) {
  // "Inserts never fail because key and/or associated data is too large."
  auto db = std::move(ndbm::Db::Open(TempPath("ndbml")).value());
  const std::string huge(100000, 'x');
  EXPECT_EQ(db->Store(ndbm::Datum("huge"), ndbm::Datum(huge), ndbm::StoreMode::kReplace), 0);
  EXPECT_EQ(db->Fetch(ndbm::Datum("huge")).view(), huge);
}

TEST(NdbmCompatTest, MultipleDatabasesConcurrently) {
  auto a = std::move(ndbm::Db::Open(TempPath("ndbm_a")).value());
  auto b = std::move(ndbm::Db::Open(TempPath("ndbm_b")).value());
  ASSERT_EQ(a->Store(ndbm::Datum("k"), ndbm::Datum("in-a"), ndbm::StoreMode::kReplace), 0);
  ASSERT_EQ(b->Store(ndbm::Datum("k"), ndbm::Datum("in-b"), ndbm::StoreMode::kReplace), 0);
  EXPECT_EQ(a->Fetch(ndbm::Datum("k")).view(), "in-a");
  EXPECT_EQ(b->Fetch(ndbm::Datum("k")).view(), "in-b");
}

TEST(NdbmCompatTest, PersistsAcrossReopen) {
  const std::string path = TempPath("ndbmp");
  {
    auto db = std::move(ndbm::Db::Open(path).value());
    ASSERT_EQ(db->Store(ndbm::Datum("stay"), ndbm::Datum("here"), ndbm::StoreMode::kReplace), 0);
    ASSERT_OK(db->Sync());
  }
  auto db = std::move(ndbm::Db::Open(path).value());
  EXPECT_EQ(db->Fetch(ndbm::Datum("stay")).view(), "here");
}

// ---- hsearch interface ----

TEST(HsearchCompatTest, EnterAndFind) {
  auto table = std::move(hsearch::Table::Create(100).value());
  int payload = 42;
  hsearch::Entry entry{"answer", &payload};
  hsearch::Entry result;
  ASSERT_OK(table->Search(entry, hsearch::Action::kEnter, &result));
  EXPECT_EQ(result.data, &payload);

  hsearch::Entry probe{"answer", nullptr};
  ASSERT_OK(table->Search(probe, hsearch::Action::kFind, &result));
  EXPECT_EQ(result.data, &payload);
  EXPECT_TRUE(
      table->Search({"missing", nullptr}, hsearch::Action::kFind, &result).IsNotFound());
}

TEST(HsearchCompatTest, EnterKeepsExistingEntry) {
  // hsearch(3)'s contract: ENTER on an existing key returns the existing
  // entry and does not replace it.
  auto table = std::move(hsearch::Table::Create(10).value());
  int a = 1;
  int b = 2;
  hsearch::Entry result;
  ASSERT_OK(table->Search({"k", &a}, hsearch::Action::kEnter, &result));
  ASSERT_OK(table->Search({"k", &b}, hsearch::Action::kEnter, &result));
  EXPECT_EQ(result.data, &a);
  EXPECT_EQ(table->size(), 1u);
}

TEST(HsearchCompatTest, GrowsPastNelem) {
  // "Files may grow beyond nelem elements" — unlike System V hsearch.
  auto table = std::move(hsearch::Table::Create(4).value());
  hsearch::Entry result;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(table->Search({"grow" + std::to_string(i), nullptr}, hsearch::Action::kEnter,
                            &result));
  }
  EXPECT_EQ(table->size(), 1000u);
  ASSERT_OK(table->Search({"grow999", nullptr}, hsearch::Action::kFind, &result));
}

TEST(HsearchCompatTest, MultipleTablesConcurrently) {
  // "Multiple hash tables may be accessed concurrently" — the native
  // interface fixes hsearch's single-global-table embedding.
  auto t1 = std::move(hsearch::Table::Create(10).value());
  auto t2 = std::move(hsearch::Table::Create(10).value());
  int x = 1;
  int y = 2;
  hsearch::Entry result;
  ASSERT_OK(t1->Search({"k", &x}, hsearch::Action::kEnter, &result));
  ASSERT_OK(t2->Search({"k", &y}, hsearch::Action::kEnter, &result));
  ASSERT_OK(t1->Search({"k", nullptr}, hsearch::Action::kFind, &result));
  EXPECT_EQ(result.data, &x);
  ASSERT_OK(t2->Search({"k", nullptr}, hsearch::Action::kFind, &result));
  EXPECT_EQ(result.data, &y);
}

TEST(HsearchCompatTest, GlobalShims) {
  ASSERT_TRUE(hsearch::HCreate(50));
  int v = 7;
  hsearch::Entry* entered = hsearch::HSearch({"global", &v}, hsearch::Action::kEnter);
  ASSERT_NE(entered, nullptr);
  hsearch::Entry* found = hsearch::HSearch({"global", nullptr}, hsearch::Action::kFind);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->data, &v);
  EXPECT_EQ(hsearch::HSearch({"nope", nullptr}, hsearch::Action::kFind), nullptr);
  hsearch::HDestroy();
  EXPECT_EQ(hsearch::HSearch({"global", nullptr}, hsearch::Action::kFind), nullptr);
}

}  // namespace
}  // namespace hashkit
