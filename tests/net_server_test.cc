// End-to-end tests for hashkit-net: an in-process epoll server on loopback
// serving a sharded on-disk store, driven by pipelining clients from
// multiple threads.  The headline test verifies the data AFTER a server
// shutdown and store reopen — what reached the wire must have reached the
// file.  These run under TSan via the `net`/`stress` ctest labels.

#include "src/net/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "tests/test_util.h"

namespace hashkit {
namespace net {
namespace {

using kv::KvStore;
using kv::OpenStore;
using kv::StoreKind;
using kv::StoreOptions;

std::string ShardedTempPath(const std::string& tag, int shards) {
  const std::string path = TempPath("net_" + tag);
  for (int s = 0; s < shards; ++s) {
    std::remove((path + ".s" + std::to_string(s)).c_str());
  }
  return path;
}

// The per-thread deterministic workload: thread `t` owns keys "t<t>-<i>".
std::string KeyOf(int t, int i) { return "t" + std::to_string(t) + "-" + std::to_string(i); }
std::string ValueOf(int t, int i) {
  // Mix of small and ~8K values so frames span multiple reads/writes.
  std::string v = "v" + std::to_string(t) + ":" + std::to_string(i) + ":";
  if (i % 17 == 0) {
    v += std::string(8192, static_cast<char>('a' + (i % 26)));
  }
  return v;
}

TEST(NetServerTest, EndToEndMixedWorkloadSurvivesRestart) {
  constexpr int kShards = 4;
  constexpr int kThreads = 4;
  constexpr int kKeys = 240;
  constexpr size_t kPipelineDepth = 16;
  const std::string path = ShardedTempPath("e2e", kShards);

  StoreOptions store_options;
  store_options.path = path;
  store_options.truncate = true;
  store_options.shards = kShards;
  auto opened = OpenStore(StoreKind::kHashDisk, store_options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<KvStore> store = std::move(opened).value();

  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  auto server = std::make_unique<Server>(store.get(), server_options);
  ASSERT_OK(server->Start());
  const uint16_t port = server->port();
  ASSERT_GT(port, 0);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, port, &failures] {
      auto connected = Client::Connect("127.0.0.1", port);
      if (!connected.ok()) {
        ++failures;
        return;
      }
      auto client = std::move(connected).value();

      // Phase 1: pipelined PUTs, kPipelineDepth frames per round trip,
      // with a SCAN spliced into every batch (mixed workload on the wire).
      std::vector<Request> batch;
      std::vector<Response> responses;
      for (int i = 0; i < kKeys;) {
        batch.clear();
        while (batch.size() < kPipelineDepth && i < kKeys) {
          Request req;
          req.op = Opcode::kPut;
          req.key = KeyOf(t, i);
          req.value = ValueOf(t, i);
          batch.push_back(std::move(req));
          ++i;
        }
        Request scan;
        scan.op = Opcode::kScan;
        scan.flags = kFlagScanFirst;
        batch.push_back(std::move(scan));
        if (!client->Pipeline(batch, &responses).ok()) {
          ++failures;
          return;
        }
        for (size_t r = 0; r + 1 < responses.size(); ++r) {
          if (responses[r].status != StatusCode::kOk) {
            ++failures;
          }
        }
        // The scan shares one cursor across all connections; it may land
        // anywhere (or run dry) but must not error.
        const StatusCode scan_status = responses.back().status;
        if (scan_status != StatusCode::kOk && scan_status != StatusCode::kNotFound) {
          ++failures;
        }
      }

      // Phase 2: pipelined GET verification of this thread's keys.
      for (int i = 0; i < kKeys;) {
        batch.clear();
        const int base = i;
        while (batch.size() < kPipelineDepth && i < kKeys) {
          Request req;
          req.op = Opcode::kGet;
          req.key = KeyOf(t, i);
          batch.push_back(std::move(req));
          ++i;
        }
        if (!client->Pipeline(batch, &responses).ok()) {
          ++failures;
          return;
        }
        for (size_t r = 0; r < responses.size(); ++r) {
          if (responses[r].status != StatusCode::kOk ||
              responses[r].value != ValueOf(t, base + static_cast<int>(r))) {
            ++failures;
          }
        }
      }

      // Phase 3: pipelined DELETE of every third key.
      batch.clear();
      for (int i = 0; i < kKeys; i += 3) {
        Request req;
        req.op = Opcode::kDel;
        req.key = KeyOf(t, i);
        batch.push_back(std::move(req));
      }
      if (!client->Pipeline(batch, &responses).ok()) {
        ++failures;
        return;
      }
      for (const Response& resp : responses) {
        if (resp.status != StatusCode::kOk) {
          ++failures;
        }
      }
      if (!client->Sync().ok()) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  EXPECT_EQ(server->stats().connections_accepted.load(), static_cast<uint64_t>(kThreads));
  EXPECT_GT(server->stats().TotalRequests(), 0u);
  EXPECT_EQ(server->stats().malformed_frames.load(), 0u);

  // Restart: tear the server down, close the store, reopen from disk.
  server->Stop();
  server.reset();
  const uint64_t expected_size = store->Size();
  store.reset();

  store_options.truncate = false;
  auto reopened = OpenStore(StoreKind::kHashDisk, store_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const std::unique_ptr<KvStore> verify = std::move(reopened).value();
  EXPECT_EQ(verify->Size(), expected_size);
  std::string value;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeys; ++i) {
      const Status st = verify->Get(KeyOf(t, i), &value);
      if (i % 3 == 0) {
        EXPECT_TRUE(st.IsNotFound()) << KeyOf(t, i) << ": " << st.ToString();
      } else {
        ASSERT_OK(st) << KeyOf(t, i);
        EXPECT_EQ(value, ValueOf(t, i));
      }
    }
  }
}

TEST(NetServerTest, SingleClientOperationsAndStatuses) {
  StoreOptions store_options;
  auto opened = OpenStore(StoreKind::kHashMemory, store_options);
  ASSERT_TRUE(opened.ok());
  auto store = kv::MakeSynchronized(std::move(opened).value());

  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 1;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();

  ASSERT_OK(client->Ping("hello"));
  ASSERT_OK(client->Put("k1", "v1"));
  EXPECT_TRUE(client->Put("k1", "other", /*overwrite=*/false).IsExists());
  std::string value;
  ASSERT_OK(client->Get("k1", &value));
  EXPECT_EQ(value, "v1");
  EXPECT_TRUE(client->Get("missing", &value).IsNotFound());
  ASSERT_OK(client->Delete("k1"));
  EXPECT_TRUE(client->Get("k1", &value).IsNotFound());
  EXPECT_TRUE(client->Delete("k1").IsNotFound());
  ASSERT_OK(client->Sync());

  // Scan walks exactly the remaining pairs.
  ASSERT_OK(client->Put("a", "1"));
  ASSERT_OK(client->Put("b", "2"));
  std::string key;
  int seen = 0;
  Status st = client->Scan(&key, &value, true);
  while (st.ok()) {
    ++seen;
    st = client->Scan(&key, &value, false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, 2);

  server.Stop();
}

// Regression: SCAN used to share the store's single cursor across every
// connection, so two interleaved scan streams corrupted each other (each
// SCAN FIRST rewound the other client mid-iteration).  With per-connection
// snapshot cursors, each pipelined stream walks its own complete,
// point-in-time view — even with the two streams interleaved batch by
// batch and a writer churning between batches.
TEST(NetServerTest, TwoInterleavedPipelinedScansEachSeeCompleteIterations) {
  StoreOptions store_options;
  auto opened = OpenStore(StoreKind::kHashMemory, store_options);
  ASSERT_TRUE(opened.ok());
  auto store = kv::MakeSynchronized(std::move(opened).value());
  ASSERT_TRUE(store->Caps().snapshots);

  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  constexpr int kKeys = 150;
  auto writer = std::move(Client::Connect("127.0.0.1", server.port())).value();
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(writer->Put("scan" + std::to_string(i), "sv" + std::to_string(i)));
  }

  auto a = std::move(Client::Connect("127.0.0.1", server.port())).value();
  auto b = std::move(Client::Connect("127.0.0.1", server.port())).value();

  // One pipelined batch of SCAN frames per call; first=true only on the
  // opening batch of each stream.
  constexpr size_t kDepth = 8;
  const auto scan_batch = [](Client* client, bool first,
                             std::vector<std::string>* out) -> bool {
    std::vector<Request> batch(kDepth);
    for (size_t i = 0; i < kDepth; ++i) {
      batch[i].op = Opcode::kScan;
      batch[i].flags = (first && i == 0) ? kFlagScanFirst : 0;
    }
    std::vector<Response> responses;
    EXPECT_OK(client->Pipeline(batch, &responses));
    for (const Response& resp : responses) {
      if (resp.status == StatusCode::kNotFound) {
        return false;  // stream complete (later frames also report NotFound)
      }
      EXPECT_EQ(resp.status, StatusCode::kOk);
      out->push_back(resp.key);
    }
    return true;
  };

  // Interleave: a batch on A, a batch on B, churn, repeat until both dry.
  std::vector<std::string> seen_a;
  std::vector<std::string> seen_b;
  bool more_a = scan_batch(a.get(), true, &seen_a);
  bool more_b = scan_batch(b.get(), true, &seen_b);
  int churn = 0;
  while (more_a || more_b) {
    if (more_a) {
      more_a = scan_batch(a.get(), false, &seen_a);
    }
    if (more_b) {
      more_b = scan_batch(b.get(), false, &seen_b);
    }
    // Writes between batches must not perturb either stream.
    ASSERT_OK(writer->Put("churn" + std::to_string(churn), "c"));
    ASSERT_OK(writer->Delete("scan" + std::to_string(churn % kKeys)));
    ++churn;
  }

  // Each stream saw every pre-scan key exactly once, despite interleaving
  // and churn (the churn keys postdate both snapshots).
  for (auto* seen : {&seen_a, &seen_b}) {
    std::vector<std::string> sorted = *seen;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), static_cast<size_t>(kKeys));
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
        << "duplicate key in a scan stream";
    for (const std::string& key : sorted) {
      EXPECT_EQ(key.rfind("scan", 0), 0u) << "churn key leaked into snapshot: " << key;
    }
  }

  server.Stop();
}

TEST(NetServerTest, StatsCommandReportsCountersAndStore) {
  StoreOptions store_options;
  store_options.shards = 2;
  auto opened = OpenStore(StoreKind::kHashMemory, store_options);
  ASSERT_TRUE(opened.ok());
  auto store = std::move(opened).value();

  ServerOptions server_options;
  server_options.port = 0;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto client = std::move(Client::Connect("127.0.0.1", server.port())).value();
  ASSERT_OK(client->Put("statkey", "statvalue"));
  std::string text;
  ASSERT_OK(client->Stats(&text));

  EXPECT_NE(text.find("server.connections_accepted=1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("server.requests.PUT=1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("server.malformed_frames=0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("store.size=1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("store.shards=2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("store.name=sharded(2x"), std::string::npos) << text;
  EXPECT_NE(text.find("store.table.puts=1\n"), std::string::npos) << text;

  server.Stop();
}

TEST(NetServerTest, IdleConnectionsAreSweptAndCounted) {
  StoreOptions store_options;
  auto opened = OpenStore(StoreKind::kHashMemory, store_options);
  ASSERT_TRUE(opened.ok());
  auto store = kv::MakeSynchronized(std::move(opened).value());

  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 1;
  server_options.idle_timeout_ms = 100;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto client = std::move(Client::Connect("127.0.0.1", server.port())).value();
  ASSERT_OK(client->Ping());

  // The sweep runs on the worker's ~1s tick; allow a generous window.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().idle_timeouts.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(server.stats().idle_timeouts.load(), 1u);
  EXPECT_EQ(server.stats().connections_active.load(), 0u);

  // The dropped connection surfaces as an I/O error on the next call.
  EXPECT_FALSE(client->Ping().ok());
  server.Stop();
}

TEST(NetServerTest, StopWithLiveConnectionsDoesNotHang) {
  StoreOptions store_options;
  auto opened = OpenStore(StoreKind::kHashMemory, store_options);
  ASSERT_TRUE(opened.ok());
  auto store = kv::MakeSynchronized(std::move(opened).value());

  ServerOptions server_options;
  server_options.port = 0;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto client = std::move(Client::Connect("127.0.0.1", server.port())).value();
  ASSERT_OK(client->Put("live", "yes"));
  server.Stop();  // client still connected
  EXPECT_FALSE(client->Ping().ok());
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace net
}  // namespace hashkit
