// Tests for the record-number access methods (src/recno).

#include "src/recno/recno.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace recno {
namespace {

FixedRecnoOptions SmallFixed() {
  FixedRecnoOptions options;
  options.record_size = 32;
  options.page_size = 256;
  return options;
}

TEST(FixedRecnoTest, AppendGetRoundTrip) {
  auto store = std::move(FixedRecno::OpenInMemory(SmallFixed()).value());
  EXPECT_EQ(store->Append("first").value(), 0u);
  EXPECT_EQ(store->Append("second").value(), 1u);
  EXPECT_EQ(store->Count(), 2u);
  std::string value;
  ASSERT_OK(store->Get(0, &value));
  EXPECT_EQ(value.size(), 32u);  // zero-padded to the record size
  EXPECT_EQ(value.substr(0, 5), "first");
  EXPECT_EQ(value[5], '\0');
  ASSERT_OK(store->Get(1, &value));
  EXPECT_EQ(value.substr(0, 6), "second");
  EXPECT_TRUE(store->Get(2, &value).IsNotFound());
}

TEST(FixedRecnoTest, SetExtendsWithZeroRecords) {
  auto store = std::move(FixedRecno::OpenInMemory(SmallFixed()).value());
  ASSERT_OK(store->Set(10, "ten"));
  EXPECT_EQ(store->Count(), 11u);
  std::string value;
  ASSERT_OK(store->Get(5, &value));
  EXPECT_EQ(value, std::string(32, '\0'));  // implicit zero record
  ASSERT_OK(store->Get(10, &value));
  EXPECT_EQ(value.substr(0, 3), "ten");
}

TEST(FixedRecnoTest, OverwriteInPlace) {
  auto store = std::move(FixedRecno::OpenInMemory(SmallFixed()).value());
  ASSERT_OK(store->Set(0, "before"));
  ASSERT_OK(store->Set(0, "after"));
  std::string value;
  ASSERT_OK(store->Get(0, &value));
  EXPECT_EQ(value.substr(0, 5), "after");
  EXPECT_EQ(value[5], '\0');  // no residue from the longer old value
  EXPECT_EQ(store->Count(), 1u);
}

TEST(FixedRecnoTest, OversizedRecordRejected) {
  auto store = std::move(FixedRecno::OpenInMemory(SmallFixed()).value());
  EXPECT_EQ(store->Set(0, std::string(33, 'x')).code(), StatusCode::kInvalidArgument);
  ASSERT_OK(store->Set(0, std::string(32, 'x')));  // exactly record_size: fine
}

TEST(FixedRecnoTest, BadGeometryRejected) {
  FixedRecnoOptions options;
  options.record_size = 0;
  EXPECT_FALSE(FixedRecno::OpenInMemory(options).ok());
  options.record_size = 300;
  options.page_size = 256;  // record larger than page payload
  EXPECT_FALSE(FixedRecno::OpenInMemory(options).ok());
}

TEST(FixedRecnoTest, ManyRecordsAcrossPages) {
  auto store = std::move(FixedRecno::OpenInMemory(SmallFixed()).value());
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_OK(store->Set(i, "rec" + std::to_string(i)));
  }
  std::string value;
  for (uint64_t i = 0; i < 5000; i += 37) {
    ASSERT_OK(store->Get(i, &value));
    ASSERT_EQ(value.substr(0, 3 + std::to_string(i).size()), "rec" + std::to_string(i));
  }
}

TEST(FixedRecnoTest, PersistsAcrossReopen) {
  const std::string path = TempPath("recno_fixed");
  {
    auto store = std::move(FixedRecno::Open(path, SmallFixed(), true).value());
    for (uint64_t i = 0; i < 300; ++i) {
      ASSERT_OK(store->Set(i, "persist" + std::to_string(i)));
    }
    ASSERT_OK(store->Sync());
  }
  auto store = std::move(FixedRecno::Open(path, SmallFixed()).value());
  EXPECT_EQ(store->Count(), 300u);
  std::string value;
  ASSERT_OK(store->Get(123, &value));
  EXPECT_EQ(value.substr(0, 10), "persist123");
  // Wrong geometry on reopen is rejected.
  FixedRecnoOptions wrong = SmallFixed();
  wrong.record_size = 64;
  EXPECT_FALSE(FixedRecno::Open(path, wrong).ok());
}

TEST(VarRecnoTest, AppendGetSetDelete) {
  btree::BtOptions options;
  options.page_size = 512;
  auto store = std::move(VarRecno::OpenInMemory(options).value());
  EXPECT_EQ(store->Append("alpha").value(), 0u);
  EXPECT_EQ(store->Append(std::string(3000, 'B')).value(), 1u);  // big record
  EXPECT_EQ(store->Append("gamma").value(), 2u);
  std::string value;
  ASSERT_OK(store->Get(1, &value));
  EXPECT_EQ(value, std::string(3000, 'B'));
  ASSERT_OK(store->Set(1, "replaced"));
  ASSERT_OK(store->Get(1, &value));
  EXPECT_EQ(value, "replaced");
  ASSERT_OK(store->Delete(1));
  EXPECT_TRUE(store->Get(1, &value).IsNotFound());
  // Deletion leaves a hole; numbering is stable.
  ASSERT_OK(store->Get(2, &value));
  EXPECT_EQ(value, "gamma");
  EXPECT_EQ(store->Count(), 3u);
  EXPECT_EQ(store->Present(), 2u);
}

TEST(VarRecnoTest, ScanInNumberOrderSkipsHoles) {
  btree::BtOptions options;
  options.page_size = 512;
  auto store = std::move(VarRecno::OpenInMemory(options).value());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(store->Append("r" + std::to_string(i)).status());
  }
  for (int i = 0; i < 100; i += 3) {
    ASSERT_OK(store->Delete(i));
  }
  uint64_t recno = 0;
  std::string value;
  uint64_t prev = 0;
  bool first = true;
  size_t seen = 0;
  Status st = store->Scan(&recno, &value, /*first=*/true);
  while (st.ok()) {
    EXPECT_NE(recno % 3, 0u);  // holes skipped
    if (!first) {
      EXPECT_GT(recno, prev);  // strictly ascending record numbers
    }
    EXPECT_EQ(value, "r" + std::to_string(recno));
    prev = recno;
    first = false;
    ++seen;
    st = store->Scan(&recno, &value, false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, store->Present());
}

TEST(VarRecnoTest, SparseSetAndCount) {
  btree::BtOptions options;
  options.page_size = 512;
  auto store = std::move(VarRecno::OpenInMemory(options).value());
  ASSERT_OK(store->Set(1000000, "way out there"));
  EXPECT_EQ(store->Count(), 1000001u);
  EXPECT_EQ(store->Present(), 1u);
  EXPECT_EQ(store->Append("next").value(), 1000001u);
  std::string value;
  EXPECT_TRUE(store->Get(500, &value).IsNotFound());
}

TEST(VarRecnoTest, AppendPositionSurvivesReopen) {
  const std::string path = TempPath("recno_var");
  btree::BtOptions options;
  options.page_size = 512;
  {
    auto store = std::move(VarRecno::Open(path, options, /*truncate=*/true).value());
    for (int i = 0; i < 500; ++i) {
      ASSERT_OK(store->Append("v" + std::to_string(i)).status());
    }
    ASSERT_OK(store->Sync());
  }
  auto store = std::move(VarRecno::Open(path, options).value());
  EXPECT_EQ(store->Count(), 500u);
  EXPECT_EQ(store->Append("after-reopen").value(), 500u);
  std::string value;
  ASSERT_OK(store->Get(499, &value));
  EXPECT_EQ(value, "v499");
}

TEST(VarRecnoTest, RandomOpsMatchReference) {
  btree::BtOptions options;
  options.page_size = 512;
  auto store = std::move(VarRecno::OpenInMemory(options).value());
  Rng rng(91);
  std::map<uint64_t, std::string> model;
  uint64_t next = 0;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.Uniform(10);
    if (op < 4) {
      const std::string value = rng.ByteString(rng.Range(0, 200));
      const uint64_t recno = store->Append(value).value();
      ASSERT_EQ(recno, next);
      model[next++] = value;
    } else if (op < 6 && next > 0) {
      const uint64_t recno = rng.Uniform(next);
      const std::string value = rng.ByteString(rng.Range(0, 200));
      ASSERT_OK(store->Set(recno, value));
      model[recno] = value;
    } else if (op < 8 && next > 0) {
      const uint64_t recno = rng.Uniform(next);
      const Status st = store->Delete(recno);
      if (model.erase(recno)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else if (next > 0) {
      const uint64_t recno = rng.Uniform(next);
      std::string value;
      const Status st = store->Get(recno, &value);
      const auto it = model.find(recno);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
  }
  EXPECT_EQ(store->Present(), model.size());
  EXPECT_EQ(store->Count(), next);
  ASSERT_OK(store->tree()->CheckIntegrity());
}

}  // namespace
}  // namespace recno
}  // namespace hashkit
