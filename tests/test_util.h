// Shared test helpers.

#ifndef HASHKIT_TESTS_TEST_UTIL_H_
#define HASHKIT_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/util/status.h"

namespace hashkit {

// gtest-friendly status assertions (support << message chaining).
inline ::testing::AssertionResult IsOkPredFormat(const char* expr_text,
                                                 const ::hashkit::Status& st) {
  if (st.ok()) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << expr_text << " returned " << st.ToString();
}

#define ASSERT_OK(expr) ASSERT_PRED_FORMAT1(::hashkit::IsOkPredFormat, (expr))
#define EXPECT_OK(expr) EXPECT_PRED_FORMAT1(::hashkit::IsOkPredFormat, (expr))

// A unique path under the test temp dir; any existing file is removed.
inline std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "hashkit_" + name + "_" +
                           std::to_string(::getpid());
  std::remove(path.c_str());
  std::remove((path + ".pag").c_str());
  std::remove((path + ".dir").c_str());
  return path;
}

}  // namespace hashkit

#endif  // HASHKIT_TESTS_TEST_UTIL_H_
