// Unit tests for the btree slotted-page layout (src/btree/bt_page.h).

#include "src/btree/bt_page.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/util/random.h"

namespace hashkit {
namespace btree {
namespace {

class BtPageTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    buf_.assign(GetParam(), 0xCD);  // recycled memory: Init must clear it
    BtPageView::Init(buf_.data(), buf_.size(), BtPageType::kLeaf, 0);
  }
  BtPageView View() { return BtPageView(buf_.data(), buf_.size()); }

  std::vector<uint8_t> buf_;
};

TEST_P(BtPageTest, InitProducesEmptyValidPage) {
  BtPageView view = View();
  EXPECT_EQ(view.nentries(), 0);
  EXPECT_EQ(view.level(), 0);
  EXPECT_EQ(view.type(), BtPageType::kLeaf);
  EXPECT_EQ(view.link(), 0u);
  EXPECT_EQ(view.garbage(), 0);
  EXPECT_TRUE(view.Validate());
}

TEST_P(BtPageTest, SortedInsertAndLowerBound) {
  BtPageView view = View();
  // Insert out of order at computed positions.
  const char* keys[] = {"delta", "alpha", "echo", "charlie", "bravo"};
  for (const char* key : keys) {
    bool found = false;
    const uint16_t pos = view.LowerBound(key, &found);
    EXPECT_FALSE(found);
    view.InsertAt(pos, key, "v");
  }
  ASSERT_EQ(view.nentries(), 5);
  EXPECT_EQ(view.Entry(0).key, "alpha");
  EXPECT_EQ(view.Entry(1).key, "bravo");
  EXPECT_EQ(view.Entry(2).key, "charlie");
  EXPECT_EQ(view.Entry(3).key, "delta");
  EXPECT_EQ(view.Entry(4).key, "echo");
  EXPECT_TRUE(view.Validate());

  bool found = false;
  EXPECT_EQ(view.LowerBound("charlie", &found), 2);
  EXPECT_TRUE(found);
  EXPECT_EQ(view.LowerBound("cz", &found), 3);
  EXPECT_FALSE(found);
  EXPECT_EQ(view.LowerBound("zz", &found), 5);
  EXPECT_EQ(view.LowerBound("", &found), 0);
}

TEST_P(BtPageTest, RemoveCreatesGarbageCompactReclaims) {
  BtPageView view = View();
  view.InsertAt(0, "aaa", "111");
  view.InsertAt(1, "bbb", "222");
  view.InsertAt(2, "ccc", "333");
  const size_t free_before = view.FreeSpace();
  view.RemoveAt(1);
  EXPECT_EQ(view.garbage(), 6);                       // "bbb" + "222"
  EXPECT_EQ(view.FreeSpace(), free_before + kBtSlotSize);  // slot back, bytes not yet
  view.Compact();
  EXPECT_EQ(view.garbage(), 0);
  EXPECT_EQ(view.FreeSpace(), free_before + kBtSlotSize + 6);
  EXPECT_EQ(view.Entry(0).key, "aaa");
  EXPECT_EQ(view.Entry(1).key, "ccc");
  EXPECT_EQ(view.Entry(1).payload, "333");
  EXPECT_TRUE(view.Validate());
}

TEST_P(BtPageTest, InsertTriggersCompactionWhenFragmented) {
  BtPageView view = View();
  // Fill the page, delete every other entry (fragmentation), then insert
  // something that only fits after compaction.
  Rng rng(GetParam());
  uint16_t i = 0;
  while (view.Fits(8, 8)) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06u", i++);
    bool found;
    view.InsertAt(view.LowerBound(key, &found), key, "12345678");
  }
  const uint16_t n = view.nentries();
  for (uint16_t j = n; j-- > 0;) {
    if (j % 2 == 0) {
      view.RemoveAt(j);
    }
  }
  EXPECT_GT(view.garbage(), 0);
  ASSERT_TRUE(view.FitsAfterCompact(10, 30));
  bool found;
  view.InsertAt(view.LowerBound("zzzzzzzzzz", &found), "zzzzzzzzzz",
                std::string(30, 'Z'));
  EXPECT_TRUE(view.Validate());
  EXPECT_EQ(view.Entry(view.nentries() - 1).key, "zzzzzzzzzz");
}

TEST_P(BtPageTest, BigValueStubRoundTrip) {
  BtPageView view = View();
  view.InsertBigStubAt(0, "bigkey", 0xabcd, 123456);
  const BtEntry entry = view.Entry(0);
  EXPECT_TRUE(entry.big);
  EXPECT_EQ(entry.key, "bigkey");
  EXPECT_EQ(entry.chain_page, 0xabcdu);
  EXPECT_EQ(entry.total_len, 123456u);
  EXPECT_TRUE(view.Validate());
  // Stubs survive compaction with the flag intact.
  view.InsertAt(1, "zmall", "v");
  view.RemoveAt(1);
  view.Compact();
  EXPECT_TRUE(view.Entry(0).big);
  EXPECT_EQ(view.Entry(0).chain_page, 0xabcdu);
}

TEST_P(BtPageTest, InternalChildPayloads) {
  BtPageView::Init(buf_.data(), buf_.size(), BtPageType::kInternal, 1);
  BtPageView view = View();
  view.set_link(77);  // leftmost child
  uint8_t child[4];
  EncodeChildInto(1234, child);
  view.InsertAt(0, "mmm", std::string_view(reinterpret_cast<const char*>(child), 4));
  EXPECT_EQ(view.link(), 77u);
  EXPECT_EQ(DecodeChild(view.Entry(0).payload), 1234u);
  EXPECT_EQ(view.level(), 1);
  EXPECT_TRUE(view.Validate());
}

TEST_P(BtPageTest, BytesInRangeSumsSlotAndPayload) {
  BtPageView view = View();
  view.InsertAt(0, "aa", "1111");   // 8 + 2 + 4 = 14
  view.InsertAt(1, "bbb", "22");    // 8 + 3 + 2 = 13
  EXPECT_EQ(view.BytesInRange(0, 1), 14u);
  EXPECT_EQ(view.BytesInRange(0, 2), 27u);
  EXPECT_EQ(view.BytesInRange(1, 1), 0u);
}

TEST_P(BtPageTest, RandomizedMirrorsReferenceMap) {
  Rng rng(GetParam() * 31 + 7);
  BtPageView view = View();
  std::map<std::string, std::string> model;
  for (int step = 0; step < 3000; ++step) {
    const std::string key = "k" + std::to_string(rng.Uniform(200));
    bool found = false;
    const uint16_t pos = view.LowerBound(key, &found);
    if (rng.Bernoulli(0.6)) {
      const std::string value = rng.AsciiString(rng.Range(0, 12));
      if (found) {
        view.RemoveAt(pos);
      }
      if (!view.FitsAfterCompact(key.size(), value.size())) {
        if (found) {
          model.erase(key);  // mirror the removal that already happened
        }
        continue;
      }
      bool found2 = false;
      view.InsertAt(view.LowerBound(key, &found2), key, value);
      model[key] = value;
    } else if (found) {
      view.RemoveAt(pos);
      model.erase(key);
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(view.Validate()) << "step " << step;
    }
  }
  ASSERT_TRUE(view.Validate());
  ASSERT_EQ(view.nentries(), model.size());
  uint16_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(view.Entry(i).key, k);
    EXPECT_EQ(view.Entry(i).payload, v);
    ++i;
  }
}

TEST_P(BtPageTest, SegmentAccessors) {
  BtPageView::Init(buf_.data(), buf_.size(), BtPageType::kOverflow, 0);
  BtPageView view = View();
  EXPECT_EQ(view.SegCapacity(), GetParam() - kBtHeaderSize);
  const std::string payload = "overflow-bytes";
  std::copy(payload.begin(), payload.end(), view.SegData());
  view.set_seg_used(static_cast<uint16_t>(payload.size()));
  view.set_link(99);
  EXPECT_EQ(view.seg_used(), payload.size());
  EXPECT_EQ(view.link(), 99u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BtPageTest, ::testing::Values(512, 1024, 4096, 32768),
                         [](const ::testing::TestParamInfo<size_t>& param_info) {
                           return "p" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace btree
}  // namespace hashkit
