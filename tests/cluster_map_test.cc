// Unit tests for the LH* cluster map: the (level, next) addressing math,
// split-pointer advancement (including level rollover), bootstrap shapes,
// and the serialize/deserialize wire format with its corruption checks.

#include "src/cluster/cluster_map.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/test_util.h"

namespace hashkit {
namespace cluster {
namespace {

std::vector<NodeInfo> MakeNodes(int n) {
  std::vector<NodeInfo> nodes;
  for (int i = 0; i < n; ++i) {
    NodeInfo node;
    node.id = static_cast<uint32_t>(i);
    node.host = "127.0.0.1";
    node.port = static_cast<uint16_t>(5000 + i);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

TEST(ClusterMapTest, BucketOfHashIsThePaperAddressing) {
  ClusterMap map;
  map.version = 1;
  map.level = 2;
  map.next = 1;
  map.nodes = MakeNodes(1);
  map.bucket_owner.assign(5, 0);  // next + 2^level = 1 + 4

  // h & 3 lands at or past next: low bits decide.
  EXPECT_EQ(map.BucketOfHash(0b001), 1u);
  EXPECT_EQ(map.BucketOfHash(0b111), 3u);
  // h & 3 == 0 < next: the split bucket re-addresses with level+1 bits.
  EXPECT_EQ(map.BucketOfHash(0b000), 0u);
  EXPECT_EQ(map.BucketOfHash(0b100), 4u);  // bit 2 set -> the new bucket
}

TEST(ClusterMapTest, KeyHashIsDeterministic) {
  EXPECT_EQ(ClusterKeyHash("alpha"), ClusterKeyHash("alpha"));
  EXPECT_NE(ClusterKeyHash("alpha"), ClusterKeyHash("beta"));
}

TEST(ClusterMapTest, AdvanceSplitRollsTheLevelOver) {
  auto boot = ClusterMap::Bootstrap(MakeNodes(1));
  ASSERT_OK(boot.status());
  ClusterMap map = std::move(boot).value();
  EXPECT_EQ(map.level, 0);
  EXPECT_EQ(map.next, 0u);
  EXPECT_EQ(map.bucket_count(), 1u);

  // Splitting bucket 0 creates bucket 1 and wraps next back to 0 at the
  // higher level (the table's doubling cadence, across nodes).
  EXPECT_EQ(map.AdvanceSplit(0), 1u);
  EXPECT_EQ(map.level, 1);
  EXPECT_EQ(map.next, 0u);
  EXPECT_EQ(map.bucket_count(), 2u);
  EXPECT_EQ(map.version, 2u);

  // Mid-level split: next advances without a rollover.
  EXPECT_EQ(map.AdvanceSplit(0), 2u);
  EXPECT_EQ(map.level, 1);
  EXPECT_EQ(map.next, 1u);
  EXPECT_EQ(map.bucket_count(), 3u);

  EXPECT_EQ(map.AdvanceSplit(0), 3u);
  EXPECT_EQ(map.level, 2);
  EXPECT_EQ(map.next, 0u);
  EXPECT_EQ(map.bucket_count(), 4u);
}

TEST(ClusterMapTest, BootstrapDealsBucketsRoundRobin) {
  auto boot = ClusterMap::Bootstrap(MakeNodes(3));
  ASSERT_OK(boot.status());
  const ClusterMap map = std::move(boot).value();
  EXPECT_EQ(map.version, 1u);
  EXPECT_EQ(map.level, 2);  // ceil(log2(3))
  EXPECT_EQ(map.next, 0u);
  EXPECT_EQ(map.bucket_count(), 4u);
  // Every node gets at least one bucket; all four are owned by known nodes.
  for (uint32_t id = 0; id < 3; ++id) {
    EXPECT_GE(map.BucketsOwnedBy(id), 1u) << "node " << id;
  }
  uint32_t total = 0;
  for (uint32_t id = 0; id < 3; ++id) {
    total += map.BucketsOwnedBy(id);
  }
  EXPECT_EQ(total, map.bucket_count());
}

TEST(ClusterMapTest, BootstrapPowerOfTwoIsExact) {
  auto boot = ClusterMap::Bootstrap(MakeNodes(4));
  ASSERT_OK(boot.status());
  const ClusterMap map = std::move(boot).value();
  EXPECT_EQ(map.bucket_count(), 4u);
  for (uint32_t id = 0; id < 4; ++id) {
    EXPECT_EQ(map.BucketsOwnedBy(id), 1u);
  }
}

TEST(ClusterMapTest, BootstrapRejectsDuplicateIds) {
  std::vector<NodeInfo> nodes = MakeNodes(2);
  nodes[1].id = nodes[0].id;
  EXPECT_FALSE(ClusterMap::Bootstrap(nodes).ok());
}

TEST(ClusterMapTest, SerializeRoundTripsWithTrailingPayload) {
  auto boot = ClusterMap::Bootstrap(MakeNodes(3));
  ASSERT_OK(boot.status());
  ClusterMap map = std::move(boot).value();
  map.AdvanceSplit(2);

  std::string bytes;
  map.Serialize(&bytes);
  const size_t map_len = bytes.size();
  bytes += "trailer";  // callers read markers after the map

  ClusterMap decoded;
  size_t consumed = 0;
  ASSERT_OK(decoded.Deserialize(bytes, &consumed));
  EXPECT_EQ(consumed, map_len);
  EXPECT_EQ(decoded.version, map.version);
  EXPECT_EQ(decoded.level, map.level);
  EXPECT_EQ(decoded.next, map.next);
  EXPECT_EQ(decoded.bucket_owner, map.bucket_owner);
  ASSERT_EQ(decoded.nodes.size(), map.nodes.size());
  for (size_t i = 0; i < map.nodes.size(); ++i) {
    EXPECT_TRUE(decoded.nodes[i] == map.nodes[i]);
  }
}

TEST(ClusterMapTest, DeserializeRejectsCorruption) {
  auto boot = ClusterMap::Bootstrap(MakeNodes(2));
  ASSERT_OK(boot.status());
  const ClusterMap map = std::move(boot).value();
  std::string good;
  map.Serialize(&good);

  ClusterMap out;
  size_t consumed = 0;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(out.Deserialize(bad_magic, &consumed).ok());

  EXPECT_FALSE(out.Deserialize(good.substr(0, good.size() / 2), &consumed).ok());
  EXPECT_FALSE(out.Deserialize("", &consumed).ok());

  // An owner id no node in the list carries must be refused: routing to it
  // would be routing to nowhere.
  std::string bad_owner = good;
  bad_owner[bad_owner.size() - 4] = 0x7F;
  EXPECT_FALSE(out.Deserialize(bad_owner, &consumed).ok());
}

TEST(ClusterMapTest, DeserializeValidatesBucketCountInvariant) {
  // bucket_count must equal next + 2^level; a map violating that would
  // address keys out of range.
  auto boot = ClusterMap::Bootstrap(MakeNodes(2));
  ASSERT_OK(boot.status());
  ClusterMap map = std::move(boot).value();
  map.next = 5;  // nonsense for level 1 / 2 buckets
  std::string bytes;
  map.Serialize(&bytes);
  ClusterMap out;
  size_t consumed = 0;
  EXPECT_FALSE(out.Deserialize(bytes, &consumed).ok());
}

}  // namespace
}  // namespace cluster
}  // namespace hashkit
