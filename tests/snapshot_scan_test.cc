// hashkit-mvcc: snapshot scan tests — point-in-time consistency while the
// table churns (splits, overflow allocation, page free/reuse), checkpoint
// deferral while a snapshot is live, and concurrent snapshot-scan-vs-writer
// hammers through the kv layer (the `stress` label puts those under TSan).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/hash_table.h"
#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

HashOptions SmallOptions() {
  HashOptions opts;
  opts.bsize = 256;  // small pages: splits and overflow come fast
  opts.ffactor = 8;
  opts.cachesize = 64 * 1024;
  return opts;
}

// Drains a snapshot cursor into a map, asserting no key repeats.
std::map<std::string, std::string> Drain(SnapshotCursor* cursor) {
  std::map<std::string, std::string> seen;
  std::string key;
  std::string value;
  Status st;
  while ((st = cursor->Next(&key, &value)).ok()) {
    EXPECT_EQ(seen.count(key), 0u) << "duplicate key in snapshot scan: " << key;
    seen[key] = value;
  }
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  return seen;
}

TEST(SnapshotScan, SeesPointInTimeWhileTableChurns) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(table->Put("k" + std::to_string(i), "v" + std::to_string(i)));
  }

  auto snap = table->CreateSnapshot();
  ASSERT_NE(snap, nullptr);

  // Churn hard after the snapshot: overwrite everything with longer values
  // (moves pairs, dirties pages), delete half, and add enough new keys to
  // force several more splits.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(table->Put("k" + std::to_string(i),
                         "overwritten-much-longer-value-" + std::to_string(i)));
  }
  for (int i = 0; i < kKeys; i += 2) {
    ASSERT_OK(table->Delete("k" + std::to_string(i)));
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(table->Put("new" + std::to_string(i), "nv" + std::to_string(i)));
  }

  // The snapshot still reads exactly the pre-churn state.
  auto cursor = table->NewSnapshotCursor(snap);
  const auto seen = Drain(&cursor);
  ASSERT_EQ(seen.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const auto it = seen.find("k" + std::to_string(i));
    ASSERT_NE(it, seen.end()) << "k" << i;
    EXPECT_EQ(it->second, "v" + std::to_string(i));
  }
  // And the live table reads the post-churn state.
  std::string value;
  ASSERT_OK(table->Get("k1", &value));
  EXPECT_EQ(value, "overwritten-much-longer-value-1");
  EXPECT_TRUE(table->Get("k0", &value).IsNotFound());
  ASSERT_OK(table->CheckIntegrity());
}

TEST(SnapshotScan, SurvivesOverflowPageFreeAndReuse) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  // Values far beyond the page size become big pairs on overflow chains.
  const std::string big(1200, 'x');
  constexpr int kBig = 24;
  for (int i = 0; i < kBig; ++i) {
    ASSERT_OK(table->Put("big" + std::to_string(i), big + std::to_string(i)));
  }

  auto snap = table->CreateSnapshot();

  // Free every overflow chain, then allocate fresh ones: the allocator
  // reuses the freed pages, which must not corrupt the snapshot's view of
  // the old chains (the pre-images are saved before bitmap/format writes).
  for (int i = 0; i < kBig; ++i) {
    ASSERT_OK(table->Delete("big" + std::to_string(i)));
  }
  const std::string other(1100, 'y');
  for (int i = 0; i < 2 * kBig; ++i) {
    ASSERT_OK(table->Put("other" + std::to_string(i), other + std::to_string(i)));
  }

  auto cursor = table->NewSnapshotCursor(snap);
  const auto seen = Drain(&cursor);
  ASSERT_EQ(seen.size(), static_cast<size_t>(kBig));
  for (int i = 0; i < kBig; ++i) {
    const auto it = seen.find("big" + std::to_string(i));
    ASSERT_NE(it, seen.end()) << "big" << i;
    EXPECT_EQ(it->second, big + std::to_string(i));
  }
  ASSERT_OK(table->CheckIntegrity());
}

TEST(SnapshotScan, ContractionDoesNotLeakIntoSnapshot) {
  HashOptions options = SmallOptions();
  options.auto_contract = true;
  auto table = std::move(HashTable::OpenInMemory(options).value());
  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(table->Put("c" + std::to_string(i), "cv" + std::to_string(i)));
  }
  auto snap = table->CreateSnapshot();
  // Deleting most pairs triggers contractions (bucket merges shrink the
  // masks); the snapshot's own Meta copy must keep iterating the old range.
  for (int i = 0; i < kKeys - 10; ++i) {
    ASSERT_OK(table->Delete("c" + std::to_string(i)));
  }
  auto cursor = table->NewSnapshotCursor(snap);
  const auto seen = Drain(&cursor);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kKeys));
  ASSERT_OK(table->CheckIntegrity());
}

TEST(SnapshotScan, CheckpointDeferredWhileSnapshotLive) {
  const std::string path = TempPath("snap_ckpt");
  std::remove((path + ".wal").c_str());
  HashOptions options = SmallOptions();
  options.durability = Durability::kSync;
  options.wal_checkpoint_bytes = 1;  // floor-clamped, still tiny: checkpoint often
  auto table = std::move(HashTable::Open(path, options, /*truncate=*/true).value());

  const std::string filler(200, 'f');
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(table->Put("pre" + std::to_string(i), filler));
  }

  auto snap = table->CreateSnapshot();
  uint64_t total_before = 0;
  std::string unused;
  ASSERT_OK(table->BackupReadWal(0, 0, &unused, &total_before));
  // Enough writes to trip the checkpoint threshold many times over; with
  // the snapshot pinned the log must only ever grow.
  uint64_t last = total_before;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(table->Put("r" + std::to_string(round) + "-" + std::to_string(i), filler));
    }
    uint64_t now = 0;
    ASSERT_OK(table->BackupReadWal(0, 0, &unused, &now));
    EXPECT_GE(now, last) << "log shrank while a snapshot was live";
    last = now;
  }
  EXPECT_GT(last, total_before);

  // Dropping the snapshot re-enables truncation: the next durability
  // barrier resets the log to (roughly) its header.
  snap.reset();
  ASSERT_OK(table->Sync());
  uint64_t after = 0;
  ASSERT_OK(table->BackupReadWal(0, 0, &unused, &after));
  EXPECT_LT(after, last);
  ASSERT_OK(table->CheckIntegrity());
}

// --- kv-layer hammers (run under TSan via the `stress` label) ---

// Writers churn while scanners repeatedly take snapshots and drain them.
// Invariants per drained snapshot: no duplicate keys, and every value is
// self-consistent with its key (value always starts "val-<key>-"), so a
// torn read or a mixed-generation page is caught immediately.
TEST(SnapshotScanStress, SnapshotScansVsWritersHammer) {
  kv::StoreOptions options;
  auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, options);
  ASSERT_OK(opened.status());
  auto store = kv::MakeSynchronized(std::move(opened).value());
  ASSERT_TRUE(store->Caps().snapshots);

  constexpr int kKeySpace = 400;
  for (int i = 0; i < kKeySpace; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_OK(store->Put(key, "val-" + key + "-0"));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      int round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++round;
        for (int i = w; i < kKeySpace; i += 2) {
          const std::string key = "k" + std::to_string(i);
          if (i % 13 == round % 13) {
            const Status st = store->Delete(key);
            if (!st.ok() && !st.IsNotFound()) {
              ++failures;
              return;
            }
          } else if (!store->Put(key, "val-" + key + "-" + std::to_string(round)).ok()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto cursor = store->NewSnapshotCursor();
        if (!cursor.ok()) {
          ++failures;
          return;
        }
        std::string key;
        std::string value;
        std::map<std::string, bool> seen;
        Status st;
        while ((st = cursor.value()->Next(&key, &value)).ok()) {
          if (seen.count(key) != 0 || value.rfind("val-" + key + "-", 0) != 0) {
            ++failures;
            return;
          }
          seen[key] = true;
        }
        if (!st.IsNotFound()) {
          ++failures;
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// Same shape against a sharded store: per-shard snapshots chained in shard
// order, each Next under only that shard's lock.
TEST(SnapshotScanStress, ShardedSnapshotScansVsWritersHammer) {
  kv::StoreOptions options;
  options.shards = 4;
  auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, options);
  ASSERT_OK(opened.status());
  auto store = std::move(opened).value();
  ASSERT_TRUE(store->Caps().snapshots);

  constexpr int kKeySpace = 400;
  for (int i = 0; i < kKeySpace; ++i) {
    const std::string key = "s" + std::to_string(i);
    ASSERT_OK(store->Put(key, "val-" + key + "-0"));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      int round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++round;
        for (int i = w; i < kKeySpace; i += 2) {
          const std::string key = "s" + std::to_string(i);
          if (!store->Put(key, "val-" + key + "-" + std::to_string(round)).ok()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto cursor = store->NewSnapshotCursor();
      if (!cursor.ok()) {
        ++failures;
        return;
      }
      std::string key;
      std::string value;
      size_t count = 0;
      Status st;
      while ((st = cursor.value()->Next(&key, &value)).ok()) {
        if (value.rfind("val-" + key + "-", 0) != 0) {
          ++failures;
          return;
        }
        ++count;
      }
      if (!st.IsNotFound() || count != static_cast<size_t>(kKeySpace)) {
        ++failures;
        return;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hashkit
