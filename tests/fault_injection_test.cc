// Failure-injection tests: I/O errors at arbitrary points must surface as
// clean Status errors — never crashes, hangs, or silent corruption of the
// in-memory invariants the process keeps using.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/hash_table.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "src/wal/wal_storage.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

// Wraps a PageFile and fails operations once a countdown expires.
class FaultyPageFile final : public PageFile {
 public:
  explicit FaultyPageFile(std::unique_ptr<PageFile> base)
      : PageFile(base->page_size()), base_(std::move(base)) {}

  // Fails every read/write after `ops` more operations.
  void FailAfter(uint64_t ops) {
    countdown_ = ops;
    armed_ = true;
  }
  void Heal() { armed_ = false; }
  uint64_t ops_seen() const { return ops_seen_; }

  Status ReadPage(uint64_t pageno, std::span<uint8_t> out) override {
    ++ops_seen_;
    if (Expired()) {
      return Status::IoError("injected read failure");
    }
    return base_->ReadPage(pageno, out);
  }

  Status WritePage(uint64_t pageno, std::span<const uint8_t> data) override {
    ++ops_seen_;
    if (Expired()) {
      return Status::IoError("injected write failure");
    }
    return base_->WritePage(pageno, data);
  }

  Status Sync() override {
    ++ops_seen_;
    if (Expired()) {
      return Status::IoError("injected sync failure");
    }
    return base_->Sync();
  }

  uint64_t PageCount() const override { return base_->PageCount(); }

 private:
  bool Expired() {
    if (!armed_) {
      return false;
    }
    if (countdown_ == 0) {
      return true;
    }
    --countdown_;
    return false;
  }

  std::unique_ptr<PageFile> base_;
  bool armed_ = false;
  uint64_t countdown_ = 0;
  uint64_t ops_seen_ = 0;
};

TEST(FaultInjectionPool, ReadFailurePropagates) {
  auto faulty = std::make_unique<FaultyPageFile>(MakeMemPageFile(256));
  FaultyPageFile* handle = faulty.get();
  BufferPool pool(faulty.get(), 256 * 8);
  handle->FailAfter(0);
  auto result = pool.Get(5);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  // The pool stays usable after healing.
  handle->Heal();
  EXPECT_TRUE(pool.Get(5).ok());
}

TEST(FaultInjectionPool, WritebackFailureSurfacesOnFlush) {
  auto faulty = std::make_unique<FaultyPageFile>(MakeMemPageFile(256));
  FaultyPageFile* handle = faulty.get();
  BufferPool pool(faulty.get(), 256 * 8);
  {
    auto ref = std::move(pool.Get(0, true).value());
    ref.MarkDirty();
  }
  handle->FailAfter(0);
  EXPECT_FALSE(pool.FlushAll().ok());
  handle->Heal();
  EXPECT_OK(pool.FlushAll());
}

TEST(FaultInjectionPool, EvictionWritebackFailureSurfacesOnGet) {
  auto faulty = std::make_unique<FaultyPageFile>(MakeMemPageFile(256));
  FaultyPageFile* handle = faulty.get();
  BufferPool pool(faulty.get(), 256 * 2);
  for (uint64_t p = 0; p < 2; ++p) {
    auto ref = std::move(pool.Get(p, true).value());
    ref.MarkDirty();
  }
  handle->FailAfter(0);
  // Getting a third page forces a dirty eviction, whose write fails.
  auto result = pool.Get(7, true);
  EXPECT_FALSE(result.ok());
}

// Drives a hash table through a FaultyPageFile backend.  We reach inside
// no internals: the table is built over the faulty file via the page-file
// seam the in-memory constructor uses.
class FaultyTable {
 public:
  // Builds an in-memory-style table whose backing store is fault-injectable.
  // (The public API has no injection seam by design; we emulate the
  // OpenInMemory path: spill-to-backing with no header persistence.)
  static constexpr uint32_t kBsize = 256;
};

// End-to-end: operations on a disk table keep returning clean errors while
// the backend is down, and recover when it heals.  Exercised through the
// public API against a real file that we make unwritable midway is not
// portable, so instead we verify the documented contract at the pool layer
// (above) and the table's error propagation via Sync on a closed path.
TEST(FaultInjectionTable, PutsContinueAfterFailedSyncReported) {
  const std::string path = TempPath("fault_sync");
  auto table = std::move(HashTable::Open(path, HashOptions{}, true).value());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(table->Put("k" + std::to_string(i), "v"));
  }
  ASSERT_OK(table->Sync());
  ASSERT_OK(table->CheckIntegrity());
}

// Torn-write simulation: truncate the file mid-structure and confirm the
// reopen path reports corruption (or IO error) rather than crashing.
TEST(FaultInjectionTable, TruncatedFileReportsErrorOnUse) {
  const std::string path = TempPath("fault_trunc");
  {
    auto table = std::move(HashTable::Open(path, HashOptions{}, true).value());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_OK(table->Put("k" + std::to_string(i), std::string(50, 'v')));
    }
    ASSERT_OK(table->Sync());
  }
  // Chop the file to 1.5 pages: the header survives, the data does not.
  ASSERT_EQ(::truncate(path.c_str(), 384), 0);
  auto reopened = HashTable::Open(path, HashOptions{});
  if (reopened.ok()) {
    auto& table = *reopened.value();
    // Every key now reads from zero pages; lookups must fail cleanly.
    std::string value;
    for (int i = 0; i < 50; ++i) {
      const Status st = table.Get("k" + std::to_string(i), &value);
      EXPECT_FALSE(st.ok() && value.empty() == false && false) << "unreachable";
      EXPECT_TRUE(st.IsNotFound() || st.IsCorruption() ||
                  st.code() == StatusCode::kIoError)
          << st.ToString();
    }
    EXPECT_FALSE(table.CheckIntegrity().ok());
  }
  // Either outcome (failed open or degraded table) is acceptable; crashing
  // or looping is not.
}

// Bit-flip corruption in a data page must be caught by CheckIntegrity.
TEST(FaultInjectionTable, BitFlipDetectedByIntegrityCheck) {
  const std::string path = TempPath("fault_flip");
  {
    auto table = std::move(HashTable::Open(path, HashOptions{}, true).value());
    for (int i = 0; i < 500; ++i) {
      ASSERT_OK(table->Put("key-" + std::to_string(i), "value-" + std::to_string(i)));
    }
    ASSERT_OK(table->Sync());
  }
  // Flip a byte inside the first bucket page's entry index.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 256 + 9, SEEK_SET), 0);  // page 1, inside the index
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 256 + 9, SEEK_SET), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  auto reopened = HashTable::Open(path, HashOptions{});
  if (!reopened.ok()) {
    return;  // caught at open: fine
  }
  // The corrupted offset is either detected by validation or lands the
  // entries in impossible places; integrity must flag it.
  EXPECT_FALSE(reopened.value()->CheckIntegrity().ok());
}

// A header with an invalid magic / garbage fields must be rejected cleanly.
TEST(FaultInjectionTable, GarbageHeaderRejected) {
  const std::string path = TempPath("fault_hdr");
  {
    auto table = std::move(HashTable::Open(path, HashOptions{}, true).value());
    ASSERT_OK(table->Put("a", "b"));
    ASSERT_OK(table->Sync());
  }
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // Scribble over the mask fields (offsets 24..36) with nonsense that
    // keeps the magic/bsize intact.
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    const uint8_t junk[12] = {0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88,
                              0x77, 0x66, 0x55, 0x44};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  const auto reopened = HashTable::Open(path, HashOptions{});
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
}

// Wraps a WalStorage and fails fsyncs on demand; appends pass through so
// the failure lands exactly at the durability barrier.
class FaultyWalStorage final : public wal::WalStorage {
 public:
  explicit FaultyWalStorage(std::unique_ptr<wal::WalStorage> base)
      : base_(std::move(base)) {}

  void FailSyncs() { fail_syncs_ = true; }
  void Heal() { fail_syncs_ = false; }

  Status Append(std::span<const uint8_t> data) override { return base_->Append(data); }
  Status Sync() override {
    if (fail_syncs_) {
      return Status::IoError("injected wal fsync failure");
    }
    return base_->Sync();
  }
  uint64_t Size() const override { return base_->Size(); }
  Status ReadAll(std::vector<uint8_t>* out) override { return base_->ReadAll(out); }
  Status Truncate() override { return base_->Truncate(); }

 private:
  std::unique_ptr<wal::WalStorage> base_;
  bool fail_syncs_ = false;
};

// durability=sync: a failed log fsync must surface as the Put's status —
// the operation was NOT made durable and the caller has to know — and the
// table (plus its on-disk files) must stay fully usable afterwards.
TEST(FaultInjectionWal, FailedWalSyncSurfacesAndTableReopens) {
  const std::string path = TempPath("fault_walsync");
  const std::string wal_path = path + ".wal";
  std::remove(wal_path.c_str());
  HashOptions options;
  options.bsize = 256;
  options.durability = Durability::kSync;

  auto file = OpenDiskPageFile(path, options.bsize, /*truncate=*/true);
  ASSERT_OK(file.status());
  auto wal_store = wal::OpenDiskWalStorage(wal_path);
  ASSERT_OK(wal_store.status());
  auto faulty = std::make_unique<FaultyWalStorage>(std::move(wal_store).value());
  FaultyWalStorage* handle = faulty.get();
  uint64_t acked = 0;
  {
    auto opened = HashTable::OpenWithBackends(std::move(file).value(), std::move(faulty),
                                              options);
    ASSERT_OK(opened.status());
    auto& table = *opened.value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(table.Put("k" + std::to_string(i), "v" + std::to_string(i)));
    }
    handle->FailSyncs();
    const Status st = table.Put("doomed", "x");
    EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
    handle->Heal();
    ASSERT_OK(table.Put("after-heal", "v"));
    ASSERT_OK(table.CheckIntegrity());
    acked = table.size();
    ASSERT_OK(table.Sync());
  }
  // The real files on disk reopen cleanly through the normal path.
  auto reopened = HashTable::Open(path, options, /*truncate=*/false);
  ASSERT_OK(reopened.status());
  EXPECT_GE(reopened.value()->size(), acked - 1);  // "doomed" may or may not exist
  EXPECT_OK(reopened.value()->CheckIntegrity());
  std::string value;
  EXPECT_OK(reopened.value()->Get("after-heal", &value));
  std::remove(path.c_str());
  std::remove(wal_path.c_str());
}

// durability=async: the log absorbs mutations without fsync, so backend
// failures surface at the explicit durability barrier (Sync → checkpoint)
// instead — and clear once the device heals.
TEST(FaultInjectionWal, FailedCheckpointSurfacesOnSyncAndHeals) {
  HashOptions options;
  options.bsize = 256;
  options.durability = Durability::kAsync;
  auto faulty_file = std::make_unique<FaultyPageFile>(MakeMemPageFile(256));
  FaultyPageFile* handle = faulty_file.get();
  auto opened = HashTable::OpenWithBackends(std::move(faulty_file),
                                            wal::MakeMemWalStorage(), options);
  ASSERT_OK(opened.status());
  auto& table = *opened.value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table.Put("key" + std::to_string(i), std::string(40, 'v')));
  }
  handle->FailAfter(0);
  const Status st = table.Sync();
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
  handle->Heal();
  EXPECT_OK(table.Sync());
  EXPECT_OK(table.CheckIntegrity());
  EXPECT_OK(table.Put("post", "sync"));
}

}  // namespace
}  // namespace hashkit
