// Concurrency tests for the striped buffer pool.  Registered under the
// `stress` label so the TSan configuration runs exactly these
// (cmake -DHASHKIT_SANITIZE=thread ... && ctest -L stress).
//
// The hammer follows the pool's sharing discipline: readers touch only
// pre-seeded pages they never write (the loader fills frame data before
// release-publishing it), writers create fresh pages in disjoint ranges and
// mark them dirty without mutating bytes after publication, so every data
// access TSan observes is ordered by the pool's own synchronization.

#include "src/pagefile/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/pagefile/page_file.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

constexpr size_t kPage = 256;

// Wraps a PageFile, counting backend reads per page and optionally delaying
// them so coalescing windows are wide enough to hit deterministically.
class CountingPageFile : public PageFile {
 public:
  CountingPageFile(std::unique_ptr<PageFile> base, int read_delay_us)
      : PageFile(base->page_size()), base_(std::move(base)), read_delay_us_(read_delay_us) {}

  Status ReadPage(uint64_t pageno, std::span<uint8_t> out) override {
    backend_reads_.fetch_add(1, std::memory_order_relaxed);
    if (read_delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(read_delay_us_));
    }
    return base_->ReadPage(pageno, out);
  }
  Status WritePage(uint64_t pageno, std::span<const uint8_t> data) override {
    return base_->WritePage(pageno, data);
  }
  Status Sync() override { return base_->Sync(); }
  uint64_t PageCount() const override { return base_->PageCount(); }

  uint64_t backend_reads() const { return backend_reads_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<PageFile> base_;
  const int read_delay_us_;
  std::atomic<uint64_t> backend_reads_{0};
};

// K threads miss on the same cold page at once; the pool must coalesce them
// onto a single backend read, and every thread must see the loaded bytes.
TEST(BufferPoolConcurrentTest, ColdMissesCoalesceIntoOneRead) {
  auto base = MakeMemPageFile(kPage);
  {
    std::vector<uint8_t> page(kPage, 0xc5);
    ASSERT_OK(base->WritePage(7, page));
  }
  CountingPageFile file(std::move(base), /*read_delay_us=*/2000);
  BufferPool pool(&file, kPage * 16);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      auto ref = pool.Get(7);
      if (ref.ok() && ref.value().data()[0] == 0xc5) {
        ok.fetch_add(1);
      }
    });
  }
  while (ready.load() != kThreads) {
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(file.backend_reads(), 1u);  // one loader, kThreads-1 waiters
  const BufferPoolStats stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.misses, 1u);
}

// The TSan hammer: readers on a hot read-only set, writers creating dirty
// pages in disjoint ranges, plus flush, discard, and chain-link traffic —
// all concurrently, under a pool small enough to force constant eviction.
TEST(BufferPoolConcurrentTest, HammerReadersWritersFlushDiscard) {
  auto file = MakeMemPageFile(kPage);
  constexpr uint64_t kHotPages = 32;
  for (uint64_t p = 0; p < kHotPages; ++p) {
    std::vector<uint8_t> page(kPage, static_cast<uint8_t>(p + 1));
    ASSERT_OK(file->WritePage(p, page));
  }
  BufferPool pool(file.get(), kPage * 24);  // smaller than the working set

  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kOpsPerThread = 3000;
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t p = rng.Next() % kHotPages;
        auto ref = pool.Get(p);
        if (!ref.ok() || ref.value().data()[0] != static_cast<uint8_t>(p + 1)) {
          read_errors.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    // Disjoint per-writer page ranges, far above the hot set.
    const uint64_t lo = 1000 + static_cast<uint64_t>(t) * 100000;
    threads.emplace_back([&, lo] {
      Rng rng(0xfeed + lo);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t p = lo + rng.Next() % 256;
        auto ref = pool.Get(p, /*create_new=*/true);
        if (ref.ok()) {
          ref.value().MarkDirty();
        }
        if (i % 64 == 0) {
          pool.Discard(lo + rng.Next() % 256);  // may hit a pinned frame: no-op
        }
      }
    });
  }
  // Overflow-chain traffic against a private page range.
  threads.emplace_back([&] {
    Rng rng(0xcafe);
    for (int i = 0; i < kOpsPerThread / 4; ++i) {
      const uint64_t base = 500000 + (rng.Next() % 64) * 2;
      auto a = pool.Get(base, /*create_new=*/true);
      auto b = pool.Get(base + 1, /*create_new=*/true);
      if (a.ok() && b.ok()) {
        pool.LinkOverflow(a.value(), b.value());
      }
    }
  });
  // Flusher: snapshots and full flushes while everything above runs.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_OK(pool.FlushAll());
      (void)pool.StatsSnapshot();
      (void)pool.frames_in_use();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (size_t t = 0; t + 1 < threads.size(); ++t) {
    threads[t].join();
  }
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(read_errors.load(), 0);
  ASSERT_OK(pool.FlushAndInvalidate());
  EXPECT_EQ(pool.frames_in_use(), 0u);

  // Post-mortem: the hot set round-trips through the backend intact.
  for (uint64_t p = 0; p < kHotPages; ++p) {
    auto ref = std::move(pool.Get(p).value());
    EXPECT_EQ(ref.data()[0], static_cast<uint8_t>(p + 1));
  }
}

// Many threads missing on *different* cold pages: the reads must overlap
// (I/O outside bookkeeping locks), which shows up as wall-clock far below
// the serial sum of the injected read delays.
TEST(BufferPoolConcurrentTest, DistinctMissesRunInParallel) {
  auto base = MakeMemPageFile(kPage);
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 8;
  constexpr int kDelayUs = 2500;
  for (uint64_t p = 0; p < kThreads * kPagesPerThread; ++p) {
    std::vector<uint8_t> page(kPage, 0x11);
    ASSERT_OK(base->WritePage(p, page));
  }
  CountingPageFile file(std::move(base), kDelayUs);
  BufferPool pool(&file, kPage * kThreads * kPagesPerThread);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPagesPerThread; ++i) {
        auto ref = pool.Get(static_cast<uint64_t>(t) * kPagesPerThread + i);
        EXPECT_OK(ref.status());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(file.backend_reads(), static_cast<uint64_t>(kThreads * kPagesPerThread));
  // Serial execution would take kThreads * kPagesPerThread * kDelayUs =
  // 160ms of sleep alone (sleeps overlap even on one core, so this holds
  // without parallel hardware).  Bound at 75% of that: loose enough for
  // TSan and loaded CI machines, tight enough that serialized reads fail.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            kThreads * kPagesPerThread * kDelayUs * 3 / 4 / 1000);
}

}  // namespace
}  // namespace hashkit
