// hashkit-cache: the per-key TTL edge matrix, plus the cache plumbing that
// rides with it (pluggable eviction policies, hot-key sketch).
//
// TTL correctness hinges on one invariant: an expired key must never
// resurrect, no matter which path the bytes travel — a lazy Get, a sweep,
// a WAL replay after reopen, a raw migration transport, or a snapshot
// cursor.  Every test here drives the deterministic TTL test clock
// (TtlAdvanceClockForTesting), so expiry is exact, never timing-dependent.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/kv/ttl.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/eviction.h"
#include "src/pagefile/page_file.h"
#include "src/util/topk.h"
#include "tests/test_util.h"

namespace hashkit {
namespace kv {
namespace {

// Every test starts from the real clock and restores it afterwards, so
// test order can never leak an advanced clock into another suite.
class TtlTest : public ::testing::Test {
 protected:
  void SetUp() override { TtlResetClockForTesting(); }
  void TearDown() override { TtlResetClockForTesting(); }

  std::unique_ptr<KvStore> OpenMem() {
    StoreOptions options;
    options.ttl = true;
    auto result = OpenStore(StoreKind::kHashMemory, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<KvStore> OpenDisk(const std::string& tag, bool truncate,
                                    Durability durability = Durability::kNone) {
    StoreOptions options;
    if (truncate) {
      disk_path_ = TempPath("cache_ttl_" + tag);
    }
    options.path = disk_path_;
    options.truncate = truncate;
    options.ttl = true;
    options.durability = durability;
    auto result = OpenStore(StoreKind::kHashDisk, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::string disk_path_;
};

TEST_F(TtlTest, StampCodecRoundTrip) {
  std::string raw;
  EncodeTtlValue(12345, "payload", &raw);
  ASSERT_EQ(raw.size(), kTtlStampBytes + 7);
  uint64_t expire = 0;
  std::string_view payload;
  ASSERT_TRUE(DecodeTtlStamp(raw, &expire, &payload));
  EXPECT_EQ(expire, 12345u);
  EXPECT_EQ(payload, "payload");

  // A raw value shorter than the stamp cannot be a TTL entry.
  EXPECT_FALSE(DecodeTtlStamp("short", &expire, &payload));

  // 0 = never: expired only for nonzero stamps at or before now.
  EXPECT_FALSE(TtlExpired(0, 1u << 30));
  EXPECT_TRUE(TtlExpired(100, 100));
  EXPECT_FALSE(TtlExpired(101, 100));
}

TEST_F(TtlTest, LazyExpiryOnGet) {
  auto store = OpenMem();
  ASSERT_TRUE(store->Caps().ttl);
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("soon", "v1", true, now + 1000));
  ASSERT_OK(store->PutWithTtl("later", "v2", true, now + 60'000));
  ASSERT_OK(store->PutWithTtl("never", "v3", true, 0));

  std::string value;
  uint64_t expire = 0;
  ASSERT_OK(store->GetWithExpiry("soon", &value, &expire));
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(expire, now + 1000);

  TtlAdvanceClockForTesting(1000);
  EXPECT_TRUE(store->Get("soon", &value).IsNotFound());
  ASSERT_OK(store->Get("later", &value));
  EXPECT_EQ(value, "v2");
  ASSERT_OK(store->GetWithExpiry("never", &value, &expire));
  EXPECT_EQ(value, "v3");
  EXPECT_EQ(expire, 0u);

  StoreStats stats;
  ASSERT_TRUE(store->Stats(&stats));
  EXPECT_GE(stats.ttl_expired_lazy, 1u);
}

TEST_F(TtlTest, ScanSkipsExpired) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("a", "1", true, now + 10));
  ASSERT_OK(store->PutWithTtl("b", "2", true, 0));
  ASSERT_OK(store->PutWithTtl("c", "3", true, now + 10'000));
  TtlAdvanceClockForTesting(10);

  std::set<std::string> seen;
  std::string key, value;
  Status st = store->Scan(&key, &value, /*first=*/true);
  while (st.ok()) {
    seen.insert(key);
    st = store->Scan(&key, &value, /*first=*/false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, (std::set<std::string>{"b", "c"}));
}

TEST_F(TtlTest, OverwriteReplacesStamp) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("k", "old", true, now + 100));
  ASSERT_OK(store->PutWithTtl("k", "new", true, now + 50'000));
  TtlAdvanceClockForTesting(100);
  std::string value;
  ASSERT_OK(store->Get("k", &value));
  EXPECT_EQ(value, "new");

  // And the other direction: a rewrite can also drop the TTL entirely.
  ASSERT_OK(store->PutWithTtl("k", "forever", true, 0));
  uint64_t expire = 99;
  ASSERT_OK(store->GetWithExpiry("k", &value, &expire));
  EXPECT_EQ(expire, 0u);
}

TEST_F(TtlTest, AddTreatsExpiredKeyAsAbsent) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("k", "first", true, now + 10));

  // While the entry is live, no-overwrite insert must still refuse.
  EXPECT_TRUE(store->PutWithTtl("k", "blocked", false, 0).IsExists());

  TtlAdvanceClockForTesting(10);
  ASSERT_OK(store->PutWithTtl("k", "second", false, now + 50'000));
  std::string value;
  ASSERT_OK(store->Get("k", &value));
  EXPECT_EQ(value, "second");
}

TEST_F(TtlTest, DeleteTreatsExpiredKeyAsAbsent) {
  auto store = OpenMem();
  ASSERT_OK(store->PutWithTtl("k", "v", true, TtlNowMs() + 10));
  TtlAdvanceClockForTesting(10);
  // memcached `delete` semantics — and the write lock lets the store
  // reclaim the expired bytes on the way out.
  EXPECT_TRUE(store->Delete("k").IsNotFound());
  EXPECT_EQ(store->Size(), 0u);
  size_t deleted = 0;
  ASSERT_OK(store->SweepExpired(1024, TtlNowMs(), &deleted));
  EXPECT_EQ(deleted, 0u);
}

TEST_F(TtlTest, TouchExtendsClearsAndMisses) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("k", "v", true, now + 100));

  // Extend past the original deadline: the entry survives it.
  ASSERT_OK(store->Touch("k", now + 10'000));
  TtlAdvanceClockForTesting(100);
  std::string value;
  ASSERT_OK(store->Get("k", &value));
  EXPECT_EQ(value, "v");

  // Clear the TTL: the entry becomes immortal.
  ASSERT_OK(store->Touch("k", 0));
  uint64_t expire = 99;
  ASSERT_OK(store->GetWithExpiry("k", &value, &expire));
  EXPECT_EQ(expire, 0u);

  // Absent and expired keys both report NotFound.
  EXPECT_TRUE(store->Touch("missing", 0).IsNotFound());
  ASSERT_OK(store->PutWithTtl("gone", "v", true, TtlNowMs() + 5));
  TtlAdvanceClockForTesting(5);
  EXPECT_TRUE(store->Touch("gone", TtlNowMs() + 1000).IsNotFound());
}

TEST_F(TtlTest, SweepExpiredHonorsBudgetAndWraps) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  constexpr int kDoomed = 64;
  for (int i = 0; i < kDoomed; ++i) {
    ASSERT_OK(store->PutWithTtl("doomed" + std::to_string(i), "x", true, now + 10));
  }
  for (int i = 0; i < 16; ++i) {
    ASSERT_OK(store->PutWithTtl("live" + std::to_string(i), "x", true, 0));
  }
  TtlAdvanceClockForTesting(10);

  // Small budget slices must converge on exactly the doomed set; the
  // internal cursor persists across calls, so repeated slices cover the
  // whole keyspace.
  size_t total = 0;
  for (int slice = 0; slice < 64 && total < kDoomed; ++slice) {
    size_t deleted = 0;
    ASSERT_OK(store->SweepExpired(/*budget=*/8, TtlNowMs(), &deleted));
    total += deleted;
  }
  EXPECT_EQ(total, static_cast<size_t>(kDoomed));
  EXPECT_EQ(store->Size(), 16u);

  size_t deleted = 0;
  ASSERT_OK(store->SweepExpired(1024, TtlNowMs(), &deleted));
  EXPECT_EQ(deleted, 0u);

  StoreStats stats;
  ASSERT_TRUE(store->Stats(&stats));
  EXPECT_EQ(stats.ttl_swept, static_cast<uint64_t>(kDoomed));
}

TEST_F(TtlTest, SweeperThreadReclaims) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK(store->PutWithTtl("k" + std::to_string(i), "x", true, now + 1));
  }
  TtlAdvanceClockForTesting(1);

  TtlSweeperOptions options;
  options.interval_ms = 1;
  options.budget = 8;
  TtlSweeper sweeper(store.get(), options);
  sweeper.Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sweeper.swept() < 32 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sweeper.Stop();
  EXPECT_EQ(sweeper.swept(), 32u);
  EXPECT_GE(sweeper.slices(), 1u);
  EXPECT_EQ(store->Size(), 0u);
}

TEST_F(TtlTest, ApplyBatchCarriesExpiry) {
  auto store = OpenMem();
  const uint64_t now = TtlNowMs();
  std::string got;
  BatchOp ops[3];
  ops[0] = {BatchOp::Kind::kPut, "k", "v", true, now + 10, nullptr, Status::Ok()};
  ops[1] = {BatchOp::Kind::kPut, "forever", "v", true, 0, nullptr, Status::Ok()};
  ops[2] = {BatchOp::Kind::kGet, "k", "", true, 0, &got, Status::Ok()};
  ASSERT_OK(store->ApplyBatch(ops));
  ASSERT_OK(ops[0].result);
  ASSERT_OK(ops[2].result);
  EXPECT_EQ(got, "v");

  TtlAdvanceClockForTesting(10);
  BatchOp after[2];
  after[0] = {BatchOp::Kind::kGet, "k", "", true, 0, &got, Status::Ok()};
  after[1] = {BatchOp::Kind::kGet, "forever", "", true, 0, &got, Status::Ok()};
  ASSERT_OK(store->ApplyBatch(after));
  EXPECT_TRUE(after[0].result.IsNotFound());
  EXPECT_OK(after[1].result);
}

TEST_F(TtlTest, NonTtlStoreRejectsExpiry) {
  StoreOptions options;  // ttl defaults off
  auto store = std::move(OpenStore(StoreKind::kHashMemory, options).value());
  ASSERT_FALSE(store->Caps().ttl);
  EXPECT_FALSE(store->PutWithTtl("k", "v", true, TtlNowMs() + 1000).ok());
  EXPECT_FALSE(store->Touch("k", 0).ok());
  // expire=0 degrades to a plain Put, and GetWithExpiry reports "never".
  ASSERT_OK(store->PutWithTtl("k", "v", true, 0));
  std::string value;
  uint64_t expire = 99;
  ASSERT_OK(store->GetWithExpiry("k", &value, &expire));
  EXPECT_EQ(expire, 0u);

  BatchOp op = {BatchOp::Kind::kPut, "k", "v", true, 12345, nullptr, Status::Ok()};
  ASSERT_OK(store->ApplyBatch({&op, 1}));
  EXPECT_FALSE(op.result.ok()) << "expire on a non-TTL store must not be dropped silently";
}

// An expired key must stay dead across a WAL replay: the stamp is part of
// the logged value bytes, so recovery restores the entry *with* its expiry
// and the first read after reopen sees it as absent.
TEST_F(TtlTest, NoResurrectionAcrossWalReplay) {
  const uint64_t now = TtlNowMs();
  uint64_t live_expire = 0;
  {
    auto store = OpenDisk("wal", /*truncate=*/true, Durability::kSync);
    ASSERT_OK(store->PutWithTtl("doomed", "v", true, now + 50));
    live_expire = now + 1'000'000;
    ASSERT_OK(store->PutWithTtl("live", "v", true, live_expire));
    ASSERT_OK(store->PutWithTtl("forever", "v", true, 0));
  }
  TtlAdvanceClockForTesting(50);
  auto store = OpenDisk("wal", /*truncate=*/false, Durability::kSync);
  std::string value;
  EXPECT_TRUE(store->Get("doomed", &value).IsNotFound());
  uint64_t expire = 0;
  ASSERT_OK(store->GetWithExpiry("live", &value, &expire));
  EXPECT_EQ(expire, live_expire) << "reopen must preserve the exact stamp";
  ASSERT_OK(store->GetWithExpiry("forever", &value, &expire));
  EXPECT_EQ(expire, 0u);
}

// The migration transport (ScanRaw -> PutRaw) moves entries with their
// stamps: an expired-but-unswept entry travels as-is and stays expired on
// the target instead of silently becoming immortal.
TEST_F(TtlTest, RawTransportPreservesExpiry) {
  auto source = OpenMem();
  const uint64_t now = TtlNowMs();
  ASSERT_OK(source->PutWithTtl("doomed", "v", true, now + 10));
  const uint64_t live_expire = now + 500'000;
  ASSERT_OK(source->PutWithTtl("live", "v", true, live_expire));
  ASSERT_OK(source->PutWithTtl("forever", "v", true, 0));
  TtlAdvanceClockForTesting(10);

  // ScanRaw still yields the expired entry (raw view, no lazy filtering).
  std::map<std::string, std::string> raw;
  std::string key, value;
  Status st = source->ScanRaw(&key, &value, /*first=*/true);
  while (st.ok()) {
    raw[key] = value;
    st = source->ScanRaw(&key, &value, /*first=*/false);
  }
  EXPECT_TRUE(st.IsNotFound());
  ASSERT_EQ(raw.size(), 3u) << "raw scan must not filter expired entries";

  auto target = OpenMem();
  for (const auto& [k, v] : raw) {
    ASSERT_OK(target->PutRaw(k, v));
  }
  EXPECT_TRUE(target->Get("doomed", &value).IsNotFound());
  uint64_t expire = 0;
  ASSERT_OK(target->GetWithExpiry("live", &value, &expire));
  EXPECT_EQ(expire, live_expire);
  ASSERT_OK(target->GetWithExpiry("forever", &value, &expire));
  EXPECT_EQ(expire, 0u);
}

// A snapshot cursor pinned before an entry expires still applies expiry
// lazily at read time: TTL is a property of *now*, not of the snapshot's
// point-in-time image.
TEST_F(TtlTest, SnapshotCursorFiltersAtReadTime) {
  auto store = OpenDisk("snap", /*truncate=*/true);
  if (!store->Caps().snapshots) {
    GTEST_SKIP() << "store has no snapshot scans";
  }
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("doomed", "v", true, now + 10));
  ASSERT_OK(store->PutWithTtl("live", "v", true, 0));

  auto cursor_result = store->NewSnapshotCursor();
  ASSERT_TRUE(cursor_result.ok()) << cursor_result.status().ToString();
  auto cursor = std::move(cursor_result).value();
  TtlAdvanceClockForTesting(10);

  std::set<std::string> seen;
  std::string key, value;
  Status st = cursor->Next(&key, &value);
  while (st.ok()) {
    seen.insert(key);
    st = cursor->Next(&key, &value);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, (std::set<std::string>{"live"}));
}

TEST_F(TtlTest, SynchronizedWrapperForwardsTtl) {
  auto store = MakeSynchronized(OpenMem());
  ASSERT_TRUE(store->Caps().ttl);
  const uint64_t now = TtlNowMs();
  ASSERT_OK(store->PutWithTtl("k", "v", true, now + 10));
  ASSERT_OK(store->Touch("k", now + 20));
  TtlAdvanceClockForTesting(10);
  std::string value;
  ASSERT_OK(store->Get("k", &value));
  TtlAdvanceClockForTesting(10);
  EXPECT_TRUE(store->Get("k", &value).IsNotFound());
  size_t deleted = 0;
  ASSERT_OK(store->SweepExpired(1024, TtlNowMs(), &deleted));
  EXPECT_EQ(deleted, 1u);
}

TEST_F(TtlTest, ShardedStoreSweepsEveryShard) {
  StoreOptions options;
  options.ttl = true;
  options.shards = 4;
  auto store = std::move(OpenStore(StoreKind::kHashMemory, options).value());
  ASSERT_TRUE(store->Caps().ttl);
  const uint64_t now = TtlNowMs();
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(store->PutWithTtl("key" + std::to_string(i), "v", true, now + 10));
  }
  TtlAdvanceClockForTesting(10);
  size_t total = 0;
  for (int slice = 0; slice < 128 && total < kKeys; ++slice) {
    size_t deleted = 0;
    ASSERT_OK(store->SweepExpired(8, TtlNowMs(), &deleted));
    total += deleted;
  }
  EXPECT_EQ(total, static_cast<size_t>(kKeys));
  EXPECT_EQ(store->Size(), 0u);
}

}  // namespace
}  // namespace kv

// --- Pluggable eviction policies (src/pagefile/eviction.h) ---

namespace {

TEST(EvictionPolicyTest, ParseAndNameRoundTrip) {
  EvictionPolicyKind kind;
  ASSERT_TRUE(ParseEvictionPolicy("clock", &kind));
  EXPECT_EQ(kind, EvictionPolicyKind::kClock);
  ASSERT_TRUE(ParseEvictionPolicy("2q", &kind));
  EXPECT_EQ(kind, EvictionPolicyKind::kTwoQ);
  ASSERT_TRUE(ParseEvictionPolicy("twoq", &kind));
  EXPECT_EQ(kind, EvictionPolicyKind::kTwoQ);
  ASSERT_TRUE(ParseEvictionPolicy("tinylfu", &kind));
  EXPECT_EQ(kind, EvictionPolicyKind::kTinyLfu);
  EXPECT_FALSE(ParseEvictionPolicy("lru", &kind));
  EXPECT_FALSE(ParseEvictionPolicy("", &kind));

  for (const auto k : {EvictionPolicyKind::kClock, EvictionPolicyKind::kTwoQ,
                       EvictionPolicyKind::kTinyLfu}) {
    EvictionPolicyKind back;
    ASSERT_TRUE(ParseEvictionPolicy(EvictionPolicyName(k), &back));
    EXPECT_EQ(back, k);
  }
}

class EvictionPoolTest : public ::testing::TestWithParam<EvictionPolicyKind> {};

// Correctness under pressure: whatever the policy evicts, every page must
// read back with the bytes that were written through the pool.
TEST_P(EvictionPoolTest, EvictsWithoutLosingWrites) {
  constexpr size_t kPage = 128;
  constexpr uint64_t kPages = 64;
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), /*pool_bytes=*/kPage * 8, GetParam());
  for (uint64_t p = 0; p < kPages; ++p) {
    auto ref = std::move(pool.Get(p, /*create_new=*/true).value());
    ref.data()[0] = static_cast<uint8_t>(p);
    ref.data()[kPage - 1] = static_cast<uint8_t>(p ^ 0xff);
    ref.MarkDirty();
  }
  EXPECT_GT(pool.StatsSnapshot().evictions, 0u);
  for (uint64_t p = 0; p < kPages; ++p) {
    auto ref = std::move(pool.Get(p).value());
    EXPECT_EQ(ref.data()[0], static_cast<uint8_t>(p)) << "page " << p;
    EXPECT_EQ(ref.data()[kPage - 1], static_cast<uint8_t>(p ^ 0xff)) << "page " << p;
  }
  ASSERT_OK(pool.FlushAll());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EvictionPoolTest,
                         ::testing::Values(EvictionPolicyKind::kClock,
                                           EvictionPolicyKind::kTwoQ,
                                           EvictionPolicyKind::kTinyLfu),
                         [](const auto& param_info) {
                           return std::string(EvictionPolicyName(param_info.param));
                         });

// Scan resistance: warm a hot set, pour a one-pass cold scan through a
// small pool, then re-read the hot set.  The frequency-aware policies must
// do no worse than clock on the re-read (TinyLFU is the headline claim —
// the bench quantifies it; this pins the direction deterministically).
TEST(EvictionPoolTest, TinyLfuSurvivesColdScanAtLeastAsWellAsClock) {
  constexpr size_t kPage = 128;
  constexpr uint64_t kHot = 8;
  auto hot_hits_after_scan = [&](EvictionPolicyKind kind) {
    auto file = MakeMemPageFile(kPage);
    BufferPool pool(file.get(), /*pool_bytes=*/kPage * 16, kind);
    for (int round = 0; round < 16; ++round) {
      for (uint64_t p = 0; p < kHot; ++p) {
        auto ref = std::move(pool.Get(p, round == 0).value());
      }
    }
    for (uint64_t p = 100; p < 200; ++p) {
      auto ref = std::move(pool.Get(p, /*create_new=*/true).value());
    }
    const uint64_t misses_before = pool.StatsSnapshot().misses;
    for (uint64_t p = 0; p < kHot; ++p) {
      auto ref = std::move(pool.Get(p).value());
    }
    const uint64_t misses = pool.StatsSnapshot().misses - misses_before;
    return kHot - misses;  // hot re-reads served from the pool
  };
  const uint64_t clock_hits = hot_hits_after_scan(EvictionPolicyKind::kClock);
  const uint64_t tinylfu_hits = hot_hits_after_scan(EvictionPolicyKind::kTinyLfu);
  const uint64_t twoq_hits = hot_hits_after_scan(EvictionPolicyKind::kTwoQ);
  EXPECT_GE(tinylfu_hits, clock_hits);
  EXPECT_GE(twoq_hits, clock_hits);
  EXPECT_GT(tinylfu_hits, 0u) << "TinyLFU kept none of the hot set resident";
}

// --- Hot-key detection (src/util/topk.h) ---

TEST(TopKSketchTest, ExactUnderCapacity) {
  TopKSketch sketch(8);
  for (int i = 0; i < 5; ++i) sketch.Record("a");
  for (int i = 0; i < 3; ++i) sketch.Record("b");
  sketch.Record("c");
  auto entries = sketch.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, "a");
  EXPECT_EQ(entries[0].count, 5u);
  EXPECT_EQ(entries[0].error, 0u);
  EXPECT_EQ(entries[1].key, "b");
  EXPECT_EQ(entries[1].count, 3u);
}

TEST(TopKSketchTest, HeavyHitterSurvivesEviction) {
  // Space-Saving guarantee: a key with true frequency > N/capacity is
  // tracked, and its reported count is count-error <= true <= count.
  TopKSketch sketch(4);
  constexpr int kHeavy = 200;
  for (int i = 0; i < kHeavy; ++i) {
    sketch.Record("heavy");
    sketch.Record("noise" + std::to_string(i));  // all distinct
  }
  auto entries = sketch.Snapshot();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].key, "heavy");
  EXPECT_GE(entries[0].count, static_cast<uint64_t>(kHeavy));
  EXPECT_GE(entries[0].count - entries[0].error, 1u);
  EXPECT_LE(entries[0].count - entries[0].error, static_cast<uint64_t>(kHeavy));
}

TEST(TopKSketchTest, MergeSumsAcrossWorkers) {
  TopKSketch a(8), b(8);
  for (int i = 0; i < 4; ++i) a.Record("shared");
  for (int i = 0; i < 6; ++i) b.Record("shared");
  a.Record("only_a");
  for (int i = 0; i < 5; ++i) b.Record("only_b");
  auto merged = TopKSketch::MergeTopK({a.Snapshot(), b.Snapshot()}, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, "shared");
  EXPECT_EQ(merged[0].count, 10u);
  EXPECT_EQ(merged[1].key, "only_b");
  EXPECT_EQ(merged[1].count, 5u);
}

}  // namespace
}  // namespace hashkit
