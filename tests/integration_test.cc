// Cross-module integration tests: every store in the repository run over
// the paper's workloads, compared against each other and a reference map.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/baselines/dynahash/dynahash.h"
#include "src/baselines/gdbm/gdbm.h"
#include "src/baselines/hsearch/hsearch.h"
#include "src/baselines/ndbm/ndbm.h"
#include "src/baselines/sdbm/sdbm.h"
#include "src/core/hash_table.h"
#include "src/workload/dictionary.h"
#include "src/workload/passwd.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

// All disk stores agree on a dictionary subset.
TEST(IntegrationTest, AllDiskStoresAgreeOnDictionary) {
  const auto dict = workload::MakeDictionaryWorkload(4000);

  HashOptions opts;
  opts.bsize = 1024;
  opts.ffactor = 32;
  auto hash = std::move(HashTable::Open(TempPath("int_hash"), opts, true).value());
  auto ndbm = std::move(baseline::NdbmClone::Open(TempPath("int_ndbm")).value());
  auto sdbm = std::move(baseline::SdbmClone::Open(TempPath("int_sdbm")).value());
  auto gdbm = std::move(baseline::GdbmClone::Open(TempPath("int_gdbm"), 1024, true).value());

  for (size_t i = 0; i < dict.keys.size(); ++i) {
    ASSERT_OK(hash->Put(dict.keys[i], dict.values[i]));
    ASSERT_OK(ndbm->Store(dict.keys[i], dict.values[i], true));
    ASSERT_OK(sdbm->Store(dict.keys[i], dict.values[i], true));
    ASSERT_OK(gdbm->Store(dict.keys[i], dict.values[i], true));
  }
  ASSERT_OK(hash->CheckIntegrity());
  ASSERT_OK(gdbm->CheckIntegrity());

  std::string v1, v2, v3, v4;
  for (size_t i = 0; i < dict.keys.size(); ++i) {
    ASSERT_OK(hash->Get(dict.keys[i], &v1));
    ASSERT_OK(ndbm->Fetch(dict.keys[i], &v2));
    ASSERT_OK(sdbm->Fetch(dict.keys[i], &v3));
    ASSERT_OK(gdbm->Fetch(dict.keys[i], &v4));
    ASSERT_EQ(v1, dict.values[i]);
    ASSERT_EQ(v2, dict.values[i]);
    ASSERT_EQ(v3, dict.values[i]);
    ASSERT_EQ(v4, dict.values[i]);
  }
}

// The paper's password-file test: two records per account through the
// whole stack, memory-resident.
TEST(IntegrationTest, PasswordDatabaseRoundTrip) {
  const auto passwd = workload::MakePasswdWorkload(300);
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (const auto& record : passwd.records) {
    ASSERT_OK(table->Put(record.key, record.value));
  }
  EXPECT_EQ(table->size(), 600u);
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (const auto& record : passwd.records) {
    ASSERT_OK(table->Get(record.key, &value));
    ASSERT_EQ(value, record.value);
  }
}

// The in-memory stores agree on a pointer workload.
TEST(IntegrationTest, MemoryStoresAgree) {
  const auto dict = workload::MakeDictionaryWorkload(3000);
  auto hsearch_table = std::move(baseline::SysvHsearch::Create(6000).value());
  auto dynahash_table = std::move(baseline::Dynahash::Create(16).value());

  for (size_t i = 0; i < dict.keys.size(); ++i) {
    void* payload = const_cast<std::string*>(&dict.values[i]);
    ASSERT_OK(hsearch_table->Enter(dict.keys[i], payload));
    ASSERT_OK(dynahash_table->Enter(dict.keys[i], payload));
  }
  for (size_t i = 0; i < dict.keys.size(); ++i) {
    void* a = nullptr;
    void* b = nullptr;
    ASSERT_OK(hsearch_table->Find(dict.keys[i], &a));
    ASSERT_OK(dynahash_table->Find(dict.keys[i], &b));
    EXPECT_EQ(a, b);
    EXPECT_EQ(*static_cast<std::string*>(a), dict.values[i]);
  }
}

// The paper's dictionary test end to end: create, read, verify, seq, on
// disk, with the real 24474-key data set.
TEST(IntegrationTest, FullDictionaryCreateReadVerifySeq) {
  const auto dict = workload::MakeDictionaryWorkload();
  HashOptions opts;
  opts.bsize = 1024;
  opts.ffactor = 32;
  opts.cachesize = 1024 * 1024;
  const std::string path = TempPath("int_full");
  {
    auto table = std::move(HashTable::Open(path, opts, true).value());
    for (size_t i = 0; i < dict.keys.size(); ++i) {
      ASSERT_OK(table->Put(dict.keys[i], dict.values[i]));
    }
    ASSERT_OK(table->Sync());
  }
  auto table = std::move(HashTable::Open(path, opts).value());
  EXPECT_EQ(table->size(), dict.keys.size());

  // read + verify
  std::string value;
  for (size_t i = 0; i < dict.keys.size(); ++i) {
    ASSERT_OK(table->Get(dict.keys[i], &value));
    ASSERT_EQ(value, dict.values[i]);
  }
  // sequential
  size_t scanned = 0;
  std::string k, v;
  Status st = table->Seq(&k, &v, true);
  while (st.ok()) {
    ++scanned;
    st = table->Seq(&k, &v, false);
  }
  EXPECT_EQ(scanned, dict.keys.size());
  ASSERT_OK(table->CheckIntegrity());
}

// Equation (1) from the paper — (avg_pair + 4) * ffactor >= bsize — and
// Figure 5's reading of it: below the satisfying fill factor the table
// wastes space on underfull buckets; above it, behaviour plateaus (the
// hybrid split policy keeps chains bounded no matter how large ffactor
// gets, which is exactly what dynahash-style controlled-only splitting
// cannot do).
TEST(IntegrationTest, EquationOnePlateauAndHybridChainBound) {
  const auto dict = workload::MakeDictionaryWorkload(8000);
  const double avg_pair = workload::AveragePairLength(dict);
  const auto eq1_ffactor = static_cast<uint32_t>(256.0 / (avg_pair + 4.0)) + 1;

  auto run = [&](uint32_t ffactor, SplitPolicy policy) {
    HashOptions opts;
    opts.bsize = 256;
    opts.ffactor = ffactor;
    opts.split_policy = policy;
    auto table = std::move(HashTable::OpenInMemory(opts).value());
    for (size_t i = 0; i < dict.keys.size(); ++i) {
      EXPECT_OK(table->Put(dict.keys[i], dict.values[i]));
    }
    struct Shape {
      uint32_t buckets;
      uint64_t live_ovfl;
    };
    return Shape{table->bucket_count(),
                 table->stats().ovfl_pages_alloced - table->stats().ovfl_pages_freed};
  };

  const auto low = run(2, SplitPolicy::kHybrid);              // violates eq. (1)
  const auto at_eq1 = run(eq1_ffactor, SplitPolicy::kHybrid);  // satisfies it
  const auto huge = run(eq1_ffactor * 16, SplitPolicy::kHybrid);

  // Below the equation: many underfull buckets (space waste).
  EXPECT_GT(low.buckets, at_eq1.buckets * 2);
  // At/above the equation: the hybrid policy plateaus — same table shape.
  EXPECT_EQ(at_eq1.buckets, huge.buckets);
  EXPECT_EQ(at_eq1.live_ovfl, huge.live_ovfl);

  // Ablation A1: controlled-only splitting at a huge fill factor piles up
  // overflow chains (pages per bucket) that the hybrid policy's
  // uncontrolled splits keep short.
  const auto controlled = run(eq1_ffactor * 16, SplitPolicy::kControlledOnly);
  const double hybrid_chain =
      static_cast<double>(huge.live_ovfl) / static_cast<double>(huge.buckets);
  const double controlled_chain =
      static_cast<double>(controlled.live_ovfl) / static_cast<double>(controlled.buckets);
  EXPECT_GT(controlled_chain, hybrid_chain * 8);
  EXPECT_LT(controlled.buckets, huge.buckets);
}

}  // namespace
}  // namespace hashkit
