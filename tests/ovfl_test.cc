// Unit tests for the buddy-in-waiting overflow allocator (src/core/ovfl.h).

#include "src/core/ovfl.h"

#include <gtest/gtest.h>

#include <set>

#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

constexpr size_t kPage = 256;

class OvflTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = MakeMemPageFile(kPage);
    pool_ = std::make_unique<BufferPool>(file_.get(), kPage * 64);
    meta_.bsize = kPage;
    meta_.nhdr_pages = 1;
    alloc_ = std::make_unique<OvflAllocator>(&meta_, pool_.get());
  }

  uint16_t MustAlloc(PageType type = PageType::kOverflow) {
    auto result = alloc_->Alloc(type);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  Meta meta_;
  std::unique_ptr<OvflAllocator> alloc_;
};

TEST_F(OvflTest, FirstAllocationCreatesBitmapFirst) {
  const uint16_t oaddr = MustAlloc();
  // The bitmap took page number 1, so the first usable page is number 2.
  EXPECT_EQ(OaddrPageNum(oaddr), 2u);
  EXPECT_EQ(OaddrSplitPoint(oaddr), 0u);
  EXPECT_NE(meta_.bitmaps[0], 0);
  EXPECT_EQ(meta_.spares[0], 2u);  // bitmap + the allocated page
  // spares is cumulative: all later entries follow.
  EXPECT_EQ(meta_.spares[5], 2u);
}

TEST_F(OvflTest, SequentialAllocationsGetDistinctAddressesAndPages) {
  std::set<uint16_t> oaddrs;
  std::set<uint64_t> pages;
  for (int i = 0; i < 50; ++i) {
    const uint16_t oaddr = MustAlloc();
    EXPECT_TRUE(oaddrs.insert(oaddr).second);
    EXPECT_TRUE(pages.insert(OaddrToPage(meta_, oaddr)).second);
  }
}

TEST_F(OvflTest, AllocFormatsThePage) {
  const uint16_t oaddr = MustAlloc(PageType::kBigSegment);
  auto ref = std::move(pool_->Get(OaddrToPage(meta_, oaddr)).value());
  PageView view(ref.data(), kPage);
  EXPECT_EQ(view.type(), PageType::kBigSegment);
  EXPECT_EQ(view.nentries(), 0);
  EXPECT_EQ(view.ovfl_addr(), 0);
}

TEST_F(OvflTest, FreeThenReuseReturnsSameAddress) {
  const uint16_t a = MustAlloc();
  const uint16_t b = MustAlloc();
  ASSERT_OK(alloc_->Free(a));
  EXPECT_EQ(meta_.last_freed, a);
  const uint16_t c = MustAlloc();
  EXPECT_EQ(c, a);  // freed page reused before carving a fresh one
  EXPECT_NE(c, b);
}

TEST_F(OvflTest, IsAllocatedTracksState) {
  const uint16_t a = MustAlloc();
  EXPECT_TRUE(alloc_->IsAllocated(a).value());
  ASSERT_OK(alloc_->Free(a));
  EXPECT_FALSE(alloc_->IsAllocated(a).value());
}

TEST_F(OvflTest, DoubleFreeRejected) {
  const uint16_t a = MustAlloc();
  ASSERT_OK(alloc_->Free(a));
  EXPECT_TRUE(alloc_->Free(a).IsCorruption());
}

TEST_F(OvflTest, FreeingBitmapPageRejected) {
  MustAlloc();
  EXPECT_TRUE(alloc_->Free(meta_.bitmaps[0]).IsCorruption());
}

TEST_F(OvflTest, FreeingInvalidAddressRejected) {
  MustAlloc();
  EXPECT_TRUE(alloc_->Free(MakeOaddr(0, 200)).IsCorruption());  // never carved
  EXPECT_TRUE(alloc_->Free(MakeOaddr(7, 1)).IsCorruption());    // no bitmap there
  EXPECT_TRUE(alloc_->Free(0).IsCorruption());
}

TEST_F(OvflTest, CountInUseMatchesLiveAllocations) {
  std::vector<uint16_t> live;
  for (int i = 0; i < 10; ++i) {
    live.push_back(MustAlloc());
  }
  ASSERT_OK(alloc_->Free(live[3]));
  ASSERT_OK(alloc_->Free(live[7]));
  // 10 allocations - 2 frees + 1 bitmap page.
  EXPECT_EQ(alloc_->CountInUse().value(), 10u - 2 + 1);
}

TEST_F(OvflTest, AllocationFollowsGrowthFrontier) {
  MustAlloc();
  EXPECT_EQ(OaddrSplitPoint(MustAlloc()), 0u);
  // Table grows to 2 buckets: new allocations move to split point 1.
  meta_.max_bucket = 1;
  const uint16_t at_sp1 = MustAlloc();
  EXPECT_EQ(OaddrSplitPoint(at_sp1), 1u);
  EXPECT_NE(meta_.bitmaps[1], 0);
  // ... but freed pages at split point 0 are still reused.
  const uint16_t old = MakeOaddr(0, 2);
  ASSERT_OK(alloc_->Free(old));
  EXPECT_EQ(MustAlloc(), old);
}

TEST_F(OvflTest, SparesStayCumulative) {
  MustAlloc();
  meta_.max_bucket = 1;
  MustAlloc();
  meta_.max_bucket = 7;
  MustAlloc();
  for (uint32_t i = 1; i < kMaxSplitPoints; ++i) {
    EXPECT_GE(meta_.spares[i], meta_.spares[i - 1]) << i;
  }
  // Pages at split points: 2 at sp0 (bitmap+1), 2 at sp1, 0 at sp2, 2 at sp3.
  EXPECT_EQ(PagesAtSplitPoint(meta_, 0), 2u);
  EXPECT_EQ(PagesAtSplitPoint(meta_, 1), 2u);
  EXPECT_EQ(PagesAtSplitPoint(meta_, 2), 0u);
  EXPECT_EQ(PagesAtSplitPoint(meta_, 3), 2u);
}

TEST_F(OvflTest, ExhaustedSplitPointAdvancesOvflPoint) {
  // Fill split point 0 to its bitmap capacity ((256-8)*8 = 1984 bits).
  const size_t capacity = (kPage - kPageHeaderSize) * 8;
  for (size_t i = 1; i < capacity; ++i) {  // bit 0 is the bitmap itself
    MustAlloc();
  }
  EXPECT_EQ(PagesAtSplitPoint(meta_, 0), capacity);
  // The next allocation must come from split point 1 even though the
  // table still has a single bucket.
  const uint16_t oaddr = MustAlloc();
  EXPECT_EQ(OaddrSplitPoint(oaddr), 1u);
  EXPECT_EQ(meta_.ovfl_point, 1u);
}

TEST_F(OvflTest, ExhaustedAddressSpaceSurfacesFullStatus) {
  // Fake the accounting so the allocator believes every split point up to
  // the last one is carved out.  (Actually allocating 32 * 2047 pages would
  // need gigabytes of in-memory page file; the guard only looks at the
  // spares deltas, so this exercises the same code path.)  With no bitmaps
  // anywhere there is nothing to reuse, and the carve loop must walk off
  // the end of the 5-bit split-point space and report kFull instead of
  // silently wrapping the encoding.
  meta_.ovfl_point = kMaxSplitPoints - 1;
  meta_.spares = {};
  meta_.spares[kMaxSplitPoints - 1] = kMaxOvflPagesPerPoint;
  auto result = alloc_->Alloc(PageType::kOverflow);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFull()) << result.status().ToString();
}

TEST_F(OvflTest, ManyAllocFreeCyclesStayConsistent) {
  std::set<uint16_t> live;
  uint64_t rng = 0x12345;
  for (int step = 0; step < 3000; ++step) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if (live.size() < 20 || (rng >> 33) % 2 == 0) {
      const uint16_t oaddr = MustAlloc();
      EXPECT_TRUE(live.insert(oaddr).second) << "allocator handed out a live address";
    } else {
      auto it = live.begin();
      std::advance(it, (rng >> 33) % live.size());
      ASSERT_OK(alloc_->Free(*it));
      live.erase(it);
    }
  }
  uint64_t bitmap_pages = 0;
  for (uint32_t sp = 0; sp < kMaxSplitPoints; ++sp) {
    bitmap_pages += meta_.bitmaps[sp] != 0 ? 1 : 0;
  }
  EXPECT_EQ(alloc_->CountInUse().value(), live.size() + bitmap_pages);
}

}  // namespace
}  // namespace hashkit
