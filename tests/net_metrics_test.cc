// Tests for hashkit-obs at the network tier: the STATS wire command must
// carry per-opcode and per-store latency percentiles, and the optional
// metrics endpoint must answer an HTTP scrape with Prometheus-style
// plaintext exposition — checked over a raw TCP socket, since the point is
// that any scraper (no hashkit client) can read it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "tests/test_util.h"

namespace hashkit {
namespace net {
namespace {

using kv::KvStore;
using kv::OpenStore;
using kv::StoreKind;
using kv::StoreOptions;

std::unique_ptr<KvStore> OpenMemStore() {
  StoreOptions options;
  options.nelem = 4096;
  auto opened = OpenStore(StoreKind::kHashMemory, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return kv::MakeSynchronized(std::move(opened).value());
}

// Pulls "key=value\n" out of the stats text; -1 when absent.
long long StatValue(const std::string& text, const std::string& key) {
  const std::string needle = key + "=";
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    if (line.compare(0, needle.size(), needle) == 0) {
      return std::stoll(line.substr(needle.size()));
    }
    if (eol == std::string::npos) {
      break;
    }
    pos = eol + 1;
  }
  return -1;
}

TEST(NetMetricsTest, StatsTextCarriesLatencyPercentiles) {
  auto store = OpenMemStore();
  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  Server server(store.get(), options);
  ASSERT_OK(server.Start());

  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();
  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(client->Put("k" + std::to_string(i), "v" + std::to_string(i)));
    ASSERT_OK(client->Get("k" + std::to_string(i), &value));
  }

  std::string text;
  ASSERT_OK(client->Stats(&text));
  server.Stop();

  // Server-side per-opcode dispatch latency.
  EXPECT_EQ(StatValue(text, "server.latency.GET.count"), 200);
  EXPECT_EQ(StatValue(text, "server.latency.PUT.count"), 200);
  const long long get_p50 = StatValue(text, "server.latency.GET.p50_ns");
  const long long get_p99 = StatValue(text, "server.latency.GET.p99_ns");
  const long long get_max = StatValue(text, "server.latency.GET.max_ns");
  EXPECT_GT(get_p50, 0);
  EXPECT_LE(get_p50, get_p99);
  EXPECT_LE(get_p99, get_max);
  // Unused opcodes report zeroed blocks, not missing keys.
  EXPECT_EQ(StatValue(text, "server.latency.DEL.count"), 0);
  EXPECT_EQ(StatValue(text, "server.latency.DEL.p999_ns"), 0);

  // Store-tier end-to-end latency from the SynchronizedStore wrapper.
  EXPECT_EQ(StatValue(text, "store.latency.put.count"), 200);
  EXPECT_EQ(StatValue(text, "store.latency.get.count"), 200);
  EXPECT_GT(StatValue(text, "store.latency.get.p50_ns"), 0);
  EXPECT_EQ(StatValue(text, "store.latency.del.count"), 0);
  EXPECT_GE(StatValue(text, "store.latency.get.max_ns"),
            StatValue(text, "store.latency.get.p50_ns"));
}

TEST(NetMetricsTest, MetricsEndpointServesPrometheusText) {
  auto store = OpenMemStore();
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.metrics_port = 0;  // kernel-assigned
  Server server(store.get(), options);
  ASSERT_OK(server.Start());
  ASSERT_GT(server.metrics_port(), 0);
  ASSERT_NE(server.metrics_port(), server.port());

  {
    auto connected = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok());
    auto client = std::move(connected).value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(client->Put("m" + std::to_string(i), "x"));
    }
    ASSERT_OK(client->Ping());
  }

  // Scrape with a plain blocking TCP socket speaking minimal HTTP.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.metrics_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  server.Stop();

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("hashkit_requests_total{op=\"put\"} 50"), std::string::npos);
  EXPECT_NE(response.find("hashkit_requests_total{op=\"ping\"} 1"), std::string::npos);
  EXPECT_NE(response.find("hashkit_request_latency_ns{op=\"put\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(response.find("hashkit_request_latency_ns_count{op=\"put\"} 50"),
            std::string::npos);
  EXPECT_NE(response.find("hashkit_store_size 50"), std::string::npos);
  EXPECT_NE(response.find("hashkit_store_latency_ns{op=\"put\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(response.find("hashkit_connections_accepted_total"), std::string::npos);
}

TEST(NetMetricsTest, MetricsEndpointDisabledByDefault) {
  auto store = OpenMemStore();
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  Server server(store.get(), options);
  ASSERT_OK(server.Start());
  EXPECT_EQ(server.metrics_port(), 0);
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace hashkit
