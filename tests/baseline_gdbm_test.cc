// Tests for the gdbm clone (extendible hashing).

#include "src/baselines/gdbm/gdbm.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace baseline {
namespace {

std::unique_ptr<GdbmClone> OpenFresh(const std::string& tag, uint32_t block = 1024) {
  auto result = GdbmClone::Open(TempPath(tag), block, /*truncate=*/true);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(GdbmTest, StoreFetchRemove) {
  auto db = OpenFresh("g_basic");
  ASSERT_OK(db->Store("alpha", "one", true));
  std::string value;
  ASSERT_OK(db->Fetch("alpha", &value));
  EXPECT_EQ(value, "one");
  ASSERT_OK(db->Remove("alpha"));
  EXPECT_TRUE(db->Fetch("alpha", &value).IsNotFound());
  ASSERT_OK(db->CheckIntegrity());
}

TEST(GdbmTest, InsertModeRefusesDuplicates) {
  auto db = OpenFresh("g_dup");
  ASSERT_OK(db->Store("k", "v1", false));
  EXPECT_TRUE(db->Store("k", "v2", false).IsExists());
  ASSERT_OK(db->Store("k", "v2", true));
  std::string value;
  ASSERT_OK(db->Fetch("k", &value));
  EXPECT_EQ(value, "v2");
}

TEST(GdbmTest, DirectoryDoublesUnderLoad) {
  auto db = OpenFresh("g_grow");
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK(db->Store("key-" + std::to_string(i), "value-" + std::to_string(i), true));
  }
  EXPECT_GT(db->directory_depth(), 3u);
  EXPECT_EQ(db->directory_entries(), size_t{1} << db->directory_depth());
  EXPECT_GT(db->stats().directory_doublings, 3u);
  ASSERT_OK(db->CheckIntegrity());
  std::string value;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK(db->Fetch("key-" + std::to_string(i), &value)) << i;
    ASSERT_EQ(value, "value-" + std::to_string(i));
  }
}

TEST(GdbmTest, ArbitraryLengthDataSupported) {
  // The gdbm feature the paper highlights: no pair-size limit.
  auto db = OpenFresh("g_big", 512);
  const std::string big(50000, 'G');
  ASSERT_OK(db->Store("big", big, true));
  std::string value;
  ASSERT_OK(db->Fetch("big", &value));
  EXPECT_EQ(value, big);
  ASSERT_OK(db->CheckIntegrity());
  // Deleting recycles the chain pages through the free list.
  ASSERT_OK(db->Remove("big"));
  const uint64_t reused_before = db->stats().pages_reused;
  ASSERT_OK(db->Store("big2", big, true));
  EXPECT_GT(db->stats().pages_reused, reused_before);
}

TEST(GdbmTest, SeqEnumeratesEveryPairOnceDespiteAliases) {
  // Directory entries alias buckets 2^(depth-nb) times; the scan must
  // still visit each pair exactly once.
  auto db = OpenFresh("g_seq");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 800; ++i) {
    const std::string key = "s" + std::to_string(i);
    ASSERT_OK(db->Store(key, std::to_string(i), true));
    model[key] = std::to_string(i);
  }
  std::map<std::string, std::string> seen;
  std::string k, v;
  Status st = db->Seq(&k, &v, true);
  while (st.ok()) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate " << k;
    st = db->Seq(&k, &v, false);
  }
  EXPECT_EQ(seen, model);
}

TEST(GdbmTest, FileIsNonSparse) {
  // "its database is a singular, non-sparse file": every page up to the
  // allocation frontier is written.
  auto db = OpenFresh("g_dense");
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(db->Store("d" + std::to_string(i), "v", true));
  }
  ASSERT_OK(db->Sync());
  EXPECT_EQ(db->file_stats().zero_fills, 0u);  // nothing ever read from a hole
}

TEST(GdbmTest, PersistsAcrossReopen) {
  const std::string path = TempPath("g_persist");
  std::map<std::string, std::string> model;
  {
    auto db = std::move(GdbmClone::Open(path, 1024, true).value());
    Rng rng(6);
    for (int i = 0; i < 1500; ++i) {
      const std::string key = "p" + std::to_string(i);
      const std::string value = rng.AsciiString(rng.Range(1, 200));
      ASSERT_OK(db->Store(key, value, true));
      model[key] = value;
    }
    const std::string big(20000, 'B');
    ASSERT_OK(db->Store("bigp", big, true));
    model["bigp"] = big;
    ASSERT_OK(db->Sync());
  }
  auto db = std::move(GdbmClone::Open(path, 1024, false).value());
  ASSERT_OK(db->CheckIntegrity());
  EXPECT_EQ(db->size(), model.size());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(db->Fetch(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

TEST(GdbmTest, RandomOpsMatchReference) {
  auto db = OpenFresh("g_prop", 512);
  Rng rng(23);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 3000; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(250));
    const uint64_t op = rng.Uniform(10);
    if (op < 6) {
      // Mix in occasional big values to exercise chains.
      const size_t len = rng.Bernoulli(0.05) ? rng.Range(600, 3000) : rng.Range(0, 60);
      const std::string value = rng.AsciiString(len);
      ASSERT_OK(db->Store(key, value, true));
      model[key] = value;
    } else if (op < 8) {
      const Status st = db->Remove(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      std::string value;
      const Status st = db->Fetch(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    if (step % 1000 == 999) {
      ASSERT_OK(db->CheckIntegrity()) << "step " << step;
    }
  }
  ASSERT_OK(db->CheckIntegrity());
  EXPECT_EQ(db->size(), model.size());
}

}  // namespace
}  // namespace baseline
}  // namespace hashkit
