// hashkit-wal unit tests: CRC32C vectors, log framing roundtrip, torn-tail
// detection, recovery replay semantics, group commit cadence, and the
// HashTable durability modes end to end on disk files.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/hash_table.h"
#include "src/pagefile/page_file.h"
#include "src/util/endian.h"
#include "src/wal/crc32c.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"
#include "src/wal/recovery.h"
#include "src/wal/wal_format.h"
#include "src/wal/wal_storage.h"
#include "tests/test_util.h"

namespace hashkit {
namespace wal {
namespace {

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownAnswers) {
  // The canonical CRC-32C check value (RFC 3720 appendix and every
  // Castagnoli implementation): crc("123456789") == 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes, another standard vector.
  uint8_t zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  const char* data = "write-ahead logging";
  const size_t n = std::strlen(data);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t crc = Crc32cExtend(0, data, split);
    crc = Crc32cExtend(crc, data + split, n - split);
    EXPECT_EQ(crc, Crc32c(data, n)) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Writer / reader roundtrip
// ---------------------------------------------------------------------------

std::vector<uint8_t> Image(uint32_t page_size, uint8_t fill) {
  return std::vector<uint8_t>(page_size, fill);
}

TEST(LogRoundtrip, RecordsComeBackInOrder) {
  constexpr uint32_t kPage = 128;
  auto storage = MakeMemWalStorage();
  WalStorage* raw = storage.get();
  LogWriter writer(std::move(storage), kPage, /*sync_every=*/1);
  ASSERT_OK(writer.Init());

  const auto a = Image(kPage, 0xAA);
  const auto b = Image(kPage, 0xBB);
  writer.AppendPageImage(7, a);
  writer.AppendPageImage(9, b);
  bool synced = false;
  ASSERT_OK(writer.Commit(&synced));
  EXPECT_TRUE(synced);

  const auto c = Image(kPage, 0xCC);
  writer.AppendPageImage(3, c);
  ASSERT_OK(writer.Commit(&synced));

  std::vector<uint8_t> bytes;
  ASSERT_OK(raw->ReadAll(&bytes));
  LogReader reader(bytes);
  auto header = reader.ReadHeader();
  ASSERT_OK(header.status());
  EXPECT_EQ(header.value(), kPage);

  WalRecord rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.type, WalRecordType::kPageImage);
  EXPECT_EQ(rec.pageno, 7u);
  EXPECT_EQ(std::memcmp(rec.image.data(), a.data(), kPage), 0);
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.pageno, 9u);
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.type, WalRecordType::kCommit);
  EXPECT_EQ(rec.seq, 1u);
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.pageno, 3u);
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.type, WalRecordType::kCommit);
  EXPECT_EQ(rec.seq, 2u);
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.torn_tail());
}

TEST(LogRoundtrip, InitValidatesExistingHeader) {
  std::vector<uint8_t> bytes;
  {
    auto storage = MakeMemWalStorage();
    WalStorage* raw = storage.get();
    LogWriter writer(std::move(storage), 256, 1);
    ASSERT_OK(writer.Init());
    ASSERT_OK(raw->ReadAll(&bytes));
  }
  // Same geometry: accepted (replay the bytes into a fresh mem log).
  auto copy = MakeMemWalStorage();
  ASSERT_OK(copy->Append(bytes));
  LogWriter same(std::move(copy), 256, 1);
  EXPECT_OK(same.Init());

  auto copy2 = MakeMemWalStorage();
  ASSERT_OK(copy2->Append(bytes));
  LogWriter mismatched(std::move(copy2), 512, 1);
  EXPECT_TRUE(mismatched.Init().IsCorruption());
}

TEST(LogReaderTest, HeaderValidation) {
  // Empty: absent.
  {
    LogReader reader(std::span<const uint8_t>{});
    EXPECT_TRUE(reader.ReadHeader().status().IsNotFound());
  }
  // Garbage magic: absent (never corruption — a torn first write).
  {
    std::vector<uint8_t> bytes(kWalHeaderSize, 0x5A);
    LogReader reader(bytes);
    EXPECT_TRUE(reader.ReadHeader().status().IsNotFound());
  }
  // Valid magic+crc but future version: corruption (refuse to guess).
  {
    std::vector<uint8_t> bytes(kWalHeaderSize);
    EncodeU32(bytes.data(), kWalMagic);
    EncodeU32(bytes.data() + 4, kWalVersion + 1);
    EncodeU32(bytes.data() + 8, 256);
    EncodeU32(bytes.data() + 12, Crc32c(bytes.data(), 12));
    LogReader reader(bytes);
    EXPECT_TRUE(reader.ReadHeader().status().IsCorruption());
  }
  // Torn header (crc mismatch): absent.
  {
    std::vector<uint8_t> bytes(kWalHeaderSize);
    EncodeU32(bytes.data(), kWalMagic);
    EncodeU32(bytes.data() + 4, kWalVersion);
    EncodeU32(bytes.data() + 8, 256);
    EncodeU32(bytes.data() + 12, 0xDEADBEEF);
    LogReader reader(bytes);
    EXPECT_TRUE(reader.ReadHeader().status().IsNotFound());
  }
}

TEST(LogReaderTest, TornTailStopsIteration) {
  constexpr uint32_t kPage = 64;
  auto storage = MakeMemWalStorage();
  WalStorage* raw = storage.get();
  LogWriter writer(std::move(storage), kPage, 1);
  ASSERT_OK(writer.Init());
  bool synced = false;
  writer.AppendPageImage(1, Image(kPage, 0x11));
  ASSERT_OK(writer.Commit(&synced));
  writer.AppendPageImage(2, Image(kPage, 0x22));
  ASSERT_OK(writer.Commit(&synced));

  std::vector<uint8_t> bytes;
  ASSERT_OK(raw->ReadAll(&bytes));

  // Truncate mid-way through the second batch: the first batch must still
  // read cleanly, then torn_tail.
  for (size_t cut = kWalHeaderSize + 1; cut < bytes.size(); cut += 7) {
    std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    LogReader reader(torn);
    auto header = reader.ReadHeader();
    ASSERT_OK(header.status());
    WalRecord rec;
    uint64_t commits = 0;
    while (reader.Next(&rec)) {
      if (rec.type == WalRecordType::kCommit) {
        ++commits;
      }
    }
    // Whole batches only: never a partial batch's commit.
    EXPECT_LE(commits, 2u);
    if (cut < bytes.size()) {
      EXPECT_TRUE(reader.torn_tail() || commits <= 2);
    }
  }

  // Corrupt a byte inside the last record body: CRC catches it.
  std::vector<uint8_t> flipped = bytes;
  flipped[flipped.size() - 3] ^= 0xFF;
  LogReader reader(flipped);
  ASSERT_OK(reader.ReadHeader().status());
  WalRecord rec;
  while (reader.Next(&rec)) {
  }
  EXPECT_TRUE(reader.torn_tail());
}

// ---------------------------------------------------------------------------
// Group commit cadence
// ---------------------------------------------------------------------------

TEST(GroupCommit, SyncEveryNthCommit) {
  constexpr uint32_t kPage = 64;
  LogWriter writer(MakeMemWalStorage(), kPage, /*sync_every=*/4);
  ASSERT_OK(writer.Init());
  int synced_count = 0;
  for (int i = 1; i <= 12; ++i) {
    writer.AppendPageImage(1, Image(kPage, static_cast<uint8_t>(i)));
    bool synced = false;
    ASSERT_OK(writer.Commit(&synced));
    if (synced) {
      ++synced_count;
      EXPECT_EQ(i % 4, 0) << "sync on commit " << i;
    }
  }
  EXPECT_EQ(synced_count, 3);
  EXPECT_EQ(writer.Stats().syncs, 3u);
}

TEST(GroupCommit, AsyncNeverSyncsOnCommitButBarrierDoes) {
  constexpr uint32_t kPage = 64;
  LogWriter writer(MakeMemWalStorage(), kPage, /*sync_every=*/0);
  ASSERT_OK(writer.Init());
  for (int i = 0; i < 8; ++i) {
    writer.AppendPageImage(1, Image(kPage, 0x42));
    bool synced = true;
    ASSERT_OK(writer.Commit(&synced));
    EXPECT_FALSE(synced);
  }
  EXPECT_EQ(writer.Stats().syncs, 0u);
  ASSERT_OK(writer.SyncBarrier());
  EXPECT_EQ(writer.Stats().syncs, 1u);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

TEST(Recovery, AppliesCommittedBatchesAndDiscardsTornTail) {
  constexpr uint32_t kPage = 64;
  auto storage = MakeMemWalStorage();
  WalStorage* raw = storage.get();
  LogWriter writer(std::move(storage), kPage, 0);
  ASSERT_OK(writer.Init());
  bool synced = false;
  writer.AppendPageImage(0, Image(kPage, 0x01));
  writer.AppendPageImage(5, Image(kPage, 0x05));
  ASSERT_OK(writer.Commit(&synced));
  writer.AppendPageImage(5, Image(kPage, 0x55));  // second batch overwrites
  ASSERT_OK(writer.Commit(&synced));

  // Snapshot, then append a batch whose commit we chop off.
  std::vector<uint8_t> bytes;
  ASSERT_OK(raw->ReadAll(&bytes));
  writer.AppendPageImage(7, Image(kPage, 0x77));
  ASSERT_OK(writer.Commit(&synced));
  std::vector<uint8_t> all;
  ASSERT_OK(raw->ReadAll(&all));
  std::vector<uint8_t> torn(all.begin(), all.begin() + static_cast<long>(all.size() - 5));

  auto wal = MakeMemWalStorage();
  ASSERT_OK(wal->Append(torn));
  auto file = MakeMemPageFile(kPage);
  auto recovered = Recover(wal.get(), file.get());
  ASSERT_OK(recovered.status());
  EXPECT_TRUE(recovered.value().wal_found);
  EXPECT_EQ(recovered.value().batches_applied, 2u);
  EXPECT_EQ(recovered.value().pages_applied, 3u);
  EXPECT_TRUE(recovered.value().torn_tail);
  EXPECT_EQ(recovered.value().last_seq, 2u);

  std::vector<uint8_t> page(kPage);
  ASSERT_OK(file->ReadPage(5, std::span<uint8_t>(page)));
  EXPECT_EQ(page[0], 0x55);  // the later committed image won
  ASSERT_OK(file->ReadPage(0, std::span<uint8_t>(page)));
  EXPECT_EQ(page[0], 0x01);
  // Page 7's torn batch must NOT have been applied.  The file may not even
  // extend that far; a short file reads back zeros.
  if (file->PageCount() > 7) {
    ASSERT_OK(file->ReadPage(7, std::span<uint8_t>(page)));
    EXPECT_NE(page[0], 0x77);
  }

  // Recovery finalized the log: running it again replays nothing.
  auto again = Recover(wal.get(), file.get());
  ASSERT_OK(again.status());
  EXPECT_EQ(again.value().batches_applied, 0u);
  EXPECT_FALSE(again.value().torn_tail);
  EXPECT_EQ(again.value().last_seq, 2u);  // checkpoint carried the seq over
}

TEST(Recovery, EmptyAndHeaderlessLogsAreNoOps) {
  constexpr uint32_t kPage = 64;
  auto file = MakeMemPageFile(kPage);
  {
    auto wal = MakeMemWalStorage();
    auto r = Recover(wal.get(), file.get());
    ASSERT_OK(r.status());
    EXPECT_FALSE(r.value().wal_found);
  }
  {
    // Garbage where the header should be: treated as absent and cleared.
    auto wal = MakeMemWalStorage();
    std::vector<uint8_t> junk(10, 0xEE);
    ASSERT_OK(wal->Append(junk));
    auto r = Recover(wal.get(), file.get());
    ASSERT_OK(r.status());
    EXPECT_FALSE(r.value().wal_found);
    EXPECT_EQ(wal->Size(), 0u);
  }
  EXPECT_EQ(file->PageCount(), 0u);
}

TEST(Recovery, CheckpointRecordBoundsReplay) {
  constexpr uint32_t kPage = 64;
  auto storage = MakeMemWalStorage();
  WalStorage* raw = storage.get();
  LogWriter writer(std::move(storage), kPage, 0);
  ASSERT_OK(writer.Init());
  bool synced = false;
  writer.AppendPageImage(1, Image(kPage, 0x10));
  ASSERT_OK(writer.Commit(&synced));
  ASSERT_OK(writer.CheckpointReset());  // truncates; batch 1 is retired
  writer.AppendPageImage(2, Image(kPage, 0x20));
  ASSERT_OK(writer.Commit(&synced));

  std::vector<uint8_t> bytes;
  ASSERT_OK(raw->ReadAll(&bytes));
  auto wal = MakeMemWalStorage();
  ASSERT_OK(wal->Append(bytes));
  auto file = MakeMemPageFile(kPage);
  auto r = Recover(wal.get(), file.get());
  ASSERT_OK(r.status());
  EXPECT_EQ(r.value().batches_applied, 1u);  // only the post-checkpoint batch
  EXPECT_EQ(r.value().pages_applied, 1u);
  std::vector<uint8_t> page(kPage);
  ASSERT_OK(file->ReadPage(2, std::span<uint8_t>(page)));
  EXPECT_EQ(page[0], 0x20);
}

// ---------------------------------------------------------------------------
// HashTable durability modes on disk
// ---------------------------------------------------------------------------

TEST(WalTable, SyncModeSurvivesCleanReopen) {
  const std::string path = TempPath("wal_sync_reopen");
  std::remove((path + ".wal").c_str());
  HashOptions options;
  options.bsize = 256;
  options.ffactor = 8;
  options.durability = Durability::kSync;
  {
    auto opened = HashTable::Open(path, options, /*truncate=*/true);
    ASSERT_OK(opened.status());
    auto& table = *opened.value();
    for (int i = 0; i < 300; ++i) {
      ASSERT_OK(table.Put("key" + std::to_string(i), "value" + std::to_string(i)));
    }
    EXPECT_GT(table.WalStatsSnapshot().commits, 0u);
    EXPECT_GT(table.WalStatsSnapshot().syncs, 0u);
  }
  {
    auto reopened = HashTable::Open(path, options, /*truncate=*/false);
    ASSERT_OK(reopened.status());
    auto& table = *reopened.value();
    EXPECT_EQ(table.size(), 300u);
    ASSERT_OK(table.CheckIntegrity());
    std::string value;
    for (int i = 0; i < 300; ++i) {
      ASSERT_OK(table.Get("key" + std::to_string(i), &value));
      EXPECT_EQ(value, "value" + std::to_string(i));
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(WalTable, AsyncModeSyncIsDurabilityBarrier) {
  const std::string path = TempPath("wal_async_barrier");
  std::remove((path + ".wal").c_str());
  HashOptions options;
  options.bsize = 256;
  options.durability = Durability::kAsync;
  {
    auto opened = HashTable::Open(path, options, /*truncate=*/true);
    ASSERT_OK(opened.status());
    auto& table = *opened.value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(table.Put("k" + std::to_string(i), std::string(100, 'v')));
    }
    EXPECT_EQ(table.WalStatsSnapshot().syncs, 0u);  // no per-op fsync
    ASSERT_OK(table.Sync());                        // explicit barrier checkpoints
    EXPECT_GT(table.WalStatsSnapshot().checkpoints, 0u);
  }
  // Reopen without any durability: recovery must still run (and find a
  // clean, checkpointed log).
  HashOptions plain;
  auto reopened = HashTable::Open(path, plain, /*truncate=*/false);
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->size(), 100u);
  ASSERT_OK(reopened.value()->CheckIntegrity());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(WalTable, CheckpointTriggerBoundsLogSize) {
  const std::string path = TempPath("wal_checkpoint_trigger");
  std::remove((path + ".wal").c_str());
  HashOptions options;
  options.bsize = 256;
  options.ffactor = 8;
  options.durability = Durability::kSync;
  options.wal_group_commit = 8;
  options.wal_checkpoint_bytes = 1;  // floored to 64 KB internally
  auto opened = HashTable::Open(path, options, /*truncate=*/true);
  ASSERT_OK(opened.status());
  auto& table = *opened.value();
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(table.Put("key" + std::to_string(i), std::string(64, 'x')));
  }
  const WalStats stats = table.WalStatsSnapshot();
  EXPECT_GT(stats.checkpoints, 0u);
  ASSERT_OK(table.CheckIntegrity());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(WalTable, TruncateDiscardsStaleLog) {
  const std::string path = TempPath("wal_truncate_discard");
  HashOptions options;
  options.bsize = 256;
  options.durability = Durability::kSync;
  {
    auto opened = HashTable::Open(path, options, /*truncate=*/true);
    ASSERT_OK(opened.status());
    ASSERT_OK(opened.value()->Put("old", "data"));
  }
  // truncate=true must not replay the old table's log into the new file.
  {
    auto opened = HashTable::Open(path, options, /*truncate=*/true);
    ASSERT_OK(opened.status());
    EXPECT_EQ(opened.value()->size(), 0u);
    std::string value;
    EXPECT_TRUE(opened.value()->Get("old", &value).IsNotFound());
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace wal
}  // namespace hashkit
