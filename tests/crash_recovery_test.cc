// hashkit crash-simulation harness.
//
// Recording backends capture every write the table issues — page writes to
// the main file, appends and truncates to the write-ahead log — into one
// ordered event stream.  A simulated crash is a prefix of that stream:
// materialize fresh in-memory backends from the first k events, reopen the
// table through the normal recovery path, and check the invariants the WAL
// promises:
//
//   * the open always succeeds and the table passes a full structural
//     integrity check (no torn state is ever visible), and
//   * the table contains exactly the committed prefix of the workload —
//     every acknowledged insert, at most the one insert that was in
//     flight, and nothing else.
//
// WAL appends additionally get torn variants: the last append in a prefix
// is cut at 512-byte sector boundaries, modeling a power cut mid-write.
// Sector-torn tails must be discarded by recovery, never replayed.
//
// The crash model: main-file page writes are atomic at page granularity
// (the standard assumption the paper's `hash` makes of the filesystem);
// log appends tear at sector granularity; nothing is reordered.  fsync
// events need no recording because a materialized prefix is by definition
// "everything issued so far reached disk".

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/hash_table.h"
#include "src/pagefile/page_file.h"
#include "src/wal/wal_storage.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

struct Event {
  enum Kind : uint8_t { kPageWrite, kWalAppend, kWalTruncate };
  Kind kind;
  uint64_t pageno = 0;          // kPageWrite only
  std::vector<uint8_t> bytes;   // page image or appended log bytes
};

using EventLog = std::vector<Event>;

class RecordingPageFile : public PageFile {
 public:
  RecordingPageFile(size_t page_size, std::shared_ptr<EventLog> log)
      : PageFile(page_size), inner_(MakeMemPageFile(page_size)), log_(std::move(log)) {}

  Status ReadPage(uint64_t pageno, std::span<uint8_t> out) override {
    return inner_->ReadPage(pageno, out);
  }
  Status WritePage(uint64_t pageno, std::span<const uint8_t> data) override {
    log_->push_back(Event{Event::kPageWrite, pageno, {data.begin(), data.end()}});
    return inner_->WritePage(pageno, data);
  }
  Status Sync() override { return Status::Ok(); }
  uint64_t PageCount() const override { return inner_->PageCount(); }

 private:
  std::unique_ptr<PageFile> inner_;
  std::shared_ptr<EventLog> log_;
};

class RecordingWalStorage : public wal::WalStorage {
 public:
  explicit RecordingWalStorage(std::shared_ptr<EventLog> log)
      : inner_(wal::MakeMemWalStorage()), log_(std::move(log)) {}

  Status Append(std::span<const uint8_t> data) override {
    log_->push_back(Event{Event::kWalAppend, 0, {data.begin(), data.end()}});
    return inner_->Append(data);
  }
  Status Sync() override { return inner_->Sync(); }
  uint64_t Size() const override { return inner_->Size(); }
  Status ReadAll(std::vector<uint8_t>* out) override { return inner_->ReadAll(out); }
  Status Truncate() override {
    log_->push_back(Event{Event::kWalTruncate, 0, {}});
    return inner_->Truncate();
  }

 private:
  std::unique_ptr<wal::WalStorage> inner_;
  std::shared_ptr<EventLog> log_;
};

// Builds fresh in-memory backends holding the state after the first `k`
// events.  When the k-th event is a WAL append and `torn_bytes` is smaller
// than it, only the first `torn_bytes` bytes land (a sector-torn tail).
std::pair<std::unique_ptr<PageFile>, std::unique_ptr<wal::WalStorage>> Materialize(
    const EventLog& log, size_t k, size_t torn_bytes, uint32_t page_size) {
  auto file = MakeMemPageFile(page_size);
  auto wal_store = wal::MakeMemWalStorage();
  for (size_t i = 0; i < k; ++i) {
    const Event& e = log[i];
    switch (e.kind) {
      case Event::kPageWrite:
        EXPECT_OK(file->WritePage(e.pageno, e.bytes));
        break;
      case Event::kWalAppend: {
        std::span<const uint8_t> bytes(e.bytes);
        if (i + 1 == k && torn_bytes < bytes.size()) {
          bytes = bytes.subspan(0, torn_bytes);
        }
        EXPECT_OK(wal_store->Append(bytes));
        break;
      }
      case Event::kWalTruncate:
        EXPECT_OK(wal_store->Truncate());
        break;
    }
  }
  return {std::move(file), std::move(wal_store)};
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%04d", i);
  return buf;
}

std::string Value(int i) { return "value-" + std::to_string(i) + "-xxxxxxxx"; }

constexpr uint32_t kPageSize = 256;
constexpr int kInserts = 1000;

HashOptions WorkloadOptions() {
  HashOptions options;
  options.bsize = kPageSize;
  options.ffactor = 8;  // small buckets: ~125 splits over the workload
  options.durability = Durability::kSync;
  options.wal_group_commit = 1;  // every Put is acknowledged durable
  options.wal_checkpoint_bytes = 128 * 1024;
  return options;
}

HashOptions ReopenOptions() {
  // Recovery itself is durability-independent: reopen without a WAL
  // attached (the materialized log is still replayed because the backend
  // is handed in explicitly).
  HashOptions options;
  options.bsize = kPageSize;
  options.ffactor = 8;
  return options;
}

// Runs the workload against recording backends, returning the event log
// and acked[i] = event-log length at the moment Put(i) was acknowledged.
std::shared_ptr<EventLog> RunWorkload(std::vector<size_t>* acked) {
  auto log = std::make_shared<EventLog>();
  auto file = std::make_unique<RecordingPageFile>(kPageSize, log);
  auto wal_store = std::make_unique<RecordingWalStorage>(log);
  auto opened =
      HashTable::OpenWithBackends(std::move(file), std::move(wal_store), WorkloadOptions());
  EXPECT_OK(opened.status());
  auto& table = *opened.value();
  for (int i = 0; i < kInserts; ++i) {
    EXPECT_OK(table.Put(Key(i), Value(i)));
    acked->push_back(log->size());
    if ((i + 1) % 100 == 0) {
      EXPECT_OK(table.Sync());  // periodic checkpoints truncate the log
    }
  }
  EXPECT_GT(table.bucket_count(), 64u) << "workload must force splits";
  return log;
}

// Number of Puts acknowledged by event index k.
size_t AckedAt(const std::vector<size_t>& acked, size_t k) {
  size_t n = 0;
  while (n < acked.size() && acked[n] <= k) {
    ++n;
  }
  return n;
}

// Opens a materialized crash state and checks the recovered table.
// `min_pairs`/`max_pairs` bound the legal table size: every acknowledged
// insert must be present; at most the single in-flight insert beyond that
// may additionally have committed.  Returns the recovered size.
uint64_t CheckPrefix(const EventLog& log, size_t k, size_t torn_bytes, size_t min_pairs,
                     size_t max_pairs, bool full_scan) {
  auto [file, wal_store] = Materialize(log, k, torn_bytes, kPageSize);
  auto reopened =
      HashTable::OpenWithBackends(std::move(file), std::move(wal_store), ReopenOptions());
  EXPECT_OK(reopened.status()) << "prefix " << k;
  if (!reopened.ok()) {
    return 0;
  }
  auto& table = *reopened.value();
  const uint64_t pairs = table.size();
  EXPECT_GE(pairs, min_pairs) << "prefix " << k << " lost an acknowledged insert";
  EXPECT_LE(pairs, max_pairs) << "prefix " << k << " invented an insert";
  EXPECT_OK(table.CheckIntegrity()) << "prefix " << k;

  // Inserts are sequential, so size alone pins the exact contents; spot
  // check the boundary on every prefix and the full contents on a sample.
  std::string value;
  if (pairs > 0) {
    EXPECT_OK(table.Get(Key(static_cast<int>(pairs) - 1), &value)) << "prefix " << k;
    if (!value.empty()) {
      EXPECT_EQ(value, Value(static_cast<int>(pairs) - 1));
    }
  }
  if (pairs < static_cast<uint64_t>(kInserts)) {
    EXPECT_TRUE(table.Get(Key(static_cast<int>(pairs)), &value).IsNotFound())
        << "prefix " << k;
  }
  if (full_scan) {
    for (uint64_t i = 0; i < pairs; ++i) {
      EXPECT_OK(table.Get(Key(static_cast<int>(i)), &value)) << "prefix " << k;
      EXPECT_EQ(value, Value(static_cast<int>(i)));
    }
  }
  return pairs;
}

TEST(CrashRecovery, EveryEventPrefixRecoversToCommittedState) {
  std::vector<size_t> acked;
  auto log = RunWorkload(&acked);
  const size_t total = log->size();
  ASSERT_GT(total, static_cast<size_t>(kInserts));
  size_t truncates = 0;
  for (const Event& e : *log) {
    truncates += e.kind == Event::kWalTruncate ? 1 : 0;
  }
  ASSERT_GT(truncates, 0u) << "workload must cross at least one checkpoint";

  uint64_t prev = 0;
  for (size_t k = 0; k <= total; ++k) {
    const size_t committed = AckedAt(acked, k);
    // At most one insert can be in flight at the crash point.
    const uint64_t pairs = CheckPrefix(*log, k, SIZE_MAX, committed, committed + 1,
                                       /*full_scan=*/k % 128 == 0 || k == total);
    EXPECT_GE(pairs, prev) << "recovered state regressed at prefix " << k;
    prev = pairs;
  }
  EXPECT_EQ(prev, static_cast<uint64_t>(kInserts));
}

TEST(CrashRecovery, SectorTornWalTailsAreDiscarded) {
  std::vector<size_t> acked;
  auto log = RunWorkload(&acked);
  const size_t total = log->size();

  size_t variants = 0;
  for (size_t k = 1; k <= total; ++k) {
    const Event& last = (*log)[k - 1];
    if (last.kind != Event::kWalAppend || last.bytes.size() <= 512) {
      continue;
    }
    const size_t committed_before = AckedAt(acked, k - 1);
    for (size_t cut = 512; cut < last.bytes.size(); cut += 512) {
      // A torn append never happened: the bound is as if the prefix ended
      // one event earlier, plus the usual one in-flight insert.
      CheckPrefix(*log, k, cut, committed_before, committed_before + 1,
                  /*full_scan=*/false);
      ++variants;
    }
  }
  EXPECT_GT(variants, 100u) << "workload produced too few torn-tail cases";
}

TEST(CrashRecovery, RecoveryIsIdempotent) {
  std::vector<size_t> acked;
  auto log = RunWorkload(&acked);
  // Pick the crash point with the most batched-up state: just before the
  // checkpoint truncate that retires the largest number of log appends.
  // (The final truncate can be a no-op checkpoint from table teardown.)
  size_t k = 0;
  size_t best_appends = 0;
  size_t appends = 0;
  for (size_t i = 0; i < log->size(); ++i) {
    if ((*log)[i].kind == Event::kWalAppend) {
      ++appends;
    } else if ((*log)[i].kind == Event::kWalTruncate) {
      if (appends > best_appends) {
        best_appends = appends;
        k = i;  // prefix ends right before this truncate
      }
      appends = 0;
    }
  }
  ASSERT_GT(best_appends, 0u);
  auto [file, wal_store] = Materialize(*log, k, SIZE_MAX, kPageSize);

  // First open replays and finalizes the log.  Copy the recovered main
  // file out (after a flush) so a second open can run against it — the
  // table owns and destroys the original backends.
  auto file2 = MakeMemPageFile(kPageSize);
  uint64_t pairs_first = 0;
  {
    PageFile* file_raw = file.get();
    auto opened =
        HashTable::OpenWithBackends(std::move(file), std::move(wal_store), ReopenOptions());
    ASSERT_OK(opened.status());
    pairs_first = opened.value()->size();
    ASSERT_OK(opened.value()->CheckIntegrity());
    EXPECT_GT(opened.value()->recovery().batches_applied, 0u);
    ASSERT_OK(opened.value()->Sync());
    std::vector<uint8_t> page(kPageSize);
    for (uint64_t p = 0; p < file_raw->PageCount(); ++p) {
      ASSERT_OK(file_raw->ReadPage(p, std::span<uint8_t>(page)));
      ASSERT_OK(file2->WritePage(p, page));
    }
  }
  auto opened2 = HashTable::OpenWithBackends(std::move(file2), wal::MakeMemWalStorage(),
                                             ReopenOptions());
  ASSERT_OK(opened2.status());
  EXPECT_EQ(opened2.value()->size(), pairs_first);
  EXPECT_OK(opened2.value()->CheckIntegrity());
}

}  // namespace
}  // namespace hashkit
