// Property test for the buffer pool: under random interleavings of
// get/create/pin/dirty/link/discard/flush, every page read must return
// exactly what was last written through the pool, and the frame count
// must respect the budget whenever nothing is pinned.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

constexpr size_t kPage = 128;
constexpr uint64_t kPageSpace = 200;  // distinct page numbers in play

struct PoolParams {
  size_t pool_pages;
  uint64_t seed;
};

class BufferPoolPropertyTest : public ::testing::TestWithParam<PoolParams> {};

TEST_P(BufferPoolPropertyTest, RandomOpsMatchShadowPages) {
  auto file = MakeMemPageFile(kPage);
  BufferPool pool(file.get(), GetParam().pool_pages * kPage);
  Rng rng(GetParam().seed);

  // Shadow model: the logical content of every page (first byte is enough
  // to detect mixups; a counter stamps each write uniquely).
  std::map<uint64_t, uint8_t> shadow;
  uint8_t stamp = 1;
  std::vector<PageRef> pinned;  // long-lived pins

  for (int step = 0; step < 20000; ++step) {
    const uint64_t pageno = rng.Uniform(kPageSpace);
    const uint64_t op = rng.Uniform(20);
    if (op < 8) {
      // Read and verify.
      auto ref = std::move(pool.Get(pageno).value());
      const uint8_t expected = shadow.count(pageno) ? shadow[pageno] : 0;
      ASSERT_EQ(ref.data()[0], expected) << "page " << pageno << " step " << step;
      ASSERT_EQ(ref.data()[kPage - 1], expected) << "page " << pageno;
    } else if (op < 15) {
      // Write through the pool.
      auto ref = std::move(pool.Get(pageno).value());
      std::fill(ref.data(), ref.data() + kPage, stamp);
      ref.MarkDirty();
      shadow[pageno] = stamp;
      ++stamp;
      if (stamp == 0) {
        stamp = 1;
      }
    } else if (op < 16 && pinned.size() < 4) {
      // Take a long-lived pin.
      pinned.push_back(std::move(pool.Get(pageno).value()));
    } else if (op < 17 && !pinned.empty()) {
      // Drop a pin.
      pinned.erase(pinned.begin() + static_cast<long>(rng.Uniform(pinned.size())));
    } else if (op < 18) {
      ASSERT_OK(pool.FlushAll());
    } else if (op < 19) {
      // Chain-link two resident pages (arbitrary but valid linear link).
      const uint64_t other = rng.Uniform(kPageSpace);
      if (other != pageno) {
        auto a = std::move(pool.Get(pageno).value());
        auto b = std::move(pool.Get(other).value());
        pool.LinkOverflow(a, b);
      }
    } else {
      ASSERT_OK(pool.FlushAndInvalidate());
      // Budget respected when only `pinned` remain.
      EXPECT_LE(pool.frames_in_use(),
                std::max(pool.max_frames(), pinned.size() + 2));
    }
  }

  // Final: flush and verify every page straight from the backend.
  pinned.clear();
  ASSERT_OK(pool.FlushAll());
  std::vector<uint8_t> buf(kPage);
  for (const auto& [pageno, expected] : shadow) {
    ASSERT_OK(file->ReadPage(pageno, buf));
    ASSERT_EQ(buf[0], expected) << "page " << pageno;
    ASSERT_EQ(buf[kPage / 2], expected) << "page " << pageno;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoolSizes, BufferPoolPropertyTest,
    ::testing::Values(PoolParams{0, 11}, PoolParams{2, 22}, PoolParams{8, 33},
                      PoolParams{64, 44}, PoolParams{512, 55}),
    [](const ::testing::TestParamInfo<PoolParams>& param_info) {
      return "pool" + std::to_string(param_info.param.pool_pages) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace hashkit
