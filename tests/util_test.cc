// Unit tests for src/util: status, endian codec, math, bitmap, rng, hashes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/util/bitmap.h"
#include "src/util/endian.h"
#include "src/util/hash_funcs.h"
#include "src/util/math.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace hashkit {
namespace {

// ---- Status / Result ----

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesAndPredicates) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Exists().IsExists());
  EXPECT_TRUE(Status::Full().IsFull());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_FALSE(Status::NotFound().ok());
  EXPECT_EQ(Status::IoError("pread failed").ToString(), "IO_ERROR: pread failed");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupported), "UNSUPPORTED");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::NotFound("missing"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

// ---- Endian ----

TEST(EndianTest, RoundTripAllWidths) {
  uint8_t buf[8];
  EncodeU16(buf, 0xbeef);
  EXPECT_EQ(DecodeU16(buf), 0xbeef);
  EXPECT_EQ(buf[0], 0xef);  // little-endian on disk
  EncodeU32(buf, 0xdeadbeef);
  EXPECT_EQ(DecodeU32(buf), 0xdeadbeefu);
  EncodeU64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeU64(buf), 0x0123456789abcdefull);
}

TEST(EndianTest, Boundaries) {
  uint8_t buf[8];
  for (const uint64_t v : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
    EncodeU64(buf, v);
    EXPECT_EQ(DecodeU64(buf), v);
  }
}

// ---- Math ----

TEST(MathTest, PowerOfTwoPredicates) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 40));
}

TEST(MathTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(MathTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

// The paper's BUCKET_TO_PAGE uses spares[ceil(log2(bucket+1)) - 1]; verify
// it matches floor(log2(bucket)) for all bucket >= 1 (our formulation).
TEST(MathTest, PaperLogIdentity) {
  for (uint64_t b = 1; b < 100000; ++b) {
    EXPECT_EQ(CeilLog2(b + 1) - 1, FloorLog2(b)) << b;
  }
}

// ---- Bitmap ----

TEST(BitmapTest, SetTestClear) {
  Bitmap bm;
  EXPECT_FALSE(bm.Test(0));
  bm.Set(0);
  bm.Set(77);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(77));
  EXPECT_FALSE(bm.Test(76));
  bm.Clear(77);
  EXPECT_FALSE(bm.Test(77));
  EXPECT_EQ(bm.CountSet(), 1u);
}

TEST(BitmapTest, OutOfRangeReadsAreFalse) {
  Bitmap bm(8);
  EXPECT_FALSE(bm.Test(100000));
}

TEST(BitmapTest, SerializationRoundTrip) {
  Bitmap bm;
  for (size_t bit : {0u, 1u, 9u, 63u, 64u, 999u}) {
    bm.Set(bit);
  }
  Bitmap copy = Bitmap::FromBytes(bm.ToBytes());
  for (size_t bit = 0; bit < 1005; ++bit) {
    EXPECT_EQ(copy.Test(bit), bm.Test(bit)) << bit;
  }
}

TEST(RawBitmapTest, FirstClearBit) {
  uint8_t buf[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(RawFirstClearBit(buf, 32).has_value());
  RawBitClear(buf, 17);
  const auto bit = RawFirstClearBit(buf, 32);
  ASSERT_TRUE(bit.has_value());
  EXPECT_EQ(*bit, 17u);
  // A clear bit beyond nbits must not be reported.
  uint8_t buf2[2] = {0xff, 0x0f};
  EXPECT_FALSE(RawFirstClearBit(buf2, 12).has_value());
  EXPECT_TRUE(RawFirstClearBit(buf2, 13).has_value());
}

TEST(RawBitmapTest, Popcount) {
  uint8_t buf[3] = {0b1010101, 0, 0b11};
  EXPECT_EQ(RawPopcount(buf, 24), 6u);
  EXPECT_EQ(RawPopcount(buf, 8), 4u);
  EXPECT_EQ(RawPopcount(buf, 3), 2u);
}

// ---- Rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Uniform(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.99) < 100) {
      ++low;
    }
  }
  EXPECT_GT(low, 5000u);  // heavy head
}

TEST(RngTest, StringGenerators) {
  Rng rng(17);
  const std::string ascii = rng.AsciiString(32);
  EXPECT_EQ(ascii.size(), 32u);
  for (char c : ascii) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  EXPECT_EQ(rng.ByteString(100).size(), 100u);
}

// ---- Hash functions ----

class HashFuncTest : public ::testing::TestWithParam<HashFuncId> {};

TEST_P(HashFuncTest, DeterministicAndLengthSensitive) {
  const HashFn fn = GetHashFunc(GetParam());
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn("hello", 5), fn("hello", 5));
  if (GetParam() != HashFuncId::kIdentity4) {  // identity4 ignores bytes past 4
    EXPECT_NE(fn("hello", 5), fn("hello", 4));
  }
}

TEST_P(HashFuncTest, EmptyInputIsValid) {
  const HashFn fn = GetHashFunc(GetParam());
  (void)fn("", 0);  // must not crash; value unconstrained
}

TEST_P(HashFuncTest, ReasonableCollisionRateOnWords) {
  if (GetParam() == HashFuncId::kIdentity4) {
    GTEST_SKIP() << "identity4 is deliberately bad";
  }
  const HashFn fn = GetHashFunc(GetParam());
  std::unordered_set<uint32_t> hashes;
  constexpr int kCount = 20000;
  for (int i = 0; i < kCount; ++i) {
    const std::string key = "word-" + std::to_string(i);
    hashes.insert(fn(key.data(), key.size()));
  }
  // Expected collisions for 20k keys in 2^32 ~ 0.05; allow a generous 20.
  EXPECT_GT(hashes.size(), static_cast<size_t>(kCount - 20));
}

TEST_P(HashFuncTest, BucketDistributionIsBalancedOnWordKeys) {
  if (GetParam() == HashFuncId::kIdentity4) {
    GTEST_SKIP() << "identity4 is deliberately bad";
  }
  const HashFn fn = GetHashFunc(GetParam());
  constexpr uint32_t kBuckets = 64;
  std::unordered_map<uint32_t, size_t> counts;
  constexpr int kCount = 64000;
  Rng rng(GetParam() == HashFuncId::kDefault ? 1 : 2);
  for (int i = 0; i < kCount; ++i) {
    const std::string key = rng.AsciiString(rng.Range(3, 14));
    counts[fn(key.data(), key.size()) % kBuckets]++;
  }
  const double expected = static_cast<double>(kCount) / kBuckets;
  for (uint32_t b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], expected * 0.6) << "bucket " << b;
    EXPECT_LT(counts[b], expected * 1.4) << "bucket " << b;
  }
}

// The paper: "no known hash function performs equally well on all possible
// data."  The historical polynomial hashes show measurable low-bit bias on
// sequential decimal keys; the package's bit-randomizing functions do not.
TEST(HashFuncBiasTest, SequentialKeysSkewHistoricalHashes) {
  constexpr uint32_t kBuckets = 64;
  constexpr int kCount = 64000;
  auto max_over_min = [&](HashFn fn) {
    std::unordered_map<uint32_t, size_t> counts;
    for (int i = 0; i < kCount; ++i) {
      const std::string key = "key" + std::to_string(i);
      counts[fn(key.data(), key.size()) % kBuckets]++;
    }
    size_t lo = kCount;
    size_t hi = 0;
    for (uint32_t b = 0; b < kBuckets; ++b) {
      lo = std::min(lo, counts[b]);
      hi = std::max(hi, counts[b]);
    }
    return lo == 0 ? 1e9 : static_cast<double>(hi) / static_cast<double>(lo);
  };
  EXPECT_LT(max_over_min(&HashDefault), 1.7);
  EXPECT_LT(max_over_min(&HashThompson), 1.7);
  EXPECT_GT(max_over_min(&HashSdbm), 2.0);  // the documented bias
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, HashFuncTest, ::testing::ValuesIn(kAllHashFuncIds),
                         [](const ::testing::TestParamInfo<HashFuncId>& param_info) {
                           return std::string(HashFuncName(param_info.param));
                         });

TEST(HashFuncsTest, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const HashFuncId id : kAllHashFuncIds) {
    EXPECT_TRUE(names.insert(HashFuncName(id)).second);
  }
}

TEST(HashFuncsTest, FunctionsDisagreeWithEachOther) {
  // Different algorithms should produce different values on some input
  // (this is what makes dbm/sdbm databases incompatible).
  const char* const key = "incompatible";
  std::set<uint32_t> values;
  for (const HashFuncId id : kAllHashFuncIds) {
    values.insert(GetHashFunc(id)(key, 12));
  }
  EXPECT_GE(values.size(), 7u);
}

TEST(HashFuncsTest, IdentityIsClustering) {
  // The deliberately bad function maps shared prefixes to one value.
  EXPECT_EQ(HashIdentity4("abcdef", 6), HashIdentity4("abcdzz", 6));
}

}  // namespace
}  // namespace hashkit
