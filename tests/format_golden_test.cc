// On-disk format stability: the header layout and page layout are a
// public contract (files written today must open tomorrow).  These tests
// pin the exact bytes.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/meta.h"
#include "src/btree/bt_page.h"
#include "src/core/page.h"
#include "src/util/endian.h"
#include "src/wal/crc32c.h"
#include "src/wal/log_writer.h"
#include "src/wal/wal_format.h"
#include "src/wal/wal_storage.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

TEST(FormatGolden, HeaderFieldOffsetsArePinned) {
  Meta meta;
  meta.bsize = 512;
  meta.ffactor = 16;
  meta.nkeys = 0x1122334455ull;
  meta.max_bucket = 0xabcd;
  meta.high_mask = 0xffff;
  meta.low_mask = 0x7fff;
  meta.last_freed = 0x0801;
  meta.ovfl_point = 7;
  meta.hash_check = 0xcafef00d;
  meta.hash_id = 2;
  meta.nhdr_pages = 1;
  meta.nelem_hint = 12345;
  meta.spares[0] = 11;
  meta.spares[31] = 22;
  meta.bitmaps[0] = 0x0001;
  meta.bitmaps[31] = 0xffff;

  std::vector<uint8_t> buf(kMetaEncodedSize);
  EncodeMeta(meta, buf);

  // Fixed field positions (little-endian).  Changing any of these breaks
  // every existing database file; the test exists to make that loud.
  EXPECT_EQ(DecodeU32(&buf[0]), kHashMagic);
  EXPECT_EQ(DecodeU32(&buf[4]), kHashVersion);
  EXPECT_EQ(DecodeU32(&buf[8]), 512u);
  EXPECT_EQ(DecodeU32(&buf[12]), 16u);
  EXPECT_EQ(DecodeU64(&buf[16]), 0x1122334455ull);
  EXPECT_EQ(DecodeU32(&buf[24]), 0xabcdu);
  EXPECT_EQ(DecodeU32(&buf[28]), 0xffffu);
  EXPECT_EQ(DecodeU32(&buf[32]), 0x7fffu);
  EXPECT_EQ(DecodeU32(&buf[36]), 0x0801u);
  EXPECT_EQ(DecodeU32(&buf[40]), 0xcafef00du);
  EXPECT_EQ(DecodeU32(&buf[44]), 2u);
  EXPECT_EQ(DecodeU32(&buf[48]), 1u);
  EXPECT_EQ(DecodeU32(&buf[52]), 12345u);
  EXPECT_EQ(DecodeU32(&buf[56]), 7u);
  EXPECT_EQ(DecodeU32(&buf[60]), 11u);                   // spares[0]
  EXPECT_EQ(DecodeU32(&buf[60 + 31 * 4]), 22u);          // spares[31]
  EXPECT_EQ(DecodeU16(&buf[60 + 32 * 4]), 0x0001u);      // bitmaps[0]
  EXPECT_EQ(DecodeU16(&buf[60 + 32 * 4 + 31 * 2]), 0xffffu);
  EXPECT_EQ(kMetaEncodedSize, 60u + 32 * 4 + 32 * 2);
}

TEST(FormatGolden, PageLayoutBytesArePinned) {
  std::vector<uint8_t> buf(64);
  PageView::Init(buf.data(), 64, PageType::kBucket);
  PageView view(buf.data(), 64);
  view.set_ovfl_addr(0x0802);
  view.AddPair("ab", "XYZ");

  // Page header.
  EXPECT_EQ(DecodeU16(&buf[0]), 1u);       // nentries
  EXPECT_EQ(DecodeU16(&buf[2]), 64u - 5);  // data_begin: 2-byte key + 3-byte data
  EXPECT_EQ(DecodeU16(&buf[4]), 0x0802u);  // ovfl_addr
  EXPECT_EQ(DecodeU16(&buf[6]), 1u);       // type = kBucket
  // Index slot 0.
  EXPECT_EQ(DecodeU16(&buf[8]), 64u - 2);   // key_off
  EXPECT_EQ(DecodeU16(&buf[10]), 64u - 5);  // data_off
  // Pair bytes at the end of the page: data then key.
  EXPECT_EQ(buf[59], 'X');
  EXPECT_EQ(buf[60], 'Y');
  EXPECT_EQ(buf[61], 'Z');
  EXPECT_EQ(buf[62], 'a');
  EXPECT_EQ(buf[63], 'b');
}

TEST(FormatGolden, BigStubBytesArePinned) {
  std::vector<uint8_t> buf(128);
  PageView::Init(buf.data(), 128, PageType::kBucket);
  PageView view(buf.data(), 128);
  view.AddBigStub(/*first_oaddr=*/0x1801, /*hash=*/0x01020304, /*key_len=*/100,
                  /*data_len=*/200, "pre");

  const uint16_t raw_key_off = DecodeU16(&buf[8]);
  EXPECT_EQ(raw_key_off & kBigEntryFlag, kBigEntryFlag);
  EXPECT_EQ(raw_key_off & ~kBigEntryFlag, 128u);  // empty key region at page end
  const uint16_t data_off = DecodeU16(&buf[10]);
  EXPECT_EQ(data_off, 128u - (kBigStubFixedSize + 3));
  const uint8_t* stub = &buf[data_off];
  EXPECT_EQ(DecodeU16(stub), 0x1801u);
  EXPECT_EQ(DecodeU32(stub + 2), 0x01020304u);
  EXPECT_EQ(DecodeU32(stub + 6), 100u);
  EXPECT_EQ(DecodeU32(stub + 10), 200u);
  EXPECT_EQ(stub[14], 'p');
  EXPECT_EQ(stub[15], 'r');
  EXPECT_EQ(stub[16], 'e');
}

// Format v2 adds a tag array between the header and the index; everything
// else is unchanged.  bsize 64 reserves 8 tag bytes, so the index starts
// at +16.  Pinned alongside the v1 bytes above — both layouts are disk
// contracts now.
TEST(FormatGolden, PageLayoutV2BytesArePinned) {
  ASSERT_EQ(PageTagCapacity(64, kPageFormatV2), 8u);
  ASSERT_EQ(PageTagCapacity(256, kPageFormatV2), 32u);
  ASSERT_EQ(PageTagCapacity(32768, kPageFormatV2), 4096u);

  std::vector<uint8_t> buf(64);
  PageView::Init(buf.data(), 64, PageType::kBucket);
  PageView view(buf.data(), 64, kPageFormatV2);
  view.set_ovfl_addr(0x0802);
  view.AddPair("ab", "XYZ", /*tag=*/0x5A);

  // Page header: unchanged from v1.
  EXPECT_EQ(DecodeU16(&buf[0]), 1u);       // nentries
  EXPECT_EQ(DecodeU16(&buf[2]), 64u - 5);  // data_begin
  EXPECT_EQ(DecodeU16(&buf[4]), 0x0802u);  // ovfl_addr
  EXPECT_EQ(DecodeU16(&buf[6]), 1u);       // type = kBucket
  // Tag array at +8, one byte per entry slot.
  EXPECT_EQ(buf[8], 0x5Au);  // tag[0]
  EXPECT_EQ(buf[9], 0u);     // unused tag slots stay zero
  // Index slot 0, displaced by the 8 tag bytes.
  EXPECT_EQ(DecodeU16(&buf[16]), 64u - 2);  // key_off
  EXPECT_EQ(DecodeU16(&buf[18]), 64u - 5);  // data_off
  // Pair bytes at the end of the page: data then key, as in v1.
  EXPECT_EQ(buf[59], 'X');
  EXPECT_EQ(buf[60], 'Y');
  EXPECT_EQ(buf[61], 'Z');
  EXPECT_EQ(buf[62], 'a');
  EXPECT_EQ(buf[63], 'b');
}

TEST(FormatGolden, BigStubV2BytesArePinned) {
  std::vector<uint8_t> buf(128);
  PageView::Init(buf.data(), 128, PageType::kBucket);
  PageView view(buf.data(), 128, kPageFormatV2);
  view.AddBigStub(/*first_oaddr=*/0x1801, /*hash=*/0x01020304, /*key_len=*/100,
                  /*data_len=*/200, "pre");

  ASSERT_EQ(PageTagCapacity(128, kPageFormatV2), 16u);
  EXPECT_EQ(buf[8], TagOfHash(0x01020304));  // tag[0] = hash >> 24 = 0x01
  EXPECT_EQ(buf[8], 0x01u);
  // Index slot 0 at +8+16; stub encoding itself is unchanged from v1.
  const uint16_t raw_key_off = DecodeU16(&buf[24]);
  EXPECT_EQ(raw_key_off & kBigEntryFlag, kBigEntryFlag);
  EXPECT_EQ(raw_key_off & ~kBigEntryFlag, 128u);
  const uint16_t data_off = DecodeU16(&buf[26]);
  EXPECT_EQ(data_off, 128u - (kBigStubFixedSize + 3));
  const uint8_t* stub = &buf[data_off];
  EXPECT_EQ(DecodeU16(stub), 0x1801u);
  EXPECT_EQ(DecodeU32(stub + 2), 0x01020304u);
  EXPECT_EQ(DecodeU32(stub + 6), 100u);
  EXPECT_EQ(DecodeU32(stub + 10), 200u);
  EXPECT_EQ(stub[14], 'p');
  EXPECT_EQ(stub[15], 'r');
  EXPECT_EQ(stub[16], 'e');
}

TEST(FormatGolden, BothHeaderVersionsDecode) {
  Meta meta;
  std::vector<uint8_t> buf(kMetaEncodedSize);

  meta.version = kHashVersionV1;
  EncodeMeta(meta, buf);
  ASSERT_OK(DecodeMeta(buf).status());
  EXPECT_EQ(DecodeMeta(buf).value().version, kHashVersionV1);

  meta.version = kHashVersionV2;
  EncodeMeta(meta, buf);
  ASSERT_OK(DecodeMeta(buf).status());
  EXPECT_EQ(DecodeMeta(buf).value().version, kHashVersionV2);

  meta.version = 3;  // future formats stay rejected
  EncodeMeta(meta, buf);
  EXPECT_FALSE(DecodeMeta(buf).ok());
}

TEST(FormatGolden, BtreePageLayoutIsPinned) {
  std::vector<uint8_t> buf(512);
  btree::BtPageView::Init(buf.data(), 512, btree::BtPageType::kLeaf, 0);
  btree::BtPageView view(buf.data(), 512);
  view.set_link(0xaabbccdd);
  bool found = false;
  view.InsertAt(view.LowerBound("kk", &found), "kk", "vvv");

  EXPECT_EQ(DecodeU16(&buf[0]), 1u);            // nentries
  EXPECT_EQ(DecodeU16(&buf[2]), 512u - 5);      // data_begin
  EXPECT_EQ(DecodeU16(&buf[4]), 0u);            // level
  EXPECT_EQ(DecodeU16(&buf[6]), 1u);            // type = kLeaf
  EXPECT_EQ(DecodeU32(&buf[8]), 0xaabbccddu);   // link
  // Slot 0: key_off, key_len, val_off, val_len.
  EXPECT_EQ(DecodeU16(&buf[16]), 512u - 5);
  EXPECT_EQ(DecodeU16(&buf[18]), 2u);
  EXPECT_EQ(DecodeU16(&buf[20]), 512u - 3);
  EXPECT_EQ(DecodeU16(&buf[22]), 3u);
  // Heap bytes: key then value at the page tail.
  EXPECT_EQ(buf[507], 'k');
  EXPECT_EQ(buf[508], 'k');
  EXPECT_EQ(buf[509], 'v');
  EXPECT_EQ(buf[511], 'v');
}

TEST(FormatGolden, BtreeBigValueStubIsPinned) {
  std::vector<uint8_t> buf(512);
  btree::BtPageView::Init(buf.data(), 512, btree::BtPageType::kLeaf, 0);
  btree::BtPageView view(buf.data(), 512);
  view.InsertBigStubAt(0, "bk", 0x01020304, 0x0a0b0c0d);
  const uint16_t raw_val_len = DecodeU16(&buf[22]);
  EXPECT_EQ(raw_val_len & btree::kBigValueFlag, btree::kBigValueFlag);
  EXPECT_EQ(raw_val_len & ~btree::kBigValueFlag, btree::kBigValueStubSize);
  const uint16_t val_off = DecodeU16(&buf[20]);
  EXPECT_EQ(DecodeU32(&buf[val_off]), 0x01020304u);      // chain page
  EXPECT_EQ(DecodeU32(&buf[val_off + 4]), 0x0a0b0c0du);  // total length
}

// The write-ahead log's framing is a disk contract too: a log written
// before a crash must parse after an upgrade.  Pin every byte offset of a
// minimal log (header, one page image, one commit) for page_size = 64.
TEST(FormatGolden, WalFramingBytesArePinned) {
  constexpr uint32_t kPage = 64;
  auto storage = wal::MakeMemWalStorage();
  wal::WalStorage* raw = storage.get();
  std::vector<uint8_t> log;
  {
    wal::LogWriter writer(std::move(storage), kPage, /*sync_every=*/1);
    ASSERT_OK(writer.Init());
    std::vector<uint8_t> image(kPage);
    for (uint32_t i = 0; i < kPage; ++i) {
      image[i] = static_cast<uint8_t>(i);
    }
    writer.AppendPageImage(0x0102030405060708ull, image);
    ASSERT_OK(writer.Commit(nullptr));
    ASSERT_OK(raw->ReadAll(&log));
  }

  // 16-byte file header: magic "HKWL", version, page size, CRC32C of the
  // first 12 bytes.
  ASSERT_GE(log.size(), wal::kWalHeaderSize);
  EXPECT_EQ(log[0], 'H');
  EXPECT_EQ(log[1], 'K');
  EXPECT_EQ(log[2], 'W');
  EXPECT_EQ(log[3], 'L');
  EXPECT_EQ(DecodeU32(&log[0]), wal::kWalMagic);
  EXPECT_EQ(DecodeU32(&log[4]), wal::kWalVersion);
  EXPECT_EQ(DecodeU32(&log[8]), kPage);
  EXPECT_EQ(DecodeU32(&log[12]), wal::Crc32c(log.data(), 12));
  EXPECT_EQ(wal::kWalHeaderSize, 16u);

  // Record framing: length u32 | crc u32 | body, where body is a type byte
  // followed by the payload and the CRC covers the body.
  // Page-image record: type 1, pageno u64, then the raw page bytes.
  size_t at = wal::kWalHeaderSize;
  const uint32_t image_len = DecodeU32(&log[at]);
  EXPECT_EQ(image_len, 1u + 8u + kPage);
  EXPECT_EQ(DecodeU32(&log[at + 4]), wal::Crc32c(&log[at + 8], image_len));
  EXPECT_EQ(log[at + 8], 1u);  // kPageImage
  EXPECT_EQ(DecodeU64(&log[at + 9]), 0x0102030405060708ull);
  EXPECT_EQ(log[at + 17], 0u);           // image[0]
  EXPECT_EQ(log[at + 17 + 63], 63u);     // image[63]
  EXPECT_EQ(wal::kWalRecordHeaderSize, 8u);

  // Commit record: type 2, sequence number u64 (first commit is 1).
  at += wal::kWalRecordHeaderSize + image_len;
  const uint32_t commit_len = DecodeU32(&log[at]);
  EXPECT_EQ(commit_len, 1u + 8u);
  EXPECT_EQ(DecodeU32(&log[at + 4]), wal::Crc32c(&log[at + 8], commit_len));
  EXPECT_EQ(log[at + 8], 2u);  // kCommit
  EXPECT_EQ(DecodeU64(&log[at + 9]), 1u);
  EXPECT_EQ(at + wal::kWalRecordHeaderSize + commit_len, log.size());
}

TEST(FormatGolden, Crc32cIsCastagnoli) {
  // Distinguishes CRC-32C from plain CRC-32: the standard check value.
  EXPECT_EQ(wal::Crc32c("123456789", 9), 0xE3069283u);
}

TEST(FormatGolden, MagicSpellsHsk1) {
  // "HSK1" in ASCII, stored little-endian.
  uint8_t bytes[4];
  EncodeU32(bytes, kHashMagic);
  EXPECT_EQ(bytes[3], 'H');
  EXPECT_EQ(bytes[2], 'S');
  EXPECT_EQ(bytes[1], 'K');
  EXPECT_EQ(bytes[0], '1');
}

}  // namespace
}  // namespace hashkit
