// In-process cluster tests: several ClusterNode+Server pairs on loopback
// exercising the LH* protocol end to end — key spread, stale-image
// correction via MOVED, bucket migration under concurrent client load
// with zero lost or duplicated keys, and crash-resume of a migration from
// its persisted marker.  Label `cluster` (also run under TSan by CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/cluster_client.h"
#include "src/cluster/cluster_map.h"
#include "src/cluster/migration.h"
#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "tests/test_util.h"

namespace hashkit {
namespace cluster {
namespace {

// One in-process cluster member: store + node + server, on a loopback port.
struct TestNode {
  std::unique_ptr<kv::KvStore> store;
  std::unique_ptr<ClusterNode> cnode;
  std::unique_ptr<net::Server> server;
  uint16_t port = 0;

  std::string Address() const { return "127.0.0.1:" + std::to_string(port); }

  void Shutdown() {
    if (cnode != nullptr) {
      cnode->Stop();
    }
    if (server != nullptr) {
      server->Stop();
    }
  }
};

// Builds (but does not cluster-Start) one node.  `port` 0 asks the kernel;
// pass the old port to simulate a restart on a stable address.
TestNode MakeNode(uint32_t id, kv::StoreKind kind, const std::string& store_path,
                  const std::string& map_path, uint16_t port = 0,
                  uint32_t migrate_batch = 64, uint32_t abort_after_batches = 0,
                  uint32_t gossip_interval_ms = 0) {
  TestNode node;
  kv::StoreOptions store_options;
  store_options.path = store_path;
  // Restart tests reopen the same files; TempPath cleared them up front.
  store_options.truncate = false;
  if (kind == kv::StoreKind::kHashDisk) {
    store_options.durability = Durability::kSync;  // survive the simulated crash
  }
  auto opened = kv::OpenStore(kind, store_options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  node.store = kv::MakeSynchronized(std::move(opened).value());

  ClusterNodeOptions cluster_options;
  cluster_options.node_id = id;
  cluster_options.map_path = map_path;
  cluster_options.migrate_batch = migrate_batch;
  cluster_options.testonly_abort_after_batches = abort_after_batches;
  cluster_options.gossip_interval_ms = gossip_interval_ms;
  node.cnode = std::make_unique<ClusterNode>(node.store.get(), cluster_options);

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.workers = 2;
  server_options.cluster = node.cnode.get();
  node.server = std::make_unique<net::Server>(node.store.get(), server_options);
  EXPECT_OK(node.server->Start());
  node.port = node.server->port();
  return node;
}

std::vector<NodeInfo> PeersOf(const std::vector<TestNode*>& nodes) {
  std::vector<NodeInfo> peers;
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeInfo info;
    info.id = nodes[i]->cnode->node_id();
    info.host = "127.0.0.1";
    info.port = nodes[i]->port;
    peers.push_back(std::move(info));
  }
  return peers;
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 15'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// Map version as each node's STATS text reports it (the operator surface,
// not the in-process snapshot).
uint32_t StatsMapVersion(uint16_t port) {
  auto connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    return 0;
  }
  std::string text;
  if (!(*connected)->Stats(&text).ok()) {
    return 0;
  }
  const size_t pos = text.find("cluster.map_version=");
  if (pos == std::string::npos) {
    return 0;
  }
  return static_cast<uint32_t>(std::atol(text.c_str() + pos + 20));
}

uint64_t TotalPairs(const std::vector<TestNode*>& nodes) {
  uint64_t total = 0;
  for (const TestNode* n : nodes) {
    total += n->store->Size();
  }
  return total;
}

TEST(ClusterTest, ThreeNodesSpreadKeysAndServeThemAll) {
  TestNode a = MakeNode(0, kv::StoreKind::kHashMemory, "", "");
  TestNode b = MakeNode(1, kv::StoreKind::kHashMemory, "", "");
  TestNode c = MakeNode(2, kv::StoreKind::kHashMemory, "", "");
  const std::vector<TestNode*> nodes = {&a, &b, &c};
  const std::vector<NodeInfo> peers = PeersOf(nodes);
  for (TestNode* n : nodes) {
    ASSERT_OK(n->cnode->Start(peers));
  }

  auto connected = ClusterClient::Connect({a.Address()});
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();
  EXPECT_EQ(client->map().version, 1u);

  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(client->Put("key" + std::to_string(i), "value" + std::to_string(i)));
  }
  for (int i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_OK(client->Get("key" + std::to_string(i), &value));
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
  // The linear-hash spread puts real load on every node, and no key lands
  // twice: the per-node stores sum exactly to the key count.
  for (const TestNode* n : nodes) {
    EXPECT_GT(n->store->Size(), 0u) << "node " << n->cnode->node_id();
  }
  EXPECT_EQ(TotalPairs(nodes), static_cast<uint64_t>(kKeys));

  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(client->Delete("key" + std::to_string(i)));
  }
  for (int i = 0; i < 50; ++i) {
    std::string value;
    EXPECT_TRUE(client->Get("key" + std::to_string(i), &value).IsNotFound());
  }
  EXPECT_EQ(TotalPairs(nodes), static_cast<uint64_t>(kKeys - 50));

  for (TestNode* n : nodes) {
    n->Shutdown();
  }
}

TEST(ClusterTest, StaleClientImageConvergesViaMoved) {
  TestNode a = MakeNode(0, kv::StoreKind::kHashMemory, "", "");
  TestNode b = MakeNode(1, kv::StoreKind::kHashMemory, "", "");
  TestNode c = MakeNode(2, kv::StoreKind::kHashMemory, "", "");
  const std::vector<TestNode*> nodes = {&a, &b, &c};
  const std::vector<NodeInfo> peers = PeersOf(nodes);
  for (TestNode* n : nodes) {
    ASSERT_OK(n->cnode->Start(peers));
  }

  auto connected = ClusterClient::Connect({a.Address()});
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();  // holds the v1 image throughout

  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(client->Put("key" + std::to_string(i), "value" + std::to_string(i)));
  }

  // Move the bucket that holds "key0" to a different node; the client's
  // image still names the old owner.
  const ClusterMap before = a.cnode->MapSnapshot();
  const uint32_t bucket = before.BucketOfKey("key0");
  const uint32_t old_owner = before.OwnerOf(bucket);
  const uint32_t new_owner = (old_owner + 1) % 3;
  TestNode* coordinator = nodes[old_owner];
  ASSERT_OK(coordinator->cnode->ScheduleMove(bucket, new_owner));
  ASSERT_TRUE(WaitUntil([&] {
    return !coordinator->cnode->MigrationActive() &&
           nodes[new_owner]->cnode->MapSnapshot().version == 2;
  }));

  // Every key still reads back; the ones in the moved bucket cost a MOVED
  // correction, after which the client's image is current.
  for (int i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_OK(client->Get("key" + std::to_string(i), &value)) << "key" << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
  EXPECT_GE(client->stats().moved_corrections, 1u);
  EXPECT_EQ(client->map().version, 2u);
  EXPECT_GE(coordinator->cnode->counters().moved_replies.load(), 1u);
  // Zero lost, zero duplicated.
  EXPECT_EQ(TotalPairs(nodes), static_cast<uint64_t>(kKeys));
  EXPECT_GE(nodes[new_owner]->cnode->counters().keys_migrated_in.load(), 1u);

  for (TestNode* n : nodes) {
    n->Shutdown();
  }
}

TEST(ClusterTest, GossipConvergesRejoinedNodeWithoutClientTraffic) {
  // Anti-entropy gossip: a node that was away during a migration must learn
  // the new map from its peers' idle pushes alone — no MOVED bounce, no
  // client request ever touching it.
  constexpr uint32_t kGossipMs = 100;
  TestNode a = MakeNode(0, kv::StoreKind::kHashMemory, "", "", 0, 64, 0, kGossipMs);
  TestNode b = MakeNode(1, kv::StoreKind::kHashMemory, "", "", 0, 64, 0, kGossipMs);
  TestNode c = MakeNode(2, kv::StoreKind::kHashMemory, "", "", 0, 64, 0, kGossipMs);
  const std::vector<TestNode*> nodes = {&a, &b, &c};
  const std::vector<NodeInfo> peers = PeersOf(nodes);
  for (TestNode* n : nodes) {
    ASSERT_OK(n->cnode->Start(peers));
  }

  {
    auto connected = ClusterClient::Connect({a.Address()});
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    for (int i = 0; i < 60; ++i) {
      ASSERT_OK((*connected)->Put("key" + std::to_string(i), "value" + std::to_string(i)));
    }
  }

  // Partition: c drops off the cluster entirely.
  const uint16_t port_c = c.port;
  c.Shutdown();

  // While c is away, move a bucket between the surviving nodes.  The
  // migration's map push to c fails, so the cluster reaches version 2
  // with c none the wiser.
  const ClusterMap before = a.cnode->MapSnapshot();
  uint32_t bucket = UINT32_MAX;
  for (uint32_t candidate = 0; candidate < before.bucket_count(); ++candidate) {
    if (before.OwnerOf(candidate) == 0) {
      bucket = candidate;
      break;
    }
  }
  ASSERT_NE(bucket, UINT32_MAX);
  ASSERT_OK(a.cnode->ScheduleMove(bucket, 1));
  ASSERT_TRUE(WaitUntil([&] {
    return !a.cnode->MigrationActive() && b.cnode->MapSnapshot().version == 2;
  }));

  // Rejoin: c restarts on its old address with no persisted map, so it
  // re-derives the version-1 bootstrap image — two behind reality.
  c = MakeNode(2, kv::StoreKind::kHashMemory, "", "", port_c, 64, 0, kGossipMs);
  ASSERT_OK(c.cnode->Start(peers));
  ASSERT_EQ(c.cnode->MapSnapshot().version, 1u);

  // No client traffic is sent anywhere from here on: the peers' idle
  // gossip ticks alone must deliver the newer map to the rejoined node.
  EXPECT_TRUE(WaitUntil([&] { return c.cnode->MapSnapshot().version >= 2; }));
  EXPECT_EQ(c.cnode->MapSnapshot().OwnerOf(bucket), 1u);
  EXPECT_GE(c.cnode->counters().map_pushes_in.load(), 1u);
  EXPECT_GE(a.cnode->counters().map_pushes_out.load() +
                b.cnode->counters().map_pushes_out.load(),
            1u);

  for (TestNode* n : nodes) {
    n->Shutdown();
  }
}

TEST(ClusterTest, MigrationUnderConcurrentLoadLosesNothing) {
  TestNode a = MakeNode(0, kv::StoreKind::kHashMemory, "", "");
  TestNode b = MakeNode(1, kv::StoreKind::kHashMemory, "", "");
  TestNode c = MakeNode(2, kv::StoreKind::kHashMemory, "", "");
  const std::vector<TestNode*> nodes = {&a, &b, &c};
  const std::vector<NodeInfo> peers = PeersOf(nodes);
  for (TestNode* n : nodes) {
    ASSERT_OK(n->cnode->Start(peers));
  }
  const std::string seed = a.Address();

  // Preload, so the migrating bucket has real payload.
  constexpr int kKeys = 600;
  {
    auto connected = ClusterClient::Connect({seed});
    ASSERT_TRUE(connected.ok());
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_OK((*connected)->Put("k" + std::to_string(i), "v0-" + std::to_string(i)));
    }
  }

  // Writers churn their own disjoint stripes (puts and deletes) while the
  // migration runs; each records the exact final state it left behind.
  constexpr int kWriters = 3;
  std::atomic<bool> stop{false};
  std::vector<std::map<std::string, std::optional<std::string>>> finals(kWriters);
  std::vector<std::thread> writers;
  std::atomic<int> writer_errors{0};
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      auto connected = ClusterClient::Connect({seed});
      if (!connected.ok()) {
        ++writer_errors;
        return;
      }
      auto client = std::move(connected).value();
      int round = 0;
      do {
        ++round;
        for (int i = t; i < kKeys; i += kWriters) {
          const std::string key = "k" + std::to_string(i);
          if (i % 7 == round % 7) {
            const Status st = client->Delete(key);
            if (!st.ok() && !st.IsNotFound()) {
              ++writer_errors;
              return;
            }
            finals[t][key] = std::nullopt;
          } else {
            const std::string value = "v" + std::to_string(round) + "-" + std::to_string(i);
            if (!client->Put(key, value).ok()) {
              ++writer_errors;
              return;
            }
            finals[t][key] = value;
          }
        }
      } while (!stop.load());
    });
  }

  // Kick off a move of the bucket holding "k0" plus a split, mid-churn.
  const ClusterMap before = a.cnode->MapSnapshot();
  const uint32_t bucket = before.BucketOfKey("k0");
  const uint32_t old_owner = before.OwnerOf(bucket);
  const uint32_t new_owner = (old_owner + 1) % 3;
  ASSERT_OK(nodes[old_owner]->cnode->ScheduleMove(bucket, new_owner));
  ASSERT_TRUE(WaitUntil([&] { return !nodes[old_owner]->cnode->MigrationActive(); }));

  const uint32_t splitter = nodes[old_owner]->cnode->MapSnapshot().OwnerOf(
      nodes[old_owner]->cnode->MapSnapshot().next);
  ASSERT_OK(nodes[splitter]->cnode->ScheduleSplit());
  ASSERT_TRUE(WaitUntil([&] { return !nodes[splitter]->cnode->MigrationActive(); }));

  stop.store(true);
  for (std::thread& w : writers) {
    w.join();
  }
  ASSERT_EQ(writer_errors.load(), 0);

  // Let the final map reach every node (push is best-effort; MOVED would
  // cover a miss, but STATS must agree for the acceptance check).
  const uint32_t want_version = nodes[splitter]->cnode->MapSnapshot().version;
  ASSERT_TRUE(WaitUntil([&] {
    for (const TestNode* n : nodes) {
      if (StatsMapVersion(n->port) != want_version) {
        return false;
      }
    }
    return true;
  }));

  // At least one bucket actually moved between nodes under load.
  uint64_t migrations = 0;
  for (const TestNode* n : nodes) {
    migrations += n->cnode->counters().migrations_in.load();
  }
  EXPECT_GE(migrations, 1u);

  // Merge the writers' records into the expected final keyspace.
  std::map<std::string, std::optional<std::string>> expect;
  for (int i = 0; i < kKeys; ++i) {
    expect["k" + std::to_string(i)] = "v0-" + std::to_string(i);
  }
  for (const auto& m : finals) {
    for (const auto& [key, value] : m) {
      expect[key] = value;
    }
  }
  uint64_t live = 0;
  auto connected = ClusterClient::Connect({seed});
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).value();
  for (const auto& [key, value] : expect) {
    std::string got;
    const Status st = client->Get(key, &got);
    if (value.has_value()) {
      ASSERT_OK(st) << key;
      EXPECT_EQ(got, *value) << key;
      ++live;
    } else {
      EXPECT_TRUE(st.IsNotFound()) << key << " -> " << st.ToString();
    }
  }
  // No key exists twice anywhere: per-node stores sum to the live count.
  EXPECT_EQ(TotalPairs(nodes), live);

  for (TestNode* n : nodes) {
    n->Shutdown();
  }
}

TEST(ClusterTest, RestartMidMigrationResumesFromPersistedMarker) {
  const std::string path_a = TempPath("cluster_node_a");
  const std::string path_b = TempPath("cluster_node_b");
  std::remove((path_a + ".cmap").c_str());
  std::remove((path_b + ".cmap").c_str());

  // Node 0 aborts after streaming 2 batches of 4 — a crash mid-stream with
  // both sides' markers already durable.
  TestNode a = MakeNode(0, kv::StoreKind::kHashDisk, path_a, path_a + ".cmap",
                        /*port=*/0, /*migrate_batch=*/4, /*abort_after_batches=*/2);
  TestNode b = MakeNode(1, kv::StoreKind::kHashDisk, path_b, path_b + ".cmap");
  std::vector<TestNode*> nodes = {&a, &b};
  const std::vector<NodeInfo> peers = PeersOf(nodes);
  for (TestNode* n : nodes) {
    ASSERT_OK(n->cnode->Start(peers));
  }
  const uint16_t port_a = a.port;

  constexpr int kKeys = 200;
  {
    auto connected = ClusterClient::Connect({a.Address()});
    ASSERT_TRUE(connected.ok());
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_OK((*connected)->Put("k" + std::to_string(i), "v" + std::to_string(i)));
    }
  }

  // Bucket 0 is node 0's (two-node bootstrap: one bucket each).  Move it,
  // and let the failpoint kill the stream partway.
  ASSERT_EQ(a.cnode->MapSnapshot().OwnerOf(0), 0u);
  ASSERT_OK(a.cnode->ScheduleMove(0, 1));
  ASSERT_TRUE(WaitUntil([&] { return a.cnode->AbortedAtFailpoint(); }));
  // The target is armed and waiting: inbound marker held, map already v2.
  EXPECT_TRUE(b.cnode->MigrationActive());
  EXPECT_EQ(b.cnode->MapSnapshot().version, 2u);

  // "Crash" node 0 and bring it back on the same port with the same files.
  a.Shutdown();
  a.cnode.reset();
  a.server.reset();
  a.store.reset();
  a = MakeNode(0, kv::StoreKind::kHashDisk, path_a, path_a + ".cmap", port_a);
  nodes = {&a, &b};
  ASSERT_OK(a.cnode->Start(peers));

  // Start loads the outbound marker and re-drives the transfer to the end.
  ASSERT_TRUE(WaitUntil([&] {
    return !a.cnode->MigrationActive() && !b.cnode->MigrationActive();
  }));
  EXPECT_EQ(a.cnode->MapSnapshot().version, 2u);
  EXPECT_EQ(a.cnode->MapSnapshot().OwnerOf(0), 1u);
  EXPECT_EQ(b.cnode->counters().migrations_in.load(), 1u);

  // Zero lost, zero duplicated: every key reads back exactly once.
  auto connected = ClusterClient::Connect({b.Address()});
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).value();
  for (int i = 0; i < kKeys; ++i) {
    std::string value;
    ASSERT_OK(client->Get("k" + std::to_string(i), &value)) << "k" << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  EXPECT_EQ(TotalPairs(nodes), static_cast<uint64_t>(kKeys));
  // Node 0 gave bucket 0 away entirely.
  EXPECT_EQ(a.cnode->MapSnapshot().BucketsOwnedBy(0), 0u);

  for (TestNode* n : nodes) {
    n->Shutdown();
  }
}

TEST(ClusterTest, TargetCrashUnderChurnRollsBackNothing) {
  const std::string path_a = TempPath("cluster_tkill_a");
  const std::string path_b = TempPath("cluster_tkill_b");
  std::remove((path_a + ".cmap").c_str());
  std::remove((path_b + ".cmap").c_str());

  // The source aborts after 2 batches of 4, freezing the stream with the
  // target's inbound marker durable and most of the bucket still unsent.
  TestNode a = MakeNode(0, kv::StoreKind::kHashDisk, path_a, path_a + ".cmap",
                        /*port=*/0, /*migrate_batch=*/4, /*abort_after_batches=*/2);
  TestNode b = MakeNode(1, kv::StoreKind::kHashDisk, path_b, path_b + ".cmap");
  std::vector<TestNode*> nodes = {&a, &b};
  const std::vector<NodeInfo> peers = PeersOf(nodes);
  for (TestNode* n : nodes) {
    ASSERT_OK(n->cnode->Start(peers));
  }
  const uint16_t port_a = a.port;
  const uint16_t port_b = b.port;

  constexpr int kKeys = 200;
  {
    auto connected = ClusterClient::Connect({a.Address()});
    ASSERT_TRUE(connected.ok());
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_OK((*connected)->Put("k" + std::to_string(i), "v" + std::to_string(i)));
    }
  }
  // The keys that live in the migrating bucket (two-node bootstrap: bucket
  // 0 is node 0's).
  const ClusterMap initial = a.cnode->MapSnapshot();
  std::vector<std::string> bucket0_keys;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (initial.BucketOfKey(key) == 0) {
      bucket0_keys.push_back(key);
    }
  }
  ASSERT_GE(bucket0_keys.size(), 12u);

  ASSERT_OK(a.cnode->ScheduleMove(0, 1));
  ASSERT_TRUE(WaitUntil([&] { return a.cnode->AbortedAtFailpoint(); }));
  ASSERT_TRUE(b.cnode->MigrationActive());

  // Post-cutover churn lands on the target (the v2 owner) while the stream
  // is frozen: overwrite some keys, delete a couple.  Each write makes the
  // target's dirty-key record durable before it is acknowledged.
  {
    auto connected = net::Client::Connect("127.0.0.1", port_b);
    ASSERT_TRUE(connected.ok());
    auto& client = *connected.value();
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_OK(client.Put(bucket0_keys[i], "churn-" + bucket0_keys[i]));
    }
    // NotFound is fine if the copy stream has not delivered the key yet —
    // the dirty-key record is written (durably) either way, which is what
    // keeps the resumed stream from resurrecting these two.
    for (size_t i = 8; i < 10; ++i) {
      const Status st = client.Delete(bucket0_keys[i]);
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    }
  }

  // Kill the TARGET, then bring both sides back on their old ports.  The
  // resumed stream re-sends the whole bucket — including stale copies of
  // every churned key — and the reloaded dirty set must drop them all.
  b.Shutdown();
  b.cnode.reset();
  b.server.reset();
  b.store.reset();
  b = MakeNode(1, kv::StoreKind::kHashDisk, path_b, path_b + ".cmap", port_b);
  ASSERT_OK(b.cnode->Start(peers));
  ASSERT_TRUE(b.cnode->MigrationActive());  // inbound marker survived

  a.Shutdown();
  a.cnode.reset();
  a.server.reset();
  a.store.reset();
  a = MakeNode(0, kv::StoreKind::kHashDisk, path_a, path_a + ".cmap", port_a);
  nodes = {&a, &b};
  ASSERT_OK(a.cnode->Start(peers));

  ASSERT_TRUE(WaitUntil([&] {
    return !a.cnode->MigrationActive() && !b.cnode->MigrationActive();
  }));
  EXPECT_EQ(b.cnode->counters().migrations_in.load(), 1u);
  // The re-driven stream really did try to resurrect churned keys.
  EXPECT_GE(b.cnode->counters().migrate_data_skipped.load(), 1u);

  // Zero rolled-back keys: every churned write survives the resumed copy.
  auto connected = ClusterClient::Connect({b.Address()});
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).value();
  for (size_t i = 0; i < 8; ++i) {
    std::string value;
    ASSERT_OK(client->Get(bucket0_keys[i], &value)) << bucket0_keys[i];
    EXPECT_EQ(value, "churn-" + bucket0_keys[i]) << bucket0_keys[i];
  }
  for (size_t i = 8; i < 10; ++i) {
    std::string value;
    EXPECT_TRUE(client->Get(bucket0_keys[i], &value).IsNotFound()) << bucket0_keys[i];
  }
  // Everything else is intact, exactly once.
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    bool churned = false;
    for (size_t j = 0; j < 10; ++j) {
      churned = churned || key == bucket0_keys[j];
    }
    if (churned) {
      continue;
    }
    std::string value;
    ASSERT_OK(client->Get(key, &value)) << key;
    EXPECT_EQ(value, "v" + std::to_string(i)) << key;
  }
  EXPECT_EQ(TotalPairs(nodes), static_cast<uint64_t>(kKeys - 2));

  for (TestNode* n : nodes) {
    n->Shutdown();
  }
}

}  // namespace
}  // namespace cluster
}  // namespace hashkit
