// Tests for the table-contraction extension (reverse linear hashing) —
// our answer to the paper's footnote: "The file does not contract when
// keys are deleted, so the number of buckets is actually equal to the
// maximum number of keys ever present in the table divided by the fill
// factor."

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/core/hash_table.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

HashOptions ContractingOptions() {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  opts.auto_contract = true;
  return opts;
}

TEST(ContractionTest, ManualContractMergesLastBucket) {
  HashOptions opts = ContractingOptions();
  opts.auto_contract = false;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table->Put("m" + std::to_string(i), std::to_string(i)));
  }
  const uint32_t buckets_before = table->bucket_count();
  ASSERT_GT(buckets_before, 2u);
  ASSERT_OK(table->Contract());
  EXPECT_EQ(table->bucket_count(), buckets_before - 1);
  ASSERT_OK(table->CheckIntegrity());
  // Every key still reachable.
  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table->Get("m" + std::to_string(i), &value)) << i;
    ASSERT_EQ(value, std::to_string(i));
  }
}

TEST(ContractionTest, ContractOnSingleBucketIsNotFound) {
  HashOptions opts = ContractingOptions();
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  ASSERT_OK(table->Put("only", "one"));
  EXPECT_TRUE(table->Contract().IsNotFound());
}

TEST(ContractionTest, ContractToSingleBucketKeepsAllKeys) {
  HashOptions opts = ContractingOptions();
  opts.auto_contract = false;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 120; ++i) {
    const std::string key = "c" + std::to_string(i);
    ASSERT_OK(table->Put(key, std::to_string(i)));
    model[key] = std::to_string(i);
  }
  // Contract all the way down, validating at every step.
  while (table->bucket_count() > 1) {
    ASSERT_OK(table->Contract());
    ASSERT_OK(table->CheckIntegrity()) << "at " << table->bucket_count() << " buckets";
  }
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(table->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
  EXPECT_EQ(table->size(), model.size());
}

TEST(ContractionTest, AutoContractShrinksAfterMassDeletes) {
  auto table = std::move(HashTable::OpenInMemory(ContractingOptions()).value());
  for (int i = 0; i < 4000; ++i) {
    ASSERT_OK(table->Put("a" + std::to_string(i), "v"));
  }
  const uint32_t peak = table->bucket_count();
  for (int i = 0; i < 3900; ++i) {
    ASSERT_OK(table->Delete("a" + std::to_string(i)));
  }
  // The footnote's complaint no longer holds: buckets track the live
  // population, not the high-water mark.
  EXPECT_LT(table->bucket_count(), peak / 4);
  EXPECT_GT(table->stats().contractions, 100u);
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (int i = 3900; i < 4000; ++i) {
    ASSERT_OK(table->Get("a" + std::to_string(i), &value)) << i;
  }
}

TEST(ContractionTest, WithoutAutoContractBucketsStayAtHighWater) {
  HashOptions opts = ContractingOptions();
  opts.auto_contract = false;  // the original package's behaviour
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (int i = 0; i < 4000; ++i) {
    ASSERT_OK(table->Put("b" + std::to_string(i), "v"));
  }
  const uint32_t peak = table->bucket_count();
  for (int i = 0; i < 4000; ++i) {
    ASSERT_OK(table->Delete("b" + std::to_string(i)));
  }
  EXPECT_EQ(table->bucket_count(), peak);  // the paper's footnote, verified
}

TEST(ContractionTest, GrowShrinkGrowCyclesStayConsistent) {
  auto table = std::move(HashTable::OpenInMemory(ContractingOptions()).value());
  Rng rng(99);
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 1500; ++i) {
      const std::string key = "gsg" + std::to_string(i);
      const std::string value = rng.ByteString(rng.Range(0, 60));
      ASSERT_OK(table->Put(key, value));
      model[key] = value;
    }
    ASSERT_OK(table->CheckIntegrity()) << "cycle " << cycle << " grown";
    for (int i = 0; i < 1400; ++i) {
      const std::string key = "gsg" + std::to_string(i);
      ASSERT_OK(table->Delete(key));
      model.erase(key);
    }
    ASSERT_OK(table->CheckIntegrity()) << "cycle " << cycle << " shrunk";
    std::string value;
    for (const auto& [k, v] : model) {
      ASSERT_OK(table->Get(k, &value)) << k;
      ASSERT_EQ(value, v);
    }
  }
}

TEST(ContractionTest, BigPairsSurviveContraction) {
  HashOptions opts = ContractingOptions();
  opts.bsize = 128;
  opts.auto_contract = false;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  const std::string big(5000, 'B');
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(table->Put("big" + std::to_string(i), big));
    ASSERT_OK(table->Put("small" + std::to_string(i), "s"));
  }
  while (table->bucket_count() > 1) {
    ASSERT_OK(table->Contract());
  }
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(table->Get("big" + std::to_string(i), &value)) << i;
    ASSERT_EQ(value, big);
  }
}

TEST(ContractionTest, ContractionPersistsAcrossReopen) {
  const std::string path = TempPath("contract_persist");
  HashOptions opts = ContractingOptions();
  {
    auto table = std::move(HashTable::Open(path, opts, true).value());
    for (int i = 0; i < 3000; ++i) {
      ASSERT_OK(table->Put("p" + std::to_string(i), "v"));
    }
    for (int i = 0; i < 2900; ++i) {
      ASSERT_OK(table->Delete("p" + std::to_string(i)));
    }
    ASSERT_OK(table->Sync());
  }
  auto table = std::move(HashTable::Open(path, opts).value());
  ASSERT_OK(table->CheckIntegrity());
  EXPECT_EQ(table->size(), 100u);
  std::string value;
  for (int i = 2900; i < 3000; ++i) {
    ASSERT_OK(table->Get("p" + std::to_string(i), &value));
  }
}

TEST(ContractionTest, NoThrashAtTheBoundary) {
  // Alternating put/delete around the contraction threshold must not
  // livelock or corrupt; hysteresis (split at >ffactor, contract at
  // <ffactor/4) keeps the work bounded.
  auto table = std::move(HashTable::OpenInMemory(ContractingOptions()).value());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(table->Put("t" + std::to_string(i), "v"));
  }
  const uint64_t contractions_before = table->stats().contractions;
  for (int round = 0; round < 200; ++round) {
    ASSERT_OK(table->Put("extra", "v"));
    ASSERT_OK(table->Delete("extra"));
  }
  // One key oscillating near a stable population: no contraction churn.
  EXPECT_LE(table->stats().contractions - contractions_before, 1u);
  ASSERT_OK(table->CheckIntegrity());
}

TEST(ContractionTest, PropertyRandomOpsWithAutoContract) {
  auto table = std::move(HashTable::OpenInMemory(ContractingOptions()).value());
  Rng rng(2025);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 6000; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(300));
    const uint64_t op = rng.Uniform(10);
    if (op < 4) {
      const std::string value = rng.ByteString(rng.Range(0, 80));
      ASSERT_OK(table->Put(key, value));
      model[key] = value;
    } else if (op < 8) {  // delete-heavy to exercise contraction
      const Status st = table->Delete(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      std::string value;
      const Status st = table->Get(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    ASSERT_EQ(table->size(), model.size()) << "step " << step;
    if (step % 750 == 749) {
      ASSERT_OK(table->CheckIntegrity()) << "step " << step;
    }
  }
  ASSERT_OK(table->CheckIntegrity());
}

}  // namespace
}  // namespace hashkit
