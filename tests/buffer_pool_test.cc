// Unit tests for the LRU buffer pool (src/pagefile/buffer_pool.h),
// including the paper's overflow-chain eviction rule.

#include "src/pagefile/buffer_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/pagefile/page_file.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

constexpr size_t kPage = 128;

class BufferPoolTest : public ::testing::Test {
 protected:
  void MakePool(size_t pool_bytes) {
    file_ = MakeMemPageFile(kPage);
    pool_ = std::make_unique<BufferPool>(file_.get(), pool_bytes);
  }

  // Writes a recognizable page directly to the backend.
  void Seed(uint64_t pageno, uint8_t fill) {
    std::vector<uint8_t> page(kPage, fill);
    ASSERT_OK(file_->WritePage(pageno, page));
  }

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  MakePool(kPage * 4);
  Seed(0, 0xaa);
  {
    auto ref = std::move(pool_->Get(0).value());
    EXPECT_EQ(ref.data()[0], 0xaa);
  }
  EXPECT_EQ(pool_->StatsSnapshot().misses, 1u);
  {
    auto ref = std::move(pool_->Get(0).value());
    EXPECT_EQ(ref.data()[0], 0xaa);
  }
  EXPECT_EQ(pool_->StatsSnapshot().hits, 1u);
}

TEST_F(BufferPoolTest, CreateNewSkipsBackendRead) {
  MakePool(kPage * 4);
  Seed(5, 0xff);
  auto ref = std::move(pool_->Get(5, /*create_new=*/true).value());
  EXPECT_EQ(ref.data()[0], 0x00);  // zero-filled, not read
  EXPECT_EQ(file_->stats().reads, 0u);
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  MakePool(kPage * 2);
  {
    auto ref = std::move(pool_->Get(0, true).value());
    ref.data()[0] = 0x77;
    ref.MarkDirty();
  }
  // Fill the pool to force eviction of page 0.
  for (uint64_t p = 1; p <= 3; ++p) {
    auto ref = std::move(pool_->Get(p, true).value());
    ref.MarkDirty();
  }
  std::vector<uint8_t> out(kPage);
  ASSERT_OK(file_->ReadPage(0, out));
  EXPECT_EQ(out[0], 0x77);
  EXPECT_GT(pool_->StatsSnapshot().evictions, 0u);
}

TEST_F(BufferPoolTest, CleanPageEvictedWithoutWriteback) {
  MakePool(kPage * 2);
  Seed(0, 0x11);
  { auto ref = std::move(pool_->Get(0).value()); }
  const uint64_t writes_before = file_->stats().writes;
  for (uint64_t p = 1; p <= 3; ++p) {
    auto ref = std::move(pool_->Get(p, true).value());
  }
  EXPECT_EQ(pool_->StatsSnapshot().dirty_writebacks, 3u - (3 - (file_->stats().writes - writes_before)));
  // Reading page 0 again shows the seeded (unmodified) content.
  auto ref = std::move(pool_->Get(0).value());
  EXPECT_EQ(ref.data()[0], 0x11);
}

TEST_F(BufferPoolTest, LruEvictsColdestFirst) {
  MakePool(kPage * 3);
  for (uint64_t p = 0; p < 3; ++p) {
    auto ref = std::move(pool_->Get(p, true).value());
  }
  // Touch page 0 so page 1 becomes the coldest.
  { auto ref = std::move(pool_->Get(0).value()); }
  { auto ref = std::move(pool_->Get(3, true).value()); }  // forces one eviction
  // Pages 0 and 2 should still be hits; page 1 was evicted.
  const uint64_t misses_before = pool_->StatsSnapshot().misses;
  { auto ref = std::move(pool_->Get(0).value()); }
  { auto ref = std::move(pool_->Get(2).value()); }
  EXPECT_EQ(pool_->StatsSnapshot().misses, misses_before);
  { auto ref = std::move(pool_->Get(1).value()); }
  EXPECT_EQ(pool_->StatsSnapshot().misses, misses_before + 1);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MakePool(kPage * 2);
  auto pinned = std::move(pool_->Get(0, true).value());
  pinned.data()[5] = 0x99;
  pinned.MarkDirty();
  // Exceed the pool budget while the pin is held: the pool must grow
  // rather than evict the pinned page.
  std::vector<PageRef> extra;
  for (uint64_t p = 1; p <= 4; ++p) {
    extra.push_back(std::move(pool_->Get(p, true).value()));
  }
  EXPECT_GE(pool_->frames_in_use(), 5u);
  EXPECT_EQ(pinned.data()[5], 0x99);
}

TEST_F(BufferPoolTest, OverflowChainEvictedWithPrimary) {
  MakePool(kPage * 8);
  // Build a chain: primary 10 -> overflow 11 -> overflow 12.
  {
    auto primary = std::move(pool_->Get(10, true).value());
    auto ovfl1 = std::move(pool_->Get(11, true).value());
    pool_->LinkOverflow(primary, ovfl1);
    auto ovfl2 = std::move(pool_->Get(12, true).value());
    pool_->LinkOverflow(ovfl1, ovfl2);
    primary.MarkDirty();
    ovfl1.MarkDirty();
    ovfl2.MarkDirty();
  }
  EXPECT_EQ(pool_->frames_in_use(), 3u);
  // Touch the overflow pages so the primary is the LRU victim; evicting it
  // must take the whole chain (the paper's rule: an overflow page cannot
  // be resident without its predecessor).
  { auto ref = std::move(pool_->Get(11).value()); }
  { auto ref = std::move(pool_->Get(12).value()); }
  // Shrink-by-filling: pool budget 8, so add 6 more pages to force room.
  for (uint64_t p = 20; p < 26; ++p) {
    auto ref = std::move(pool_->Get(p, true).value());
  }
  // All three chain members must have left together.
  EXPECT_GE(pool_->StatsSnapshot().evictions, 3u);
  const uint64_t misses_before = pool_->StatsSnapshot().misses;
  { auto ref = std::move(pool_->Get(10).value()); }
  { auto ref = std::move(pool_->Get(11).value()); }
  { auto ref = std::move(pool_->Get(12).value()); }
  EXPECT_EQ(pool_->StatsSnapshot().misses, misses_before + 3);
}

TEST_F(BufferPoolTest, PinnedOverflowProtectsPredecessorChain) {
  MakePool(kPage * 2);
  auto primary = std::move(pool_->Get(0, true).value());
  auto ovfl = std::move(pool_->Get(1, true).value());
  pool_->LinkOverflow(primary, ovfl);
  primary.Release();  // primary unpinned, but its successor is pinned
  for (uint64_t p = 2; p <= 5; ++p) {
    auto ref = std::move(pool_->Get(p, true).value());
  }
  // Primary must still be resident (its chain contains a pinned page).
  const uint64_t misses_before = pool_->StatsSnapshot().misses;
  { auto ref = std::move(pool_->Get(0).value()); }
  EXPECT_EQ(pool_->StatsSnapshot().misses, misses_before);
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPagesAndKeepsThem) {
  MakePool(kPage * 8);
  {
    auto ref = std::move(pool_->Get(0, true).value());
    ref.data()[0] = 0x21;
    ref.MarkDirty();
  }
  ASSERT_OK(pool_->FlushAll());
  std::vector<uint8_t> out(kPage);
  ASSERT_OK(file_->ReadPage(0, out));
  EXPECT_EQ(out[0], 0x21);
  // Still cached.
  const uint64_t misses_before = pool_->StatsSnapshot().misses;
  { auto ref = std::move(pool_->Get(0).value()); }
  EXPECT_EQ(pool_->StatsSnapshot().misses, misses_before);
  // Flushing twice does not rewrite clean pages.
  const uint64_t writes = file_->stats().writes;
  ASSERT_OK(pool_->FlushAll());
  EXPECT_EQ(file_->stats().writes, writes);
}

TEST_F(BufferPoolTest, FlushAndInvalidateDropsFrames) {
  MakePool(kPage * 8);
  {
    auto ref = std::move(pool_->Get(0, true).value());
    ref.MarkDirty();
  }
  ASSERT_OK(pool_->FlushAndInvalidate());
  EXPECT_EQ(pool_->frames_in_use(), 0u);
}

TEST_F(BufferPoolTest, DiscardDropsWithoutWriteback) {
  MakePool(kPage * 8);
  {
    auto ref = std::move(pool_->Get(0, true).value());
    ref.data()[0] = 0x55;
    ref.MarkDirty();
  }
  pool_->Discard(0);
  EXPECT_EQ(pool_->frames_in_use(), 0u);
  std::vector<uint8_t> out(kPage);
  ASSERT_OK(file_->ReadPage(0, out));
  EXPECT_EQ(out[0], 0x00);  // the dirty data was intentionally dropped
}

TEST_F(BufferPoolTest, ZeroBudgetPoolKeepsNothingCached) {
  MakePool(0);
  {
    auto ref = std::move(pool_->Get(0, true).value());
    ref.data()[0] = 0x66;
    ref.MarkDirty();
  }
  // After the pin drops, the frame is evicted (written back) eagerly on
  // the next Get.
  { auto ref = std::move(pool_->Get(1, true).value()); }
  EXPECT_LE(pool_->frames_in_use(), 1u);
  std::vector<uint8_t> out(kPage);
  ASSERT_OK(file_->ReadPage(0, out));
  EXPECT_EQ(out[0], 0x66);
}

TEST_F(BufferPoolTest, MovedPageRefTransfersOwnership) {
  MakePool(kPage * 4);
  auto a = std::move(pool_->Get(0, true).value());
  PageRef b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b.Release();
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST_F(BufferPoolTest, RelinkOverflowReplacesOldEdge) {
  MakePool(kPage * 8);
  auto p = std::move(pool_->Get(0, true).value());
  auto a = std::move(pool_->Get(1, true).value());
  auto b = std::move(pool_->Get(2, true).value());
  pool_->LinkOverflow(p, a);
  pool_->LinkOverflow(p, b);  // replaces the p->a edge
  p.Release();
  a.Release();
  b.Release();
  // Evicting p should take b (current successor) but not a.
  for (uint64_t q = 10; q < 18; ++q) {
    auto ref = std::move(pool_->Get(q, true).value());
  }
  SUCCEED();  // structural sanity: no crash, no double-free
}

TEST_F(BufferPoolTest, DiscardPinnedIsCheckedNoOp) {
  MakePool(kPage * 4);
  auto ref = std::move(pool_->Get(0, /*create_new=*/true).value());
  ref.data()[0] = 0x5a;
  ref.MarkDirty();

  // Discarding a pinned page must not free the frame out from under the
  // live PageRef (release builds compile the assert out, so this has to be
  // a checked no-op, not UB).
  pool_->Discard(0);
  EXPECT_EQ(pool_->frames_in_use(), 1u);
  EXPECT_EQ(ref.data()[0], 0x5a);  // still valid
  ref.Release();

  // The frame stayed cached through the refused discard.
  {
    auto again = std::move(pool_->Get(0).value());
    EXPECT_EQ(again.data()[0], 0x5a);
  }
  EXPECT_EQ(pool_->StatsSnapshot().hits, 1u);

  // Unpinned, the discard goes through — without writeback.
  pool_->Discard(0);
  EXPECT_EQ(pool_->frames_in_use(), 0u);
  auto fresh = std::move(pool_->Get(0).value());
  EXPECT_EQ(fresh.data()[0], 0x00);  // backend never saw the dirty bytes
}

TEST_F(BufferPoolTest, AllFramesPinnedGrowsPastBudget) {
  MakePool(kPage * 2);
  std::vector<PageRef> pinned;
  for (uint64_t p = 0; p < 6; ++p) {
    pinned.push_back(std::move(pool_->Get(p, /*create_new=*/true).value()));
  }
  // Nothing evictable: the pool grows past its nominal limit rather than
  // failing or evicting a pinned frame.
  EXPECT_EQ(pool_->frames_in_use(), 6u);
  for (uint64_t p = 0; p < 6; ++p) {
    EXPECT_EQ(pinned[p].pageno(), p);
  }
  for (auto& ref : pinned) {
    ref.Release();
  }
  // Once the pins drop, the next miss sweeps the pool back under budget.
  auto ref = std::move(pool_->Get(100, /*create_new=*/true).value());
  EXPECT_LE(pool_->frames_in_use(), 2u + 1u);  // budget + the pinned newcomer
}

TEST_F(BufferPoolTest, VictimScanCapFallsBackToGrowth) {
  // Fill the pool with frames the sweep must *consider* but can never take:
  // unpinned primaries whose overflow successor is pinned.  With more such
  // candidates than kMaxVictimScan, the sweep has to give up in bounded
  // time and let the pool grow instead of spinning on the ring.
  MakePool(kPage * 8);
  constexpr uint64_t kChains = 70;  // > kMaxVictimScan (64)
  std::vector<PageRef> pinned_ovfl;
  for (uint64_t i = 0; i < kChains; ++i) {
    auto primary = std::move(pool_->Get(i, /*create_new=*/true).value());
    auto ovfl = std::move(pool_->Get(1000 + i, /*create_new=*/true).value());
    pool_->LinkOverflow(primary, ovfl);
    primary.Release();
    pinned_ovfl.push_back(std::move(ovfl));  // keeps the whole chain resident
  }
  // Every chain survived: 70 primaries + 70 pinned overflows.
  EXPECT_EQ(pool_->frames_in_use(), 2 * kChains);

  // Re-touch every primary: all hits, no backend reads.
  const uint64_t misses_before = pool_->StatsSnapshot().misses;
  for (uint64_t i = 0; i < kChains; ++i) {
    auto ref = std::move(pool_->Get(i).value());
    EXPECT_EQ(ref.pageno(), i);
  }
  EXPECT_EQ(pool_->StatsSnapshot().misses, misses_before);
  EXPECT_EQ(file_->stats().reads, 0u);
}

}  // namespace
}  // namespace hashkit
