// hashkit-mvcc: online backup, point-in-time recovery, and WAL-shipping
// replication, end to end over the wire.  The churn test proves the
// acceptance bar: a backup streamed from a live, writing server restores
// to a table that passes a full integrity check with zero lost
// acknowledged writes.  The crash matrix covers torn downloads, stale
// artifacts, and torn archive tails.  Label `backup` (Release + TSan CI).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/hash_table.h"
#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/net/client.h"
#include "src/net/replica.h"
#include "src/net/server.h"
#include "src/util/tempfile.h"
#include "src/wal/archive.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

// One live server over a synchronized hash_disk store.
struct TestServer {
  std::unique_ptr<kv::KvStore> store;
  std::unique_ptr<net::Server> server;
  uint16_t port = 0;
};

TestServer StartServer(const std::string& path, bool wal_archive = false) {
  TestServer ts;
  kv::StoreOptions options;
  options.path = path;
  options.truncate = true;
  options.durability = Durability::kSync;
  options.wal_archive = wal_archive;
  auto opened = kv::OpenStore(kv::StoreKind::kHashDisk, options);
  EXPECT_OK(opened.status());
  ts.store = kv::MakeSynchronized(std::move(opened).value());
  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  ts.server = std::make_unique<net::Server>(ts.store.get(), server_options);
  EXPECT_OK(ts.server->Start());
  ts.port = ts.server->port();
  return ts;
}

void CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  ASSERT_TRUE(in.good()) << from;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  ASSERT_TRUE(out.good()) << to;
}

void RemoveBackupFiles(const std::string& dest) {
  std::remove(dest.c_str());
  std::remove((dest + ".wal").c_str());
  std::remove((dest + ".tmp").c_str());
  std::remove((dest + ".wal.tmp").c_str());
}

TEST(BackupTest, LiveBackupUnderChurnLosesNoAcknowledgedWrite) {
  const std::string path = TempPath("backup_src");
  const std::string dest = TempPath("backup_dest");
  RemoveBackupFiles(dest);
  TestServer ts = StartServer(path);

  // Acknowledged-before-backup writes: these MUST all survive.
  auto seeded = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(seeded.status());
  constexpr int kStable = 300;
  for (int i = 0; i < kStable; ++i) {
    ASSERT_OK(seeded.value()->Put("stable" + std::to_string(i), "sv" + std::to_string(i)));
  }
  ASSERT_OK(seeded.value()->Sync());

  // Churn on a second connection while the backup streams.
  std::atomic<bool> stop{false};
  std::atomic<int> churn_errors{0};
  std::atomic<uint64_t> churn_writes{0};
  std::thread churner([&] {
    auto conn = net::Client::Connect("127.0.0.1", ts.port);
    if (!conn.ok()) {
      ++churn_errors;
      return;
    }
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!conn.value()->Put("churn" + std::to_string(i % 500),
                             "cv" + std::to_string(i)).ok()) {
        ++churn_errors;
        return;
      }
      ++i;
      churn_writes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Make sure the writer is genuinely running mid-backup.
  while (churn_writes.load(std::memory_order_relaxed) < 100) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto backup_conn = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(backup_conn.status());
  auto manifest = net::DownloadBackup(backup_conn.value().get(), dest);
  ASSERT_OK(manifest.status());
  EXPECT_GT(manifest.value().page_count, 0u);
  EXPECT_GT(manifest.value().lsn, 0u);
  const uint64_t writes_during = churn_writes.load(std::memory_order_relaxed);

  stop.store(true);
  churner.join();
  ASSERT_EQ(churn_errors.load(), 0);
  EXPECT_GT(writes_during, 100u) << "churn was not live during the backup";
  ts.server->Stop();

  // The restored copy opens (replaying its WAL tail), passes the full
  // structural check, and holds every acknowledged write.
  HashOptions open_options;
  auto restored = HashTable::Open(dest, open_options, /*truncate=*/false);
  ASSERT_OK(restored.status());
  auto& table = *restored.value();
  ASSERT_OK(table.CheckIntegrity());
  for (int i = 0; i < kStable; ++i) {
    std::string value;
    ASSERT_OK(table.Get("stable" + std::to_string(i), &value)) << "stable" << i;
    EXPECT_EQ(value, "sv" + std::to_string(i));
  }
  // Churn keys in the backup must carry well-formed values (a torn page
  // would fail the integrity check above anyway).
  std::string value;
  for (int i = 0; i < 500; ++i) {
    const Status st = table.Get("churn" + std::to_string(i), &value);
    if (st.ok()) {
      EXPECT_EQ(value.rfind("cv", 0), 0u);
    } else {
      EXPECT_TRUE(st.IsNotFound());
    }
  }
}

TEST(BackupTest, BackupRefusesExistingDestinationAndStaleArtifacts) {
  const std::string path = TempPath("backup_refuse_src");
  const std::string dest = TempPath("backup_refuse_dest");
  RemoveBackupFiles(dest);
  TestServer ts = StartServer(path);
  auto client = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(client.status());
  ASSERT_OK(client.value()->Put("k", "v"));
  ASSERT_OK(client.value()->Sync());

  // A stale temp artifact (torn earlier download / upgrade) blocks the
  // backup until cleaned.
  { std::ofstream(dest + ".tmp") << "torn"; }
  EXPECT_TRUE(net::DownloadBackup(client.value().get(), dest).status().IsExists());
  ASSERT_OK(RemoveStaleArtifacts(dest));
  ASSERT_OK(net::DownloadBackup(client.value().get(), dest).status());

  // An existing destination is never clobbered.
  auto again = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(again.status());
  EXPECT_TRUE(net::DownloadBackup(again.value().get(), dest).status().IsExists());
  ts.server->Stop();
}

TEST(BackupTest, SecondBackupAfterMoreWritesIsCurrent) {
  // Regression: header pages must be read from the file, not a pool frame
  // cached by an earlier backup — checkpoints write the header behind the
  // pool's back.
  const std::string path = TempPath("backup_twice_src");
  const std::string dest1 = TempPath("backup_twice_d1");
  const std::string dest2 = TempPath("backup_twice_d2");
  RemoveBackupFiles(dest1);
  RemoveBackupFiles(dest2);
  TestServer ts = StartServer(path);
  auto client = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(client.status());
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(client.value()->Put("a" + std::to_string(i), "v" + std::to_string(i)));
  }
  ASSERT_OK(client.value()->Sync());
  ASSERT_OK(net::DownloadBackup(client.value().get(), dest1).status());

  // Enough new keys to split buckets (header geometry changes), then sync.
  for (int i = 0; i < 600; ++i) {
    ASSERT_OK(client.value()->Put("b" + std::to_string(i), "w" + std::to_string(i)));
  }
  ASSERT_OK(client.value()->Sync());
  auto conn2 = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(conn2.status());
  ASSERT_OK(net::DownloadBackup(conn2.value().get(), dest2).status());
  ts.server->Stop();

  auto restored = HashTable::Open(dest2, HashOptions(), /*truncate=*/false);
  ASSERT_OK(restored.status());
  ASSERT_OK(restored.value()->CheckIntegrity());
  std::string value;
  for (int i = 0; i < 600; ++i) {
    ASSERT_OK(restored.value()->Get("b" + std::to_string(i), &value)) << "b" << i;
  }
}

TEST(BackupTest, TornDownloadLeavesOnlyCleanableArtifacts) {
  // Crash matrix, download side: a client that dies mid-stream leaves at
  // worst ".tmp" siblings — which StaleArtifactsFor reports, clean
  // removes, and a fresh download then succeeds.
  const std::string path = TempPath("backup_torn_src");
  const std::string dest = TempPath("backup_torn_dest");
  RemoveBackupFiles(dest);
  TestServer ts = StartServer(path);
  auto client = net::Client::Connect("127.0.0.1", ts.port);
  ASSERT_OK(client.status());
  ASSERT_OK(client.value()->Put("k", "v"));
  ASSERT_OK(client.value()->Sync());

  // Simulate the torn download's leavings directly.
  { std::ofstream(dest + ".tmp") << "partial image bytes"; }
  { std::ofstream(dest + ".wal.tmp") << "partial log bytes"; }
  const auto stale = StaleArtifactsFor(dest);
  ASSERT_GE(stale.size(), 2u);
  ASSERT_OK(RemoveStaleArtifacts(dest));
  EXPECT_TRUE(StaleArtifactsFor(dest).empty());

  ASSERT_OK(net::DownloadBackup(client.value().get(), dest).status());
  ts.server->Stop();
  auto restored = HashTable::Open(dest, HashOptions(), /*truncate=*/false);
  ASSERT_OK(restored.status());
  std::string value;
  ASSERT_OK(restored.value()->Get("k", &value));
  EXPECT_EQ(value, "v");
}

TEST(BackupTest, PointInTimeRestoreStopsAtRequestedLsn) {
  const std::string path = TempPath("pitr_src");
  std::remove((path + ".wal").c_str());
  HashOptions options;
  options.bsize = 256;
  options.ffactor = 8;
  options.durability = Durability::kSync;
  options.wal_archive = true;
  options.wal_checkpoint_bytes = 1;  // clamped to the floor: archive often

  // Base image: checkpointed right after creation, copied aside — the
  // "full backup" the archive chain replays onto.
  const std::string base = TempPath("pitr_base");
  uint64_t lsn_phase1 = 0;
  {
    auto opened = HashTable::Open(path, options, /*truncate=*/true);
    ASSERT_OK(opened.status());
    auto& table = *opened.value();
    ASSERT_OK(table.Put("genesis", "g"));
    ASSERT_OK(table.Sync());
    CopyFile(path, base);

    const std::string filler(300, 'p');
    for (int i = 0; i < 120; ++i) {
      ASSERT_OK(table.Put("p1-" + std::to_string(i), filler + std::to_string(i)));
    }
    ASSERT_OK(table.Sync());
    lsn_phase1 = table.WalLsn();
    ASSERT_GT(lsn_phase1, 0u);

    // Phase 2: overwrite phase-1 keys and add new ones — everything PITR
    // to lsn_phase1 must NOT show.
    for (int i = 0; i < 120; ++i) {
      ASSERT_OK(table.Put("p1-" + std::to_string(i), "phase2-overwrite"));
    }
    for (int i = 0; i < 80; ++i) {
      ASSERT_OK(table.Put("p2-" + std::to_string(i), "p2v"));
    }
    ASSERT_OK(table.Sync());
  }

  // The archive accumulated segments; stage base + logs for two restores.
  auto segments = wal::ListArchiveSegments(path + ".wal");
  ASSERT_OK(segments.status());
  ASSERT_GE(segments.value().size(), 1u) << "checkpoints never archived";

  const auto stage = [&](const std::string& restore_path) {
    CopyFile(base, restore_path);
    CopyFile(path + ".wal", restore_path + ".wal");
    for (const auto& seg : segments.value()) {
      const std::string suffix = seg.path.substr((path + ".wal").size());
      CopyFile(seg.path, restore_path + ".wal" + suffix);
    }
  };

  const std::string at_p1 = TempPath("pitr_at_p1");
  stage(at_p1);
  auto applied = wal::RestoreToLsn(at_p1, lsn_phase1);
  ASSERT_OK(applied.status());
  EXPECT_EQ(applied.value(), lsn_phase1);
  {
    auto opened = HashTable::Open(at_p1, HashOptions(), /*truncate=*/false);
    ASSERT_OK(opened.status());
    auto& table = *opened.value();
    ASSERT_OK(table.CheckIntegrity());
    std::string value;
    const std::string filler(300, 'p');
    for (int i = 0; i < 120; ++i) {
      ASSERT_OK(table.Get("p1-" + std::to_string(i), &value)) << i;
      EXPECT_EQ(value, filler + std::to_string(i)) << "phase-2 leaked into PITR state";
    }
    EXPECT_TRUE(table.Get("p2-0", &value).IsNotFound());
  }

  // And restoring to "latest" replays everything.
  const std::string at_end = TempPath("pitr_at_end");
  stage(at_end);
  auto applied_all = wal::RestoreToLsn(at_end, UINT64_MAX);
  ASSERT_OK(applied_all.status());
  EXPECT_GT(applied_all.value(), lsn_phase1);
  {
    auto opened = HashTable::Open(at_end, HashOptions(), /*truncate=*/false);
    ASSERT_OK(opened.status());
    std::string value;
    ASSERT_OK(opened.value()->Get("p1-0", &value));
    EXPECT_EQ(value, "phase2-overwrite");
    ASSERT_OK(opened.value()->Get("p2-0", &value));
    EXPECT_EQ(value, "p2v");
    ASSERT_OK(opened.value()->CheckIntegrity());
  }
}

TEST(BackupTest, TornArchiveTailStillRestoresCommittedPrefix) {
  // Crash matrix, restore side: the live log's tail is torn (the writer
  // died mid-record); PITR still applies every committed batch before it.
  const std::string path = TempPath("pitr_torn_src");
  std::remove((path + ".wal").c_str());
  HashOptions options;
  options.bsize = 256;
  options.durability = Durability::kSync;
  options.wal_archive = true;
  const std::string base = TempPath("pitr_torn_base");
  const std::string restore = TempPath("pitr_torn_restore");
  {
    auto opened = HashTable::Open(path, options, /*truncate=*/true);
    ASSERT_OK(opened.status());
    ASSERT_OK(opened.value()->Put("seed", "s"));
    ASSERT_OK(opened.value()->Sync());
    CopyFile(path, base);
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(opened.value()->Put("t" + std::to_string(i), "tv" + std::to_string(i)));
    }
    // Copy the live log NOW, before close checkpoints and truncates it —
    // this is exactly the file a crashed archiver would have left behind.
    CopyFile(path + ".wal", restore + ".wal");
  }
  CopyFile(base, restore);
  // Tear the copied log mid-record.
  {
    std::ifstream in(restore + ".wal", std::ios::binary | std::ios::ate);
    const auto size = static_cast<long>(in.tellg());
    ASSERT_GT(size, 32);
    in.close();
    ASSERT_EQ(::truncate((restore + ".wal").c_str(), size - 7), 0);
  }
  auto applied = wal::RestoreToLsn(restore, UINT64_MAX);
  ASSERT_OK(applied.status());
  auto opened = HashTable::Open(restore, HashOptions(), /*truncate=*/false);
  ASSERT_OK(opened.status());
  ASSERT_OK(opened.value()->CheckIntegrity());
  std::string value;
  ASSERT_OK(opened.value()->Get("seed", &value));
  EXPECT_EQ(value, "s");
}

TEST(BackupTest, ReplicaBootstrapsTailsAndDetectsGaps) {
  const std::string primary_path = TempPath("replica_primary");
  const std::string replica_path = TempPath("replica_copy");
  RemoveBackupFiles(replica_path);
  TestServer primary = StartServer(primary_path);
  auto client = net::Client::Connect("127.0.0.1", primary.port);
  ASSERT_OK(client.status());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(client.value()->Put("r" + std::to_string(i), "v" + std::to_string(i)));
  }
  ASSERT_OK(client.value()->Sync());

  // Bootstrap = the backup protocol.
  auto boot = net::Client::Connect("127.0.0.1", primary.port);
  ASSERT_OK(boot.status());
  ASSERT_OK(net::DownloadBackup(boot.value().get(), replica_path).status());
  boot.value().reset();  // drop the backup snapshot: checkpoints resume

  kv::StoreOptions replica_options;
  replica_options.path = replica_path;
  replica_options.truncate = false;
  replica_options.durability = Durability::kAsync;
  auto replica_opened = kv::OpenStore(kv::StoreKind::kHashDisk, replica_options);
  ASSERT_OK(replica_opened.status());
  auto replica_store = kv::MakeSynchronized(std::move(replica_opened).value());
  std::string value;
  ASSERT_OK(replica_store->Get("r0", &value));
  EXPECT_EQ(value, "v0");

  net::ReplicaOptions ropts;
  ropts.primary_host = "127.0.0.1";
  ropts.primary_port = primary.port;
  net::Replica replica(replica_store.get(), ropts);

  // New primary writes reach the replica on the next poll.  kSync
  // durability commits each put to the log synchronously — no explicit
  // Sync, because Sync is a checkpoint and checkpoints truncate the log
  // (the gap case, tested below).
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(client.value()->Put("new" + std::to_string(i), "nv" + std::to_string(i)));
  }
  ASSERT_OK(replica.PollOnce());
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(replica_store->Get("new" + std::to_string(i), &value)) << i;
    EXPECT_EQ(value, "nv" + std::to_string(i));
  }
  const uint64_t caught_up = replica.last_applied_lsn();
  EXPECT_GT(caught_up, 0u);
  // Idempotent when nothing new arrived.
  ASSERT_OK(replica.PollOnce());
  EXPECT_EQ(replica.last_applied_lsn(), caught_up);

  // Gap: a primary checkpoint while the replica was not polling truncates
  // history the replica never saw.  The poll must fail loudly (NotFound),
  // never silently diverge — the runbook answer is a fresh bootstrap.
  ASSERT_OK(client.value()->Put("gapped", "gv"));
  ASSERT_OK(client.value()->Sync());  // checkpoint: log now starts past caught_up
  ASSERT_OK(client.value()->Put("after-gap", "av"));
  const Status gap = replica.PollOnce();
  EXPECT_TRUE(gap.IsNotFound()) << gap.ToString();
  EXPECT_EQ(replica.last_applied_lsn(), caught_up);

  primary.server->Stop();
}

}  // namespace
}  // namespace hashkit
