// Tests for the memory-resident baselines: System V hsearch (all variants)
// and dynahash.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/baselines/dynahash/dynahash.h"
#include "src/baselines/hsearch/hsearch.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace baseline {
namespace {

// ---- hsearch ----

struct HsearchVariant {
  const char* name;
  HsearchConfig config;
};

class HsearchVariantTest : public ::testing::TestWithParam<HsearchVariant> {};

TEST_P(HsearchVariantTest, EnterThenFind) {
  auto table = std::move(SysvHsearch::Create(500, GetParam().config).value());
  int payloads[100];
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(table->Enter("key" + std::to_string(i), &payloads[i]));
  }
  EXPECT_EQ(table->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    void* data = nullptr;
    ASSERT_OK(table->Find("key" + std::to_string(i), &data));
    EXPECT_EQ(data, &payloads[i]);
  }
  void* data = nullptr;
  EXPECT_TRUE(table->Find("missing", &data).IsNotFound());
}

TEST_P(HsearchVariantTest, EnterKeepsExistingEntry) {
  auto table = std::move(SysvHsearch::Create(10, GetParam().config).value());
  int a = 1;
  int b = 2;
  ASSERT_OK(table->Enter("dup", &a));
  ASSERT_OK(table->Enter("dup", &b));
  void* data = nullptr;
  ASSERT_OK(table->Find("dup", &data));
  EXPECT_EQ(data, &a);
  EXPECT_EQ(table->size(), 1u);
}

TEST_P(HsearchVariantTest, TableFullIsReported) {
  // The shortcoming the paper calls out: a fixed-size table fills up.
  auto table = std::move(SysvHsearch::Create(8, GetParam().config).value());
  const size_t capacity = table->capacity();
  Status last = Status::Ok();
  for (size_t i = 0; i <= capacity && last.ok(); ++i) {
    last = table->Enter("full" + std::to_string(i), nullptr);
  }
  EXPECT_TRUE(last.IsFull());
  EXPECT_EQ(table->size(), capacity);
  // Existing keys are still retrievable after the failure.
  void* data = nullptr;
  EXPECT_OK(table->Find("full0", &data));
}

TEST_P(HsearchVariantTest, HandlesHeavyCollisionLoad) {
  auto table = std::move(SysvHsearch::Create(2000, GetParam().config).value());
  Rng rng(33);
  std::map<std::string, int*> model;
  static int sink[1500];
  for (int i = 0; i < 1500; ++i) {
    const std::string key = rng.AsciiString(rng.Range(1, 10));
    if (model.count(key)) {
      continue;
    }
    ASSERT_OK(table->Enter(key, &sink[i]));
    model[key] = &sink[i];
  }
  for (const auto& [key, ptr] : model) {
    void* data = nullptr;
    ASSERT_OK(table->Find(key, &data)) << key;
    EXPECT_EQ(data, ptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, HsearchVariantTest,
    ::testing::Values(
        HsearchVariant{"default_double_hash", {}},
        HsearchVariant{"div_linear_probe",
                       {HsearchHash::kDivision, HsearchCollision::kDoubleHash,
                        HsearchChainOrder::kFront, 2}},
        HsearchVariant{"brent",
                       {HsearchHash::kMultiplicative, HsearchCollision::kBrent,
                        HsearchChainOrder::kFront, 2}},
        HsearchVariant{"chained_front",
                       {HsearchHash::kMultiplicative, HsearchCollision::kChained,
                        HsearchChainOrder::kFront, 2}},
        HsearchVariant{"chained_sortup",
                       {HsearchHash::kMultiplicative, HsearchCollision::kChained,
                        HsearchChainOrder::kSortUp, 2}},
        HsearchVariant{"chained_sortdown",
                       {HsearchHash::kMultiplicative, HsearchCollision::kChained,
                        HsearchChainOrder::kSortDown, 2}}),
    [](const ::testing::TestParamInfo<HsearchVariant>& param_info) { return param_info.param.name; });

TEST(HsearchTest, CapacityIsPrime) {
  auto table = std::move(SysvHsearch::Create(100).value());
  const size_t cap = table->capacity();
  EXPECT_GE(cap, 100u);
  for (size_t d = 2; d * d <= cap; ++d) {
    EXPECT_NE(cap % d, 0u) << "capacity " << cap << " divisible by " << d;
  }
}

TEST(HsearchTest, BrentRearrangementShortensProbes) {
  // With rearrangement, mean retrieval probes should not exceed the plain
  // double-hash scheme on the same (highly loaded) table.
  HsearchConfig plain;
  HsearchConfig brent;
  brent.collision = HsearchCollision::kBrent;
  auto t_plain = std::move(SysvHsearch::Create(1000, plain).value());
  auto t_brent = std::move(SysvHsearch::Create(1000, brent).value());
  Rng rng(44);
  std::vector<std::string> keys;
  for (int i = 0; i < 900; ++i) {  // ~90% load
    keys.push_back(rng.AsciiString(8) + std::to_string(i));
  }
  for (const auto& key : keys) {
    ASSERT_OK(t_plain->Enter(key, nullptr));
    ASSERT_OK(t_brent->Enter(key, nullptr));
  }
  const auto measure = [&](SysvHsearch& t) {
    const uint64_t before = t.stats().probes;
    void* data = nullptr;
    for (const auto& key : keys) {
      EXPECT_OK(t.Find(key, &data));
    }
    return t.stats().probes - before;
  };
  const uint64_t probes_plain = measure(*t_plain);
  const uint64_t probes_brent = measure(*t_brent);
  EXPECT_GT(t_brent->stats().rearranges, 0u);
  EXPECT_LE(probes_brent, probes_plain);
}

// ---- dynahash ----

TEST(DynahashTest, EnterFindRemove) {
  auto table = std::move(Dynahash::Create(16).value());
  int x = 5;
  ASSERT_OK(table->Enter("k", &x));
  void* data = nullptr;
  ASSERT_OK(table->Find("k", &data));
  EXPECT_EQ(data, &x);
  ASSERT_OK(table->Remove("k"));
  EXPECT_TRUE(table->Find("k", &data).IsNotFound());
  EXPECT_TRUE(table->Remove("k").IsNotFound());
}

TEST(DynahashTest, GrowsWithoutBound) {
  // dynahash fixes hsearch's fixed capacity: no "table full".
  auto table = std::move(Dynahash::Create(4, /*ffactor=*/5).value());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_OK(table->Enter("g" + std::to_string(i), nullptr));
  }
  EXPECT_EQ(table->size(), 20000u);
  EXPECT_GT(table->bucket_count(), 1000u);
  void* data = nullptr;
  for (int i = 0; i < 20000; i += 97) {
    ASSERT_OK(table->Find("g" + std::to_string(i), &data)) << i;
  }
}

TEST(DynahashTest, ControlledSplittingBoundsLoad) {
  auto table = std::move(Dynahash::Create(1, /*ffactor=*/5).value());
  for (int i = 0; i < 10000; ++i) {
    ASSERT_OK(table->Enter("l" + std::to_string(i), nullptr));
  }
  const double load = static_cast<double>(table->size()) / table->bucket_count();
  EXPECT_LE(load, 5.0 + 1e-9);
  EXPECT_GE(load, 2.4);
  EXPECT_GT(table->stats().splits, 1000u);
}

TEST(DynahashTest, PresizingReducesSplits) {
  auto grown = std::move(Dynahash::Create(0).value());
  auto presized = std::move(Dynahash::Create(10000).value());
  for (int i = 0; i < 10000; ++i) {
    ASSERT_OK(grown->Enter("p" + std::to_string(i), nullptr));
    ASSERT_OK(presized->Enter("p" + std::to_string(i), nullptr));
  }
  EXPECT_EQ(presized->stats().splits, 0u);
  EXPECT_GT(grown->stats().splits, 100u);
}

TEST(DynahashTest, EnterKeepsExisting) {
  auto table = std::move(Dynahash::Create(8).value());
  int a = 1;
  int b = 2;
  ASSERT_OK(table->Enter("dup", &a));
  ASSERT_OK(table->Enter("dup", &b));
  void* data = nullptr;
  ASSERT_OK(table->Find("dup", &data));
  EXPECT_EQ(data, &a);
}

TEST(DynahashTest, RandomOpsMatchReference) {
  auto table = std::move(Dynahash::Create(4).value());
  Rng rng(55);
  std::map<std::string, void*> model;
  static int cells[256];
  for (int step = 0; step < 5000; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(256));
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {
      void* ptr = &cells[rng.Uniform(256)];
      if (!model.count(key)) {
        model[key] = ptr;
      }
      ASSERT_OK(table->Enter(key, ptr));
    } else if (op < 7) {
      const Status st = table->Remove(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      void* data = nullptr;
      const Status st = table->Find(key, &data);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(data, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    ASSERT_EQ(table->size(), model.size());
  }
}

TEST(DynahashTest, AverageChainLengthTracksFfactor) {
  auto table = std::move(Dynahash::Create(1, 5).value());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_OK(table->Enter("c" + std::to_string(i), nullptr));
  }
  EXPECT_LT(table->AverageChainLength(), 10.0);
  EXPECT_GT(table->AverageChainLength(), 1.0);
}

}  // namespace
}  // namespace baseline
}  // namespace hashkit
