// Tests for the thread-per-core batching data path (hashkit-tpc): the
// OutQueue scatter-gather resume math, cross-connection batches that span
// a mid-round connection close, the admission controller's shed/defer
// policies over the wire (kOverloaded + retry-after hint), client
// pipeline ordering across barrier ops, the batching counters on the
// STATS/metrics surface, and a WAL group-commit hammer that TSan runs via
// the `stress` label (multiple cores sharing one fsync per batch).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/net/client.h"
#include "src/net/out_queue.h"
#include "src/net/proto.h"
#include "src/net/server.h"
#include "tests/test_util.h"

namespace hashkit {
namespace net {
namespace {

using kv::KvStore;
using kv::OpenStore;
using kv::StoreKind;
using kv::StoreOptions;

std::unique_ptr<KvStore> MemStore(uint32_t shards = 4) {
  StoreOptions store_options;
  store_options.shards = shards;
  auto opened = OpenStore(StoreKind::kHashMemory, store_options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

// Drains the queue through iovec chains of at most `max_iov`, consuming
// `step` bytes per "write" — a sendmsg loop whose partial writes land in
// the middle of segments.  Returns the reassembled byte stream.
std::string DrainInSteps(OutQueue* q, size_t max_iov, size_t step) {
  std::string drained;
  while (!q->empty()) {
    struct iovec iov[16];
    const size_t n = q->FillIovecs(iov, max_iov);
    EXPECT_GT(n, 0u);
    size_t copied = 0;
    for (size_t i = 0; i < n && copied < step; ++i) {
      const size_t len = std::min(step - copied, iov[i].iov_len);
      drained.append(static_cast<const char*>(iov[i].iov_base), len);
      copied += len;
    }
    q->Advance(copied);  // only what the "write" actually took
  }
  return drained;
}

TEST(OutQueueTest, PartialWriteResumesMidIovec) {
  OutQueue q;
  const std::string big_a(1500, 'A');
  const std::string big_b(2000, 'B');
  q.Append("hdr1");
  q.AppendOwned(std::string(big_a));
  q.Append("hdr2");
  q.AppendOwned(std::string(big_b));
  const std::string expect = "hdr1" + big_a + "hdr2" + big_b;
  ASSERT_EQ(q.pending(), expect.size());

  // 700-byte steps never align with a segment boundary, so every resume
  // starts mid-iovec; a 1-iovec chain also forces resume-within-segment.
  EXPECT_EQ(DrainInSteps(&q, 16, 700), expect);

  q.Append("hdr1");
  q.AppendOwned(std::string(big_a));
  q.Append("hdr2");
  q.AppendOwned(std::string(big_b));
  EXPECT_EQ(DrainInSteps(&q, 1, 700), expect);
  EXPECT_TRUE(q.empty());
}

TEST(OutQueueTest, FrozenSegmentsStayPinnedUntilUnfreeze) {
  OutQueue q;
  q.AppendOwned(std::string(1024, 'x'));
  struct iovec iov[4];
  ASSERT_EQ(q.FillIovecs(iov, 4), 1u);
  const char* pinned = static_cast<const char*>(iov[0].iov_base);

  q.Freeze();
  // Appends while frozen must not touch (reallocate) the pinned segment.
  q.Append("tail");
  q.Advance(1024);  // completion consumes the frozen bytes...
  EXPECT_EQ(q.pending(), 4u);
  // ...but the storage the kernel might still reference is untouched.
  EXPECT_EQ(pinned[0], 'x');
  q.Unfreeze();

  EXPECT_EQ(DrainInSteps(&q, 4, 4), "tail");
}

TEST(NetBatchingTest, PipelineOrderingAcrossBarriers) {
  auto store = MemStore();
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  // Force cross-core routing: Forwarding::kAuto would fall back to
  // connection-affine execution on single-CPU CI runners, and these tests
  // exist to exercise the forwarded path.
  server_options.forwarding = ServerOptions::Forwarding::kOn;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();

  // Batchable ops interleaved with barriers (SYNC, PING, STATS): responses
  // must come back in request order with matching seq numbers.
  std::vector<Request> batch;
  auto add = [&batch](Opcode op, std::string key = "", std::string value = "") {
    Request req;
    req.op = op;
    req.key = std::move(key);
    req.value = std::move(value);
    batch.push_back(std::move(req));
  };
  add(Opcode::kPut, "alpha", "1");
  add(Opcode::kGet, "alpha");
  add(Opcode::kSync);
  add(Opcode::kPut, "beta", "2");
  add(Opcode::kPing);
  add(Opcode::kGet, "beta");
  add(Opcode::kStats);
  add(Opcode::kGet, "missing");

  std::vector<Response> responses;
  ASSERT_OK(client->Pipeline(batch, &responses));
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].op, batch[i].op) << "op " << i;
    if (i > 0) {
      // The client numbers the wire frames itself; order shows as a
      // strictly ascending seq across the mixed batch.
      EXPECT_EQ(responses[i].seq, responses[i - 1].seq + 1) << "op " << i;
    }
  }
  EXPECT_EQ(responses[1].value, "1");
  EXPECT_EQ(responses[5].value, "2");
  EXPECT_NE(responses[6].value.find("server.batches="), std::string::npos);
  EXPECT_EQ(responses[7].status, StatusCode::kNotFound);

  server.Stop();
}

TEST(NetBatchingTest, BatchSpanningConnectionCloseLosesNoSurvivor) {
  auto store = MemStore();
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 1;  // both connections share one core's batch
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto survivor = std::move(connected).value();

  for (int round = 0; round < 8; ++round) {
    // A doomed raw connection bursts PUT frames into the same core's batch
    // and slams shut without ever reading a response: its ops are in
    // flight when the close lands.
    const int doomed_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(doomed_fd, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(doomed_fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string wire;
    for (int i = 0; i < 32; ++i) {
      Request req;
      req.op = Opcode::kPut;
      req.seq = static_cast<uint32_t>(i);
      req.key = "doomed" + std::to_string(round) + "-" + std::to_string(i);
      req.value = std::string(512, 'd');
      EncodeRequest(req, &wire);
    }
    ASSERT_GT(::send(doomed_fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    ::close(doomed_fd);

    // The survivor's pipeline rides the same per-core rounds; every one of
    // its ops must still execute and come back in order.
    std::vector<Request> batch;
    std::vector<Response> responses;
    for (int i = 0; i < 32; ++i) {
      Request req;
      req.op = (i % 2 == 0) ? Opcode::kPut : Opcode::kGet;
      req.key = "live" + std::to_string(round) + "-" + std::to_string(i / 2);
      if (req.op == Opcode::kPut) {
        req.value = "v" + std::to_string(round);
      }
      batch.push_back(std::move(req));
    }
    ASSERT_OK(survivor->Pipeline(batch, &responses));
    ASSERT_EQ(responses.size(), batch.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(responses[i].status, StatusCode::kOk) << "round " << round << " op " << i;
      if (batch[i].op == Opcode::kGet) {
        EXPECT_EQ(responses[i].value, "v" + std::to_string(round));
      }
    }
  }

  server.Stop();
}

TEST(NetBatchingTest, ShedPolicyAnswersOverloadedWithRetryHint) {
  auto store = MemStore();
  ASSERT_OK(store->Put("hot", "value"));
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 1;
  server_options.max_inflight = 4;  // tiny bound: a deep burst must shed
  server_options.overload_policy = ServerOptions::OverloadPolicy::kShed;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();

  std::vector<Request> batch;
  for (int i = 0; i < 64; ++i) {
    Request req;
    req.op = Opcode::kGet;
    req.key = "hot";
    batch.push_back(std::move(req));
  }
  std::vector<Response> responses;
  ASSERT_OK(client->Pipeline(batch, &responses));
  ASSERT_EQ(responses.size(), batch.size());

  size_t ok = 0, shed = 0;
  for (const Response& resp : responses) {
    if (resp.status == StatusCode::kOk) {
      EXPECT_EQ(resp.value, "value");
      ++ok;
    } else {
      ASSERT_EQ(resp.status, StatusCode::kOverloaded);
      // Every shed reply carries a parseable retry-after-ms hint.
      EXPECT_GE(DecodeRetryAfter(resp.key), 1u);
      EXPECT_LE(DecodeRetryAfter(resp.key), 100u);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_GE(server.stats().ops_shed.load(), shed);

  // The shed is load shedding, not a ban: once the burst drains, the same
  // client's retry succeeds — the full shed/retry round trip.
  std::vector<Request> retry(batch.begin(), batch.begin() + 2);
  ASSERT_OK(client->Pipeline(retry, &responses));
  for (const Response& resp : responses) {
    EXPECT_EQ(resp.status, StatusCode::kOk);
  }

  server.Stop();
}

TEST(NetBatchingTest, DeferPolicyServesEveryOpUnderBurst) {
  auto store = MemStore();
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 1;
  server_options.max_inflight = 8;
  server_options.overload_policy = ServerOptions::OverloadPolicy::kDefer;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  // Defer trades latency for completeness: the same burst that sheds under
  // kShed must come back fully served, with zero kOverloaded replies.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t, &server, &failures] {
      auto connected = Client::Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        ++failures;
        return;
      }
      auto client = std::move(connected).value();
      std::vector<Request> batch;
      std::vector<Response> responses;
      for (int i = 0; i < 64; ++i) {
        Request req;
        req.op = Opcode::kPut;
        req.key = "defer" + std::to_string(t) + "-" + std::to_string(i);
        req.value = std::string(256, 'v');
        batch.push_back(std::move(req));
      }
      for (int round = 0; round < 4; ++round) {
        if (!client->Pipeline(batch, &responses).ok()) {
          ++failures;
          return;
        }
        for (const Response& resp : responses) {
          if (resp.status != StatusCode::kOk) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().ops_shed.load(), 0u);

  server.Stop();
}

TEST(NetBatchingTest, BatchCountersShowCrossConnectionBatching) {
  auto store = MemStore();
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  // Force cross-core routing: Forwarding::kAuto would fall back to
  // connection-affine execution on single-CPU CI runners, and these tests
  // exist to exercise the forwarded path.
  server_options.forwarding = ServerOptions::Forwarding::kOn;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &server, &failures] {
      auto connected = Client::Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        ++failures;
        return;
      }
      auto client = std::move(connected).value();
      std::vector<Request> batch;
      std::vector<Response> responses;
      for (int round = 0; round < 20; ++round) {
        batch.clear();
        for (int i = 0; i < 32; ++i) {
          Request req;
          if (i % 4 == 0) {
            req.op = Opcode::kPut;
            req.key = "bc" + std::to_string(t) + "-" + std::to_string(i);
            req.value = "v";
          } else {
            req.op = Opcode::kGet;
            req.key = "bc" + std::to_string(t) + "-" + std::to_string(i % 4);
          }
          batch.push_back(std::move(req));
        }
        if (!client->Pipeline(batch, &responses).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Deep pipelines decode many ops per epoll round, so batches must carry
  // more than one op on average — the whole point of the shared lock
  // acquisition and group commit.
  const uint64_t batches = server.stats().batches.load();
  const uint64_t batched_ops = server.stats().batched_ops.load();
  EXPECT_GT(batches, 0u);
  EXPECT_GT(batched_ops, batches);

  const std::string stats_text = server.RenderStatsText();
  EXPECT_NE(stats_text.find("server.batches="), std::string::npos);
  EXPECT_NE(stats_text.find("server.batch_size.count="), std::string::npos);
  EXPECT_NE(stats_text.find("server.core.0.batches="), std::string::npos);
  EXPECT_NE(stats_text.find("server.core.1.batches="), std::string::npos);
  const std::string metrics_text = server.RenderMetricsText();
  EXPECT_NE(metrics_text.find("hashkit_batches_total"), std::string::npos);
  EXPECT_NE(metrics_text.find("hashkit_batch_size_ops"), std::string::npos);

  server.Stop();
}

TEST(NetBatchingTest, PipelineLargeValuesSurvivePartialWrites) {
  auto store = MemStore();
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  // Force cross-core routing: Forwarding::kAuto would fall back to
  // connection-affine execution on single-CPU CI runners, and these tests
  // exist to exercise the forwarded path.
  server_options.forwarding = ServerOptions::Forwarding::kOn;
  Server server(store.get(), server_options);
  ASSERT_OK(server.Start());

  auto connected = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();

  // ~8MB of request bytes in one pipeline: far past any socket buffer, so
  // the client's writev loop must take partial writes mid-iovec and
  // opportunistically drain responses to avoid deadlocking against the
  // server's own flow control.
  auto value_of = [](int i) {
    return std::string(256 * 1024, static_cast<char>('a' + (i % 26)));
  };
  std::vector<Request> batch;
  for (int i = 0; i < 32; ++i) {
    Request req;
    req.op = Opcode::kPut;
    req.key = "big" + std::to_string(i);
    req.value = value_of(i);
    batch.push_back(std::move(req));
  }
  std::vector<Response> responses;
  ASSERT_OK(client->Pipeline(batch, &responses));
  for (const Response& resp : responses) {
    ASSERT_EQ(resp.status, StatusCode::kOk);
  }

  // Read them all back through one pipeline too (large responses stress
  // the server's zero-copy OutQueue + partial sendmsg path).
  batch.clear();
  for (int i = 0; i < 32; ++i) {
    Request req;
    req.op = Opcode::kGet;
    req.key = "big" + std::to_string(i);
    batch.push_back(std::move(req));
  }
  ASSERT_OK(client->Pipeline(batch, &responses));
  ASSERT_EQ(responses.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(responses[static_cast<size_t>(i)].status, StatusCode::kOk);
    ASSERT_EQ(responses[static_cast<size_t>(i)].value, value_of(i)) << "key big" << i;
  }

  server.Stop();
}

// TSan hammer (runs under the `stress` label): several cores batching
// writes into a shared-nothing partitioned disk store with synchronous
// durability — each per-core batch shares one WAL group-commit fsync, and
// forwarding moves ops (and their completions) across core threads.
TEST(NetBatchingTest, WalGroupCommitHammerAcrossCores) {
  constexpr int kShards = 4;
  constexpr int kThreads = 4;
  constexpr int kKeys = 96;
  const std::string path = TempPath("net_batch_wal");
  for (int s = 0; s < kShards; ++s) {
    std::remove((path + ".s" + std::to_string(s)).c_str());
    std::remove((path + ".s" + std::to_string(s) + ".wal").c_str());
  }

  StoreOptions store_options;
  store_options.path = path;
  store_options.truncate = true;
  store_options.shards = kShards;
  store_options.durability = Durability::kSync;
  auto opened = OpenStore(StoreKind::kHashDisk, store_options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<KvStore> store = std::move(opened).value();

  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  // Force cross-core routing: Forwarding::kAuto would fall back to
  // connection-affine execution on single-CPU CI runners, and these tests
  // exist to exercise the forwarded path.
  server_options.forwarding = ServerOptions::Forwarding::kOn;
  auto server = std::make_unique<Server>(store.get(), server_options);
  ASSERT_OK(server->Start());
  const uint16_t port = server->port();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, port, &failures] {
      auto connected = Client::Connect("127.0.0.1", port);
      if (!connected.ok()) {
        ++failures;
        return;
      }
      auto client = std::move(connected).value();
      std::vector<Request> batch;
      std::vector<Response> responses;
      for (int i = 0; i < kKeys;) {
        batch.clear();
        while (batch.size() < 16 && i < kKeys) {
          Request req;
          req.op = Opcode::kPut;
          req.key = "wal" + std::to_string(t) + "-" + std::to_string(i);
          req.value = "durable" + std::to_string(i);
          batch.push_back(std::move(req));
          ++i;
        }
        if (!client->Pipeline(batch, &responses).ok()) {
          ++failures;
          return;
        }
        for (const Response& resp : responses) {
          if (resp.status != StatusCode::kOk) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(failures.load(), 0);
  EXPECT_GT(server->stats().batches.load(), 0u);
  server->Stop();
  server.reset();
  store.reset();

  // What the group commit acknowledged must be on disk after a reopen.
  store_options.truncate = false;
  auto reopened = OpenStore(StoreKind::kHashDisk, store_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto verify = std::move(reopened).value();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeys; ++i) {
      std::string value;
      ASSERT_OK(verify->Get("wal" + std::to_string(t) + "-" + std::to_string(i), &value));
      EXPECT_EQ(value, "durable" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace hashkit
