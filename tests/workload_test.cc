// Tests for the synthetic workload generators and the timing harness.

#include <gtest/gtest.h>

#include <set>

#include "src/workload/dictionary.h"
#include "src/workload/kv.h"
#include "src/workload/passwd.h"
#include "src/workload/timing.h"

namespace hashkit {
namespace workload {
namespace {

TEST(DictionaryTest, GeneratesRequestedUniqueWords) {
  const auto words = GenerateDictionaryWords(5000, 1);
  EXPECT_EQ(words.size(), 5000u);
  const std::set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), 5000u);
}

TEST(DictionaryTest, DeterministicForSeed) {
  EXPECT_EQ(GenerateDictionaryWords(1000, 7), GenerateDictionaryWords(1000, 7));
  EXPECT_NE(GenerateDictionaryWords(1000, 7), GenerateDictionaryWords(1000, 8));
}

TEST(DictionaryTest, WordShapeMatchesEnglishProfile) {
  const auto words = GenerateDictionaryWords(20000, 2);
  size_t total_len = 0;
  for (const auto& word : words) {
    EXPECT_GE(word.size(), 2u);
    EXPECT_LE(word.size(), 40u);
    for (char c : word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
    total_len += word.size();
  }
  const double mean = static_cast<double>(total_len) / words.size();
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 13.0);
}

TEST(DictionaryTest, WorkloadValuesAreAsciiIntegers) {
  const auto workload = MakeDictionaryWorkload(100);
  ASSERT_EQ(workload.values.size(), 100u);
  EXPECT_EQ(workload.values.front(), "1");
  EXPECT_EQ(workload.values.back(), "100");
  EXPECT_GT(AveragePairLength(workload), 0.0);
}

TEST(DictionaryTest, PaperSizeDefault) {
  const auto workload = MakeDictionaryWorkload();
  EXPECT_EQ(workload.keys.size(), kPaperDictionarySize);
}

TEST(PasswdTest, TwoRecordsPerAccount) {
  const auto workload = MakePasswdWorkload(300);
  ASSERT_EQ(workload.records.size(), 600u);
  // Keys unique across both record kinds.
  std::set<std::string> keys;
  for (const auto& record : workload.records) {
    EXPECT_TRUE(keys.insert(record.key).second) << record.key;
  }
}

TEST(PasswdTest, RecordStructureMatchesPaper) {
  const auto workload = MakePasswdWorkload(10);
  // Even records: login -> remainder; odd records: uid -> whole entry.
  for (size_t i = 0; i < workload.records.size(); i += 2) {
    const auto& by_login = workload.records[i];
    const auto& by_uid = workload.records[i + 1];
    // uid key is numeric.
    for (char c : by_uid.key) {
      EXPECT_TRUE(c >= '0' && c <= '9');
    }
    // The full entry is login + ":" + remainder.
    EXPECT_EQ(by_uid.value, by_login.key + ":" + by_login.value);
    // passwd(5) has 7 colon-separated fields.
    EXPECT_EQ(std::count(by_uid.value.begin(), by_uid.value.end(), ':'), 6);
  }
}

TEST(PasswdTest, Deterministic) {
  const auto a = MakePasswdWorkload(50, 9);
  const auto b = MakePasswdWorkload(50, 9);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].key, b.records[i].key);
    EXPECT_EQ(a.records[i].value, b.records[i].value);
  }
}

TEST(KvTest, RespectsSpec) {
  KvSpec spec;
  spec.count = 500;
  spec.min_key_len = 3;
  spec.max_key_len = 9;
  spec.min_val_len = 0;
  spec.max_val_len = 4;
  const auto pairs = GenerateKv(spec);
  ASSERT_EQ(pairs.size(), 500u);
  std::set<std::string> keys;
  for (const auto& pair : pairs) {
    EXPECT_GE(pair.key.size(), 3u);
    EXPECT_LE(pair.key.size(), 9u);
    EXPECT_LE(pair.value.size(), 4u);
    EXPECT_TRUE(keys.insert(pair.key).second);
  }
}

TEST(TimingTest, MeasuresElapsedTime) {
  const TimingSample sample = MeasureOnce([] {
    volatile uint64_t x = 0;
    for (int i = 0; i < 2000000; ++i) {
      x += i;
    }
  });
  EXPECT_GT(sample.elapsed_sec, 0.0);
  EXPECT_GE(sample.user_sec + sample.sys_sec, 0.0);
}

TEST(TimingTest, AveragingRunsSetupEachTime) {
  int setups = 0;
  int bodies = 0;
  (void)MeasureAveraged(5, [&] { ++setups; }, [&] { ++bodies; });
  EXPECT_EQ(setups, 5);
  EXPECT_EQ(bodies, 5);
}

TEST(TimingTest, PercentImprovementMatchesPaperFormula) {
  // % = 100 * (old - new) / old; e.g. Figure 8a's read row: 21.2 -> 4.0.
  EXPECT_NEAR(PercentImprovement(21.2, 4.0), 81.1, 0.1);
  EXPECT_NEAR(PercentImprovement(1.9, 2.7), -42.1, 0.1);  // ndbm's seq user win
  EXPECT_EQ(PercentImprovement(0.0, 5.0), 0.0);
}

TEST(TimingTest, SampleArithmetic) {
  TimingSample a{1.0, 2.0, 3.0};
  a += TimingSample{1.0, 2.0, 3.0};
  const TimingSample avg = a / 2.0;
  EXPECT_DOUBLE_EQ(avg.user_sec, 1.0);
  EXPECT_DOUBLE_EQ(avg.sys_sec, 2.0);
  EXPECT_DOUBLE_EQ(avg.elapsed_sec, 3.0);
  EXPECT_FALSE(FormatSample(avg).empty());
}

}  // namespace
}  // namespace workload
}  // namespace hashkit
