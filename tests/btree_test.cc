// Tests for the B+-tree access method (src/btree).

#include "src/btree/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <string>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace btree {
namespace {

BtOptions SmallOptions() {
  BtOptions options;
  options.page_size = 512;
  options.cachesize = 256 * 1024;
  return options;
}

TEST(BTreeBasic, PutGetDelete) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(tree->Put("beta", "2"));
  ASSERT_OK(tree->Put("alpha", "1"));
  ASSERT_OK(tree->Put("gamma", "3"));
  std::string value;
  ASSERT_OK(tree->Get("alpha", &value));
  EXPECT_EQ(value, "1");
  ASSERT_OK(tree->Get("gamma", &value));
  EXPECT_EQ(value, "3");
  EXPECT_TRUE(tree->Get("delta", &value).IsNotFound());
  ASSERT_OK(tree->Delete("beta"));
  EXPECT_TRUE(tree->Get("beta", &value).IsNotFound());
  EXPECT_TRUE(tree->Delete("beta").IsNotFound());
  EXPECT_EQ(tree->size(), 2u);
  ASSERT_OK(tree->CheckIntegrity());
}

TEST(BTreeBasic, OverwriteSemantics) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(tree->Put("k", "v1"));
  ASSERT_OK(tree->Put("k", "v2"));
  std::string value;
  ASSERT_OK(tree->Get("k", &value));
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(tree->Put("k", "v3", /*overwrite=*/false).IsExists());
  ASSERT_OK(tree->Get("k", &value));
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(tree->size(), 1u);
}

TEST(BTreeBasic, EmptyKeyAndValue) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(tree->Put("", "empty key"));
  ASSERT_OK(tree->Put("ev", ""));
  std::string value;
  ASSERT_OK(tree->Get("", &value));
  EXPECT_EQ(value, "empty key");
  ASSERT_OK(tree->Get("ev", &value));
  EXPECT_EQ(value, "");
}

TEST(BTreeBasic, OversizedKeyRejected) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  const std::string long_key(512 / 8 + 1, 'k');
  EXPECT_EQ(tree->Put(long_key, "v").code(), StatusCode::kInvalidArgument);
  ASSERT_OK(tree->Put(std::string(512 / 8, 'k'), "v"));  // at the limit: fine
}

TEST(BTreeBasic, RejectsBadPageSize) {
  BtOptions options;
  options.page_size = 300;
  EXPECT_FALSE(BTree::OpenInMemory(options).ok());
  options.page_size = 256;  // below the btree minimum
  EXPECT_FALSE(BTree::OpenInMemory(options).ok());
}

class BTreeGrowthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeGrowthTest, ThousandsOfSortedAndUnsortedInserts) {
  BtOptions options;
  options.page_size = GetParam();
  auto sorted_tree = std::move(BTree::OpenInMemory(options).value());
  auto random_tree = std::move(BTree::OpenInMemory(options).value());

  constexpr int kCount = 5000;
  std::vector<int> order(kCount);
  for (int i = 0; i < kCount; ++i) {
    order[i] = i;
  }
  Rng rng(GetParam());
  for (int i = kCount - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
  }

  char key[16];
  for (int i = 0; i < kCount; ++i) {
    std::snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_OK(sorted_tree->Put(key, std::to_string(i)));
    std::snprintf(key, sizeof(key), "k%08d", order[i]);
    ASSERT_OK(random_tree->Put(key, std::to_string(order[i])));
  }
  EXPECT_EQ(sorted_tree->size(), static_cast<uint64_t>(kCount));
  EXPECT_EQ(random_tree->size(), static_cast<uint64_t>(kCount));
  EXPECT_GT(sorted_tree->height(), 1u);
  ASSERT_OK(sorted_tree->CheckIntegrity());
  ASSERT_OK(random_tree->CheckIntegrity());

  std::string value;
  for (int i = 0; i < kCount; ++i) {
    std::snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_OK(sorted_tree->Get(key, &value)) << key;
    ASSERT_EQ(value, std::to_string(i));
    ASSERT_OK(random_tree->Get(key, &value)) << key;
    ASSERT_EQ(value, std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreeGrowthTest, ::testing::Values(512u, 1024u, 4096u),
                         [](const auto& param_info) { return "p" + std::to_string(param_info.param); });

TEST(BTreeCursor, InOrderScan) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  std::map<std::string, std::string> model;
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::string key = rng.AsciiString(rng.Range(1, 20));
    std::string value = std::to_string(i);
    (void)tree->Put(key, value);
    model[key] = value;
  }
  // model overwrites mirror tree overwrites; sizes must agree.
  EXPECT_EQ(tree->size(), model.size());

  BtCursor cursor = tree->NewCursor();
  std::string key;
  std::string value;
  auto it = model.begin();
  Status st = cursor.Next(&key, &value);
  while (st.ok()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(key, it->first);    // exact sorted order
    EXPECT_EQ(value, it->second);
    ++it;
    st = cursor.Next(&key, &value);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(it, model.end());
}

TEST(BTreeCursor, SeekPositionsAtLowerBound) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_OK(tree->Put(key, "v"));
  }
  BtCursor cursor = tree->NewCursor();
  ASSERT_OK(cursor.Seek("k051"));  // absent; next is k052
  std::string key, value;
  ASSERT_OK(cursor.Next(&key, &value));
  EXPECT_EQ(key, "k052");
  ASSERT_OK(cursor.Seek("k052"));  // present
  ASSERT_OK(cursor.Next(&key, &value));
  EXPECT_EQ(key, "k052");
  // Seeking past the end yields NotFound on Next.
  ASSERT_OK(cursor.Seek("zzz"));
  EXPECT_TRUE(cursor.Next(&key, &value).IsNotFound());
}

TEST(BTreeCursor, RangeQuery) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  for (int i = 0; i < 1000; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_OK(tree->Put(key, std::to_string(i)));
  }
  // Range [k0100, k0200): exactly 100 keys.
  BtCursor cursor = tree->NewCursor();
  ASSERT_OK(cursor.Seek("k0100"));
  int count = 0;
  std::string key, value;
  while (cursor.Next(&key, &value).ok() && key < "k0200") {
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(BTreeBigValues, LargeValueRoundTrip) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  const std::string big(100000, 'B');
  ASSERT_OK(tree->Put("big", big));
  EXPECT_EQ(tree->stats().big_values, 1u);
  std::string value;
  ASSERT_OK(tree->Get("big", &value));
  EXPECT_EQ(value, big);
  ASSERT_OK(tree->CheckIntegrity());
  // Replace with small, then big again: chains must recycle.
  ASSERT_OK(tree->Put("big", "small"));
  ASSERT_OK(tree->Put("big", big));
  ASSERT_OK(tree->CheckIntegrity());
  EXPECT_GT(tree->stats().pages_recycled, 0u);
  // Delete frees the chain.
  ASSERT_OK(tree->Delete("big"));
  ASSERT_OK(tree->CheckIntegrity());
}

TEST(BTreeBigValues, ManyBigValuesAmongSmall) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  Rng rng(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::string value =
        rng.Bernoulli(0.2) ? rng.ByteString(rng.Range(200, 4000)) : rng.ByteString(20);
    ASSERT_OK(tree->Put(key, value));
    model[key] = value;
  }
  ASSERT_OK(tree->CheckIntegrity());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(tree->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
}

TEST(BTreePersistence, CloseAndReopen) {
  const std::string path = TempPath("bt_persist");
  std::map<std::string, std::string> model;
  {
    auto tree = std::move(BTree::Open(path, SmallOptions(), /*truncate=*/true).value());
    Rng rng(6);
    for (int i = 0; i < 3000; ++i) {
      const std::string key = "p" + rng.AsciiString(10);
      const std::string value = std::to_string(i);
      ASSERT_OK(tree->Put(key, value));
      model[key] = value;
    }
    const std::string big(20000, 'P');
    ASSERT_OK(tree->Put("bigpersist", big));
    model["bigpersist"] = big;
    ASSERT_OK(tree->Sync());
  }
  auto tree = std::move(BTree::Open(path, SmallOptions()).value());
  EXPECT_EQ(tree->size(), model.size());
  ASSERT_OK(tree->CheckIntegrity());
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_OK(tree->Get(k, &value)) << k;
    ASSERT_EQ(value, v);
  }
  // Scans survive reopen too.
  BtCursor cursor = tree->NewCursor();
  std::string key;
  auto it = model.begin();
  while (cursor.Next(&key, &value).ok()) {
    ASSERT_EQ(key, it->first);
    ++it;
  }
  EXPECT_EQ(it, model.end());
}

TEST(BTreePersistence, NotABtreeFileRejected) {
  const std::string path = TempPath("bt_nottree");
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(1000, 'x');
  }
  EXPECT_FALSE(BTree::Open(path, SmallOptions()).ok());
}

TEST(BTreeProperty, RandomOpsMatchReference) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  Rng rng(31);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 6000; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(500));
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {
      const std::string value =
          rng.Bernoulli(0.1) ? rng.ByteString(rng.Range(200, 2000)) : rng.ByteString(30);
      ASSERT_OK(tree->Put(key, value));
      model[key] = value;
    } else if (op < 8) {
      const Status st = tree->Delete(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      std::string value;
      const Status st = tree->Get(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    ASSERT_EQ(tree->size(), model.size()) << "step " << step;
    if (step % 1000 == 999) {
      ASSERT_OK(tree->CheckIntegrity()) << "step " << step;
    }
  }
  // Final ordered comparison via cursor.
  ASSERT_OK(tree->CheckIntegrity());
  BtCursor cursor = tree->NewCursor();
  std::string key, value;
  auto it = model.begin();
  while (cursor.Next(&key, &value).ok()) {
    ASSERT_NE(it, model.end());
    ASSERT_EQ(key, it->first);
    ASSERT_EQ(value, it->second);
    ++it;
  }
  EXPECT_EQ(it, model.end());
}

TEST(BTreeProperty, DeleteEverythingThenReuse) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_OK(tree->Put("dk" + std::to_string(i), std::string(40, 'x')));
    }
    for (int i = 0; i < 2000; ++i) {
      ASSERT_OK(tree->Delete("dk" + std::to_string(i)));
    }
    EXPECT_EQ(tree->size(), 0u);
    ASSERT_OK(tree->CheckIntegrity());
  }
}

TEST(BTreeProperty, SequentialDescendingInserts) {
  // Descending order stresses the leftmost-split path.
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  char key[16];
  for (int i = 4999; i >= 0; --i) {
    std::snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_OK(tree->Put(key, "v"));
  }
  ASSERT_OK(tree->CheckIntegrity());
  BtCursor cursor = tree->NewCursor();
  std::string k, v;
  int expect = 0;
  while (cursor.Next(&k, &v).ok()) {
    std::snprintf(key, sizeof(key), "k%08d", expect++);
    ASSERT_EQ(k, key);
  }
  EXPECT_EQ(expect, 5000);
}

TEST(BTreePersistenceProperty, RandomOpsSurviveReopenCycles) {
  const std::string path = TempPath("bt_prop_persist");
  BtOptions options;
  options.page_size = 512;
  Rng rng(888);
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 5; ++cycle) {
    auto tree = std::move(BTree::Open(path, options, /*truncate=*/cycle == 0).value());
    ASSERT_EQ(tree->size(), model.size()) << "cycle " << cycle;
    ASSERT_OK(tree->CheckIntegrity());
    for (int step = 0; step < 800; ++step) {
      const std::string key = "pc" + std::to_string(rng.Uniform(200));
      if (rng.Bernoulli(0.6)) {
        const std::string value =
            rng.Bernoulli(0.1) ? rng.ByteString(rng.Range(200, 1500)) : rng.ByteString(30);
        ASSERT_OK(tree->Put(key, value));
        model[key] = value;
      } else {
        const Status st = tree->Delete(key);
        if (model.erase(key)) {
          ASSERT_OK(st);
        } else {
          ASSERT_TRUE(st.IsNotFound());
        }
      }
    }
    ASSERT_OK(tree->Sync());
  }
  auto tree = std::move(BTree::Open(path, options).value());
  ASSERT_OK(tree->CheckIntegrity());
  BtCursor cursor = tree->NewCursor();
  std::string key, value;
  auto it = model.begin();
  while (cursor.Next(&key, &value).ok()) {
    ASSERT_NE(it, model.end());
    ASSERT_EQ(key, it->first);
    ASSERT_EQ(value, it->second);
    ++it;
  }
  EXPECT_EQ(it, model.end());
}

TEST(BTreeStats, SplitCountersTrack) {
  auto tree = std::move(BTree::OpenInMemory(SmallOptions()).value());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK(tree->Put("s" + std::to_string(i), std::string(30, 'v')));
  }
  EXPECT_GT(tree->stats().leaf_splits, 50u);
  EXPECT_GT(tree->stats().root_splits, 0u);
  EXPECT_GE(tree->height(), 2u);
}

}  // namespace
}  // namespace btree
}  // namespace hashkit
