// Unit and integration tests for the core extended linear hash table.

#include "src/core/hash_table.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>

#include "src/util/random.h"
#include "src/workload/dictionary.h"
#include "tests/test_util.h"

namespace hashkit {
namespace {

HashOptions SmallOptions() {
  HashOptions opts;
  opts.bsize = 256;
  opts.ffactor = 8;
  opts.cachesize = 64 * 1024;
  return opts;
}

TEST(HashTableBasic, PutGetDelete) {
  auto result = HashTable::OpenInMemory(SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& table = *result.value();

  ASSERT_OK(table.Put("alpha", "one"));
  ASSERT_OK(table.Put("beta", "two"));
  std::string value;
  ASSERT_OK(table.Get("alpha", &value));
  EXPECT_EQ(value, "one");
  ASSERT_OK(table.Get("beta", &value));
  EXPECT_EQ(value, "two");
  EXPECT_EQ(table.size(), 2u);

  ASSERT_OK(table.Delete("alpha"));
  EXPECT_TRUE(table.Get("alpha", &value).IsNotFound());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Delete("alpha").IsNotFound());
  ASSERT_OK(table.CheckIntegrity());
}

TEST(HashTableBasic, OverwriteReplacesValue) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(table->Put("key", "v1"));
  ASSERT_OK(table->Put("key", "v2-longer-than-before"));
  std::string value;
  ASSERT_OK(table->Get("key", &value));
  EXPECT_EQ(value, "v2-longer-than-before");
  EXPECT_EQ(table->size(), 1u);
}

TEST(HashTableBasic, NoOverwriteReportsExists) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(table->Put("key", "v1", /*overwrite=*/false));
  EXPECT_TRUE(table->Put("key", "v2", /*overwrite=*/false).IsExists());
  std::string value;
  ASSERT_OK(table->Get("key", &value));
  EXPECT_EQ(value, "v1");
}

TEST(HashTableBasic, EmptyKeyAndEmptyValue) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(table->Put("", "empty-key"));
  ASSERT_OK(table->Put("empty-value", ""));
  std::string value;
  ASSERT_OK(table->Get("", &value));
  EXPECT_EQ(value, "empty-key");
  ASSERT_OK(table->Get("empty-value", &value));
  EXPECT_EQ(value, "");
}

TEST(HashTableBasic, BinaryKeysAndValues) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  const std::string key("\x00\x01\xff\x00", 4);
  const std::string val("\xde\xad\x00\xbe\xef", 5);
  ASSERT_OK(table->Put(key, val));
  std::string out;
  ASSERT_OK(table->Get(key, &out));
  EXPECT_EQ(out, val);
}

TEST(HashTableBasic, ContainsAndMissingKey) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(table->Put("present", "yes"));
  EXPECT_TRUE(table->Contains("present"));
  EXPECT_FALSE(table->Contains("absent"));
  EXPECT_TRUE(table->Get("absent", nullptr).IsNotFound());
}

TEST(HashTableBasic, RejectsBadOptions) {
  HashOptions opts = SmallOptions();
  opts.bsize = 100;  // not a power of two
  EXPECT_FALSE(HashTable::OpenInMemory(opts).ok());
  opts = SmallOptions();
  opts.bsize = 16;  // too small
  EXPECT_FALSE(HashTable::OpenInMemory(opts).ok());
  opts = SmallOptions();
  opts.ffactor = 0;
  EXPECT_FALSE(HashTable::OpenInMemory(opts).ok());
}

// Inserting enough keys to force many splits, then verifying every key.
class HashTableSplitTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, SplitPolicy>> {};

TEST_P(HashTableSplitTest, ThousandsOfInsertsStayConsistent) {
  const auto [bsize, ffactor, policy] = GetParam();
  HashOptions opts;
  opts.bsize = bsize;
  opts.ffactor = ffactor;
  opts.cachesize = 256 * 1024;
  opts.split_policy = policy;
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  constexpr int kCount = 3000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_OK(table->Put("key-" + std::to_string(i), "value-" + std::to_string(i * 7)));
  }
  EXPECT_EQ(table->size(), static_cast<uint64_t>(kCount));
  ASSERT_OK(table->CheckIntegrity());
  EXPECT_GT(table->bucket_count(), 1u);

  std::string value;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_OK(table->Get("key-" + std::to_string(i), &value)) << "key-" << i;
    ASSERT_EQ(value, "value-" + std::to_string(i * 7));
  }

  // Delete every third key and re-verify.
  for (int i = 0; i < kCount; i += 3) {
    ASSERT_OK(table->Delete("key-" + std::to_string(i)));
  }
  ASSERT_OK(table->CheckIntegrity());
  for (int i = 0; i < kCount; ++i) {
    const Status st = table->Get("key-" + std::to_string(i), &value);
    if (i % 3 == 0) {
      ASSERT_TRUE(st.IsNotFound()) << "key-" << i;
    } else {
      ASSERT_OK(st);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HashTableSplitTest,
    ::testing::Combine(::testing::Values(64u, 128u, 256u, 1024u),
                       ::testing::Values(1u, 8u, 32u),
                       ::testing::Values(SplitPolicy::kHybrid, SplitPolicy::kControlledOnly,
                                         SplitPolicy::kUncontrolledOnly)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t, SplitPolicy>>& param_info) {
      return "b" + std::to_string(std::get<0>(param_info.param)) + "_f" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param)));
    });

TEST(HashTableBigPairs, PairLargerThanPage) {
  HashOptions opts = SmallOptions();
  opts.bsize = 128;
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  const std::string big_value(10000, 'V');
  ASSERT_OK(table->Put("big", big_value));
  std::string out;
  ASSERT_OK(table->Get("big", &out));
  EXPECT_EQ(out, big_value);
  ASSERT_OK(table->CheckIntegrity());
  EXPECT_EQ(table->stats().big_pairs_stored, 1u);
}

TEST(HashTableBigPairs, BigKeyAndBigValue) {
  HashOptions opts = SmallOptions();
  opts.bsize = 64;
  auto table = std::move(HashTable::OpenInMemory(opts).value());

  const std::string big_key(500, 'K');
  const std::string big_value(5000, 'v');
  ASSERT_OK(table->Put(big_key, big_value));
  std::string out;
  ASSERT_OK(table->Get(big_key, &out));
  EXPECT_EQ(out, big_value);

  // A key sharing the 32-byte prefix but differing later must not match.
  std::string cousin = big_key;
  cousin.back() = 'X';
  EXPECT_TRUE(table->Get(cousin, &out).IsNotFound());

  ASSERT_OK(table->Delete(big_key));
  EXPECT_TRUE(table->Get(big_key, &out).IsNotFound());
  ASSERT_OK(table->CheckIntegrity());
  // The chain pages must have been reclaimed.
  EXPECT_EQ(table->stats().ovfl_pages_freed, table->stats().ovfl_pages_alloced);
}

TEST(HashTableBigPairs, ReplaceBigWithSmallAndBack) {
  HashOptions opts = SmallOptions();
  opts.bsize = 128;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  const std::string big(4000, 'B');
  ASSERT_OK(table->Put("k", big));
  ASSERT_OK(table->Put("k", "small"));
  std::string out;
  ASSERT_OK(table->Get("k", &out));
  EXPECT_EQ(out, "small");
  ASSERT_OK(table->Put("k", big));
  ASSERT_OK(table->Get("k", &out));
  EXPECT_EQ(out, big);
  ASSERT_OK(table->CheckIntegrity());
}

TEST(HashTableBigPairs, ManyBigPairsAcrossSplits) {
  HashOptions opts = SmallOptions();
  opts.bsize = 128;
  opts.ffactor = 4;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  Rng rng(3);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 120; ++i) {
    std::string key = "bigkey-" + std::to_string(i) + "-" + rng.AsciiString(40);
    std::string value = rng.ByteString(rng.Range(200, 3000));
    ASSERT_OK(table->Put(key, value));
    reference[key] = value;
    // Interleave small pairs so the buckets also split.
    ASSERT_OK(table->Put("small-" + std::to_string(i), "x"));
    reference["small-" + std::to_string(i)] = "x";
  }
  ASSERT_OK(table->CheckIntegrity());
  std::string out;
  for (const auto& [key, value] : reference) {
    ASSERT_OK(table->Get(key, &out)) << key;
    ASSERT_EQ(out, value);
  }
}

TEST(HashTableSeq, ScanReturnsEveryPairExactlyOnce) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "seq-" + std::to_string(i);
    const std::string value = std::to_string(i);
    ASSERT_OK(table->Put(key, value));
    reference[key] = value;
  }
  // Include one big pair in the scan.
  const std::string big(2000, 'Z');
  ASSERT_OK(table->Put("bigseq", big));
  reference["bigseq"] = big;

  std::map<std::string, std::string> scanned;
  std::string key;
  std::string value;
  Status st = table->Seq(&key, &value, /*first=*/true);
  while (st.ok()) {
    EXPECT_TRUE(scanned.emplace(key, value).second) << "duplicate " << key;
    st = table->Seq(&key, &value, /*first=*/false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(scanned, reference);
}

TEST(HashTableSeq, CursorIndependentOfSeq) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(table->Put("k" + std::to_string(i), "v"));
  }
  Cursor a = table->NewCursor();
  Cursor b = table->NewCursor();
  std::string k1, k2, v;
  ASSERT_OK(a.Next(&k1, &v));
  ASSERT_OK(a.Next(&k1, &v));
  ASSERT_OK(b.Next(&k2, &v));
  // b starts from the beginning regardless of a's position.
  Cursor c = table->NewCursor();
  std::string k3;
  ASSERT_OK(c.Next(&k3, &v));
  EXPECT_EQ(k2, k3);
}

TEST(HashTableSeq, EmptyTableScan) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  std::string key;
  std::string value;
  EXPECT_TRUE(table->Seq(&key, &value, true).IsNotFound());
}

TEST(HashTablePersistence, CloseAndReopen) {
  const std::string path = TempPath("persist");
  std::map<std::string, std::string> reference;
  {
    auto table = std::move(HashTable::Open(path, SmallOptions(), /*truncate=*/true).value());
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "persist-" + std::to_string(i);
      const std::string value = std::to_string(i * 31);
      ASSERT_OK(table->Put(key, value));
      reference[key] = value;
    }
    const std::string big(9000, 'P');
    ASSERT_OK(table->Put("bigpersist", big));
    reference["bigpersist"] = big;
    ASSERT_OK(table->Sync());
  }
  {
    auto result = HashTable::Open(path, SmallOptions());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto& table = *result.value();
    EXPECT_EQ(table.size(), reference.size());
    ASSERT_OK(table.CheckIntegrity());
    std::string value;
    for (const auto& [k, v] : reference) {
      ASSERT_OK(table.Get(k, &value)) << k;
      ASSERT_EQ(value, v);
    }
    // Mutations after reopen work too.
    ASSERT_OK(table.Put("after-reopen", "new"));
    ASSERT_OK(table.Delete("persist-0"));
    ASSERT_OK(table.CheckIntegrity());
  }
  {
    // ... and survive another reopen.
    auto table = std::move(HashTable::Open(path, SmallOptions()).value());
    EXPECT_TRUE(table->Contains("after-reopen"));
    EXPECT_FALSE(table->Contains("persist-0"));
  }
}

TEST(HashTablePersistence, GeometryComesFromHeaderOnReopen) {
  const std::string path = TempPath("geometry");
  {
    HashOptions opts = SmallOptions();
    opts.bsize = 512;
    opts.ffactor = 16;
    auto table = std::move(HashTable::Open(path, opts, true).value());
    ASSERT_OK(table->Put("a", "b"));
    ASSERT_OK(table->Sync());
  }
  HashOptions different = SmallOptions();
  different.bsize = 4096;  // ignored: header wins
  auto table = std::move(HashTable::Open(path, different).value());
  EXPECT_EQ(table->meta().bsize, 512u);
  EXPECT_EQ(table->meta().ffactor, 16u);
  EXPECT_TRUE(table->Contains("a"));
}

TEST(HashTablePersistence, WrongHashFunctionIsRejected) {
  const std::string path = TempPath("hashcheck");
  {
    HashOptions opts = SmallOptions();
    opts.hash_id = HashFuncId::kDefault;
    auto table = std::move(HashTable::Open(path, opts, true).value());
    ASSERT_OK(table->Put("a", "b"));
    ASSERT_OK(table->Sync());
  }
  HashOptions wrong = SmallOptions();
  wrong.custom_hash = &HashFnv1a;  // not the function the table was built with
  const auto result = HashTable::Open(path, wrong);
  EXPECT_FALSE(result.ok());
}

TEST(HashTablePersistence, CustomHashFunctionRoundTrip) {
  const std::string path = TempPath("customhash");
  HashOptions opts = SmallOptions();
  opts.custom_hash = &HashDjb2;
  {
    auto table = std::move(HashTable::Open(path, opts, true).value());
    for (int i = 0; i < 300; ++i) {
      ASSERT_OK(table->Put("ch-" + std::to_string(i), std::to_string(i)));
    }
    ASSERT_OK(table->Sync());
  }
  // Reopening without the custom function fails cleanly...
  EXPECT_FALSE(HashTable::Open(path, SmallOptions()).ok());
  // ...and succeeds with it.
  auto table = std::move(HashTable::Open(path, opts).value());
  ASSERT_OK(table->CheckIntegrity());
  EXPECT_TRUE(table->Contains("ch-42"));
}

TEST(HashTablePersistence, NotAHashFileIsRejected) {
  const std::string path = TempPath("nothash");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a hash file, just bytes........................";
  }
  EXPECT_FALSE(HashTable::Open(path, SmallOptions()).ok());
}

TEST(HashTablePresized, KnownSizeMatchesGrownContents) {
  const auto dict = workload::MakeDictionaryWorkload(2000);
  HashOptions grown = SmallOptions();
  HashOptions presized = SmallOptions();
  presized.nelem = 2000;

  auto a = std::move(HashTable::OpenInMemory(grown).value());
  auto b = std::move(HashTable::OpenInMemory(presized).value());
  EXPECT_GT(b->bucket_count(), a->bucket_count());

  for (size_t i = 0; i < dict.keys.size(); ++i) {
    ASSERT_OK(a->Put(dict.keys[i], dict.values[i]));
    ASSERT_OK(b->Put(dict.keys[i], dict.values[i]));
  }
  ASSERT_OK(a->CheckIntegrity());
  ASSERT_OK(b->CheckIntegrity());
  std::string va, vb;
  for (size_t i = 0; i < dict.keys.size(); ++i) {
    ASSERT_OK(a->Get(dict.keys[i], &va));
    ASSERT_OK(b->Get(dict.keys[i], &vb));
    ASSERT_EQ(va, vb);
  }
  // Pre-sizing should essentially eliminate splits.
  EXPECT_LT(b->stats().splits, a->stats().splits);
}

TEST(HashTableCache, TinyCacheStillCorrect) {
  HashOptions opts = SmallOptions();
  opts.cachesize = 0;  // minimum resident set only
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (int i = 0; i < 800; ++i) {
    ASSERT_OK(table->Put("tiny-" + std::to_string(i), std::to_string(i)));
  }
  ASSERT_OK(table->CheckIntegrity());
  std::string value;
  for (int i = 0; i < 800; ++i) {
    ASSERT_OK(table->Get("tiny-" + std::to_string(i), &value));
    ASSERT_EQ(value, std::to_string(i));
  }
}

TEST(HashTableCache, LargeCachePerformsNoBackingIoForSmallTable) {
  const std::string path = TempPath("noio");
  HashOptions opts = SmallOptions();
  opts.cachesize = 4 * 1024 * 1024;
  auto table = std::move(HashTable::Open(path, opts, true).value());
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(table->Put("c-" + std::to_string(i), std::to_string(i)));
  }
  const uint64_t writes_before_sync = table->file_stats().writes;
  std::string value;
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(table->Get("c-" + std::to_string(i), &value));
  }
  // Reads are all cache hits; only header writes have touched the file.
  EXPECT_EQ(table->file_stats().writes, writes_before_sync);
  EXPECT_EQ(table->file_stats().reads, 0u);
}

TEST(HashTableLocking, ExclusiveLockRejectsSecondOpen) {
  const std::string path = TempPath("locking");
  HashOptions opts = SmallOptions();
  opts.exclusive_lock = true;
  auto first = HashTable::Open(path, opts, /*truncate=*/true);
  ASSERT_TRUE(first.ok());
  ASSERT_OK(first.value()->Put("held", "yes"));
  ASSERT_OK(first.value()->Sync());
  // A second locked open must fail while the first handle lives...
  EXPECT_FALSE(HashTable::Open(path, opts).ok());
  // ...and succeed once it is closed.
  first.value().reset();
  auto second = HashTable::Open(path, opts);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value()->Contains("held"));
}

TEST(HashTableLocking, UnlockedOpensStillCoexist) {
  const std::string path = TempPath("nolock");
  auto first = std::move(HashTable::Open(path, SmallOptions(), true).value());
  ASSERT_OK(first->Put("a", "1"));
  ASSERT_OK(first->Sync());
  // Default behaviour is unchanged: concurrent opens are the caller's
  // responsibility, as in the original package.
  auto second = HashTable::Open(path, SmallOptions());
  EXPECT_TRUE(second.ok());
}

TEST(HashTableStats, CountersTrackOperations) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());
  ASSERT_OK(table->Put("a", "1"));
  ASSERT_OK(table->Put("b", "2"));
  std::string v;
  ASSERT_OK(table->Get("a", &v));
  ASSERT_OK(table->Delete("b"));
  EXPECT_EQ(table->stats().puts, 2u);
  EXPECT_EQ(table->stats().gets, 1u);
  EXPECT_EQ(table->stats().deletes, 1u);
}

// --- format v2 tag filter, v1 compatibility, upgrade ---

TEST(HashTableFormatV2, TagFilterCountersAdvance) {
  auto table = std::move(HashTable::OpenInMemory(SmallOptions()).value());  // v2 default
  ASSERT_EQ(table->meta().version, kHashVersionV2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table->Put("tagkey-" + std::to_string(i), "value-" + std::to_string(i)));
  }
  std::string v;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table->Get("tagkey-" + std::to_string(i), &v));
    EXPECT_EQ(v, "value-" + std::to_string(i));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(table->Get("absent-" + std::to_string(i), nullptr).IsNotFound());
  }
  const HashTableStats stats = table->StatsSnapshot();
  // Positive lookups must have compared at least their own entry; negative
  // lookups over ~8-entry buckets must have tag-skipped nearly everything.
  EXPECT_GE(stats.tag_filter_candidates, 200u);
  EXPECT_GT(stats.tag_filter_skips, 200u);
  // Expected false-hit rate is candidates/256 per non-matching entry; with
  // ~8 entries/bucket and 400 lookups, anything near the skip count means
  // the filter is not filtering.
  EXPECT_LT(stats.tag_filter_false_hits, stats.tag_filter_skips / 4 + 50);
  ASSERT_OK(table->CheckIntegrity());
}

TEST(HashTableFormatV2, V1TablesKeepZeroTagCounters) {
  HashOptions opts = SmallOptions();
  opts.format_version = 1;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  ASSERT_EQ(table->meta().version, kHashVersionV1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(table->Put("k" + std::to_string(i), "v"));
  }
  std::string v;
  ASSERT_OK(table->Get("k0", &v));
  EXPECT_TRUE(table->Get("missing", nullptr).IsNotFound());
  const HashTableStats stats = table->StatsSnapshot();
  EXPECT_EQ(stats.tag_filter_skips, 0u);
  EXPECT_EQ(stats.tag_filter_candidates, 0u);
  EXPECT_EQ(stats.tag_filter_false_hits, 0u);
  ASSERT_OK(table->CheckIntegrity());
}

TEST(HashTableFormatV2, V1FilesRemainReadWritable) {
  const std::string path = TempPath("v1compat");
  HashOptions opts = SmallOptions();
  opts.format_version = 1;
  {
    auto table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
    for (int i = 0; i < 300; ++i) {
      ASSERT_OK(table->Put("v1key-" + std::to_string(i), "v1val-" + std::to_string(i)));
    }
    ASSERT_OK(table->Sync());
  }
  {
    // Reopen with default (v2-preferring) options: the file stays v1 and
    // every operation works against the v1 layout.
    auto table = std::move(HashTable::Open(path, SmallOptions()).value());
    ASSERT_EQ(table->meta().version, kHashVersionV1);
    std::string v;
    for (int i = 0; i < 300; ++i) {
      ASSERT_OK(table->Get("v1key-" + std::to_string(i), &v));
      EXPECT_EQ(v, "v1val-" + std::to_string(i));
    }
    ASSERT_OK(table->Put("post-reopen", "new-pair"));
    ASSERT_OK(table->Delete("v1key-0"));
    ASSERT_OK(table->CheckIntegrity());
    ASSERT_OK(table->Sync());
  }
  {
    auto table = std::move(HashTable::Open(path, SmallOptions()).value());
    ASSERT_EQ(table->meta().version, kHashVersionV1);
    std::string v;
    ASSERT_OK(table->Get("post-reopen", &v));
    EXPECT_EQ(v, "new-pair");
    EXPECT_TRUE(table->Get("v1key-0", nullptr).IsNotFound());
  }
  std::remove(path.c_str());
}

TEST(HashTableFormatV2, UpgradeMigratesV1ToV2) {
  const std::string path = TempPath("upgrade");
  std::remove((path + ".upgrade").c_str());
  HashOptions opts = SmallOptions();
  opts.format_version = 1;
  const std::string big_key(100, 'K');
  const std::string big_value(5000, 'V');
  {
    auto table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
    for (int i = 0; i < 250; ++i) {
      ASSERT_OK(table->Put("mig-" + std::to_string(i), "val-" + std::to_string(i)));
    }
    ASSERT_OK(table->Put(big_key, big_value));  // big pairs must survive too
    ASSERT_OK(table->Sync());
  }
  auto report = UpgradeTableFormat(path);
  ASSERT_OK(report.status());
  EXPECT_FALSE(report.value().already_current);
  EXPECT_EQ(report.value().keys_copied, 251u);
  {
    auto table = std::move(HashTable::Open(path, SmallOptions()).value());
    ASSERT_EQ(table->meta().version, kHashVersionV2);
    std::string v;
    for (int i = 0; i < 250; ++i) {
      ASSERT_OK(table->Get("mig-" + std::to_string(i), &v));
      EXPECT_EQ(v, "val-" + std::to_string(i));
    }
    ASSERT_OK(table->Get(big_key, &v));
    EXPECT_EQ(v, big_value);
    EXPECT_EQ(table->size(), 251u);
    // CheckIntegrity on v2 verifies every entry's tag byte.
    ASSERT_OK(table->CheckIntegrity());
  }
  std::remove(path.c_str());
}

TEST(HashTableFormatV2, UpgradeOnV2TableIsNoOp) {
  const std::string path = TempPath("upgrade_noop");
  {
    auto table = std::move(HashTable::Open(path, SmallOptions(), /*truncate=*/true).value());
    ASSERT_OK(table->Put("key", "value"));
    ASSERT_OK(table->Sync());
  }
  auto report = UpgradeTableFormat(path);
  ASSERT_OK(report.status());
  EXPECT_TRUE(report.value().already_current);
  EXPECT_EQ(report.value().keys_copied, 0u);
  {
    auto table = std::move(HashTable::Open(path, SmallOptions()).value());
    std::string v;
    ASSERT_OK(table->Get("key", &v));
    EXPECT_EQ(v, "value");
  }
  std::remove(path.c_str());
}

TEST(HashTableFormatV2, ContainsBigPairSkipsDataSegments) {
  const std::string path = TempPath("contains_big");
  HashOptions opts = SmallOptions();
  opts.cachesize = 0;  // every page access is a backend read
  // Key longer than the stored prefix (32B), so the membership check has
  // to touch the chain — but only the key's segment, never the value's.
  const std::string key(100, 'k');
  const std::string value(12000, 'v');  // ~50 segments at bsize 256
  {
    auto table = std::move(HashTable::Open(path, opts, /*truncate=*/true).value());
    ASSERT_OK(table->Put(key, value));
    ASSERT_OK(table->Sync());
  }
  auto table = std::move(HashTable::Open(path, opts).value());
  const uint64_t reads0 = table->file_stats().reads;
  EXPECT_TRUE(table->Contains(key));
  const uint64_t contains_reads = table->file_stats().reads - reads0;
  std::string v;
  ASSERT_OK(table->Get(key, &v));
  const uint64_t get_reads = table->file_stats().reads - reads0 - contains_reads;
  EXPECT_EQ(v, value);
  // Contains: bucket page + first chain segment (the 100-byte key fits in
  // one).  Get: the whole ~50-segment chain.
  EXPECT_LE(contains_reads, 10u);
  EXPECT_GE(get_reads, 40u);
  EXPECT_LT(contains_reads, get_reads / 4);
  std::remove(path.c_str());
}

TEST(HashTableFillFactor, ControlledSplitKeepsLoadNearFfactor) {
  HashOptions opts = SmallOptions();
  opts.bsize = 1024;
  opts.ffactor = 8;
  opts.split_policy = SplitPolicy::kControlledOnly;
  auto table = std::move(HashTable::OpenInMemory(opts).value());
  for (int i = 0; i < 4000; ++i) {
    ASSERT_OK(table->Put("load-" + std::to_string(i), "v"));
  }
  const double load = static_cast<double>(table->size()) / table->bucket_count();
  EXPECT_LE(load, 8.0 + 1e-9);
  EXPECT_GE(load, 3.9);  // a split at most doubles the bucket count
}

}  // namespace
}  // namespace hashkit
