// Unit tests for the file-header codec and address arithmetic
// (src/core/meta.h, src/core/addressing.h).

#include "src/core/meta.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/addressing.h"

namespace hashkit {
namespace {

TEST(MetaCodecTest, RoundTripAllFields) {
  Meta meta;
  meta.bsize = 1024;
  meta.ffactor = 32;
  meta.nkeys = 0x123456789abcull;
  meta.max_bucket = 77;
  meta.high_mask = 127;
  meta.low_mask = 63;
  meta.last_freed = 0x0803;
  meta.ovfl_point = 9;
  meta.hash_check = 0xfeedface;
  meta.hash_id = 3;
  meta.nhdr_pages = 2;
  meta.nelem_hint = 5000;
  for (uint32_t i = 0; i < kMaxSplitPoints; ++i) {
    meta.spares[i] = i * 3;
    meta.bitmaps[i] = static_cast<uint16_t>(i * 11);
  }

  std::vector<uint8_t> buf(kMetaEncodedSize);
  EncodeMeta(meta, buf);
  auto decoded = DecodeMeta(buf);
  ASSERT_TRUE(decoded.ok());
  const Meta& m = *decoded;
  EXPECT_EQ(m.bsize, meta.bsize);
  EXPECT_EQ(m.ffactor, meta.ffactor);
  EXPECT_EQ(m.nkeys, meta.nkeys);
  EXPECT_EQ(m.max_bucket, meta.max_bucket);
  EXPECT_EQ(m.high_mask, meta.high_mask);
  EXPECT_EQ(m.low_mask, meta.low_mask);
  EXPECT_EQ(m.last_freed, meta.last_freed);
  EXPECT_EQ(m.ovfl_point, meta.ovfl_point);
  EXPECT_EQ(m.hash_check, meta.hash_check);
  EXPECT_EQ(m.hash_id, meta.hash_id);
  EXPECT_EQ(m.nhdr_pages, meta.nhdr_pages);
  EXPECT_EQ(m.nelem_hint, meta.nelem_hint);
  EXPECT_EQ(m.spares, meta.spares);
  EXPECT_EQ(m.bitmaps, meta.bitmaps);
}

TEST(MetaCodecTest, BadMagicRejected) {
  Meta meta;
  std::vector<uint8_t> buf(kMetaEncodedSize);
  EncodeMeta(meta, buf);
  buf[0] ^= 0xff;
  EXPECT_TRUE(DecodeMeta(buf).status().IsCorruption());
}

TEST(MetaCodecTest, BadVersionRejected) {
  Meta meta;
  meta.version = 99;
  std::vector<uint8_t> buf(kMetaEncodedSize);
  EncodeMeta(meta, buf);
  EXPECT_TRUE(DecodeMeta(buf).status().IsCorruption());
}

TEST(MetaCodecTest, ShortBufferRejected) {
  std::vector<uint8_t> buf(kMetaEncodedSize - 1);
  EXPECT_FALSE(DecodeMeta(buf).ok());
}

TEST(MetaCodecTest, HeaderPagesForVariousSizes) {
  EXPECT_GE(HeaderPagesFor(64) * 64, kMetaEncodedSize);
  EXPECT_GE(HeaderPagesFor(128) * 128, kMetaEncodedSize);
  EXPECT_EQ(HeaderPagesFor(1024), 1u);
  EXPECT_EQ(HeaderPagesFor(32768), 1u);
  // Tight: no wasted whole page.
  EXPECT_LT((HeaderPagesFor(64) - 1) * 64, kMetaEncodedSize);
}

// ---- Addressing (the paper's BUCKET_TO_PAGE / OADDR_TO_PAGE) ----

TEST(AddressingTest, OaddrPacking) {
  const uint16_t oaddr = MakeOaddr(5, 123);
  EXPECT_EQ(OaddrSplitPoint(oaddr), 5u);
  EXPECT_EQ(OaddrPageNum(oaddr), 123u);
  EXPECT_EQ(MakeOaddr(31, 2047), 0xffff);
  EXPECT_EQ(MakeOaddr(0, 1), 1);
}

TEST(AddressingTest, OaddrInRangeGuardsTheEncoding) {
  // The full corners of the 5-bit/11-bit encoding.
  EXPECT_TRUE(OaddrInRange(0, 1));
  EXPECT_TRUE(OaddrInRange(kMaxSplitPoints - 1, kMaxOvflPagesPerPoint));
  EXPECT_TRUE(OaddrInRange(31, 1));
  EXPECT_TRUE(OaddrInRange(0, 2047));
  // Out of range on every side.  A split point of 32 would be masked to 0
  // by MakeOaddr's shift — aliasing a fresh page onto split point 0's
  // region and corrupting it — which is why allocation paths must check
  // this predicate and return kFull first.
  EXPECT_FALSE(OaddrInRange(kMaxSplitPoints, 1));
  EXPECT_FALSE(OaddrInRange(77, 1));
  EXPECT_FALSE(OaddrInRange(0, 0));  // page numbers are 1-based
  EXPECT_FALSE(OaddrInRange(0, kMaxOvflPagesPerPoint + 1));
  EXPECT_FALSE(OaddrInRange(kMaxSplitPoints, 0));
}

TEST(AddressingTest, BucketToPageWithoutSpares) {
  Meta meta;
  meta.nhdr_pages = 1;
  // No overflow pages: bucket b is page b + 1.
  for (uint32_t b = 0; b < 1000; ++b) {
    EXPECT_EQ(BucketToPage(meta, b), b + 1u) << b;
  }
}

TEST(AddressingTest, BucketToPageWithSpares) {
  // Figure 3's layout: 2 overflow pages at split point 1, 3 at split
  // point 2 (cumulative spares: sp0=0, sp1=2, sp2=5, ...).
  Meta meta;
  meta.nhdr_pages = 1;
  meta.spares = {};
  meta.spares[0] = 0;
  meta.spares[1] = 2;
  for (uint32_t i = 2; i < kMaxSplitPoints; ++i) {
    meta.spares[i] = 5;
  }
  EXPECT_EQ(BucketToPage(meta, 0), 1u);
  EXPECT_EQ(BucketToPage(meta, 1), 2u);           // + spares[0] = 0
  EXPECT_EQ(BucketToPage(meta, 2), 1u + 2 + 2);   // + spares[1] = 2
  EXPECT_EQ(BucketToPage(meta, 3), 1u + 3 + 2);
  EXPECT_EQ(BucketToPage(meta, 4), 1u + 4 + 5);   // + spares[2] = 5
  EXPECT_EQ(BucketToPage(meta, 7), 1u + 7 + 5);
}

TEST(AddressingTest, OaddrToPageSitsBetweenGenerations) {
  Meta meta;
  meta.nhdr_pages = 1;
  meta.spares = {};
  meta.spares[0] = 0;
  meta.spares[1] = 2;
  for (uint32_t i = 2; i < kMaxSplitPoints; ++i) {
    meta.spares[i] = 5;
  }
  // Overflow pages at split point 1 live after bucket 1.
  EXPECT_EQ(OaddrToPage(meta, MakeOaddr(1, 1)), BucketToPage(meta, 1) + 1);
  EXPECT_EQ(OaddrToPage(meta, MakeOaddr(1, 2)), BucketToPage(meta, 1) + 2);
  // ... and before bucket 2.
  EXPECT_LT(OaddrToPage(meta, MakeOaddr(1, 2)), BucketToPage(meta, 2));
  // Overflow pages at split point 2 live after bucket 3 and before 4.
  EXPECT_EQ(OaddrToPage(meta, MakeOaddr(2, 1)), BucketToPage(meta, 3) + 1);
  EXPECT_LT(OaddrToPage(meta, MakeOaddr(2, 3)), BucketToPage(meta, 4));
}

TEST(AddressingTest, NoTwoAddressesCollide) {
  // With an arbitrary spares profile, all bucket pages and all allocated
  // overflow pages must map to distinct physical pages.
  Meta meta;
  meta.nhdr_pages = 2;
  uint32_t cumulative = 0;
  const uint32_t at_point[8] = {3, 1, 4, 1, 5, 9, 2, 6};
  for (uint32_t i = 0; i < kMaxSplitPoints; ++i) {
    cumulative += i < 8 ? at_point[i] : 0;
    meta.spares[i] = cumulative;
  }
  meta.max_bucket = 255;

  std::set<uint64_t> pages;
  for (uint32_t b = 0; b <= meta.max_bucket; ++b) {
    EXPECT_TRUE(pages.insert(BucketToPage(meta, b)).second) << "bucket " << b;
  }
  for (uint32_t sp = 0; sp < 8; ++sp) {
    for (uint32_t p = 1; p <= at_point[sp]; ++p) {
      EXPECT_TRUE(pages.insert(OaddrToPage(meta, MakeOaddr(sp, p))).second)
          << "sp " << sp << " page " << p;
    }
  }
  // The layout must also be dense: pages 2 .. 2+256+31-1 all used.
  EXPECT_EQ(*pages.begin(), 2u);
  EXPECT_EQ(*pages.rbegin(), 2u + 256 + 31 - 1);
  EXPECT_EQ(pages.size(), 256u + 31);
}

TEST(AddressingTest, SplitPoints) {
  Meta meta;
  meta.max_bucket = 0;
  EXPECT_EQ(CurrentSplitPoint(meta), 0u);
  meta.max_bucket = 1;
  EXPECT_EQ(CurrentSplitPoint(meta), 1u);
  meta.max_bucket = 2;
  EXPECT_EQ(CurrentSplitPoint(meta), 2u);
  meta.max_bucket = 3;
  EXPECT_EQ(CurrentSplitPoint(meta), 2u);
  meta.max_bucket = 4;
  EXPECT_EQ(CurrentSplitPoint(meta), 3u);
  meta.max_bucket = 255;
  EXPECT_EQ(CurrentSplitPoint(meta), 8u);

  // The effective point can run ahead of the frontier but never behind.
  meta.ovfl_point = 3;
  EXPECT_EQ(EffectiveOvflPoint(meta), 8u);
  meta.ovfl_point = 12;
  EXPECT_EQ(EffectiveOvflPoint(meta), 12u);
}

TEST(AddressingTest, PagesAtSplitPointDeltas) {
  Meta meta;
  meta.spares = {};
  meta.spares[0] = 4;
  meta.spares[1] = 4;
  meta.spares[2] = 10;
  for (uint32_t i = 3; i < kMaxSplitPoints; ++i) {
    meta.spares[i] = 10;
  }
  EXPECT_EQ(PagesAtSplitPoint(meta, 0), 4u);
  EXPECT_EQ(PagesAtSplitPoint(meta, 1), 0u);
  EXPECT_EQ(PagesAtSplitPoint(meta, 2), 6u);
  EXPECT_EQ(PagesAtSplitPoint(meta, 3), 0u);
}

}  // namespace
}  // namespace hashkit
