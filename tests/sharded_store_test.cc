// Tests for the sharded concurrent front-end: single-threaded conformance
// against a reference model (including Scan across shards and persistence
// across reopen), merged stats, and a multi-threaded hammer test that the
// stress/TSan configuration runs to prove the locking model.

#include "src/kv/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "src/kv/synchronized.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace hashkit {
namespace kv {
namespace {

std::unique_ptr<KvStore> OpenShardedMem(uint32_t shards) {
  StoreOptions options;
  options.page_size = 512;
  options.ffactor = 8;
  options.nelem = 8192;
  options.shards = shards;
  auto opened = OpenStore(StoreKind::kHashMemory, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

TEST(ShardedStoreTest, RoundTripAndCaps) {
  auto store = OpenShardedMem(8);
  EXPECT_EQ(store->Name(), "sharded(8xhash(mem))");
  const Capabilities caps = store->Caps();
  EXPECT_TRUE(caps.scans);
  EXPECT_TRUE(caps.deletes);
  EXPECT_TRUE(caps.grows);
  EXPECT_TRUE(caps.concurrent_reads);

  ASSERT_OK(store->Put("alpha", "one"));
  ASSERT_OK(store->Put("beta", "two"));
  std::string value;
  ASSERT_OK(store->Get("alpha", &value));
  EXPECT_EQ(value, "one");
  ASSERT_OK(store->Get("beta", &value));
  EXPECT_EQ(value, "two");
  EXPECT_TRUE(store->Get("gamma", &value).IsNotFound());
  EXPECT_EQ(store->Size(), 2u);

  EXPECT_TRUE(store->Put("alpha", "uno", /*overwrite=*/false).IsExists());
  ASSERT_OK(store->Put("alpha", "uno"));
  ASSERT_OK(store->Get("alpha", &value));
  EXPECT_EQ(value, "uno");
  EXPECT_EQ(store->Size(), 2u);

  ASSERT_OK(store->Delete("alpha"));
  EXPECT_TRUE(store->Get("alpha", &value).IsNotFound());
  EXPECT_TRUE(store->Delete("alpha").IsNotFound());
  EXPECT_EQ(store->Size(), 1u);
}

// The KvStore contract's random-ops conformance pass, run against the
// sharded front-end: same operations, same model, Size checked every step.
TEST(ShardedStoreTest, RandomOpsMatchReference) {
  auto store = OpenShardedMem(4);
  Rng rng(42);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 1500; ++step) {
    const std::string key = "r" + std::to_string(rng.Uniform(200));
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {
      const std::string value = rng.AsciiString(rng.Range(0, 40));
      ASSERT_OK(store->Put(key, value));
      model[key] = value;
    } else if (op < 7) {
      const Status st = store->Delete(key);
      if (model.erase(key)) {
        ASSERT_OK(st);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {
      std::string value;
      const Status st = store->Get(key, &value);
      const auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_OK(st);
        ASSERT_EQ(value, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
    ASSERT_EQ(store->Size(), model.size()) << "step " << step;
  }
}

// Scan must visit every pair exactly once, walking the shards in index
// order; within a shard the inner store's bucket order applies.
TEST(ShardedStoreTest, ScanAcrossShardsVisitsEveryPairOnce) {
  auto store = OpenShardedMem(8);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "s" + std::to_string(i);
    ASSERT_OK(store->Put(key, std::to_string(i)));
    model[key] = std::to_string(i);
  }
  std::string k, v;
  std::map<std::string, std::string> seen;
  Status st = store->Scan(&k, &v, true);
  while (st.ok()) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
    st = store->Scan(&k, &v, false);
  }
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(seen, model);

  // Scanning past the end stays at NotFound; first=true rewinds to shard 0.
  EXPECT_TRUE(store->Scan(&k, &v, false).IsNotFound());
  seen.clear();
  st = store->Scan(&k, &v, true);
  while (st.ok()) {
    seen.emplace(k, v);
    st = store->Scan(&k, &v, false);
  }
  EXPECT_EQ(seen, model);
}

TEST(ShardedStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("sharded_persist");
  std::map<std::string, std::string> model;
  {
    StoreOptions options;
    options.path = path;
    options.page_size = 512;
    options.shards = 4;
    auto opened = OpenStore(StoreKind::kHashDisk, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto store = std::move(opened).value();
    EXPECT_TRUE(store->Caps().persistent);
    for (int i = 0; i < 400; ++i) {
      const std::string key = "p" + std::to_string(i);
      ASSERT_OK(store->Put(key, std::to_string(i * 7)));
      model[key] = std::to_string(i * 7);
    }
    ASSERT_OK(store->Sync());
  }
  {
    StoreOptions options;
    options.path = path;
    options.truncate = false;
    options.page_size = 512;
    options.shards = 4;
    auto opened = OpenStore(StoreKind::kHashDisk, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto store = std::move(opened).value();
    EXPECT_EQ(store->Size(), model.size());
    std::string value;
    for (const auto& [k, v] : model) {
      ASSERT_OK(store->Get(k, &value)) << k;
      ASSERT_EQ(value, v);
    }
  }
  for (int s = 0; s < 4; ++s) {
    std::remove((path + ".s" + std::to_string(s)).c_str());
  }
}

TEST(ShardedStoreTest, MergedStatsCoverAllShards) {
  auto store = OpenShardedMem(8);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(store->Put("k" + std::to_string(i), "v"));
  }
  std::string value;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(store->Get("k" + std::to_string(i), &value));
  }
  StoreStats stats;
  ASSERT_TRUE(store->Stats(&stats));
  EXPECT_EQ(stats.shards, 8u);
  EXPECT_EQ(stats.table.puts, 1000u);
  EXPECT_GE(stats.table.gets, 1000u);  // Put's duplicate probe may add more
  EXPECT_GT(stats.pool.hits + stats.pool.misses, 0u);
}

TEST(ShardedStoreTest, FactoryRejectsZeroShardsAndPropagatesErrors) {
  EXPECT_FALSE(MakeSharded([](size_t) { return OpenStore(StoreKind::kHashMemory, {}); }, 0)
                   .ok());
  // A factory failure on any shard fails the whole open.
  auto result = MakeSharded(
      [](size_t shard) -> Result<std::unique_ptr<KvStore>> {
        if (shard == 2) {
          return Status::InvalidArgument("boom");
        }
        return OpenStore(StoreKind::kHashMemory, {});
      },
      4);
  EXPECT_FALSE(result.ok());
  // A factory that "succeeds" with a null store must also fail the open —
  // a null shard would crash the first routed operation.
  EXPECT_FALSE(MakeSharded(
                   [](size_t) -> Result<std::unique_ptr<KvStore>> {
                     return std::unique_ptr<KvStore>();
                   },
                   2)
                   .ok());
}

// Every shard count >= 1 is a working store — a single-shard ShardedStore
// is just a one-lock front-end.  (OpenShardedStore used to demand >= 2
// while MakeSharded accepted 1; both now agree on >= 1.)
TEST(ShardedStoreTest, SingleShardIsAValidConfiguration) {
  StoreOptions options;
  options.nelem = 1024;
  auto opened = OpenShardedStore(StoreKind::kHashMemory, options, 1);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto store = std::move(opened).value();
  EXPECT_EQ(store->Name(), "sharded(1xhash(mem))");

  ASSERT_OK(store->Put("only", "one"));
  std::string value;
  ASSERT_OK(store->Get("only", &value));
  EXPECT_EQ(value, "one");
  EXPECT_EQ(store->Size(), 1u);
  ASSERT_OK(store->Delete("only"));

  EXPECT_FALSE(OpenShardedStore(StoreKind::kHashMemory, options, 0).ok());
}

// hashkit-obs: the wrapper records an end-to-end latency sample for every
// operation, merged across shards into StoreStats::latency.
TEST(ShardedStoreTest, StatsCarryPerOpLatencyDistributions) {
  auto store = OpenShardedMem(4);
  std::string value;
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(store->Put("k" + std::to_string(i), "v"));
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(store->Get("k" + std::to_string(i), &value));
  }
  ASSERT_OK(store->Delete("k0"));
  ASSERT_OK(store->Sync());

  StoreStats stats;
  ASSERT_TRUE(store->Stats(&stats));
  EXPECT_EQ(stats.latency.put.count, 300u);
  EXPECT_EQ(stats.latency.get.count, 100u);
  EXPECT_EQ(stats.latency.del.count, 1u);
  EXPECT_EQ(stats.latency.sync.count, 1u);
  EXPECT_GT(stats.latency.put.sum, 0u);
  EXPECT_LE(stats.latency.get.p50(), stats.latency.get.p999());
  EXPECT_LE(stats.latency.get.p999(), stats.latency.get.max);

  // SynchronizedStore reports the same shape.
  StoreOptions options;
  options.nelem = 1024;
  auto inner = OpenStore(StoreKind::kHashMemory, options);
  ASSERT_TRUE(inner.ok());
  auto synced = MakeSynchronized(std::move(inner).value());
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(synced->Put("s" + std::to_string(i), "v"));
  }
  ASSERT_TRUE(synced->Stats(&stats));
  EXPECT_EQ(stats.latency.put.count, 50u);
  EXPECT_EQ(stats.latency.get.count, 0u);
}

// The concurrency hammer: writers fill disjoint key ranges while readers
// pound Gets (hits and misses) and Size().  Run under
// -DHASHKIT_SANITIZE=thread this proves the locking model; in a normal
// build it checks the final contents exactly.
TEST(ShardedStoreTest, HammerWritersAndReaders) {
  auto store = OpenShardedMem(8);
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kPerWriter = 3000;

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const std::string key = "w" + std::to_string(w) + "-" + std::to_string(i);
        EXPECT_TRUE(store->Put(key, std::to_string(w * 1000000 + i)).ok());
      }
    });
  }
  std::atomic<uint64_t> read_errors{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 77);
      std::string value;
      while (!writers_done.load(std::memory_order_acquire)) {
        const std::string key = "w" + std::to_string(rng.Uniform(kWriters)) + "-" +
                                std::to_string(rng.Uniform(kPerWriter));
        const Status st = store->Get(key, &value);
        if (!st.ok() && !st.IsNotFound()) {
          ++read_errors;
        }
        if (rng.Uniform(256) == 0) {
          (void)store->Size();  // concurrent aggregate reads must be safe
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[w].join();
  }
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store->Size(), static_cast<uint64_t>(kWriters) * kPerWriter);
  std::string value;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; i += 97) {
      const std::string key = "w" + std::to_string(w) + "-" + std::to_string(i);
      ASSERT_OK(store->Get(key, &value)) << key;
      ASSERT_EQ(value, std::to_string(w * 1000000 + i));
    }
  }
}

// Readers-only parallelism on a single SynchronizedStore: exercises the
// shared-lock Get path (and the buffer pool's internal locking) that the
// concurrent_reads capability promises.
TEST(ShardedStoreTest, SharedReadersOnSynchronizedStore) {
  StoreOptions options;
  options.page_size = 512;
  options.nelem = 8192;
  auto opened = OpenStore(StoreKind::kHashMemory, options);
  ASSERT_TRUE(opened.ok());
  auto store = MakeSynchronized(std::move(opened).value());
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(store->Put("k" + std::to_string(i), std::to_string(i)));
  }
  std::vector<std::thread> threads;
  std::atomic<uint64_t> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      std::string value;
      for (int i = 0; i < 20000; ++i) {
        const uint64_t k = rng.Uniform(kKeys);
        if (!store->Get("k" + std::to_string(k), &value).ok() ||
            value != std::to_string(k)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);

  StoreStats stats;
  ASSERT_TRUE(store->Stats(&stats));
  EXPECT_GE(stats.table.gets, 8u * 20000u);
}

}  // namespace
}  // namespace kv
}  // namespace hashkit
