// hashkit-cache: memcached text-protocol shim tests — the parser/codec in
// isolation, then a real socket conversation against a Server with a
// --memcached-port listener (set/get/gets/add/replace/cas/incr/decr/
// delete/touch/flush_all/stats/version/quit, noreply, pipelining, and the
// framing rules for bad input).  The e2e suite also crosses protocols:
// keys written over the binary protocol (PutTtl/Touch) read back through
// the text shim and vice versa, on the same store, with expiry driven by
// the deterministic TTL test clock.

#include "src/net/memcached.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/kv/synchronized.h"
#include "src/kv/ttl.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "tests/test_util.h"

namespace hashkit {
namespace net {
namespace {

// --- Parser / codec units (no sockets) ---

constexpr size_t kNoLimit = 1u << 24;

TEST(McParseTest, GetAndGetsMultiKey) {
  auto cmd = mc::ParseCommandLine("get alpha beta gamma", kNoLimit);
  ASSERT_EQ(cmd.kind, mc::Command::Kind::kGet);
  ASSERT_EQ(cmd.keys.size(), 3u);
  EXPECT_EQ(cmd.keys[0], "alpha");
  EXPECT_EQ(cmd.keys[2], "gamma");
  EXPECT_FALSE(cmd.WantsData());

  cmd = mc::ParseCommandLine("gets one", kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kGets);
  ASSERT_EQ(cmd.keys.size(), 1u);
}

TEST(McParseTest, StorageCommandFields) {
  auto cmd = mc::ParseCommandLine("set k 7 100 5", kNoLimit);
  ASSERT_EQ(cmd.kind, mc::Command::Kind::kSet);
  EXPECT_TRUE(cmd.error.empty());
  EXPECT_EQ(cmd.keys[0], "k");
  EXPECT_EQ(cmd.flags, 7u);
  EXPECT_EQ(cmd.exptime, 100);
  EXPECT_EQ(cmd.bytes, 5u);
  EXPECT_FALSE(cmd.noreply);
  EXPECT_TRUE(cmd.WantsData());

  cmd = mc::ParseCommandLine("add k 0 0 1 noreply", kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kAdd);
  EXPECT_TRUE(cmd.noreply);

  cmd = mc::ParseCommandLine("cas k 1 0 3 99", kNoLimit);
  ASSERT_EQ(cmd.kind, mc::Command::Kind::kCas);
  EXPECT_EQ(cmd.cas, 99u);
}

TEST(McParseTest, MutationAndAdminCommands) {
  auto cmd = mc::ParseCommandLine("delete k noreply", kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kDelete);
  EXPECT_TRUE(cmd.noreply);

  cmd = mc::ParseCommandLine("incr counter 5", kNoLimit);
  ASSERT_EQ(cmd.kind, mc::Command::Kind::kIncr);
  EXPECT_EQ(cmd.delta, 5u);

  cmd = mc::ParseCommandLine("decr counter 2", kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kDecr);

  cmd = mc::ParseCommandLine("touch k 100", kNoLimit);
  ASSERT_EQ(cmd.kind, mc::Command::Kind::kTouch);
  EXPECT_EQ(cmd.exptime, 100);

  cmd = mc::ParseCommandLine("flush_all 10 noreply", kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kFlushAll);
  EXPECT_TRUE(cmd.noreply);

  EXPECT_EQ(mc::ParseCommandLine("stats", kNoLimit).kind, mc::Command::Kind::kStats);
  EXPECT_EQ(mc::ParseCommandLine("version", kNoLimit).kind, mc::Command::Kind::kVersion);
  EXPECT_EQ(mc::ParseCommandLine("quit", kNoLimit).kind, mc::Command::Kind::kQuit);
}

TEST(McParseTest, RejectsMalformedInput) {
  // Unknown verb: plain ERROR, like memcached.
  auto cmd = mc::ParseCommandLine("frobnicate k", kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kBad);
  EXPECT_EQ(cmd.error, "ERROR\r\n");

  // Wrong arity and non-numeric fields are client errors.
  EXPECT_EQ(mc::ParseCommandLine("set k 1 2", kNoLimit).kind, mc::Command::Kind::kBad);
  EXPECT_EQ(mc::ParseCommandLine("set k x 0 5", kNoLimit).kind, mc::Command::Kind::kBad);
  EXPECT_EQ(mc::ParseCommandLine("incr k", kNoLimit).kind, mc::Command::Kind::kBad);
  EXPECT_EQ(mc::ParseCommandLine("", kNoLimit).kind, mc::Command::Kind::kBad);

  // Key length follows memcached's 250-byte cap.
  const std::string long_key(mc::kMaxKeyLen + 1, 'k');
  cmd = mc::ParseCommandLine("get " + long_key, kNoLimit);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kBad);
  EXPECT_EQ(cmd.error.rfind("CLIENT_ERROR", 0), 0u) << cmd.error;

  // A get with too many keys is refused before any lookups happen.
  std::string many = "get";
  for (size_t i = 0; i <= mc::kMaxKeysPerGet; ++i) {
    many += " k" + std::to_string(i);
  }
  EXPECT_EQ(mc::ParseCommandLine(many, kNoLimit).kind, mc::Command::Kind::kBad);
}

TEST(McParseTest, OversizeStorageKeepsKindForFraming) {
  // The data block still follows on the wire, so the caller must learn the
  // real kind and byte count even though the command will be refused.
  auto cmd = mc::ParseCommandLine("set k 0 0 11", /*max_value_bytes=*/10);
  EXPECT_EQ(cmd.kind, mc::Command::Kind::kSet);
  EXPECT_EQ(cmd.bytes, 11u);
  EXPECT_FALSE(cmd.error.empty());
  EXPECT_EQ(cmd.error.rfind("SERVER_ERROR", 0), 0u) << cmd.error;
}

TEST(McCodecTest, ExptimeConversion) {
  const uint64_t now = 1'700'000'000'000;  // an arbitrary epoch-ms instant
  EXPECT_EQ(mc::ExptimeToExpireAtMs(0, now), 0u);
  EXPECT_EQ(mc::ExptimeToExpireAtMs(100, now), now + 100'000);
  EXPECT_EQ(mc::ExptimeToExpireAtMs(mc::kRelativeExptimeLimit, now),
            now + static_cast<uint64_t>(mc::kRelativeExptimeLimit) * 1000);
  // Past the 30-day horizon the number is absolute unix seconds.
  const int64_t abs_secs = mc::kRelativeExptimeLimit + 1;
  EXPECT_EQ(mc::ExptimeToExpireAtMs(abs_secs, now), static_cast<uint64_t>(abs_secs) * 1000);
  // Negative means "already expired": a nonzero stamp at/before now.
  const uint64_t expired = mc::ExptimeToExpireAtMs(-1, now);
  EXPECT_NE(expired, 0u);
  EXPECT_LE(expired, now);
}

TEST(McCodecTest, ValueCodecRoundTrip) {
  std::string raw;
  mc::EncodeValue(0xdeadbeef, "payload", &raw);
  ASSERT_EQ(raw.size(), 4u + 7u);
  uint32_t flags = 0;
  std::string_view data;
  mc::DecodeValue(raw, &flags, &data);
  EXPECT_EQ(flags, 0xdeadbeefu);
  EXPECT_EQ(data, "payload");

  // Binary-protocol values lack the prefix; short ones decode whole.
  mc::DecodeValue("ab", &flags, &data);
  EXPECT_EQ(flags, 0u);
  EXPECT_EQ(data, "ab");
}

TEST(McCodecTest, CasTracksValueIdentity) {
  std::string a, b;
  mc::EncodeValue(1, "same", &a);
  mc::EncodeValue(1, "same", &b);
  EXPECT_EQ(mc::CasOf(a), mc::CasOf(b));
  mc::EncodeValue(1, "different", &b);
  EXPECT_NE(mc::CasOf(a), mc::CasOf(b));
  EXPECT_NE(mc::CasOf(a), 0u);
}

// --- End-to-end over a real socket ---

// Minimal blocking text-protocol client.  Replies are read until the
// expected terminator appears at the end of the buffer (every memcached
// reply this test provokes has a known final line), under a recv timeout
// so a missing reply fails the test instead of hanging it.
class TextClient {
 public:
  explicit TextClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << strerror(errno);
  }
  ~TextClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  // Reads until the buffered reply ends with `terminator` (or EOF/timeout).
  std::string ReadUntil(const std::string& terminator) {
    std::string reply;
    char buf[4096];
    while (reply.size() < terminator.size() ||
           reply.compare(reply.size() - terminator.size(), terminator.size(),
                         terminator) != 0) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;  // EOF or timeout: return what we have
      reply.append(buf, static_cast<size_t>(n));
    }
    return reply;
  }

  std::string Roundtrip(const std::string& cmd, const std::string& terminator = "\r\n") {
    Send(cmd);
    return ReadUntil(terminator);
  }

  // True when the peer closed the connection (EOF on a blocking read).
  bool ReadEof() {
    char buf[64];
    return ::recv(fd_, buf, sizeof(buf), 0) == 0;
  }

 private:
  int fd_ = -1;
};

class McServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kv::TtlResetClockForTesting();
    kv::StoreOptions store_options;
    store_options.ttl = true;
    auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    store_ = kv::MakeSynchronized(std::move(opened).value());

    ServerOptions server_options;
    server_options.port = 0;
    server_options.workers = 1;
    server_options.memcached_port = 0;
    server_ = std::make_unique<Server>(store_.get(), server_options);
    ASSERT_OK(server_->Start());
    ASSERT_GT(server_->memcached_port(), 0);
  }

  void TearDown() override {
    server_->Stop();
    kv::TtlResetClockForTesting();
  }

  TextClient Connect() { return TextClient(server_->memcached_port()); }

  std::unique_ptr<kv::KvStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(McServerTest, SetGetRoundTripWithFlags) {
  auto client = Connect();
  EXPECT_EQ(client.Roundtrip("set k 42 0 5\r\nhello\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("get k\r\n", "END\r\n"),
            "VALUE k 42 5\r\nhello\r\nEND\r\n");
  // A miss renders no VALUE line, just the END sentinel.
  EXPECT_EQ(client.Roundtrip("get missing\r\n", "END\r\n"), "END\r\n");
}

TEST_F(McServerTest, MultiKeyGetSkipsMisses) {
  auto client = Connect();
  ASSERT_EQ(client.Roundtrip("set a 0 0 1\r\nA\r\n"), "STORED\r\n");
  ASSERT_EQ(client.Roundtrip("set c 0 0 1\r\nC\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("get a b c\r\n", "END\r\n"),
            "VALUE a 0 1\r\nA\r\nVALUE c 0 1\r\nC\r\nEND\r\n");
}

TEST_F(McServerTest, AddAndReplaceSemantics) {
  auto client = Connect();
  EXPECT_EQ(client.Roundtrip("replace k 0 0 1\r\nx\r\n"), "NOT_STORED\r\n");
  EXPECT_EQ(client.Roundtrip("add k 0 0 1\r\nx\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("add k 0 0 1\r\ny\r\n"), "NOT_STORED\r\n");
  EXPECT_EQ(client.Roundtrip("replace k 0 0 1\r\nz\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("get k\r\n", "END\r\n"), "VALUE k 0 1\r\nz\r\nEND\r\n");
}

TEST_F(McServerTest, CasFlow) {
  auto client = Connect();
  ASSERT_EQ(client.Roundtrip("set k 3 0 2\r\nv1\r\n"), "STORED\r\n");
  const std::string reply = client.Roundtrip("gets k\r\n", "END\r\n");
  // "VALUE k 3 2 <cas>\r\nv1\r\nEND\r\n" — pull the cas unique out.
  ASSERT_EQ(reply.rfind("VALUE k 3 2 ", 0), 0u) << reply;
  const std::string cas = reply.substr(12, reply.find('\r') - 12);
  ASSERT_FALSE(cas.empty());

  EXPECT_EQ(client.Roundtrip("cas k 3 0 2 " + cas + "\r\nv2\r\n"), "STORED\r\n");
  // The value changed, so the old unique no longer matches.
  EXPECT_EQ(client.Roundtrip("cas k 3 0 2 " + cas + "\r\nv3\r\n"), "EXISTS\r\n");
  EXPECT_EQ(client.Roundtrip("cas missing 0 0 1 1\r\nx\r\n"), "NOT_FOUND\r\n");
}

TEST_F(McServerTest, IncrDecrArithmetic) {
  auto client = Connect();
  ASSERT_EQ(client.Roundtrip("set counter 0 0 1\r\n5\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("incr counter 3\r\n"), "8\r\n");
  // decr clamps at zero, per memcached.
  EXPECT_EQ(client.Roundtrip("decr counter 100\r\n"), "0\r\n");
  EXPECT_EQ(client.Roundtrip("incr missing 1\r\n"), "NOT_FOUND\r\n");
  ASSERT_EQ(client.Roundtrip("set text 0 0 3\r\nabc\r\n"), "STORED\r\n");
  const std::string err = client.Roundtrip("incr text 1\r\n");
  EXPECT_EQ(err.rfind("CLIENT_ERROR", 0), 0u) << err;
}

TEST_F(McServerTest, DeleteTouchAndExpiry) {
  auto client = Connect();
  ASSERT_EQ(client.Roundtrip("set k 0 100 1\r\nx\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("touch k 1\r\n"), "TOUCHED\r\n");
  EXPECT_EQ(client.Roundtrip("touch missing 1\r\n"), "NOT_FOUND\r\n");

  // touch rewrote the deadline to one second out; step past it.
  kv::TtlAdvanceClockForTesting(1000);
  EXPECT_EQ(client.Roundtrip("get k\r\n", "END\r\n"), "END\r\n");
  EXPECT_EQ(client.Roundtrip("delete k\r\n"), "NOT_FOUND\r\n");

  ASSERT_EQ(client.Roundtrip("set k 0 0 1\r\nx\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("delete k\r\n"), "DELETED\r\n");
  EXPECT_EQ(client.Roundtrip("delete k\r\n"), "NOT_FOUND\r\n");
}

TEST_F(McServerTest, NoreplyAndPipelining) {
  auto client = Connect();
  // Two noreply stores and a get, all in one write: the only reply on the
  // wire is the get's, proving noreply suppressed the STOREDs and the
  // pipeline stayed ordered.
  EXPECT_EQ(client.Roundtrip("set a 0 0 1 noreply\r\nA\r\n"
                             "set b 0 0 1 noreply\r\nB\r\n"
                             "get a b\r\n",
                             "END\r\n"),
            "VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n");
}

TEST_F(McServerTest, FlushAllStatsVersion) {
  auto client = Connect();
  ASSERT_EQ(client.Roundtrip("set a 0 0 1\r\nA\r\n"), "STORED\r\n");
  ASSERT_EQ(client.Roundtrip("set b 0 0 1\r\nB\r\n"), "STORED\r\n");
  EXPECT_EQ(client.Roundtrip("flush_all\r\n"), "OK\r\n");
  EXPECT_EQ(client.Roundtrip("get a b\r\n", "END\r\n"), "END\r\n");

  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_NE(stats.find("STAT curr_items "), std::string::npos) << stats;
  EXPECT_NE(stats.find("STAT cmd_get "), std::string::npos) << stats;

  const std::string version = client.Roundtrip("version\r\n");
  EXPECT_EQ(version.rfind("VERSION ", 0), 0u) << version;
}

TEST_F(McServerTest, BadInputKeepsOrLosesFramingCorrectly) {
  {
    // An unknown verb is an ERROR but framing survives: the next command
    // on the same connection still answers.
    auto client = Connect();
    EXPECT_EQ(client.Roundtrip("bogus\r\n"), "ERROR\r\n");
    const std::string version = client.Roundtrip("version\r\n");
    EXPECT_EQ(version.rfind("VERSION ", 0), 0u);
  }
  {
    // A data block that does not end in \r\n means framing is lost: the
    // server answers CLIENT_ERROR and closes.
    auto client = Connect();
    const std::string reply = client.Roundtrip("set k 0 0 2\r\nxyz\r\n");
    EXPECT_EQ(reply.rfind("CLIENT_ERROR", 0), 0u) << reply;
    EXPECT_TRUE(client.ReadEof());
  }
}

TEST_F(McServerTest, QuitClosesConnection) {
  auto client = Connect();
  client.Send("quit\r\n");
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(McServerTest, BinaryAndTextProtocolsShareTheStore) {
  auto connected = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto binary = std::move(connected).value();
  auto text = Connect();

  // Binary PutTtl, text read: no flags prefix on binary values, so the
  // shim reports flags=0 and the raw bytes as data.
  ASSERT_OK(binary->PutTtl("bin", "raw", /*ttl_ms=*/1000));
  EXPECT_EQ(text.Roundtrip("get bin\r\n", "END\r\n"), "VALUE bin 0 3\r\nraw\r\nEND\r\n");

  // Binary Touch extends it past the first deadline...
  ASSERT_OK(binary->Touch("bin", 5000));
  kv::TtlAdvanceClockForTesting(1000);
  EXPECT_EQ(text.Roundtrip("get bin\r\n", "END\r\n"), "VALUE bin 0 3\r\nraw\r\nEND\r\n");
  // ...and past the touched deadline both protocols agree it is gone.
  kv::TtlAdvanceClockForTesting(4000);
  EXPECT_EQ(text.Roundtrip("get bin\r\n", "END\r\n"), "END\r\n");
  std::string value;
  EXPECT_TRUE(binary->Get("bin", &value).IsNotFound());

  // Text set, binary read: the stored bytes carry the 4-byte flags prefix.
  ASSERT_EQ(text.Roundtrip("set txt 0 0 2\r\nhi\r\n"), "STORED\r\n");
  ASSERT_OK(binary->Get("txt", &value));
  ASSERT_EQ(value.size(), 6u);
  EXPECT_EQ(value.substr(4), "hi");
}

TEST_F(McServerTest, StatsSurfaceShowsShimAndHotKeys) {
  auto text = Connect();
  for (int i = 0; i < 8; ++i) {
    text.Roundtrip("get hotkey\r\n", "END\r\n");
  }
  auto connected = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto binary = std::move(connected).value();
  std::string stats;
  ASSERT_OK(binary->Stats(&stats));
  EXPECT_NE(stats.find("server.mc.commands="), std::string::npos) << stats;
  EXPECT_NE(stats.find("server.mc.get_misses="), std::string::npos);
  EXPECT_NE(stats.find("server.hotkeys.0.key=hotkey"), std::string::npos) << stats;
  EXPECT_NE(stats.find("store.ttl.expired_lazy="), std::string::npos);
}

TEST(McServerStartTest, RejectsOutOfRangeMemcachedPort) {
  kv::StoreOptions store_options;
  auto opened = kv::OpenStore(kv::StoreKind::kHashMemory, store_options);
  ASSERT_TRUE(opened.ok());
  auto store = kv::MakeSynchronized(std::move(opened).value());
  ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 1;
  server_options.memcached_port = 1 << 16;  // not a TCP port
  Server server(store.get(), server_options);
  EXPECT_FALSE(server.Start().ok());
}

}  // namespace
}  // namespace net
}  // namespace hashkit
