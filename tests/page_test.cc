// Unit tests for the on-page key/data layout (src/core/page.h).

#include "src/core/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/random.h"

namespace hashkit {
namespace {

class PageTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    buf_.assign(GetParam(), 0xAB);  // recycled memory: Init must clear it
    PageView::Init(buf_.data(), buf_.size(), PageType::kBucket);
  }

  PageView View() { return PageView(buf_.data(), buf_.size()); }

  std::vector<uint8_t> buf_;
};

TEST_P(PageTest, InitProducesEmptyValidPage) {
  PageView view = View();
  EXPECT_EQ(view.nentries(), 0);
  EXPECT_EQ(view.ovfl_addr(), 0);
  EXPECT_EQ(view.type(), PageType::kBucket);
  EXPECT_TRUE(view.Validate());
  const size_t usable = (buf_.size() == 32768 ? 32767 : buf_.size()) - kPageHeaderSize;
  EXPECT_EQ(view.FreeSpace(), usable);
}

TEST_P(PageTest, AddAndReadSinglePair) {
  PageView view = View();
  ASSERT_TRUE(view.FitsPair(5, 7));
  view.AddPair("apple", "crumble");
  ASSERT_EQ(view.nentries(), 1);
  const EntryRef e = view.Entry(0);
  EXPECT_FALSE(e.big);
  EXPECT_EQ(e.key, "apple");
  EXPECT_EQ(e.data, "crumble");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, EmptyKeyAndValueAreRepresentable) {
  PageView view = View();
  view.AddPair("", "");
  view.AddPair("k", "");
  view.AddPair("", "v");
  ASSERT_EQ(view.nentries(), 3);
  EXPECT_EQ(view.Entry(0).key, "");
  EXPECT_EQ(view.Entry(0).data, "");
  EXPECT_EQ(view.Entry(1).key, "k");
  EXPECT_EQ(view.Entry(1).data, "");
  EXPECT_EQ(view.Entry(2).key, "");
  EXPECT_EQ(view.Entry(2).data, "v");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, FillUntilFullThenFreeSpaceIsConsistent) {
  PageView view = View();
  size_t added = 0;
  while (view.FitsPair(4, 4)) {
    const std::string key = "k" + std::to_string(added);
    view.AddPair(std::string(4 - std::min<size_t>(3, key.size()), 'x') + key.substr(0, 3),
                 "dddd");
    ++added;
  }
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(view.Validate());
  EXPECT_LT(view.FreeSpace(), 4 + 4 + 4);
}

TEST_P(PageTest, RemoveMiddleEntryCompacts) {
  PageView view = View();
  view.AddPair("one", "1111");
  view.AddPair("two", "22");
  view.AddPair("three", "333333");
  const size_t free_before = view.FreeSpace();
  view.RemoveEntry(1);
  ASSERT_EQ(view.nentries(), 2);
  EXPECT_EQ(view.Entry(0).key, "one");
  EXPECT_EQ(view.Entry(0).data, "1111");
  EXPECT_EQ(view.Entry(1).key, "three");
  EXPECT_EQ(view.Entry(1).data, "333333");
  EXPECT_TRUE(view.Validate());
  EXPECT_EQ(view.FreeSpace(), free_before + 4 + 3 + 2);  // slot + "two" + "22"
}

TEST_P(PageTest, RemoveFirstAndLast) {
  PageView view = View();
  view.AddPair("a", "1");
  view.AddPair("b", "2");
  view.AddPair("c", "3");
  view.RemoveEntry(0);
  EXPECT_EQ(view.Entry(0).key, "b");
  view.RemoveEntry(1);
  ASSERT_EQ(view.nentries(), 1);
  EXPECT_EQ(view.Entry(0).key, "b");
  EXPECT_EQ(view.Entry(0).data, "2");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, RemoveAllThenReuse) {
  PageView view = View();
  view.AddPair("a", "1");
  view.AddPair("b", "2");
  view.RemoveEntry(1);
  view.RemoveEntry(0);
  EXPECT_EQ(view.nentries(), 0);
  const size_t usable = (buf_.size() == 32768 ? 32767 : buf_.size()) - kPageHeaderSize;
  EXPECT_EQ(view.FreeSpace(), usable);
  view.AddPair("fresh", "start");
  EXPECT_EQ(view.Entry(0).key, "fresh");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, BigStubRoundTrip) {
  PageView view = View();
  const std::string prefix = "somebigkeyprefix";
  ASSERT_TRUE(view.FitsBigStub(prefix.size()));
  view.AddBigStub(0x1234, 0xdeadbeef, 1000, 2000, prefix);
  ASSERT_EQ(view.nentries(), 1);
  const EntryRef e = view.Entry(0);
  EXPECT_TRUE(e.big);
  EXPECT_EQ(e.ovfl_addr, 0x1234);
  EXPECT_EQ(e.hash, 0xdeadbeefu);
  EXPECT_EQ(e.key_len, 1000u);
  EXPECT_EQ(e.data_len, 2000u);
  EXPECT_EQ(e.prefix, prefix);
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, MixedRegularAndBigEntriesSurviveRemoval) {
  PageView view = View();
  view.AddPair("alpha", "aaa");
  view.AddBigStub(7, 99, 500, 600, "bigkey");
  view.AddPair("beta", "bbb");
  view.RemoveEntry(0);  // drop "alpha"; offsets of the big stub must shift
  ASSERT_EQ(view.nentries(), 2);
  const EntryRef big = view.Entry(0);
  EXPECT_TRUE(big.big);
  EXPECT_EQ(big.ovfl_addr, 7);
  EXPECT_EQ(big.hash, 99u);
  EXPECT_EQ(big.prefix, "bigkey");
  EXPECT_EQ(view.Entry(1).key, "beta");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, OvflAddrPersistsAcrossEdits) {
  PageView view = View();
  view.set_ovfl_addr(0x0801);
  view.AddPair("k", "v");
  view.RemoveEntry(0);
  EXPECT_EQ(view.ovfl_addr(), 0x0801);
}

TEST_P(PageTest, BinaryDataWithEmbeddedNulsAndHighBytes) {
  PageView view = View();
  const std::string key("\x00\xff\x7f\x80", 4);
  const std::string data("\x01\x00\x02", 3);
  view.AddPair(key, data);
  EXPECT_EQ(view.Entry(0).key, key);
  EXPECT_EQ(view.Entry(0).data, data);
}

TEST_P(PageTest, RandomizedAddRemoveMirrorsReferenceVector) {
  Rng rng(GetParam());
  PageView view = View();
  std::vector<std::pair<std::string, std::string>> reference;
  for (int step = 0; step < 2000; ++step) {
    const bool can_add = view.FitsPair(12, 20);
    if (reference.empty() || (can_add && rng.Bernoulli(0.6))) {
      if (!can_add) {
        continue;
      }
      std::string key = rng.AsciiString(rng.Range(1, 12));
      std::string value = rng.ByteString(rng.Range(0, 20));
      view.AddPair(key, value);
      reference.emplace_back(std::move(key), std::move(value));
    } else {
      const auto victim = static_cast<uint16_t>(rng.Uniform(reference.size()));
      view.RemoveEntry(victim);
      reference.erase(reference.begin() + victim);
    }
    ASSERT_TRUE(view.Validate()) << "step " << step;
    ASSERT_EQ(view.nentries(), reference.size());
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    const EntryRef e = view.Entry(static_cast<uint16_t>(i));
    EXPECT_EQ(e.key, reference[i].first);
    EXPECT_EQ(e.data, reference[i].second);
  }
}

TEST_P(PageTest, PairFitsEmptyPageBoundary) {
  const size_t page_size = GetParam();
  const size_t usable = (page_size == 32768 ? 32767 : page_size) - kPageHeaderSize - 4;
  EXPECT_TRUE(PageView::PairFitsEmptyPage(usable, 0, page_size));
  EXPECT_TRUE(PageView::PairFitsEmptyPage(0, usable, page_size));
  EXPECT_FALSE(PageView::PairFitsEmptyPage(usable + 1, 0, page_size));
  EXPECT_FALSE(PageView::PairFitsEmptyPage(usable / 2 + 1, usable - usable / 2, page_size));
}

TEST_P(PageTest, ExactFitPairFillsPageCompletely) {
  PageView view = View();
  const size_t usable = view.FreeSpace() - 4;
  view.AddPair(std::string(usable / 2, 'k'), std::string(usable - usable / 2, 'v'));
  EXPECT_EQ(view.FreeSpace(), 0u);
  EXPECT_TRUE(view.Validate());
  EXPECT_FALSE(view.FitsPair(0, 0));
}

INSTANTIATE_TEST_SUITE_P(AllPageSizes, PageTest,
                         ::testing::Values(64, 128, 256, 512, 1024, 4096, 8192, 32768),
                         [](const auto& param_info) { return "bsize" + std::to_string(param_info.param); });

TEST(PageTypeTest, TypesRoundTrip) {
  std::vector<uint8_t> buf(256);
  for (const PageType t : {PageType::kBucket, PageType::kOverflow, PageType::kBitmap,
                           PageType::kBigSegment}) {
    PageView::Init(buf.data(), buf.size(), t);
    EXPECT_EQ(PageView(buf.data(), buf.size()).type(), t);
  }
}

TEST(PageSegmentTest, SegmentPayloadAccessors) {
  std::vector<uint8_t> buf(256);
  PageView::Init(buf.data(), buf.size(), PageType::kBigSegment);
  PageView view(buf.data(), buf.size());
  EXPECT_EQ(view.SegCapacity(), 256u - kPageHeaderSize);
  const std::string payload = "segment-bytes";
  std::copy(payload.begin(), payload.end(), view.SegData());
  view.SetSegUsed(static_cast<uint16_t>(payload.size()));
  EXPECT_EQ(view.SegUsed(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(view.SegData()), view.SegUsed()), payload);
}

}  // namespace
}  // namespace hashkit
