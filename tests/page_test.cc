// Unit tests for the on-page key/data layout (src/core/page.h).

#include "src/core/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/random.h"

namespace hashkit {
namespace {

class PageTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    buf_.assign(GetParam(), 0xAB);  // recycled memory: Init must clear it
    PageView::Init(buf_.data(), buf_.size(), PageType::kBucket);
  }

  PageView View() { return PageView(buf_.data(), buf_.size()); }

  std::vector<uint8_t> buf_;
};

TEST_P(PageTest, InitProducesEmptyValidPage) {
  PageView view = View();
  EXPECT_EQ(view.nentries(), 0);
  EXPECT_EQ(view.ovfl_addr(), 0);
  EXPECT_EQ(view.type(), PageType::kBucket);
  EXPECT_TRUE(view.Validate());
  const size_t usable = (buf_.size() == 32768 ? 32767 : buf_.size()) - kPageHeaderSize;
  EXPECT_EQ(view.FreeSpace(), usable);
}

TEST_P(PageTest, AddAndReadSinglePair) {
  PageView view = View();
  ASSERT_TRUE(view.FitsPair(5, 7));
  view.AddPair("apple", "crumble");
  ASSERT_EQ(view.nentries(), 1);
  const EntryRef e = view.Entry(0);
  EXPECT_FALSE(e.big);
  EXPECT_EQ(e.key, "apple");
  EXPECT_EQ(e.data, "crumble");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, EmptyKeyAndValueAreRepresentable) {
  PageView view = View();
  view.AddPair("", "");
  view.AddPair("k", "");
  view.AddPair("", "v");
  ASSERT_EQ(view.nentries(), 3);
  EXPECT_EQ(view.Entry(0).key, "");
  EXPECT_EQ(view.Entry(0).data, "");
  EXPECT_EQ(view.Entry(1).key, "k");
  EXPECT_EQ(view.Entry(1).data, "");
  EXPECT_EQ(view.Entry(2).key, "");
  EXPECT_EQ(view.Entry(2).data, "v");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, FillUntilFullThenFreeSpaceIsConsistent) {
  PageView view = View();
  size_t added = 0;
  while (view.FitsPair(4, 4)) {
    const std::string key = "k" + std::to_string(added);
    view.AddPair(std::string(4 - std::min<size_t>(3, key.size()), 'x') + key.substr(0, 3),
                 "dddd");
    ++added;
  }
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(view.Validate());
  EXPECT_LT(view.FreeSpace(), 4 + 4 + 4);
}

TEST_P(PageTest, RemoveMiddleEntryCompacts) {
  PageView view = View();
  view.AddPair("one", "1111");
  view.AddPair("two", "22");
  view.AddPair("three", "333333");
  const size_t free_before = view.FreeSpace();
  view.RemoveEntry(1);
  ASSERT_EQ(view.nentries(), 2);
  EXPECT_EQ(view.Entry(0).key, "one");
  EXPECT_EQ(view.Entry(0).data, "1111");
  EXPECT_EQ(view.Entry(1).key, "three");
  EXPECT_EQ(view.Entry(1).data, "333333");
  EXPECT_TRUE(view.Validate());
  EXPECT_EQ(view.FreeSpace(), free_before + 4 + 3 + 2);  // slot + "two" + "22"
}

TEST_P(PageTest, RemoveFirstAndLast) {
  PageView view = View();
  view.AddPair("a", "1");
  view.AddPair("b", "2");
  view.AddPair("c", "3");
  view.RemoveEntry(0);
  EXPECT_EQ(view.Entry(0).key, "b");
  view.RemoveEntry(1);
  ASSERT_EQ(view.nentries(), 1);
  EXPECT_EQ(view.Entry(0).key, "b");
  EXPECT_EQ(view.Entry(0).data, "2");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, RemoveAllThenReuse) {
  PageView view = View();
  view.AddPair("a", "1");
  view.AddPair("b", "2");
  view.RemoveEntry(1);
  view.RemoveEntry(0);
  EXPECT_EQ(view.nentries(), 0);
  const size_t usable = (buf_.size() == 32768 ? 32767 : buf_.size()) - kPageHeaderSize;
  EXPECT_EQ(view.FreeSpace(), usable);
  view.AddPair("fresh", "start");
  EXPECT_EQ(view.Entry(0).key, "fresh");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, BigStubRoundTrip) {
  PageView view = View();
  const std::string prefix = "somebigkeyprefix";
  ASSERT_TRUE(view.FitsBigStub(prefix.size()));
  view.AddBigStub(0x1234, 0xdeadbeef, 1000, 2000, prefix);
  ASSERT_EQ(view.nentries(), 1);
  const EntryRef e = view.Entry(0);
  EXPECT_TRUE(e.big);
  EXPECT_EQ(e.ovfl_addr, 0x1234);
  EXPECT_EQ(e.hash, 0xdeadbeefu);
  EXPECT_EQ(e.key_len, 1000u);
  EXPECT_EQ(e.data_len, 2000u);
  EXPECT_EQ(e.prefix, prefix);
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, MixedRegularAndBigEntriesSurviveRemoval) {
  PageView view = View();
  view.AddPair("alpha", "aaa");
  view.AddBigStub(7, 99, 500, 600, "bigkey");
  view.AddPair("beta", "bbb");
  view.RemoveEntry(0);  // drop "alpha"; offsets of the big stub must shift
  ASSERT_EQ(view.nentries(), 2);
  const EntryRef big = view.Entry(0);
  EXPECT_TRUE(big.big);
  EXPECT_EQ(big.ovfl_addr, 7);
  EXPECT_EQ(big.hash, 99u);
  EXPECT_EQ(big.prefix, "bigkey");
  EXPECT_EQ(view.Entry(1).key, "beta");
  EXPECT_TRUE(view.Validate());
}

TEST_P(PageTest, OvflAddrPersistsAcrossEdits) {
  PageView view = View();
  view.set_ovfl_addr(0x0801);
  view.AddPair("k", "v");
  view.RemoveEntry(0);
  EXPECT_EQ(view.ovfl_addr(), 0x0801);
}

TEST_P(PageTest, BinaryDataWithEmbeddedNulsAndHighBytes) {
  PageView view = View();
  const std::string key("\x00\xff\x7f\x80", 4);
  const std::string data("\x01\x00\x02", 3);
  view.AddPair(key, data);
  EXPECT_EQ(view.Entry(0).key, key);
  EXPECT_EQ(view.Entry(0).data, data);
}

TEST_P(PageTest, RandomizedAddRemoveMirrorsReferenceVector) {
  Rng rng(GetParam());
  PageView view = View();
  std::vector<std::pair<std::string, std::string>> reference;
  for (int step = 0; step < 2000; ++step) {
    const bool can_add = view.FitsPair(12, 20);
    if (reference.empty() || (can_add && rng.Bernoulli(0.6))) {
      if (!can_add) {
        continue;
      }
      std::string key = rng.AsciiString(rng.Range(1, 12));
      std::string value = rng.ByteString(rng.Range(0, 20));
      view.AddPair(key, value);
      reference.emplace_back(std::move(key), std::move(value));
    } else {
      const auto victim = static_cast<uint16_t>(rng.Uniform(reference.size()));
      view.RemoveEntry(victim);
      reference.erase(reference.begin() + victim);
    }
    ASSERT_TRUE(view.Validate()) << "step " << step;
    ASSERT_EQ(view.nentries(), reference.size());
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    const EntryRef e = view.Entry(static_cast<uint16_t>(i));
    EXPECT_EQ(e.key, reference[i].first);
    EXPECT_EQ(e.data, reference[i].second);
  }
}

TEST_P(PageTest, PairFitsEmptyPageBoundary) {
  const size_t page_size = GetParam();
  const size_t usable = (page_size == 32768 ? 32767 : page_size) - kPageHeaderSize - 4;
  EXPECT_TRUE(PageView::PairFitsEmptyPage(usable, 0, page_size));
  EXPECT_TRUE(PageView::PairFitsEmptyPage(0, usable, page_size));
  EXPECT_FALSE(PageView::PairFitsEmptyPage(usable + 1, 0, page_size));
  EXPECT_FALSE(PageView::PairFitsEmptyPage(usable / 2 + 1, usable - usable / 2, page_size));
}

TEST_P(PageTest, ExactFitPairFillsPageCompletely) {
  PageView view = View();
  const size_t usable = view.FreeSpace() - 4;
  view.AddPair(std::string(usable / 2, 'k'), std::string(usable - usable / 2, 'v'));
  EXPECT_EQ(view.FreeSpace(), 0u);
  EXPECT_TRUE(view.Validate());
  EXPECT_FALSE(view.FitsPair(0, 0));
}

INSTANTIATE_TEST_SUITE_P(AllPageSizes, PageTest,
                         ::testing::Values(64, 128, 256, 512, 1024, 4096, 8192, 32768),
                         [](const auto& param_info) { return "bsize" + std::to_string(param_info.param); });

// --- format v2: fingerprint tag array ---

class PageV2Test : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    buf_.assign(GetParam(), 0xAB);
    PageView::Init(buf_.data(), buf_.size(), PageType::kBucket);
  }

  PageView View() { return PageView(buf_.data(), buf_.size(), kPageFormatV2); }

  std::vector<uint8_t> buf_;
};

TEST_P(PageV2Test, EmptyPageIsByteIdenticalToV1) {
  std::vector<uint8_t> v1(GetParam(), 0xAB);
  PageView::Init(v1.data(), v1.size(), PageType::kBucket);
  EXPECT_EQ(buf_, v1);  // Init is format-independent; tag region is zeros
  EXPECT_TRUE(View().Validate());
}

TEST_P(PageV2Test, TagsRoundTripAndFilterFindsExactlyMatchingEntries) {
  PageView view = View();
  Rng rng(GetParam() * 7919);
  std::vector<uint8_t> tags;
  while (view.FitsPair(4, 6) && tags.size() < view.tag_capacity()) {
    const auto tag = static_cast<uint8_t>(rng.Uniform(8));  // few values => collisions
    view.AddPair(rng.AsciiString(4), rng.ByteString(6), tag);
    tags.push_back(tag);
  }
  ASSERT_GT(tags.size(), 0u);
  ASSERT_TRUE(view.Validate());
  for (size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(view.tag(static_cast<uint16_t>(i)), tags[i]);
  }
  // Every probe tag: FindCandidates must agree with a brute-force scan.
  for (int probe = 0; probe < 256; ++probe) {
    std::vector<uint16_t> expected;
    for (size_t i = 0; i < tags.size(); ++i) {
      if (tags[i] == probe) {
        expected.push_back(static_cast<uint16_t>(i));
      }
    }
    std::vector<uint16_t> got;
    TagCandidates scan = view.FindCandidates(static_cast<uint8_t>(probe));
    for (uint16_t i = scan.Next(); i != kNoEntry; i = scan.Next()) {
      got.push_back(i);
    }
    ASSERT_EQ(got, expected) << "probe tag " << probe;
  }
}

TEST_P(PageV2Test, RemoveEntryShiftsTagArrayWithIndex) {
  PageView view = View();
  Rng rng(GetParam() * 31);
  std::vector<std::pair<std::string, uint8_t>> reference;  // key -> tag
  while (view.FitsPair(8, 4) && reference.size() < view.tag_capacity()) {
    std::string key = rng.AsciiString(8);
    const auto tag = static_cast<uint8_t>(rng.Uniform(256));
    view.AddPair(key, "data", tag);
    reference.emplace_back(std::move(key), tag);
  }
  ASSERT_GE(reference.size(), 3u);
  while (!reference.empty()) {
    const auto victim = static_cast<uint16_t>(rng.Uniform(reference.size()));
    view.RemoveEntry(victim);
    reference.erase(reference.begin() + victim);
    ASSERT_TRUE(view.Validate());
    ASSERT_EQ(view.nentries(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(view.Entry(static_cast<uint16_t>(i)).key, reference[i].first);
      ASSERT_EQ(view.tag(static_cast<uint16_t>(i)), reference[i].second);
    }
  }
}

TEST_P(PageV2Test, EntryCountIsBoundedByTagCapacity) {
  PageView view = View();
  const uint16_t cap = view.tag_capacity();
  ASSERT_EQ(cap, PageTagCapacity(GetParam(), kPageFormatV2));
  // Zero-length pairs cost only an index slot; v1 would pack usable/4 of
  // them, v2 stops at the tag capacity (the rest overflow-chain).
  uint16_t added = 0;
  while (view.FitsPair(0, 0)) {
    view.AddPair("", "", 0x42);
    ++added;
    ASSERT_LE(added, cap);
  }
  EXPECT_EQ(added, cap);
  EXPECT_TRUE(view.Validate());
  EXPECT_FALSE(view.FitsBigStub(0));  // the stub path honors the bound too
}

TEST_P(PageV2Test, BigStubRecordsTagOfStoredHash) {
  PageView view = View();
  const uint32_t hash = 0xDEADBEEF;
  ASSERT_TRUE(view.FitsBigStub(3));
  view.AddBigStub(/*first_oaddr=*/7, hash, /*key_len=*/100, /*data_len=*/5000, "abc");
  ASSERT_EQ(view.nentries(), 1);
  EXPECT_EQ(view.tag(0), TagOfHash(hash));
  EXPECT_EQ(view.tag(0), 0xDE);
  TagCandidates scan = view.FindCandidates(TagOfHash(hash));
  EXPECT_EQ(scan.Next(), 0);
  EXPECT_EQ(scan.Next(), kNoEntry);
  TagCandidates miss = view.FindCandidates(0x01);
  EXPECT_EQ(miss.Next(), kNoEntry);
}

TEST_P(PageV2Test, V2ReservesTagBytesFromUsableSpace) {
  const size_t page_size = GetParam();
  const size_t trimmed = page_size == 32768 ? 32767 : page_size;
  const size_t v2_usable = trimmed - kPageHeaderSize - PageTagCapacity(page_size, kPageFormatV2);
  EXPECT_EQ(View().FreeSpace(), v2_usable);
  // The big-pair threshold shrinks accordingly.
  EXPECT_TRUE(PageView::PairFitsEmptyPage(v2_usable - 4, 0, page_size, kPageFormatV2));
  EXPECT_FALSE(PageView::PairFitsEmptyPage(v2_usable - 3, 0, page_size, kPageFormatV2));
}

INSTANTIATE_TEST_SUITE_P(AllPageSizes, PageV2Test,
                         ::testing::Values(64, 128, 256, 512, 1024, 4096, 8192, 32768),
                         [](const auto& param_info) { return "bsize" + std::to_string(param_info.param); });

TEST(TagCandidatesTest, UnfilteredScanYieldsEveryIndex) {
  TagCandidates scan(5);
  for (uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.Next(), i);
  }
  EXPECT_EQ(scan.Next(), kNoEntry);
  EXPECT_EQ(scan.Next(), kNoEntry);
}

TEST(TagCandidatesTest, FilteredScanHandlesChunkBoundariesAndTails) {
  // 40 tags spans multiple SWAR/SIMD chunks with a ragged tail at every
  // lane width in use (16 and 8).
  alignas(16) uint8_t tags[64] = {};
  std::vector<uint16_t> expected;
  for (uint16_t i = 0; i < 40; ++i) {
    tags[i] = static_cast<uint8_t>(i % 3 == 0 ? 0x7F : i);
    if (i % 3 == 0) {
      expected.push_back(i);
    }
  }
  // Poison past the logical end: matches there must be masked off.
  for (size_t i = 40; i < sizeof(tags); ++i) {
    tags[i] = 0x7F;
  }
  std::vector<uint16_t> got;
  TagCandidates scan(tags, 40, 0x7F);
  for (uint16_t i = scan.Next(); i != kNoEntry; i = scan.Next()) {
    got.push_back(i);
  }
  EXPECT_EQ(got, expected);
}

TEST(PageTypeTest, TypesRoundTrip) {
  std::vector<uint8_t> buf(256);
  for (const PageType t : {PageType::kBucket, PageType::kOverflow, PageType::kBitmap,
                           PageType::kBigSegment}) {
    PageView::Init(buf.data(), buf.size(), t);
    EXPECT_EQ(PageView(buf.data(), buf.size()).type(), t);
  }
}

TEST(PageSegmentTest, SegmentPayloadAccessors) {
  std::vector<uint8_t> buf(256);
  PageView::Init(buf.data(), buf.size(), PageType::kBigSegment);
  PageView view(buf.data(), buf.size());
  EXPECT_EQ(view.SegCapacity(), 256u - kPageHeaderSize);
  const std::string payload = "segment-bytes";
  std::copy(payload.begin(), payload.end(), view.SegData());
  view.SetSegUsed(static_cast<uint16_t>(payload.size()));
  EXPECT_EQ(view.SegUsed(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(view.SegData()), view.SegUsed()), payload);
}

}  // namespace
}  // namespace hashkit
