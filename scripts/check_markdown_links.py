#!/usr/bin/env python3
"""Fail CI when an intra-repo markdown link points at a missing file.

Scans every *.md file in the repository for inline links and validates the
relative ones against the working tree.  External schemes (http, https,
mailto) and pure #anchor links are skipped; a `#fragment` suffix on a
relative link is stripped before the existence check.  Exit status is the
number of broken links (0 = clean).
"""

import os
import re
import sys

# Inline links only: [text](target).  Reference-style links are not used in
# this repository.  The target group stops at the first ')' or whitespace,
# which is enough for the plain paths used here.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", "third_party", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                if rel.startswith("/"):
                    resolved = os.path.join(root, rel.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), rel)
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.getcwd()
    root = os.path.abspath(root)
    total = 0
    for path in sorted(markdown_files(root)):
        for lineno, target in check_file(path, root):
            rel_path = os.path.relpath(path, root)
            print(f"{rel_path}:{lineno}: broken link -> {target}")
            total += 1
    if total:
        print(f"\n{total} broken intra-repo link(s)")
    else:
        print("all intra-repo markdown links resolve")
    return min(total, 255)


if __name__ == "__main__":
    sys.exit(main())
