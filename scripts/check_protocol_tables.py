#!/usr/bin/env python3
"""Fail CI when PROTOCOL.md drifts from the protocol constants in code.

Cross-checks, against src/net/proto.h and src/util/status.h:
  * the opcode table (every enumerator, with its numeric value and wire
    name, must appear in PROTOCOL.md's opcode table — and vice versa);
  * the status-code table (same, from StatusCode);
  * every flag/sub-op constant (kFlag*/kMigrate*/kBackup*/kReplicate*)
    with its bit position (`1<<N`);
  * the framing constants (header size, version, magics, length limits).

The parsers are deliberately narrow: they read the exact enum/constant
style those headers use, so adding an opcode without updating the spec
(or vice versa) fails CI with a message naming the missing row.

Exit status is the number of discrepancies (0 = clean).
"""

import os
import re
import sys


def camel_to_wire(name):
    """kMapGet -> MAP_GET (the OpcodeName/StatusCodeName convention)."""
    assert name.startswith("k")
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name[1:]).upper()


def parse_enum(text, enum_name):
    """Parse `enum class <name> ... { ... }` into {wire_name: value}."""
    m = re.search(r"enum class %s[^{]*\{(.*?)\}\s*;" % enum_name, text, re.S)
    if m is None:
        raise SystemExit("cannot find enum %s" % enum_name)
    out = {}
    next_value = 0
    for line in m.group(1).splitlines():
        line = line.split("//", 1)[0].strip().rstrip(",")
        if not line:
            continue
        em = re.match(r"(k\w+)(?:\s*=\s*(\d+))?$", line)
        if em is None:
            continue
        value = int(em.group(2)) if em.group(2) else next_value
        out[camel_to_wire(em.group(1))] = value
        next_value = value + 1
    return out


def parse_bit_constants(text, prefixes):
    """Parse `inline constexpr uint8_t kName = 1u << N;` -> {name: N}."""
    out = {}
    for m in re.finditer(
            r"inline constexpr uint8_t (k\w+) = 1u << (\d+);", text):
        if m.group(1).startswith(prefixes):
            out[m.group(1)] = int(m.group(2))
    return out


def parse_md_table_rows(md, first_header_cell):
    """Yield cell lists for every row of the table whose header row's
    first cell matches, until the first non-table line."""
    lines = md.splitlines()
    for i, line in enumerate(lines):
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if cells and cells[0] == first_header_cell:
            for row in lines[i + 2:]:  # skip the |---| separator
                if not row.strip().startswith("|"):
                    return
                yield [c.strip() for c in row.strip().strip("|").split("|")]
            return


def check(errors, cond, message):
    if not cond:
        errors.append(message)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    proto = open(os.path.join(root, "src/net/proto.h"), encoding="utf-8").read()
    status = open(os.path.join(root, "src/util/status.h"), encoding="utf-8").read()
    md = open(os.path.join(root, "PROTOCOL.md"), encoding="utf-8").read()
    errors = []

    # --- opcode table -----------------------------------------------------
    code_ops = parse_enum(proto, "Opcode")
    md_ops = {}
    for cells in parse_md_table_rows(md, "value"):
        nm = re.match(r"`(\w+)`", cells[1])
        if nm and cells[0].isdigit() and nm.group(1) not in md_ops:
            md_ops.setdefault(nm.group(1), int(cells[0]))
    # The first "value"-headed table is the opcode table; the status table
    # has header "value" too, so split by membership instead of position.
    for name, value in code_ops.items():
        check(errors, md_ops.get(name) == value,
              "PROTOCOL.md opcode table: expected | %d | `%s` |" % (value, name))
    # Reverse direction: no phantom opcodes in the spec.
    code_status = parse_enum(status, "StatusCode")
    for name, value in md_ops.items():
        if name in code_status and name not in code_ops:
            continue  # a status-table row that shares the header shape
        check(errors, code_ops.get(name) == value,
              "PROTOCOL.md lists opcode `%s` = %d, not in src/net/proto.h"
              % (name, value))

    # --- status table -----------------------------------------------------
    for name, value in code_status.items():
        row = "| %d     | `%s`" % (value, name)
        pattern = r"\|\s*%d\s*\|\s*`%s`" % (value, name)
        check(errors, re.search(pattern, md) is not None,
              "PROTOCOL.md status table: expected %s... row" % row)

    # --- flag / sub-op constants ------------------------------------------
    bits = parse_bit_constants(
        proto, ("kFlag", "kMigrate", "kBackup", "kReplicate"))
    check(errors, len(bits) >= 12, "suspiciously few flag constants parsed")
    for name, bit in bits.items():
        pattern = r"`%s`\s*\|\s*`1<<%d`" % (name, bit)
        check(errors, re.search(pattern, md) is not None,
              "PROTOCOL.md flag tables: expected | `%s` | `1<<%d` | row"
              % (name, bit))

    # --- framing constants -------------------------------------------------
    for needle, why in [
        ("0x4B48", "request magic"),
        ("0x6B68", "response magic"),
        ("fixed 20-byte header", "header size"),
        ("`kMaxKeyLen`", "key length limit"),
        ("`kMaxValueLen`", "value length limit"),
    ]:
        check(errors, needle in md, "PROTOCOL.md missing %s (%s)" % (needle, why))
    check(errors, "kHeaderSize = 20" in proto,
          "proto.h header size changed; update PROTOCOL.md framing section")

    for e in errors:
        print("DRIFT: %s" % e)
    if not errors:
        print("PROTOCOL.md tables match src/net/proto.h "
              "(%d opcodes, %d status codes, %d flag constants)"
              % (len(code_ops), len(code_status), len(bits)))
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
