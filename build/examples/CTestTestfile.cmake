# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spellcheck "/root/repo/build/examples/spellcheck")
set_tests_properties(example_spellcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_user_db "/root/repo/build/examples/user_db")
set_tests_properties(example_user_db PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ndbm_port "/root/repo/build/examples/ndbm_port")
set_tests_properties(example_ndbm_port PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_symbol_table "/root/repo/build/examples/symbol_table")
set_tests_properties(example_symbol_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_db_tool "/root/repo/build/examples/db_tool")
set_tests_properties(example_db_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mail_index "/root/repo/build/examples/mail_index")
set_tests_properties(example_mail_index PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
