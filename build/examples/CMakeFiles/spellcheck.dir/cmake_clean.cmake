file(REMOVE_RECURSE
  "CMakeFiles/spellcheck.dir/spellcheck.cpp.o"
  "CMakeFiles/spellcheck.dir/spellcheck.cpp.o.d"
  "spellcheck"
  "spellcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spellcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
