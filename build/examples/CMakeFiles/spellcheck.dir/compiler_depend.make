# Empty compiler generated dependencies file for spellcheck.
# This may be replaced when dependencies are built.
