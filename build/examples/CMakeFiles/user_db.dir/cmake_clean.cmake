file(REMOVE_RECURSE
  "CMakeFiles/user_db.dir/user_db.cpp.o"
  "CMakeFiles/user_db.dir/user_db.cpp.o.d"
  "user_db"
  "user_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
