# Empty dependencies file for user_db.
# This may be replaced when dependencies are built.
