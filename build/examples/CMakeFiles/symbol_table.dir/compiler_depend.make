# Empty compiler generated dependencies file for symbol_table.
# This may be replaced when dependencies are built.
