file(REMOVE_RECURSE
  "CMakeFiles/symbol_table.dir/symbol_table.cpp.o"
  "CMakeFiles/symbol_table.dir/symbol_table.cpp.o.d"
  "symbol_table"
  "symbol_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
