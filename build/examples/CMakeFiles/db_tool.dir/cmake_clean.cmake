file(REMOVE_RECURSE
  "CMakeFiles/db_tool.dir/db_tool.cpp.o"
  "CMakeFiles/db_tool.dir/db_tool.cpp.o.d"
  "db_tool"
  "db_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
