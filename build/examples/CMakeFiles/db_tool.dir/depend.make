# Empty dependencies file for db_tool.
# This may be replaced when dependencies are built.
