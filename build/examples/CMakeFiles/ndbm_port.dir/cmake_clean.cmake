file(REMOVE_RECURSE
  "CMakeFiles/ndbm_port.dir/ndbm_port.cpp.o"
  "CMakeFiles/ndbm_port.dir/ndbm_port.cpp.o.d"
  "ndbm_port"
  "ndbm_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndbm_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
