# Empty compiler generated dependencies file for ndbm_port.
# This may be replaced when dependencies are built.
