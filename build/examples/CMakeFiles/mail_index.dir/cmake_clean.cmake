file(REMOVE_RECURSE
  "CMakeFiles/mail_index.dir/mail_index.cpp.o"
  "CMakeFiles/mail_index.dir/mail_index.cpp.o.d"
  "mail_index"
  "mail_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
