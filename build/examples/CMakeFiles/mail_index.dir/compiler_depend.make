# Empty compiler generated dependencies file for mail_index.
# This may be replaced when dependencies are built.
