# Empty dependencies file for fig8b_password.
# This may be replaced when dependencies are built.
