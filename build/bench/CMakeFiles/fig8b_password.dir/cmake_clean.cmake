file(REMOVE_RECURSE
  "CMakeFiles/fig8b_password.dir/fig8b_password.cc.o"
  "CMakeFiles/fig8b_password.dir/fig8b_password.cc.o.d"
  "fig8b_password"
  "fig8b_password.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_password.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
