file(REMOVE_RECURSE
  "CMakeFiles/fig5_reread.dir/fig5_reread.cc.o"
  "CMakeFiles/fig5_reread.dir/fig5_reread.cc.o.d"
  "fig5_reread"
  "fig5_reread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_reread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
