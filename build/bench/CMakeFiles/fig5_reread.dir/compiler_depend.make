# Empty compiler generated dependencies file for fig5_reread.
# This may be replaced when dependencies are built.
