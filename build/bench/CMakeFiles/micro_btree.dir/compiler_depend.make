# Empty compiler generated dependencies file for micro_btree.
# This may be replaced when dependencies are built.
