file(REMOVE_RECURSE
  "CMakeFiles/ablation_contraction.dir/ablation_contraction.cc.o"
  "CMakeFiles/ablation_contraction.dir/ablation_contraction.cc.o.d"
  "ablation_contraction"
  "ablation_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
