# Empty compiler generated dependencies file for ablation_contraction.
# This may be replaced when dependencies are built.
