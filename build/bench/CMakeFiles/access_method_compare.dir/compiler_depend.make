# Empty compiler generated dependencies file for access_method_compare.
# This may be replaced when dependencies are built.
