file(REMOVE_RECURSE
  "CMakeFiles/access_method_compare.dir/access_method_compare.cc.o"
  "CMakeFiles/access_method_compare.dir/access_method_compare.cc.o.d"
  "access_method_compare"
  "access_method_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_method_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
