# Empty dependencies file for ablation_hash_quality.
# This may be replaced when dependencies are built.
