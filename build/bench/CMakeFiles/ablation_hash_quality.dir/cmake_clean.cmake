file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash_quality.dir/ablation_hash_quality.cc.o"
  "CMakeFiles/ablation_hash_quality.dir/ablation_hash_quality.cc.o.d"
  "ablation_hash_quality"
  "ablation_hash_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
