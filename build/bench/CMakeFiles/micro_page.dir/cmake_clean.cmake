file(REMOVE_RECURSE
  "CMakeFiles/micro_page.dir/micro_page.cc.o"
  "CMakeFiles/micro_page.dir/micro_page.cc.o.d"
  "micro_page"
  "micro_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
