# Empty dependencies file for micro_page.
# This may be replaced when dependencies are built.
