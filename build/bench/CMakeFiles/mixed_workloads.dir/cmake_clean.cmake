file(REMOVE_RECURSE
  "CMakeFiles/mixed_workloads.dir/mixed_workloads.cc.o"
  "CMakeFiles/mixed_workloads.dir/mixed_workloads.cc.o.d"
  "mixed_workloads"
  "mixed_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
