# Empty compiler generated dependencies file for mixed_workloads.
# This may be replaced when dependencies are built.
