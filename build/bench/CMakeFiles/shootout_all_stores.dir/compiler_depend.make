# Empty compiler generated dependencies file for shootout_all_stores.
# This may be replaced when dependencies are built.
