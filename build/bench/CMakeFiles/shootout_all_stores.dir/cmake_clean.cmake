file(REMOVE_RECURSE
  "CMakeFiles/shootout_all_stores.dir/shootout_all_stores.cc.o"
  "CMakeFiles/shootout_all_stores.dir/shootout_all_stores.cc.o.d"
  "shootout_all_stores"
  "shootout_all_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shootout_all_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
