# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for shootout_all_stores.
