# Empty dependencies file for fig8a_dictionary.
# This may be replaced when dependencies are built.
