
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8a_dictionary.cc" "bench/CMakeFiles/fig8a_dictionary.dir/fig8a_dictionary.cc.o" "gcc" "bench/CMakeFiles/fig8a_dictionary.dir/fig8a_dictionary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hashkit_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hashkit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hashkit_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hashkit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pagefile/CMakeFiles/hashkit_pagefile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
