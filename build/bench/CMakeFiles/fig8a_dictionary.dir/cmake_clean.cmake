file(REMOVE_RECURSE
  "CMakeFiles/fig8a_dictionary.dir/fig8a_dictionary.cc.o"
  "CMakeFiles/fig8a_dictionary.dir/fig8a_dictionary.cc.o.d"
  "fig8a_dictionary"
  "fig8a_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
