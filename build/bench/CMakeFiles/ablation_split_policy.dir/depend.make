# Empty dependencies file for ablation_split_policy.
# This may be replaced when dependencies are built.
