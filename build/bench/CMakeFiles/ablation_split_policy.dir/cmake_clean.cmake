file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_policy.dir/ablation_split_policy.cc.o"
  "CMakeFiles/ablation_split_policy.dir/ablation_split_policy.cc.o.d"
  "ablation_split_policy"
  "ablation_split_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
