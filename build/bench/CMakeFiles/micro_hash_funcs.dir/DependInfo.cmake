
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_hash_funcs.cc" "bench/CMakeFiles/micro_hash_funcs.dir/micro_hash_funcs.cc.o" "gcc" "bench/CMakeFiles/micro_hash_funcs.dir/micro_hash_funcs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hashkit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pagefile/CMakeFiles/hashkit_pagefile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
