file(REMOVE_RECURSE
  "CMakeFiles/micro_hash_funcs.dir/micro_hash_funcs.cc.o"
  "CMakeFiles/micro_hash_funcs.dir/micro_hash_funcs.cc.o.d"
  "micro_hash_funcs"
  "micro_hash_funcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hash_funcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
