# Empty dependencies file for micro_hash_funcs.
# This may be replaced when dependencies are built.
