file(REMOVE_RECURSE
  "CMakeFiles/ablation_hsearch_variants.dir/ablation_hsearch_variants.cc.o"
  "CMakeFiles/ablation_hsearch_variants.dir/ablation_hsearch_variants.cc.o.d"
  "ablation_hsearch_variants"
  "ablation_hsearch_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hsearch_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
