# Empty dependencies file for ablation_hsearch_variants.
# This may be replaced when dependencies are built.
