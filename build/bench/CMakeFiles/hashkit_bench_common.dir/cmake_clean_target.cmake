file(REMOVE_RECURSE
  "lib/libhashkit_bench_common.a"
)
