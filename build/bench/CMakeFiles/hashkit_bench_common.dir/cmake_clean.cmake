file(REMOVE_RECURSE
  "CMakeFiles/hashkit_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/hashkit_bench_common.dir/bench_common.cc.o.d"
  "lib/libhashkit_bench_common.a"
  "lib/libhashkit_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
