# Empty compiler generated dependencies file for hashkit_bench_common.
# This may be replaced when dependencies are built.
