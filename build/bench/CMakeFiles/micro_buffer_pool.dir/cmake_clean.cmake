file(REMOVE_RECURSE
  "CMakeFiles/micro_buffer_pool.dir/micro_buffer_pool.cc.o"
  "CMakeFiles/micro_buffer_pool.dir/micro_buffer_pool.cc.o.d"
  "micro_buffer_pool"
  "micro_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
