# Empty compiler generated dependencies file for micro_buffer_pool.
# This may be replaced when dependencies are built.
