# Empty dependencies file for fig7_buffer_pool.
# This may be replaced when dependencies are built.
