file(REMOVE_RECURSE
  "CMakeFiles/fig7_buffer_pool.dir/fig7_buffer_pool.cc.o"
  "CMakeFiles/fig7_buffer_pool.dir/fig7_buffer_pool.cc.o.d"
  "fig7_buffer_pool"
  "fig7_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
