# Empty compiler generated dependencies file for fig6_known_vs_grown.
# This may be replaced when dependencies are built.
