file(REMOVE_RECURSE
  "CMakeFiles/fig6_known_vs_grown.dir/fig6_known_vs_grown.cc.o"
  "CMakeFiles/fig6_known_vs_grown.dir/fig6_known_vs_grown.cc.o.d"
  "fig6_known_vs_grown"
  "fig6_known_vs_grown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_known_vs_grown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
