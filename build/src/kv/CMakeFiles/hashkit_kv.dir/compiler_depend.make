# Empty compiler generated dependencies file for hashkit_kv.
# This may be replaced when dependencies are built.
