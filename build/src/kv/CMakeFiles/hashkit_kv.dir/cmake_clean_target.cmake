file(REMOVE_RECURSE
  "libhashkit_kv.a"
)
