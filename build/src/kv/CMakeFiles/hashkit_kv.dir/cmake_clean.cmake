file(REMOVE_RECURSE
  "CMakeFiles/hashkit_kv.dir/kv_store.cc.o"
  "CMakeFiles/hashkit_kv.dir/kv_store.cc.o.d"
  "libhashkit_kv.a"
  "libhashkit_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
