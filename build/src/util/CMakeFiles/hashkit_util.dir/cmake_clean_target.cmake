file(REMOVE_RECURSE
  "libhashkit_util.a"
)
