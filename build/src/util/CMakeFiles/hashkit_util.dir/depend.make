# Empty dependencies file for hashkit_util.
# This may be replaced when dependencies are built.
