file(REMOVE_RECURSE
  "CMakeFiles/hashkit_util.dir/bitmap.cc.o"
  "CMakeFiles/hashkit_util.dir/bitmap.cc.o.d"
  "CMakeFiles/hashkit_util.dir/hash_funcs.cc.o"
  "CMakeFiles/hashkit_util.dir/hash_funcs.cc.o.d"
  "CMakeFiles/hashkit_util.dir/random.cc.o"
  "CMakeFiles/hashkit_util.dir/random.cc.o.d"
  "libhashkit_util.a"
  "libhashkit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
