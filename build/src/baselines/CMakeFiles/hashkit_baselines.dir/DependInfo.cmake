
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dynahash/dynahash.cc" "src/baselines/CMakeFiles/hashkit_baselines.dir/dynahash/dynahash.cc.o" "gcc" "src/baselines/CMakeFiles/hashkit_baselines.dir/dynahash/dynahash.cc.o.d"
  "/root/repo/src/baselines/gdbm/gdbm.cc" "src/baselines/CMakeFiles/hashkit_baselines.dir/gdbm/gdbm.cc.o" "gcc" "src/baselines/CMakeFiles/hashkit_baselines.dir/gdbm/gdbm.cc.o.d"
  "/root/repo/src/baselines/hsearch/hsearch.cc" "src/baselines/CMakeFiles/hashkit_baselines.dir/hsearch/hsearch.cc.o" "gcc" "src/baselines/CMakeFiles/hashkit_baselines.dir/hsearch/hsearch.cc.o.d"
  "/root/repo/src/baselines/ndbm/dbm_base.cc" "src/baselines/CMakeFiles/hashkit_baselines.dir/ndbm/dbm_base.cc.o" "gcc" "src/baselines/CMakeFiles/hashkit_baselines.dir/ndbm/dbm_base.cc.o.d"
  "/root/repo/src/baselines/ndbm/ndbm.cc" "src/baselines/CMakeFiles/hashkit_baselines.dir/ndbm/ndbm.cc.o" "gcc" "src/baselines/CMakeFiles/hashkit_baselines.dir/ndbm/ndbm.cc.o.d"
  "/root/repo/src/baselines/sdbm/sdbm.cc" "src/baselines/CMakeFiles/hashkit_baselines.dir/sdbm/sdbm.cc.o" "gcc" "src/baselines/CMakeFiles/hashkit_baselines.dir/sdbm/sdbm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hashkit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pagefile/CMakeFiles/hashkit_pagefile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
