file(REMOVE_RECURSE
  "libhashkit_baselines.a"
)
