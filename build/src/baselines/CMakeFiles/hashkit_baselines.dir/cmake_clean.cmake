file(REMOVE_RECURSE
  "CMakeFiles/hashkit_baselines.dir/dynahash/dynahash.cc.o"
  "CMakeFiles/hashkit_baselines.dir/dynahash/dynahash.cc.o.d"
  "CMakeFiles/hashkit_baselines.dir/gdbm/gdbm.cc.o"
  "CMakeFiles/hashkit_baselines.dir/gdbm/gdbm.cc.o.d"
  "CMakeFiles/hashkit_baselines.dir/hsearch/hsearch.cc.o"
  "CMakeFiles/hashkit_baselines.dir/hsearch/hsearch.cc.o.d"
  "CMakeFiles/hashkit_baselines.dir/ndbm/dbm_base.cc.o"
  "CMakeFiles/hashkit_baselines.dir/ndbm/dbm_base.cc.o.d"
  "CMakeFiles/hashkit_baselines.dir/ndbm/ndbm.cc.o"
  "CMakeFiles/hashkit_baselines.dir/ndbm/ndbm.cc.o.d"
  "CMakeFiles/hashkit_baselines.dir/sdbm/sdbm.cc.o"
  "CMakeFiles/hashkit_baselines.dir/sdbm/sdbm.cc.o.d"
  "libhashkit_baselines.a"
  "libhashkit_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
