# Empty compiler generated dependencies file for hashkit_baselines.
# This may be replaced when dependencies are built.
