
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dictionary.cc" "src/workload/CMakeFiles/hashkit_workload.dir/dictionary.cc.o" "gcc" "src/workload/CMakeFiles/hashkit_workload.dir/dictionary.cc.o.d"
  "/root/repo/src/workload/kv.cc" "src/workload/CMakeFiles/hashkit_workload.dir/kv.cc.o" "gcc" "src/workload/CMakeFiles/hashkit_workload.dir/kv.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/workload/CMakeFiles/hashkit_workload.dir/mixes.cc.o" "gcc" "src/workload/CMakeFiles/hashkit_workload.dir/mixes.cc.o.d"
  "/root/repo/src/workload/passwd.cc" "src/workload/CMakeFiles/hashkit_workload.dir/passwd.cc.o" "gcc" "src/workload/CMakeFiles/hashkit_workload.dir/passwd.cc.o.d"
  "/root/repo/src/workload/timing.cc" "src/workload/CMakeFiles/hashkit_workload.dir/timing.cc.o" "gcc" "src/workload/CMakeFiles/hashkit_workload.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
