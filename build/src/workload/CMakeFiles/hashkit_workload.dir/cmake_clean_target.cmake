file(REMOVE_RECURSE
  "libhashkit_workload.a"
)
