# Empty compiler generated dependencies file for hashkit_workload.
# This may be replaced when dependencies are built.
