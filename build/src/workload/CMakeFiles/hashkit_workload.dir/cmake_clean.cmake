file(REMOVE_RECURSE
  "CMakeFiles/hashkit_workload.dir/dictionary.cc.o"
  "CMakeFiles/hashkit_workload.dir/dictionary.cc.o.d"
  "CMakeFiles/hashkit_workload.dir/kv.cc.o"
  "CMakeFiles/hashkit_workload.dir/kv.cc.o.d"
  "CMakeFiles/hashkit_workload.dir/mixes.cc.o"
  "CMakeFiles/hashkit_workload.dir/mixes.cc.o.d"
  "CMakeFiles/hashkit_workload.dir/passwd.cc.o"
  "CMakeFiles/hashkit_workload.dir/passwd.cc.o.d"
  "CMakeFiles/hashkit_workload.dir/timing.cc.o"
  "CMakeFiles/hashkit_workload.dir/timing.cc.o.d"
  "libhashkit_workload.a"
  "libhashkit_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
