file(REMOVE_RECURSE
  "CMakeFiles/hashkit_btree.dir/bt_page.cc.o"
  "CMakeFiles/hashkit_btree.dir/bt_page.cc.o.d"
  "CMakeFiles/hashkit_btree.dir/btree.cc.o"
  "CMakeFiles/hashkit_btree.dir/btree.cc.o.d"
  "libhashkit_btree.a"
  "libhashkit_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
