
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/bt_page.cc" "src/btree/CMakeFiles/hashkit_btree.dir/bt_page.cc.o" "gcc" "src/btree/CMakeFiles/hashkit_btree.dir/bt_page.cc.o.d"
  "/root/repo/src/btree/btree.cc" "src/btree/CMakeFiles/hashkit_btree.dir/btree.cc.o" "gcc" "src/btree/CMakeFiles/hashkit_btree.dir/btree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pagefile/CMakeFiles/hashkit_pagefile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
