# Empty compiler generated dependencies file for hashkit_btree.
# This may be replaced when dependencies are built.
