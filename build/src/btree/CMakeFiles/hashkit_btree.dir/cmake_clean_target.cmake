file(REMOVE_RECURSE
  "libhashkit_btree.a"
)
