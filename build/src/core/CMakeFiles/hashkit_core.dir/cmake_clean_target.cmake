file(REMOVE_RECURSE
  "libhashkit_core.a"
)
