file(REMOVE_RECURSE
  "CMakeFiles/hashkit_core.dir/hash_table.cc.o"
  "CMakeFiles/hashkit_core.dir/hash_table.cc.o.d"
  "CMakeFiles/hashkit_core.dir/hsearch_compat.cc.o"
  "CMakeFiles/hashkit_core.dir/hsearch_compat.cc.o.d"
  "CMakeFiles/hashkit_core.dir/meta.cc.o"
  "CMakeFiles/hashkit_core.dir/meta.cc.o.d"
  "CMakeFiles/hashkit_core.dir/ndbm_c_api.cc.o"
  "CMakeFiles/hashkit_core.dir/ndbm_c_api.cc.o.d"
  "CMakeFiles/hashkit_core.dir/ndbm_compat.cc.o"
  "CMakeFiles/hashkit_core.dir/ndbm_compat.cc.o.d"
  "CMakeFiles/hashkit_core.dir/ovfl.cc.o"
  "CMakeFiles/hashkit_core.dir/ovfl.cc.o.d"
  "CMakeFiles/hashkit_core.dir/page.cc.o"
  "CMakeFiles/hashkit_core.dir/page.cc.o.d"
  "libhashkit_core.a"
  "libhashkit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
