
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hash_table.cc" "src/core/CMakeFiles/hashkit_core.dir/hash_table.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/hash_table.cc.o.d"
  "/root/repo/src/core/hsearch_compat.cc" "src/core/CMakeFiles/hashkit_core.dir/hsearch_compat.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/hsearch_compat.cc.o.d"
  "/root/repo/src/core/meta.cc" "src/core/CMakeFiles/hashkit_core.dir/meta.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/meta.cc.o.d"
  "/root/repo/src/core/ndbm_c_api.cc" "src/core/CMakeFiles/hashkit_core.dir/ndbm_c_api.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/ndbm_c_api.cc.o.d"
  "/root/repo/src/core/ndbm_compat.cc" "src/core/CMakeFiles/hashkit_core.dir/ndbm_compat.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/ndbm_compat.cc.o.d"
  "/root/repo/src/core/ovfl.cc" "src/core/CMakeFiles/hashkit_core.dir/ovfl.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/ovfl.cc.o.d"
  "/root/repo/src/core/page.cc" "src/core/CMakeFiles/hashkit_core.dir/page.cc.o" "gcc" "src/core/CMakeFiles/hashkit_core.dir/page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pagefile/CMakeFiles/hashkit_pagefile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
