# Empty dependencies file for hashkit_core.
# This may be replaced when dependencies are built.
