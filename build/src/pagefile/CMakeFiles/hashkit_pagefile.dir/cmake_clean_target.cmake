file(REMOVE_RECURSE
  "libhashkit_pagefile.a"
)
