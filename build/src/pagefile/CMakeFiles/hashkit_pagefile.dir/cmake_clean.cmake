file(REMOVE_RECURSE
  "CMakeFiles/hashkit_pagefile.dir/buffer_pool.cc.o"
  "CMakeFiles/hashkit_pagefile.dir/buffer_pool.cc.o.d"
  "CMakeFiles/hashkit_pagefile.dir/page_file.cc.o"
  "CMakeFiles/hashkit_pagefile.dir/page_file.cc.o.d"
  "libhashkit_pagefile.a"
  "libhashkit_pagefile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_pagefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
