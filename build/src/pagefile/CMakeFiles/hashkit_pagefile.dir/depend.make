# Empty dependencies file for hashkit_pagefile.
# This may be replaced when dependencies are built.
