# Empty compiler generated dependencies file for hashkit_recno.
# This may be replaced when dependencies are built.
