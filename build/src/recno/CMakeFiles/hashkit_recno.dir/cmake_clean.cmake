file(REMOVE_RECURSE
  "CMakeFiles/hashkit_recno.dir/recno.cc.o"
  "CMakeFiles/hashkit_recno.dir/recno.cc.o.d"
  "libhashkit_recno.a"
  "libhashkit_recno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkit_recno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
