file(REMOVE_RECURSE
  "libhashkit_recno.a"
)
