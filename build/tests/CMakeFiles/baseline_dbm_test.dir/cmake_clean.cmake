file(REMOVE_RECURSE
  "CMakeFiles/baseline_dbm_test.dir/baseline_dbm_test.cc.o"
  "CMakeFiles/baseline_dbm_test.dir/baseline_dbm_test.cc.o.d"
  "baseline_dbm_test"
  "baseline_dbm_test.pdb"
  "baseline_dbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_dbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
