# Empty compiler generated dependencies file for baseline_dbm_test.
# This may be replaced when dependencies are built.
