# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dbm_access_function_test.
