file(REMOVE_RECURSE
  "CMakeFiles/dbm_access_function_test.dir/dbm_access_function_test.cc.o"
  "CMakeFiles/dbm_access_function_test.dir/dbm_access_function_test.cc.o.d"
  "dbm_access_function_test"
  "dbm_access_function_test.pdb"
  "dbm_access_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_access_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
