# Empty dependencies file for dbm_access_function_test.
# This may be replaced when dependencies are built.
