# Empty dependencies file for synchronized_test.
# This may be replaced when dependencies are built.
