file(REMOVE_RECURSE
  "CMakeFiles/synchronized_test.dir/synchronized_test.cc.o"
  "CMakeFiles/synchronized_test.dir/synchronized_test.cc.o.d"
  "synchronized_test"
  "synchronized_test.pdb"
  "synchronized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
