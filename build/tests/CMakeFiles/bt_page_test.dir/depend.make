# Empty dependencies file for bt_page_test.
# This may be replaced when dependencies are built.
