file(REMOVE_RECURSE
  "CMakeFiles/bt_page_test.dir/bt_page_test.cc.o"
  "CMakeFiles/bt_page_test.dir/bt_page_test.cc.o.d"
  "bt_page_test"
  "bt_page_test.pdb"
  "bt_page_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
