# Empty dependencies file for recno_test.
# This may be replaced when dependencies are built.
