file(REMOVE_RECURSE
  "CMakeFiles/recno_test.dir/recno_test.cc.o"
  "CMakeFiles/recno_test.dir/recno_test.cc.o.d"
  "recno_test"
  "recno_test.pdb"
  "recno_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
