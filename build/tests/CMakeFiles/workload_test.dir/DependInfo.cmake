
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/hashkit_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/hashkit_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/recno/CMakeFiles/hashkit_recno.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hashkit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hashkit_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hashkit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pagefile/CMakeFiles/hashkit_pagefile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hashkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
