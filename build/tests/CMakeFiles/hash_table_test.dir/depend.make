# Empty dependencies file for hash_table_test.
# This may be replaced when dependencies are built.
