# Empty dependencies file for ovfl_test.
# This may be replaced when dependencies are built.
