file(REMOVE_RECURSE
  "CMakeFiles/ovfl_test.dir/ovfl_test.cc.o"
  "CMakeFiles/ovfl_test.dir/ovfl_test.cc.o.d"
  "ovfl_test"
  "ovfl_test.pdb"
  "ovfl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovfl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
