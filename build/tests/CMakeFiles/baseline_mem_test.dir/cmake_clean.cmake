file(REMOVE_RECURSE
  "CMakeFiles/baseline_mem_test.dir/baseline_mem_test.cc.o"
  "CMakeFiles/baseline_mem_test.dir/baseline_mem_test.cc.o.d"
  "baseline_mem_test"
  "baseline_mem_test.pdb"
  "baseline_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
