# Empty dependencies file for baseline_mem_test.
# This may be replaced when dependencies are built.
