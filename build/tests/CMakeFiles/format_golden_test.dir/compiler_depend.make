# Empty compiler generated dependencies file for format_golden_test.
# This may be replaced when dependencies are built.
