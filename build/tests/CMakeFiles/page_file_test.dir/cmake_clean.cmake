file(REMOVE_RECURSE
  "CMakeFiles/page_file_test.dir/page_file_test.cc.o"
  "CMakeFiles/page_file_test.dir/page_file_test.cc.o.d"
  "page_file_test"
  "page_file_test.pdb"
  "page_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
