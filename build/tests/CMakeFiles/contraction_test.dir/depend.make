# Empty dependencies file for contraction_test.
# This may be replaced when dependencies are built.
