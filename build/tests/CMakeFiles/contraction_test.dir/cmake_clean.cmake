file(REMOVE_RECURSE
  "CMakeFiles/contraction_test.dir/contraction_test.cc.o"
  "CMakeFiles/contraction_test.dir/contraction_test.cc.o.d"
  "contraction_test"
  "contraction_test.pdb"
  "contraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
