file(REMOVE_RECURSE
  "CMakeFiles/compat_test.dir/compat_test.cc.o"
  "CMakeFiles/compat_test.dir/compat_test.cc.o.d"
  "compat_test"
  "compat_test.pdb"
  "compat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
