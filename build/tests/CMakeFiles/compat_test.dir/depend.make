# Empty dependencies file for compat_test.
# This may be replaced when dependencies are built.
