file(REMOVE_RECURSE
  "CMakeFiles/baseline_gdbm_test.dir/baseline_gdbm_test.cc.o"
  "CMakeFiles/baseline_gdbm_test.dir/baseline_gdbm_test.cc.o.d"
  "baseline_gdbm_test"
  "baseline_gdbm_test.pdb"
  "baseline_gdbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_gdbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
