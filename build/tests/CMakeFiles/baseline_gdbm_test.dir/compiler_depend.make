# Empty compiler generated dependencies file for baseline_gdbm_test.
# This may be replaced when dependencies are built.
