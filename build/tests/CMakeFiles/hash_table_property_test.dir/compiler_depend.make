# Empty compiler generated dependencies file for hash_table_property_test.
# This may be replaced when dependencies are built.
