file(REMOVE_RECURSE
  "CMakeFiles/hash_table_stress_test.dir/hash_table_stress_test.cc.o"
  "CMakeFiles/hash_table_stress_test.dir/hash_table_stress_test.cc.o.d"
  "hash_table_stress_test"
  "hash_table_stress_test.pdb"
  "hash_table_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_table_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
