# Empty dependencies file for hash_table_stress_test.
# This may be replaced when dependencies are built.
