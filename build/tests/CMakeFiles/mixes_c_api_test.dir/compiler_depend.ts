# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mixes_c_api_test.
