# Empty dependencies file for mixes_c_api_test.
# This may be replaced when dependencies are built.
