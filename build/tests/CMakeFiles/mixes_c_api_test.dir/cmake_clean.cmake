file(REMOVE_RECURSE
  "CMakeFiles/mixes_c_api_test.dir/mixes_c_api_test.cc.o"
  "CMakeFiles/mixes_c_api_test.dir/mixes_c_api_test.cc.o.d"
  "mixes_c_api_test"
  "mixes_c_api_test.pdb"
  "mixes_c_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixes_c_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
