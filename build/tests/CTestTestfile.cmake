# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/page_file_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/ovfl_test[1]_include.cmake")
include("/root/repo/build/tests/page_test[1]_include.cmake")
include("/root/repo/build/tests/hash_table_test[1]_include.cmake")
include("/root/repo/build/tests/hash_table_property_test[1]_include.cmake")
include("/root/repo/build/tests/compat_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_dbm_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_gdbm_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_mem_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kv_store_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/format_golden_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/recno_test[1]_include.cmake")
include("/root/repo/build/tests/hash_table_stress_test[1]_include.cmake")
include("/root/repo/build/tests/contraction_test[1]_include.cmake")
include("/root/repo/build/tests/bt_page_test[1]_include.cmake")
include("/root/repo/build/tests/dbm_access_function_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_property_test[1]_include.cmake")
include("/root/repo/build/tests/mixes_c_api_test[1]_include.cmake")
include("/root/repo/build/tests/synchronized_test[1]_include.cmake")
