#include "src/util/topk.h"

#include <algorithm>

namespace hashkit {

void TopKSketch::Record(std::string_view key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
    return;
  }
  if (entries_.size() < capacity_) {
    Entry entry;
    entry.key = std::string(key);
    entry.count = 1;
    entries_.emplace(entry.key, std::move(entry));
    return;
  }
  // Full: evict the minimum-count entry, adopt its count (Space-Saving).
  auto min_it = entries_.begin();
  for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
    if (cand->second.count < min_it->second.count) {
      min_it = cand;
    }
  }
  Entry entry;
  entry.key = std::string(key);
  entry.error = min_it->second.count;
  entry.count = min_it->second.count + 1;
  entries_.erase(min_it);
  entries_.emplace(entry.key, std::move(entry));
}

std::vector<TopKSketch::Entry> TopKSketch::Snapshot() const {
  std::vector<Entry> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  return out;
}

std::vector<TopKSketch::Entry> TopKSketch::MergeTopK(
    const std::vector<std::vector<Entry>>& snapshots, size_t k) {
  std::unordered_map<std::string, Entry> merged;
  for (const auto& snapshot : snapshots) {
    for (const Entry& entry : snapshot) {
      Entry& slot = merged[entry.key];
      if (slot.key.empty()) {
        slot.key = entry.key;
      }
      slot.count += entry.count;
      slot.error += entry.error;
    }
  }
  std::vector<Entry> out;
  out.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

}  // namespace hashkit
