#include "src/util/bitmap.h"

#include <bit>

namespace hashkit {

std::optional<size_t> RawFirstClearBit(const uint8_t* buf, size_t nbits) {
  const size_t full_bytes = nbits >> 3;
  for (size_t i = 0; i < full_bytes; ++i) {
    if (buf[i] != 0xff) {
      const size_t bit = (i << 3) + std::countr_one(buf[i]);
      return bit;
    }
  }
  for (size_t bit = full_bytes << 3; bit < nbits; ++bit) {
    if (!RawBitIsSet(buf, bit)) {
      return bit;
    }
  }
  return std::nullopt;
}

size_t RawPopcount(const uint8_t* buf, size_t nbits) {
  size_t count = 0;
  const size_t full_bytes = nbits >> 3;
  for (size_t i = 0; i < full_bytes; ++i) {
    count += static_cast<size_t>(std::popcount(buf[i]));
  }
  for (size_t bit = full_bytes << 3; bit < nbits; ++bit) {
    count += RawBitIsSet(buf, bit) ? 1 : 0;
  }
  return count;
}

void Bitmap::Resize(size_t nbits) {
  bytes_.resize((nbits + 7) >> 3, 0);
  if (nbits < nbits_) {
    // Clear any now-out-of-range bits in the final partial byte.
    for (size_t bit = nbits; bit < bytes_.size() << 3; ++bit) {
      RawBitClear(bytes_.data(), bit);
    }
  }
  nbits_ = nbits;
}

bool Bitmap::Test(size_t bit) const {
  if (bit >= nbits_) {
    return false;
  }
  return RawBitIsSet(bytes_.data(), bit);
}

void Bitmap::EnsureCapacity(size_t bit) {
  if (bit >= nbits_) {
    Resize(bit + 1);
  }
}

void Bitmap::Set(size_t bit) {
  EnsureCapacity(bit);
  RawBitSet(bytes_.data(), bit);
}

void Bitmap::Clear(size_t bit) {
  EnsureCapacity(bit);
  RawBitClear(bytes_.data(), bit);
}

size_t Bitmap::CountSet() const { return RawPopcount(bytes_.data(), nbits_); }

std::vector<uint8_t> Bitmap::ToBytes() const { return bytes_; }

Bitmap Bitmap::FromBytes(const std::vector<uint8_t>& bytes) {
  Bitmap bm;
  bm.bytes_ = bytes;
  bm.nbits_ = bytes.size() << 3;
  return bm;
}

}  // namespace hashkit
