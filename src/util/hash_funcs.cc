#include "src/util/hash_funcs.h"

namespace hashkit {

namespace {
// Primes from the original package's default function.
constexpr uint32_t kPrime1 = 37;
constexpr uint32_t kPrime2 = 1048583;

// Strong 32-bit finalizer (murmur3-style) used by HashThompson to stand in
// for dbm's table-driven randomizer: full avalanche on all input bits.
inline uint32_t Avalanche(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}
}  // namespace

uint32_t HashDefault(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 0;
  for (size_t i = 0; i < len; ++i) {
    h = h * kPrime1 ^ (static_cast<uint32_t>(p[i]) * kPrime2);
  }
  return h;
}

uint32_t HashSdbm(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 0;
  for (size_t i = 0; i < len; ++i) {
    h = static_cast<uint32_t>(p[i]) + (h << 6) + (h << 16) - h;
  }
  return h;
}

uint32_t HashLarson(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 0;
  for (size_t i = 0; i < len; ++i) {
    h = h * 101 + static_cast<uint32_t>(p[i]);
  }
  return h;
}

uint32_t HashDjb2(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 5381;
  for (size_t i = 0; i < len; ++i) {
    h = ((h << 5) + h) + static_cast<uint32_t>(p[i]);
  }
  return h;
}

uint32_t HashFnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint32_t>(p[i]);
    h *= 16777619u;
  }
  return h;
}

uint32_t HashKnuthMul(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 0;
  for (size_t i = 0; i < len; ++i) {
    h = ((h << 5) ^ (h >> 27)) ^ static_cast<uint32_t>(p[i]);
  }
  h *= 2654435761u;  // Knuth's golden-ratio multiplier
  // Multiplicative hashing concentrates entropy in the high bits; fold
  // them down because linear hashing masks the LOW bits.
  return h ^ (h >> 16);
}

uint32_t HashThompson(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = static_cast<uint32_t>(len) * 0x9e3779b1u;
  for (size_t i = 0; i < len; ++i) {
    h = (h << 7) + (h >> 25) + static_cast<uint32_t>(p[i]);
    h = Avalanche(h ^ static_cast<uint32_t>(i));
  }
  return Avalanche(h);
}

uint32_t HashIdentity4(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = 0;
  for (size_t i = 0; i < len && i < 4; ++i) {
    h |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return h;
}

HashFn GetHashFunc(HashFuncId id) {
  switch (id) {
    case HashFuncId::kDefault:
      return &HashDefault;
    case HashFuncId::kSdbm:
      return &HashSdbm;
    case HashFuncId::kLarson:
      return &HashLarson;
    case HashFuncId::kDjb2:
      return &HashDjb2;
    case HashFuncId::kFnv1a:
      return &HashFnv1a;
    case HashFuncId::kKnuthMul:
      return &HashKnuthMul;
    case HashFuncId::kThompson:
      return &HashThompson;
    case HashFuncId::kIdentity4:
      return &HashIdentity4;
  }
  return nullptr;
}

std::string_view HashFuncName(HashFuncId id) {
  switch (id) {
    case HashFuncId::kDefault:
      return "default";
    case HashFuncId::kSdbm:
      return "sdbm";
    case HashFuncId::kLarson:
      return "larson";
    case HashFuncId::kDjb2:
      return "djb2";
    case HashFuncId::kFnv1a:
      return "fnv1a";
    case HashFuncId::kKnuthMul:
      return "knuth_mul";
    case HashFuncId::kThompson:
      return "thompson";
    case HashFuncId::kIdentity4:
      return "identity4";
  }
  return "unknown";
}

}  // namespace hashkit
