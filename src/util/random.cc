#include "src/util/random.h"

#include <cmath>

namespace hashkit {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::string Rng::AsciiString(size_t length) {
  std::string s(length, '\0');
  for (auto& c : s) {
    c = static_cast<char>('a' + Uniform(26));
  }
  return s;
}

std::string Rng::ByteString(size_t length) {
  std::string s(length, '\0');
  for (auto& c : s) {
    c = static_cast<char>(Uniform(256));
  }
  return s;
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  // Inverse-CDF on a truncated harmonic approximation; exact enough for
  // workload skew and much cheaper than building the full CDF.
  if (n <= 1) {
    return 0;
  }
  const double u = NextDouble();
  const double one_minus = 1.0 - theta;
  double rank;
  if (theta == 1.0) {
    rank = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
  } else {
    const double zn = (std::pow(static_cast<double>(n), one_minus) - 1.0) / one_minus;
    rank = std::pow(u * zn * one_minus + 1.0, 1.0 / one_minus) - 1.0;
  }
  auto r = static_cast<uint64_t>(rank);
  return r >= n ? n - 1 : r;
}

}  // namespace hashkit
