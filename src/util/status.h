// hashkit: error handling primitives.
//
// The package is exception-free across its public API (consistent with an
// os-systems library whose ancestry is a C database package).  Operations
// that can fail return a Status, or a Result<T> when they also produce a
// value.  Allocation failure is considered fatal.

#ifndef HASHKIT_SRC_UTIL_STATUS_H_
#define HASHKIT_SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hashkit {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // key absent, or sequential scan exhausted
  kExists,          // insert with no-overwrite hit an existing key
  kInvalidArgument, // bad parameter (page size, fill factor, ...)
  kIoError,         // underlying read/write/sync failed
  kCorruption,      // on-disk structure failed validation
  kFull,            // fixed-capacity store (hsearch, dbm page) cannot accept
  kUnsupported,     // operation not supported by this store
  kTimeout,         // a deadline expired (network connect/send/recv)
  kMoved,           // cluster: request reached a non-owner node; the
                    // payload carries the current cluster map
  kOverloaded,      // server admission control shed the request; the
                    // payload carries a retry-after hint (milliseconds)
};

// Human-readable name for a status code, e.g. "NOT_FOUND".
constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kExists:
      return "EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kFull:
      return "FULL";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kMoved:
      return "MOVED";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

// Value-semantic status: a code plus an optional message.  The OK status
// carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status Exists(std::string msg = "") { return Status(StatusCode::kExists, std::move(msg)); }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg = "") { return Status(StatusCode::kIoError, std::move(msg)); }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Full(std::string msg = "") { return Status(StatusCode::kFull, std::move(msg)); }
  static Status Unsupported(std::string msg = "") {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Timeout(std::string msg = "") { return Status(StatusCode::kTimeout, std::move(msg)); }
  static Status Moved(std::string msg = "") { return Status(StatusCode::kMoved, std::move(msg)); }
  static Status Overloaded(std::string msg = "") {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsExists() const { return code_ == StatusCode::kExists; }
  bool IsFull() const { return code_ == StatusCode::kFull; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsMoved() const { return code_ == StatusCode::kMoved; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string s(StatusCodeName(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a non-OK status from an expression.
#define HASHKIT_RETURN_IF_ERROR(expr)       \
  do {                                      \
    ::hashkit::Status _st = (expr);         \
    if (!_st.ok()) {                        \
      return _st;                           \
    }                                       \
  } while (0)

// Evaluate a Result-returning expression; on error return its status,
// otherwise bind the value to `lhs`.
#define HASHKIT_ASSIGN_OR_RETURN(lhs, expr) \
  auto HASHKIT_CONCAT_(_res_, __LINE__) = (expr);                   \
  if (!HASHKIT_CONCAT_(_res_, __LINE__).ok()) {                     \
    return HASHKIT_CONCAT_(_res_, __LINE__).status();               \
  }                                                                 \
  lhs = std::move(HASHKIT_CONCAT_(_res_, __LINE__)).value()

#define HASHKIT_CONCAT_INNER_(a, b) a##b
#define HASHKIT_CONCAT_(a, b) HASHKIT_CONCAT_INNER_(a, b)

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_STATUS_H_
