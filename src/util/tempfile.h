// hashkit: the one tmp+fsync+rename implementation, plus the audit of the
// temp artifacts that discipline can leave behind.
//
// Several subsystems persist small control files atomically (the cluster
// map/marker file, the v1->v2 table upgrade, backup manifests): write the
// new bytes to a sibling temp file, fsync, rename over the target.  A
// crash then leaves either the old file or the new one — plus, possibly,
// a stale temp file.  That stale file is *never* a valid artifact: tools
// that copy or repair a database (db_tool backup/recover/verify) must not
// treat it as data, and this header centralizes both the write discipline
// and the "is something torn lying around?" check so every site agrees on
// the temp-file names.

#ifndef HASHKIT_SRC_UTIL_TEMPFILE_H_
#define HASHKIT_SRC_UTIL_TEMPFILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace hashkit {

// Atomically replaces `path` with `data`: writes `path` + ".tmp", fsyncs
// it, and renames it over `path`.  A crash at any point leaves either the
// previous file or the complete new one (plus at worst the temp file,
// which StaleArtifactsFor reports and RemoveStaleArtifacts clears).
Status WriteFileAtomic(const std::string& path, std::string_view data);

// Reads all of `path` into `*out`.  kNotFound when the file is absent.
Status ReadFileToString(const std::string& path, std::string* out);

// The in-progress artifacts a crashed writer can leave next to the
// database at `path`: "<path>.tmp", "<path>.upgrade" (+ its ".wal"),
// "<path>.cmap.tmp".  Returns the subset that currently exists.
std::vector<std::string> StaleArtifactsFor(const std::string& path);

// Deletes every artifact StaleArtifactsFor reports.  Safe: these names
// are only ever written as temp files, so removing them can never lose
// committed data.
Status RemoveStaleArtifacts(const std::string& path);

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_TEMPFILE_H_
