#include "src/util/tempfile.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace hashkit {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return Status::IoError("write " + tmp + ": " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync " + tmp + ": " + std::strerror(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound()
                           : Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return Status::IoError("read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) {
      break;
    }
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

std::vector<std::string> StaleArtifactsFor(const std::string& path) {
  const std::string candidates[] = {
      path + ".tmp",          path + ".upgrade", path + ".upgrade.wal",
      path + ".cmap.tmp",     path + ".wal.tmp",
  };
  std::vector<std::string> found;
  for (const std::string& c : candidates) {
    if (FileExists(c)) {
      found.push_back(c);
    }
  }
  return found;
}

Status RemoveStaleArtifacts(const std::string& path) {
  for (const std::string& artifact : StaleArtifactsFor(path)) {
    if (std::remove(artifact.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("remove " + artifact + ": " + std::strerror(errno));
    }
  }
  return Status::Ok();
}

}  // namespace hashkit
