// hashkit: deterministic pseudo-random number generation for workloads and
// property tests.  xoshiro256** — fast, high quality, and fully reproducible
// across platforms (unlike std::default_random_engine distributions).

#ifndef HASHKIT_SRC_UTIL_RANDOM_H_
#define HASHKIT_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace hashkit {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound); bound must be > 0.  Uses rejection sampling so the
  // distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p);

  // Random lowercase ASCII string of the given length.
  std::string AsciiString(size_t length);

  // Random byte string (may contain NULs) of the given length.
  std::string ByteString(size_t length);

  // Zipf-like skewed pick in [0, n): rank r chosen with probability
  // proportional to 1/(r+1)^theta.  Used for skewed key popularity.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t s_[4];
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_RANDOM_H_
