#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>

namespace hashkit {

void HistogramSnapshot::Record(uint64_t value) {
  ++count;
  sum += value;
  if (count == 1 || value < min) {
    min = value;
  }
  if (value > max) {
    max = value;
  }
  ++buckets[HistBucketIndex(value)];
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (uint32_t i = 0; i < kHistBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

uint64_t HistogramSnapshot::ValueAt(double p) const {
  if (count == 0) {
    return 0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  if (clamped == 0.0) {
    return min;  // the 0th percentile is the smallest recorded value, exactly
  }
  uint64_t rank = static_cast<uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (uint32_t i = 0; i < kHistBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The bucket bound over-reports by at most 1/kHistSubBuckets; clamp
      // to the recorded extremes so the tails stay exact.  (Clamp in two
      // steps: a snapshot taken mid-Record may transiently see min > max.)
      uint64_t v = HistBucketUpperBound(i);
      v = std::max(v, min);
      v = std::min(v, max);
      return v;
    }
  }
  return max;
}

void LatencyHistogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value, std::memory_order_relaxed)) {
  }
  uint64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value, std::memory_order_relaxed)) {
  }
  buckets_[HistBucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  // Read buckets first, then take the headline counters: a racing Record
  // bumps buckets before count is read at worst once, and the percentile
  // walk tolerates a bucket total differing from `count` by in-flight
  // records (ranks are clamped to what the buckets actually hold).
  for (uint32_t i = 0; i < kHistBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t seen_min = min_.load(std::memory_order_relaxed);
  snap.min = seen_min == UINT64_MAX ? 0 : seen_min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

PercentileSummary Summarize(const HistogramSnapshot& h) {
  PercentileSummary s;
  s.count = h.count;
  s.mean = h.Mean();
  s.p50 = h.p50();
  s.p90 = h.p90();
  s.p95 = h.p95();
  s.p99 = h.p99();
  s.p999 = h.p999();
  s.max = h.max;
  return s;
}

}  // namespace hashkit
