// hashkit: bit-vector utilities.
//
// Two users:
//   * the core package's overflow-page allocation bitmaps, which live in
//     raw page buffers on disk (the free functions below operate on caller
//     memory), and
//   * the dbm/ndbm and sdbm baselines' split-history bitmaps (the growable
//     Bitmap class).
//
// Bit order within the raw form is LSB-first within each 32-bit word, stored
// little-endian, matching the package's on-disk bitmap pages.

#ifndef HASHKIT_SRC_UTIL_BITMAP_H_
#define HASHKIT_SRC_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace hashkit {

// ---- Raw-buffer bit operations (for on-page bitmaps) ----

inline bool RawBitIsSet(const uint8_t* buf, size_t bit) {
  return (buf[bit >> 3] >> (bit & 7)) & 1;
}

inline void RawBitSet(uint8_t* buf, size_t bit) {
  buf[bit >> 3] = static_cast<uint8_t>(buf[bit >> 3] | (1u << (bit & 7)));
}

inline void RawBitClear(uint8_t* buf, size_t bit) {
  buf[bit >> 3] = static_cast<uint8_t>(buf[bit >> 3] & ~(1u << (bit & 7)));
}

// First clear bit in buf[0..nbits), or nullopt if all set.
std::optional<size_t> RawFirstClearBit(const uint8_t* buf, size_t nbits);

// Number of set bits in buf[0..nbits).
size_t RawPopcount(const uint8_t* buf, size_t nbits);

// ---- Growable bitmap (for split-history maps) ----

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t nbits) { Resize(nbits); }

  // Grows to hold at least nbits bits; new bits are clear.
  void Resize(size_t nbits);

  size_t size() const { return nbits_; }

  // Reads beyond size() return false (mirrors dbm's treatment of unwritten
  // .dir bytes as zero).
  bool Test(size_t bit) const;

  // Set/Clear grow the map on demand.
  void Set(size_t bit);
  void Clear(size_t bit);

  size_t CountSet() const;

  // Serialize to/from raw bytes (LSB-first), for baselines that persist
  // their split history in a .dir file.
  std::vector<uint8_t> ToBytes() const;
  static Bitmap FromBytes(const std::vector<uint8_t>& bytes);

 private:
  void EnsureCapacity(size_t bit);

  std::vector<uint8_t> bytes_;
  size_t nbits_ = 0;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_BITMAP_H_
