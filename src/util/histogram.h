// hashkit-obs: log-scaled latency histograms.
//
// The paper tunes the package almost entirely by measurement; the
// concurrent and networked layers grown on top of it need the same
// discipline, which means latency *distributions*, not just counters.
// This module provides the one histogram shape used everywhere:
//
//   - values (nanoseconds, but any uint64 works) are bucketed by octave
//     with kHistSubBuckets sub-buckets per power of two, so the relative
//     quantization error is bounded by 1/kHistSubBuckets (12.5%) while a
//     full histogram stays ~2.6 KB;
//   - bucket boundaries are fixed at compile time, so merging two
//     histograms is element-wise addition — associative and commutative,
//     which lets per-thread / per-shard instances combine into one
//     distribution without coordination;
//   - LatencyHistogram is the concurrent recorder (relaxed atomic
//     buckets: one fetch_add per Record on the hot path, ~no contention
//     when instances are per-shard); HistogramSnapshot is the plain-data
//     form used for single-threaded recording, merging, percentile
//     queries, and shipping through StoreStats.
//
// Overhead budget: Record() is two relaxed fetch_adds, one array store
// and (rarely) two CAS loops for min/max — tens of nanoseconds.  The
// clock read around the measured operation (MonotonicNanos x2) dominates
// at ~40 ns; against the several-hundred-ns floor of a store operation
// this keeps instrumentation below the 5% throughput budget.

#ifndef HASHKIT_SRC_UTIL_HISTOGRAM_H_
#define HASHKIT_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>

namespace hashkit {

// 8 sub-buckets per octave; 40 octaves cover [0, 2^42) ns ≈ 73 minutes.
// Larger values saturate into the top bucket.
inline constexpr uint32_t kHistSubBits = 3;
inline constexpr uint32_t kHistSubBuckets = 1u << kHistSubBits;
inline constexpr uint32_t kHistOctaves = 40;
inline constexpr uint32_t kHistBuckets = kHistOctaves * kHistSubBuckets;

// Bucket index for a value.  Values below kHistSubBuckets*2 map exactly
// (index == value); beyond that, the top kHistSubBits bits after the
// leading one select the sub-bucket.
constexpr uint32_t HistBucketIndex(uint64_t value) {
  if (value < 2 * kHistSubBuckets) {
    return static_cast<uint32_t>(value);
  }
  const uint32_t msb = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t octave = msb - kHistSubBits + 1;
  const uint32_t sub =
      static_cast<uint32_t>(value >> (msb - kHistSubBits)) & (kHistSubBuckets - 1);
  const uint32_t index = octave * kHistSubBuckets + sub;
  return index < kHistBuckets ? index : kHistBuckets - 1;
}

// Inclusive upper bound of the values mapping to `index` (the value a
// percentile query reports for samples in that bucket).
constexpr uint64_t HistBucketUpperBound(uint32_t index) {
  if (index < 2 * kHistSubBuckets) {
    return index;
  }
  const uint32_t octave = index / kHistSubBuckets;
  const uint32_t sub = index % kHistSubBuckets;
  const uint64_t base = uint64_t{1} << (octave + kHistSubBits - 1);
  const uint64_t step = base >> kHistSubBits;
  return base + (static_cast<uint64_t>(sub) + 1) * step - 1;
}

// Steady-clock nanoseconds; the timestamp source for every latency
// measurement in the package.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Plain-data histogram: single-threaded recording, merge, and percentile
// queries.  This is the form that travels inside StoreStats and bench
// result rows; LatencyHistogram::Snapshot() produces one.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when empty
  uint64_t max = 0;
  std::array<uint64_t, kHistBuckets> buckets{};

  bool empty() const { return count == 0; }
  double Mean() const { return count > 0 ? static_cast<double>(sum) / count : 0.0; }

  // Single-threaded record (use LatencyHistogram for concurrent callers).
  void Record(uint64_t value);

  // Element-wise addition; associative and commutative.
  void MergeFrom(const HistogramSnapshot& other);

  // Value at percentile `p` in [0, 100]: the upper bound of the bucket
  // holding the ceil(p/100 * count)-th sample, clamped to the recorded
  // min/max so ValueAt(0) == min and ValueAt(100) == max.  0 when empty.
  uint64_t ValueAt(double p) const;

  uint64_t p50() const { return ValueAt(50); }
  uint64_t p90() const { return ValueAt(90); }
  uint64_t p95() const { return ValueAt(95); }
  uint64_t p99() const { return ValueAt(99); }
  uint64_t p999() const { return ValueAt(99.9); }
};

// Concurrent recorder: relaxed atomic buckets, safe for any number of
// recording and snapshotting threads with no locks (TSan-clean).  Counts
// are monotone, so a snapshot taken during traffic is a consistent
// lower-bound view of the distribution.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kHistBuckets> buckets_{};
};

// The fixed set of quantiles reported everywhere (stats text, metrics
// exposition, bench JSON), pulled out of a snapshot in one pass.
struct PercentileSummary {
  uint64_t count = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t max = 0;
};

PercentileSummary Summarize(const HistogramSnapshot& h);

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_HISTOGRAM_H_
