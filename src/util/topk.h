// hashkit-cache: hot-key detection via the Space-Saving top-K sketch
// (Metwally, Agrawal & El Abbadi, "Efficient computation of frequent and
// top-k elements in data streams").
//
// The sketch tracks at most `capacity` keys with (count, error) pairs.  A
// hit on a tracked key bumps its count exactly; a miss on a full sketch
// evicts the minimum-count entry and adopts its count as the newcomer's
// starting count, recording that inherited count as `error` — so every
// reported count is an overestimate by at most `error`, and any key whose
// true frequency exceeds N/capacity is guaranteed to be tracked.
//
// One sketch per server worker (single-writer, so Record takes no lock);
// a STATS render merges the per-worker sketches by key and reports the
// global top K.  Merge is sound because counts are additive upper bounds.

#ifndef HASHKIT_SRC_UTIL_TOPK_H_
#define HASHKIT_SRC_UTIL_TOPK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hashkit {

class TopKSketch {
 public:
  struct Entry {
    std::string key;
    uint64_t count = 0;  // upper bound on the key's true frequency
    uint64_t error = 0;  // count inherited at adoption (overestimate bound)
  };

  explicit TopKSketch(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Counts one access.  Internally locked, but the lock is only ever
  // contended by a concurrent Snapshot (STATS), never by another writer.
  void Record(std::string_view key);

  // The tracked entries, highest count first.
  std::vector<Entry> Snapshot() const;

  // Merges several sketches' snapshots (summing counts/errors per key) and
  // returns the top `k`, highest merged count first.
  static std::vector<Entry> MergeTopK(const std::vector<std::vector<Entry>>& snapshots,
                                      size_t k);

 private:
  // Transparent hashing so Record can probe with a string_view without
  // materializing a std::string on every access.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry, StringHash, std::equal_to<>> entries_;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_TOPK_H_
