// hashkit: explicit little-endian codecs for on-disk integers.
//
// The 1991 package wrote integers in host order and recorded a byte-order
// tag in the file header.  We instead define the disk format to be
// little-endian and convert explicitly, which makes files portable and the
// codec testable in isolation.

#ifndef HASHKIT_SRC_UTIL_ENDIAN_H_
#define HASHKIT_SRC_UTIL_ENDIAN_H_

#include <cstdint>
#include <cstring>

namespace hashkit {

inline void EncodeU16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v & 0xff);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline uint16_t DecodeU16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0] | (static_cast<uint16_t>(src[1]) << 8));
}

inline void EncodeU32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v & 0xff);
  dst[1] = static_cast<uint8_t>((v >> 8) & 0xff);
  dst[2] = static_cast<uint8_t>((v >> 16) & 0xff);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

inline uint32_t DecodeU32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) | (static_cast<uint32_t>(src[1]) << 8) |
         (static_cast<uint32_t>(src[2]) << 16) | (static_cast<uint32_t>(src[3]) << 24);
}

inline void EncodeU64(uint8_t* dst, uint64_t v) {
  EncodeU32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  EncodeU32(dst + 4, static_cast<uint32_t>(v >> 32));
}

inline uint64_t DecodeU64(const uint8_t* src) {
  return static_cast<uint64_t>(DecodeU32(src)) |
         (static_cast<uint64_t>(DecodeU32(src + 4)) << 32);
}

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_ENDIAN_H_
