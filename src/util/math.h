// hashkit: small integer-math helpers shared by the hashing packages.

#ifndef HASHKIT_SRC_UTIL_MATH_H_
#define HASHKIT_SRC_UTIL_MATH_H_

#include <bit>
#include <cstdint>

namespace hashkit {

// True iff v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Smallest power of two >= v (v must be >= 1 and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t v) { return std::bit_ceil(v); }

// floor(log2(v)); v must be >= 1.
constexpr uint32_t FloorLog2(uint64_t v) {
  return static_cast<uint32_t>(63 - std::countl_zero(v));
}

// ceil(log2(v)); v must be >= 1.  This is the paper's `log2()` ("ceil(log
// base 2)") used by BUCKET_TO_PAGE.
constexpr uint32_t CeilLog2(uint64_t v) {
  return v <= 1 ? 0 : FloorLog2(v - 1) + 1;
}

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_MATH_H_
