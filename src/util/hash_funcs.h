// hashkit: the hash-function suite.
//
// The paper ships "a variety of hash functions" and lets the user supply
// their own at table-creation time; the default was chosen for cycles per
// call while staying within a few percent of the best collision count.  We
// provide the historical functions used by each package plus several modern
// alternatives, all behind one signature so benchmarks can sweep them.

#ifndef HASHKIT_SRC_UTIL_HASH_FUNCS_H_
#define HASHKIT_SRC_UTIL_HASH_FUNCS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hashkit {

// All table hashes share this signature: arbitrary bytes -> 32-bit value.
using HashFn = uint32_t (*)(const void* data, size_t len);

enum class HashFuncId : uint8_t {
  kDefault = 0,    // the 1991 package's default: h = h*37 ^ (c * 1048583)
  kSdbm,           // sdbm's polynomial: h = c + (h<<6) + (h<<16) - h
  kLarson,         // Larson's multiplicative: h = h*101 + c
  kDjb2,           // Bernstein: h = h*33 + c, seed 5381
  kFnv1a,          // FNV-1a 32-bit
  kKnuthMul,       // rotate-xor fold finalized with Knuth's 2654435761
  kThompson,       // dbm-style byte-fold with strong avalanche finalizer
  kIdentity4,      // first 4 bytes verbatim — a deliberately bad function for
                   // clustering tests and "user hash can be terrible" demos
};

inline constexpr HashFuncId kAllHashFuncIds[] = {
    HashFuncId::kDefault, HashFuncId::kSdbm,     HashFuncId::kLarson,
    HashFuncId::kDjb2,    HashFuncId::kFnv1a,    HashFuncId::kKnuthMul,
    HashFuncId::kThompson, HashFuncId::kIdentity4,
};

// Individual functions (exposed so tests can call them directly).
uint32_t HashDefault(const void* data, size_t len);
uint32_t HashSdbm(const void* data, size_t len);
uint32_t HashLarson(const void* data, size_t len);
uint32_t HashDjb2(const void* data, size_t len);
uint32_t HashFnv1a(const void* data, size_t len);
uint32_t HashKnuthMul(const void* data, size_t len);
uint32_t HashThompson(const void* data, size_t len);
uint32_t HashIdentity4(const void* data, size_t len);

// Lookup by id.  Returns nullptr only for out-of-range ids.
HashFn GetHashFunc(HashFuncId id);

std::string_view HashFuncName(HashFuncId id);

// Convenience for string keys.
inline uint32_t HashBytes(HashFn fn, std::string_view s) { return fn(s.data(), s.size()); }

}  // namespace hashkit

#endif  // HASHKIT_SRC_UTIL_HASH_FUNCS_H_
