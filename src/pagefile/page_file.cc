#include "src/pagefile/page_file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace hashkit {

namespace {

class DiskPageFile final : public PageFile {
 public:
  DiskPageFile(int fd, size_t page_size, uint64_t page_count)
      : PageFile(page_size), fd_(fd), page_count_(page_count) {}

  ~DiskPageFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status ReadPage(uint64_t pageno, std::span<uint8_t> out) override {
    if (out.size() != page_size_) {
      return Status::InvalidArgument("read buffer size != page size");
    }
    if (pageno >= page_count_.load(std::memory_order_acquire)) {
      // Beyond EOF: sparse semantics, page reads as zero.
      std::memset(out.data(), 0, out.size());
      CountZeroFill();
      return Status::Ok();
    }
    const off_t offset = static_cast<off_t>(pageno * page_size_);
    size_t done = 0;
    while (done < page_size_) {
      const ssize_t n = ::pread(fd_, out.data() + done, page_size_ - done,
                                offset + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError(std::string("pread: ") + std::strerror(errno));
      }
      if (n == 0) {
        // Short file (hole at the tail): remainder reads as zero.
        std::memset(out.data() + done, 0, page_size_ - done);
        break;
      }
      done += static_cast<size_t>(n);
    }
    CountRead();
    return Status::Ok();
  }

  Status WritePage(uint64_t pageno, std::span<const uint8_t> data) override {
    if (data.size() != page_size_) {
      return Status::InvalidArgument("write buffer size != page size");
    }
    const off_t offset = static_cast<off_t>(pageno * page_size_);
    size_t done = 0;
    while (done < page_size_) {
      const ssize_t n = ::pwrite(fd_, data.data() + done, page_size_ - done,
                                 offset + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    // CAS-max: concurrent writers extend the count monotonically.
    uint64_t count = page_count_.load(std::memory_order_relaxed);
    while (pageno + 1 > count &&
           !page_count_.compare_exchange_weak(count, pageno + 1, std::memory_order_acq_rel)) {
    }
    CountWrite();
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("fsync: ") + std::strerror(errno));
    }
    CountSync();
    return Status::Ok();
  }

  uint64_t PageCount() const override { return page_count_.load(std::memory_order_acquire); }

 private:
  int fd_;
  std::atomic<uint64_t> page_count_;
};

class MemPageFile final : public PageFile {
 public:
  explicit MemPageFile(size_t page_size) : PageFile(page_size) {}

  Status ReadPage(uint64_t pageno, std::span<uint8_t> out) override {
    if (out.size() != page_size_) {
      return Status::InvalidArgument("read buffer size != page size");
    }
    const std::shared_lock<std::shared_mutex> lock(mu_);
    if (pageno >= pages_.size() || pages_[pageno].empty()) {
      std::memset(out.data(), 0, out.size());
      CountZeroFill();
      return Status::Ok();
    }
    std::memcpy(out.data(), pages_[pageno].data(), page_size_);
    CountRead();
    return Status::Ok();
  }

  Status WritePage(uint64_t pageno, std::span<const uint8_t> data) override {
    if (data.size() != page_size_) {
      return Status::InvalidArgument("write buffer size != page size");
    }
    const std::unique_lock<std::shared_mutex> lock(mu_);
    if (pageno >= pages_.size()) {
      pages_.resize(pageno + 1);
    }
    pages_[pageno].assign(data.begin(), data.end());
    CountWrite();
    return Status::Ok();
  }

  Status Sync() override {
    CountSync();
    return Status::Ok();
  }

  uint64_t PageCount() const override {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return pages_.size();
  }

 private:
  // Readers of distinct resident pages proceed in parallel; only a write
  // (which may grow the vector) excludes them.
  mutable std::shared_mutex mu_;
  std::vector<std::vector<uint8_t>> pages_;
};

}  // namespace

Result<std::unique_ptr<PageFile>> OpenDiskPageFile(const std::string& path, size_t page_size,
                                                   bool truncate, bool exclusive_lock) {
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be positive");
  }
  int flags = O_RDWR | O_CREAT;
  if (truncate) {
    flags |= O_TRUNC;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  if (exclusive_lock && ::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError(path + ": file is locked by another process");
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError(std::string("lseek: ") + std::strerror(errno));
  }
  const uint64_t page_count = (static_cast<uint64_t>(size) + page_size - 1) / page_size;
  return std::unique_ptr<PageFile>(new DiskPageFile(fd, page_size, page_count));
}

Result<std::unique_ptr<PageFile>> OpenTempPageFile(size_t page_size, const std::string& dir) {
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be positive");
  }
  std::string base = dir;
  if (base.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    base = tmpdir != nullptr ? tmpdir : "/tmp";
  }
  std::string tmpl = base + "/hashkit.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const int fd = ::mkstemp(buf.data());
  if (fd < 0) {
    return Status::IoError(std::string("mkstemp: ") + std::strerror(errno));
  }
  ::unlink(buf.data());  // anonymous: vanishes when closed
  return std::unique_ptr<PageFile>(new DiskPageFile(fd, page_size, 0));
}

std::unique_ptr<PageFile> MakeMemPageFile(size_t page_size) {
  return std::make_unique<MemPageFile>(page_size);
}

}  // namespace hashkit
