// hashkit: page-granular storage abstraction.
//
// Every store in this repository reads and writes fixed-size pages through
// this interface.  Three backends:
//
//   * DiskPageFile — a real file accessed with pread/pwrite.  Reads beyond
//     EOF return zero-filled pages (sparse-file semantics, which dbm/ndbm
//     rely on: their .pag file is addressed directly by hash bits and is
//     mostly holes).
//   * MemPageFile  — anonymous memory, for purely in-memory tables.
//   * Temp disk files (unlinked at creation) back "memory-resident" hash
//     tables that exceed their buffer pool, reproducing the paper's
//     behaviour of swapping pages to temporary storage.
//
// All backends count reads/writes/syncs so experiments can report I/O
// behaviour independently of wall-clock noise.
//
// Thread-safety: ReadPage/WritePage/Sync may be called concurrently from
// any number of threads (the buffer pool issues backend I/O outside its
// bookkeeping locks).  Concurrent accesses to *distinct* pages are
// independent; concurrent accesses to the same page are each atomic at
// page granularity for the memory backend, and rely on pread/pwrite for
// the disk backends.  Counters are relaxed atomics; stats() returns a
// snapshot.

#ifndef HASHKIT_SRC_PAGEFILE_PAGE_FILE_H_
#define HASHKIT_SRC_PAGEFILE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/util/status.h"

namespace hashkit {

struct PageFileStats {
  uint64_t reads = 0;        // page reads that hit the backend
  uint64_t writes = 0;       // page writes to the backend
  uint64_t syncs = 0;        // explicit Sync() calls
  uint64_t zero_fills = 0;   // reads satisfied from a file hole / beyond EOF
};

class PageFile {
 public:
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_size() const { return page_size_; }

  // Reads page `pageno` into `out` (must be page_size bytes).  A page that
  // was never written reads as all zeroes.
  virtual Status ReadPage(uint64_t pageno, std::span<uint8_t> out) = 0;

  // Writes page `pageno` from `data` (must be page_size bytes), extending
  // the file as needed.
  virtual Status WritePage(uint64_t pageno, std::span<const uint8_t> data) = 0;

  // Flushes buffered writes to stable storage.
  virtual Status Sync() = 0;

  // One past the highest page ever written.
  virtual uint64_t PageCount() const = 0;

  // Consistent-enough snapshot of the I/O counters (each counter is a
  // relaxed atomic; a snapshot taken during traffic is a lower bound).
  PageFileStats stats() const {
    PageFileStats out;
    out.reads = reads_.load(std::memory_order_relaxed);
    out.writes = writes_.load(std::memory_order_relaxed);
    out.syncs = syncs_.load(std::memory_order_relaxed);
    out.zero_fills = zero_fills_.load(std::memory_order_relaxed);
    return out;
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    syncs_.store(0, std::memory_order_relaxed);
    zero_fills_.store(0, std::memory_order_relaxed);
  }

 protected:
  explicit PageFile(size_t page_size) : page_size_(page_size) {}

  void CountRead() { reads_.fetch_add(1, std::memory_order_relaxed); }
  void CountWrite() { writes_.fetch_add(1, std::memory_order_relaxed); }
  void CountSync() { syncs_.fetch_add(1, std::memory_order_relaxed); }
  void CountZeroFill() { zero_fills_.fetch_add(1, std::memory_order_relaxed); }

  size_t page_size_;

 private:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> zero_fills_{0};
};

// Opens (creating if necessary) `path` as a page file.  `truncate` discards
// existing contents.  With `exclusive_lock` the file is flock(2)ed for the
// lifetime of the object; a second locked open of the same file fails with
// kBusy semantics (reported as kIoError "file is locked") instead of
// silently corrupting — single-writer protection, the paper's multi-user
// future-work in its simplest form.
Result<std::unique_ptr<PageFile>> OpenDiskPageFile(const std::string& path, size_t page_size,
                                                   bool truncate, bool exclusive_lock = false);

// Creates an unlinked temporary page file in `dir` (or $TMPDIR when empty).
Result<std::unique_ptr<PageFile>> OpenTempPageFile(size_t page_size, const std::string& dir = "");

// Purely in-memory page file.
std::unique_ptr<PageFile> MakeMemPageFile(size_t page_size);

}  // namespace hashkit

#endif  // HASHKIT_SRC_PAGEFILE_PAGE_FILE_H_
