// hashkit: one buffer-pool frame.  Split out of buffer_pool.cc so the
// pluggable eviction policies (eviction.h) can read frame state and keep
// their own intrusive links without reaching into the pool's internals.

#ifndef HASHKIT_SRC_PAGEFILE_BUF_FRAME_H_
#define HASHKIT_SRC_PAGEFILE_BUF_FRAME_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace hashkit {

enum class FrameState : uint8_t {
  kLoading,  // published in the table, backend read in flight
  kReady,    // contents valid
  kFailed,   // backend read failed; frame is being withdrawn
};

struct BufFrame {
  uint64_t pageno = 0;
  std::atomic<uint32_t> pins{0};
  std::atomic<bool> ref_bit{false};   // second-chance bit, set on every hit
  std::atomic<bool> dirty{false};
  // WAL barrier flags (meaningful only when the pool's barrier is on):
  // wal_pending: the frame is in the pool's pending set awaiting logging;
  // wal_hold: the frame's image is not yet durable in the log, so
  // WriteBack must not touch the main file.
  std::atomic<bool> wal_pending{false};
  std::atomic<bool> wal_hold{false};
  std::atomic<FrameState> state{FrameState::kLoading};
  std::unique_ptr<uint8_t[]> data;

  // Overflow-chain links: evicting a frame evicts ovfl_next transitively.
  // Guarded by BufferPool::sweep_mu_.
  BufFrame* ovfl_next = nullptr;
  BufFrame* chain_prev = nullptr;

  // Clock ring (circular, all resident frames — the pool's flush/
  // invalidate iteration order, independent of the eviction policy).
  // Guarded by sweep_mu_.
  BufFrame* ring_prev = nullptr;
  BufFrame* ring_next = nullptr;

  // Eviction-policy links (hashkit-cache): each policy keeps the frame on
  // at most one of its internal lists via these, with pol_region naming
  // which list (policy-defined meaning).  Guarded by sweep_mu_ — every
  // policy hook except OnAccess runs under it.
  BufFrame* pol_prev = nullptr;
  BufFrame* pol_next = nullptr;
  uint8_t pol_region = 0;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_PAGEFILE_BUF_FRAME_H_
