#include "src/pagefile/buffer_pool.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "src/pagefile/buf_frame.h"

namespace hashkit {

// One lock-striped partition of the frame table.  The stripe lock guards
// the map itself; per-frame fields are atomics so a hit only ever takes
// the lock shared.  The condvar carries load-completion wakeups for
// misses that coalesced onto another thread's backend read.
struct BufferPool::Stripe {
  mutable std::shared_mutex mu;
  std::condition_variable_any cv;
  std::unordered_map<uint64_t, std::shared_ptr<BufFrame>> frames;

  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  LatencyHistogram get_hit_ns;
  LatencyHistogram get_miss_ns;
};

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = std::move(other.frame_);
    other.pool_ = nullptr;
    other.frame_.reset();
  }
  return *this;
}

uint8_t* PageRef::data() {
  assert(frame_ != nullptr);
  return frame_->data.get();
}

const uint8_t* PageRef::data() const {
  assert(frame_ != nullptr);
  return frame_->data.get();
}

uint64_t PageRef::pageno() const {
  assert(frame_ != nullptr);
  return frame_->pageno;
}

void PageRef::MarkDirty() {
  assert(frame_ != nullptr);
  frame_->dirty.store(true, std::memory_order_release);
  pool_->NoteDirty(frame_);
}

void PageRef::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(frame_.get());
    frame_.reset();
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t pool_bytes, EvictionPolicyKind eviction)
    : file_(file),
      page_size_(file->page_size()),
      max_frames_(pool_bytes / file->page_size()),
      stripes_(new Stripe[kPoolStripes]),
      policy_(MakeEvictionPolicy(eviction, pool_bytes / file->page_size())) {}

BufferPool::~BufferPool() = default;

void BufferPool::Prefetch(uint64_t pageno) const {
  Stripe& stripe = stripes_[StripeOf(pageno)];
  // try_to_lock: a prefetch must never wait — losing the hint is cheaper
  // than blocking behind a writer on the stripe.
  std::shared_lock<std::shared_mutex> lock(stripe.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    return;
  }
  const auto it = stripe.frames.find(pageno);
  if (it == stripe.frames.end()) {
    return;
  }
  const BufFrame* frame = it->second.get();
  if (frame->state.load(std::memory_order_acquire) != FrameState::kReady) {
    return;
  }
  // Two lines cover the header plus a v2 page's tag array and the front of
  // the offset index at common bucket sizes.
  const uint8_t* data = frame->data.get();
  __builtin_prefetch(data, /*rw=*/0, /*locality=*/3);
  if (page_size_ > 64) {
    __builtin_prefetch(data + 64, /*rw=*/0, /*locality=*/3);
  }
}

void BufferPool::Unpin(BufFrame* frame) {
  assert(frame->pins.load(std::memory_order_relaxed) > 0);
  // The reference bit was already set when the pin was taken; dropping the
  // last pin is a single atomic decrement — no chain splice, no lock.
  frame->pins.fetch_sub(1, std::memory_order_acq_rel);
}

template <typename Lock>
Result<PageRef> BufferPool::PinResident(Stripe& stripe, std::shared_ptr<BufFrame> frame,
                                        Lock& lock, uint64_t t0) {
  frame->pins.fetch_add(1, std::memory_order_acq_rel);
  // Policy hit hook: lock-free by contract (ref bit / sketch atomics only).
  policy_->OnAccess(frame.get());
  FrameState state = frame->state.load(std::memory_order_acquire);
  if (state == FrameState::kLoading) {
    // Coalesce: another thread is reading this page from the backend.
    // The pin (taken above) keeps the frame from being evicted while we
    // wait; the condvar releases the stripe lock so the loader can
    // publish.
    stripe.cv.wait(lock, [&] {
      return frame->state.load(std::memory_order_acquire) != FrameState::kLoading;
    });
    state = frame->state.load(std::memory_order_acquire);
  }
  if (state == FrameState::kFailed) {
    frame->pins.fetch_sub(1, std::memory_order_acq_rel);
    return Status::IoError("buffer pool: coalesced page read failed");
  }
  stripe.hits.fetch_add(1, std::memory_order_relaxed);
  stripe.get_hit_ns.Record(MonotonicNanos() - t0);
  return PageRef(this, std::move(frame));
}

Result<PageRef> BufferPool::Get(uint64_t pageno, bool create_new) {
  // Clock starts before any synchronization so hit/miss latency includes
  // lock wait — what the caller actually experiences.
  const uint64_t t0 = MonotonicNanos();
  Stripe& stripe = stripes_[StripeOf(pageno)];

  // Hit path: stripe-shared lookup + atomic pin.  No global lock, no
  // replacement-list splice.
  {
    std::shared_lock<std::shared_mutex> lock(stripe.mu);
    auto it = stripe.frames.find(pageno);
    if (it != stripe.frames.end()) {
      return PinResident(stripe, it->second, lock, t0);
    }
  }

  // Miss: publish a loading frame, then read outside every lock.
  std::shared_ptr<BufFrame> frame;
  {
    std::unique_lock<std::shared_mutex> lock(stripe.mu);
    auto it = stripe.frames.find(pageno);
    if (it != stripe.frames.end()) {
      // Lost the race: someone else published this page first.
      return PinResident(stripe, it->second, lock, t0);
    }
    frame = std::make_shared<BufFrame>();
    frame->pageno = pageno;
    frame->data = std::make_unique<uint8_t[]>(page_size_);  // value-init: zero
    frame->pins.store(1, std::memory_order_relaxed);
    if (create_new) {
      frame->dirty.store(true, std::memory_order_relaxed);
      frame->state.store(FrameState::kReady, std::memory_order_relaxed);
    }
    stripe.frames.emplace(pageno, frame);
    total_frames_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (create_new) {
    // Freshly allocated pages start dirty without a MarkDirty call, so
    // they must enter the WAL pending set here or they would escape
    // logging entirely.
    NoteDirty(frame);
  }

  // Bookkeeping: join the clock ring and make room.  Our frame is pinned,
  // so the sweep cannot take it.
  Status room = Status::Ok();
  {
    std::lock_guard<std::mutex> sweep(sweep_mu_);
    RingAppend(frame.get());
    policy_->OnAdmit(frame.get());
    if (max_frames_ == 0 || total_frames_.load(std::memory_order_acquire) > max_frames_) {
      room = SweepForRoom();
    }
  }
  if (!room.ok()) {
    AbortLoad(stripe, frame);
    return room;
  }

  if (!create_new) {
    // The backend read runs with no pool lock held: misses on other pages
    // proceed in parallel, hits are never stalled behind this I/O.
    const Status read =
        file_->ReadPage(pageno, std::span<uint8_t>(frame->data.get(), page_size_));
    if (!read.ok()) {
      AbortLoad(stripe, frame);
      return read;
    }
    {
      std::unique_lock<std::shared_mutex> lock(stripe.mu);
      frame->state.store(FrameState::kReady, std::memory_order_release);
    }
    stripe.cv.notify_all();
  }

  stripe.misses.fetch_add(1, std::memory_order_relaxed);
  stripe.get_miss_ns.Record(MonotonicNanos() - t0);
  return PageRef(this, std::move(frame));
}

void BufferPool::AbortLoad(Stripe& stripe, const std::shared_ptr<BufFrame>& frame) {
  {
    std::lock_guard<std::mutex> sweep(sweep_mu_);
    // A loading frame should have no chain edges yet; detach defensively.
    if (frame->chain_prev != nullptr) {
      frame->chain_prev->ovfl_next = nullptr;
      frame->chain_prev = nullptr;
    }
    if (frame->ovfl_next != nullptr) {
      frame->ovfl_next->chain_prev = nullptr;
      frame->ovfl_next = nullptr;
    }
    RingRemove(frame.get());
    policy_->OnRemove(frame.get());
  }
  {
    std::unique_lock<std::shared_mutex> lock(stripe.mu);
    stripe.frames.erase(frame->pageno);
    total_frames_.fetch_sub(1, std::memory_order_acq_rel);
    frame->state.store(FrameState::kFailed, std::memory_order_release);
  }
  // Coalesced waiters hold their own shared_ptr, so the frame outlives the
  // table entry until the last of them has seen kFailed.
  stripe.cv.notify_all();
  frame->pins.fetch_sub(1, std::memory_order_acq_rel);
}

void BufferPool::RingAppend(BufFrame* frame) {
  if (clock_hand_ == nullptr) {
    frame->ring_next = frame;
    frame->ring_prev = frame;
    clock_hand_ = frame;
  } else {
    // Insert behind the hand: new frames are swept last, giving them one
    // full revolution of residence (the clock analogue of entering at MRU).
    BufFrame* tail = clock_hand_->ring_prev;
    tail->ring_next = frame;
    frame->ring_prev = tail;
    frame->ring_next = clock_hand_;
    clock_hand_->ring_prev = frame;
  }
  ++ring_size_;
}

void BufferPool::RingRemove(BufFrame* frame) {
  if (frame->ring_next == nullptr) {
    return;  // not on the ring (load aborted before/after RingAppend)
  }
  if (frame->ring_next == frame) {
    clock_hand_ = nullptr;
  } else {
    frame->ring_prev->ring_next = frame->ring_next;
    frame->ring_next->ring_prev = frame->ring_prev;
    if (clock_hand_ == frame) {
      clock_hand_ = frame->ring_next;
    }
  }
  frame->ring_next = nullptr;
  frame->ring_prev = nullptr;
  --ring_size_;
}

bool BufferPool::ChainEvictable(const BufFrame* frame) const {
  for (const BufFrame* f = frame; f != nullptr; f = f->ovfl_next) {
    if (f->pins.load(std::memory_order_acquire) > 0) {
      return false;
    }
  }
  return true;
}

Status BufferPool::WriteBack(BufFrame* frame) {
  // Write-ahead rule: a held frame's image is not yet durable in the log,
  // so it must not reach the main file.  The frame stays dirty, which
  // makes EvictChain's re-verify back off and the pool grow instead.
  if (frame->wal_hold.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  // exchange() makes writeback single-flight between the sweep and
  // FlushAll; on failure the bit is restored so the data is not lost.
  if (!frame->dirty.exchange(false, std::memory_order_acq_rel)) {
    return Status::Ok();
  }
  const uint64_t t0 = MonotonicNanos();
  const Status st = file_->WritePage(
      frame->pageno, std::span<const uint8_t>(frame->data.get(), page_size_));
  if (!st.ok()) {
    frame->dirty.store(true, std::memory_order_release);
    return st;
  }
  dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
  writeback_ns_.Record(MonotonicNanos() - t0);
  return Status::Ok();
}

Status BufferPool::EvictChain(BufFrame* frame, bool* evicted) {
  *evicted = false;
  const uint64_t t0 = MonotonicNanos();

  // Chain links are stable while sweep_mu_ is held.
  std::vector<BufFrame*> chain;
  for (BufFrame* f = frame; f != nullptr; f = f->ovfl_next) {
    chain.push_back(f);
  }

  // Writebacks first, outside every stripe lock: hits anywhere in the pool
  // proceed while the victim drains to the backend.
  for (BufFrame* f : chain) {
    HASHKIT_RETURN_IF_ERROR(WriteBack(f));
  }

  // Lock the involved stripes in canonical (ascending) order, then
  // re-verify that no reader pinned or re-dirtied a chain member during
  // the writebacks.  Under the unique stripe locks no new pin can appear.
  std::array<size_t, kPoolStripes> stripe_ids{};
  size_t nstripes = 0;
  for (BufFrame* f : chain) {
    const size_t id = StripeOf(f->pageno);
    bool seen = false;
    for (size_t i = 0; i < nstripes; ++i) {
      seen = seen || stripe_ids[i] == id;
    }
    if (!seen) {
      stripe_ids[nstripes++] = id;
    }
  }
  std::sort(stripe_ids.begin(), stripe_ids.begin() + static_cast<long>(nstripes));
  for (size_t i = 0; i < nstripes; ++i) {
    stripes_[stripe_ids[i]].mu.lock();
  }

  bool still_evictable = true;
  for (BufFrame* f : chain) {
    if (f->pins.load(std::memory_order_acquire) != 0 ||
        f->dirty.load(std::memory_order_acquire)) {
      still_evictable = false;
      break;
    }
  }
  size_t n_evicted = 0;
  if (still_evictable) {
    // Detach from the predecessor so it no longer references freed memory.
    if (frame->chain_prev != nullptr) {
      frame->chain_prev->ovfl_next = nullptr;
      frame->chain_prev = nullptr;
    }
    for (BufFrame* f : chain) {
      const uint64_t pageno = f->pageno;
      RingRemove(f);
      policy_->OnRemove(f);
      stripes_[StripeOf(pageno)].frames.erase(pageno);  // may free f
      ++n_evicted;
    }
    total_frames_.fetch_sub(n_evicted, std::memory_order_acq_rel);
    evictions_.fetch_add(n_evicted, std::memory_order_relaxed);
  }
  for (size_t i = nstripes; i > 0; --i) {
    stripes_[stripe_ids[i - 1]].mu.unlock();
  }
  if (still_evictable) {
    *evicted = true;
    evict_ns_.Record(MonotonicNanos() - t0);
  }
  return Status::Ok();
}

Status BufferPool::SweepForRoom() {
  if (max_frames_ == 0) {
    // A zero-byte pool keeps nothing cached beyond pins: evict every
    // unpinned frame eagerly.
    return EvictAllUnpinned();
  }
  // Victim selection is the policy's job (bounded scan inside NextVictim);
  // the pool still re-verifies each candidate under stripe locks in
  // EvictChain and bounds the number of candidates a concurrent pinner can
  // burn.  When the policy runs dry — everything pinned, referenced, or
  // chained to pins — grow past the nominal limit instead of failing.
  constexpr int kMaxVictimScan = 64;
  int barren_candidates = 0;
  const ChainEvictableFn chain_fn = [this](const BufFrame* f) { return ChainEvictable(f); };
  while (total_frames_.load(std::memory_order_acquire) > max_frames_) {
    BufFrame* victim = policy_->NextVictim(chain_fn);
    if (victim == nullptr) {
      return Status::Ok();
    }
    bool evicted = false;
    HASHKIT_RETURN_IF_ERROR(EvictChain(victim, &evicted));
    if (!evicted && ++barren_candidates >= kMaxVictimScan) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status BufferPool::EvictAllUnpinned() {
  bool progress = true;
  while (progress) {
    progress = false;
    BufFrame* f = clock_hand_;
    for (size_t i = 0; i < ring_size_ && f != nullptr; ++i) {
      BufFrame* next = f->ring_next;
      if (f->pins.load(std::memory_order_acquire) == 0 && ChainEvictable(f)) {
        bool evicted = false;
        HASHKIT_RETURN_IF_ERROR(EvictChain(f, &evicted));
        if (evicted) {
          // Chain eviction may have removed `next`; restart the scan.
          progress = true;
          break;
        }
      }
      f = next;
    }
  }
  return Status::Ok();
}

void BufferPool::LinkOverflow(const PageRef& pred, const PageRef& succ) {
  BufFrame* p = pred.frame_.get();
  BufFrame* s = succ.frame_.get();
  assert(p != nullptr && s != nullptr && p != s);
  const std::lock_guard<std::mutex> sweep(sweep_mu_);
  if (p->ovfl_next == s) {
    return;
  }
  // A frame has at most one successor and one predecessor (chains are
  // linear); unlink any stale edges first.
  if (p->ovfl_next != nullptr) {
    p->ovfl_next->chain_prev = nullptr;
  }
  if (s->chain_prev != nullptr) {
    s->chain_prev->ovfl_next = nullptr;
  }
  p->ovfl_next = s;
  s->chain_prev = p;
}

Status BufferPool::FlushAll() {
  Status result = Status::Ok();
  std::vector<std::shared_ptr<BufFrame>> dirty;
  for (size_t i = 0; i < kPoolStripes; ++i) {
    Stripe& stripe = stripes_[i];
    dirty.clear();
    {
      // Shared lock: collecting pins frames (atomically) but never
      // mutates the map, so concurrent hits stay unblocked.
      std::shared_lock<std::shared_mutex> lock(stripe.mu);
      for (const auto& [pageno, frame] : stripe.frames) {
        if (frame->dirty.load(std::memory_order_acquire)) {
          frame->pins.fetch_add(1, std::memory_order_acq_rel);
          dirty.push_back(frame);
        }
      }
    }
    // I/O outside the stripe lock; the flush pin keeps each frame
    // resident until its write completes.
    for (const auto& frame : dirty) {
      if (result.ok()) {
        result = WriteBack(frame.get());
      }
      frame->pins.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (!result.ok()) {
      return result;  // later frames keep their dirty bit for a retry
    }
  }
  return result;
}

Status BufferPool::FlushAndInvalidate() {
  HASHKIT_RETURN_IF_ERROR(FlushAll());
  const std::lock_guard<std::mutex> sweep(sweep_mu_);
  return EvictAllUnpinned();
}

void BufferPool::Discard(uint64_t pageno) {
  Stripe& stripe = stripes_[StripeOf(pageno)];
  const std::lock_guard<std::mutex> sweep(sweep_mu_);
  std::unique_lock<std::shared_mutex> lock(stripe.mu);
  auto it = stripe.frames.find(pageno);
  if (it == stripe.frames.end()) {
    return;
  }
  BufFrame* frame = it->second.get();
  if (frame->pins.load(std::memory_order_acquire) != 0) {
    // Checked no-op: a live PageRef still points at this frame.  Freeing
    // it would leave that ref dangling, so the page simply stays cached
    // (it will age out of the clock ring like any other frame).
    return;
  }
  if (frame->chain_prev != nullptr) {
    frame->chain_prev->ovfl_next = nullptr;
    frame->chain_prev = nullptr;
  }
  if (frame->ovfl_next != nullptr) {
    frame->ovfl_next->chain_prev = nullptr;
    frame->ovfl_next = nullptr;
  }
  RingRemove(frame);
  policy_->OnRemove(frame);
  stripe.frames.erase(it);
  total_frames_.fetch_sub(1, std::memory_order_acq_rel);
}

void BufferPool::NoteDirty(const std::shared_ptr<BufFrame>& frame) {
  if (!wal_barrier_.load(std::memory_order_relaxed)) {
    return;
  }
  frame->wal_hold.store(true, std::memory_order_release);
  if (!frame->wal_pending.exchange(true, std::memory_order_acq_rel)) {
    const std::lock_guard<std::mutex> lock(wal_mu_);
    wal_pending_.push_back(WalPageHandle{frame->pageno, frame->data.get(), frame});
  }
}

std::vector<WalPageHandle> BufferPool::TakeWalPending() {
  std::vector<WalPageHandle> out;
  const std::lock_guard<std::mutex> lock(wal_mu_);
  out.swap(wal_pending_);
  for (const auto& handle : out) {
    handle.frame->wal_pending.store(false, std::memory_order_release);
  }
  return out;
}

void BufferPool::ReleaseWalHolds(const std::vector<WalPageHandle>& handles) {
  for (const auto& handle : handles) {
    // A frame re-dirtied into a newer, not-yet-synced batch keeps its
    // hold; that batch's fsync will release it.
    if (!handle.frame->wal_pending.load(std::memory_order_acquire)) {
      handle.frame->wal_hold.store(false, std::memory_order_release);
    }
  }
}

BufferPoolStats BufferPool::StatsSnapshot() const {
  BufferPoolStats out;
  for (size_t i = 0; i < kPoolStripes; ++i) {
    const Stripe& stripe = stripes_[i];
    out.hits += stripe.hits.load(std::memory_order_relaxed);
    out.misses += stripe.misses.load(std::memory_order_relaxed);
    out.get_hit_ns.MergeFrom(stripe.get_hit_ns.Snapshot());
    out.get_miss_ns.MergeFrom(stripe.get_miss_ns.Snapshot());
  }
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.dirty_writebacks = dirty_writebacks_.load(std::memory_order_relaxed);
  out.writeback_ns = writeback_ns_.Snapshot();
  out.evict_ns = evict_ns_.Snapshot();
  return out;
}

}  // namespace hashkit
