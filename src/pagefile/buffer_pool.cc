#include "src/pagefile/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace hashkit {

struct BufFrame {
  uint64_t pageno = 0;
  bool dirty = false;
  uint32_t pins = 0;
  std::unique_ptr<uint8_t[]> data;

  // LRU chain (head = coldest).
  BufFrame* lru_prev = nullptr;
  BufFrame* lru_next = nullptr;

  // Overflow-chain links: evicting a frame evicts ovfl_next transitively.
  BufFrame* ovfl_next = nullptr;
  BufFrame* chain_prev = nullptr;
};

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

uint8_t* PageRef::data() {
  assert(frame_ != nullptr);
  return frame_->data.get();
}

const uint8_t* PageRef::data() const {
  assert(frame_ != nullptr);
  return frame_->data.get();
}

uint64_t PageRef::pageno() const {
  assert(frame_ != nullptr);
  return frame_->pageno;
}

void PageRef::MarkDirty() {
  assert(frame_ != nullptr);
  frame_->dirty = true;
}

void PageRef::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(frame_);
    frame_ = nullptr;
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t pool_bytes)
    : file_(file), max_frames_(pool_bytes / file->page_size()) {}

BufferPool::~BufferPool() = default;

void BufferPool::Unpin(BufFrame* frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  assert(frame->pins > 0);
  --frame->pins;
  if (frame->pins == 0) {
    TouchLru(frame);
  }
}

void BufferPool::UnlinkLru(BufFrame* frame) {
  if (frame->lru_prev != nullptr) {
    frame->lru_prev->lru_next = frame->lru_next;
  } else if (lru_head_ == frame) {
    lru_head_ = frame->lru_next;
  }
  if (frame->lru_next != nullptr) {
    frame->lru_next->lru_prev = frame->lru_prev;
  } else if (lru_tail_ == frame) {
    lru_tail_ = frame->lru_prev;
  }
  frame->lru_prev = nullptr;
  frame->lru_next = nullptr;
}

void BufferPool::TouchLru(BufFrame* frame) {
  UnlinkLru(frame);
  frame->lru_prev = lru_tail_;
  frame->lru_next = nullptr;
  if (lru_tail_ != nullptr) {
    lru_tail_->lru_next = frame;
  }
  lru_tail_ = frame;
  if (lru_head_ == nullptr) {
    lru_head_ = frame;
  }
}

bool BufferPool::ChainEvictable(const BufFrame* frame) const {
  for (const BufFrame* f = frame; f != nullptr; f = f->ovfl_next) {
    if (f->pins > 0) {
      return false;
    }
  }
  return true;
}

Status BufferPool::WriteBack(BufFrame* frame) {
  if (!frame->dirty) {
    return Status::Ok();
  }
  const uint64_t t0 = MonotonicNanos();
  HASHKIT_RETURN_IF_ERROR(
      file_->WritePage(frame->pageno, std::span<const uint8_t>(frame->data.get(),
                                                               file_->page_size())));
  frame->dirty = false;
  ++stats_.dirty_writebacks;
  stats_.writeback_ns.Record(MonotonicNanos() - t0);
  return Status::Ok();
}

Status BufferPool::EvictChain(BufFrame* frame) {
  const uint64_t t0 = MonotonicNanos();
  // Detach from the predecessor so it no longer references freed memory.
  if (frame->chain_prev != nullptr) {
    frame->chain_prev->ovfl_next = nullptr;
    frame->chain_prev = nullptr;
  }
  BufFrame* f = frame;
  while (f != nullptr) {
    BufFrame* next = f->ovfl_next;
    HASHKIT_RETURN_IF_ERROR(WriteBack(f));
    UnlinkLru(f);
    const uint64_t pageno = f->pageno;
    ++stats_.evictions;
    frames_.erase(pageno);  // frees f
    f = next;
  }
  stats_.evict_ns.Record(MonotonicNanos() - t0);
  return Status::Ok();
}

Status BufferPool::MakeRoom() {
  while (frames_.size() >= max_frames_ && max_frames_ > 0) {
    // Bound the victim search: each candidate's chain walk is O(chain), so
    // an unbounded scan over a pool full of chained-but-pinned frames
    // would make every miss quadratic.  Past the cap, grow instead.
    constexpr int kMaxVictimScan = 64;
    BufFrame* victim = lru_head_;
    int scanned = 0;
    while (victim != nullptr && (victim->pins > 0 || !ChainEvictable(victim))) {
      victim = victim->lru_next;
      if (++scanned >= kMaxVictimScan) {
        victim = nullptr;
        break;
      }
    }
    if (victim == nullptr) {
      // Everything (scanned) pinned or chained to pins: grow past the
      // nominal limit.
      return Status::Ok();
    }
    HASHKIT_RETURN_IF_ERROR(EvictChain(victim));
  }
  // A zero-byte pool keeps nothing cached beyond pins: evict every unpinned
  // frame eagerly.
  if (max_frames_ == 0) {
    BufFrame* f = lru_head_;
    while (f != nullptr) {
      BufFrame* next = f->lru_next;
      if (f->pins == 0 && ChainEvictable(f)) {
        HASHKIT_RETURN_IF_ERROR(EvictChain(f));
        // Chain eviction may have removed `next`; restart from the head.
        f = lru_head_;
      } else {
        f = next;
      }
    }
  }
  return Status::Ok();
}

Result<PageRef> BufferPool::Get(uint64_t pageno, bool create_new) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t t0 = MonotonicNanos();
  auto it = frames_.find(pageno);
  if (it != frames_.end()) {
    BufFrame* frame = it->second.get();
    ++stats_.hits;
    ++frame->pins;
    UnlinkLru(frame);  // pinned pages sit outside LRU consideration
    stats_.get_hit_ns.Record(MonotonicNanos() - t0);
    return PageRef(this, frame);
  }

  HASHKIT_RETURN_IF_ERROR(MakeRoom());

  auto frame_owner = std::make_unique<BufFrame>();
  BufFrame* frame = frame_owner.get();
  frame->pageno = pageno;
  frame->data = std::make_unique<uint8_t[]>(file_->page_size());
  if (create_new) {
    std::memset(frame->data.get(), 0, file_->page_size());
    frame->dirty = true;
  } else {
    HASHKIT_RETURN_IF_ERROR(
        file_->ReadPage(pageno, std::span<uint8_t>(frame->data.get(), file_->page_size())));
  }
  ++stats_.misses;
  frame->pins = 1;
  frames_.emplace(pageno, std::move(frame_owner));
  stats_.get_miss_ns.Record(MonotonicNanos() - t0);
  return PageRef(this, frame);
}

void BufferPool::LinkOverflow(const PageRef& pred, const PageRef& succ) {
  const std::lock_guard<std::mutex> lock(mu_);
  BufFrame* p = pred.frame_;
  BufFrame* s = succ.frame_;
  assert(p != nullptr && s != nullptr && p != s);
  if (p->ovfl_next == s) {
    return;
  }
  // A frame has at most one successor and one predecessor (chains are
  // linear); unlink any stale edges first.
  if (p->ovfl_next != nullptr) {
    p->ovfl_next->chain_prev = nullptr;
  }
  if (s->chain_prev != nullptr) {
    s->chain_prev->ovfl_next = nullptr;
  }
  p->ovfl_next = s;
  s->chain_prev = p;
}

Status BufferPool::FlushAllLocked() {
  for (auto& [pageno, frame] : frames_) {
    HASHKIT_RETURN_IF_ERROR(WriteBack(frame.get()));
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  return FlushAllLocked();
}

Status BufferPool::FlushAndInvalidate() {
  const std::lock_guard<std::mutex> lock(mu_);
  HASHKIT_RETURN_IF_ERROR(FlushAllLocked());
  BufFrame* f = lru_head_;
  while (f != nullptr) {
    BufFrame* next = f->lru_next;
    if (f->pins == 0 && ChainEvictable(f)) {
      HASHKIT_RETURN_IF_ERROR(EvictChain(f));
      f = lru_head_;
    } else {
      f = next;
    }
  }
  return Status::Ok();
}

void BufferPool::Discard(uint64_t pageno) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(pageno);
  if (it == frames_.end()) {
    return;
  }
  BufFrame* frame = it->second.get();
  assert(frame->pins == 0);
  if (frame->chain_prev != nullptr) {
    frame->chain_prev->ovfl_next = nullptr;
  }
  if (frame->ovfl_next != nullptr) {
    frame->ovfl_next->chain_prev = nullptr;
  }
  UnlinkLru(frame);
  frames_.erase(it);
}

}  // namespace hashkit
