#include "src/pagefile/eviction.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

namespace hashkit {

namespace {

bool Pinned(const BufFrame* f) { return f->pins.load(std::memory_order_acquire) > 0; }

// Intrusive doubly-linked list over BufFrame::pol_prev/pol_next.
// head = oldest (next victim side), tail = newest.  All mutation under the
// pool's sweep mutex.  pol_region 0 means "on no list"; each policy
// assigns nonzero region ids to its lists.
struct FrameList {
  BufFrame* head = nullptr;
  BufFrame* tail = nullptr;
  size_t size = 0;

  void PushBack(BufFrame* f) {
    f->pol_prev = tail;
    f->pol_next = nullptr;
    if (tail != nullptr) {
      tail->pol_next = f;
    } else {
      head = f;
    }
    tail = f;
    ++size;
  }
  void Unlink(BufFrame* f) {
    if (f->pol_prev != nullptr) {
      f->pol_prev->pol_next = f->pol_next;
    } else {
      head = f->pol_next;
    }
    if (f->pol_next != nullptr) {
      f->pol_next->pol_prev = f->pol_prev;
    } else {
      tail = f->pol_prev;
    }
    f->pol_prev = nullptr;
    f->pol_next = nullptr;
    --size;
  }
  void MoveToBack(BufFrame* f) {
    Unlink(f);
    PushBack(f);
  }
};

// --- clock: the pool's original second-chance sweep, verbatim semantics.
// Own circular ring (pol_prev/pol_next) + hand; new frames enter behind
// the hand so they get one full revolution of residence.
class ClockPolicy final : public EvictionPolicy {
 public:
  std::string_view name() const override { return "clock"; }

  void OnAdmit(BufFrame* f) override {
    if (hand_ == nullptr) {
      f->pol_next = f;
      f->pol_prev = f;
      hand_ = f;
    } else {
      BufFrame* tail = hand_->pol_prev;
      tail->pol_next = f;
      f->pol_prev = tail;
      f->pol_next = hand_;
      hand_->pol_prev = f;
    }
    f->pol_region = 1;
    ++size_;
  }

  void OnRemove(BufFrame* f) override {
    if (f->pol_region == 0) {
      return;
    }
    if (f->pol_next == f) {
      hand_ = nullptr;
    } else {
      f->pol_prev->pol_next = f->pol_next;
      f->pol_next->pol_prev = f->pol_prev;
      if (hand_ == f) {
        hand_ = f->pol_next;
      }
    }
    f->pol_next = nullptr;
    f->pol_prev = nullptr;
    f->pol_region = 0;
    --size_;
  }

  void OnAccess(BufFrame* f) override { f->ref_bit.store(true, std::memory_order_relaxed); }

  BufFrame* NextVictim(const ChainEvictableFn& chain_evictable) override {
    // One revolution may only clear reference bits and a second then finds
    // victims; past the cap, tell the pool to grow.
    size_t steps = 2 * size_ + kMaxVictimScan;
    int barren = 0;
    while (steps > 0 && hand_ != nullptr) {
      --steps;
      BufFrame* f = hand_;
      hand_ = f->pol_next;
      if (Pinned(f)) {
        continue;  // pinned frames sit outside replacement consideration
      }
      if (f->ref_bit.exchange(false, std::memory_order_relaxed)) {
        continue;  // second chance
      }
      if (!chain_evictable(f)) {
        if (++barren >= kMaxVictimScan) {
          break;
        }
        continue;
      }
      return f;
    }
    return nullptr;
  }

 private:
  static constexpr int kMaxVictimScan = 64;
  BufFrame* hand_ = nullptr;
  size_t size_ = 0;
};

// --- 2Q (Johnson & Shasha '94, simplified full version): regions
//   1 = A1in  (probation FIFO for first-time pages)
//   2 = Am    (protected list, second-chance ordering)
// plus A1out, a ghost FIFO of recently evicted probation pagenos.  A page
// re-admitted while its ghost is live goes straight to Am — "was useful
// recently" — and a page re-referenced while on probation is promoted, so
// one sequential sweep of cold pages churns only the probation quarter of
// the pool.
class TwoQPolicy final : public EvictionPolicy {
 public:
  explicit TwoQPolicy(size_t max_frames)
      : a1in_cap_(std::max<size_t>(1, max_frames / 4)),
        ghost_cap_(std::max<size_t>(16, max_frames / 2)) {}

  std::string_view name() const override { return "2q"; }

  void OnAdmit(BufFrame* f) override {
    if (ghost_.erase(f->pageno) > 0) {
      am_.PushBack(f);
      f->pol_region = 2;
    } else {
      a1in_.PushBack(f);
      f->pol_region = 1;
    }
  }

  void OnRemove(BufFrame* f) override {
    switch (f->pol_region) {
      case 1:
        a1in_.Unlink(f);
        // Remember the eviction: a prompt re-reference proves the page
        // deserved protection.
        if (ghost_.insert(f->pageno).second) {
          ghost_fifo_.push_back(f->pageno);
        }
        TrimGhost();
        break;
      case 2:
        am_.Unlink(f);
        break;
      default:
        return;
    }
    f->pol_region = 0;
  }

  void OnAccess(BufFrame* f) override { f->ref_bit.store(true, std::memory_order_relaxed); }

  BufFrame* NextVictim(const ChainEvictableFn& chain_evictable) override {
    size_t steps = 2 * (a1in_.size + am_.size) + kMaxVictimScan;
    int barren = 0;
    while (steps > 0) {
      --steps;
      // Prefer draining an over-target probation queue; otherwise the
      // protected list (falling back to whichever is non-empty).
      const bool from_a1in =
          a1in_.head != nullptr && (a1in_.size > a1in_cap_ || am_.head == nullptr);
      FrameList& list = from_a1in ? a1in_ : am_;
      BufFrame* f = list.head;
      if (f == nullptr) {
        return nullptr;  // both lists empty (everything mid-eviction)
      }
      if (Pinned(f)) {
        list.MoveToBack(f);
        continue;
      }
      if (f->ref_bit.exchange(false, std::memory_order_relaxed)) {
        if (from_a1in) {
          // Re-referenced on probation: promote to the protected list.
          a1in_.Unlink(f);
          am_.PushBack(f);
          f->pol_region = 2;
        } else {
          list.MoveToBack(f);  // second chance within Am
        }
        continue;
      }
      if (!chain_evictable(f)) {
        list.MoveToBack(f);
        if (++barren >= kMaxVictimScan) {
          return nullptr;
        }
        continue;
      }
      return f;
    }
    return nullptr;
  }

 private:
  static constexpr int kMaxVictimScan = 64;

  void TrimGhost() {
    while (ghost_.size() > ghost_cap_ && !ghost_fifo_.empty()) {
      // FIFO entries may be stale (promoted out of the set already);
      // popping one of those is a no-op and the loop continues.
      ghost_.erase(ghost_fifo_.front());
      ghost_fifo_.pop_front();
    }
  }

  FrameList a1in_;  // region 1
  FrameList am_;    // region 2
  const size_t a1in_cap_;
  const size_t ghost_cap_;
  std::unordered_set<uint64_t> ghost_;
  std::deque<uint64_t> ghost_fifo_;
};

// --- W-TinyLFU (Einziger et al.): a count-min sketch estimates every
// page's access frequency (surviving eviction, decayed by periodic
// halving); regions
//   1 = window (small FIFO absorbing admission bursts, ~1/16 of frames)
//   2 = main   (second-chance list holding everything that won its duel)
// When the window overflows, its oldest page duels the main list's
// coldest: the higher-frequency page stays/enters main, the other is the
// eviction candidate.  A stream of one-shot pages loses every duel, so
// the hot set is untouchable regardless of scan length.
class FrequencySketch {
 public:
  explicit FrequencySketch(size_t max_frames) {
    size_t want = std::max<size_t>(1024, max_frames * 8);
    size_t width = 1;
    while (width < want) {
      width <<= 1;
    }
    mask_ = width - 1;
    table_ = std::vector<std::atomic<uint8_t>>(width * kRows);
    sample_cap_ = 16 * std::max<uint64_t>(max_frames, 64);
  }

  // Lock-free; saturates at 15 like the classic 4-bit sketch.
  void Increment(uint64_t key) {
    for (int row = 0; row < kRows; ++row) {
      std::atomic<uint8_t>& cell = table_[Slot(key, row)];
      uint8_t v = cell.load(std::memory_order_relaxed);
      while (v < kMaxCount &&
             !cell.compare_exchange_weak(v, static_cast<uint8_t>(v + 1),
                                         std::memory_order_relaxed)) {
      }
    }
    if (samples_.fetch_add(1, std::memory_order_relaxed) + 1 >= sample_cap_) {
      age_due_.store(true, std::memory_order_relaxed);
    }
  }

  uint32_t Estimate(uint64_t key) const {
    uint32_t est = kMaxCount;
    for (int row = 0; row < kRows; ++row) {
      est = std::min<uint32_t>(est, table_[Slot(key, row)].load(std::memory_order_relaxed));
    }
    return est;
  }

  // Halve every counter once the sample window fills (frequency decay so
  // yesterday's hot pages can cool off).  Called under sweep_mu_;
  // concurrent increments racing the halving only perturb an already
  // approximate sketch.
  void MaybeAge() {
    if (!age_due_.exchange(false, std::memory_order_relaxed)) {
      return;
    }
    for (auto& cell : table_) {
      const uint8_t v = cell.load(std::memory_order_relaxed);
      if (v != 0) {
        cell.store(static_cast<uint8_t>(v >> 1), std::memory_order_relaxed);
      }
    }
    samples_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr int kRows = 4;
  static constexpr uint8_t kMaxCount = 15;

  size_t Slot(uint64_t key, int row) const {
    // One multiplicative mix per row with distinct odd constants; the high
    // bits land in different slots per row.
    static constexpr uint64_t kSeeds[kRows] = {
        0x9E3779B97F4A7C15ull, 0xC2B2AE3D27D4EB4Full, 0x165667B19E3779F9ull,
        0xD6E8FEB86659FD93ull};
    const uint64_t h = (key + 1) * kSeeds[row];
    return static_cast<size_t>(((h >> 32) ^ h) & mask_) + static_cast<size_t>(row) * (mask_ + 1);
  }

  size_t mask_ = 0;
  std::vector<std::atomic<uint8_t>> table_;
  std::atomic<uint64_t> samples_{0};
  uint64_t sample_cap_ = 0;
  std::atomic<bool> age_due_{false};
};

class TinyLfuPolicy final : public EvictionPolicy {
 public:
  explicit TinyLfuPolicy(size_t max_frames)
      : window_cap_(std::max<size_t>(1, max_frames / 16)),
        main_cap_(max_frames - std::max<size_t>(1, max_frames / 16)),
        sketch_(max_frames) {}

  std::string_view name() const override { return "tinylfu"; }

  void OnAdmit(BufFrame* f) override {
    sketch_.Increment(f->pageno);
    window_.PushBack(f);
    f->pol_region = 1;
  }

  void OnRemove(BufFrame* f) override {
    switch (f->pol_region) {
      case 1:
        window_.Unlink(f);
        break;
      case 2:
        main_.Unlink(f);
        break;
      default:
        return;
    }
    f->pol_region = 0;
  }

  void OnAccess(BufFrame* f) override {
    f->ref_bit.store(true, std::memory_order_relaxed);
    sketch_.Increment(f->pageno);
  }

  BufFrame* NextVictim(const ChainEvictableFn& chain_evictable) override {
    sketch_.MaybeAge();
    // The cold-start fill lands every frame in the window (no evictions run
    // while the pool is under capacity), so first drain the overflow into
    // main while main is under its own capacity.  Admission duels only make
    // sense once main is full: a duel pairs one promotion with one main
    // eviction, so without this drain main could never grow and the policy
    // would degenerate into a FIFO over the window.
    while (window_.size > window_cap_ && main_.size < main_cap_) {
      Promote(window_.head);
    }
    size_t steps = 2 * (window_.size + main_.size) + kMaxVictimScan;
    int barren = 0;
    while (steps > 0) {
      if (window_.size > window_cap_ && window_.head != nullptr) {
        BufFrame* w = window_.head;
        if (Pinned(w)) {
          window_.MoveToBack(w);
          --steps;
          continue;
        }
        BufFrame* m = MainVictim(&steps);
        BufFrame* candidate;
        if (m == nullptr) {
          Promote(w);  // nothing in main to duel: admit unconditionally
          --steps;
          continue;
        } else if (sketch_.Estimate(w->pageno) > sketch_.Estimate(m->pageno)) {
          Promote(w);  // the newcomer is hotter: it wins residence in main
          candidate = m;
        } else {
          candidate = w;  // the incumbent stays; the newcomer is the victim
        }
        if (!chain_evictable(candidate)) {
          (candidate->pol_region == 1 ? window_ : main_).MoveToBack(candidate);
          --steps;
          if (++barren >= kMaxVictimScan) {
            return nullptr;
          }
          continue;
        }
        return candidate;
      }
      // Window within target: evict from main, falling back to the window
      // when main is empty.
      BufFrame* m = MainVictim(&steps);
      if (m == nullptr) {
        m = WindowVictim(&steps);
      }
      if (m == nullptr) {
        return nullptr;
      }
      if (!chain_evictable(m)) {
        (m->pol_region == 1 ? window_ : main_).MoveToBack(m);
        --steps;
        if (++barren >= kMaxVictimScan) {
          return nullptr;
        }
        continue;
      }
      return m;
    }
    return nullptr;
  }

 private:
  static constexpr int kMaxVictimScan = 64;

  void Promote(BufFrame* w) {
    window_.Unlink(w);
    main_.PushBack(w);
    w->pol_region = 2;
  }

  // Coldest unpinned main frame, with second-chance rotation (ref_bit
  // covers the window between sketch decays).  Consumes from *steps.
  BufFrame* MainVictim(size_t* steps) {
    while (*steps > 0 && main_.head != nullptr) {
      --*steps;
      BufFrame* f = main_.head;
      if (Pinned(f)) {
        main_.MoveToBack(f);
        continue;
      }
      if (f->ref_bit.exchange(false, std::memory_order_relaxed)) {
        main_.MoveToBack(f);
        continue;
      }
      return f;
    }
    return nullptr;
  }

  BufFrame* WindowVictim(size_t* steps) {
    while (*steps > 0 && window_.head != nullptr) {
      --*steps;
      BufFrame* f = window_.head;
      if (Pinned(f)) {
        window_.MoveToBack(f);
        continue;
      }
      return f;
    }
    return nullptr;
  }

  FrameList window_;  // region 1
  FrameList main_;    // region 2
  const size_t window_cap_;
  const size_t main_cap_;
  FrequencySketch sketch_;
};

}  // namespace

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   size_t max_frames) {
  switch (kind) {
    case EvictionPolicyKind::kTwoQ:
      return std::make_unique<TwoQPolicy>(max_frames);
    case EvictionPolicyKind::kTinyLfu:
      return std::make_unique<TinyLfuPolicy>(max_frames);
    case EvictionPolicyKind::kClock:
      break;
  }
  return std::make_unique<ClockPolicy>();
}

}  // namespace hashkit
