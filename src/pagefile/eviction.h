// hashkit-cache: pluggable buffer-pool replacement policies.
//
// The pool owns residency (frame table, pins, overflow chains, WAL holds);
// a policy only decides *which* resident frame to victimize when the pool
// is over budget.  The contract keeps the pool's concurrency story intact:
//
//   - OnAccess runs on the hit path with no pool-wide lock held.  It may
//     touch only the frame's atomics (ref_bit, sketch counters) — never
//     the pol_* links.
//   - OnAdmit / OnRemove / NextVictim run under the pool's sweep mutex, so
//     list restructuring is serialized exactly like the old clock sweep.
//   - NextVictim returns a *candidate*: the pool re-verifies pins under
//     stripe locks and may decline (chain re-pinned, re-dirtied).  A
//     declined or evicted frame reaches the policy again only via OnRemove
//     (eviction) or a later NextVictim call, so policies must leave a
//     returned candidate in a consistent position (rotated to the back of
//     its list).
//   - Returning nullptr means "no victim within my scan bound": the pool
//     grows past its nominal budget, matching the old clock behavior when
//     everything was pinned.
//
// Policies:
//   clock   — second-chance sweep, byte-for-byte the pool's original
//             behavior (the default).
//   2q      — Johnson & Shasha's 2Q: new pages enter a probation FIFO
//             (A1in); only pages re-referenced there, or re-admitted after
//             appearing in a ghost history of recently evicted pagenos
//             (A1out), join the protected main list.  One sequential scan
//             can no longer flush the whole pool.
//   tinylfu — W-TinyLFU: a count-min sketch tracks access frequency of
//             every page (including evicted ones); eviction duels the
//             newest window arrival against the main list's LRU tail and
//             keeps the more frequent.  Skew-robust: a once-hot page
//             cannot be displaced by a stream of one-shot pages.

#ifndef HASHKIT_SRC_PAGEFILE_EVICTION_H_
#define HASHKIT_SRC_PAGEFILE_EVICTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "src/pagefile/buf_frame.h"

namespace hashkit {

// Replacement policy selector (the `--eviction=` flag; also
// HashOptions::eviction / StoreOptions::eviction).
enum class EvictionPolicyKind : uint8_t {
  kClock = 0,
  kTwoQ,
  kTinyLfu,
};

constexpr std::string_view EvictionPolicyName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kTwoQ:
      return "2q";
    case EvictionPolicyKind::kTinyLfu:
      return "tinylfu";
    case EvictionPolicyKind::kClock:
      break;
  }
  return "clock";
}

// Accepts the `--eviction=` flag spellings; returns false on anything else.
inline bool ParseEvictionPolicy(std::string_view name, EvictionPolicyKind* out) {
  if (name == "clock") {
    *out = EvictionPolicyKind::kClock;
  } else if (name == "2q" || name == "twoq") {
    *out = EvictionPolicyKind::kTwoQ;
  } else if (name == "tinylfu" || name == "tiny-lfu") {
    *out = EvictionPolicyKind::kTinyLfu;
  } else {
    return false;
  }
  return true;
}

// True when `frame` plus its linked overflow chain is currently unpinned
// (the pool's ChainEvictable, passed into NextVictim so policies never
// victimize a chain the pool cannot take).
using ChainEvictableFn = std::function<bool(const BufFrame*)>;

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual std::string_view name() const = 0;

  // Frame became resident / left residency.  Under sweep_mu_.
  virtual void OnAdmit(BufFrame* frame) = 0;
  virtual void OnRemove(BufFrame* frame) = 0;

  // Cache hit.  Lock-free: atomics on `frame` (and the policy's own atomic
  // sketch) only.
  virtual void OnAccess(BufFrame* frame) = 0;

  // Pick the next eviction candidate.  Under sweep_mu_; bounded internal
  // scan; nullptr = let the pool grow.
  virtual BufFrame* NextVictim(const ChainEvictableFn& chain_evictable) = 0;
};

// `max_frames` is the pool's nominal frame budget (sizes the TinyLFU
// sketch and the 2Q target fractions); 0 = unbounded pool, where the
// policies fall back to minimal fixed sizing.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   size_t max_frames);

}  // namespace hashkit

#endif  // HASHKIT_SRC_PAGEFILE_EVICTION_H_
