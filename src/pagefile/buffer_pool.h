// hashkit: concurrent buffer pool, reproducing the paper's "Buffer
// Management" design with multi-reader scalability.
//
// Frames live in a frame table striped into kPoolStripes lock-striped
// partitions keyed by pageno; overflow-page frames are additionally linked
// to their predecessor frame (the primary page, or an earlier overflow page
// in the same chain).  Per the paper, "an overflow page cannot be present
// in the buffer pool if its primary page is not present": evicting a frame
// evicts its linked overflow successors with it.
//
// Replacement is second-chance (clock) instead of a strict LRU list: a
// cache hit sets the frame's reference bit and never touches shared chain
// pointers, so the hit path is a stripe-local shared-lock lookup plus an
// atomic pin increment.  The clock hand is swept only on misses, under a
// small eviction mutex that no hit ever takes.
//
// Backend I/O is decoupled from bookkeeping: a missing page is published
// as a frame in `loading` state before the backend read runs, so concurrent
// misses on the same page coalesce onto one read (latecomers wait on the
// stripe's condvar) while misses on different pages read in parallel.
// Eviction writebacks run under the eviction mutex but outside every
// stripe lock, so hits proceed while a victim drains.
//
// Pages are pinned while a caller holds a PageRef; pinned frames are never
// evicted.  When every frame is pinned the pool grows past its nominal
// limit rather than failing — this matches the paper's "buffer pool size 0"
// configuration, i.e. the minimum number of pages required is always
// resident.
//
// Thread-safety: all pool bookkeeping (frame maps, clock ring, pin counts,
// chain links, stats) is safe under concurrent Get/Release/Flush/Discard
// from any number of threads.  Page *contents* are not guarded: callers
// must ensure writers are excluded while readers hold PageRefs (the kv
// layer does this with per-store reader/writer locks).

#ifndef HASHKIT_SRC_PAGEFILE_BUFFER_POOL_H_
#define HASHKIT_SRC_PAGEFILE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/pagefile/eviction.h"
#include "src/pagefile/page_file.h"
#include "src/util/histogram.h"
#include "src/util/status.h"

namespace hashkit {

// Number of lock-striped frame-table partitions.  Power of two; pagenos
// are mixed before striping so sequentially allocated pages spread out.
inline constexpr size_t kPoolStripes = 16;

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  // hashkit-obs latency distributions (nanoseconds).  get_hit_ns/
  // get_miss_ns split BufferPool::Get by outcome, clocked from before any
  // synchronization so lock wait and I/O wait are visible (a miss includes
  // the backend read; a hit that coalesced onto another thread's read
  // includes the wait for that read); writeback_ns times one WritePage;
  // evict_ns times a whole chain eviction including its writebacks.
  HistogramSnapshot get_hit_ns;
  HistogramSnapshot get_miss_ns;
  HistogramSnapshot writeback_ns;
  HistogramSnapshot evict_ns;

  // Accumulates another pool's counters and latency histograms.
  void MergeFrom(const BufferPoolStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    dirty_writebacks += other.dirty_writebacks;
    get_hit_ns.MergeFrom(other.get_hit_ns);
    get_miss_ns.MergeFrom(other.get_miss_ns);
    writeback_ns.MergeFrom(other.writeback_ns);
    evict_ns.MergeFrom(other.evict_ns);
  }
};

class BufferPool;
struct BufFrame;

// A dirtied page awaiting write-ahead logging.  `data` points at the
// frame's buffer and stays valid for the handle's lifetime (the
// shared_ptr keeps the frame alive even if it is discarded); the pool
// refuses to write the frame back to the main file while its WAL hold is
// set.
struct WalPageHandle {
  uint64_t pageno = 0;
  const uint8_t* data = nullptr;
  std::shared_ptr<BufFrame> frame;
};

// RAII pin on a buffered page.  Movable, not copyable; releasing the last
// ref makes the frame evictable again.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  explicit operator bool() const { return frame_ != nullptr; }

  uint8_t* data();
  const uint8_t* data() const;
  uint64_t pageno() const;

  // Marks the page dirty; it will be written back on eviction or flush.
  void MarkDirty();

  // Drops the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, std::shared_ptr<BufFrame> frame)
      : pool_(pool), frame_(std::move(frame)) {}

  BufferPool* pool_ = nullptr;
  std::shared_ptr<BufFrame> frame_;
};

class BufferPool {
 public:
  // `pool_bytes` is the nominal cache budget.  A budget of 0 keeps only the
  // minimum (currently-pinned) pages resident.  `eviction` selects the
  // replacement policy (hashkit-cache); the default reproduces the pool's
  // original second-chance clock exactly.
  BufferPool(PageFile* file, size_t pool_bytes,
             EvictionPolicyKind eviction = EvictionPolicyKind::kClock);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins page `pageno`.  With `create_new` the backend read is skipped and
  // the frame starts zero-filled (used for freshly allocated pages).
  Result<PageRef> Get(uint64_t pageno, bool create_new = false);

  // Records that `succ` is the overflow page following `pred` in a bucket
  // chain, so that evicting `pred` also evicts `succ` (and transitively the
  // rest of the chain).
  void LinkOverflow(const PageRef& pred, const PageRef& succ);

  // Writes all dirty frames to the backend; frames stay cached.
  Status FlushAll();

  // Writes all dirty frames and drops every unpinned frame.
  Status FlushAndInvalidate();

  // Drops a cached page without writeback (used when a page is freed and
  // its contents no longer matter).  No-op if absent.  A pinned page is
  // never dropped: the call is a checked no-op then, so a stale Discard
  // can never free memory a live PageRef still points at.
  void Discard(uint64_t pageno);

  // Hints the CPU to pull the leading cache lines of `pageno`'s frame —
  // where the page header, tag filter, and offset index live — without
  // pinning it.  Purely advisory: if the page is absent, still loading, or
  // the stripe lock is contended, it does nothing.  Never touches
  // replacement state (no ref bit, no pin), so a prefetch cannot keep a
  // frame alive.  The table's lookup path calls this for the resolved
  // bucket page and for the next overflow page in a chain walk.
  void Prefetch(uint64_t pageno) const;

  // --- WAL barrier (no-steal policy) ---
  //
  // With the barrier enabled, every dirtied frame is tracked as "WAL
  // pending" and given a "WAL hold": WriteBack() skips held frames, so a
  // dirty page can never reach the main file before its after-image is
  // durable in the log.  The logging layer drains the pending set with
  // TakeWalPending() when building a commit batch and calls
  // ReleaseWalHolds() once the log bytes covering those images have been
  // fsynced.  Held frames stay dirty, so eviction backs off and the pool
  // grows instead (bounded by the table's checkpoint trigger).

  // Turns the barrier on.  Must be called before any writer dirties pages;
  // there is no way to turn it off.
  void EnableWalBarrier() { wal_barrier_.store(true, std::memory_order_release); }

  // Drains the pending set.  Each returned handle's image must be logged
  // and the handles passed to ReleaseWalHolds() after the covering fsync.
  std::vector<WalPageHandle> TakeWalPending();

  // Clears the holds for `handles` whose frames were not re-dirtied into a
  // newer (not yet synced) pending batch.
  void ReleaseWalHolds(const std::vector<WalPageHandle>& handles);

  size_t frames_in_use() const { return total_frames_.load(std::memory_order_acquire); }
  size_t max_frames() const { return max_frames_; }
  // The active replacement policy's name ("clock", "2q", "tinylfu").
  std::string_view eviction_name() const { return policy_->name(); }
  // Consistent merged copy of the per-stripe stats, safe while reader
  // threads are active.
  BufferPoolStats StatsSnapshot() const;
  PageFile* file() { return file_; }

 private:
  friend class PageRef;

  struct Stripe;

  static size_t StripeOf(uint64_t pageno) {
    // Fibonacci mix so consecutive pagenos land on different stripes.
    return static_cast<size_t>((pageno * 0x9E3779B97F4A7C15ull) >> 60) & (kPoolStripes - 1);
  }

  void Unpin(BufFrame* frame);

  // Adds `frame` to the WAL pending set (no-op when the barrier is off).
  void NoteDirty(const std::shared_ptr<BufFrame>& frame);

  // Pins an already-resident frame found in `stripe`, waiting out a
  // pending load.  Called with the stripe lock held (shared or unique via
  // `lock`); returns the pinned ref or the load failure.
  template <typename Lock>
  Result<PageRef> PinResident(Stripe& stripe, std::shared_ptr<BufFrame> frame, Lock& lock,
                              uint64_t t0);

  // Removes a frame whose backend read failed (or whose eviction pass
  // failed) from the table and wakes coalesced waiters with the bad news.
  void AbortLoad(Stripe& stripe, const std::shared_ptr<BufFrame>& frame);

  // --- clock ring + eviction, all under sweep_mu_ ---
  void RingAppend(BufFrame* frame);
  void RingRemove(BufFrame* frame);
  // True if `frame` and all its overflow successors are unpinned.
  bool ChainEvictable(const BufFrame* frame) const;
  // Eviction sweep: asks the policy for victims until the pool fits its
  // budget (or every unpinned frame, in eager mode / on invalidate).
  // Gives up and lets the pool grow when the policy runs out of candidates
  // or kMaxVictimScan candidates in a row are unevictable.
  Status SweepForRoom();
  Status EvictAllUnpinned();
  // Writes back (if dirty) and frees `frame` plus its successor chain.
  // Sets *evicted=false (without error) when a concurrent pin cancelled
  // the eviction after its writebacks.
  Status EvictChain(BufFrame* frame, bool* evicted);
  Status WriteBack(BufFrame* frame);

  PageFile* file_;
  const size_t page_size_;
  size_t max_frames_;

  std::unique_ptr<Stripe[]> stripes_;
  std::atomic<size_t> total_frames_{0};

  // WAL barrier state.  wal_mu_ guards only wal_pending_; it nests inside
  // stripe locks (taken from MarkDirty with no other pool lock held).
  std::atomic<bool> wal_barrier_{false};
  std::mutex wal_mu_;
  std::vector<WalPageHandle> wal_pending_;

  // Serializes eviction (policy victim selection), the ring links, and the
  // overflow-chain links.  Never taken by the hit path; ordered strictly
  // before stripe locks (sweep_mu_ -> stripe.mu, never the reverse).
  std::mutex sweep_mu_;
  // Circular ring of ALL resident frames — the policy-independent
  // iteration order for FlushAndInvalidate/EvictAllUnpinned; victim
  // selection lives in policy_ (hashkit-cache).
  BufFrame* clock_hand_ = nullptr;
  size_t ring_size_ = 0;
  // Replacement policy.  OnAdmit/OnRemove/NextVictim run under sweep_mu_;
  // OnAccess is hit-path lock-free (see eviction.h).
  std::unique_ptr<EvictionPolicy> policy_;

  // Eviction-side stats; serialized by sweep_mu_ / flush callers but kept
  // atomic so StatsSnapshot needs no lock.
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dirty_writebacks_{0};
  LatencyHistogram writeback_ns_;
  LatencyHistogram evict_ns_;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_PAGEFILE_BUFFER_POOL_H_
