// hashkit: LRU buffer pool, reproducing the paper's "Buffer Management"
// design.
//
// Frames are kept on an LRU chain; overflow-page frames are additionally
// linked to their predecessor frame (the primary page, or an earlier
// overflow page in the same chain).  Per the paper, "an overflow page
// cannot be present in the buffer pool if its primary page is not present":
// evicting a frame evicts its linked overflow successors with it.
//
// Pages are pinned while a caller holds a PageRef; pinned frames are never
// evicted.  When every frame is pinned the pool grows past its nominal
// limit rather than failing — this matches the paper's "buffer pool size 0"
// configuration, i.e. the minimum number of pages required is always
// resident.
//
// Thread-safety: the pool's bookkeeping (frame map, LRU chain, pin counts,
// stats) is guarded by an internal mutex, and all backend PageFile I/O
// happens under that mutex, so concurrent Get/Release from reader threads
// are safe.  Page *contents* are not guarded: callers must ensure writers
// are excluded while readers hold PageRefs (the kv layer does this with
// per-store reader/writer locks).

#ifndef HASHKIT_SRC_PAGEFILE_BUFFER_POOL_H_
#define HASHKIT_SRC_PAGEFILE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/pagefile/page_file.h"
#include "src/util/histogram.h"
#include "src/util/status.h"

namespace hashkit {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  // hashkit-obs latency distributions (nanoseconds), recorded under the
  // pool mutex.  get_hit_ns/get_miss_ns split BufferPool::Get by outcome
  // (a miss includes the backend read); writeback_ns times one WritePage;
  // evict_ns times a whole chain eviction including its writebacks.
  HistogramSnapshot get_hit_ns;
  HistogramSnapshot get_miss_ns;
  HistogramSnapshot writeback_ns;
  HistogramSnapshot evict_ns;

  // Accumulates another pool's counters and latency histograms.
  void MergeFrom(const BufferPoolStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    dirty_writebacks += other.dirty_writebacks;
    get_hit_ns.MergeFrom(other.get_hit_ns);
    get_miss_ns.MergeFrom(other.get_miss_ns);
    writeback_ns.MergeFrom(other.writeback_ns);
    evict_ns.MergeFrom(other.evict_ns);
  }
};

class BufferPool;

// RAII pin on a buffered page.  Movable, not copyable; releasing the last
// ref makes the frame evictable again.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  explicit operator bool() const { return frame_ != nullptr; }

  uint8_t* data();
  const uint8_t* data() const;
  uint64_t pageno() const;

  // Marks the page dirty; it will be written back on eviction or flush.
  void MarkDirty();

  // Drops the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, struct BufFrame* frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  struct BufFrame* frame_ = nullptr;
};

class BufferPool {
 public:
  // `pool_bytes` is the nominal cache budget.  A budget of 0 keeps only the
  // minimum (currently-pinned) pages resident.
  BufferPool(PageFile* file, size_t pool_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins page `pageno`.  With `create_new` the backend read is skipped and
  // the frame starts zero-filled (used for freshly allocated pages).
  Result<PageRef> Get(uint64_t pageno, bool create_new = false);

  // Records that `succ` is the overflow page following `pred` in a bucket
  // chain, so that evicting `pred` also evicts `succ` (and transitively the
  // rest of the chain).
  void LinkOverflow(const PageRef& pred, const PageRef& succ);

  // Writes all dirty frames to the backend; frames stay cached.
  Status FlushAll();

  // Writes all dirty frames and drops every unpinned frame.
  Status FlushAndInvalidate();

  // Drops a cached page without writeback (used when a page is freed and
  // its contents no longer matter).  No-op if absent; must not be pinned.
  void Discard(uint64_t pageno);

  size_t frames_in_use() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }
  size_t max_frames() const { return max_frames_; }
  // Unlocked view; only valid when no other thread is using the pool.
  const BufferPoolStats& stats() const { return stats_; }
  // Consistent copy, safe while reader threads are active.
  BufferPoolStats StatsSnapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  PageFile* file() { return file_; }

 private:
  friend class PageRef;

  void Unpin(BufFrame* frame);
  Status FlushAllLocked();
  void TouchLru(BufFrame* frame);
  void UnlinkLru(BufFrame* frame);
  // True if `frame` and all its overflow successors are unpinned.
  bool ChainEvictable(const BufFrame* frame) const;
  // Writes back (if dirty) and frees `frame` plus its successor chain.
  Status EvictChain(BufFrame* frame);
  Status WriteBack(BufFrame* frame);
  Status MakeRoom();

  PageFile* file_;
  size_t max_frames_;
  // Guards frames_, the LRU chain, per-frame pins/links, stats_, and all
  // backend I/O issued by the pool.
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<BufFrame>> frames_;
  BufFrame* lru_head_ = nullptr;  // least recently used
  BufFrame* lru_tail_ = nullptr;  // most recently used
  BufferPoolStats stats_;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_PAGEFILE_BUFFER_POOL_H_
