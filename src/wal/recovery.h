// hashkit-wal: crash recovery — replay committed records, discard torn
// tails, and restart the log.
//
// Recovery is purely physical: committed page after-images are rewritten
// into the main file at pageno * page_size, so it needs no knowledge of
// the hash table's structure and runs *before* the table reads its own
// header (a torn header page is itself repaired by replay).
//
// Recovery always finalizes the log — fsync the main file, then truncate
// the log to a fresh header plus a checkpoint record, then fsync the log.
// Leaving replayed records behind would be a latent corruption: a later
// session without a WAL (durability=none) mutates the main file directly,
// and a subsequent open would replay stale images over newer pages.

#ifndef HASHKIT_SRC_WAL_RECOVERY_H_
#define HASHKIT_SRC_WAL_RECOVERY_H_

#include <cstdint>
#include <string>

#include "src/pagefile/page_file.h"
#include "src/util/status.h"
#include "src/wal/wal_storage.h"

namespace hashkit {
namespace wal {

struct RecoveryResult {
  bool wal_found = false;        // a log with a valid header existed
  uint64_t batches_applied = 0;  // committed batches replayed
  uint64_t pages_applied = 0;    // page images written to the main file
  uint64_t records_scanned = 0;
  bool torn_tail = false;        // the log ended in an incomplete batch
  uint64_t last_seq = 0;         // highest committed sequence number seen
};

// Replays `wal` onto `file` and resets the log.  Generic over the storage
// abstractions so the crash-simulation harness can drive it against
// in-memory backends; HashTable::OpenWithBackends calls this directly.
Result<RecoveryResult> Recover(WalStorage* wal, PageFile* file);

// File-path front end used by HashTable::Open before it probes the
// table's header.  A missing or empty `wal_path` is a no-op.
Result<RecoveryResult> RecoverFiles(const std::string& db_path, const std::string& wal_path);

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_RECOVERY_H_
