// hashkit-wal: the log's read path.
//
// Iterates the framed records in a fully-read log buffer, validating
// length and CRC32C as it goes.  The reader never fails hard on a bad
// record: a length that runs past the buffer, a CRC mismatch, or a
// nonsense type simply ends iteration with torn_tail() set — exactly the
// state a crashed writer leaves behind, and the recovery contract is to
// discard it (the torn records' commit never made it, so nothing
// acknowledged is lost).

#ifndef HASHKIT_SRC_WAL_LOG_READER_H_
#define HASHKIT_SRC_WAL_LOG_READER_H_

#include <cstdint>
#include <span>

#include "src/util/status.h"
#include "src/wal/wal_format.h"

namespace hashkit {
namespace wal {

struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  uint64_t seq = 0;                  // commit / checkpoint records
  uint64_t pageno = 0;               // page-image records
  std::span<const uint8_t> image;    // page-image records (page_size bytes)
};

class LogReader {
 public:
  explicit LogReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  // Validates the file header and positions the reader at the first
  // record.  kNotFound when the buffer is empty or holds no valid header
  // (the caller treats the log as absent); kCorruption for a version or
  // geometry the code cannot read.
  Result<uint32_t> ReadHeader();

  // Advances to the next record.  False at the clean end of the log or at
  // a torn/corrupt tail — torn_tail() distinguishes the two.  The spans in
  // *rec alias the reader's buffer.
  bool Next(WalRecord* rec);

  bool torn_tail() const { return torn_tail_; }
  size_t offset() const { return offset_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
  uint32_t page_size_ = 0;
  bool torn_tail_ = false;
};

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_LOG_READER_H_
