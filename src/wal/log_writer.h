// hashkit-wal: the log's write path, with group commit.
//
// One operation's page images are buffered in memory; Commit() closes the
// batch with a commit record and appends the whole batch in a single
// storage write, so the log sees one sequential write per operation
// regardless of how many pages the operation touched.
//
// Durability policy is a single knob, sync_every:
//   0  — never fsync on commit (async durability: the OS decides when log
//        bytes reach disk; an explicit SyncBarrier()/checkpoint still
//        forces them);
//   1  — fsync every commit (full per-operation durability);
//   N  — fsync every Nth commit (group commit: up to N-1 acknowledged
//        operations can be lost in a crash, in exchange for amortizing
//        the fsync — the classic group-commit trade).
//
// Commit() reports through *out_synced whether this commit is durable, so
// the caller (HashTable) knows when buffer-pool writeback holds may be
// released: a page image may reach the main file only once the log bytes
// covering it are on disk (write-ahead rule).

#ifndef HASHKIT_SRC_WAL_LOG_WRITER_H_
#define HASHKIT_SRC_WAL_LOG_WRITER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/status.h"
#include "src/wal/wal_format.h"
#include "src/wal/wal_storage.h"

namespace hashkit {
namespace wal {

class LogWriter {
 public:
  LogWriter(std::unique_ptr<WalStorage> storage, uint32_t page_size, uint32_t sync_every);

  // Writes a fresh header on an empty log, or validates the existing one
  // (the open path truncates the log to header + checkpoint during
  // recovery, so a non-empty log here is always a recovered one).  An
  // existing log also restores the commit sequence number, so LSNs are
  // monotone across close/reopen — the property backup, point-in-time
  // recovery, and replication all lean on.
  Status Init();

  // Enables WAL archiving for point-in-time recovery: before every
  // checkpoint truncates the log, its full bytes are copied to
  // `<prefix>.<last_seq>` (20-digit zero-padded; see FORMAT.md "WAL
  // archive").  Each segment is a complete, self-describing log file —
  // header plus records — replayable by the same reader as the live log.
  void EnableArchive(std::string prefix) { archive_prefix_ = std::move(prefix); }

  // Buffers one page's after-image into the current batch.
  void AppendPageImage(uint64_t pageno, std::span<const uint8_t> image);

  // Closes the batch: appends buffered images plus a commit record in one
  // storage write, then fsyncs per the sync_every policy.  *out_synced
  // reports whether the log is durable through this commit.
  Status Commit(bool* out_synced);

  // Forces the log durable regardless of policy (explicit Sync / barrier).
  Status SyncBarrier();

  // Cross-operation group commit (hashkit-tpc).  While deferred, Commit()
  // never fsyncs even when the sync_every policy makes one due — it keeps
  // accumulating commits_since_sync_ instead.  The caller closes the scope
  // with SetDeferSync(false) and, when SyncDue(), a single SyncBarrier()
  // covers every commit in the batch: one fsync amortized across all of
  // them, without weakening the sync_every policy (no acknowledged commit
  // waits longer than the end of its batch).
  void SetDeferSync(bool defer) { defer_sync_ = defer; }
  bool SyncDue() const { return sync_every_ > 0 && commits_since_sync_ >= sync_every_; }

  // Checkpoint reset: truncates the log, writes a fresh header plus a
  // checkpoint record, and fsyncs.  Caller must have flushed the main
  // file first — after this call the log no longer repairs anything.
  Status CheckpointReset();

  uint64_t log_bytes() const { return storage_->Size(); }
  uint64_t last_seq() const { return seq_; }
  size_t pending_bytes() const { return pending_.size(); }
  WalStorage* storage() { return storage_.get(); }

  WalStats Stats() const;

 private:
  void AppendRecord(WalRecordType type, std::span<const uint8_t> payload);
  Status DoSync();

  // Copies the current log bytes to the next archive segment (no-op when
  // archiving is off or nothing was committed since the last checkpoint).
  Status ArchiveCurrentLog();

  std::unique_ptr<WalStorage> storage_;
  const uint32_t page_size_;
  const uint32_t sync_every_;
  std::string archive_prefix_;     // empty = archiving off
  uint64_t archived_through_ = 0;  // last seq already covered by a segment

  std::vector<uint8_t> pending_;  // current batch, framed
  uint64_t seq_ = 0;              // last committed sequence number
  uint32_t commits_since_sync_ = 0;
  bool defer_sync_ = false;

  // Counters; plain (single-writer), histograms concurrent for snapshots.
  uint64_t records_ = 0;
  uint64_t commits_ = 0;
  uint64_t syncs_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t bytes_ = 0;
  LatencyHistogram commit_ns_;
  LatencyHistogram sync_ns_;
};

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_LOG_WRITER_H_
