#include "src/wal/wal_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hashkit {
namespace wal {

namespace {

class DiskWalStorage final : public WalStorage {
 public:
  DiskWalStorage(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~DiskWalStorage() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status Append(std::span<const uint8_t> data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                                 static_cast<off_t>(size_ + done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError(std::string("wal append: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    size_ += data.size();
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("wal fsync: ") + std::strerror(errno));
    }
    return Status::Ok();
  }

  uint64_t Size() const override { return size_; }

  Status ReadAll(std::vector<uint8_t>* out) override {
    out->resize(size_);
    size_t done = 0;
    while (done < size_) {
      const ssize_t n =
          ::pread(fd_, out->data() + done, size_ - done, static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError(std::string("wal read: ") + std::strerror(errno));
      }
      if (n == 0) {
        return Status::IoError("wal read: unexpected EOF");
      }
      done += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Truncate() override {
    if (::ftruncate(fd_, 0) != 0) {
      return Status::IoError(std::string("wal truncate: ") + std::strerror(errno));
    }
    size_ = 0;
    return Status::Ok();
  }

 private:
  int fd_;
  uint64_t size_;
};

class MemWalStorage final : public WalStorage {
 public:
  Status Append(std::span<const uint8_t> data) override {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
    return Status::Ok();
  }
  Status Sync() override { return Status::Ok(); }
  uint64_t Size() const override { return bytes_.size(); }
  Status ReadAll(std::vector<uint8_t>* out) override {
    *out = bytes_;
    return Status::Ok();
  }
  Status Truncate() override {
    bytes_.clear();
    return Status::Ok();
  }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace

Result<std::unique_ptr<WalStorage>> OpenDiskWalStorage(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::IoError("lseek " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<WalStorage>(
      new DiskWalStorage(fd, static_cast<uint64_t>(end)));
}

std::unique_ptr<WalStorage> MakeMemWalStorage() {
  return std::make_unique<MemWalStorage>();
}

}  // namespace wal
}  // namespace hashkit
