// hashkit-wal: CRC32C (Castagnoli) checksums for log record framing.
//
// CRC32C rather than CRC32 because its error-detection properties for
// short records are better studied in storage systems (iSCSI, ext4,
// leveldb all frame with it), and a software table-driven implementation
// is fast enough for a log whose bandwidth is bounded by fsync latency.

#ifndef HASHKIT_SRC_WAL_CRC32C_H_
#define HASHKIT_SRC_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace hashkit {
namespace wal {

// Extends a running CRC32C with `n` more bytes.  Seed with 0 for a fresh
// checksum; the result of one call feeds the `crc` of the next, so a
// checksum over a concatenation can be computed piecewise.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) { return Crc32cExtend(0, data, n); }

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_CRC32C_H_
