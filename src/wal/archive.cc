#include "src/wal/archive.h"

#include <dirent.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/util/endian.h"
#include "src/util/tempfile.h"
#include "src/wal/crc32c.h"
#include "src/wal/log_reader.h"
#include "src/wal/wal_format.h"
#include "src/wal/wal_storage.h"

namespace hashkit {
namespace wal {

namespace {

// Splits `prefix` into its directory and leaf components for readdir.
void SplitPrefix(const std::string& prefix, std::string* dir, std::string* leaf) {
  const size_t slash = prefix.rfind('/');
  if (slash == std::string::npos) {
    *dir = ".";
    *leaf = prefix;
  } else {
    *dir = prefix.substr(0, slash == 0 ? 1 : slash);
    *leaf = prefix.substr(slash + 1);
  }
}

}  // namespace

Result<std::vector<ArchiveSegment>> ListArchiveSegments(const std::string& prefix) {
  std::string dir_path;
  std::string leaf;
  SplitPrefix(prefix, &dir_path, &leaf);
  leaf += '.';

  std::vector<ArchiveSegment> segments;
  DIR* dir = ::opendir(dir_path.c_str());
  if (dir == nullptr) {
    return segments;  // no directory, no segments
  }
  for (struct dirent* ent = ::readdir(dir); ent != nullptr; ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.size() != leaf.size() + 20 || name.compare(0, leaf.size(), leaf) != 0) {
      continue;
    }
    const std::string digits = name.substr(leaf.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ArchiveSegment seg;
    seg.path = dir_path + "/" + name;
    seg.last_seq = std::strtoull(digits.c_str(), nullptr, 10);
    segments.push_back(std::move(seg));
  }
  ::closedir(dir);
  std::sort(segments.begin(), segments.end(),
            [](const ArchiveSegment& a, const ArchiveSegment& b) {
              return a.last_seq < b.last_seq;
            });
  return segments;
}

Status ReplayLogBytes(std::span<const uint8_t> bytes, PageFile* file, uint64_t to_lsn,
                      uint64_t* applied_through, uint64_t* pages_applied) {
  LogReader reader(bytes);
  const Result<uint32_t> header = reader.ReadHeader();
  if (!header.ok()) {
    return header.status();
  }
  if (header.value() != file->page_size()) {
    return Status::Corruption("log page size does not match the restore target");
  }
  std::vector<std::pair<uint64_t, std::span<const uint8_t>>> batch;
  WalRecord rec;
  while (reader.Next(&rec)) {
    switch (rec.type) {
      case WalRecordType::kPageImage:
        batch.emplace_back(rec.pageno, rec.image);
        break;
      case WalRecordType::kCommit:
        if (rec.seq > to_lsn) {
          return Status::Ok();  // past the target: stop before applying
        }
        for (const auto& [pageno, image] : batch) {
          HASHKIT_RETURN_IF_ERROR(file->WritePage(pageno, image));
          if (pages_applied != nullptr) {
            ++*pages_applied;
          }
        }
        batch.clear();
        if (applied_through != nullptr && rec.seq > *applied_through) {
          *applied_through = rec.seq;
        }
        break;
      case WalRecordType::kCheckpoint:
        batch.clear();
        break;
    }
  }
  return Status::Ok();  // torn tail (uncommitted batch) is simply dropped
}

Status ReplayLogFile(const std::string& path, PageFile* file, uint64_t to_lsn,
                     uint64_t* applied_through, uint64_t* pages_applied) {
  std::string bytes;
  HASHKIT_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return ReplayLogBytes(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
      file, to_lsn, applied_through, pages_applied);
}

Result<uint64_t> RestoreToLsn(const std::string& db_path, uint64_t to_lsn) {
  const std::string wal_path = db_path + ".wal";
  HASHKIT_ASSIGN_OR_RETURN(std::vector<ArchiveSegment> segments, ListArchiveSegments(wal_path));

  // The page size comes from whichever log exists first; without any log
  // there is nothing to replay.
  uint32_t page_size = 0;
  {
    std::string probe;
    for (const ArchiveSegment& seg : segments) {
      if (ReadFileToString(seg.path, &probe).ok()) {
        break;
      }
    }
    if (probe.empty()) {
      const Status st = ReadFileToString(wal_path, &probe);
      if (st.IsNotFound()) {
        return Status::NotFound("no live log and no archive segments for " + db_path);
      }
      HASHKIT_RETURN_IF_ERROR(st);
    }
    LogReader reader(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(probe.data()), probe.size()));
    HASHKIT_ASSIGN_OR_RETURN(page_size, reader.ReadHeader());
  }

  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenDiskPageFile(db_path, page_size, /*truncate=*/false));
  uint64_t applied_through = 0;
  uint64_t pages = 0;
  for (const ArchiveSegment& seg : segments) {
    HASHKIT_RETURN_IF_ERROR(ReplayLogFile(seg.path, file.get(), to_lsn, &applied_through, &pages));
    if (applied_through >= to_lsn) {
      break;
    }
  }
  if (applied_through < to_lsn) {
    const Status st =
        ReplayLogFile(wal_path, file.get(), to_lsn, &applied_through, &pages);
    if (!st.ok() && !st.IsNotFound()) {
      return st;
    }
  }
  HASHKIT_RETURN_IF_ERROR(file->Sync());

  // Reset the live log to a checkpoint at the restored LSN: a subsequent
  // Open must not replay commits beyond the point-in-time target.
  // (Framing mirrors LogWriter; pinned by the format golden tests.)
  {
    HASHKIT_ASSIGN_OR_RETURN(auto wal, OpenDiskWalStorage(wal_path));
    HASHKIT_RETURN_IF_ERROR(wal->Truncate());
    uint8_t buf[kWalHeaderSize + kWalRecordHeaderSize + 9];
    EncodeU32(buf, kWalMagic);
    EncodeU32(buf + 4, kWalVersion);
    EncodeU32(buf + 8, page_size);
    EncodeU32(buf + 12, Crc32c(buf, 12));
    uint8_t* rec = buf + kWalHeaderSize;
    EncodeU32(rec, 9);
    rec[8] = static_cast<uint8_t>(WalRecordType::kCheckpoint);
    EncodeU64(rec + 9, applied_through);
    EncodeU32(rec + 4, Crc32c(rec + 8, 9));
    HASHKIT_RETURN_IF_ERROR(wal->Append(std::span<const uint8_t>(buf, sizeof(buf))));
    HASHKIT_RETURN_IF_ERROR(wal->Sync());
  }
  return applied_through;
}

}  // namespace wal
}  // namespace hashkit
