#include "src/wal/log_writer.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "src/util/endian.h"
#include "src/util/tempfile.h"
#include "src/wal/crc32c.h"
#include "src/wal/log_reader.h"

namespace hashkit {
namespace wal {

LogWriter::LogWriter(std::unique_ptr<WalStorage> storage, uint32_t page_size,
                     uint32_t sync_every)
    : storage_(std::move(storage)), page_size_(page_size), sync_every_(sync_every) {}

Status LogWriter::Init() {
  if (storage_->Size() == 0) {
    uint8_t header[kWalHeaderSize];
    EncodeU32(header, kWalMagic);
    EncodeU32(header + 4, kWalVersion);
    EncodeU32(header + 8, page_size_);
    EncodeU32(header + 12, Crc32c(header, 12));
    HASHKIT_RETURN_IF_ERROR(storage_->Append(std::span<const uint8_t>(header)));
    bytes_ += kWalHeaderSize;
    return Status::Ok();
  }
  std::vector<uint8_t> bytes;
  HASHKIT_RETURN_IF_ERROR(storage_->ReadAll(&bytes));
  if (bytes.size() < kWalHeaderSize || DecodeU32(bytes.data()) != kWalMagic ||
      DecodeU32(bytes.data() + 12) != Crc32c(bytes.data(), 12)) {
    return Status::Corruption("wal header invalid (log not recovered before Init)");
  }
  if (DecodeU32(bytes.data() + 4) != kWalVersion) {
    return Status::Corruption("wal version unsupported");
  }
  if (DecodeU32(bytes.data() + 8) != page_size_) {
    return Status::Corruption("wal page size does not match the table");
  }
  // Restore the commit sequence from the recovered log so LSNs stay
  // monotone across reopen: the checkpoint record recovery leaves at the
  // head carries the last applied seq, and any commits after it raise it
  // further.
  LogReader reader(bytes);
  if (reader.ReadHeader().ok()) {
    WalRecord rec;
    while (reader.Next(&rec)) {
      if (rec.type == WalRecordType::kCommit || rec.type == WalRecordType::kCheckpoint) {
        if (rec.seq > seq_) {
          seq_ = rec.seq;
        }
      }
    }
  }
  archived_through_ = seq_;
  return Status::Ok();
}

void LogWriter::AppendRecord(WalRecordType type, std::span<const uint8_t> payload) {
  const uint32_t len = static_cast<uint32_t>(1 + payload.size());
  const uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = Crc32c(&type_byte, 1);
  crc = Crc32cExtend(crc, payload.data(), payload.size());

  const size_t at = pending_.size();
  pending_.resize(at + kWalRecordHeaderSize + len);
  EncodeU32(pending_.data() + at, len);
  EncodeU32(pending_.data() + at + 4, crc);
  pending_[at + 8] = type_byte;
  std::memcpy(pending_.data() + at + 9, payload.data(), payload.size());
  ++records_;
}

void LogWriter::AppendPageImage(uint64_t pageno, std::span<const uint8_t> image) {
  assert(image.size() == page_size_);
  std::vector<uint8_t> payload(8 + image.size());
  EncodeU64(payload.data(), pageno);
  std::memcpy(payload.data() + 8, image.data(), image.size());
  AppendRecord(WalRecordType::kPageImage, payload);
}

Status LogWriter::Commit(bool* out_synced) {
  const uint64_t t0 = MonotonicNanos();
  uint8_t seq_buf[8];
  EncodeU64(seq_buf, ++seq_);
  AppendRecord(WalRecordType::kCommit, std::span<const uint8_t>(seq_buf));

  const Status appended = storage_->Append(pending_);
  if (!appended.ok()) {
    // The storage wrote nothing (or an undetectable partial tail the
    // reader will discard); drop the batch so a retry does not duplicate
    // it, and surface the error.
    pending_.clear();
    --seq_;
    return appended;
  }
  bytes_ += pending_.size();
  pending_.clear();
  ++commits_;

  bool synced = false;
  ++commits_since_sync_;
  if (!defer_sync_ && sync_every_ > 0 && commits_since_sync_ >= sync_every_) {
    HASHKIT_RETURN_IF_ERROR(DoSync());
    commits_since_sync_ = 0;
    synced = true;
  }
  commit_ns_.Record(MonotonicNanos() - t0);
  if (out_synced != nullptr) {
    *out_synced = synced;
  }
  return Status::Ok();
}

Status LogWriter::DoSync() {
  const uint64_t t0 = MonotonicNanos();
  HASHKIT_RETURN_IF_ERROR(storage_->Sync());
  ++syncs_;
  sync_ns_.Record(MonotonicNanos() - t0);
  return Status::Ok();
}

Status LogWriter::SyncBarrier() {
  assert(pending_.empty() && "SyncBarrier with an open batch");
  HASHKIT_RETURN_IF_ERROR(DoSync());
  commits_since_sync_ = 0;
  return Status::Ok();
}

Status LogWriter::ArchiveCurrentLog() {
  if (archive_prefix_.empty() || seq_ <= archived_through_) {
    return Status::Ok();
  }
  std::vector<uint8_t> bytes;
  HASHKIT_RETURN_IF_ERROR(storage_->ReadAll(&bytes));
  char name[32];
  std::snprintf(name, sizeof(name), ".%020llu", static_cast<unsigned long long>(seq_));
  const std::string segment = archive_prefix_ + name;
  HASHKIT_RETURN_IF_ERROR(WriteFileAtomic(
      segment, std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size())));
  archived_through_ = seq_;
  return Status::Ok();
}

Status LogWriter::CheckpointReset() {
  // Point-in-time recovery: the bytes about to be truncated are the only
  // copy of this checkpoint interval's history — archive them first.
  HASHKIT_RETURN_IF_ERROR(ArchiveCurrentLog());
  HASHKIT_RETURN_IF_ERROR(storage_->Truncate());

  uint8_t header[kWalHeaderSize];
  EncodeU32(header, kWalMagic);
  EncodeU32(header + 4, kWalVersion);
  EncodeU32(header + 8, page_size_);
  EncodeU32(header + 12, Crc32c(header, 12));
  HASHKIT_RETURN_IF_ERROR(storage_->Append(std::span<const uint8_t>(header)));

  uint8_t seq_buf[8];
  EncodeU64(seq_buf, seq_);
  AppendRecord(WalRecordType::kCheckpoint, std::span<const uint8_t>(seq_buf));
  const Status appended = storage_->Append(pending_);
  bytes_ += kWalHeaderSize + pending_.size();
  pending_.clear();
  HASHKIT_RETURN_IF_ERROR(appended);

  HASHKIT_RETURN_IF_ERROR(DoSync());
  ++checkpoints_;
  commits_since_sync_ = 0;
  return Status::Ok();
}

WalStats LogWriter::Stats() const {
  WalStats out;
  out.records = records_;
  out.commits = commits_;
  out.syncs = syncs_;
  out.checkpoints = checkpoints_;
  out.bytes = bytes_;
  out.commit_ns = commit_ns_.Snapshot();
  out.sync_ns = sync_ns_.Snapshot();
  return out;
}

}  // namespace wal
}  // namespace hashkit
