#include "src/wal/crc32c.h"

#include <array>

namespace hashkit {
namespace wal {

namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace wal
}  // namespace hashkit
