#include "src/wal/log_reader.h"

#include "src/util/endian.h"
#include "src/wal/crc32c.h"

namespace hashkit {
namespace wal {

Result<uint32_t> LogReader::ReadHeader() {
  if (bytes_.size() < kWalHeaderSize || DecodeU32(bytes_.data()) != kWalMagic ||
      DecodeU32(bytes_.data() + 12) != Crc32c(bytes_.data(), 12)) {
    // Empty, short, or torn header.  The header is written only when the
    // log holds nothing committed (at creation, and at checkpoint reset
    // after the main file is fully synced), so an unreadable one means
    // there is nothing to replay.
    return Status::NotFound("no valid wal header");
  }
  if (DecodeU32(bytes_.data() + 4) != kWalVersion) {
    return Status::Corruption("wal version unsupported");
  }
  page_size_ = DecodeU32(bytes_.data() + 8);
  if (page_size_ < 64 || page_size_ > 65536 || (page_size_ & (page_size_ - 1)) != 0) {
    return Status::Corruption("wal header has invalid page size");
  }
  offset_ = kWalHeaderSize;
  return page_size_;
}

bool LogReader::Next(WalRecord* rec) {
  if (offset_ == bytes_.size()) {
    return false;  // clean end
  }
  if (bytes_.size() - offset_ < kWalRecordHeaderSize) {
    torn_tail_ = true;
    return false;
  }
  const uint32_t len = DecodeU32(bytes_.data() + offset_);
  const uint32_t crc = DecodeU32(bytes_.data() + offset_ + 4);
  if (len == 0 || len > bytes_.size() - offset_ - kWalRecordHeaderSize) {
    torn_tail_ = true;
    return false;
  }
  const uint8_t* body = bytes_.data() + offset_ + kWalRecordHeaderSize;
  if (Crc32c(body, len) != crc) {
    torn_tail_ = true;
    return false;
  }
  const std::span<const uint8_t> payload(body + 1, len - 1);
  switch (static_cast<WalRecordType>(body[0])) {
    case WalRecordType::kPageImage:
      if (payload.size() != 8 + page_size_) {
        torn_tail_ = true;
        return false;
      }
      rec->type = WalRecordType::kPageImage;
      rec->pageno = DecodeU64(payload.data());
      rec->image = payload.subspan(8);
      break;
    case WalRecordType::kCommit:
    case WalRecordType::kCheckpoint:
      if (payload.size() != 8) {
        torn_tail_ = true;
        return false;
      }
      rec->type = static_cast<WalRecordType>(body[0]);
      rec->seq = DecodeU64(payload.data());
      break;
    default:
      torn_tail_ = true;
      return false;
  }
  offset_ += kWalRecordHeaderSize + len;
  return true;
}

}  // namespace wal
}  // namespace hashkit
