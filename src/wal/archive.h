// hashkit-wal: archived log segments and point-in-time recovery.
//
// With archiving enabled (HashOptions::wal_archive), every checkpoint
// copies the log it is about to truncate to `<wal path>.<last_seq>` — a
// 20-digit zero-padded decimal commit sequence, so lexicographic name
// order is replay order (FORMAT.md "WAL archive").  Each segment is a
// complete log file (header + records), replayable by the ordinary
// LogReader.
//
// Point-in-time recovery replays a base page image forward: every
// archived segment in order, then the live log, applying each committed
// batch whose sequence number is <= the target LSN.  Page images are
// whole-page redo records, so replaying a segment that partially predates
// the base image is harmless — later images simply overwrite.

#ifndef HASHKIT_SRC_WAL_ARCHIVE_H_
#define HASHKIT_SRC_WAL_ARCHIVE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/pagefile/page_file.h"
#include "src/util/status.h"

namespace hashkit {
namespace wal {

struct ArchiveSegment {
  std::string path;
  uint64_t last_seq = 0;  // highest commit seq the segment can contain
};

// Lists `<prefix>.<seq>` archive segments, sorted by sequence number.
// Returns an empty vector when none exist (not an error).
Result<std::vector<ArchiveSegment>> ListArchiveSegments(const std::string& prefix);

// Replays every committed batch with seq <= `to_lsn` from one log file's
// bytes onto `file`.  `*applied_through` is raised to the highest sequence
// applied; batches beyond `to_lsn` (and any torn tail) are ignored.
Status ReplayLogBytes(std::span<const uint8_t> bytes, PageFile* file, uint64_t to_lsn,
                      uint64_t* applied_through, uint64_t* pages_applied);

// ReplayLogBytes over a log file on disk.  kNotFound if absent.
Status ReplayLogFile(const std::string& path, PageFile* file, uint64_t to_lsn,
                     uint64_t* applied_through, uint64_t* pages_applied);

// Point-in-time restore: replays all of `db_path`'s archived segments
// (prefix `<db_path>.wal`) and then its live log onto the page file at
// `db_path`, stopping at `to_lsn` (UINT64_MAX = everything).  The page
// size is taken from the first log encountered.  Returns the LSN actually
// applied through.
Result<uint64_t> RestoreToLsn(const std::string& db_path, uint64_t to_lsn);

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_ARCHIVE_H_
