// hashkit-wal: append-only byte storage backing the log.
//
// The log's I/O needs are narrower than PageFile's — sequential append,
// fsync, read-everything, truncate — so it gets its own abstraction with
// a disk implementation for real tables and a memory implementation for
// tests and the crash-simulation harness (which wraps either to record
// every write event).
//
// Thread-safety: none required.  The log has exactly one writer (the
// table's mutation path, which the kv layer already serializes) and is
// read only at open time.

#ifndef HASHKIT_SRC_WAL_WAL_STORAGE_H_
#define HASHKIT_SRC_WAL_WAL_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace hashkit {
namespace wal {

class WalStorage {
 public:
  virtual ~WalStorage() = default;

  WalStorage(const WalStorage&) = delete;
  WalStorage& operator=(const WalStorage&) = delete;

  // Appends `data` at the current end of the log.
  virtual Status Append(std::span<const uint8_t> data) = 0;

  // Flushes appended bytes to stable storage.
  virtual Status Sync() = 0;

  // Current log size in bytes.
  virtual uint64_t Size() const = 0;

  // Reads the entire log into `*out`.
  virtual Status ReadAll(std::vector<uint8_t>* out) = 0;

  // Discards all content (checkpoint reset).
  virtual Status Truncate() = 0;

 protected:
  WalStorage() = default;
};

// Opens (creating if necessary) the log file at `path`.
Result<std::unique_ptr<WalStorage>> OpenDiskWalStorage(const std::string& path);

// Purely in-memory log, for tests and crash simulation.
std::unique_ptr<WalStorage> MakeMemWalStorage();

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_WAL_STORAGE_H_
