// hashkit-wal: on-disk framing of the write-ahead log.
//
// The log is a byte stream: a fixed 16-byte file header followed by
// length- and CRC32C-framed records.  Records carry *physical page
// images* (redo-only, as in the paper's era of simple recovery schemes:
// the table's multi-page operations — splits, big-pair chains, bitmap
// updates — are made atomic by replaying the full after-images of every
// page an operation touched).  A commit record closes each operation's
// batch; replay applies a batch only once its commit record has been read
// intact, so a torn tail discards whole operations, never parts of one.
//
//   header   := magic u32 | version u32 | page_size u32 | crc32c u32
//               (crc over the first 12 bytes)
//   record   := length u32 | crc32c u32 | body
//   body     := type u8 | payload          (length = |body|, crc over body)
//
//   type 1 (page image):  payload = pageno u64 | page image (page_size B)
//   type 2 (commit):      payload = seq u64
//   type 3 (checkpoint):  payload = seq u64
//
// All integers little-endian (src/util/endian.h), like every other
// on-disk integer in the package.  Byte-exact layout is specified in
// FORMAT.md and pinned by format_golden_test.cc.

#ifndef HASHKIT_SRC_WAL_WAL_FORMAT_H_
#define HASHKIT_SRC_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "src/util/histogram.h"

namespace hashkit {
namespace wal {

inline constexpr uint32_t kWalMagic = 0x4c574b48;  // "HKWL" little-endian
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderSize = 16;
inline constexpr size_t kWalRecordHeaderSize = 8;  // length u32 + crc u32

enum class WalRecordType : uint8_t {
  kPageImage = 1,
  kCommit = 2,
  kCheckpoint = 3,
};

// Counters and latency distributions for the log, reported through
// StoreStats::wal and the STATS wire text.
struct WalStats {
  uint64_t records = 0;      // records appended (images + commits + checkpoints)
  uint64_t commits = 0;      // commit batches appended
  uint64_t syncs = 0;        // log fsyncs
  uint64_t checkpoints = 0;  // checkpoint resets (log truncated + restarted)
  uint64_t bytes = 0;        // bytes appended since open
  uint64_t recovered_batches = 0;  // commit batches replayed at open
  uint64_t recovered_pages = 0;    // page images replayed at open

  HistogramSnapshot commit_ns;  // Commit() end to end (append + policy fsync)
  HistogramSnapshot sync_ns;    // each log fsync alone

  void MergeFrom(const WalStats& other) {
    records += other.records;
    commits += other.commits;
    syncs += other.syncs;
    checkpoints += other.checkpoints;
    bytes += other.bytes;
    recovered_batches += other.recovered_batches;
    recovered_pages += other.recovered_pages;
    commit_ns.MergeFrom(other.commit_ns);
    sync_ns.MergeFrom(other.sync_ns);
  }
};

}  // namespace wal
}  // namespace hashkit

#endif  // HASHKIT_SRC_WAL_WAL_FORMAT_H_
