#include "src/wal/recovery.h"

#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

#include "src/util/endian.h"
#include "src/wal/crc32c.h"
#include "src/wal/log_reader.h"

namespace hashkit {
namespace wal {

namespace {

// Truncates the log and writes a fresh header plus a checkpoint record.
// (Framing mirrors LogWriter; both producers are pinned by the format
// golden tests.)
Status ResetLog(WalStorage* wal, uint32_t page_size, uint64_t seq) {
  HASHKIT_RETURN_IF_ERROR(wal->Truncate());

  uint8_t buf[kWalHeaderSize + kWalRecordHeaderSize + 9];
  EncodeU32(buf, kWalMagic);
  EncodeU32(buf + 4, kWalVersion);
  EncodeU32(buf + 8, page_size);
  EncodeU32(buf + 12, Crc32c(buf, 12));

  uint8_t* rec = buf + kWalHeaderSize;
  EncodeU32(rec, 9);  // body length: type byte + seq u64
  rec[8] = static_cast<uint8_t>(WalRecordType::kCheckpoint);
  EncodeU64(rec + 9, seq);
  EncodeU32(rec + 4, Crc32c(rec + 8, 9));

  HASHKIT_RETURN_IF_ERROR(wal->Append(std::span<const uint8_t>(buf, sizeof(buf))));
  return wal->Sync();
}

}  // namespace

Result<RecoveryResult> Recover(WalStorage* wal, PageFile* file) {
  RecoveryResult result;
  if (wal->Size() == 0) {
    return result;  // brand-new log: nothing to replay, nothing to reset
  }
  std::vector<uint8_t> bytes;
  HASHKIT_RETURN_IF_ERROR(wal->ReadAll(&bytes));

  LogReader reader(bytes);
  const Result<uint32_t> header = reader.ReadHeader();
  if (!header.ok()) {
    if (header.status().IsCorruption()) {
      return header.status();
    }
    // Torn or absent header: the header is (re)written only when nothing
    // is committed, so the log carries no obligations — clear it.
    HASHKIT_RETURN_IF_ERROR(wal->Truncate());
    return result;
  }
  if (header.value() != file->page_size()) {
    return Status::Corruption("wal page size does not match the table file");
  }
  result.wal_found = true;

  // Replay: buffer each batch's images, apply them only at its commit
  // record.  A batch without a commit (torn tail) is discarded whole.
  std::vector<std::pair<uint64_t, std::span<const uint8_t>>> batch;
  WalRecord rec;
  while (reader.Next(&rec)) {
    ++result.records_scanned;
    switch (rec.type) {
      case WalRecordType::kPageImage:
        batch.emplace_back(rec.pageno, rec.image);
        break;
      case WalRecordType::kCommit:
        for (const auto& [pageno, image] : batch) {
          HASHKIT_RETURN_IF_ERROR(file->WritePage(pageno, image));
          ++result.pages_applied;
        }
        batch.clear();
        ++result.batches_applied;
        result.last_seq = rec.seq;
        break;
      case WalRecordType::kCheckpoint:
        batch.clear();
        if (rec.seq > result.last_seq) {
          result.last_seq = rec.seq;
        }
        break;
    }
  }
  result.torn_tail = reader.torn_tail() || !batch.empty();

  if (result.batches_applied == 0 && !result.torn_tail) {
    return result;  // clean log (header + checkpoint): leave it in place
  }
  if (result.pages_applied > 0) {
    HASHKIT_RETURN_IF_ERROR(file->Sync());
  }
  HASHKIT_RETURN_IF_ERROR(ResetLog(wal, header.value(), result.last_seq));
  return result;
}

Result<RecoveryResult> RecoverFiles(const std::string& db_path, const std::string& wal_path) {
  RecoveryResult result;
  if (::access(wal_path.c_str(), F_OK) != 0) {
    return result;  // no log, nothing to do
  }
  HASHKIT_ASSIGN_OR_RETURN(auto wal, OpenDiskWalStorage(wal_path));
  if (wal->Size() == 0) {
    return result;
  }
  // The main file's page size comes from the log header — recovery must
  // run before the table reads its own (possibly torn) header page.
  std::vector<uint8_t> bytes;
  HASHKIT_RETURN_IF_ERROR(wal->ReadAll(&bytes));
  LogReader reader(bytes);
  const Result<uint32_t> header = reader.ReadHeader();
  if (!header.ok()) {
    if (header.status().IsCorruption()) {
      return header.status();
    }
    HASHKIT_RETURN_IF_ERROR(wal->Truncate());
    return result;
  }
  HASHKIT_ASSIGN_OR_RETURN(auto file,
                           OpenDiskPageFile(db_path, header.value(), /*truncate=*/false));
  return Recover(wal.get(), file.get());
}

}  // namespace wal
}  // namespace hashkit
