#include "src/kv/ttl.h"

#include <chrono>
#include <cstring>

#include "src/kv/kv_store.h"

namespace hashkit {
namespace kv {

namespace {
std::atomic<int64_t> g_ttl_clock_offset_ms{0};
}  // namespace

uint64_t TtlNowMs() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const int64_t wall = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  return static_cast<uint64_t>(wall + g_ttl_clock_offset_ms.load(std::memory_order_relaxed));
}

void TtlAdvanceClockForTesting(int64_t delta_ms) {
  g_ttl_clock_offset_ms.fetch_add(delta_ms, std::memory_order_relaxed);
}

void TtlResetClockForTesting() {
  g_ttl_clock_offset_ms.store(0, std::memory_order_relaxed);
}

void EncodeTtlValue(uint64_t expire_at_ms, std::string_view payload, std::string* out) {
  out->clear();
  out->reserve(kTtlStampBytes + payload.size());
  char stamp[kTtlStampBytes];
  for (size_t i = 0; i < kTtlStampBytes; ++i) {
    stamp[i] = static_cast<char>((expire_at_ms >> (8 * i)) & 0xff);
  }
  out->append(stamp, kTtlStampBytes);
  out->append(payload);
}

bool DecodeTtlStamp(std::string_view raw, uint64_t* expire_at_ms, std::string_view* payload) {
  if (raw.size() < kTtlStampBytes) {
    return false;
  }
  uint64_t stamp = 0;
  for (size_t i = 0; i < kTtlStampBytes; ++i) {
    stamp |= static_cast<uint64_t>(static_cast<uint8_t>(raw[i])) << (8 * i);
  }
  *expire_at_ms = stamp;
  *payload = raw.substr(kTtlStampBytes);
  return true;
}

void TtlSweeper::Start() {
  if (thread_.joinable()) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void TtlSweeper::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void TtlSweeper::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) {
      break;
    }
    lock.unlock();
    size_t deleted = 0;
    (void)store_->SweepExpired(options_.budget, TtlNowMs(), &deleted);
    swept_.fetch_add(deleted, std::memory_order_relaxed);
    slices_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace kv
}  // namespace hashkit
