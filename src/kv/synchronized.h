// hashkit: a thread-safe decorator for any KvStore.
//
// The paper: "the current design does not support multi-user access or
// transactions, [but] they could be incorporated relatively easily."  The
// stores themselves remain single-writer (as in 1991); this wrapper
// incorporates the multi-access half with one reader/writer lock: Get and
// Size take a shared lock when the base store declares
// Capabilities::concurrent_reads (the paper's hash table does — its read
// path is race-free under concurrent readers), so lookups no longer
// serialize each other; every mutation, and reads on bases without that
// guarantee, take the exclusive lock.  For keyspace-partitioned scaling on
// top of this, see sharded.h.  (Scan state is per-store, so concurrent
// scans still interleave logically; guard whole scans externally if that
// matters.)
//
// hashkit-obs: every Put/Get/Delete/Sync is timed end-to-end — lock wait
// included, since that is what a caller observes — into lock-free
// histograms surfaced through StoreStats::latency (see Stats()).

#ifndef HASHKIT_SRC_KV_SYNCHRONIZED_H_
#define HASHKIT_SRC_KV_SYNCHRONIZED_H_

#include <memory>
#include <shared_mutex>

#include "src/kv/kv_store.h"
#include "src/util/histogram.h"

namespace hashkit {
namespace kv {

class SynchronizedStore final : public KvStore {
 public:
  explicit SynchronizedStore(std::unique_ptr<KvStore> base)
      : base_(std::move(base)), reads_share_(base_->Caps().concurrent_reads) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Put(key, value, overwrite);
    }
    put_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Get(std::string_view key, std::string* value) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      st = base_->Get(key, value);
    } else {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Get(key, value);
    }
    get_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Delete(std::string_view key) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Delete(key);
    }
    delete_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Scan(std::string* key, std::string* value, bool first) override {
    // Exclusive even though it "reads": the base store's scan cursor
    // mutates on every call.
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Scan(key, value, first);
  }
  // One lock acquisition for the whole batch (hashkit-tpc): shared when
  // every op is a read and the base allows concurrent reads, exclusive
  // otherwise.  Per-op latency is folded into the same histograms the
  // single-op paths feed, so STATS percentiles stay meaningful.
  Status ApplyBatch(std::span<BatchOp> ops) override {
    const uint64_t t0 = MonotonicNanos();
    bool writes = false;
    for (const BatchOp& op : ops) {
      if (op.kind != BatchOp::Kind::kGet) {
        writes = true;
        break;
      }
    }
    Status st;
    if (!writes && reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      st = base_->ApplyBatch(ops);
    } else {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->ApplyBatch(ops);
    }
    if (!ops.empty()) {
      const uint64_t per_op = (MonotonicNanos() - t0) / ops.size();
      for (const BatchOp& op : ops) {
        switch (op.kind) {
          case BatchOp::Kind::kPut:
            put_ns_.Record(per_op);
            break;
          case BatchOp::Kind::kGet:
            get_ns_.Record(per_op);
            break;
          case BatchOp::Kind::kDelete:
            delete_ns_.Record(per_op);
            break;
        }
      }
    }
    return st;
  }
  size_t PartitionCount() const override { return base_->PartitionCount(); }
  size_t PartitionOf(std::string_view key) const override { return base_->PartitionOf(key); }
  // --- TTL pass-throughs (hashkit-cache): same locking shape as their
  // non-TTL counterparts; reads share, everything that can write excludes.
  Status PutWithTtl(std::string_view key, std::string_view value, bool overwrite,
                    uint64_t expire_at_ms) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->PutWithTtl(key, value, overwrite, expire_at_ms);
    }
    put_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status GetWithExpiry(std::string_view key, std::string* value,
                       uint64_t* expire_at_ms) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      st = base_->GetWithExpiry(key, value, expire_at_ms);
    } else {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->GetWithExpiry(key, value, expire_at_ms);
    }
    get_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Touch(std::string_view key, uint64_t expire_at_ms) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Touch(key, expire_at_ms);
  }
  Status SweepExpired(size_t budget, uint64_t now_ms, size_t* deleted) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->SweepExpired(budget, now_ms, deleted);
  }
  Status ScanRaw(std::string* key, std::string* value, bool first) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->ScanRaw(key, value, first);
  }
  Status PutRaw(std::string_view key, std::string_view value) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->PutRaw(key, value);
  }
  Status Sync() override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Sync();
    }
    sync_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  uint64_t Size() const override {
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      return base_->Size();
    }
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Size();
  }
  std::string Name() const override { return base_->Name() + "+sync"; }
  Capabilities Caps() const override {
    Capabilities caps = base_->Caps();
    // The wrapper's own locking makes concurrent calls safe regardless of
    // the base store.
    caps.concurrent_reads = true;
    return caps;
  }
  // --- Snapshot scans / backup / replication (hashkit-mvcc) ---
  // Creation and teardown exclude writers; the per-step read calls share
  // the lock, which is the whole point: a long snapshot scan or backup
  // stream only blocks writers one call at a time.
  Result<std::unique_ptr<KvCursor>> NewSnapshotCursor() override {
    std::unique_ptr<KvCursor> base;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      HASHKIT_ASSIGN_OR_RETURN(base, base_->NewSnapshotCursor());
    }
    return std::unique_ptr<KvCursor>(new LockedCursor(&mu_, std::move(base)));
  }
  Result<BackupInfo> BackupBegin() override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->BackupBegin();
  }
  Status BackupReadPages(uint64_t first_page, uint32_t count, std::string* out) override {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return base_->BackupReadPages(first_page, count, out);
  }
  Status BackupReadWal(uint64_t offset, uint32_t max_bytes, std::string* out,
                       uint64_t* total) override {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return base_->BackupReadWal(offset, max_bytes, out, total);
  }
  Status BackupEnd() override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->BackupEnd();
  }
  Status ReplicationRead(uint64_t from_lsn, std::string* out, uint64_t* last_lsn) override {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return base_->ReplicationRead(from_lsn, out, last_lsn);
  }
  Status ApplyReplication(std::string_view log_bytes, uint64_t from_lsn,
                          uint64_t* applied_through) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->ApplyReplication(log_bytes, from_lsn, applied_through);
  }
  uint64_t Lsn() const override {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return base_->Lsn();
  }

  // Always true: the wrapper owns the latency histograms even when the
  // base store has no counters of its own (table/pool stay zeroed then).
  bool Stats(StoreStats* out) const override {
    StoreStats merged;
    {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      (void)base_->Stats(&merged);
    }
    merged.latency.put = put_ns_.Snapshot();
    merged.latency.get = get_ns_.Snapshot();
    merged.latency.del = delete_ns_.Snapshot();
    merged.latency.sync = sync_ns_.Snapshot();
    *out = merged;
    return true;
  }

 private:
  // Snapshot cursor that re-acquires the wrapper's shared lock for every
  // step, so writers interleave between steps instead of waiting out the
  // whole scan (the old Scan path's exclusive-per-step bug, inverted).
  class LockedCursor final : public KvCursor {
   public:
    LockedCursor(std::shared_mutex* mu, std::unique_ptr<KvCursor> base)
        : mu_(mu), base_(std::move(base)) {}
    Status Next(std::string* key, std::string* value) override {
      const std::shared_lock<std::shared_mutex> lock(*mu_);
      return base_->Next(key, value);
    }
    uint64_t Lsn() const override { return base_->Lsn(); }

   private:
    std::shared_mutex* mu_;
    std::unique_ptr<KvCursor> base_;
  };

  mutable std::shared_mutex mu_;
  std::unique_ptr<KvStore> base_;
  const bool reads_share_;

  LatencyHistogram put_ns_;
  LatencyHistogram get_ns_;
  LatencyHistogram delete_ns_;
  LatencyHistogram sync_ns_;
};

inline std::unique_ptr<KvStore> MakeSynchronized(std::unique_ptr<KvStore> base) {
  return std::make_unique<SynchronizedStore>(std::move(base));
}

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_SYNCHRONIZED_H_
