// hashkit: a thread-safe decorator for any KvStore.
//
// The paper: "the current design does not support multi-user access or
// transactions, [but] they could be incorporated relatively easily."  The
// stores themselves remain single-writer (as in 1991); this wrapper
// incorporates the multi-access half with one reader/writer lock: Get and
// Size take a shared lock when the base store declares
// Capabilities::concurrent_reads (the paper's hash table does — its read
// path is race-free under concurrent readers), so lookups no longer
// serialize each other; every mutation, and reads on bases without that
// guarantee, take the exclusive lock.  For keyspace-partitioned scaling on
// top of this, see sharded.h.  (Scan state is per-store, so concurrent
// scans still interleave logically; guard whole scans externally if that
// matters.)

#ifndef HASHKIT_SRC_KV_SYNCHRONIZED_H_
#define HASHKIT_SRC_KV_SYNCHRONIZED_H_

#include <memory>
#include <shared_mutex>

#include "src/kv/kv_store.h"

namespace hashkit {
namespace kv {

class SynchronizedStore final : public KvStore {
 public:
  explicit SynchronizedStore(std::unique_ptr<KvStore> base)
      : base_(std::move(base)), reads_share_(base_->Caps().concurrent_reads) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Put(key, value, overwrite);
  }
  Status Get(std::string_view key, std::string* value) override {
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      return base_->Get(key, value);
    }
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Get(key, value);
  }
  Status Delete(std::string_view key) override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Delete(key);
  }
  Status Scan(std::string* key, std::string* value, bool first) override {
    // Exclusive even though it "reads": the base store's scan cursor
    // mutates on every call.
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Scan(key, value, first);
  }
  Status Sync() override {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Sync();
  }
  uint64_t Size() const override {
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      return base_->Size();
    }
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Size();
  }
  std::string Name() const override { return base_->Name() + "+sync"; }
  Capabilities Caps() const override {
    Capabilities caps = base_->Caps();
    // The wrapper's own locking makes concurrent calls safe regardless of
    // the base store.
    caps.concurrent_reads = true;
    return caps;
  }
  bool Stats(StoreStats* out) const override {
    const std::shared_lock<std::shared_mutex> lock(mu_);
    return base_->Stats(out);
  }

 private:
  mutable std::shared_mutex mu_;
  std::unique_ptr<KvStore> base_;
  const bool reads_share_;
};

inline std::unique_ptr<KvStore> MakeSynchronized(std::unique_ptr<KvStore> base) {
  return std::make_unique<SynchronizedStore>(std::move(base));
}

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_SYNCHRONIZED_H_
