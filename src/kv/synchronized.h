// hashkit: a thread-safe decorator for any KvStore.
//
// The paper: "the current design does not support multi-user access or
// transactions, [but] they could be incorporated relatively easily."  The
// stores themselves remain single-writer (as in 1991); this wrapper
// incorporates the multi-access half with one reader/writer lock: Get and
// Size take a shared lock when the base store declares
// Capabilities::concurrent_reads (the paper's hash table does — its read
// path is race-free under concurrent readers), so lookups no longer
// serialize each other; every mutation, and reads on bases without that
// guarantee, take the exclusive lock.  For keyspace-partitioned scaling on
// top of this, see sharded.h.  (Scan state is per-store, so concurrent
// scans still interleave logically; guard whole scans externally if that
// matters.)
//
// hashkit-obs: every Put/Get/Delete/Sync is timed end-to-end — lock wait
// included, since that is what a caller observes — into lock-free
// histograms surfaced through StoreStats::latency (see Stats()).

#ifndef HASHKIT_SRC_KV_SYNCHRONIZED_H_
#define HASHKIT_SRC_KV_SYNCHRONIZED_H_

#include <memory>
#include <shared_mutex>

#include "src/kv/kv_store.h"
#include "src/util/histogram.h"

namespace hashkit {
namespace kv {

class SynchronizedStore final : public KvStore {
 public:
  explicit SynchronizedStore(std::unique_ptr<KvStore> base)
      : base_(std::move(base)), reads_share_(base_->Caps().concurrent_reads) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Put(key, value, overwrite);
    }
    put_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Get(std::string_view key, std::string* value) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      st = base_->Get(key, value);
    } else {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Get(key, value);
    }
    get_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Delete(std::string_view key) override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Delete(key);
    }
    delete_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  Status Scan(std::string* key, std::string* value, bool first) override {
    // Exclusive even though it "reads": the base store's scan cursor
    // mutates on every call.
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Scan(key, value, first);
  }
  Status Sync() override {
    const uint64_t t0 = MonotonicNanos();
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(mu_);
      st = base_->Sync();
    }
    sync_ns_.Record(MonotonicNanos() - t0);
    return st;
  }
  uint64_t Size() const override {
    if (reads_share_) {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      return base_->Size();
    }
    const std::unique_lock<std::shared_mutex> lock(mu_);
    return base_->Size();
  }
  std::string Name() const override { return base_->Name() + "+sync"; }
  Capabilities Caps() const override {
    Capabilities caps = base_->Caps();
    // The wrapper's own locking makes concurrent calls safe regardless of
    // the base store.
    caps.concurrent_reads = true;
    return caps;
  }
  // Always true: the wrapper owns the latency histograms even when the
  // base store has no counters of its own (table/pool stay zeroed then).
  bool Stats(StoreStats* out) const override {
    StoreStats merged;
    {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      (void)base_->Stats(&merged);
    }
    merged.latency.put = put_ns_.Snapshot();
    merged.latency.get = get_ns_.Snapshot();
    merged.latency.del = delete_ns_.Snapshot();
    merged.latency.sync = sync_ns_.Snapshot();
    *out = merged;
    return true;
  }

 private:
  mutable std::shared_mutex mu_;
  std::unique_ptr<KvStore> base_;
  const bool reads_share_;

  LatencyHistogram put_ns_;
  LatencyHistogram get_ns_;
  LatencyHistogram delete_ns_;
  LatencyHistogram sync_ns_;
};

inline std::unique_ptr<KvStore> MakeSynchronized(std::unique_ptr<KvStore> base) {
  return std::make_unique<SynchronizedStore>(std::move(base));
}

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_SYNCHRONIZED_H_
