// hashkit: a thread-safe decorator for any KvStore.
//
// The paper: "the current design does not support multi-user access or
// transactions, [but] they could be incorporated relatively easily."  The
// stores themselves remain single-threaded (as in 1991); this wrapper
// incorporates the multi-access half in the simplest correct form — one
// mutex serializing every operation — so multithreaded applications can
// share a store without data races.  (Scan state is per-store, so
// concurrent scans still interleave logically; guard whole scans
// externally if that matters.)

#ifndef HASHKIT_SRC_KV_SYNCHRONIZED_H_
#define HASHKIT_SRC_KV_SYNCHRONIZED_H_

#include <memory>
#include <mutex>

#include "src/kv/kv_store.h"

namespace hashkit {
namespace kv {

class SynchronizedStore final : public KvStore {
 public:
  explicit SynchronizedStore(std::unique_ptr<KvStore> base) : base_(std::move(base)) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    const std::lock_guard<std::mutex> lock(mu_);
    return base_->Put(key, value, overwrite);
  }
  Status Get(std::string_view key, std::string* value) override {
    const std::lock_guard<std::mutex> lock(mu_);
    return base_->Get(key, value);
  }
  Status Delete(std::string_view key) override {
    const std::lock_guard<std::mutex> lock(mu_);
    return base_->Delete(key);
  }
  Status Scan(std::string* key, std::string* value, bool first) override {
    const std::lock_guard<std::mutex> lock(mu_);
    return base_->Scan(key, value, first);
  }
  Status Sync() override {
    const std::lock_guard<std::mutex> lock(mu_);
    return base_->Sync();
  }
  uint64_t Size() const override {
    const std::lock_guard<std::mutex> lock(mu_);
    return base_->Size();
  }
  std::string Name() const override { return base_->Name() + "+sync"; }
  Capabilities Caps() const override { return base_->Caps(); }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<KvStore> base_;
};

inline std::unique_ptr<KvStore> MakeSynchronized(std::unique_ptr<KvStore> base) {
  return std::make_unique<SynchronizedStore>(std::move(base));
}

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_SYNCHRONIZED_H_
