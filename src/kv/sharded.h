// hashkit: a sharded concurrent front-end over any KvStore.
//
// The paper's conclusion defers multi-user access; SynchronizedStore
// (synchronized.h) answers it with one lock, which caps throughput at a
// single core.  ShardedStore is the classic next step (LH*: linear hashing
// partitioned across servers; here, across locks): the keyspace is split
// into N independent stores by a partition hash, each shard guarded by its
// own std::shared_mutex.  Get takes the shard's shared lock, Put/Delete
// take the exclusive lock, so operations on different shards never touch
// the same lock, and readers on one shard proceed in parallel whenever the
// inner store declares Capabilities::concurrent_reads (the paper's hash
// table does).  Each inner store stays single-writer, exactly as in 1991.
//
// The partition hash (FNV-1a from src/util/hash_funcs.h) is deliberately a
// different function from the per-table bucket hash (the package default),
// so shard routing and intra-shard bucket placement are independent and a
// pathological key set cannot align both.
//
// Scan iterates shards in index order, driving each shard's own cursor;
// like every store here, scan-cursor state lives in the store, so guard a
// whole scan externally if it must not interleave with mutations.
//
// hashkit-obs: Put/Get/Delete are timed end-to-end into per-shard
// lock-free histograms (so recording threads only share counters when
// they already share a shard); Sync is timed per whole-store pass.
// Stats() merges everything into StoreStats::latency.

#ifndef HASHKIT_SRC_KV_SHARDED_H_
#define HASHKIT_SRC_KV_SHARDED_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/util/hash_funcs.h"
#include "src/util/histogram.h"

namespace hashkit {
namespace kv {

// Builds one shard via `factory(shard_index)`, `nshards` times.  Fails if
// `nshards` is zero or any factory call fails.  This is the only way to
// construct a ShardedStore, which is what guarantees `shards_` below is
// never empty (Name/Caps/Stats dereference the first shard, and ShardOf
// takes a modulus by the shard count).
using ShardFactory = std::function<Result<std::unique_ptr<KvStore>>(size_t shard)>;
Result<std::unique_ptr<KvStore>> MakeSharded(const ShardFactory& factory, size_t nshards,
                                             HashFn partition_fn = nullptr);

class ShardedStore final : public KvStore {
 public:
  Status Put(std::string_view key, std::string_view value, bool overwrite) override;
  Status Get(std::string_view key, std::string* value) override;
  Status Delete(std::string_view key) override;
  Status Scan(std::string* key, std::string* value, bool first) override;
  // Groups the ops by shard and takes each shard's lock ONCE for its whole
  // group (hashkit-tpc): lock traffic and the inner store's WAL
  // group-commit amortize across every op the batch routes to that shard.
  Status ApplyBatch(std::span<BatchOp> ops) override;
  // Keyspace partition introspection for thread-per-core routing: each
  // server core can own shards_[i] for i % ncores == core and route ops by
  // PartitionOf so no two cores ever touch the same shard lock.
  size_t PartitionCount() const override { return shards_.size(); }
  size_t PartitionOf(std::string_view key) const override { return ShardOf(key); }
  // --- TTL surface (hashkit-cache): key ops route by shard hash exactly
  // like their non-TTL twins; SweepExpired fans one budget slice across
  // every shard; ScanRaw chains shards with its own position so migration
  // transport never disturbs the regular Scan cursor.
  Status PutWithTtl(std::string_view key, std::string_view value, bool overwrite,
                    uint64_t expire_at_ms) override;
  Status GetWithExpiry(std::string_view key, std::string* value,
                       uint64_t* expire_at_ms) override;
  Status Touch(std::string_view key, uint64_t expire_at_ms) override;
  Status SweepExpired(size_t budget, uint64_t now_ms, size_t* deleted) override;
  Status ScanRaw(std::string* key, std::string* value, bool first) override;
  Status PutRaw(std::string_view key, std::string_view value) override;
  Status Sync() override;
  uint64_t Size() const override;
  std::string Name() const override;
  Capabilities Caps() const override;
  bool Stats(StoreStats* out) const override;

  // Snapshot scan across the shards: one snapshot cursor per shard (each
  // pinned at creation time under that shard's exclusive lock), chained in
  // shard order; each Next takes only the current shard's shared lock.
  // Backup/replication stay kUnsupported here — a multi-file backup stream
  // has no single WAL to ship; run the server with --shards=1 for those.
  Result<std::unique_ptr<KvCursor>> NewSnapshotCursor() override;

  size_t shard_count() const { return shards_.size(); }

 private:
  // Takes ownership of the inner stores; `shards` must be non-empty and
  // homogeneous (same kind/capabilities).  `partition_fn` routes keys.
  // Private: MakeSharded is the validated entry point (it rejects zero
  // shards before this runs).
  ShardedStore(std::vector<std::unique_ptr<KvStore>> shards, HashFn partition_fn);
  friend Result<std::unique_ptr<KvStore>> MakeSharded(const ShardFactory& factory,
                                                      size_t nshards, HashFn partition_fn);

  struct Shard {
    // Readers share; Put/Delete/Scan/Sync exclude.  One lock per shard so
    // traffic on different shards never contends.
    mutable std::shared_mutex mu;
    std::unique_ptr<KvStore> store;

    // Per-shard latency recorders: threads record without coordination,
    // and only share cache lines when they already share the shard.
    LatencyHistogram put_ns;
    LatencyHistogram get_ns;
    LatencyHistogram delete_ns;
  };

  size_t ShardOf(std::string_view key) const {
    return partition_fn_(key.data(), key.size()) % shards_.size();
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  HashFn partition_fn_;
  bool inner_concurrent_reads_;

  LatencyHistogram sync_ns_;  // one whole-store Sync pass

  // Scan-cursor state (which shard the sequential scan is on).  Guarded by
  // scan_mu_ so interleaved Scan calls from different threads stay
  // structurally safe, though logically they still share one cursor.
  mutable std::mutex scan_mu_;
  size_t scan_shard_ = 0;
  bool scan_first_ = true;
  // ScanRaw's independent position (also under scan_mu_).
  size_t raw_shard_ = 0;
  bool raw_first_ = true;
};

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_SHARDED_H_
