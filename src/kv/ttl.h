// hashkit-cache: per-key TTL plumbing — the expiry clock, the on-value
// stamp codec, and the background sweeper thread.
//
// Representation: on a TTL-enabled store every value is stored as
//
//   u64 expire_at_ms (little-endian, 0 = never expires) || payload
//
// The stamp rides inside the value bytes on purpose: the WAL logs page
// images, replication ships log bytes, and backup streams pages — all
// below the kv layer — so expiry survives crash replay, replica
// tail-apply, and restore with zero extra machinery.  An expired key can
// therefore never resurrect through any of those paths; the worst case is
// that its bytes linger until a lazy read or the sweeper removes them.
//
// Expiry is two-tier (memcached's model):
//   - lazy: Get/Scan/snapshot cursors decode the stamp and treat expired
//     entries as absent (reads never write, so the tombstoning is deferred);
//   - background: TtlSweeper walks the store in budgeted slices via
//     KvStore::SweepExpired and deletes what it finds, bounding the space
//     held by keys nobody reads anymore.

#ifndef HASHKIT_SRC_KV_TTL_H_
#define HASHKIT_SRC_KV_TTL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace hashkit {
namespace kv {

class KvStore;

// Milliseconds since the UNIX epoch, plus a process-wide test offset so
// expiry tests can jump time forward instead of sleeping.
uint64_t TtlNowMs();
void TtlAdvanceClockForTesting(int64_t delta_ms);
void TtlResetClockForTesting();

inline constexpr size_t kTtlStampBytes = 8;

// value-bytes = stamp || payload.
void EncodeTtlValue(uint64_t expire_at_ms, std::string_view payload, std::string* out);
// Splits stored bytes back into stamp + payload view (into `raw`).
// Returns false when `raw` is too short to carry a stamp — which means the
// entry was written by a non-TTL handle (see HashOptions::ttl_enabled).
bool DecodeTtlStamp(std::string_view raw, uint64_t* expire_at_ms, std::string_view* payload);

inline bool TtlExpired(uint64_t expire_at_ms, uint64_t now_ms) {
  return expire_at_ms != 0 && expire_at_ms <= now_ms;
}

struct TtlSweeperOptions {
  // Sleep between sweep slices.
  int interval_ms = 1000;
  // Entries examined per slice (the budget knob): higher reclaims faster
  // but holds the store's exclusive lock longer per wakeup.
  size_t budget = 4096;
};

// Background expiry thread: every interval it runs one budgeted
// KvStore::SweepExpired slice.  The store keeps the scan position across
// slices, so successive wakeups cover the whole keyspace and then wrap.
// Stop() (or destruction) joins the thread; the sweeper never outlives the
// store it borrows.
class TtlSweeper {
 public:
  TtlSweeper(KvStore* store, TtlSweeperOptions options)
      : store_(store), options_(options) {}
  ~TtlSweeper() { Stop(); }
  TtlSweeper(const TtlSweeper&) = delete;
  TtlSweeper& operator=(const TtlSweeper&) = delete;

  void Start();
  void Stop();

  uint64_t swept() const { return swept_.load(std::memory_order_relaxed); }
  uint64_t slices() const { return slices_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  KvStore* store_;
  const TtlSweeperOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  std::atomic<uint64_t> swept_{0};   // entries deleted, lifetime total
  std::atomic<uint64_t> slices_{0};  // sweep slices run
};

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_TTL_H_
