// hashkit: a uniform key/value interface over every store in this
// repository.
//
// The paper closes by noting the package "is one access method which is
// part of a generic database access package ... All of the access methods
// are based on a key/data pair interface and appear identical to the
// application layer."  This module is that layer: the new package, the
// dbm-family clones, gdbm, hsearch, and dynahash all surface the same
// KvStore interface, so applications (and the test suite, and the
// shootout bench) can switch stores without code changes.
//
// Stores differ in capability; Capabilities() reports what a given store
// can do, and unsupported operations return kUnsupported rather than
// silently misbehaving.

#ifndef HASHKIT_SRC_KV_KV_STORE_H_
#define HASHKIT_SRC_KV_KV_STORE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/core/hash_table.h"
#include "src/core/options.h"
#include "src/pagefile/buffer_pool.h"
#include "src/util/histogram.h"
#include "src/util/status.h"

namespace hashkit {
namespace kv {

struct Capabilities {
  bool persistent = false;      // survives close/reopen
  bool deletes = false;         // Delete supported
  bool overwrites = false;      // Put(overwrite=true) replaces
  bool scans = false;           // Scan supported
  bool unlimited_pair = false;  // no pair-size limit
  bool grows = false;           // no fixed capacity
  // Concurrent Get/Size calls are data-race-free as long as no mutation
  // runs at the same time.  The locking wrappers (synchronized.h,
  // sharded.h) use a shared reader lock for Get only when this is set;
  // otherwise readers fall back to the exclusive lock.
  bool concurrent_reads = false;
  // NewSnapshotCursor supported: long scans observe a point-in-time view
  // and never block writers for their whole duration (hashkit-mvcc).
  bool snapshots = false;
  // BackupBegin/ReadPages/ReadWal/End and ReplicationRead supported
  // (online backup and WAL shipping; hashkit-mvcc).
  bool backup = false;
  // Per-key TTL supported: PutWithTtl/GetWithExpiry/Touch/SweepExpired
  // work, expired keys read as absent (hashkit-cache).
  bool ttl = false;
};

// A scan over a point-in-time snapshot of the store.  Each Next observes
// the store exactly as of cursor creation; writers proceed between calls.
class KvCursor {
 public:
  virtual ~KvCursor() = default;
  virtual Status Next(std::string* key, std::string* value) = 0;
  // The WAL sequence number the snapshot corresponds to (0 if none).
  virtual uint64_t Lsn() const { return 0; }
};

// Shape of an online backup stream (see HashTable::BackupInfo).
struct BackupInfo {
  uint32_t page_size = 0;
  uint64_t page_count = 0;
  uint64_t lsn = 0;
};

// hashkit-obs: per-operation end-to-end latency distributions
// (nanoseconds), recorded by the locking wrappers (synchronized.h,
// sharded.h) around each call into the inner store — lock wait included,
// since that is the latency a caller actually observes.
struct OpLatencies {
  HistogramSnapshot put;
  HistogramSnapshot get;
  HistogramSnapshot del;
  HistogramSnapshot sync;

  void MergeFrom(const OpLatencies& other) {
    put.MergeFrom(other.put);
    get.MergeFrom(other.get);
    del.MergeFrom(other.del);
    sync.MergeFrom(other.sync);
  }
};

// Operation counters and latency distributions aggregated across whatever
// backs the store.  Stores built on the paper's hash table report real
// table/pool numbers; the locking wrappers always report `latency` and
// leave table/pool zeroed when the base store has none.
struct StoreStats {
  HashTableStats table;
  BufferPoolStats pool;
  // Write-ahead log counters/latencies (hashkit-wal); all zero when the
  // store runs without a log (durability == kNone, or a store kind that
  // has no log).
  wal::WalStats wal;
  OpLatencies latency;
  size_t shards = 1;  // number of backing partitions (1 = unsharded)
  // hashkit-cache: TTL expiry counters (zero on stores without TTL).
  uint64_t ttl_expired_lazy = 0;  // expired entries seen by Get/Scan paths
  uint64_t ttl_swept = 0;         // expired entries removed by SweepExpired

  // Accumulates another store's counters into this one (shards is left to
  // the caller — partition count does not sum across wrappers).  Used by
  // ShardedStore::Stats and the network server's STATS command.
  void MergeFrom(const StoreStats& other) {
    table.puts += other.table.puts;
    table.gets += other.table.gets;
    table.deletes += other.table.deletes;
    table.splits += other.table.splits;
    table.contractions += other.table.contractions;
    table.ovfl_pages_alloced += other.table.ovfl_pages_alloced;
    table.ovfl_pages_freed += other.table.ovfl_pages_freed;
    table.big_pairs_stored += other.table.big_pairs_stored;
    table.tag_filter_skips += other.table.tag_filter_skips;
    table.tag_filter_candidates += other.table.tag_filter_candidates;
    table.tag_filter_false_hits += other.table.tag_filter_false_hits;
    pool.MergeFrom(other.pool);
    wal.MergeFrom(other.wal);
    latency.MergeFrom(other.latency);
    ttl_expired_lazy += other.ttl_expired_lazy;
    ttl_swept += other.ttl_swept;
  }
};

// One operation inside an ApplyBatch call (hashkit-tpc).  The key/value
// views must stay valid for the duration of the call; `value_out` receives
// the fetched value for kGet and is untouched otherwise.
struct BatchOp {
  enum class Kind : uint8_t { kPut, kGet, kDelete };
  Kind kind = Kind::kGet;
  std::string_view key;
  std::string_view value;    // kPut only
  bool overwrite = true;     // kPut only
  // kPut only: absolute expiry in ms since the epoch, 0 = never
  // (hashkit-cache).  Ignored by stores without Capabilities::ttl.
  uint64_t expire_at_ms = 0;
  std::string* value_out = nullptr;  // kGet only; may be null (existence probe)
  Status result;             // filled by ApplyBatch, one per op
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  // overwrite=false returns kExists on duplicates.  Stores without
  // overwrite support return kUnsupported for overwrite=true on an
  // existing key.
  virtual Status Put(std::string_view key, std::string_view value, bool overwrite) = 0;
  Status Put(std::string_view key, std::string_view value) { return Put(key, value, true); }

  virtual Status Get(std::string_view key, std::string* value) = 0;
  virtual Status Delete(std::string_view key) = 0;

  // Sequential iteration; first=true restarts.  kNotFound at the end.
  virtual Status Scan(std::string* key, std::string* value, bool first) = 0;

  // Executes a batch of operations and fills each op's `result`.  The
  // default simply loops the single-op entry points; stores with a WAL or
  // internal locking override this so lock acquisition and group-commit
  // fsyncs amortize across the whole batch (hashkit-tpc).  Ops execute in
  // order; a failed op does not stop the rest.  Always returns the status
  // of the batch mechanism itself (kOk unless the store cannot batch at
  // all) — per-op outcomes live in BatchOp::result.
  virtual Status ApplyBatch(std::span<BatchOp> ops) {
    for (BatchOp& op : ops) {
      switch (op.kind) {
        case BatchOp::Kind::kPut:
          op.result = PutWithTtl(op.key, op.value, op.overwrite, op.expire_at_ms);
          break;
        case BatchOp::Kind::kGet: {
          std::string scratch;
          std::string* out = op.value_out != nullptr ? op.value_out : &scratch;
          op.result = Get(op.key, out);
          break;
        }
        case BatchOp::Kind::kDelete:
          op.result = Delete(op.key);
          break;
      }
    }
    return Status::Ok();
  }

  // Keyspace partition introspection (hashkit-tpc).  A sharded store
  // reports its shard count and per-key shard index so a thread-per-core
  // server can route each key to the core that owns its partition.
  // Unsharded stores report a single partition.
  virtual size_t PartitionCount() const { return 1; }
  virtual size_t PartitionOf(std::string_view key) const {
    (void)key;
    return 0;
  }

  virtual Status Sync() = 0;
  virtual uint64_t Size() const = 0;
  virtual std::string Name() const = 0;
  virtual Capabilities Caps() const = 0;

  // Fills `*out` with merged operation counters; returns false when the
  // store has none to report.  Safe to call while reader threads are active
  // on stores that declare concurrent_reads.
  virtual bool Stats(StoreStats* out) const {
    (void)out;
    return false;
  }

  // --- Per-key TTL (hashkit-cache) ---
  // Everything defaults to the non-TTL behavior (Put/Get pass through, an
  // actual expiry request is kUnsupported); stores opened with ttl on
  // override per Capabilities::ttl.  See src/kv/ttl.h for the model.

  // Put with an absolute expiry (ms since the epoch; 0 = never).  On a TTL
  // store overwrite=false treats an expired existing key as absent, so
  // `add` semantics work on top of this.
  virtual Status PutWithTtl(std::string_view key, std::string_view value, bool overwrite,
                            uint64_t expire_at_ms) {
    if (expire_at_ms == 0) {
      return Put(key, value, overwrite);
    }
    return Status::Unsupported(Name() + " does not support TTL");
  }
  // Get that also reports the entry's expiry stamp (0 = never, and always
  // 0 on non-TTL stores).  `expire_at_ms` may be null.
  virtual Status GetWithExpiry(std::string_view key, std::string* value,
                               uint64_t* expire_at_ms) {
    if (expire_at_ms != nullptr) {
      *expire_at_ms = 0;
    }
    return Get(key, value);
  }
  // Rewrites the expiry of a live entry without touching its payload
  // (memcached `touch`); expire_at_ms = 0 clears the TTL.  kNotFound when
  // the key is absent or already expired.
  virtual Status Touch(std::string_view key, uint64_t expire_at_ms) {
    (void)key, (void)expire_at_ms;
    return Status::Unsupported(Name() + " does not support TTL");
  }
  // One background-expiry slice: examine up to `budget` entries from an
  // internal cursor (position persists across calls, wrapping at the end),
  // delete those expired as of `now_ms`, report how many in `*deleted`.
  // A no-op on stores without TTL.  Callers serialize calls (the sweeper
  // thread is the only intended caller).
  virtual Status SweepExpired(size_t budget, uint64_t now_ms, size_t* deleted) {
    (void)budget, (void)now_ms;
    *deleted = 0;
    return Status::Ok();
  }
  // Raw entry transport for replication-grade rebalancing (cluster
  // migration): values keep their TTL stamp so a moved key carries its
  // expiry to the new owner, and expired-but-unswept entries move as-is
  // instead of silently becoming immortal.  On non-TTL stores these are
  // exactly Scan / Put(overwrite).  Both ends of a transport must agree on
  // ttl_enabled (see HashOptions).  ScanRaw shares no state with Scan.
  virtual Status ScanRaw(std::string* key, std::string* value, bool first) {
    return Scan(key, value, first);
  }
  virtual Status PutRaw(std::string_view key, std::string_view value) {
    return Put(key, value, /*overwrite=*/true);
  }

  // --- Snapshot scans, online backup, replication (hashkit-mvcc) ---
  // Everything below defaults to kUnsupported; stores built on the paper's
  // hash table override per Capabilities::snapshots/backup.  Locking
  // discipline mirrors the comments on HashTable: creating/ending needs
  // exclusive access, the read calls only shared access.

  virtual Result<std::unique_ptr<KvCursor>> NewSnapshotCursor() {
    return Status::Unsupported(Name() + " does not support snapshot scans");
  }

  virtual Result<BackupInfo> BackupBegin() {
    return Status::Unsupported(Name() + " does not support online backup");
  }
  virtual Status BackupReadPages(uint64_t first_page, uint32_t count, std::string* out) {
    (void)first_page, (void)count, (void)out;
    return Status::Unsupported(Name() + " does not support online backup");
  }
  virtual Status BackupReadWal(uint64_t offset, uint32_t max_bytes, std::string* out,
                               uint64_t* total) {
    (void)offset, (void)max_bytes, (void)out, (void)total;
    return Status::Unsupported(Name() + " does not support online backup");
  }
  virtual Status BackupEnd() {
    return Status::Unsupported(Name() + " does not support online backup");
  }

  virtual Status ReplicationRead(uint64_t from_lsn, std::string* out, uint64_t* last_lsn) {
    (void)from_lsn, (void)out, (void)last_lsn;
    return Status::Unsupported(Name() + " does not support replication");
  }
  virtual Status ApplyReplication(std::string_view log_bytes, uint64_t from_lsn,
                                  uint64_t* applied_through) {
    (void)log_bytes, (void)from_lsn, (void)applied_through;
    return Status::Unsupported(Name() + " does not support replication");
  }
  // The store's WAL LSN (latest committed sequence); 0 without a log.
  virtual uint64_t Lsn() const { return 0; }
};

enum class StoreKind {
  kHashDisk,    // the paper's package, file-backed
  kHashMemory,  // the paper's package, memory-resident
  kBtree,       // the companion B+-tree access method (ordered scans)
  kNdbm,        // Thompson's dbm algorithm (clone)
  kSdbm,        // Larson-78 radix-trie dbm (clone)
  kGdbm,        // extendible hashing (clone)
  kHsearch,     // System V fixed-size open addressing
  kDynahash,    // Larson-88 in-memory linear hashing
};

inline constexpr StoreKind kAllStoreKinds[] = {
    StoreKind::kHashDisk, StoreKind::kHashMemory, StoreKind::kBtree, StoreKind::kNdbm,
    StoreKind::kSdbm,     StoreKind::kGdbm,       StoreKind::kHsearch,
    StoreKind::kDynahash,
};

std::string_view StoreKindName(StoreKind kind);

struct StoreOptions {
  // For file-backed stores; ignored by memory-resident ones.
  std::string path;
  bool truncate = true;
  // Geometry (used where meaningful for the kind).
  uint32_t page_size = 1024;
  uint32_t ffactor = 16;
  uint32_t nelem = 65536;  // capacity hint; hard capacity for hsearch
  uint64_t cachesize = 1024 * 1024;
  // >1 partitions the keyspace across that many independent stores of the
  // same kind behind per-shard reader/writer locks (see sharded.h).  File
  // paths get a ".sN" suffix per shard; nelem and cachesize are divided
  // among the shards.
  uint32_t shards = 0;
  // Crash durability for kHashDisk (each shard gets its own `<path>.wal`
  // log); ignored by store kinds without a write-ahead log.  See
  // OPERATIONS.md for the exact guarantees per mode.
  Durability durability = Durability::kNone;
  // kSync only: fsync the log every Nth operation (group commit).
  uint32_t wal_group_commit = 1;
  // Archive checkpointed WAL segments beside the table for point-in-time
  // recovery (`db_tool restore`); kHashDisk with a log only.
  bool wal_archive = false;
  // hashkit-cache: per-key TTL (kHashDisk/kHashMemory only; other kinds
  // ignore it and report Capabilities::ttl = false).  Every handle that
  // opens one dataset must agree on this flag — see HashOptions.
  bool ttl = false;
  // hashkit-cache: buffer-pool replacement policy (kinds with a pool).
  EvictionPolicyKind eviction = EvictionPolicyKind::kClock;
};

Result<std::unique_ptr<KvStore>> OpenStore(StoreKind kind, const StoreOptions& options);

// Opens `nshards` stores of `kind` (per-shard path suffix ".sN") and wraps
// them in a ShardedStore.  OpenStore dispatches here when options.shards > 1.
Result<std::unique_ptr<KvStore>> OpenShardedStore(StoreKind kind, const StoreOptions& options,
                                                  size_t nshards);

}  // namespace kv
}  // namespace hashkit

#endif  // HASHKIT_SRC_KV_KV_STORE_H_
