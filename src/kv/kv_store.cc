#include "src/kv/kv_store.h"

#include <atomic>
#include <deque>
#include <optional>

#include "src/kv/ttl.h"

#include "src/baselines/dynahash/dynahash.h"
#include "src/btree/btree.h"
#include "src/baselines/gdbm/gdbm.h"
#include "src/baselines/hsearch/hsearch.h"
#include "src/baselines/ndbm/ndbm.h"
#include "src/baselines/sdbm/sdbm.h"
#include "src/core/hash_table.h"

namespace hashkit {
namespace kv {

namespace {

// KvCursor over a HashTable snapshot (hashkit-mvcc).  On a TTL store the
// cursor skips entries already expired as of each Next call and strips the
// stamp from what it yields — a snapshot pins bytes, not liveness, so a
// key whose TTL lapses mid-scan stops appearing exactly as it does on the
// live read path.  `expired_counter` (optional) feeds the owning store's
// lazy-expiry stat.
class HashSnapshotCursor final : public KvCursor {
 public:
  HashSnapshotCursor(SnapshotCursor cursor, bool ttl,
                     std::atomic<uint64_t>* expired_counter)
      : cursor_(std::move(cursor)), ttl_(ttl), expired_counter_(expired_counter) {}
  Status Next(std::string* key, std::string* value) override {
    if (!ttl_) {
      return cursor_.Next(key, value);
    }
    for (;;) {
      HASHKIT_RETURN_IF_ERROR(cursor_.Next(key, value));
      uint64_t expire_at_ms = 0;
      std::string_view payload;
      if (!DecodeTtlStamp(*value, &expire_at_ms, &payload)) {
        return Status::Corruption("value too short for a TTL stamp");
      }
      if (TtlExpired(expire_at_ms, TtlNowMs())) {
        if (expired_counter_ != nullptr) {
          expired_counter_->fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      value->erase(0, kTtlStampBytes);
      return Status::Ok();
    }
  }
  uint64_t Lsn() const override { return cursor_.snapshot()->lsn(); }

 private:
  SnapshotCursor cursor_;
  const bool ttl_;
  std::atomic<uint64_t>* expired_counter_;
};

class HashStore final : public KvStore {
 public:
  HashStore(std::unique_ptr<HashTable> table, bool persistent, bool ttl)
      : table_(std::move(table)), persistent_(persistent), ttl_(ttl) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    return PutWithTtl(key, value, overwrite, 0);
  }
  Status Get(std::string_view key, std::string* value) override {
    return GetWithExpiry(key, value, nullptr);
  }
  Status Delete(std::string_view key) override {
    if (ttl_) {
      // An expired entry is already absent to callers, so deleting it must
      // answer NotFound (memcached `delete` semantics) — but this path
      // holds the write lock, so reclaim the bytes on the way out.
      std::string raw;
      const Status got = table_->Get(key, &raw);
      HASHKIT_RETURN_IF_ERROR(got);
      uint64_t stamp = 0;
      std::string_view payload;
      if (!DecodeTtlStamp(raw, &stamp, &payload)) {
        return Status::Corruption("value too short for a TTL stamp");
      }
      if (TtlExpired(stamp, TtlNowMs())) {
        ttl_expired_lazy_.fetch_add(1, std::memory_order_relaxed);
        (void)table_->Delete(key);
        return Status::NotFound();
      }
    }
    return table_->Delete(key);
  }
  Status Scan(std::string* key, std::string* value, bool first) override {
    if (!ttl_) {
      return table_->Seq(key, value, first);
    }
    // Lazy expiry on the sequential path: skip dead entries, strip stamps.
    bool restart = first;
    for (;;) {
      HASHKIT_RETURN_IF_ERROR(table_->Seq(key, value, restart));
      restart = false;
      uint64_t expire_at_ms = 0;
      std::string_view payload;
      if (!DecodeTtlStamp(*value, &expire_at_ms, &payload)) {
        return Status::Corruption("value too short for a TTL stamp");
      }
      if (TtlExpired(expire_at_ms, TtlNowMs())) {
        ttl_expired_lazy_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      value->erase(0, kTtlStampBytes);
      return Status::Ok();
    }
  }
  Status Sync() override { return table_->Sync(); }

  // --- TTL surface (hashkit-cache); no-ops reduce to the table calls when
  // the store was opened without ttl. ---
  Status PutWithTtl(std::string_view key, std::string_view value, bool overwrite,
                    uint64_t expire_at_ms) override {
    if (!ttl_) {
      if (expire_at_ms != 0) {
        return Status::Unsupported("store opened without ttl");
      }
      return table_->Put(key, value, overwrite);
    }
    if (!overwrite) {
      // `add` semantics: an expired-but-unswept entry must not block the
      // insert.  Probe the raw entry; only a live one is a duplicate.
      std::string raw;
      const Status existing = table_->Get(key, &raw);
      if (existing.ok()) {
        uint64_t old_stamp = 0;
        std::string_view old_payload;
        if (DecodeTtlStamp(raw, &old_stamp, &old_payload) &&
            !TtlExpired(old_stamp, TtlNowMs())) {
          return Status::Exists();
        }
      } else if (!existing.IsNotFound()) {
        return existing;
      }
    }
    std::string stamped;
    EncodeTtlValue(expire_at_ms, value, &stamped);
    return table_->Put(key, stamped, /*overwrite=*/true);
  }
  Status GetWithExpiry(std::string_view key, std::string* value,
                       uint64_t* expire_at_ms) override {
    if (expire_at_ms != nullptr) {
      *expire_at_ms = 0;
    }
    if (!ttl_) {
      return table_->Get(key, value);
    }
    std::string raw;
    HASHKIT_RETURN_IF_ERROR(table_->Get(key, &raw));
    uint64_t stamp = 0;
    std::string_view payload;
    if (!DecodeTtlStamp(raw, &stamp, &payload)) {
      return Status::Corruption("value too short for a TTL stamp");
    }
    if (TtlExpired(stamp, TtlNowMs())) {
      // Lazy expiry: report absent, leave the bytes for the sweeper (this
      // path may run under a SHARED lock, so it must not write).
      ttl_expired_lazy_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound();
    }
    if (expire_at_ms != nullptr) {
      *expire_at_ms = stamp;
    }
    if (value != nullptr) {
      value->assign(payload);
    }
    return Status::Ok();
  }
  Status Touch(std::string_view key, uint64_t expire_at_ms) override {
    if (!ttl_) {
      return Status::Unsupported("store opened without ttl");
    }
    std::string raw;
    HASHKIT_RETURN_IF_ERROR(table_->Get(key, &raw));
    uint64_t stamp = 0;
    std::string_view payload;
    if (!DecodeTtlStamp(raw, &stamp, &payload)) {
      return Status::Corruption("value too short for a TTL stamp");
    }
    if (TtlExpired(stamp, TtlNowMs())) {
      ttl_expired_lazy_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound();
    }
    std::string stamped;
    EncodeTtlValue(expire_at_ms, payload, &stamped);
    return table_->Put(key, stamped, /*overwrite=*/true);
  }
  // One budgeted slice of the background sweep.  The position persists
  // across calls as a skip count into a fresh snapshot (entry order is
  // stable between slices up to the deletions themselves, which the skip
  // accounting subtracts); when the cursor runs off the end the position
  // resets and the next slice starts a new pass.  Skipping costs O(position)
  // per slice — fine for a 1 Hz background thread, and the budget knob
  // bounds the exclusive-lock hold time either way.
  Status SweepExpired(size_t budget, uint64_t now_ms, size_t* deleted) override {
    *deleted = 0;
    if (!ttl_ || budget == 0) {
      return Status::Ok();
    }
    SnapshotCursor cursor = table_->NewSnapshotCursor(table_->CreateSnapshot());
    std::string key;
    std::string raw;
    for (uint64_t skipped = 0; skipped < sweep_pos_; ++skipped) {
      if (!cursor.Next(&key, &raw).ok()) {
        sweep_pos_ = 0;
        return Status::Ok();
      }
    }
    size_t examined = 0;
    while (examined < budget) {
      const Status st = cursor.Next(&key, &raw);
      if (st.IsNotFound()) {
        sweep_pos_ = 0;  // pass complete; next slice starts over
        return Status::Ok();
      }
      HASHKIT_RETURN_IF_ERROR(st);
      ++examined;
      uint64_t stamp = 0;
      std::string_view payload;
      if (!DecodeTtlStamp(raw, &stamp, &payload) || !TtlExpired(stamp, now_ms)) {
        continue;
      }
      // Re-check against the LIVE entry: the snapshot may predate a Put
      // that refreshed this key, and deleting the refreshed value would
      // resurrect... nothing, but would drop live data.
      std::string live;
      uint64_t live_stamp = 0;
      std::string_view live_payload;
      if (table_->Get(key, &live).ok() &&
          DecodeTtlStamp(live, &live_stamp, &live_payload) &&
          TtlExpired(live_stamp, now_ms)) {
        if (table_->Delete(key).ok()) {
          ++*deleted;
          ttl_swept_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    sweep_pos_ += examined - *deleted;
    return Status::Ok();
  }
  Status ScanRaw(std::string* key, std::string* value, bool first) override {
    // Stamped bytes, no expiry filtering; position is independent of
    // Scan's (the table cursor is shared, so raw transport and client
    // scans must not interleave — migration holds the data latch).
    return table_->Seq(key, value, first);
  }
  Status PutRaw(std::string_view key, std::string_view value) override {
    return table_->Put(key, value, /*overwrite=*/true);
  }

  // One WAL batch scope around the whole run: each op still commits its
  // own log batch, but at most one group-commit fsync covers them all
  // (hashkit-tpc).  If that final fsync fails, every write acknowledged OK
  // inside the scope is retroactively failed — its durability was the
  // deferred sync that never happened.
  Status ApplyBatch(std::span<BatchOp> ops) override {
    // A read-only batch may run under a SHARED lock (see sharded.h /
    // synchronized.h), so it must not touch WAL state: only open the
    // batch scope when a write is present (writes always hold the
    // exclusive lock).
    bool writes = false;
    for (const BatchOp& op : ops) {
      if (op.kind != BatchOp::Kind::kGet) {
        writes = true;
        break;
      }
    }
    if (writes) {
      table_->BeginWalBatch();
    }
    for (BatchOp& op : ops) {
      switch (op.kind) {
        case BatchOp::Kind::kPut:
          if (ttl_) {
            op.result = PutWithTtl(op.key, op.value, op.overwrite, op.expire_at_ms);
          } else if (op.expire_at_ms != 0) {
            op.result = Status::Unsupported("store opened without ttl");
          } else {
            op.result = table_->Put(op.key, op.value, op.overwrite);
          }
          break;
        case BatchOp::Kind::kGet: {
          std::string scratch;
          std::string* out = op.value_out != nullptr ? op.value_out : &scratch;
          op.result = ttl_ ? GetWithExpiry(op.key, out, nullptr) : table_->Get(op.key, out);
          break;
        }
        case BatchOp::Kind::kDelete:
          op.result = ttl_ ? Delete(op.key) : table_->Delete(op.key);
          break;
      }
    }
    if (writes) {
      const Status closed = table_->EndWalBatch();
      if (!closed.ok()) {
        for (BatchOp& op : ops) {
          if (op.kind != BatchOp::Kind::kGet && op.result.ok()) {
            op.result = closed;
          }
        }
      }
    }
    return Status::Ok();
  }

  uint64_t Size() const override { return table_->size(); }
  std::string Name() const override { return persistent_ ? "hash(disk)" : "hash(mem)"; }
  Capabilities Caps() const override {
    return {.persistent = persistent_,
            .deletes = true,
            .overwrites = true,
            .scans = true,
            .unlimited_pair = true,
            .grows = true,
            // The table's read path is race-free under concurrent Gets
            // (see hash_table.h); wrappers may use a shared reader lock.
            .concurrent_reads = true,
            .snapshots = true,
            .backup = persistent_,
            .ttl = ttl_};
  }
  bool Stats(StoreStats* out) const override {
    out->table = table_->StatsSnapshot();
    out->pool = table_->PoolStatsSnapshot();
    out->wal = table_->WalStatsSnapshot();
    out->shards = 1;
    out->ttl_expired_lazy = ttl_expired_lazy_.load(std::memory_order_relaxed);
    out->ttl_swept = ttl_swept_.load(std::memory_order_relaxed);
    return true;
  }

  Result<std::unique_ptr<KvCursor>> NewSnapshotCursor() override {
    return std::unique_ptr<KvCursor>(
        new HashSnapshotCursor(table_->NewSnapshotCursor(table_->CreateSnapshot()), ttl_,
                               &ttl_expired_lazy_));
  }
  Result<BackupInfo> BackupBegin() override {
    HASHKIT_ASSIGN_OR_RETURN(const HashTable::BackupInfo info, table_->BackupBegin());
    return BackupInfo{info.page_size, info.page_count, info.lsn};
  }
  Status BackupReadPages(uint64_t first_page, uint32_t count, std::string* out) override {
    return table_->BackupReadPages(first_page, count, out);
  }
  Status BackupReadWal(uint64_t offset, uint32_t max_bytes, std::string* out,
                       uint64_t* total) override {
    return table_->BackupReadWal(offset, max_bytes, out, total);
  }
  Status BackupEnd() override {
    table_->BackupEnd();
    return Status::Ok();
  }
  Status ReplicationRead(uint64_t from_lsn, std::string* out, uint64_t* last_lsn) override {
    return table_->ReplicationRead(from_lsn, out, last_lsn);
  }
  Status ApplyReplication(std::string_view log_bytes, uint64_t from_lsn,
                          uint64_t* applied_through) override {
    return table_->ApplyRedo(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(log_bytes.data()),
                                 log_bytes.size()),
        from_lsn, applied_through);
  }
  uint64_t Lsn() const override { return table_->WalLsn(); }

 private:
  std::unique_ptr<HashTable> table_;
  bool persistent_;
  bool ttl_;

  // hashkit-cache: lazy/background expiry counters (atomic — the lazy one
  // bumps under shared locks) and the sweep position (only the serialized
  // sweeper touches it).
  mutable std::atomic<uint64_t> ttl_expired_lazy_{0};
  std::atomic<uint64_t> ttl_swept_{0};
  uint64_t sweep_pos_ = 0;
};

class BtreeStore final : public KvStore {
 public:
  explicit BtreeStore(std::unique_ptr<btree::BTree> tree)
      : tree_(std::move(tree)), cursor_(tree_->NewCursor()) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    return tree_->Put(key, value, overwrite);
  }
  Status Get(std::string_view key, std::string* value) override {
    return tree_->Get(key, value);
  }
  Status Delete(std::string_view key) override { return tree_->Delete(key); }
  Status Scan(std::string* key, std::string* value, bool first) override {
    if (first) {
      HASHKIT_RETURN_IF_ERROR(cursor_.SeekFirst());
    }
    return cursor_.Next(key, value);
  }
  Status Sync() override { return tree_->Sync(); }
  uint64_t Size() const override { return tree_->size(); }
  std::string Name() const override { return "btree"; }
  Capabilities Caps() const override {
    return {.persistent = true,
            .deletes = true,
            .overwrites = true,
            .scans = true,  // and in key order, unlike the hash stores
            .unlimited_pair = true,
            .grows = true};
  }

 private:
  std::unique_ptr<btree::BTree> tree_;
  btree::BtCursor cursor_;
};

class DbmStore final : public KvStore {
 public:
  DbmStore(std::unique_ptr<baseline::DbmBase> db, std::string name)
      : db_(std::move(db)), name_(std::move(name)) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    return db_->Store(key, value, overwrite);
  }
  Status Get(std::string_view key, std::string* value) override {
    return db_->Fetch(key, value);
  }
  Status Delete(std::string_view key) override { return db_->Remove(key); }
  Status Scan(std::string* key, std::string* value, bool first) override {
    return db_->Seq(key, value, first);
  }
  Status Sync() override { return db_->Sync(); }
  uint64_t Size() const override { return db_->size(); }
  std::string Name() const override { return name_; }
  Capabilities Caps() const override {
    return {.persistent = true,
            .deletes = true,
            .overwrites = true,
            .scans = true,
            .unlimited_pair = false,  // pairs bounded by one block
            .grows = true};
  }

 private:
  std::unique_ptr<baseline::DbmBase> db_;
  std::string name_;
};

class GdbmStore final : public KvStore {
 public:
  explicit GdbmStore(std::unique_ptr<baseline::GdbmClone> db) : db_(std::move(db)) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    return db_->Store(key, value, overwrite);
  }
  Status Get(std::string_view key, std::string* value) override {
    return db_->Fetch(key, value);
  }
  Status Delete(std::string_view key) override { return db_->Remove(key); }
  Status Scan(std::string* key, std::string* value, bool first) override {
    return db_->Seq(key, value, first);
  }
  Status Sync() override { return db_->Sync(); }
  uint64_t Size() const override { return db_->size(); }
  std::string Name() const override { return "gdbm"; }
  Capabilities Caps() const override {
    return {.persistent = true,
            .deletes = true,
            .overwrites = true,
            .scans = true,
            .unlimited_pair = true,
            .grows = true};
  }

 private:
  std::unique_ptr<baseline::GdbmClone> db_;
};

// hsearch/dynahash store (key -> void*); the adapter owns value strings in
// an arena.  Deleted or replaced values are not reclaimed until the store
// closes — acceptable for the adapter's uses (benches, contract tests).
class HsearchStore final : public KvStore {
 public:
  explicit HsearchStore(std::unique_ptr<baseline::SysvHsearch> table)
      : table_(std::move(table)) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    void* existing = nullptr;
    const Status found = table_->Find(std::string(key), &existing);
    if (found.ok()) {
      if (!overwrite) {
        return Status::Exists();
      }
      // hsearch has no replace; update the stored string in place.
      *static_cast<std::string*>(existing) = std::string(value);
      return Status::Ok();
    }
    arena_.emplace_back(value);
    return table_->Enter(std::string(key), &arena_.back());
  }
  Status Get(std::string_view key, std::string* value) override {
    void* data = nullptr;
    HASHKIT_RETURN_IF_ERROR(table_->Find(std::string(key), &data));
    if (value != nullptr) {
      *value = *static_cast<std::string*>(data);
    }
    return Status::Ok();
  }
  Status Delete(std::string_view) override {
    return Status::Unsupported("hsearch has no delete");
  }
  Status Scan(std::string*, std::string*, bool) override {
    return Status::Unsupported("hsearch has no sequential interface");
  }
  Status Sync() override { return Status::Ok(); }
  uint64_t Size() const override { return table_->size(); }
  std::string Name() const override { return "hsearch"; }
  Capabilities Caps() const override {
    return {.persistent = false,
            .deletes = false,
            .overwrites = true,  // via in-place value mutation
            .scans = false,
            .unlimited_pair = true,
            .grows = false};
  }

 private:
  std::unique_ptr<baseline::SysvHsearch> table_;
  std::deque<std::string> arena_;
};

class DynahashStore final : public KvStore {
 public:
  explicit DynahashStore(std::unique_ptr<baseline::Dynahash> table)
      : table_(std::move(table)) {}

  Status Put(std::string_view key, std::string_view value, bool overwrite) override {
    void* existing = nullptr;
    const Status found = table_->Find(std::string(key), &existing);
    if (found.ok()) {
      if (!overwrite) {
        return Status::Exists();
      }
      *static_cast<std::string*>(existing) = std::string(value);
      return Status::Ok();
    }
    arena_.emplace_back(value);
    return table_->Enter(std::string(key), &arena_.back());
  }
  Status Get(std::string_view key, std::string* value) override {
    void* data = nullptr;
    HASHKIT_RETURN_IF_ERROR(table_->Find(std::string(key), &data));
    if (value != nullptr) {
      *value = *static_cast<std::string*>(data);
    }
    return Status::Ok();
  }
  Status Delete(std::string_view key) override { return table_->Remove(std::string(key)); }
  Status Scan(std::string*, std::string*, bool) override {
    return Status::Unsupported("dynahash has no sequential interface");
  }
  Status Sync() override { return Status::Ok(); }
  uint64_t Size() const override { return table_->size(); }
  std::string Name() const override { return "dynahash"; }
  Capabilities Caps() const override {
    return {.persistent = false,
            .deletes = true,
            .overwrites = true,
            .scans = false,
            .unlimited_pair = true,
            .grows = true};
  }

 private:
  std::unique_ptr<baseline::Dynahash> table_;
  std::deque<std::string> arena_;
};

}  // namespace

std::string_view StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kHashDisk:
      return "hash_disk";
    case StoreKind::kHashMemory:
      return "hash_mem";
    case StoreKind::kBtree:
      return "btree";
    case StoreKind::kNdbm:
      return "ndbm";
    case StoreKind::kSdbm:
      return "sdbm";
    case StoreKind::kGdbm:
      return "gdbm";
    case StoreKind::kHsearch:
      return "hsearch";
    case StoreKind::kDynahash:
      return "dynahash";
  }
  return "unknown";
}

Result<std::unique_ptr<KvStore>> OpenStore(StoreKind kind, const StoreOptions& options) {
  if (options.shards > 1) {
    return OpenShardedStore(kind, options, options.shards);
  }
  switch (kind) {
    case StoreKind::kHashDisk: {
      if (options.path.empty()) {
        return Status::InvalidArgument("hash_disk needs a path");
      }
      HashOptions opts;
      opts.bsize = options.page_size;
      opts.ffactor = options.ffactor;
      opts.nelem = options.nelem;
      opts.cachesize = options.cachesize;
      opts.durability = options.durability;
      opts.wal_group_commit = options.wal_group_commit;
      opts.wal_archive = options.wal_archive;
      opts.eviction = options.eviction;
      opts.ttl_enabled = options.ttl;
      HASHKIT_ASSIGN_OR_RETURN(auto table,
                               HashTable::Open(options.path, opts, options.truncate));
      return std::unique_ptr<KvStore>(
          new HashStore(std::move(table), /*persistent=*/true, opts.ttl_enabled));
    }
    case StoreKind::kHashMemory: {
      HashOptions opts;
      opts.bsize = options.page_size;
      opts.ffactor = options.ffactor;
      opts.nelem = options.nelem;
      opts.cachesize = options.cachesize;
      opts.eviction = options.eviction;
      opts.ttl_enabled = options.ttl;
      HASHKIT_ASSIGN_OR_RETURN(auto table, HashTable::OpenInMemory(opts));
      return std::unique_ptr<KvStore>(
          new HashStore(std::move(table), /*persistent=*/false, opts.ttl_enabled));
    }
    case StoreKind::kBtree: {
      if (options.path.empty()) {
        return Status::InvalidArgument("btree needs a path");
      }
      btree::BtOptions opts;
      opts.page_size = std::max(options.page_size, 512u);
      opts.cachesize = options.cachesize;
      HASHKIT_ASSIGN_OR_RETURN(auto tree,
                               btree::BTree::Open(options.path, opts, options.truncate));
      return std::unique_ptr<KvStore>(new BtreeStore(std::move(tree)));
    }
    case StoreKind::kNdbm: {
      if (options.path.empty()) {
        return Status::InvalidArgument("ndbm needs a path");
      }
      HASHKIT_ASSIGN_OR_RETURN(
          auto db, baseline::NdbmClone::Open(options.path, options.page_size, options.truncate));
      return std::unique_ptr<KvStore>(new DbmStore(std::move(db), "ndbm"));
    }
    case StoreKind::kSdbm: {
      if (options.path.empty()) {
        return Status::InvalidArgument("sdbm needs a path");
      }
      HASHKIT_ASSIGN_OR_RETURN(
          auto db, baseline::SdbmClone::Open(options.path, options.page_size, options.truncate));
      return std::unique_ptr<KvStore>(new DbmStore(std::move(db), "sdbm"));
    }
    case StoreKind::kGdbm: {
      if (options.path.empty()) {
        return Status::InvalidArgument("gdbm needs a path");
      }
      HASHKIT_ASSIGN_OR_RETURN(
          auto db, baseline::GdbmClone::Open(options.path, options.page_size, options.truncate));
      return std::unique_ptr<KvStore>(new GdbmStore(std::move(db)));
    }
    case StoreKind::kHsearch: {
      HASHKIT_ASSIGN_OR_RETURN(auto table, baseline::SysvHsearch::Create(options.nelem));
      return std::unique_ptr<KvStore>(new HsearchStore(std::move(table)));
    }
    case StoreKind::kDynahash: {
      HASHKIT_ASSIGN_OR_RETURN(auto table, baseline::Dynahash::Create(options.nelem));
      return std::unique_ptr<KvStore>(new DynahashStore(std::move(table)));
    }
  }
  return Status::InvalidArgument("unknown store kind");
}

}  // namespace kv
}  // namespace hashkit
