#include "src/kv/sharded.h"

#include <algorithm>

namespace hashkit {
namespace kv {

ShardedStore::ShardedStore(std::vector<std::unique_ptr<KvStore>> shards, HashFn partition_fn)
    : partition_fn_(partition_fn != nullptr ? partition_fn
                                            : GetHashFunc(HashFuncId::kFnv1a)) {
  // MakeSharded (the only caller) has already rejected an empty set.
  shards_.reserve(shards.size());
  for (auto& store : shards) {
    auto shard = std::make_unique<Shard>();
    shard->store = std::move(store);
    shards_.push_back(std::move(shard));
  }
  inner_concurrent_reads_ = shards_.front()->store->Caps().concurrent_reads;
}

Status ShardedStore::Put(std::string_view key, std::string_view value, bool overwrite) {
  const uint64_t t0 = MonotonicNanos();
  Shard& shard = *shards_[ShardOf(key)];
  Status st;
  {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->Put(key, value, overwrite);
  }
  shard.put_ns.Record(MonotonicNanos() - t0);
  return st;
}

Status ShardedStore::Get(std::string_view key, std::string* value) {
  const uint64_t t0 = MonotonicNanos();
  Shard& shard = *shards_[ShardOf(key)];
  Status st;
  if (inner_concurrent_reads_) {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->Get(key, value);
  } else {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->Get(key, value);
  }
  shard.get_ns.Record(MonotonicNanos() - t0);
  return st;
}

Status ShardedStore::Delete(std::string_view key) {
  const uint64_t t0 = MonotonicNanos();
  Shard& shard = *shards_[ShardOf(key)];
  Status st;
  {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->Delete(key);
  }
  shard.delete_ns.Record(MonotonicNanos() - t0);
  return st;
}

Status ShardedStore::ApplyBatch(std::span<BatchOp> ops) {
  // Group op indices by destination shard, preserving per-shard op order,
  // then visit each touched shard once.  A thread-per-core server already
  // routes whole batches to single-shard groups via PartitionOf, in which
  // case this degenerates to one lock acquisition total.
  // The grouping scratch is thread-local and flat (a counting sort over
  // shard ids) rather than a per-call vector-of-vectors: this path runs
  // once per server batching round, and regrowing nested vectors from zero
  // every call is measurable allocator traffic at saturation.
  const uint64_t t0 = MonotonicNanos();
  const size_t n = ops.size();
  if (n == 0) {
    return Status::Ok();
  }
  const size_t nshards = shards_.size();
  static thread_local std::vector<uint32_t> shard_of;
  static thread_local std::vector<size_t> start;
  static thread_local std::vector<size_t> cursor;
  static thread_local std::vector<size_t> order;
  static thread_local std::vector<BatchOp> group;
  shard_of.resize(n);
  bool single = true;
  bool writes = false;
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = static_cast<uint32_t>(ShardOf(ops[i].key));
    single = single && shard_of[i] == shard_of[0];
    writes = writes || ops[i].kind != BatchOp::Kind::kGet;
  }
  if (single) {
    // Whole batch lands on one shard (the common case once a
    // thread-per-core server routes by partition): apply the caller's span
    // in place — no index sort, no group copy, no result copy-back.
    Shard& shard = *shards_[shard_of[0]];
    if (!writes && inner_concurrent_reads_) {
      const std::shared_lock<std::shared_mutex> lock(shard.mu);
      (void)shard.store->ApplyBatch(ops);
    } else {
      const std::unique_lock<std::shared_mutex> lock(shard.mu);
      (void)shard.store->ApplyBatch(ops);
    }
  } else {
    start.assign(nshards + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      ++start[shard_of[i] + 1];
    }
    for (size_t s = 0; s < nshards; ++s) {
      start[s + 1] += start[s];
    }
    cursor.assign(start.begin(), start.end() - 1);
    order.resize(n);
    for (size_t i = 0; i < n; ++i) {
      order[cursor[shard_of[i]]++] = i;
    }
    for (size_t s = 0; s < nshards; ++s) {
      const size_t lo = start[s];
      const size_t hi = start[s + 1];
      if (lo == hi) {
        continue;
      }
      Shard& shard = *shards_[s];
      group.clear();
      group.reserve(hi - lo);
      bool shard_writes = false;
      for (size_t j = lo; j < hi; ++j) {
        group.push_back(ops[order[j]]);
        shard_writes = shard_writes || ops[order[j]].kind != BatchOp::Kind::kGet;
      }
      if (!shard_writes && inner_concurrent_reads_) {
        const std::shared_lock<std::shared_mutex> lock(shard.mu);
        (void)shard.store->ApplyBatch(group);
      } else {
        const std::unique_lock<std::shared_mutex> lock(shard.mu);
        (void)shard.store->ApplyBatch(group);
      }
      for (size_t j = lo; j < hi; ++j) {
        ops[order[j]].result = group[j - lo].result;
      }
    }
  }
  const uint64_t per_op = (MonotonicNanos() - t0) / n;
  for (size_t i = 0; i < n; ++i) {
    Shard& shard = *shards_[shard_of[i]];
    switch (ops[i].kind) {
      case BatchOp::Kind::kPut:
        shard.put_ns.Record(per_op);
        break;
      case BatchOp::Kind::kGet:
        shard.get_ns.Record(per_op);
        break;
      case BatchOp::Kind::kDelete:
        shard.delete_ns.Record(per_op);
        break;
    }
  }
  return Status::Ok();
}

Status ShardedStore::PutWithTtl(std::string_view key, std::string_view value, bool overwrite,
                                uint64_t expire_at_ms) {
  const uint64_t t0 = MonotonicNanos();
  Shard& shard = *shards_[ShardOf(key)];
  Status st;
  {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->PutWithTtl(key, value, overwrite, expire_at_ms);
  }
  shard.put_ns.Record(MonotonicNanos() - t0);
  return st;
}

Status ShardedStore::GetWithExpiry(std::string_view key, std::string* value,
                                   uint64_t* expire_at_ms) {
  const uint64_t t0 = MonotonicNanos();
  Shard& shard = *shards_[ShardOf(key)];
  Status st;
  if (inner_concurrent_reads_) {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->GetWithExpiry(key, value, expire_at_ms);
  } else {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    st = shard.store->GetWithExpiry(key, value, expire_at_ms);
  }
  shard.get_ns.Record(MonotonicNanos() - t0);
  return st;
}

Status ShardedStore::Touch(std::string_view key, uint64_t expire_at_ms) {
  Shard& shard = *shards_[ShardOf(key)];
  const std::unique_lock<std::shared_mutex> lock(shard.mu);
  return shard.store->Touch(key, expire_at_ms);
}

Status ShardedStore::SweepExpired(size_t budget, uint64_t now_ms, size_t* deleted) {
  // Split the slice across shards (floor of one entry each) so every
  // shard's dead keys age out at the same rate.
  *deleted = 0;
  const size_t per_shard = std::max<size_t>(1, budget / shards_.size());
  Status first_error = Status::Ok();
  for (auto& shard : shards_) {
    size_t shard_deleted = 0;
    Status st;
    {
      const std::unique_lock<std::shared_mutex> lock(shard->mu);
      st = shard->store->SweepExpired(per_shard, now_ms, &shard_deleted);
    }
    *deleted += shard_deleted;
    if (!st.ok() && first_error.ok()) {
      first_error = st;
    }
  }
  return first_error;
}

Status ShardedStore::ScanRaw(std::string* key, std::string* value, bool first) {
  const std::lock_guard<std::mutex> scan_lock(scan_mu_);
  if (first) {
    raw_shard_ = 0;
    raw_first_ = true;
  }
  while (raw_shard_ < shards_.size()) {
    Shard& shard = *shards_[raw_shard_];
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    const Status st = shard.store->ScanRaw(key, value, raw_first_);
    if (st.IsNotFound()) {
      ++raw_shard_;
      raw_first_ = true;
      continue;
    }
    raw_first_ = false;
    return st;
  }
  return Status::NotFound();
}

Status ShardedStore::PutRaw(std::string_view key, std::string_view value) {
  Shard& shard = *shards_[ShardOf(key)];
  const std::unique_lock<std::shared_mutex> lock(shard.mu);
  return shard.store->PutRaw(key, value);
}

Status ShardedStore::Scan(std::string* key, std::string* value, bool first) {
  const std::lock_guard<std::mutex> scan_lock(scan_mu_);
  if (first) {
    scan_shard_ = 0;
    scan_first_ = true;
  }
  while (scan_shard_ < shards_.size()) {
    Shard& shard = *shards_[scan_shard_];
    // Exclusive: the inner store's scan advances its own cursor state.
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    const Status st = shard.store->Scan(key, value, scan_first_);
    if (st.IsNotFound()) {
      ++scan_shard_;  // this shard is exhausted; move to the next
      scan_first_ = true;
      continue;
    }
    scan_first_ = false;
    return st;
  }
  return Status::NotFound();
}

Status ShardedStore::Sync() {
  const uint64_t t0 = MonotonicNanos();
  Status first_error = Status::Ok();
  for (auto& shard : shards_) {
    const std::unique_lock<std::shared_mutex> lock(shard->mu);
    const Status st = shard->store->Sync();
    if (!st.ok() && first_error.ok()) {
      first_error = st;
    }
  }
  sync_ns_.Record(MonotonicNanos() - t0);
  return first_error;
}

uint64_t ShardedStore::Size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->store->Size();
  }
  return total;
}

std::string ShardedStore::Name() const {
  return "sharded(" + std::to_string(shards_.size()) + "x" +
         shards_.front()->store->Name() + ")";
}

Capabilities ShardedStore::Caps() const {
  Capabilities caps = shards_.front()->store->Caps();
  // The wrapper locks internally, so its own Get/Size are always safe to
  // call concurrently, whatever the inner store supports.
  caps.concurrent_reads = true;
  // Backup/replication need one WAL; a shard set has N (see header).
  caps.backup = false;
  return caps;
}

namespace {

// Chains per-shard snapshot cursors; see ShardedStore::NewSnapshotCursor.
class ShardedSnapshotCursor final : public KvCursor {
 public:
  ShardedSnapshotCursor(std::vector<std::shared_mutex*> locks,
                        std::vector<std::unique_ptr<KvCursor>> cursors)
      : locks_(std::move(locks)), cursors_(std::move(cursors)) {}

  Status Next(std::string* key, std::string* value) override {
    while (index_ < cursors_.size()) {
      Status st;
      {
        const std::shared_lock<std::shared_mutex> lock(*locks_[index_]);
        st = cursors_[index_]->Next(key, value);
      }
      if (st.IsNotFound()) {
        ++index_;
        continue;
      }
      return st;
    }
    return Status::NotFound("end of sharded snapshot");
  }

  uint64_t Lsn() const override {
    // The scan spans independent shard snapshots; report the lowest shard
    // LSN (everything at or before it is visible in every shard).
    uint64_t lsn = 0;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      const uint64_t shard_lsn = cursors_[i]->Lsn();
      if (i == 0 || shard_lsn < lsn) {
        lsn = shard_lsn;
      }
    }
    return lsn;
  }

 private:
  std::vector<std::shared_mutex*> locks_;
  std::vector<std::unique_ptr<KvCursor>> cursors_;
  size_t index_ = 0;
};

}  // namespace

Result<std::unique_ptr<KvCursor>> ShardedStore::NewSnapshotCursor() {
  std::vector<std::shared_mutex*> locks;
  std::vector<std::unique_ptr<KvCursor>> cursors;
  locks.reserve(shards_.size());
  cursors.reserve(shards_.size());
  for (auto& shard : shards_) {
    const std::unique_lock<std::shared_mutex> lock(shard->mu);
    HASHKIT_ASSIGN_OR_RETURN(auto cursor, shard->store->NewSnapshotCursor());
    locks.push_back(&shard->mu);
    cursors.push_back(std::move(cursor));
  }
  return std::unique_ptr<KvCursor>(
      new ShardedSnapshotCursor(std::move(locks), std::move(cursors)));
}

bool ShardedStore::Stats(StoreStats* out) const {
  // Always true: the wrapper owns the latency histograms.  Inner-store
  // counters merge in where the inner kind reports them; table/pool stay
  // zeroed for kinds that do not.
  StoreStats merged;
  merged.shards = shards_.size();
  for (const auto& shard : shards_) {
    {
      const std::shared_lock<std::shared_mutex> lock(shard->mu);
      StoreStats s;
      if (shard->store->Stats(&s)) {
        merged.MergeFrom(s);
      }
    }
    merged.latency.put.MergeFrom(shard->put_ns.Snapshot());
    merged.latency.get.MergeFrom(shard->get_ns.Snapshot());
    merged.latency.del.MergeFrom(shard->delete_ns.Snapshot());
  }
  merged.latency.sync.MergeFrom(sync_ns_.Snapshot());
  *out = merged;
  return true;
}

Result<std::unique_ptr<KvStore>> MakeSharded(const ShardFactory& factory, size_t nshards,
                                             HashFn partition_fn) {
  if (nshards == 0) {
    return Status::InvalidArgument("sharded store needs at least one shard");
  }
  std::vector<std::unique_ptr<KvStore>> shards;
  shards.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    HASHKIT_ASSIGN_OR_RETURN(auto store, factory(i));
    if (store == nullptr) {
      return Status::InvalidArgument("shard factory returned a null store");
    }
    shards.push_back(std::move(store));
  }
  return std::unique_ptr<KvStore>(
      new ShardedStore(std::move(shards), partition_fn));
}

Result<std::unique_ptr<KvStore>> OpenShardedStore(StoreKind kind, const StoreOptions& options,
                                                  size_t nshards) {
  // Accepts any nshards >= 1, matching MakeSharded: a single-shard
  // ShardedStore is a valid (if degenerate) locking front-end.  OpenStore
  // only routes here for options.shards > 1, but direct callers may want
  // the one-shard form for uniform ".sN" file layouts.
  if (nshards == 0) {
    return Status::InvalidArgument("sharded store needs at least one shard");
  }
  StoreOptions shard_options = options;
  shard_options.shards = 0;  // inner opens are plain, not re-sharded
  // Split the capacity hint and cache budget across the shards; keep a
  // floor so tiny configurations still function.
  shard_options.nelem =
      std::max<uint32_t>(1u, static_cast<uint32_t>((options.nelem + nshards - 1) / nshards));
  shard_options.cachesize =
      std::max<uint64_t>(options.page_size * 4ull, options.cachesize / nshards);
  return MakeSharded(
      [&](size_t shard) -> Result<std::unique_ptr<KvStore>> {
        StoreOptions inner = shard_options;
        if (!inner.path.empty()) {
          inner.path += ".s" + std::to_string(shard);
        }
        return OpenStore(kind, inner);
      },
      nshards);
}

}  // namespace kv
}  // namespace hashkit
