// hashkit recno: record-number access methods — the paper's "fixed and
// variable length record access methods" that round out the generic
// database package alongside hash and btree.
//
// * FixedRecno — fixed-length records in a paged array file: record n
//   lives at a computed page/offset, so access is one page fetch.  Records
//   shorter than the record size are zero-padded (classic recno
//   behaviour); longer ones are rejected.
// * VarRecno — variable-length records, implemented over the btree access
//   method with big-endian 8-byte record numbers as keys (so btree order
//   is record order).  This is exactly how 4.4BSD db(3) built recno.
//
// Both expose Get/Set/Append/Count plus sequential iteration; neither
// renumbers on deletion (a Set over an existing record replaces it; sparse
// record numbers are allowed in VarRecno and read as absent).

#ifndef HASHKIT_SRC_RECNO_RECNO_H_
#define HASHKIT_SRC_RECNO_RECNO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/btree/btree.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "src/util/status.h"

namespace hashkit {
namespace recno {

struct FixedRecnoOptions {
  uint32_t record_size = 128;  // bytes per record, <= page_size - 1
  uint32_t page_size = 4096;
  uint64_t cachesize = 256 * 1024;
};

class FixedRecno {
 public:
  static Result<std::unique_ptr<FixedRecno>> Open(const std::string& path,
                                                  const FixedRecnoOptions& options,
                                                  bool truncate = false);
  static Result<std::unique_ptr<FixedRecno>> OpenInMemory(const FixedRecnoOptions& options);
  ~FixedRecno();

  FixedRecno(const FixedRecno&) = delete;
  FixedRecno& operator=(const FixedRecno&) = delete;

  // Reads record `recno` (zero-based).  kNotFound beyond Count().  The
  // returned value always has exactly record_size bytes.
  Status Get(uint64_t recno, std::string* value);

  // Writes record `recno`; extends the file (with zero records) when
  // recno >= Count().  Values longer than record_size are rejected;
  // shorter ones are zero-padded.
  Status Set(uint64_t recno, std::string_view value);

  // Appends a record, returning its number.
  Result<uint64_t> Append(std::string_view value);

  Status Sync();
  uint64_t Count() const { return count_; }
  uint32_t record_size() const { return record_size_; }

 private:
  FixedRecno(std::unique_ptr<PageFile> file, const FixedRecnoOptions& options, bool persistent);

  Status InitNew();
  Status LoadExisting();
  Status WriteMeta();

  uint32_t RecordsPerPage() const { return (page_size_ - 16) / record_size_; }
  uint64_t PageFor(uint64_t recno) const { return 1 + recno / RecordsPerPage(); }
  size_t OffsetFor(uint64_t recno) const {
    return 16 + (recno % RecordsPerPage()) * record_size_;
  }

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t page_size_;
  uint32_t record_size_;
  bool persistent_;
  uint64_t count_ = 0;
};

class VarRecno {
 public:
  static Result<std::unique_ptr<VarRecno>> Open(const std::string& path,
                                                const btree::BtOptions& options,
                                                bool truncate = false);
  static Result<std::unique_ptr<VarRecno>> OpenInMemory(const btree::BtOptions& options);

  Status Get(uint64_t recno, std::string* value);
  Status Set(uint64_t recno, std::string_view value);
  Result<uint64_t> Append(std::string_view value);
  Status Delete(uint64_t recno);  // leaves a hole; numbers are stable

  // Iterates existing records in number order; first=true restarts.
  Status Scan(uint64_t* recno, std::string* value, bool first);

  Status Sync() { return tree_->Sync(); }
  // One past the highest record number ever written.
  uint64_t Count() const { return next_; }
  // Number of records actually present (Count() minus holes).
  uint64_t Present() const { return tree_->size(); }
  btree::BTree* tree() { return tree_.get(); }

 private:
  explicit VarRecno(std::unique_ptr<btree::BTree> tree);

  std::unique_ptr<btree::BTree> tree_;
  btree::BtCursor cursor_;
  uint64_t next_ = 0;
};

}  // namespace recno
}  // namespace hashkit

#endif  // HASHKIT_SRC_RECNO_RECNO_H_
