#include "src/recno/recno.h"

#include <cstring>

#include "src/util/endian.h"
#include "src/util/math.h"

namespace hashkit {
namespace recno {

namespace {

constexpr uint32_t kFixedMagic = 0x48535231;  // "HSR1"
constexpr uint32_t kFixedVersion = 1;

// Big-endian record numbers sort correctly under the btree's bytewise
// comparison.
std::string RecnoKey(uint64_t recno) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; --i) {
    key[i] = static_cast<char>(recno & 0xff);
    recno >>= 8;
  }
  return key;
}

uint64_t KeyRecno(std::string_view key) {
  uint64_t recno = 0;
  for (const char c : key) {
    recno = (recno << 8) | static_cast<uint8_t>(c);
  }
  return recno;
}

}  // namespace

// ---------------------------------------------------------------------------
// FixedRecno
// ---------------------------------------------------------------------------

FixedRecno::FixedRecno(std::unique_ptr<PageFile> file, const FixedRecnoOptions& options,
                       bool persistent)
    : file_(std::move(file)),
      pool_(std::make_unique<BufferPool>(file_.get(), options.cachesize)),
      page_size_(options.page_size),
      record_size_(options.record_size),
      persistent_(persistent) {}

FixedRecno::~FixedRecno() {
  if (persistent_) {
    (void)Sync();
  }
}

Result<std::unique_ptr<FixedRecno>> FixedRecno::Open(const std::string& path,
                                                     const FixedRecnoOptions& options,
                                                     bool truncate) {
  if (options.page_size < 64 || !IsPowerOfTwo(options.page_size) ||
      options.record_size == 0 || options.record_size > options.page_size - 16) {
    return Status::InvalidArgument("invalid recno geometry");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenDiskPageFile(path, options.page_size, truncate));
  const bool fresh = file->PageCount() == 0;
  std::unique_ptr<FixedRecno> store(
      new FixedRecno(std::move(file), options, /*persistent=*/true));
  if (fresh) {
    HASHKIT_RETURN_IF_ERROR(store->InitNew());
  } else {
    HASHKIT_RETURN_IF_ERROR(store->LoadExisting());
  }
  return store;
}

Result<std::unique_ptr<FixedRecno>> FixedRecno::OpenInMemory(const FixedRecnoOptions& options) {
  if (options.page_size < 64 || !IsPowerOfTwo(options.page_size) ||
      options.record_size == 0 || options.record_size > options.page_size - 16) {
    return Status::InvalidArgument("invalid recno geometry");
  }
  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenTempPageFile(options.page_size));
  std::unique_ptr<FixedRecno> store(
      new FixedRecno(std::move(file), options, /*persistent=*/false));
  HASHKIT_RETURN_IF_ERROR(store->InitNew());
  return store;
}

Status FixedRecno::InitNew() {
  count_ = 0;
  if (persistent_) {
    return WriteMeta();
  }
  return Status::Ok();
}

Status FixedRecno::WriteMeta() {
  std::vector<uint8_t> buf(page_size_, 0);
  EncodeU32(buf.data() + 0, kFixedMagic);
  EncodeU32(buf.data() + 4, kFixedVersion);
  EncodeU32(buf.data() + 8, page_size_);
  EncodeU32(buf.data() + 12, record_size_);
  EncodeU64(buf.data() + 16, count_);
  return file_->WritePage(0, std::span<const uint8_t>(buf));
}

Status FixedRecno::LoadExisting() {
  std::vector<uint8_t> buf(page_size_);
  HASHKIT_RETURN_IF_ERROR(file_->ReadPage(0, std::span<uint8_t>(buf)));
  if (DecodeU32(buf.data()) != kFixedMagic) {
    return Status::Corruption("not a hashkit recno file");
  }
  if (DecodeU32(buf.data() + 4) != kFixedVersion) {
    return Status::Corruption("unsupported recno version");
  }
  if (DecodeU32(buf.data() + 8) != page_size_) {
    return Status::Corruption("recno page size mismatch");
  }
  if (DecodeU32(buf.data() + 12) != record_size_) {
    return Status::Corruption("recno record size mismatch");
  }
  count_ = DecodeU64(buf.data() + 16);
  return Status::Ok();
}

Status FixedRecno::Sync() {
  if (!persistent_) {
    return Status::Ok();
  }
  HASHKIT_RETURN_IF_ERROR(WriteMeta());
  HASHKIT_RETURN_IF_ERROR(pool_->FlushAll());
  return file_->Sync();
}

Status FixedRecno::Get(uint64_t recno, std::string* value) {
  if (recno >= count_) {
    return Status::NotFound();
  }
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(PageFor(recno)));
  if (value != nullptr) {
    value->assign(reinterpret_cast<const char*>(page.data() + OffsetFor(recno)), record_size_);
  }
  return Status::Ok();
}

Status FixedRecno::Set(uint64_t recno, std::string_view value) {
  if (value.size() > record_size_) {
    return Status::InvalidArgument("record longer than the fixed record size");
  }
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(PageFor(recno)));
  uint8_t* dst = page.data() + OffsetFor(recno);
  std::memcpy(dst, value.data(), value.size());
  std::memset(dst + value.size(), 0, record_size_ - value.size());  // zero padding
  page.MarkDirty();
  if (recno >= count_) {
    count_ = recno + 1;
  }
  return Status::Ok();
}

Result<uint64_t> FixedRecno::Append(std::string_view value) {
  const uint64_t recno = count_;
  HASHKIT_RETURN_IF_ERROR(Set(recno, value));
  return recno;
}

// ---------------------------------------------------------------------------
// VarRecno
// ---------------------------------------------------------------------------

VarRecno::VarRecno(std::unique_ptr<btree::BTree> tree)
    : tree_(std::move(tree)), cursor_(tree_->NewCursor()) {}

Result<std::unique_ptr<VarRecno>> VarRecno::Open(const std::string& path,
                                                 const btree::BtOptions& options,
                                                 bool truncate) {
  HASHKIT_ASSIGN_OR_RETURN(auto tree, btree::BTree::Open(path, options, truncate));
  std::unique_ptr<VarRecno> store(new VarRecno(std::move(tree)));
  // Recover the append position from the largest stored record number.
  std::string last;
  const Status st = store->tree_->LastKey(&last);
  if (st.ok()) {
    store->next_ = KeyRecno(last) + 1;
  } else if (!st.IsNotFound()) {
    return st;
  }
  return store;
}

Result<std::unique_ptr<VarRecno>> VarRecno::OpenInMemory(const btree::BtOptions& options) {
  HASHKIT_ASSIGN_OR_RETURN(auto tree, btree::BTree::OpenInMemory(options));
  return std::unique_ptr<VarRecno>(new VarRecno(std::move(tree)));
}

Status VarRecno::Get(uint64_t recno, std::string* value) {
  return tree_->Get(RecnoKey(recno), value);
}

Status VarRecno::Set(uint64_t recno, std::string_view value) {
  HASHKIT_RETURN_IF_ERROR(tree_->Put(RecnoKey(recno), value));
  if (recno >= next_) {
    next_ = recno + 1;
  }
  return Status::Ok();
}

Result<uint64_t> VarRecno::Append(std::string_view value) {
  const uint64_t recno = next_;
  HASHKIT_RETURN_IF_ERROR(Set(recno, value));
  return recno;
}

Status VarRecno::Delete(uint64_t recno) { return tree_->Delete(RecnoKey(recno)); }

Status VarRecno::Scan(uint64_t* recno, std::string* value, bool first) {
  if (first) {
    HASHKIT_RETURN_IF_ERROR(cursor_.SeekFirst());
  }
  std::string key;
  HASHKIT_RETURN_IF_ERROR(cursor_.Next(&key, value));
  if (key.size() != 8) {
    return Status::Corruption("recno tree holds a non-recno key");
  }
  if (recno != nullptr) {
    *recno = KeyRecno(key);
  }
  return Status::Ok();
}

}  // namespace recno
}  // namespace hashkit
