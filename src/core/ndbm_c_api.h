// hashkit: the classic ndbm(3) C interface, signature for signature.
//
// "This hashing package provides a set of compatibility routines to
// implement the ndbm interface" — this header is that claim made literal:
// an existing C program written against <ndbm.h> recompiles against this
// file (namespaced to avoid colliding with a system ndbm) and runs on the
// new package.  See examples/ndbm_port.cpp for the softer C++ mirror.
//
// Semantics follow ndbm(3):
//   * dbm_open(file, flags, mode): O_CREAT creates, O_TRUNC clears; the
//     mode is applied to the created file.
//   * dbm_fetch returns a datum pointing into library-owned storage,
//     valid until the next operation on the same DBM.
//   * dbm_store with DBM_INSERT returns 1 if the key exists; DBM_REPLACE
//     overwrites.  Returns negative on error.
//   * dbm_delete returns negative if the key is absent.
//   * dbm_firstkey/dbm_nextkey iterate keys in hash order.
//   * dbm_error/dbm_clearerr expose the sticky error flag.

#ifndef HASHKIT_SRC_CORE_NDBM_C_API_H_
#define HASHKIT_SRC_CORE_NDBM_C_API_H_

#include <cstddef>

namespace hashkit {
namespace ndbm_c {

struct datum {
  void* dptr = nullptr;
  size_t dsize = 0;
};

inline constexpr int DBM_INSERT = 0;
inline constexpr int DBM_REPLACE = 1;

// Opaque handle, as in <ndbm.h>.
struct DBM;

DBM* dbm_open(const char* file, int open_flags, int file_mode);
void dbm_close(DBM* db);

datum dbm_fetch(DBM* db, datum key);
int dbm_store(DBM* db, datum key, datum content, int store_mode);
int dbm_delete(DBM* db, datum key);
datum dbm_firstkey(DBM* db);
datum dbm_nextkey(DBM* db);

int dbm_error(DBM* db);
int dbm_clearerr(DBM* db);

}  // namespace ndbm_c
}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_NDBM_C_API_H_
