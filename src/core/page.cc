#include "src/core/page.h"

#include <cassert>
#include <cstring>

#include "src/util/endian.h"

namespace hashkit {

namespace {
constexpr size_t kNEntriesOff = 0;
constexpr size_t kDataBeginOff = 2;
constexpr size_t kOvflAddrOff = 4;
constexpr size_t kTypeOff = 6;
constexpr size_t kIndexSlotSize = 4;  // key_off + data_off
}  // namespace

void PageView::Init(uint8_t* buf, size_t page_size, PageType type) {
  std::memset(buf, 0, page_size);
  EncodeU16(buf + kNEntriesOff, 0);
  EncodeU16(buf + kDataBeginOff, static_cast<uint16_t>(page_size == 32768 ? 32767 : page_size));
  EncodeU16(buf + kOvflAddrOff, 0);
  EncodeU16(buf + kTypeOff, static_cast<uint16_t>(type));
}

uint16_t PageView::nentries() const { return DecodeU16(buf_ + kNEntriesOff); }
void PageView::SetNEntries(uint16_t n) { EncodeU16(buf_ + kNEntriesOff, n); }

uint16_t PageView::data_begin() const { return DecodeU16(buf_ + kDataBeginOff); }
void PageView::SetDataBegin(uint16_t v) { EncodeU16(buf_ + kDataBeginOff, v); }

uint16_t PageView::ovfl_addr() const { return DecodeU16(buf_ + kOvflAddrOff); }
void PageView::set_ovfl_addr(uint16_t oaddr) { EncodeU16(buf_ + kOvflAddrOff, oaddr); }

PageType PageView::type() const { return static_cast<PageType>(DecodeU16(buf_ + kTypeOff)); }
void PageView::set_type(PageType type) { EncodeU16(buf_ + kTypeOff, static_cast<uint16_t>(type)); }

void PageView::SetSegUsed(uint16_t n) { SetNEntries(n); }

uint16_t PageView::RawKeyOff(uint16_t index) const {
  return DecodeU16(buf_ + IndexBase() + index * kIndexSlotSize);
}
uint16_t PageView::RawDataOff(uint16_t index) const {
  return DecodeU16(buf_ + IndexBase() + index * kIndexSlotSize + 2);
}
void PageView::SetRawKeyOff(uint16_t index, uint16_t value) {
  EncodeU16(buf_ + IndexBase() + index * kIndexSlotSize, value);
}
void PageView::SetRawDataOff(uint16_t index, uint16_t value) {
  EncodeU16(buf_ + IndexBase() + index * kIndexSlotSize + 2, value);
}

uint16_t PageView::EntryEnd(uint16_t index) const {
  if (index == 0) {
    // Page sizes of exactly 32768 reserve the final byte so offsets fit in
    // 15 bits; Init already clamps data_begin accordingly.
    return static_cast<uint16_t>(size_ == 32768 ? 32767 : size_);
  }
  return RawDataOff(index - 1);
}

size_t PageView::FreeSpace() const {
  const size_t index_end = IndexBase() + nentries() * kIndexSlotSize;
  const size_t begin = data_begin();
  assert(begin >= index_end);
  return begin - index_end;
}

bool PageView::FitsPair(size_t klen, size_t dlen) const {
  if (tag_cap_ != 0 && nentries() >= tag_cap_) {
    return false;  // tag array full; the pair chains over like any overfull page
  }
  return kIndexSlotSize + klen + dlen <= FreeSpace();
}

bool PageView::PairFitsEmptyPage(size_t klen, size_t dlen, size_t page_size, uint32_t format) {
  const size_t usable = (page_size == 32768 ? 32767 : page_size) - kPageHeaderSize -
                        PageTagCapacity(page_size, format);
  return kIndexSlotSize + klen + dlen <= usable;
}

void PageView::AddPair(std::string_view key, std::string_view data, uint8_t tag) {
  assert(FitsPair(key.size(), data.size()));
  const uint16_t n = nentries();
  const uint16_t end = data_begin();
  const auto key_off = static_cast<uint16_t>(end - key.size());
  const auto data_off = static_cast<uint16_t>(key_off - data.size());
  std::memcpy(buf_ + key_off, key.data(), key.size());
  std::memcpy(buf_ + data_off, data.data(), data.size());
  SetRawKeyOff(n, key_off);
  SetRawDataOff(n, data_off);
  if (tag_cap_ != 0) {
    SetTag(n, tag);
  }
  SetNEntries(static_cast<uint16_t>(n + 1));
  SetDataBegin(data_off);
}

bool PageView::FitsBigStub(size_t prefix_len) const {
  if (tag_cap_ != 0 && nentries() >= tag_cap_) {
    return false;
  }
  return kIndexSlotSize + kBigStubFixedSize + prefix_len <= FreeSpace();
}

void PageView::AddBigStub(uint16_t first_oaddr, uint32_t hash, uint32_t key_len,
                          uint32_t data_len, std::string_view prefix) {
  assert(prefix.size() <= kBigKeyPrefixMax);
  assert(FitsBigStub(prefix.size()));
  const uint16_t n = nentries();
  const uint16_t end = data_begin();
  const uint16_t key_off = end;  // big stubs have an empty key region
  const auto stub_size = static_cast<uint16_t>(kBigStubFixedSize + prefix.size());
  const auto data_off = static_cast<uint16_t>(key_off - stub_size);
  uint8_t* p = buf_ + data_off;
  EncodeU16(p, first_oaddr);
  EncodeU32(p + 2, hash);
  EncodeU32(p + 6, key_len);
  EncodeU32(p + 10, data_len);
  std::memcpy(p + kBigStubFixedSize, prefix.data(), prefix.size());
  SetRawKeyOff(n, static_cast<uint16_t>(key_off | kBigEntryFlag));
  SetRawDataOff(n, data_off);
  if (tag_cap_ != 0) {
    SetTag(n, TagOfHash(hash));
  }
  SetNEntries(static_cast<uint16_t>(n + 1));
  SetDataBegin(data_off);
}

EntryRef PageView::Entry(uint16_t index) const {
  assert(index < nentries());
  EntryRef ref;
  const uint16_t raw_key = RawKeyOff(index);
  const auto key_off = static_cast<uint16_t>(raw_key & ~kBigEntryFlag);
  const uint16_t data_off = RawDataOff(index);
  const uint16_t end = EntryEnd(index);
  const auto* chars = reinterpret_cast<const char*>(buf_);
  if ((raw_key & kBigEntryFlag) != 0) {
    ref.big = true;
    const uint8_t* p = buf_ + data_off;
    ref.ovfl_addr = DecodeU16(p);
    ref.hash = DecodeU32(p + 2);
    ref.key_len = DecodeU32(p + 6);
    ref.data_len = DecodeU32(p + 10);
    const size_t prefix_len = (key_off - data_off) - kBigStubFixedSize;
    ref.prefix = std::string_view(chars + data_off + kBigStubFixedSize, prefix_len);
  } else {
    ref.key = std::string_view(chars + key_off, end - key_off);
    ref.data = std::string_view(chars + data_off, key_off - data_off);
  }
  return ref;
}

void PageView::RemoveEntry(uint16_t index) {
  const uint16_t n = nentries();
  assert(index < n);
  const uint16_t end = EntryEnd(index);
  const uint16_t data_off = RawDataOff(index);
  const auto removed = static_cast<uint16_t>(end - data_off);
  const uint16_t begin = data_begin();

  // Slide pair bytes of all later entries up over the removed pair.
  std::memmove(buf_ + begin + removed, buf_ + begin, data_off - begin);

  // Rewrite offsets of later entries and shift the index array left.
  for (uint16_t j = index + 1; j < n; ++j) {
    const uint16_t raw_key = RawKeyOff(j);
    const uint16_t flag = raw_key & kBigEntryFlag;
    const auto key_off = static_cast<uint16_t>((raw_key & ~kBigEntryFlag) + removed);
    const auto new_data_off = static_cast<uint16_t>(RawDataOff(j) + removed);
    SetRawKeyOff(static_cast<uint16_t>(j - 1), static_cast<uint16_t>(key_off | flag));
    SetRawDataOff(static_cast<uint16_t>(j - 1), new_data_off);
  }
  if (tag_cap_ != 0 && index + 1 < n) {
    std::memmove(buf_ + kPageHeaderSize + index, buf_ + kPageHeaderSize + index + 1,
                 static_cast<size_t>(n - 1 - index));
  }
  SetNEntries(static_cast<uint16_t>(n - 1));
  SetDataBegin(static_cast<uint16_t>(begin + removed));
}

bool PageView::Validate() const {
  const uint16_t n = nentries();
  if (tag_cap_ != 0 && n > tag_cap_) {
    return false;
  }
  const size_t index_end = IndexBase() + n * kIndexSlotSize;
  if (index_end > size_) {
    return false;
  }
  if (data_begin() < index_end || data_begin() > size_) {
    return false;
  }
  uint16_t prev_end = static_cast<uint16_t>(size_ == 32768 ? 32767 : size_);
  for (uint16_t i = 0; i < n; ++i) {
    const uint16_t raw_key = RawKeyOff(i);
    const auto key_off = static_cast<uint16_t>(raw_key & ~kBigEntryFlag);
    const uint16_t data_off = RawDataOff(i);
    if (key_off > prev_end || data_off > key_off || data_off < index_end) {
      return false;
    }
    if ((raw_key & kBigEntryFlag) != 0) {
      if (static_cast<size_t>(key_off - data_off) < kBigStubFixedSize) {
        return false;
      }
      if (key_off != prev_end) {
        return false;  // big stubs have empty key regions
      }
    }
    prev_end = data_off;
  }
  return prev_end == data_begin();
}

}  // namespace hashkit
