// hashkit: the hash table's file header ("meta page").
//
// Holds everything needed to reopen a table: geometry, linear-hashing
// state (max bucket and masks), the spares[] array that makes the paper's
// buddy-in-waiting overflow addressing work, and the overflow-bitmap page
// addresses.  Serialized little-endian at the front of the file, spanning
// nhdr_pages pages for small bucket sizes.

#ifndef HASHKIT_SRC_CORE_META_H_
#define HASHKIT_SRC_CORE_META_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/core/options.h"
#include "src/util/status.h"

namespace hashkit {

inline constexpr uint32_t kHashMagic = 0x48534b31;  // "HSK1"
// On-disk format versions.  V2 adds the per-page fingerprint tag array
// (FORMAT.md §3.2); values double as the page format passed to PageView.
// Both versions open read/write; kHashVersion is what new tables get by
// default.
inline constexpr uint32_t kHashVersionV1 = 1;
inline constexpr uint32_t kHashVersionV2 = 2;
inline constexpr uint32_t kHashVersion = kHashVersionV2;

// The byte string hashed at create time; its hash is stored so that opening
// a table with a different hash function fails cleanly (paper: "the hash
// package will try to determine that the hash function supplied is the one
// with which the table was created").
inline constexpr char kHashCheckKey[] = "%$sniglet&*";

struct Meta {
  uint32_t magic = kHashMagic;
  uint32_t version = kHashVersion;
  uint32_t bsize = 256;
  uint32_t ffactor = kDefaultFfactor;
  uint64_t nkeys = 0;

  // Linear-hashing state.
  uint32_t max_bucket = 0;  // highest bucket in existence
  uint32_t high_mask = 1;   // mask for the growing generation
  uint32_t low_mask = 0;    // mask for the previous generation

  uint32_t last_freed = 0;  // oaddr hint for overflow-page reuse (0 = none)
  // The split point at which fresh overflow pages are being carved.  At
  // least the current growth frontier, but may run AHEAD of it when a
  // split point's 2^11-page address space is exhausted — allocating at a
  // future split point is safe because no buckets exist beyond it yet.
  uint32_t ovfl_point = 0;
  uint32_t hash_check = 0;  // hash(kHashCheckKey) under the table's function
  uint32_t hash_id = 0;     // HashFuncId, or kCustomHashId
  uint32_t nhdr_pages = 1;  // pages consumed by this header
  uint32_t nelem_hint = 0;  // informational: creation-time size estimate

  // spares[s] = cumulative count of overflow pages allocated at split
  // points <= s.  Drives BUCKET_TO_PAGE / OADDR_TO_PAGE.
  std::array<uint32_t, kMaxSplitPoints> spares{};

  // Overflow address of the bitmap page for each split point (0 = none).
  std::array<uint16_t, kMaxSplitPoints> bitmaps{};
};

inline constexpr uint32_t kCustomHashId = 0xff;

// Serialized size of a Meta record, independent of page size.
inline constexpr size_t kMetaEncodedSize =
    4 * 13 + 8 + 4 * kMaxSplitPoints + 2 * kMaxSplitPoints;

// Encodes `meta` into `out` (must be >= kMetaEncodedSize bytes).
void EncodeMeta(const Meta& meta, std::span<uint8_t> out);

// Decodes and validates magic/version.  Does not validate hash_check (the
// caller does that once it knows the hash function).
Result<Meta> DecodeMeta(std::span<const uint8_t> in);

// Number of header pages needed for a given bucket size.
uint32_t HeaderPagesFor(uint32_t bsize);

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_META_H_
