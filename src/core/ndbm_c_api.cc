#include "src/core/ndbm_c_api.h"

#include <fcntl.h>

#include <memory>
#include <string>

#include "src/core/hash_table.h"

namespace hashkit {
namespace ndbm_c {

struct DBM {
  std::unique_ptr<HashTable> table;
  std::string fetch_buf;  // storage behind the datum dbm_fetch returns
  std::string key_buf;    // storage behind firstkey/nextkey datums
  int error = 0;
};

DBM* dbm_open(const char* file, int open_flags, int file_mode) {
  (void)file_mode;  // the page-file layer creates with 0644; historical arg
  HashOptions options;
  const bool truncate = (open_flags & O_TRUNC) != 0;
  auto opened = HashTable::Open(file, options, truncate);
  if (!opened.ok()) {
    return nullptr;
  }
  auto* db = new DBM;
  db->table = std::move(opened).value();
  return db;
}

void dbm_close(DBM* db) { delete db; }

datum dbm_fetch(DBM* db, datum key) {
  datum result;
  if (db == nullptr) {
    return result;
  }
  const Status st = db->table->Get(
      std::string_view(static_cast<const char*>(key.dptr), key.dsize), &db->fetch_buf);
  if (!st.ok()) {
    if (!st.IsNotFound()) {
      db->error = 1;
    }
    return result;
  }
  result.dptr = db->fetch_buf.data();
  result.dsize = db->fetch_buf.size();
  return result;
}

int dbm_store(DBM* db, datum key, datum content, int store_mode) {
  if (db == nullptr) {
    return -1;
  }
  const Status st = db->table->Put(
      std::string_view(static_cast<const char*>(key.dptr), key.dsize),
      std::string_view(static_cast<const char*>(content.dptr), content.dsize),
      /*overwrite=*/store_mode == DBM_REPLACE);
  if (st.ok()) {
    return 0;
  }
  if (st.IsExists()) {
    return 1;  // ndbm's DBM_INSERT-hit-existing convention
  }
  db->error = 1;
  return -1;
}

int dbm_delete(DBM* db, datum key) {
  if (db == nullptr) {
    return -1;
  }
  const Status st = db->table->Delete(
      std::string_view(static_cast<const char*>(key.dptr), key.dsize));
  if (st.ok()) {
    return 0;
  }
  if (!st.IsNotFound()) {
    db->error = 1;
  }
  return -1;
}

namespace {
datum KeyDatum(DBM* db, const Status& st) {
  datum result;
  if (st.ok()) {
    result.dptr = db->key_buf.data();
    result.dsize = db->key_buf.size();
  } else if (!st.IsNotFound()) {
    db->error = 1;
  }
  return result;
}
}  // namespace

datum dbm_firstkey(DBM* db) {
  if (db == nullptr) {
    return {};
  }
  return KeyDatum(db, db->table->Seq(&db->key_buf, nullptr, /*first=*/true));
}

datum dbm_nextkey(DBM* db) {
  if (db == nullptr) {
    return {};
  }
  return KeyDatum(db, db->table->Seq(&db->key_buf, nullptr, /*first=*/false));
}

int dbm_error(DBM* db) { return db == nullptr ? 1 : db->error; }

int dbm_clearerr(DBM* db) {
  if (db != nullptr) {
    db->error = 0;
  }
  return 0;
}

}  // namespace ndbm_c
}  // namespace hashkit
