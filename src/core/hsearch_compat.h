// hashkit: hsearch-compatible interface over the new package (the paper's
// "set of compatibility routines to implement the hsearch interface").
//
// The native interface removes hsearch's restrictions: tables may grow past
// nelem, multiple tables can be open concurrently, tables may live on disk,
// and hash functions are selectable at runtime.  The single-global-table
// hcreate/hsearch/hdestroy shims are provided for source compatibility.

#ifndef HASHKIT_SRC_CORE_HSEARCH_COMPAT_H_
#define HASHKIT_SRC_CORE_HSEARCH_COMPAT_H_

#include <memory>
#include <string>

#include "src/core/hash_table.h"

namespace hashkit {
namespace hsearch {

struct Entry {
  std::string key;
  void* data = nullptr;
};

enum class Action { kFind, kEnter };

// A memory-resident key -> pointer table with hsearch semantics, built on
// the package's in-memory mode.  Unlike System V hsearch it never reports
// "table full".
class Table {
 public:
  // `nelem` is a sizing hint, exactly as in hcreate(3).
  static Result<std::unique_ptr<Table>> Create(size_t nelem, const HashOptions& options = {});

  // kFind: returns the entry or kNotFound.  kEnter: inserts if absent
  // (returning the inserted entry), otherwise returns the existing entry
  // without replacing it — hsearch(3)'s slightly surprising contract.
  Status Search(const Entry& entry, Action action, Entry* result);

  size_t size() const { return table_->size(); }
  HashTable* table() { return table_.get(); }

 private:
  explicit Table(std::unique_ptr<HashTable> table) : table_(std::move(table)) {}

  std::unique_ptr<HashTable> table_;
};

// Global single-table shims mirroring <search.h>.  Not thread-safe, by
// historical design.
bool HCreate(size_t nelem);
Entry* HSearch(const Entry& item, Action action);
void HDestroy();

}  // namespace hsearch
}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_HSEARCH_COMPAT_H_
