#include "src/core/meta.h"

#include <cassert>

#include "src/util/endian.h"

namespace hashkit {

void EncodeMeta(const Meta& meta, std::span<uint8_t> out) {
  assert(out.size() >= kMetaEncodedSize);
  uint8_t* p = out.data();
  EncodeU32(p + 0, meta.magic);
  EncodeU32(p + 4, meta.version);
  EncodeU32(p + 8, meta.bsize);
  EncodeU32(p + 12, meta.ffactor);
  EncodeU64(p + 16, meta.nkeys);
  EncodeU32(p + 24, meta.max_bucket);
  EncodeU32(p + 28, meta.high_mask);
  EncodeU32(p + 32, meta.low_mask);
  EncodeU32(p + 36, meta.last_freed);
  EncodeU32(p + 40, meta.hash_check);
  EncodeU32(p + 44, meta.hash_id);
  EncodeU32(p + 48, meta.nhdr_pages);
  EncodeU32(p + 52, meta.nelem_hint);
  EncodeU32(p + 56, meta.ovfl_point);
  size_t off = 60;
  for (uint32_t s : meta.spares) {
    EncodeU32(p + off, s);
    off += 4;
  }
  for (uint16_t b : meta.bitmaps) {
    EncodeU16(p + off, b);
    off += 2;
  }
  assert(off == kMetaEncodedSize);
}

Result<Meta> DecodeMeta(std::span<const uint8_t> in) {
  if (in.size() < kMetaEncodedSize) {
    return Status::Corruption("header too short");
  }
  const uint8_t* p = in.data();
  Meta meta;
  meta.magic = DecodeU32(p + 0);
  if (meta.magic != kHashMagic) {
    return Status::Corruption("bad magic: not a hashkit file");
  }
  meta.version = DecodeU32(p + 4);
  if (meta.version != kHashVersionV1 && meta.version != kHashVersionV2) {
    return Status::Corruption("unsupported version");
  }
  meta.bsize = DecodeU32(p + 8);
  meta.ffactor = DecodeU32(p + 12);
  meta.nkeys = DecodeU64(p + 16);
  meta.max_bucket = DecodeU32(p + 24);
  meta.high_mask = DecodeU32(p + 28);
  meta.low_mask = DecodeU32(p + 32);
  meta.last_freed = DecodeU32(p + 36);
  meta.hash_check = DecodeU32(p + 40);
  meta.hash_id = DecodeU32(p + 44);
  meta.nhdr_pages = DecodeU32(p + 48);
  meta.nelem_hint = DecodeU32(p + 52);
  meta.ovfl_point = DecodeU32(p + 56);
  size_t off = 60;
  for (uint32_t& s : meta.spares) {
    s = DecodeU32(p + off);
    off += 4;
  }
  for (uint16_t& b : meta.bitmaps) {
    b = DecodeU16(p + off);
    off += 2;
  }
  return meta;
}

uint32_t HeaderPagesFor(uint32_t bsize) {
  return static_cast<uint32_t>((kMetaEncodedSize + bsize - 1) / bsize);
}

}  // namespace hashkit
