// hashkit: ndbm-compatible interface over the new package (the paper's
// "set of compatibility routines to implement the ndbm interface").
//
// Semantics follow ndbm(3):
//   * Fetch/Firstkey/Nextkey return datums pointing at storage owned by the
//     database object, valid until the next call on the same object.
//   * Store with kInsert fails (returns 1) on an existing key; kReplace
//     overwrites.
//   * Unlike real ndbm there is no "entry too big" failure: the underlying
//     package stores pairs of any size.

#ifndef HASHKIT_SRC_CORE_NDBM_COMPAT_H_
#define HASHKIT_SRC_CORE_NDBM_COMPAT_H_

#include <memory>
#include <string>

#include "src/core/hash_table.h"

namespace hashkit {
namespace ndbm {

struct Datum {
  const char* dptr = nullptr;
  size_t dsize = 0;

  Datum() = default;
  Datum(const char* p, size_t n) : dptr(p), dsize(n) {}
  explicit Datum(std::string_view s) : dptr(s.data()), dsize(s.size()) {}

  bool null() const { return dptr == nullptr; }
  std::string_view view() const { return {dptr, dsize}; }
};

enum class StoreMode { kInsert, kReplace };

class Db {
 public:
  // Opens `path` (creating it if needed) with the package defaults unless
  // overridden in `options`.
  static Result<std::unique_ptr<Db>> Open(const std::string& path,
                                          const HashOptions& options = {});

  // Returns the datum for `key`, or a null datum if absent.
  Datum Fetch(Datum key);

  // 0 on success, 1 if kInsert hit an existing key, -1 on error.
  int Store(Datum key, Datum content, StoreMode mode);

  // 0 on success, -1 if the key was absent or on error.
  int Delete(Datum key);

  // Key iteration in hash order; Firstkey restarts the scan.  As in ndbm,
  // only the key is returned — fetching the data costs a second call
  // (Figure 8's "SEQUENTIAL" vs "SEQUENTIAL (with data retrieval)" rows).
  Datum Firstkey();
  Datum Nextkey();

  Status Sync() { return table_->Sync(); }
  HashTable* table() { return table_.get(); }

 private:
  explicit Db(std::unique_ptr<HashTable> table) : table_(std::move(table)) {}

  std::unique_ptr<HashTable> table_;
  std::string key_buf_;
  std::string data_buf_;
};

}  // namespace ndbm
}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_NDBM_COMPAT_H_
