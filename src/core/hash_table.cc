#include "src/core/hash_table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <set>
#include <vector>

#include "src/util/endian.h"
#include "src/util/math.h"
#include "src/wal/log_reader.h"

namespace hashkit {

namespace {

constexpr size_t kHashCheckKeyLen = sizeof(kHashCheckKey) - 1;

Status ValidateOptions(const HashOptions& options) {
  if (options.bsize < kMinBucketSize || options.bsize > kMaxBucketSize ||
      !IsPowerOfTwo(options.bsize)) {
    return Status::InvalidArgument("bsize must be a power of two in [64, 32768]");
  }
  if (options.ffactor == 0) {
    return Status::InvalidArgument("ffactor must be >= 1");
  }
  if (options.custom_hash == nullptr && GetHashFunc(options.hash_id) == nullptr) {
    return Status::InvalidArgument("unknown hash function id");
  }
  if (options.format_version != kHashVersionV1 && options.format_version != kHashVersionV2) {
    return Status::InvalidArgument("format_version must be 1 or 2");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / open / close
// ---------------------------------------------------------------------------

HashTable::HashTable(std::unique_ptr<PageFile> file, const HashOptions& options)
    : file_(std::move(file)),
      pool_(std::make_unique<BufferPool>(file_.get(), options.cachesize, options.eviction)),
      ovfl_(std::make_unique<OvflAllocator>(&meta_, pool_.get())),
      split_policy_(options.split_policy),
      auto_contract_(options.auto_contract) {
  // The overflow allocator mutates bitmap pages, reformats recycled pages,
  // and discards freed frames without going through the fetch helpers
  // below; route its pre-images into live snapshots too (hashkit-mvcc).
  ovfl_->SetPreserveHook([this](uint64_t pageno) {
    if (!in_write_op_ || snapshots_.empty()) {
      return;
    }
    Result<PageRef> ref = pool_->Get(pageno);
    if (ref.ok()) {
      PreserveForSnapshots(pageno, ref.value().data());
    }
  });
}

HashTable::~HashTable() {
  if (persistent_) {
    (void)Sync();  // best effort; explicit Sync() reports errors
  }
}

Result<std::unique_ptr<HashTable>> HashTable::Open(const std::string& path,
                                                   const HashOptions& options, bool truncate) {
  const std::string wal_path = path + ".wal";
  wal::RecoveryResult recovery;
  if (truncate) {
    std::remove(wal_path.c_str());  // a truncated table owes nothing to its old log
  } else {
    // Replay any log a crashed session left behind *before* probing the
    // header — a torn header page is itself repaired by replay.
    HASHKIT_ASSIGN_OR_RETURN(recovery, wal::RecoverFiles(path, wal_path));
  }

  // Probe the file with a small page size to learn the real bucket size
  // before committing to a page geometry.
  uint32_t existing_bsize = 0;
  bool exists = false;
  {
    HASHKIT_ASSIGN_OR_RETURN(auto probe, OpenDiskPageFile(path, kMinBucketSize, truncate));
    if (probe->PageCount() > 0) {
      std::vector<uint8_t> buf(kMinBucketSize);
      HASHKIT_RETURN_IF_ERROR(probe->ReadPage(0, std::span<uint8_t>(buf)));
      if (DecodeU32(buf.data()) != kHashMagic) {
        return Status::Corruption(path + " is not a hashkit file");
      }
      existing_bsize = DecodeU32(buf.data() + 8);
      if (existing_bsize < kMinBucketSize || existing_bsize > kMaxBucketSize ||
          !IsPowerOfTwo(existing_bsize)) {
        return Status::Corruption("header has invalid bucket size");
      }
      exists = true;
    }
  }

  std::unique_ptr<HashTable> table;
  if (exists) {
    HASHKIT_ASSIGN_OR_RETURN(
        auto file, OpenDiskPageFile(path, existing_bsize, false, options.exclusive_lock));
    table.reset(new HashTable(std::move(file), options));
    table->persistent_ = true;
    HASHKIT_RETURN_IF_ERROR(table->InitExisting(options));
  } else {
    HASHKIT_RETURN_IF_ERROR(ValidateOptions(options));
    HASHKIT_ASSIGN_OR_RETURN(
        auto file, OpenDiskPageFile(path, options.bsize, true, options.exclusive_lock));
    table.reset(new HashTable(std::move(file), options));
    table->persistent_ = true;
    HASHKIT_RETURN_IF_ERROR(table->InitNew(options));
  }
  table->wal_recovery_ = recovery;
  if (options.durability != Durability::kNone) {
    HASHKIT_ASSIGN_OR_RETURN(auto storage, wal::OpenDiskWalStorage(wal_path));
    HASHKIT_RETURN_IF_ERROR(table->EnableWal(std::move(storage), options,
                                             options.wal_archive ? wal_path : std::string()));
  }
  return table;
}

Result<std::unique_ptr<HashTable>> HashTable::OpenWithBackends(
    std::unique_ptr<PageFile> file, std::unique_ptr<wal::WalStorage> walstore,
    const HashOptions& options) {
  wal::RecoveryResult recovery;
  if (walstore != nullptr) {
    HASHKIT_ASSIGN_OR_RETURN(recovery, wal::Recover(walstore.get(), file.get()));
  }
  const bool exists = file->PageCount() > 0;
  if (!exists) {
    HASHKIT_RETURN_IF_ERROR(ValidateOptions(options));
    if (options.bsize != file->page_size()) {
      return Status::InvalidArgument("options.bsize must match the backend's page size");
    }
  }
  std::unique_ptr<HashTable> table(new HashTable(std::move(file), options));
  table->persistent_ = true;
  if (exists) {
    HASHKIT_RETURN_IF_ERROR(table->InitExisting(options));
  } else {
    HASHKIT_RETURN_IF_ERROR(table->InitNew(options));
  }
  table->wal_recovery_ = recovery;
  if (walstore != nullptr && options.durability != Durability::kNone) {
    HASHKIT_RETURN_IF_ERROR(table->EnableWal(std::move(walstore), options));
  }
  return table;
}

Result<std::unique_ptr<HashTable>> HashTable::OpenInMemory(const HashOptions& options) {
  HASHKIT_RETURN_IF_ERROR(ValidateOptions(options));
  // Memory-resident tables spill pages the buffer pool cannot hold to an
  // unlinked temporary file (the paper's memory-resident behaviour).
  HASHKIT_ASSIGN_OR_RETURN(auto file, OpenTempPageFile(options.bsize));
  std::unique_ptr<HashTable> table(new HashTable(std::move(file), options));
  table->persistent_ = false;
  HASHKIT_RETURN_IF_ERROR(table->InitNew(options));
  return table;
}

Status HashTable::InitNew(const HashOptions& options) {
  meta_.version = options.format_version;
  meta_.bsize = options.bsize;
  meta_.ffactor = options.ffactor;
  meta_.nhdr_pages = HeaderPagesFor(options.bsize);
  meta_.nelem_hint = options.nelem;

  // Pre-size the table when the final element count is known (Figure 6's
  // "known in advance" case): buckets = ceil(nelem / ffactor) rounded up to
  // a power of two, as in dynahash.
  uint32_t nbuckets = 1;
  if (options.nelem > 1) {
    const uint32_t needed = (options.nelem - 1) / options.ffactor + 1;
    nbuckets = static_cast<uint32_t>(NextPowerOfTwo(needed));
  }
  meta_.max_bucket = nbuckets - 1;
  meta_.low_mask = nbuckets - 1;
  meta_.high_mask = nbuckets * 2 - 1;

  if (options.custom_hash != nullptr) {
    hash_ = options.custom_hash;
    meta_.hash_id = kCustomHashId;
  } else {
    hash_ = GetHashFunc(options.hash_id);
    meta_.hash_id = static_cast<uint32_t>(options.hash_id);
  }
  meta_.hash_check = hash_(kHashCheckKey, kHashCheckKeyLen);

  meta_dirty_ = true;
  if (persistent_) {
    HASHKIT_RETURN_IF_ERROR(WriteMeta());
  }
  return Status::Ok();
}

Status HashTable::InitExisting(const HashOptions& options) {
  const uint32_t bsize = static_cast<uint32_t>(file_->page_size());
  const uint32_t nhdr = HeaderPagesFor(bsize);
  std::vector<uint8_t> buf(static_cast<size_t>(nhdr) * bsize);
  for (uint32_t p = 0; p < nhdr; ++p) {
    HASHKIT_RETURN_IF_ERROR(
        file_->ReadPage(p, std::span<uint8_t>(buf.data() + static_cast<size_t>(p) * bsize, bsize)));
  }
  HASHKIT_ASSIGN_OR_RETURN(meta_, DecodeMeta(buf));
  if (meta_.bsize != bsize || meta_.nhdr_pages != nhdr) {
    return Status::Corruption("header geometry inconsistent");
  }
  if (meta_.ffactor == 0 || meta_.high_mask != (meta_.low_mask << 1 | 1) ||
      meta_.max_bucket < meta_.low_mask || meta_.max_bucket > meta_.high_mask) {
    return Status::Corruption("header hash state inconsistent");
  }

  if (options.custom_hash != nullptr) {
    hash_ = options.custom_hash;
  } else if (meta_.hash_id == kCustomHashId) {
    return Status::InvalidArgument(
        "table was created with a user-defined hash function; supply it at open");
  } else {
    hash_ = GetHashFunc(static_cast<HashFuncId>(meta_.hash_id));
    if (hash_ == nullptr) {
      return Status::Corruption("header names an unknown hash function");
    }
  }
  // Paper: "the hash package will try to determine that the hash function
  // supplied is the one with which the table was created".
  if (hash_(kHashCheckKey, kHashCheckKeyLen) != meta_.hash_check) {
    return Status::InvalidArgument("hash function does not match the one the table was built with");
  }
  return Status::Ok();
}

Status HashTable::WriteMeta() {
  std::vector<uint8_t> buf(static_cast<size_t>(meta_.nhdr_pages) * meta_.bsize, 0);
  EncodeMeta(meta_, buf);
  for (uint32_t p = 0; p < meta_.nhdr_pages; ++p) {
    HASHKIT_RETURN_IF_ERROR(file_->WritePage(
        p, std::span<const uint8_t>(buf.data() + static_cast<size_t>(p) * meta_.bsize,
                                    meta_.bsize)));
  }
  meta_dirty_ = false;
  return Status::Ok();
}

Status HashTable::Sync() {
  if (!persistent_) {
    return Status::Ok();
  }
  if (wal_ != nullptr) {
    return Checkpoint();
  }
  HASHKIT_RETURN_IF_ERROR(WriteMeta());
  HASHKIT_RETURN_IF_ERROR(pool_->FlushAll());
  return file_->Sync();
}

// ---------------------------------------------------------------------------
// Write-ahead logging
// ---------------------------------------------------------------------------

Status HashTable::EnableWal(std::unique_ptr<wal::WalStorage> storage,
                            const HashOptions& options, const std::string& archive_prefix) {
  const uint32_t sync_every =
      options.durability == Durability::kSync ? std::max(1u, options.wal_group_commit) : 0;
  wal_ = std::make_unique<wal::LogWriter>(std::move(storage), meta_.bsize, sync_every);
  const Status init = wal_->Init();
  if (!init.ok()) {
    wal_.reset();
    return init;
  }
  if (!archive_prefix.empty()) {
    wal_->EnableArchive(archive_prefix);
  }
  // Floor the checkpoint trigger: between checkpoints, held frames cannot
  // be written back, so the trigger also bounds buffer-pool growth.
  wal_checkpoint_bytes_ = std::max<uint64_t>(options.wal_checkpoint_bytes, 64 * 1024);
  pool_->EnableWalBarrier();
  return Status::Ok();
}

Status HashTable::WalCommit() {
  if (wal_ == nullptr) {
    return Status::Ok();
  }
  std::vector<WalPageHandle> pending = pool_->TakeWalPending();
  if (pending.empty() && !meta_dirty_) {
    return Status::Ok();
  }
  for (const WalPageHandle& handle : pending) {
    wal_->AppendPageImage(handle.pageno, std::span<const uint8_t>(handle.data, meta_.bsize));
  }
  // Meta pages bypass the buffer pool, so their after-image rides along
  // with every batch; the main file's copy is only rewritten at
  // checkpoints.
  std::vector<uint8_t> meta_buf(static_cast<size_t>(meta_.nhdr_pages) * meta_.bsize, 0);
  EncodeMeta(meta_, meta_buf);
  for (uint32_t p = 0; p < meta_.nhdr_pages; ++p) {
    wal_->AppendPageImage(
        p, std::span<const uint8_t>(meta_buf.data() + static_cast<size_t>(p) * meta_.bsize,
                                    meta_.bsize));
  }
  bool synced = false;
  const Status committed = wal_->Commit(&synced);
  // Whether or not the append succeeded, the frames' holds are now this
  // list's responsibility: a later barrier releases them.
  for (WalPageHandle& handle : pending) {
    wal_held_.push_back(std::move(handle));
  }
  HASHKIT_RETURN_IF_ERROR(committed);
  meta_dirty_ = false;  // the log now carries the authoritative meta image
  if (synced) {
    pool_->ReleaseWalHolds(wal_held_);
    wal_held_.clear();
  }
  return Status::Ok();
}

Status HashTable::WalCommitAndMaybeCheckpoint() {
  if (wal_ == nullptr) {
    return Status::Ok();
  }
  HASHKIT_RETURN_IF_ERROR(WalCommit());
  if (wal_->log_bytes() >= std::max(wal_checkpoint_bytes_, wal_checkpoint_at_)) {
    return Checkpoint();
  }
  return Status::Ok();
}

Status HashTable::Checkpoint() {
  assert(wal_ != nullptr);
  // Close any batch still open, then make the whole log durable.
  HASHKIT_RETURN_IF_ERROR(WalCommit());
  HASHKIT_RETURN_IF_ERROR(wal_->SyncBarrier());
  // Every held image is now covered by a log fsync: writebacks may proceed.
  pool_->ReleaseWalHolds(wal_held_);
  wal_held_.clear();
  // Flush the table itself, then retire the log.  Crash anywhere before
  // the reset and replay reproduces exactly these contents.
  HASHKIT_RETURN_IF_ERROR(WriteMeta());
  HASHKIT_RETURN_IF_ERROR(pool_->FlushAll());
  HASHKIT_RETURN_IF_ERROR(file_->Sync());
  if (SnapshotsActive()) {
    // A live snapshot or backup streams the log by offset: deferring the
    // reset keeps the log append-only (and its LSNs replayable) until the
    // last handle drops.  Everything above still ran, so durability is
    // unaffected — the log is merely longer than usual.  Push the trigger
    // one interval past the current size, or the still-long log would
    // re-run this flush+fsync on every following commit.
    wal_checkpoint_at_ = wal_->log_bytes() + wal_checkpoint_bytes_;
    return Status::Ok();
  }
  wal_checkpoint_at_ = 0;
  return wal_->CheckpointReset();
}

void HashTable::BeginWalBatch() {
  if (wal_ == nullptr) {
    return;
  }
  wal_->SetDeferSync(true);
}

Status HashTable::EndWalBatch() {
  if (wal_ == nullptr) {
    return Status::Ok();
  }
  wal_->SetDeferSync(false);
  if (!wal_->SyncDue()) {
    // No commit in the scope crossed the group-commit threshold; the next
    // un-deferred commit will sync on schedule.
    return Status::Ok();
  }
  HASHKIT_RETURN_IF_ERROR(wal_->SyncBarrier());
  pool_->ReleaseWalHolds(wal_held_);
  wal_held_.clear();
  return Status::Ok();
}

wal::WalStats HashTable::WalStatsSnapshot() const {
  wal::WalStats out;
  if (wal_ != nullptr) {
    out = wal_->Stats();
  }
  out.recovered_batches = wal_recovery_.batches_applied;
  out.recovered_pages = wal_recovery_.pages_applied;
  return out;
}

// ---------------------------------------------------------------------------
// Addressing and page access
// ---------------------------------------------------------------------------

uint32_t HashTable::BucketOf(uint32_t hash) const {
  uint32_t bucket = hash & meta_.high_mask;
  if (bucket > meta_.max_bucket) {
    bucket = hash & meta_.low_mask;
  }
  return bucket;
}

Result<PageRef> HashTable::FetchBucketPage(uint32_t bucket, bool create_new) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef ref, pool_->Get(BucketToPage(meta_, bucket), create_new));
  PreserveForSnapshots(BucketToPage(meta_, bucket), ref.data());
  if (View(ref).data_begin() == 0) {
    // Virgin page (file hole or brand-new bucket): format it.
    PageView::Init(ref.data(), meta_.bsize, PageType::kBucket);
    ref.MarkDirty();
  }
  return ref;
}

Result<PageRef> HashTable::FetchBucketPageRead(uint32_t bucket) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef ref, pool_->Get(BucketToPage(meta_, bucket)));
  // Mutations reach pages through FindPair's read-side fetch too (e.g.
  // RemoveEntryAt); the preserve call no-ops outside a write operation.
  PreserveForSnapshots(BucketToPage(meta_, bucket), ref.data());
  return ref;
}

Result<PageRef> HashTable::FetchOvflPage(uint16_t oaddr, const PageRef* predecessor) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef ref, pool_->Get(OaddrToPage(meta_, oaddr)));
  PreserveForSnapshots(OaddrToPage(meta_, oaddr), ref.data());
  if (View(ref).data_begin() == 0) {
    return Status::Corruption("reference to unformatted overflow page");
  }
  if (predecessor != nullptr) {
    pool_->LinkOverflow(*predecessor, ref);
  }
  return ref;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

Status HashTable::BigKeyEquals(const EntryRef& entry, std::string_view key, bool* equals) {
  *equals = false;
  if (entry.key_len != key.size()) {
    return Status::Ok();
  }
  if (std::memcmp(entry.prefix.data(), key.data(), entry.prefix.size()) != 0) {
    return Status::Ok();
  }
  if (entry.key_len <= entry.prefix.size()) {
    *equals = true;  // the prefix covered the whole key
    return Status::Ok();
  }
  // Stream the chain, comparing segment by segment in place: no key
  // materialization, and the walk stops at the first mismatching segment
  // and never touches the data bytes that follow the key.
  size_t offset = 0;
  uint16_t oaddr = entry.ovfl_addr;
  while (offset < key.size()) {
    if (oaddr == 0) {
      return Status::Corruption("big pair chain truncated");
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, FetchOvflPage(oaddr, nullptr));
    PageView view = View(page);
    if (view.type() != PageType::kBigSegment) {
      return Status::Corruption("big pair chain page has wrong type");
    }
    const size_t used = view.SegUsed();
    if (used == 0 || used > view.SegCapacity()) {
      return Status::Corruption("big pair segment size invalid");
    }
    const size_t cmp = std::min(used, key.size() - offset);
    if (std::memcmp(view.SegData(), key.data() + offset, cmp) != 0) {
      return Status::Ok();
    }
    offset += cmp;
    oaddr = view.ovfl_addr();
  }
  *equals = true;
  return Status::Ok();
}

namespace {

// Filter tallies for one lookup, flushed to the shared counters once on
// every exit path.  Gets run concurrently under the kv layer's shared
// locks, so the shared counters take atomic adds; batching them per
// lookup keeps that off the per-entry path.
struct TagFilterTally {
  uint64_t skipped = 0;
  uint64_t candidates = 0;
  uint64_t false_hits = 0;
  HashTableStats* stats;
  bool enabled;

  TagFilterTally(HashTableStats* s, bool on) : stats(s), enabled(on) {}
  ~TagFilterTally() {
    if (!enabled) {
      return;
    }
    std::atomic_ref<uint64_t>(stats->tag_filter_skips)
        .fetch_add(skipped, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(stats->tag_filter_candidates)
        .fetch_add(candidates, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(stats->tag_filter_false_hits)
        .fetch_add(false_hits, std::memory_order_relaxed);
  }
};

}  // namespace

Status HashTable::FindPair(uint32_t bucket, std::string_view key, uint32_t hash, PageRef* page,
                           uint16_t* index) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef cur, FetchBucketPageRead(bucket));
  if (View(cur).data_begin() == 0) {
    return Status::NotFound();  // virgin page: the bucket is empty
  }
  const uint8_t tag = TagOfHash(hash);
  TagFilterTally tally(&stats_, meta_.version >= kHashVersionV2);
  for (;;) {
    PageView view = View(cur);
    // Kick the next chain page's frame toward the cache before scanning
    // this one, so a chain walk overlaps the probe with the fetch.
    const uint16_t next = view.ovfl_addr();
    if (next != 0) {
      pool_->Prefetch(OaddrToPage(meta_, next));
    }
    const uint16_t n = view.nentries();
    uint16_t visited = 0;
    TagCandidates scan = view.FindCandidates(tag);
    for (uint16_t i = scan.Next(); i != kNoEntry; i = scan.Next()) {
      ++visited;
      const EntryRef entry = view.Entry(i);
      if (entry.big) {
        if (entry.hash == hash) {
          bool eq = false;
          HASHKIT_RETURN_IF_ERROR(BigKeyEquals(entry, key, &eq));
          if (eq) {
            tally.candidates += visited;
            *page = std::move(cur);
            *index = i;
            return Status::Ok();
          }
        }
        ++tally.false_hits;
      } else if (entry.key == key) {
        tally.candidates += visited;
        *page = std::move(cur);
        *index = i;
        return Status::Ok();
      } else {
        ++tally.false_hits;
      }
    }
    tally.candidates += visited;
    tally.skipped += n - visited;
    if (next == 0) {
      return Status::NotFound();
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &cur));
    cur = std::move(succ);
  }
}

Status HashTable::Get(std::string_view key, std::string* value) {
  // Gets may run concurrently from many reader threads (the kv layer's
  // shared-lock path); every other counter mutates under exclusive access.
  std::atomic_ref<uint64_t>(stats_.gets).fetch_add(1, std::memory_order_relaxed);
  const uint32_t hash = HashKey(key);
  const uint32_t bucket = BucketOf(hash);
  // Start pulling the bucket page's header/tag lines while FindPair does
  // its own setup and stripe lookup.
  pool_->Prefetch(BucketToPage(meta_, bucket));
  PageRef page;
  uint16_t index = 0;
  HASHKIT_RETURN_IF_ERROR(FindPair(bucket, key, hash, &page, &index));
  if (value != nullptr) {
    PageView view = View(page);
    const EntryRef entry = view.Entry(index);
    if (entry.big) {
      HASHKIT_RETURN_IF_ERROR(
          ReadBigChain(entry.ovfl_addr, entry.key_len, entry.data_len, nullptr, value));
    } else {
      value->assign(entry.data);
    }
  }
  return Status::Ok();
}

bool HashTable::Contains(std::string_view key) { return Get(key, nullptr).ok(); }

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status HashTable::AddPairRaw(uint32_t bucket, std::string_view key, std::string_view value,
                             uint32_t hash, bool* chain_grew) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef cur, FetchBucketPage(bucket));
  for (;;) {
    PageView view = View(cur);
    if (view.FitsPair(key.size(), value.size())) {
      view.AddPair(key, value, TagOfHash(hash));
      cur.MarkDirty();
      return Status::Ok();
    }
    const uint16_t next = view.ovfl_addr();
    if (next != 0) {
      HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &cur));
      cur = std::move(succ);
      continue;
    }
    // Chain exhausted: append a buddy-in-waiting overflow page.
    HASHKIT_ASSIGN_OR_RETURN(const uint16_t oaddr, ovfl_->Alloc(PageType::kOverflow));
    ++stats_.ovfl_pages_alloced;
    view.set_ovfl_addr(oaddr);
    cur.MarkDirty();
    if (chain_grew != nullptr) {
      *chain_grew = true;
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(oaddr, &cur));
    cur = std::move(succ);
  }
}

Status HashTable::AddStubToBucket(uint32_t bucket, uint16_t first_oaddr, uint32_t hash,
                                  uint32_t key_len, uint32_t data_len,
                                  std::string_view prefix) {
  HASHKIT_ASSIGN_OR_RETURN(PageRef cur, FetchBucketPage(bucket));
  for (;;) {
    PageView view = View(cur);
    if (view.FitsBigStub(prefix.size())) {
      view.AddBigStub(first_oaddr, hash, key_len, data_len, prefix);
      cur.MarkDirty();
      return Status::Ok();
    }
    const uint16_t next = view.ovfl_addr();
    if (next != 0) {
      HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &cur));
      cur = std::move(succ);
      continue;
    }
    HASHKIT_ASSIGN_OR_RETURN(const uint16_t oaddr, ovfl_->Alloc(PageType::kOverflow));
    ++stats_.ovfl_pages_alloced;
    view.set_ovfl_addr(oaddr);
    cur.MarkDirty();
    HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(oaddr, &cur));
    cur = std::move(succ);
  }
}

Status HashTable::AddPair(uint32_t bucket, std::string_view key, std::string_view value,
                          uint32_t hash, bool* chain_grew) {
  *chain_grew = false;
  const bool big =
      !PageView::PairFitsEmptyPage(key.size(), value.size(), meta_.bsize, meta_.version);
  if (!big) {
    return AddPairRaw(bucket, key, value, hash, chain_grew);
  }

  uint16_t big_oaddr = 0;
  HASHKIT_RETURN_IF_ERROR(WriteBigChain(key, value, &big_oaddr));
  const std::string_view prefix =
      key.substr(0, std::min(key.size(), MaxBigStubPrefix(meta_.bsize, meta_.version)));
  const Status placed =
      AddStubToBucket(bucket, big_oaddr, hash, static_cast<uint32_t>(key.size()),
                      static_cast<uint32_t>(value.size()), prefix);
  if (!placed.ok()) {
    (void)FreeBigChain(big_oaddr);  // do not leak the already-written chain
    return placed;
  }
  ++stats_.big_pairs_stored;
  return Status::Ok();
}

Status HashTable::Put(std::string_view key, std::string_view value, bool overwrite) {
  WriteOpScope write_scope(this);
  const uint32_t hash = HashKey(key);
  uint32_t bucket = BucketOf(hash);

  {
    PageRef page;
    uint16_t index = 0;
    const Status found = FindPair(bucket, key, hash, &page, &index);
    if (found.ok()) {
      if (!overwrite) {
        return Status::Exists();
      }
      HASHKIT_RETURN_IF_ERROR(RemoveEntryAt(bucket, std::move(page), index));
    } else if (!found.IsNotFound()) {
      return found;
    }
  }

  bool chain_grew = false;
  Status added = AddPair(bucket, key, value, hash, &chain_grew);
  // The 16-bit overflow address space at the current split point (2^11
  // pages, as in the paper) can run dry under extreme bucket-size /
  // fill-factor combinations.  Splitting reclaims chains and eventually
  // advances the split point, so force expansions and retry.
  for (int forced = 0; added.IsFull() && forced < 64; ++forced) {
    HASHKIT_RETURN_IF_ERROR(Expand());
    // The forced split may have rehomed this key's bucket.
    bucket = BucketOf(hash);
    added = AddPair(bucket, key, value, hash, &chain_grew);
  }
  HASHKIT_RETURN_IF_ERROR(added);
  ++meta_.nkeys;
  meta_dirty_ = true;
  ++stats_.puts;

  bool expand = false;
  switch (split_policy_) {
    case SplitPolicy::kHybrid:
      expand = chain_grew || OverFillFactor();
      break;
    case SplitPolicy::kControlledOnly:
      expand = OverFillFactor();
      break;
    case SplitPolicy::kUncontrolledOnly:
      expand = chain_grew;
      break;
  }
  if (expand) {
    HASHKIT_RETURN_IF_ERROR(Expand());
  }
  return WalCommitAndMaybeCheckpoint();
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

Status HashTable::RemoveEntryAt(uint32_t bucket, PageRef page, uint16_t index) {
  (void)bucket;
  PageView view = View(page);
  const EntryRef entry = view.Entry(index);
  uint16_t big_chain = 0;
  if (entry.big) {
    big_chain = entry.ovfl_addr;
  }
  view.RemoveEntry(index);
  page.MarkDirty();
  page.Release();
  if (big_chain != 0) {
    HASHKIT_RETURN_IF_ERROR(FreeBigChain(big_chain));
  }
  --meta_.nkeys;
  meta_dirty_ = true;
  // Empty overflow pages are not unlinked here; the paper reclaims them
  // when the bucket later splits.
  return Status::Ok();
}

Status HashTable::Delete(std::string_view key) {
  WriteOpScope write_scope(this);
  const uint32_t hash = HashKey(key);
  const uint32_t bucket = BucketOf(hash);
  PageRef page;
  uint16_t index = 0;
  HASHKIT_RETURN_IF_ERROR(FindPair(bucket, key, hash, &page, &index));
  HASHKIT_RETURN_IF_ERROR(RemoveEntryAt(bucket, std::move(page), index));
  ++stats_.deletes;
  // Optional extension: reverse one split when load drops far enough
  // (ffactor/4 gives 4x hysteresis against the split threshold).
  if (auto_contract_ && meta_.max_bucket > 0 &&
      meta_.nkeys * 4 < static_cast<uint64_t>(meta_.ffactor) * (meta_.max_bucket + 1)) {
    HASHKIT_RETURN_IF_ERROR(Contract());
  }
  return WalCommitAndMaybeCheckpoint();
}

Status HashTable::Contract() {
  WriteOpScope write_scope(this);
  if (meta_.max_bucket == 0) {
    return Status::NotFound("table is already a single bucket");
  }
  const uint32_t victim = meta_.max_bucket;
  const uint32_t buddy = victim & meta_.low_mask;

  // Copy the victim bucket's pairs out and release its pages.
  struct Moved {
    bool big = false;
    std::string key;
    std::string data;
    uint16_t oaddr = 0;
    uint32_t hash = 0;
    uint32_t key_len = 0;
    uint32_t data_len = 0;
    std::string prefix;
  };
  std::vector<Moved> pairs;
  std::vector<uint16_t> chain_pages;
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef cur, FetchBucketPage(victim));
    for (;;) {
      PageView view = View(cur);
      const uint16_t n = view.nentries();
      for (uint16_t i = 0; i < n; ++i) {
        const EntryRef entry = view.Entry(i);
        Moved moved;
        if (entry.big) {
          moved.big = true;
          moved.oaddr = entry.ovfl_addr;
          moved.hash = entry.hash;
          moved.key_len = entry.key_len;
          moved.data_len = entry.data_len;
          moved.prefix.assign(entry.prefix);
        } else {
          moved.key.assign(entry.key);
          moved.data.assign(entry.data);
          moved.hash = HashKey(moved.key);
        }
        pairs.push_back(std::move(moved));
      }
      const uint16_t next = view.ovfl_addr();
      if (next == 0) {
        break;
      }
      chain_pages.push_back(next);
      HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &cur));
      cur = std::move(succ);
    }
  }
  for (const uint16_t oaddr : chain_pages) {
    HASHKIT_RETURN_IF_ERROR(ovfl_->Free(oaddr));
    ++stats_.ovfl_pages_freed;
  }
  {
    // Leave the abandoned primary page formatted-empty so a future
    // re-split of this bucket never resurrects stale entries.
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, FetchBucketPage(victim));
    PageView::Init(page.data(), meta_.bsize, PageType::kBucket);
    page.MarkDirty();
  }

  // Reverse the split bookkeeping (mirror of Expand).
  meta_.max_bucket = victim - 1;
  if (victim == meta_.low_mask + 1) {
    // Generation boundary: the masks shrink too.
    meta_.low_mask >>= 1;
    meta_.high_mask = (meta_.low_mask << 1) | 1;
  }
  meta_dirty_ = true;

  // Re-home the pairs; under the shrunk masks they all land in the buddy.
  for (const Moved& moved : pairs) {
    const uint32_t target = BucketOf(moved.hash);
    assert(target == buddy);
    (void)buddy;
    bool chain_grew = false;
    if (moved.big) {
      HASHKIT_RETURN_IF_ERROR(
          AddStubToBucket(target, moved.oaddr, moved.hash, moved.key_len, moved.data_len,
                          moved.prefix));
    } else {
      HASHKIT_RETURN_IF_ERROR(AddPairRaw(target, moved.key, moved.data, moved.hash, &chain_grew));
    }
  }
  ++stats_.contractions;
  return WalCommitAndMaybeCheckpoint();
}

// ---------------------------------------------------------------------------
// Big key/data pairs
// ---------------------------------------------------------------------------

Status HashTable::WriteBigChain(std::string_view key, std::string_view value,
                                uint16_t* first_oaddr) {
  const size_t total = key.size() + value.size();
  const size_t cap = meta_.bsize - kPageHeaderSize;
  // Reads byte `i` of the conceptual key||value stream.
  auto stream_copy = [&](size_t offset, uint8_t* dst, size_t len) {
    size_t copied = 0;
    if (offset < key.size()) {
      const size_t from_key = std::min(len, key.size() - offset);
      std::memcpy(dst, key.data() + offset, from_key);
      copied += from_key;
    }
    if (copied < len) {
      const size_t voff = offset + copied - key.size();
      std::memcpy(dst + copied, value.data() + voff, len - copied);
    }
  };

  *first_oaddr = 0;
  PageRef prev;
  size_t offset = 0;
  do {
    auto alloc = ovfl_->Alloc(PageType::kBigSegment);
    if (!alloc.ok()) {
      // Unwind the partial chain so no pages leak.
      prev.Release();
      if (*first_oaddr != 0) {
        (void)FreeBigChain(*first_oaddr);
        *first_oaddr = 0;
      }
      return alloc.status();
    }
    const uint16_t oaddr = alloc.value();
    ++stats_.ovfl_pages_alloced;
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(OaddrToPage(meta_, oaddr)));
    if (*first_oaddr == 0) {
      *first_oaddr = oaddr;
    } else {
      PageView prev_view = View(prev);
      prev_view.set_ovfl_addr(oaddr);
      prev.MarkDirty();
      // Note: big-pair segments are deliberately NOT chain-linked in the
      // buffer pool.  The paper's evict-with-predecessor rule exists for
      // bucket overflow chains (short, reused); linking a multi-thousand
      // page big-value chain would make every resident segment
      // unevictable while the chain tail is pinned, ballooning the pool
      // and making eviction scans quadratic.
    }
    PageView view = View(page);
    const size_t chunk = std::min(cap, total - offset);
    stream_copy(offset, view.SegData(), chunk);
    view.SetSegUsed(static_cast<uint16_t>(chunk));
    page.MarkDirty();
    offset += chunk;
    prev = std::move(page);
  } while (offset < total);
  return Status::Ok();
}

Status HashTable::ReadBigChain(uint16_t first_oaddr, uint32_t key_len, uint32_t data_len,
                               std::string* key_out, std::string* value_out) {
  const size_t total = static_cast<size_t>(key_len) + data_len;
  if (key_out != nullptr) {
    key_out->clear();
    key_out->reserve(key_len);
  }
  if (value_out != nullptr) {
    value_out->clear();
    value_out->reserve(data_len);
  }
  size_t offset = 0;
  uint16_t oaddr = first_oaddr;
  while (offset < total) {
    if (oaddr == 0) {
      return Status::Corruption("big pair chain truncated");
    }
    // Fetched without a pool chain-link (see WriteBigChain).
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, FetchOvflPage(oaddr, nullptr));
    PageView view = View(page);
    if (view.type() != PageType::kBigSegment) {
      return Status::Corruption("big pair chain page has wrong type");
    }
    const size_t used = view.SegUsed();
    if (used == 0 || used > view.SegCapacity() || offset + used > total) {
      return Status::Corruption("big pair segment size invalid");
    }
    // Split the segment at the key/value boundary and append each side in
    // one bulk copy.
    const auto* bytes = reinterpret_cast<const char*>(view.SegData());
    size_t i = 0;
    if (offset < key_len) {
      const size_t from_key = std::min(used, static_cast<size_t>(key_len) - offset);
      if (key_out != nullptr) {
        key_out->append(bytes, from_key);
      }
      i = from_key;
    }
    if (i < used && value_out != nullptr) {
      value_out->append(bytes + i, used - i);
    }
    offset += used;
    // Reading only the key?  Stop as soon as it is complete.
    if (value_out == nullptr && offset >= key_len) {
      return Status::Ok();
    }
    oaddr = view.ovfl_addr();
  }
  return Status::Ok();
}

Status HashTable::FreeBigChain(uint16_t first_oaddr) {
  std::vector<uint16_t> chain;
  uint16_t oaddr = first_oaddr;
  while (oaddr != 0) {
    HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(OaddrToPage(meta_, oaddr)));
    PageView view = View(page);
    if (view.type() != PageType::kBigSegment) {
      return Status::Corruption("big pair chain page has wrong type");
    }
    chain.push_back(oaddr);
    oaddr = view.ovfl_addr();
    if (chain.size() > (1u << 20)) {
      return Status::Corruption("big pair chain cycle");
    }
  }
  for (const uint16_t addr : chain) {
    HASHKIT_RETURN_IF_ERROR(ovfl_->Free(addr));
    ++stats_.ovfl_pages_freed;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Splitting
// ---------------------------------------------------------------------------

Status HashTable::Expand() {
  if ((meta_.max_bucket + 1) & 0x80000000u) {
    return Status::Full("table reached maximum bucket count");
  }
  const uint32_t new_bucket = meta_.max_bucket + 1;
  meta_.max_bucket = new_bucket;
  if (new_bucket > meta_.high_mask) {
    // Generation boundary: the table size doubles.
    meta_.low_mask = meta_.high_mask;
    meta_.high_mask = (new_bucket << 1) - 1;
  }
  const uint32_t old_bucket = new_bucket & meta_.low_mask;
  meta_dirty_ = true;
  HASHKIT_RETURN_IF_ERROR(SplitBucket(old_bucket, new_bucket));
  ++stats_.splits;
  return Status::Ok();
}

Status HashTable::SplitBucket(uint32_t old_bucket, uint32_t new_bucket) {
  // Everything currently stored in the old bucket, copied out so the pages
  // can be recycled before redistribution.
  struct Moved {
    bool big = false;
    std::string key;     // regular: full key
    std::string data;    // regular: full data
    uint16_t oaddr = 0;  // big: first chain segment (chain is preserved)
    uint32_t hash = 0;
    uint32_t key_len = 0;
    uint32_t data_len = 0;
    std::string prefix;  // big: stored key prefix
  };
  std::vector<Moved> pairs;
  std::vector<uint16_t> chain_pages;

  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef cur, FetchBucketPage(old_bucket));
    for (;;) {
      PageView view = View(cur);
      const uint16_t n = view.nentries();
      for (uint16_t i = 0; i < n; ++i) {
        const EntryRef entry = view.Entry(i);
        Moved moved;
        if (entry.big) {
          moved.big = true;
          moved.oaddr = entry.ovfl_addr;
          moved.hash = entry.hash;
          moved.key_len = entry.key_len;
          moved.data_len = entry.data_len;
          moved.prefix.assign(entry.prefix);
        } else {
          moved.key.assign(entry.key);
          moved.data.assign(entry.data);
          moved.hash = HashKey(moved.key);
        }
        pairs.push_back(std::move(moved));
      }
      const uint16_t next = view.ovfl_addr();
      if (next == 0) {
        break;
      }
      chain_pages.push_back(next);
      HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &cur));
      cur = std::move(succ);
    }
  }

  // Reclaim the old chain (the paper: overflow pages "are reclaimed, if
  // possible, when the bucket later splits") and reset both primary pages.
  for (const uint16_t oaddr : chain_pages) {
    HASHKIT_RETURN_IF_ERROR(ovfl_->Free(oaddr));
    ++stats_.ovfl_pages_freed;
  }
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef old_page, FetchBucketPage(old_bucket));
    PageView::Init(old_page.data(), meta_.bsize, PageType::kBucket);
    old_page.MarkDirty();
  }
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef new_page, FetchBucketPage(new_bucket, /*create_new=*/true));
    (void)new_page;  // FetchBucketPage formatted it
  }

  // Redistribute.  Masks were already advanced by Expand, so BucketOf sends
  // every pair to either the old or the new bucket.  Big pairs' chains are
  // untouched; only their stubs move.
  for (const Moved& moved : pairs) {
    const uint32_t target = BucketOf(moved.hash);
    assert(target == old_bucket || target == new_bucket);
    if (moved.big) {
      HASHKIT_RETURN_IF_ERROR(AddStubToBucket(target, moved.oaddr, moved.hash, moved.key_len,
                                              moved.data_len, moved.prefix));
    } else {
      HASHKIT_RETURN_IF_ERROR(AddPairRaw(target, moved.key, moved.data, moved.hash, nullptr));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Sequential scan
// ---------------------------------------------------------------------------

void Cursor::Reset() {
  started_ = false;
  bucket_ = 0;
  page_oaddr_ = 0;
  entry_ = 0;
}

Status Cursor::Next(std::string* key, std::string* value) {
  if (!started_) {
    Reset();
    started_ = true;
  }
  HashTable& t = *table_;
  for (;;) {
    if (bucket_ > t.meta_.max_bucket) {
      return Status::NotFound("end of table");
    }
    PageRef page;
    if (page_oaddr_ == 0) {
      // Read-side fetch: a virgin page scans as zero entries, no overflow.
      HASHKIT_ASSIGN_OR_RETURN(page, t.FetchBucketPageRead(bucket_));
    } else {
      HASHKIT_ASSIGN_OR_RETURN(page, t.FetchOvflPage(page_oaddr_, nullptr));
    }
    PageView view = t.View(page);
    if (entry_ < view.nentries()) {
      const EntryRef e = view.Entry(entry_);
      ++entry_;
      if (e.big) {
        HASHKIT_RETURN_IF_ERROR(t.ReadBigChain(e.ovfl_addr, e.key_len, e.data_len, key, value));
      } else {
        if (key != nullptr) {
          key->assign(e.key);
        }
        if (value != nullptr) {
          value->assign(e.data);
        }
      }
      return Status::Ok();
    }
    const uint16_t next = view.ovfl_addr();
    entry_ = 0;
    if (next != 0) {
      page_oaddr_ = next;
    } else {
      page_oaddr_ = 0;
      ++bucket_;
    }
  }
}

Status HashTable::Seq(std::string* key, std::string* value, bool first) {
  if (first) {
    seq_cursor_.Reset();
  }
  return seq_cursor_.Next(key, value);
}

// ---------------------------------------------------------------------------
// Snapshots, online backup, replication (hashkit-mvcc)
// ---------------------------------------------------------------------------

std::shared_ptr<TableSnapshot> HashTable::CreateSnapshot() {
  auto snap = std::make_shared<TableSnapshot>();
  snap->meta_ = meta_;
  snap->lsn_ = WalLsn();
  snap->page_count_ = file_->PageCount();
  // Exclusive access here: prune handles dropped since the last snapshot.
  std::erase_if(snapshots_,
                [](const std::weak_ptr<TableSnapshot>& w) { return w.expired(); });
  snapshots_.push_back(snap);
  return snap;
}

bool HashTable::SnapshotsActive() const {
  for (const std::weak_ptr<TableSnapshot>& w : snapshots_) {
    if (!w.expired()) {
      return true;
    }
  }
  return false;
}

void HashTable::PreserveForSnapshots(uint64_t pageno, const uint8_t* data) {
  if (!in_write_op_ || snapshots_.empty()) {
    return;
  }
  bool any_alive = false;
  for (std::weak_ptr<TableSnapshot>& w : snapshots_) {
    std::shared_ptr<TableSnapshot> snap = w.lock();
    if (snap == nullptr) {
      continue;
    }
    any_alive = true;
    // First touch since this snapshot wins; later writes to the same page
    // must not replace the pre-image.
    auto [it, inserted] = snap->pages_.try_emplace(pageno);
    if (inserted) {
      it->second.assign(data, data + meta_.bsize);
    }
  }
  if (!any_alive) {
    snapshots_.clear();
  }
}

Result<const uint8_t*> HashTable::SnapshotPage(const TableSnapshot& snap, uint64_t pageno,
                                               PageRef* ref) {
  const auto it = snap.pages_.find(pageno);
  if (it != snap.pages_.end()) {
    return it->second.data();
  }
  // Not dirtied since the snapshot: the live page IS the snapshot page.
  // (A page the writer created after the snapshot never lands here — its
  // creation preserved the pre-image, zeros included, into the map.)
  HASHKIT_ASSIGN_OR_RETURN(*ref, pool_->Get(pageno));
  return ref->data();
}

void SnapshotCursor::Reset() {
  started_ = false;
  bucket_ = 0;
  page_oaddr_ = 0;
  entry_ = 0;
}

Status SnapshotCursor::Next(std::string* key, std::string* value) {
  if (!started_) {
    Reset();
    started_ = true;
  }
  HashTable& t = *table_;
  const Meta& m = snap_->meta_;
  for (;;) {
    if (bucket_ > m.max_bucket) {
      return Status::NotFound("end of snapshot");
    }
    const uint64_t pageno =
        page_oaddr_ == 0 ? BucketToPage(m, bucket_) : OaddrToPage(m, page_oaddr_);
    PageRef pin;
    HASHKIT_ASSIGN_OR_RETURN(const uint8_t* data, t.SnapshotPage(*snap_, pageno, &pin));
    PageView view(const_cast<uint8_t*>(data), m.bsize, m.version);
    if (page_oaddr_ != 0 && view.data_begin() == 0) {
      return Status::Corruption("snapshot chain references unformatted overflow page");
    }
    // A virgin primary page reads as zero entries / no overflow and simply
    // advances the bucket below, exactly like the live cursor.
    if (entry_ < view.nentries()) {
      const EntryRef e = view.Entry(entry_);
      ++entry_;
      if (e.big) {
        HASHKIT_RETURN_IF_ERROR(ReadBigChain(e.ovfl_addr, e.key_len, e.data_len, key, value));
      } else {
        if (key != nullptr) {
          key->assign(e.key);
        }
        if (value != nullptr) {
          value->assign(e.data);
        }
      }
      return Status::Ok();
    }
    const uint16_t next = view.ovfl_addr();
    entry_ = 0;
    if (next != 0) {
      page_oaddr_ = next;
    } else {
      page_oaddr_ = 0;
      ++bucket_;
    }
  }
}

Status SnapshotCursor::ReadBigChain(uint16_t first_oaddr, uint32_t key_len, uint32_t data_len,
                                    std::string* key_out, std::string* value_out) {
  HashTable& t = *table_;
  const Meta& m = snap_->meta_;
  const size_t total = static_cast<size_t>(key_len) + data_len;
  if (key_out != nullptr) {
    key_out->clear();
    key_out->reserve(key_len);
  }
  if (value_out != nullptr) {
    value_out->clear();
    value_out->reserve(data_len);
  }
  size_t offset = 0;
  uint16_t oaddr = first_oaddr;
  while (offset < total) {
    if (oaddr == 0) {
      return Status::Corruption("snapshot big pair chain truncated");
    }
    PageRef pin;
    HASHKIT_ASSIGN_OR_RETURN(const uint8_t* data,
                             t.SnapshotPage(*snap_, OaddrToPage(m, oaddr), &pin));
    PageView view(const_cast<uint8_t*>(data), m.bsize, m.version);
    if (view.type() != PageType::kBigSegment) {
      return Status::Corruption("snapshot big pair chain page has wrong type");
    }
    const size_t used = view.SegUsed();
    if (used == 0 || used > view.SegCapacity() || offset + used > total) {
      return Status::Corruption("snapshot big pair segment size invalid");
    }
    const auto* bytes = reinterpret_cast<const char*>(view.SegData());
    size_t i = 0;
    if (offset < key_len) {
      const size_t from_key = std::min(used, static_cast<size_t>(key_len) - offset);
      if (key_out != nullptr) {
        key_out->append(bytes, from_key);
      }
      i = from_key;
    }
    if (i < used && value_out != nullptr) {
      value_out->append(bytes + i, used - i);
    }
    offset += used;
    oaddr = view.ovfl_addr();
  }
  return Status::Ok();
}

Result<HashTable::BackupInfo> HashTable::BackupBegin() {
  if (wal_ == nullptr) {
    return Status::Unsupported("online backup requires a write-ahead log");
  }
  if (backup_snap_ != nullptr) {
    return Status::Exists("a backup is already in progress");
  }
  // Flush everything so the main file is complete on disk, THEN pin the
  // snapshot (pinning first would defer this very checkpoint).  From here
  // the log only appends until BackupEnd.
  HASHKIT_RETURN_IF_ERROR(Checkpoint());
  backup_snap_ = CreateSnapshot();
  BackupInfo info;
  info.page_size = meta_.bsize;
  info.page_count = backup_snap_->page_count();
  info.lsn = backup_snap_->lsn();
  return info;
}

Status HashTable::BackupReadPages(uint64_t first_page, uint32_t count, std::string* out) {
  if (backup_snap_ == nullptr) {
    return Status::InvalidArgument("no backup in progress");
  }
  out->clear();
  const uint64_t end = std::min<uint64_t>(first_page + count, backup_snap_->page_count());
  if (first_page >= end) {
    return Status::Ok();
  }
  out->reserve(static_cast<size_t>(end - first_page) * meta_.bsize);
  std::vector<uint8_t> hdr(meta_.bsize);
  for (uint64_t p = first_page; p < end; ++p) {
    if (p < meta_.nhdr_pages) {
      // Header pages bypass the buffer pool everywhere else; reading them
      // through it here would leave frames that later checkpoints (which
      // write the file directly) silently invalidate.  The file's copy is
      // the checkpoint image — exactly the snapshot's state.
      HASHKIT_RETURN_IF_ERROR(file_->ReadPage(p, std::span<uint8_t>(hdr)));
      out->append(reinterpret_cast<const char*>(hdr.data()), meta_.bsize);
      continue;
    }
    PageRef pin;
    HASHKIT_ASSIGN_OR_RETURN(const uint8_t* data, SnapshotPage(*backup_snap_, p, &pin));
    out->append(reinterpret_cast<const char*>(data), meta_.bsize);
  }
  return Status::Ok();
}

Status HashTable::BackupReadWal(uint64_t offset, uint32_t max_bytes, std::string* out,
                                uint64_t* total) {
  if (wal_ == nullptr) {
    return Status::Unsupported("table has no write-ahead log");
  }
  std::vector<uint8_t> bytes;
  HASHKIT_RETURN_IF_ERROR(wal_->storage()->ReadAll(&bytes));
  *total = bytes.size();
  out->clear();
  if (offset < bytes.size()) {
    const size_t n = std::min<size_t>(max_bytes, bytes.size() - offset);
    out->assign(reinterpret_cast<const char*>(bytes.data()) + offset, n);
  }
  return Status::Ok();
}

void HashTable::BackupEnd() { backup_snap_.reset(); }

Status HashTable::ReplicationRead(uint64_t from_lsn, std::string* out, uint64_t* last_lsn) {
  if (wal_ == nullptr) {
    return Status::Unsupported("table has no write-ahead log");
  }
  *last_lsn = wal_->last_seq();
  out->clear();
  if (*last_lsn <= from_lsn) {
    return Status::Ok();
  }
  // Ship the whole current log; ApplyRedo skips the commits the replica
  // already holds and detects checkpoint gaps.
  std::vector<uint8_t> bytes;
  HASHKIT_RETURN_IF_ERROR(wal_->storage()->ReadAll(&bytes));
  out->assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return Status::Ok();
}

Status HashTable::ApplyRedo(std::span<const uint8_t> log_bytes, uint64_t from_lsn,
                            uint64_t* applied_through) {
  *applied_through = from_lsn;
  wal::LogReader reader(log_bytes);
  HASHKIT_ASSIGN_OR_RETURN(const uint32_t log_psize, reader.ReadHeader());
  if (log_psize != meta_.bsize) {
    return Status::Corruption("replication stream page size does not match this table");
  }
  std::vector<uint8_t> meta_buf(static_cast<size_t>(meta_.nhdr_pages) * meta_.bsize, 0);
  EncodeMeta(meta_, meta_buf);
  bool meta_changed = false;
  uint64_t applied = from_lsn;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> batch;
  wal::WalRecord rec;
  while (reader.Next(&rec)) {
    switch (rec.type) {
      case wal::WalRecordType::kPageImage:
        batch.emplace_back(rec.pageno,
                           std::vector<uint8_t>(rec.image.begin(), rec.image.end()));
        break;
      case wal::WalRecordType::kCommit: {
        if (rec.seq <= applied) {
          batch.clear();  // the replica already holds this commit
          break;
        }
        if (rec.seq != applied + 1) {
          return Status::Corruption("replication stream skipped a commit sequence");
        }
        for (const auto& [pageno, image] : batch) {
          if (pageno < meta_.nhdr_pages) {
            std::memcpy(meta_buf.data() + static_cast<size_t>(pageno) * meta_.bsize,
                        image.data(), meta_.bsize);
            meta_changed = true;
          } else {
            HASHKIT_ASSIGN_OR_RETURN(PageRef ref, pool_->Get(pageno, /*create_new=*/true));
            std::memcpy(ref.data(), image.data(), meta_.bsize);
            ref.MarkDirty();
          }
        }
        batch.clear();
        applied = rec.seq;
        break;
      }
      case wal::WalRecordType::kCheckpoint:
        if (rec.seq > applied) {
          // The primary truncated its log past our position: the commits
          // in between are gone.  The replica must re-bootstrap from a
          // fresh backup.
          return Status::NotFound("replication gap: primary checkpointed past replica LSN");
        }
        batch.clear();
        break;
    }
  }
  if (meta_changed) {
    HASHKIT_ASSIGN_OR_RETURN(meta_, DecodeMeta(meta_buf));
    meta_dirty_ = true;
  }
  if (applied != from_lsn) {
    HASHKIT_RETURN_IF_ERROR(WriteMeta());
    HASHKIT_RETURN_IF_ERROR(pool_->FlushAll());
    HASHKIT_RETURN_IF_ERROR(file_->Sync());
  }
  *applied_through = applied;
  return Status::Ok();
}

uint64_t HashTable::WalLsn() const { return wal_ != nullptr ? wal_->last_seq() : 0; }

HashTableStats HashTable::StatsSnapshot() const {
  HashTableStats s;
  // `gets` is bumped by concurrent readers; everything else only changes
  // under exclusive access, which the caller's shared lock excludes.
  s.gets = std::atomic_ref<uint64_t>(const_cast<uint64_t&>(stats_.gets))
               .load(std::memory_order_relaxed);
  s.tag_filter_skips = std::atomic_ref<uint64_t>(const_cast<uint64_t&>(stats_.tag_filter_skips))
                           .load(std::memory_order_relaxed);
  s.tag_filter_candidates =
      std::atomic_ref<uint64_t>(const_cast<uint64_t&>(stats_.tag_filter_candidates))
          .load(std::memory_order_relaxed);
  s.tag_filter_false_hits =
      std::atomic_ref<uint64_t>(const_cast<uint64_t&>(stats_.tag_filter_false_hits))
          .load(std::memory_order_relaxed);
  s.puts = stats_.puts;
  s.deletes = stats_.deletes;
  s.splits = stats_.splits;
  s.contractions = stats_.contractions;
  s.ovfl_pages_alloced = stats_.ovfl_pages_alloced;
  s.ovfl_pages_freed = stats_.ovfl_pages_freed;
  s.big_pairs_stored = stats_.big_pairs_stored;
  return s;
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

Result<HashTable::Analysis> HashTable::Analyze() {
  Analysis a;
  a.buckets = meta_.max_bucket + 1;
  a.keys = meta_.nkeys;
  const size_t usable =
      meta_.bsize - kPageHeaderSize - PageTagCapacity(meta_.bsize, meta_.version);
  uint64_t pages_counted = 0;
  uint64_t pair_bytes = 0;
  uint64_t total_pair_len = 0;

  for (uint32_t bucket = 0; bucket <= meta_.max_bucket; ++bucket) {
    uint32_t chain_len = 0;
    uint64_t bucket_keys = 0;
    HASHKIT_ASSIGN_OR_RETURN(PageRef cur, FetchBucketPage(bucket));
    for (;;) {
      PageView view = View(cur);
      ++pages_counted;
      pair_bytes += usable - view.FreeSpace();
      bucket_keys += view.nentries();
      for (uint16_t i = 0; i < view.nentries(); ++i) {
        const EntryRef entry = view.Entry(i);
        if (entry.big) {
          total_pair_len += static_cast<uint64_t>(entry.key_len) + entry.data_len;
          // Count the chain pages without reading them.
          const size_t cap = meta_.bsize - kPageHeaderSize;
          a.big_pair_pages +=
              (static_cast<uint64_t>(entry.key_len) + entry.data_len + cap - 1) / cap;
        } else {
          total_pair_len += entry.key.size() + entry.data.size();
        }
      }
      const uint16_t next = view.ovfl_addr();
      if (next == 0) {
        break;
      }
      ++chain_len;
      HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &cur));
      cur = std::move(succ);
    }
    a.overflow_pages += chain_len;
    a.max_chain_pages = std::max(a.max_chain_pages, chain_len);
    if (bucket_keys == 0) {
      ++a.empty_buckets;
    }
  }
  a.avg_keys_per_bucket = static_cast<double>(a.keys) / a.buckets;
  a.avg_bytes_per_page =
      pages_counted == 0
          ? 0.0
          : static_cast<double>(pair_bytes) / (static_cast<double>(pages_counted) * usable);
  if (a.keys > 0) {
    const double avg_pair = static_cast<double>(total_pair_len) / static_cast<double>(a.keys);
    // Per-entry overhead: a 4-byte index slot, plus a tag byte on v2 pages.
    const double slot = meta_.version >= kHashVersionV2 ? 5.0 : 4.0;
    a.eq1_ffactor = static_cast<double>(meta_.bsize) / (avg_pair + slot);
  }
  return a;
}

// ---------------------------------------------------------------------------
// Integrity checking
// ---------------------------------------------------------------------------

Status HashTable::CheckIntegrity() {
  if (meta_.high_mask != (meta_.low_mask << 1 | 1)) {
    return Status::Corruption("mask invariant violated");
  }
  if (meta_.max_bucket < meta_.low_mask || meta_.max_bucket > meta_.high_mask) {
    return Status::Corruption("max_bucket outside mask range");
  }
  for (uint32_t sp = 1; sp < kMaxSplitPoints; ++sp) {
    if (meta_.spares[sp] < meta_.spares[sp - 1]) {
      return Status::Corruption("spares[] not monotone");
    }
  }

  uint64_t key_count = 0;
  std::set<uint16_t> seen;  // every overflow address referenced anywhere
  for (uint32_t sp = 0; sp < kMaxSplitPoints; ++sp) {
    if (meta_.bitmaps[sp] != 0) {
      if (!seen.insert(meta_.bitmaps[sp]).second) {
        return Status::Corruption("bitmap oaddr duplicated");
      }
    }
  }

  for (uint32_t bucket = 0; bucket <= meta_.max_bucket; ++bucket) {
    uint16_t cur_oaddr = 0;
    PageRef page;
    {
      HASHKIT_ASSIGN_OR_RETURN(PageRef p, FetchBucketPage(bucket));
      page = std::move(p);
    }
    for (;;) {
      PageView view = View(page);
      if (!view.Validate()) {
        return Status::Corruption("page failed validation");
      }
      const PageType expect = cur_oaddr == 0 ? PageType::kBucket : PageType::kOverflow;
      if (view.type() != expect) {
        return Status::Corruption("page has unexpected type");
      }
      const uint16_t n = view.nentries();
      for (uint16_t i = 0; i < n; ++i) {
        const EntryRef e = view.Entry(i);
        uint32_t h;
        if (e.big) {
          std::string big_key;
          HASHKIT_RETURN_IF_ERROR(ReadBigChain(e.ovfl_addr, e.key_len, e.data_len, &big_key,
                                               nullptr));
          h = HashKey(big_key);
          if (h != e.hash) {
            return Status::Corruption("big stub hash does not match key");
          }
          if (big_key.size() != e.key_len) {
            return Status::Corruption("big key length mismatch");
          }
          // Walk the chain, checking allocation bits and accounting pages.
          uint16_t seg = e.ovfl_addr;
          size_t total = 0;
          while (seg != 0) {
            if (!seen.insert(seg).second) {
              return Status::Corruption("overflow page referenced twice");
            }
            HASHKIT_ASSIGN_OR_RETURN(const bool allocated, ovfl_->IsAllocated(seg));
            if (!allocated) {
              return Status::Corruption("big chain page not marked allocated");
            }
            HASHKIT_ASSIGN_OR_RETURN(PageRef seg_page, pool_->Get(OaddrToPage(meta_, seg)));
            PageView seg_view = View(seg_page);
            if (seg_view.type() != PageType::kBigSegment) {
              return Status::Corruption("big chain page has wrong type");
            }
            total += seg_view.SegUsed();
            seg = seg_view.ovfl_addr();
          }
          if (total != static_cast<size_t>(e.key_len) + e.data_len) {
            return Status::Corruption("big chain byte count mismatch");
          }
        } else {
          h = HashKey(std::string(e.key));
        }
        if (BucketOf(h) != bucket) {
          return Status::Corruption("key stored in wrong bucket");
        }
        if (meta_.version >= kHashVersionV2 && view.tag(i) != TagOfHash(h)) {
          return Status::Corruption("tag array inconsistent with entry");
        }
        ++key_count;
      }
      const uint16_t next = view.ovfl_addr();
      if (next == 0) {
        break;
      }
      if (!seen.insert(next).second) {
        return Status::Corruption("overflow page referenced twice");
      }
      HASHKIT_ASSIGN_OR_RETURN(const bool allocated, ovfl_->IsAllocated(next));
      if (!allocated) {
        return Status::Corruption("chain page not marked allocated");
      }
      HASHKIT_ASSIGN_OR_RETURN(PageRef succ, FetchOvflPage(next, &page));
      page = std::move(succ);
      cur_oaddr = next;
    }
  }

  if (key_count != meta_.nkeys) {
    return Status::Corruption("key count does not match header");
  }
  HASHKIT_ASSIGN_OR_RETURN(const uint64_t in_use, ovfl_->CountInUse());
  if (in_use != seen.size()) {
    return Status::Corruption("bitmap population does not match referenced pages");
  }
  return Status::Ok();
}

}  // namespace hashkit
