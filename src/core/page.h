// hashkit: on-page key/data layout.
//
// A format-v1 page is:
//
//   +0   u16 nentries
//   +2   u16 data_begin   (lowest byte used by pair storage; == bsize when empty)
//   +4   u16 ovfl_addr    (overflow address of the next page in the chain; 0 = none)
//   +6   u16 type         (PageType)
//   +8   u16 key_off[0], u16 data_off[0], key_off[1], ...   (index, grows up)
//   ...
//        pair bytes                                          (grows down)
//   +bsize
//
// Pair i's key occupies [key_off_i, end_i) and its data [data_off_i,
// key_off_i), where end_i is the previous pair's data_off (or bsize for
// pair 0).  Lengths are implied by the offsets, so the per-pair index cost
// is 4 bytes — exactly the "+4" in the paper's equation (1).
//
// A format-v2 page inserts a fingerprint tag array between the header and
// the index:
//
//   +8                u8 tag[0..PageTagCapacity)   (1 byte per entry slot)
//   +8+tag_capacity   u16 key_off[0], u16 data_off[0], ...
//
// tag[i] is the top byte of entry i's 32-bit hash (bucket selection uses
// the low bits, so the tag stays uniformly distributed within a bucket).
// Lookups scan the tag array with FindCandidates() — a SWAR/SIMD byte
// comparator — and only memcmp entries whose tag matches, so a negative
// probe of a page touches just the first cache line(s) and a positive
// probe touches the tag line plus one entry.  Everything else about the
// layout (header, slot encoding, pair bytes growing down) is unchanged;
// an empty v1 page and an empty v2 page are byte-identical.  The capacity
// of the tag array bounds nentries on v2 pages; pairs small enough to
// exceed it spill to the overflow chain exactly like pairs that exhaust
// byte space.
//
// A pair too large for a page of its own is stored as a "big stub": the
// key_off carries kBigEntryFlag, the data region holds {oaddr of the first
// overflow segment, the key's 32-bit hash, klen, dlen, and a key prefix}
// and the actual bytes live on a chain of kBigSegment overflow pages (key
// first, then data).  Storing the hash in the stub lets bucket splits move
// big pairs without touching their chains.
//
// kBitmap pages store allocation bits from offset 8; kBigSegment pages
// store payload bytes from offset 8 with nentries reused as the byte count.
// Neither carries a tag array in any format.

#ifndef HASHKIT_SRC_CORE_PAGE_H_
#define HASHKIT_SRC_CORE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "src/util/endian.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define HASHKIT_TAGSCAN_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define HASHKIT_TAGSCAN_NEON 1
#endif

namespace hashkit {

enum class PageType : uint16_t {
  kBucket = 1,      // primary page of a bucket
  kOverflow = 2,    // overflow page holding regular pairs
  kBitmap = 3,      // overflow-page allocation bitmap
  kBigSegment = 4,  // segment of a big key/data pair
};

inline constexpr size_t kPageHeaderSize = 8;
inline constexpr uint16_t kBigEntryFlag = 0x8000;
inline constexpr size_t kBigStubFixedSize = 14;  // oaddr + hash + klen + dlen
inline constexpr size_t kBigKeyPrefixMax = 32;

// On-page formats.  Values match the file header's version field (meta.h),
// so HashTable passes meta.version through directly.
inline constexpr uint32_t kPageFormatV1 = 1;
inline constexpr uint32_t kPageFormatV2 = 2;

// Sentinel returned by TagCandidates::Next when the scan is exhausted.
inline constexpr uint16_t kNoEntry = 0xffff;

// The fingerprint stored for an entry: the hash's top byte.  Bucket
// selection masks the low bits, so within one bucket the top byte is
// still uniform — a non-matching key passes the filter with p = 1/256.
inline constexpr uint8_t TagOfHash(uint32_t hash) {
  return static_cast<uint8_t>(hash >> 24);
}

// Bytes reserved for the v2 tag array: 1/8 of the payload area, rounded up
// to a multiple of 8 so the index slots that follow stay 2-byte aligned
// and SWAR chunks load aligned.  Zero for v1.  The smallest page (64B)
// reserves 8 bytes; the largest (32KB) 4096 — always at least the densest
// packing of minimum-cost pairs needs, except for degenerate sub-4-byte
// pairs, which overflow-chain instead (see FitsPair).
inline constexpr size_t PageTagCapacity(size_t page_size, uint32_t format) {
  if (format < kPageFormatV2) {
    return 0;
  }
  return (((page_size - kPageHeaderSize) / 8) + 7) & ~size_t{7};
}

// Longest key prefix a big stub can carry and still fit on an *empty* page
// of this size: kBigKeyPrefixMax everywhere except the smallest v2 page
// (64B usable drops to 48 after the tag array; a stub costs a 4-byte slot
// + 14 fixed bytes + the prefix, so only 30 prefix bytes fit).  Inserters
// must clamp to this or a stub could fit no page and chain forever.
inline constexpr size_t MaxBigStubPrefix(size_t page_size, uint32_t format) {
  const size_t usable = (page_size == 32768 ? 32767 : page_size) - kPageHeaderSize -
                        PageTagCapacity(page_size, format);
  const size_t room = usable - 4 - kBigStubFixedSize;  // 4 = index slot
  return room < kBigKeyPrefixMax ? room : kBigKeyPrefixMax;
}

namespace page_detail {

#if defined(HASHKIT_TAGSCAN_SSE2)
inline constexpr uint16_t kTagLanes = 16;     // tags matched per chunk
inline constexpr unsigned kTagLaneShift = 0;  // mask bit i -> lane i
inline constexpr const char* kTagScanImpl = "sse2";
// One bit per matching lane, lane i at bit i.
inline uint64_t TagMatchMask(const uint8_t* tags, uint8_t tag) {
  const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
  const __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(chunk, probe)));
}
inline uint64_t TagLaneMaskBelow(uint16_t lanes) { return (uint64_t{1} << lanes) - 1; }
#elif defined(HASHKIT_TAGSCAN_NEON)
inline constexpr uint16_t kTagLanes = 16;
inline constexpr unsigned kTagLaneShift = 2;  // mask bit 4*i -> lane i
inline constexpr const char* kTagScanImpl = "neon";
inline uint64_t TagMatchMask(const uint8_t* tags, uint8_t tag) {
  const uint8x16_t eq = vceqq_u8(vld1q_u8(tags), vdupq_n_u8(tag));
  // NEON has no movemask; narrowing each 16-bit pair by 4 packs the lane
  // results into one nibble each.  Keep a single bit per nibble so the
  // pop loop's pending &= pending - 1 clears exactly one match.
  const uint8x8_t nibbles = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  return vget_lane_u64(vreinterpret_u64_u8(nibbles), 0) & 0x1111111111111111ull;
}
inline uint64_t TagLaneMaskBelow(uint16_t lanes) {
  return (uint64_t{1} << (4 * lanes)) - 1;
}
#else
// Portable 8-byte SWAR fallback.
inline constexpr uint16_t kTagLanes = 8;
inline constexpr unsigned kTagLaneShift = 3;  // mask bit 8*i+7 -> lane i
inline constexpr const char* kTagScanImpl = "swar8";
inline uint64_t TagMatchMask(const uint8_t* tags, uint8_t tag) {
  // XOR zeroes the matching bytes, then the classic zero-byte detector
  // raises bit 0x80 in exactly the zero lanes (~v suppresses the borrow
  // false-positives).  DecodeU64 fixes lane order as little-endian.
  const uint64_t v = DecodeU64(tags) ^ (0x0101010101010101ull * tag);
  return (v - 0x0101010101010101ull) & ~v & 0x8080808080808080ull;
}
inline uint64_t TagLaneMaskBelow(uint16_t lanes) {
  return (uint64_t{1} << (8 * lanes)) - 1;
}
#endif

}  // namespace page_detail

// Iterator over the entry indices whose tag byte matches a probe tag,
// produced by PageView::FindCandidates.  On v1 pages (no tag array) it
// degrades to "every entry is a candidate".  Pop with Next() until
// kNoEntry.
class TagCandidates {
 public:
  // Unfiltered (v1) scan: yields 0..nentries-1.
  explicit TagCandidates(uint16_t nentries) : n_(nentries), filtered_(false) {}

  // Filtered (v2) scan over `n` tag bytes at `tags`.
  TagCandidates(const uint8_t* tags, uint16_t n, uint8_t tag)
      : tags_(tags), n_(n), tag_(tag), filtered_(true) {}

  uint16_t Next() {
    if (!filtered_) {
      return next_ < n_ ? next_++ : kNoEntry;
    }
    for (;;) {
      if (pending_ != 0) {
        const auto lane = static_cast<uint16_t>(
            static_cast<unsigned>(__builtin_ctzll(pending_)) >> page_detail::kTagLaneShift);
        pending_ &= pending_ - 1;  // each match carries exactly one bit
        return static_cast<uint16_t>(chunk_ + lane);
      }
      if (next_ >= n_) {
        return kNoEntry;
      }
      chunk_ = next_;
      next_ = static_cast<uint16_t>(chunk_ + page_detail::kTagLanes);
      // The chunk load may read past the last valid tag but stays inside
      // the tag region + index area (PageTagCapacity rounds to the chunk
      // alignment and FindCandidates clamps n_); lanes >= n_ are masked.
      pending_ = page_detail::TagMatchMask(tags_ + chunk_, tag_);
      if (next_ > n_) {
        pending_ &= page_detail::TagLaneMaskBelow(static_cast<uint16_t>(n_ - chunk_));
      }
    }
  }

  // Which comparator this build uses ("sse2", "neon", "swar8"); benches
  // record it next to their numbers.
  static const char* ImplName() { return page_detail::kTagScanImpl; }

 private:
  const uint8_t* tags_ = nullptr;
  uint64_t pending_ = 0;
  uint16_t n_ = 0;
  uint16_t chunk_ = 0;
  uint16_t next_ = 0;
  uint8_t tag_ = 0;
  bool filtered_;
};

// A decoded view of one entry on a page.
struct EntryRef {
  bool big = false;
  // Regular entries:
  std::string_view key;
  std::string_view data;
  // Big stubs:
  uint16_t ovfl_addr = 0;    // first segment of the big pair's chain
  uint32_t hash = 0;         // full hash of the key
  uint32_t key_len = 0;      // true key length
  uint32_t data_len = 0;     // true data length
  std::string_view prefix;   // leading bytes of the key (<= kBigKeyPrefixMax)
};

// Zero-copy accessor over one page buffer.  The PageView does not own the
// buffer; it is valid only while the underlying PageRef pin is held.  The
// format is a property of the containing file (meta.version), not of the
// page bytes, so the caller must construct every view with the file's
// format; the default keeps v1 callers (baselines, old tests) unchanged.
class PageView {
 public:
  PageView(uint8_t* buf, size_t page_size, uint32_t format = kPageFormatV1)
      : buf_(buf),
        size_(page_size),
        tag_cap_(static_cast<uint16_t>(PageTagCapacity(page_size, format))) {}

  // Formats an all-zero (or recycled) buffer as an empty page.  An empty
  // page is byte-identical in every format (the v2 tag region is zero),
  // which is what lets v1 files open under a v2-aware build unchanged.
  static void Init(uint8_t* buf, size_t page_size, PageType type);

  uint16_t nentries() const;
  uint16_t data_begin() const;
  uint16_t ovfl_addr() const;
  void set_ovfl_addr(uint16_t oaddr);
  PageType type() const;
  void set_type(PageType type);

  // Bytes available for one more pair (index slot included).
  size_t FreeSpace() const;

  // True if a regular pair of the given lengths fits on this page now.
  // On v2 pages this also requires a free tag slot.
  bool FitsPair(size_t klen, size_t dlen) const;

  // True if a pair of the given lengths could fit on an *empty* page of
  // this size; pairs failing this are stored as big pairs.
  static bool PairFitsEmptyPage(size_t klen, size_t dlen, size_t page_size,
                                uint32_t format = kPageFormatV1);

  // Appends a regular pair.  Caller must have checked FitsPair.  On v2
  // pages `tag` is recorded in the tag array (pass TagOfHash(hash)); on v1
  // it is ignored.
  void AddPair(std::string_view key, std::string_view data, uint8_t tag = 0);

  // Appends a big stub.  Caller must have checked FitsBigStub().  The v2
  // tag is derived from `hash`.
  void AddBigStub(uint16_t first_oaddr, uint32_t hash, uint32_t key_len, uint32_t data_len,
                  std::string_view prefix);
  bool FitsBigStub(size_t prefix_len) const;

  EntryRef Entry(uint16_t index) const;

  // Removes entry `index`, compacting pair storage, the index array, and
  // (v2) the tag array.
  void RemoveEntry(uint16_t index);

  // --- v2 fingerprint filter ---
  // Entry indices whose stored tag matches `tag`; all indices on v1.
  TagCandidates FindCandidates(uint8_t tag) const {
    const uint16_t n = nentries();
    if (tag_cap_ == 0) {
      return TagCandidates(n);
    }
    // Clamp defends the chunk loads against a corrupt nentries; entries
    // beyond the tag capacity cannot exist on a well-formed v2 page.
    return TagCandidates(buf_ + kPageHeaderSize, n < tag_cap_ ? n : tag_cap_, tag);
  }
  // Entry `index`'s stored tag byte (v2 pages only).
  uint8_t tag(uint16_t index) const { return buf_[kPageHeaderSize + index]; }
  // Tag slots on this page (0 = v1 view).
  uint16_t tag_capacity() const { return tag_cap_; }

  // --- kBigSegment pages: raw payload accessors ---
  uint16_t SegUsed() const { return nentries(); }
  void SetSegUsed(uint16_t n);
  size_t SegCapacity() const { return size_ - kPageHeaderSize; }
  uint8_t* SegData() { return buf_ + kPageHeaderSize; }
  const uint8_t* SegData() const { return buf_ + kPageHeaderSize; }

  // --- kBitmap pages: allocation bits ---
  size_t BitCapacity() const { return (size_ - kPageHeaderSize) * 8; }
  uint8_t* Bits() { return buf_ + kPageHeaderSize; }
  const uint8_t* Bits() const { return buf_ + kPageHeaderSize; }

  size_t page_size() const { return size_; }

  // Internal-consistency check used by tests and debug builds: offsets
  // monotone, within bounds, index/data regions disjoint, entry count
  // within the tag capacity on v2 pages.
  bool Validate() const;

 private:
  // First byte of the offset index (after the tag array, if any).
  size_t IndexBase() const { return kPageHeaderSize + tag_cap_; }
  void SetTag(uint16_t index, uint8_t tag) { buf_[kPageHeaderSize + index] = tag; }
  // End (exclusive) of entry i's key region.
  uint16_t EntryEnd(uint16_t index) const;
  uint16_t RawKeyOff(uint16_t index) const;
  uint16_t RawDataOff(uint16_t index) const;
  void SetRawKeyOff(uint16_t index, uint16_t value);
  void SetRawDataOff(uint16_t index, uint16_t value);
  void SetNEntries(uint16_t n);
  void SetDataBegin(uint16_t v);

  uint8_t* buf_;
  size_t size_;
  uint16_t tag_cap_;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_PAGE_H_
