// hashkit: on-page key/data layout.
//
// A page is:
//
//   +0   u16 nentries
//   +2   u16 data_begin   (lowest byte used by pair storage; == bsize when empty)
//   +4   u16 ovfl_addr    (overflow address of the next page in the chain; 0 = none)
//   +6   u16 type         (PageType)
//   +8   u16 key_off[0], u16 data_off[0], key_off[1], ...   (index, grows up)
//   ...
//        pair bytes                                          (grows down)
//   +bsize
//
// Pair i's key occupies [key_off_i, end_i) and its data [data_off_i,
// key_off_i), where end_i is the previous pair's data_off (or bsize for
// pair 0).  Lengths are implied by the offsets, so the per-pair index cost
// is 4 bytes — exactly the "+4" in the paper's equation (1).
//
// A pair too large for a page of its own is stored as a "big stub": the
// key_off carries kBigEntryFlag, the data region holds {oaddr of the first
// overflow segment, the key's 32-bit hash, klen, dlen, and a key prefix}
// and the actual bytes live on a chain of kBigSegment overflow pages (key
// first, then data).  Storing the hash in the stub lets bucket splits move
// big pairs without touching their chains.
//
// kBitmap pages store allocation bits from offset 8; kBigSegment pages
// store payload bytes from offset 8 with nentries reused as the byte count.

#ifndef HASHKIT_SRC_CORE_PAGE_H_
#define HASHKIT_SRC_CORE_PAGE_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace hashkit {

enum class PageType : uint16_t {
  kBucket = 1,      // primary page of a bucket
  kOverflow = 2,    // overflow page holding regular pairs
  kBitmap = 3,      // overflow-page allocation bitmap
  kBigSegment = 4,  // segment of a big key/data pair
};

inline constexpr size_t kPageHeaderSize = 8;
inline constexpr uint16_t kBigEntryFlag = 0x8000;
inline constexpr size_t kBigStubFixedSize = 14;  // oaddr + hash + klen + dlen
inline constexpr size_t kBigKeyPrefixMax = 32;

// A decoded view of one entry on a page.
struct EntryRef {
  bool big = false;
  // Regular entries:
  std::string_view key;
  std::string_view data;
  // Big stubs:
  uint16_t ovfl_addr = 0;    // first segment of the big pair's chain
  uint32_t hash = 0;         // full hash of the key
  uint32_t key_len = 0;      // true key length
  uint32_t data_len = 0;     // true data length
  std::string_view prefix;   // leading bytes of the key (<= kBigKeyPrefixMax)
};

// Zero-copy accessor over one page buffer.  The PageView does not own the
// buffer; it is valid only while the underlying PageRef pin is held.
class PageView {
 public:
  PageView(uint8_t* buf, size_t page_size) : buf_(buf), size_(page_size) {}

  // Formats an all-zero (or recycled) buffer as an empty page.
  static void Init(uint8_t* buf, size_t page_size, PageType type);

  uint16_t nentries() const;
  uint16_t data_begin() const;
  uint16_t ovfl_addr() const;
  void set_ovfl_addr(uint16_t oaddr);
  PageType type() const;
  void set_type(PageType type);

  // Bytes available for one more pair (index slot included).
  size_t FreeSpace() const;

  // True if a regular pair of the given lengths fits on this page now.
  bool FitsPair(size_t klen, size_t dlen) const;

  // True if a pair of the given lengths could fit on an *empty* page of
  // this size; pairs failing this are stored as big pairs.
  static bool PairFitsEmptyPage(size_t klen, size_t dlen, size_t page_size);

  // Appends a regular pair.  Caller must have checked FitsPair.
  void AddPair(std::string_view key, std::string_view data);

  // Appends a big stub.  Caller must have checked FitsBigStub().
  void AddBigStub(uint16_t first_oaddr, uint32_t hash, uint32_t key_len, uint32_t data_len,
                  std::string_view prefix);
  bool FitsBigStub(size_t prefix_len) const;

  EntryRef Entry(uint16_t index) const;

  // Removes entry `index`, compacting pair storage and the index array.
  void RemoveEntry(uint16_t index);

  // --- kBigSegment pages: raw payload accessors ---
  uint16_t SegUsed() const { return nentries(); }
  void SetSegUsed(uint16_t n);
  size_t SegCapacity() const { return size_ - kPageHeaderSize; }
  uint8_t* SegData() { return buf_ + kPageHeaderSize; }
  const uint8_t* SegData() const { return buf_ + kPageHeaderSize; }

  // --- kBitmap pages: allocation bits ---
  size_t BitCapacity() const { return (size_ - kPageHeaderSize) * 8; }
  uint8_t* Bits() { return buf_ + kPageHeaderSize; }
  const uint8_t* Bits() const { return buf_ + kPageHeaderSize; }

  size_t page_size() const { return size_; }

  // Internal-consistency check used by tests and debug builds: offsets
  // monotone, within bounds, index/data regions disjoint.
  bool Validate() const;

 private:
  // End (exclusive) of entry i's key region.
  uint16_t EntryEnd(uint16_t index) const;
  uint16_t RawKeyOff(uint16_t index) const;
  uint16_t RawDataOff(uint16_t index) const;
  void SetRawKeyOff(uint16_t index, uint16_t value);
  void SetRawDataOff(uint16_t index, uint16_t value);
  void SetNEntries(uint16_t n);
  void SetDataBegin(uint16_t v);

  uint8_t* buf_;
  size_t size_;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_PAGE_H_
