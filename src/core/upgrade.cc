// hashkit: offline v1 -> v2 table migration (FORMAT.md "Upgrading").
//
// The v2 tag array changes every data page's layout, so the upgrade is a
// rebuild, not an in-place rewrite: every pair is copied into a fresh v2
// table beside the original, the copy is synced, and then atomically
// renamed over the v1 file.  A crash at any point leaves either the intact
// v1 table (plus at worst a stale temp file the next run clobbers) or the
// complete v2 table — never a half-converted file.

#include <cstdio>
#include <string>

#include "src/core/hash_table.h"
#include "src/core/meta.h"
#include "src/core/options.h"
#include "src/util/status.h"

namespace hashkit {

Result<UpgradeReport> UpgradeTableFormat(const std::string& path) {
  // Open read/write with defaults: geometry and the hash function come
  // from the v1 header.  Custom-hash tables fail here with Open's usual
  // "supply it at open" error — the function is not available offline.
  HashOptions old_opts;
  HASHKIT_ASSIGN_OR_RETURN(auto old_table, HashTable::Open(path, old_opts));

  UpgradeReport report;
  if (old_table->meta().version >= kHashVersionV2) {
    report.already_current = true;
    return report;
  }

  const std::string tmp_path = path + ".upgrade";
  std::remove(tmp_path.c_str());  // stale leftovers from a crashed run
  std::remove((tmp_path + ".wal").c_str());

  HashOptions new_opts;
  new_opts.bsize = old_table->meta().bsize;
  new_opts.ffactor = old_table->meta().ffactor;
  new_opts.hash_id = static_cast<HashFuncId>(old_table->meta().hash_id);
  new_opts.nelem = old_table->size() > UINT32_MAX ? UINT32_MAX
                                                  : static_cast<uint32_t>(old_table->size());
  new_opts.format_version = kHashVersionV2;
  new_opts.durability = Durability::kNone;  // the rename is the commit point
  HASHKIT_ASSIGN_OR_RETURN(auto new_table,
                           HashTable::Open(tmp_path, new_opts, /*truncate=*/true));

  std::string key;
  std::string value;
  bool first = true;
  for (;;) {
    const Status next = old_table->Seq(&key, &value, first);
    first = false;
    if (next.IsNotFound()) {
      break;
    }
    HASHKIT_RETURN_IF_ERROR(next);
    HASHKIT_RETURN_IF_ERROR(new_table->Put(key, value));
    ++report.keys_copied;
  }

  HASHKIT_RETURN_IF_ERROR(new_table->Sync());
  new_table.reset();
  old_table.reset();  // destructor syncs the (unchanged) v1 file

  // The old log was already replayed by Open above, so the v1 file stands
  // alone; drop the log *before* the rename so it can never replay v1
  // images onto the v2 file.
  std::remove((path + ".wal").c_str());
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp_path + " -> " + path + " failed");
  }
  return report;
}

}  // namespace hashkit
