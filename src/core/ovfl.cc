#include "src/core/ovfl.h"

#include <algorithm>

#include "src/util/bitmap.h"

namespace hashkit {

void OvflAllocator::BumpSpares(uint32_t sp) {
  for (uint32_t j = sp; j < kMaxSplitPoints; ++j) {
    ++meta_->spares[j];
  }
}

Status OvflAllocator::CreateBitmap(uint32_t sp) {
  // The bitmap is always the first page carved at its split point.
  if (PagesAtSplitPoint(*meta_, sp) != 0) {
    return Status::Corruption("bitmap created after pages exist at split point");
  }
  const uint16_t oaddr = MakeOaddr(sp, 1);
  BumpSpares(sp);
  Preserve(OaddrToPage(*meta_, oaddr));
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(OaddrToPage(*meta_, oaddr),
                                                    /*create_new=*/true));
  PageView view(page.data(), pool_->file()->page_size());
  PageView::Init(page.data(), pool_->file()->page_size(), PageType::kBitmap);
  RawBitSet(view.Bits(), 0);  // the bitmap page describes itself
  page.MarkDirty();
  meta_->bitmaps[sp] = oaddr;
  return Status::Ok();
}

Result<uint16_t> OvflAllocator::TryReuse() {
  const uint32_t sp_cur = EffectiveOvflPoint(*meta_);
  // Check the last-freed hint first, then every split point with a bitmap.
  auto probe = [&](uint32_t sp) -> Result<uint16_t> {
    if (sp >= kMaxSplitPoints || meta_->bitmaps[sp] == 0) {
      return uint16_t{0};
    }
    const uint32_t npages = PagesAtSplitPoint(*meta_, sp);
    HASHKIT_ASSIGN_OR_RETURN(PageRef bm, pool_->Get(OaddrToPage(*meta_, meta_->bitmaps[sp])));
    PageView view(bm.data(), pool_->file()->page_size());
    if (view.type() != PageType::kBitmap) {
      return Status::Corruption("expected bitmap page");
    }
    for (uint32_t bit = 0; bit < npages; ++bit) {
      if (!RawBitIsSet(view.Bits(), bit)) {
        Preserve(OaddrToPage(*meta_, meta_->bitmaps[sp]));
        RawBitSet(view.Bits(), bit);
        bm.MarkDirty();
        return MakeOaddr(sp, bit + 1);
      }
    }
    return uint16_t{0};
  };

  if (meta_->last_freed != 0) {
    HASHKIT_ASSIGN_OR_RETURN(uint16_t oaddr,
                             probe(OaddrSplitPoint(static_cast<uint16_t>(meta_->last_freed))));
    if (oaddr != 0) {
      return oaddr;
    }
    meta_->last_freed = 0;  // hint exhausted
  }
  for (uint32_t sp = 0; sp <= std::min(sp_cur, kMaxSplitPoints - 1); ++sp) {
    HASHKIT_ASSIGN_OR_RETURN(uint16_t oaddr, probe(sp));
    if (oaddr != 0) {
      return oaddr;
    }
  }
  return uint16_t{0};
}

Result<uint16_t> OvflAllocator::Alloc(PageType type) {
  HASHKIT_ASSIGN_OR_RETURN(uint16_t reused, TryReuse());
  uint16_t oaddr = reused;
  if (oaddr == 0) {
    // Carve a fresh page at the overflow point, advancing it past any
    // split point whose 11-bit page space (or bitmap) is full.  Advancing
    // is safe: no bucket exists beyond the overflow point, so no existing
    // page moves.
    uint32_t sp = EffectiveOvflPoint(*meta_);
    const size_t bit_capacity = (pool_->file()->page_size() - kPageHeaderSize) * 8;
    for (;;) {
      if (sp >= kMaxSplitPoints) {
        // The oaddr encoding holds 5 bits of split point; past this there
        // is no address left to hand out.  Surfacing kFull here (instead
        // of letting MakeOaddr truncate sp into 5 bits) is what keeps an
        // overfull table an error rather than silent corruption.
        return Status::Full("overflow address space exhausted (all 32 split points full)");
      }
      const uint32_t npages = PagesAtSplitPoint(*meta_, sp);
      if (npages < kMaxOvflPagesPerPoint && npages < bit_capacity) {
        break;
      }
      ++sp;
    }
    meta_->ovfl_point = sp;
    if (meta_->bitmaps[sp] == 0) {
      HASHKIT_RETURN_IF_ERROR(CreateBitmap(sp));
    }
    const uint32_t npages = PagesAtSplitPoint(*meta_, sp);
    HASHKIT_ASSIGN_OR_RETURN(PageRef bm, pool_->Get(OaddrToPage(*meta_, meta_->bitmaps[sp])));
    PageView bm_view(bm.data(), pool_->file()->page_size());
    Preserve(OaddrToPage(*meta_, meta_->bitmaps[sp]));
    RawBitSet(bm_view.Bits(), npages);
    bm.MarkDirty();
    BumpSpares(sp);
    oaddr = MakeOaddr(sp, npages + 1);
  }

  // A reused page may still be referenced by a live snapshot's chains;
  // save its pre-image before Init clobbers it.
  Preserve(OaddrToPage(*meta_, oaddr));
  HASHKIT_ASSIGN_OR_RETURN(PageRef page, pool_->Get(OaddrToPage(*meta_, oaddr),
                                                    /*create_new=*/true));
  PageView::Init(page.data(), pool_->file()->page_size(), type);
  page.MarkDirty();
  return oaddr;
}

Status OvflAllocator::Free(uint16_t oaddr) {
  const uint32_t sp = OaddrSplitPoint(oaddr);
  const uint32_t page_num = OaddrPageNum(oaddr);
  if (sp >= kMaxSplitPoints || meta_->bitmaps[sp] == 0 || page_num == 0 ||
      page_num > PagesAtSplitPoint(*meta_, sp)) {
    return Status::Corruption("free of invalid overflow address");
  }
  if (oaddr == meta_->bitmaps[sp]) {
    return Status::Corruption("attempt to free a bitmap page");
  }
  {
    HASHKIT_ASSIGN_OR_RETURN(PageRef bm, pool_->Get(OaddrToPage(*meta_, meta_->bitmaps[sp])));
    PageView view(bm.data(), pool_->file()->page_size());
    if (!RawBitIsSet(view.Bits(), page_num - 1)) {
      return Status::Corruption("double free of overflow page");
    }
    Preserve(OaddrToPage(*meta_, meta_->bitmaps[sp]));
    RawBitClear(view.Bits(), page_num - 1);
    bm.MarkDirty();
  }
  meta_->last_freed = oaddr;
  // Drop any cached copy; the contents are dead and must not be written
  // back over a future reuse.  Snapshots may still reference the page, so
  // its pre-image is saved before the (possibly dirty) frame goes away.
  Preserve(OaddrToPage(*meta_, oaddr));
  pool_->Discard(OaddrToPage(*meta_, oaddr));
  return Status::Ok();
}

Result<bool> OvflAllocator::IsAllocated(uint16_t oaddr) {
  const uint32_t sp = OaddrSplitPoint(oaddr);
  const uint32_t page_num = OaddrPageNum(oaddr);
  if (sp >= kMaxSplitPoints || meta_->bitmaps[sp] == 0 || page_num == 0 ||
      page_num > PagesAtSplitPoint(*meta_, sp)) {
    return false;
  }
  HASHKIT_ASSIGN_OR_RETURN(PageRef bm, pool_->Get(OaddrToPage(*meta_, meta_->bitmaps[sp])));
  PageView view(bm.data(), pool_->file()->page_size());
  return RawBitIsSet(view.Bits(), page_num - 1);
}

Result<uint64_t> OvflAllocator::CountInUse() {
  uint64_t total = 0;
  for (uint32_t sp = 0; sp < kMaxSplitPoints; ++sp) {
    if (meta_->bitmaps[sp] == 0) {
      continue;
    }
    HASHKIT_ASSIGN_OR_RETURN(PageRef bm, pool_->Get(OaddrToPage(*meta_, meta_->bitmaps[sp])));
    PageView view(bm.data(), pool_->file()->page_size());
    total += RawPopcount(view.Bits(), PagesAtSplitPoint(*meta_, sp));
  }
  return total;
}

}  // namespace hashkit
