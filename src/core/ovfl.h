// hashkit: overflow-page allocation — the "buddy-in-waiting" mechanism.
//
// Overflow pages serve both bucket overflow chains and big key/data pair
// segments.  Use information is kept in bitmaps that themselves live on
// overflow pages (the first page allocated at a split point is its bitmap,
// with bit 0 describing the bitmap page itself).  Freed pages are reused;
// fresh pages are carved out only at the current split point so existing
// pages never move.

#ifndef HASHKIT_SRC_CORE_OVFL_H_
#define HASHKIT_SRC_CORE_OVFL_H_

#include <cstdint>
#include <functional>

#include "src/core/addressing.h"
#include "src/core/meta.h"
#include "src/core/page.h"
#include "src/pagefile/buffer_pool.h"
#include "src/util/status.h"

namespace hashkit {

class OvflAllocator {
 public:
  OvflAllocator(Meta* meta, BufferPool* pool) : meta_(meta), pool_(pool) {}

  // Allocates an overflow page, formatting it with the given type.
  // Prefers reusing a previously freed page; otherwise extends the current
  // split point.  Returns the page's overflow address.
  Result<uint16_t> Alloc(PageType type);

  // Returns `oaddr` to the free pool.  The caller must not hold a pin on
  // the page.
  Status Free(uint16_t oaddr);

  // True if the bitmap bit for `oaddr` is set (page in use).  Used by
  // integrity checking.
  Result<bool> IsAllocated(uint16_t oaddr);

  // Total in-use overflow pages (bitmap pages included), from the bitmaps.
  Result<uint64_t> CountInUse();

  // hashkit-mvcc: called with a page number right before this allocator
  // first modifies (or discards) that page, so the owning table can save
  // the pre-image into any live snapshot.  Null disables the hook.
  void SetPreserveHook(std::function<void(uint64_t)> hook) { preserve_ = std::move(hook); }

 private:
  void Preserve(uint64_t pageno) {
    if (preserve_) {
      preserve_(pageno);
    }
  }

  // Scans bitmaps of all split points for a reusable (freed) page.
  Result<uint16_t> TryReuse();
  // Creates the bitmap page for split point `sp` (must have no pages yet).
  Status CreateBitmap(uint32_t sp);
  // Bumps spares[sp..] to account for one newly carved page at `sp`.
  void BumpSpares(uint32_t sp);

  Meta* meta_;
  BufferPool* pool_;
  std::function<void(uint64_t)> preserve_;
};

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_OVFL_H_
