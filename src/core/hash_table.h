// hashkit: the extended linear hash table — the paper's primary
// contribution.
//
// Litwin/Larson linear hashing with the paper's three extensions:
//   * hybrid split policy: controlled splits when the fill factor is
//     exceeded, uncontrolled splits when a page overflows;
//   * buddy-in-waiting overflow pages shared between bucket chains and big
//     key/data pairs, addressed through spares[] so the file never needs
//     reorganizing;
//   * an integrated LRU buffer pool, so the same table works disk-resident
//     (superseding ndbm) and memory-resident (superseding hsearch).
//
// Inserts never fail because too many keys hash to the same value, and
// never fail because a key/data pair is too large (both are the paper's
// "Enhanced Functionality" guarantees).
//
// Thread-compatibility: mutations (Put/Delete/Contract/Sync/Seq) require
// exclusive access, but concurrent Get/Contains calls are safe provided no
// mutation runs at the same time — the read path never writes a page, the
// buffer pool is internally synchronized (lock-striped frame table, atomic
// pins, backend I/O outside its bookkeeping locks, so concurrent readers
// neither serialize on a pool-wide mutex nor stall behind each other's
// cache-miss reads), and read-side counters are atomic.
// The kv layer's SynchronizedStore/ShardedStore enforce exactly this
// discipline with reader-writer locks (the paper's conclusion notes
// multi-user access as future work; this is its minimal useful form).

#ifndef HASHKIT_SRC_CORE_HASH_TABLE_H_
#define HASHKIT_SRC_CORE_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/meta.h"
#include "src/core/options.h"
#include "src/core/ovfl.h"
#include "src/core/page.h"
#include "src/pagefile/buffer_pool.h"
#include "src/pagefile/page_file.h"
#include "src/util/status.h"
#include "src/wal/log_writer.h"
#include "src/wal/recovery.h"
#include "src/wal/wal_format.h"
#include "src/wal/wal_storage.h"

namespace hashkit {

struct HashTableStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t splits = 0;            // bucket splits performed
  uint64_t contractions = 0;      // reverse splits (auto_contract extension)
  uint64_t ovfl_pages_alloced = 0;
  uint64_t ovfl_pages_freed = 0;
  uint64_t big_pairs_stored = 0;

  // Format-v2 fingerprint filter effectiveness (all zero on v1 tables).
  // Over every page a lookup scanned: entries the tag filter excluded
  // without touching their bytes, entries whose tag matched (and were
  // therefore compared), and the subset of those whose full compare then
  // failed (filter false positives, expected rate ~candidates/256 per
  // non-matching entry).
  uint64_t tag_filter_skips = 0;
  uint64_t tag_filter_candidates = 0;
  uint64_t tag_filter_false_hits = 0;
};

class HashTable;

// A checkpoint-consistent point-in-time view of the table (hashkit-mvcc).
//
// Created under exclusive access; after that, snapshot reads only need the
// same discipline as plain Gets (no concurrent mutation during one call),
// so the kv layer serves them under its *shared* lock while writers keep
// running under the exclusive lock.  Consistency is copy-on-write: before
// a post-snapshot writer first touches a page, the table saves the page's
// pre-image into every live snapshot, so a snapshot reader always sees the
// page as it was at creation time — either the saved pre-image or the
// still-unmodified live page.  The snapshot also carries its own Meta copy
// (spares[] and the bucket range move under later splits) and the WAL
// sequence number it corresponds to (its LSN).
//
// Memory cost: one page copy per page dirtied while the snapshot lives.
// Dropping the last shared_ptr releases everything; the table holds only
// weak references.
class TableSnapshot {
 public:
  uint64_t lsn() const { return lsn_; }
  uint64_t page_count() const { return page_count_; }
  const Meta& meta() const { return meta_; }

 private:
  friend class HashTable;
  friend class SnapshotCursor;

  Meta meta_;
  uint64_t lsn_ = 0;
  uint64_t page_count_ = 0;  // pages the file held at snapshot time
  // Pre-images of pages dirtied since the snapshot, by page number.
  // Mutated only by the writer (under the kv layer's exclusive lock);
  // snapshot readers only look up, under the shared lock.
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
};

// Sequential-scan cursor.  Iterates every pair in bucket order.  The table
// must not be mutated while a cursor is live.
class Cursor {
 public:
  // Advances to the next pair; returns kNotFound at end of table.
  Status Next(std::string* key, std::string* value);

  // Restarts from the beginning.
  void Reset();

 private:
  friend class HashTable;
  explicit Cursor(HashTable* table) : table_(table) {}

  HashTable* table_ = nullptr;
  bool started_ = false;
  uint32_t bucket_ = 0;
  uint16_t page_oaddr_ = 0;  // 0 = primary page of bucket_
  uint16_t entry_ = 0;       // next entry index on the current page
};

// Scan over a TableSnapshot: same iteration order as Cursor, but every
// page (and big-pair chain segment) is resolved through the snapshot, so
// the scan observes the table exactly as of snapshot creation no matter
// how many writes have landed since.  Each Next call needs the same
// exclusion as a Get (the kv layer's shared lock): writers are blocked
// per-step, never for the whole scan.
class SnapshotCursor {
 public:
  Status Next(std::string* key, std::string* value);
  void Reset();
  const std::shared_ptr<TableSnapshot>& snapshot() const { return snap_; }

 private:
  friend class HashTable;
  SnapshotCursor(HashTable* table, std::shared_ptr<TableSnapshot> snap)
      : table_(table), snap_(std::move(snap)) {}

  // Reads key/value of a big pair through the snapshot's page mapping.
  Status ReadBigChain(uint16_t first_oaddr, uint32_t key_len, uint32_t data_len,
                      std::string* key_out, std::string* value_out);

  HashTable* table_ = nullptr;
  std::shared_ptr<TableSnapshot> snap_;
  bool started_ = false;
  uint32_t bucket_ = 0;
  uint16_t page_oaddr_ = 0;
  uint16_t entry_ = 0;
};

class HashTable {
 public:
  // Opens (or creates) a disk-resident table at `path`.  When the file
  // already exists and `truncate` is false, geometry comes from the file
  // header and `options.bsize/ffactor/nelem` are ignored; the hash function
  // is verified against the stored check value.
  static Result<std::unique_ptr<HashTable>> Open(const std::string& path,
                                                 const HashOptions& options,
                                                 bool truncate = false);

  // Creates a memory-resident table.  Pages that do not fit in the buffer
  // pool spill to an unlinked temporary file, as in the paper's
  // memory-resident test.
  static Result<std::unique_ptr<HashTable>> OpenInMemory(const HashOptions& options);

  // Opens a table over caller-supplied backends instead of filesystem
  // paths.  When `wal` is non-null the log is replayed onto `file` first
  // (committed batches applied, torn tail discarded) and, if
  // options.durability != kNone, kept open for logging.  Used by the
  // crash-simulation harness to drive recovery against recording/in-memory
  // backends; behaves exactly like Open() on disk files.
  static Result<std::unique_ptr<HashTable>> OpenWithBackends(std::unique_ptr<PageFile> file,
                                                             std::unique_ptr<wal::WalStorage> wal,
                                                             const HashOptions& options);

  ~HashTable();

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Inserts or replaces.  With overwrite=false an existing key yields
  // kExists (ndbm's DBM_INSERT semantics).
  Status Put(std::string_view key, std::string_view value, bool overwrite = true);

  // Looks up `key`; fills `*value` (may be nullptr to test existence only).
  Status Get(std::string_view key, std::string* value);

  bool Contains(std::string_view key);

  Status Delete(std::string_view key);

  // One reverse linear-hashing step: merges the highest bucket into its
  // buddy (the bucket it split from) and shrinks the masks.  kNotFound
  // when the table is already a single bucket.  Runs automatically after
  // deletes when HashOptions::auto_contract is set.
  Status Contract();

  // Flushes the header and all dirty pages to the backing store.  With a
  // write-ahead log this is a full durability barrier: commit + log fsync
  // + table flush + log checkpoint.
  Status Sync();

  Cursor NewCursor() { return Cursor(this); }

  // ndbm-style one-shot sequential interface built on an internal cursor:
  // Seq(first=true) restarts.
  Status Seq(std::string* key, std::string* value, bool first);

  // --- Snapshots and online operations (hashkit-mvcc) ---

  // Captures a point-in-time view.  Requires exclusive access (like a
  // mutation); afterwards snapshot reads coexist with writers under the kv
  // layer's shared lock.  While any snapshot is live, WAL checkpoints are
  // deferred (commits still sync; the log just is not truncated), so the
  // log keeps appending monotonically — what online backup streams.
  std::shared_ptr<TableSnapshot> CreateSnapshot();

  SnapshotCursor NewSnapshotCursor(std::shared_ptr<TableSnapshot> snap) {
    return SnapshotCursor(this, std::move(snap));
  }

  // True while any snapshot handle (scan or backup) is alive.
  bool SnapshotsActive() const;

  // --- Online backup (served over the BACKUP opcode) ---
  struct BackupInfo {
    uint32_t page_size = 0;
    uint64_t page_count = 0;
    uint64_t lsn = 0;
  };
  // Checkpoints the table (so the file is complete on disk), then pins a
  // snapshot the page reads resolve through.  One backup at a time;
  // requires exclusive access.
  Result<BackupInfo> BackupBegin();
  // Appends `count` consecutive page images starting at `first_page`, as
  // of the backup snapshot.  Shared access suffices.
  Status BackupReadPages(uint64_t first_page, uint32_t count, std::string* out);
  // Reads the log's bytes at [offset, offset+max_bytes); `*total` reports
  // the current log size.  With checkpoints deferred the log only grows,
  // so offset-driven streaming never sees it shrink.  Zero-length output
  // with *total == offset means caught up.  Shared access suffices.
  Status BackupReadWal(uint64_t offset, uint32_t max_bytes, std::string* out, uint64_t* total);
  // Drops the backup snapshot.  Requires exclusive access.  Idempotent.
  void BackupEnd();

  // --- Replication (served over the REPLICATE opcode) ---
  // Copies the whole current log when it holds commits past `from_lsn`;
  // `*last_lsn` reports the log's latest commit.  An empty copy with
  // *last_lsn == from_lsn means the replica is caught up.  Shared access.
  Status ReplicationRead(uint64_t from_lsn, std::string* out, uint64_t* last_lsn);
  // Applies a primary's log bytes (a complete log file image) to this
  // table: committed batches with seq > `from_lsn` are redone through the
  // buffer pool and the meta refreshed from the batch's header pages.
  // Detects a sequence gap (the primary checkpointed past us) and returns
  // kNotFound — the replica must re-bootstrap from a fresh backup.
  // Requires exclusive access.
  Status ApplyRedo(std::span<const uint8_t> log_bytes, uint64_t from_lsn,
                   uint64_t* applied_through);

  // The WAL's latest commit sequence (the table's LSN); 0 without a log.
  uint64_t WalLsn() const;

  // --- Cross-operation WAL batch scope (hashkit-tpc) ---
  // Brackets a run of mutations whose group-commit fsync should amortize
  // across all of them (a server executing one per-core batch spanning
  // many connections).  Between Begin and End each operation still writes
  // and commits its log batch as usual, but any fsync the sync_every
  // policy makes due is deferred; EndWalBatch issues at most ONE fsync —
  // only if one became due during the scope — and then releases writeback
  // holds.  No-ops without a log.  Requires exclusive access; scopes must
  // not nest.
  void BeginWalBatch();
  Status EndWalBatch();

  // --- Introspection ---
  uint64_t size() const { return meta_.nkeys; }
  uint32_t bucket_count() const { return meta_.max_bucket + 1; }
  const Meta& meta() const { return meta_; }
  // Unlocked view; only valid when no reader threads are active.
  const HashTableStats& stats() const { return stats_; }
  // Snapshots, safe to take while concurrent Gets are in flight (the pool
  // merges its per-stripe counters; the page file counters are atomic).
  BufferPoolStats pool_stats() const { return pool_->StatsSnapshot(); }
  PageFileStats file_stats() const { return file_->stats(); }
  HashTableStats StatsSnapshot() const;
  BufferPoolStats PoolStatsSnapshot() const { return pool_->StatsSnapshot(); }
  HashFn hash_fn() const { return hash_; }
  // Log counters/latencies plus this open's recovery tallies; zeros when
  // the table runs without a log.
  wal::WalStats WalStatsSnapshot() const;
  // What recovery did when this handle was opened.
  const wal::RecoveryResult& recovery() const { return wal_recovery_; }

  // Exhaustive structural validation: every page well-formed, every key in
  // its correct bucket, key count and overflow bitmaps consistent.
  // O(table size); meant for tests.
  Status CheckIntegrity();

  // Occupancy analysis for tuning (the paper: "in time critical
  // applications, users are encouraged to experiment ... to achieve
  // optimal performance").  O(table size).
  struct Analysis {
    uint32_t buckets = 0;
    uint64_t keys = 0;
    uint64_t overflow_pages = 0;     // chain pages currently linked
    uint64_t big_pair_pages = 0;     // pages held by big-pair chains
    uint32_t max_chain_pages = 0;    // longest bucket chain (primary excluded)
    uint32_t empty_buckets = 0;
    double avg_keys_per_bucket = 0.0;
    double avg_bytes_per_page = 0.0;  // pair bytes / page capacity, primaries+chains
    double eq1_ffactor = 0.0;         // fill factor equation (1) suggests for bsize
  };
  Result<Analysis> Analyze();

 private:
  friend class Cursor;
  friend class SnapshotCursor;

  HashTable(std::unique_ptr<PageFile> file, const HashOptions& options);

  Status InitNew(const HashOptions& options);
  Status InitExisting(const HashOptions& options);
  Status WriteMeta();

  // --- Write-ahead logging (hashkit-wal) ---
  // Attaches a log to this table: turns on the buffer pool's write-ahead
  // barrier and builds the LogWriter per options.durability.
  // `archive_prefix`, when non-empty, turns on WAL archiving (the log is
  // copied to `<prefix>.<seq>` before every checkpoint truncation).
  Status EnableWal(std::unique_ptr<wal::WalStorage> storage, const HashOptions& options,
                   const std::string& archive_prefix = std::string());
  // Closes the current operation's batch: drains the pool's pending set,
  // logs each image plus the meta pages, commits, and releases writeback
  // holds if the commit was fsynced.  Called at the end of every
  // successful mutation; no-op without a log.
  Status WalCommit();
  // WalCommit + checkpoint when the log has outgrown its threshold.
  Status WalCommitAndMaybeCheckpoint();
  // Full barrier: commit, fsync, flush the table, truncate the log.
  Status Checkpoint();

  uint32_t HashKey(std::string_view key) const {
    return hash_(key.data(), key.size());
  }
  uint32_t BucketOf(uint32_t hash) const;

  // View over a pinned page in this table's format (meta_.version doubles
  // as the page format; v1 files opened by this build keep scanning the
  // old way).  Every PageView over table pages must come from here.
  PageView View(const PageRef& ref) const {
    return PageView(const_cast<uint8_t*>(ref.data()), meta_.bsize, meta_.version);
  }

  // Copy-on-write hook: inside a mutation, saves `data` as `pageno`'s
  // pre-image into every live snapshot that has not captured it yet.
  // Must run after the page is pinned and before this operation modifies
  // it; the page-fetch helpers below call it on the write path.
  void PreserveForSnapshots(uint64_t pageno, const uint8_t* data);

  // Resolves `pageno` as of `snap`: the saved pre-image if the page was
  // dirtied since the snapshot, else the live page (pinned via `*ref`).
  // The returned pointer is valid while both `snap` and `*ref` live.
  Result<const uint8_t*> SnapshotPage(const TableSnapshot& snap, uint64_t pageno, PageRef* ref);

  // Page access.  Fetching a bucket page formats virgin (all-zero) pages;
  // fetching an overflow page records the chain link in the buffer pool.
  Result<PageRef> FetchBucketPage(uint32_t bucket, bool create_new = false);
  // Read-side fetch: never formats or dirties a virgin page, so concurrent
  // readers do not write page memory.  A virgin page reads as an empty
  // bucket (all header fields zero).
  Result<PageRef> FetchBucketPageRead(uint32_t bucket);
  Result<PageRef> FetchOvflPage(uint16_t oaddr, const PageRef* predecessor);

  // Locates `key` within `bucket`'s chain.  On success `*page` is pinned,
  // `*index` is the entry.  kNotFound leaves outputs untouched.
  Status FindPair(uint32_t bucket, std::string_view key, uint32_t hash, PageRef* page,
                  uint16_t* index);

  // Low-level insert into `bucket` (no duplicate check, no split trigger).
  // Sets *chain_grew when a new overflow page had to be appended.
  Status AddPair(uint32_t bucket, std::string_view key, std::string_view value, uint32_t hash,
                 bool* chain_grew);

  // Places a regular pair / an existing big-pair stub into `bucket`'s
  // chain, extending the chain as needed.  Used by splits and contraction,
  // which move entries without rewriting big chains.  `hash` is the key's
  // full hash; v2 pages record its tag byte.
  Status AddPairRaw(uint32_t bucket, std::string_view key, std::string_view value, uint32_t hash,
                    bool* chain_grew);
  Status AddStubToBucket(uint32_t bucket, uint16_t first_oaddr, uint32_t hash, uint32_t key_len,
                         uint32_t data_len, std::string_view prefix);

  // Big-pair plumbing.
  Status WriteBigChain(std::string_view key, std::string_view value, uint16_t* first_oaddr);
  Status ReadBigChain(uint16_t first_oaddr, uint32_t key_len, uint32_t data_len,
                      std::string* key_out, std::string* value_out);
  Status FreeBigChain(uint16_t first_oaddr);
  // Compares a probe key against a big entry (prefix first, chain only when
  // the prefix matches).
  Status BigKeyEquals(const EntryRef& entry, std::string_view key, bool* equals);

  // Removes the entry at (page, index); releases the big chain if needed,
  // unlinks the page from its bucket chain when it becomes empty.
  Status RemoveEntryAt(uint32_t bucket, PageRef page, uint16_t index);

  // One linear-hashing expansion step: splits bucket (max_bucket+1) & low_mask.
  Status Expand();
  Status SplitBucket(uint32_t old_bucket, uint32_t new_bucket);

  // Whether the controlled-split condition currently holds.
  bool OverFillFactor() const {
    return meta_.nkeys > static_cast<uint64_t>(meta_.ffactor) * (meta_.max_bucket + 1);
  }

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<OvflAllocator> ovfl_;
  Meta meta_;
  HashFn hash_ = nullptr;
  SplitPolicy split_policy_ = SplitPolicy::kHybrid;
  bool auto_contract_ = false;
  bool persistent_ = false;  // false for in-memory tables
  bool meta_dirty_ = false;
  HashTableStats stats_;
  Cursor seq_cursor_{this};

  // WAL state (all null/empty when durability == kNone).
  std::unique_ptr<wal::LogWriter> wal_;
  // Handles whose images are committed but not yet fsynced; their frames
  // keep writeback holds until a log fsync covers them.
  std::vector<WalPageHandle> wal_held_;
  uint64_t wal_checkpoint_bytes_ = 0;
  // While snapshots defer CheckpointReset the log stays over the trigger;
  // this high-water mark spaces deferred checkpoints one trigger-interval
  // apart instead of re-running the flush+fsync on every commit.
  uint64_t wal_checkpoint_at_ = 0;
  wal::RecoveryResult wal_recovery_;

  // Snapshot state (hashkit-mvcc).  `snapshots_` holds weak handles so a
  // dropped snapshot costs nothing; dead entries are pruned on the next
  // preserve/create.  `in_write_op_` marks that a mutation is on the
  // stack, gating the copy-on-write hook so plain reads never copy pages.
  mutable std::vector<std::weak_ptr<TableSnapshot>> snapshots_;
  bool in_write_op_ = false;
  std::shared_ptr<TableSnapshot> backup_snap_;  // pinned by BackupBegin

  // Reentrant (Delete may call Contract): restores the previous value.
  struct WriteOpScope {
    explicit WriteOpScope(HashTable* t) : t_(t), prev_(t->in_write_op_) {
      t_->in_write_op_ = true;
    }
    ~WriteOpScope() { t_->in_write_op_ = prev_; }
    HashTable* t_;
    bool prev_;
  };
};

// Result of UpgradeTableFormat.
struct UpgradeReport {
  bool already_current = false;  // the file was v2 already; nothing changed
  uint64_t keys_copied = 0;
};

// Migrates the v1 table at `path` to format v2 (src/core/upgrade.cc; also
// exposed as `db_tool <path> upgrade`).  Crash-safe: pairs are copied into
// `<path>.upgrade`, synced, and atomically renamed over the original — a
// crash at any point leaves either the untouched v1 file (plus, at worst,
// a stale temp file a rerun removes) or the complete v2 file.  Tables
// built with a custom hash function cannot be upgraded this way (the
// function is not available here); Open's usual error surfaces.
Result<UpgradeReport> UpgradeTableFormat(const std::string& path);

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_HASH_TABLE_H_
