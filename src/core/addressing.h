// hashkit: bucket and overflow-page address arithmetic — the paper's
// BUCKET_TO_PAGE / OADDR_TO_PAGE macros as pure, testable functions.
//
// The file layout interleaves primary buckets with overflow-page regions at
// "split points" (Figure 3 of the paper):
//
//   [header][bkt 0][ovfl @ sp 0 ...][bkt 1][ovfl @ sp 1 ...][bkt 2][bkt 3]
//           [ovfl @ sp 2 ...][bkt 4] ... [bkt 7][ovfl @ sp 3 ...][bkt 8] ...
//
// spares[s] counts overflow pages allocated at split points <= s, so a
// bucket's physical page is its number plus the header pages plus every
// overflow page lying before it.  Overflow pages are only ever allocated at
// the *current* split point (just past the last existing bucket), which is
// why the file never needs reorganizing.

#ifndef HASHKIT_SRC_CORE_ADDRESSING_H_
#define HASHKIT_SRC_CORE_ADDRESSING_H_

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "src/core/meta.h"
#include "src/util/math.h"

namespace hashkit {

// Overflow address <-> (split point, 1-based page number).
constexpr uint32_t OaddrSplitPoint(uint16_t oaddr) { return oaddr >> kOvflPageBits; }
constexpr uint32_t OaddrPageNum(uint16_t oaddr) { return oaddr & kMaxOvflPagesPerPoint; }

// True when (split_point, page_num) fits the paper's 5-bit/11-bit oaddr
// encoding.  MakeOaddr silently corrupts out-of-range inputs (the split
// point is masked into 5 bits), so allocation paths must check this and
// surface kFull *before* encoding — see OvflAllocator::Alloc.
constexpr bool OaddrInRange(uint32_t split_point, uint32_t page_num) {
  return split_point < kMaxSplitPoints && page_num >= 1 && page_num <= kMaxOvflPagesPerPoint;
}

constexpr uint16_t MakeOaddr(uint32_t split_point, uint32_t page_num) {
  assert(OaddrInRange(split_point, page_num));
  return static_cast<uint16_t>((split_point << kOvflPageBits) | page_num);
}

// Physical page of bucket `bucket` (the paper's BUCKET_TO_PAGE).
inline uint64_t BucketToPage(const Meta& meta, uint32_t bucket) {
  const uint32_t spares = bucket != 0 ? meta.spares[FloorLog2(bucket)] : 0;
  return static_cast<uint64_t>(bucket) + meta.nhdr_pages + spares;
}

// Physical page of overflow address `oaddr` (the paper's OADDR_TO_PAGE).
inline uint64_t OaddrToPage(const Meta& meta, uint16_t oaddr) {
  const uint32_t sp = OaddrSplitPoint(oaddr);
  return BucketToPage(meta, (1u << sp) - 1) + OaddrPageNum(oaddr);
}

// The lowest split point at which fresh overflow pages may be allocated:
// the region just past the last existing bucket.  Allocating anywhere
// earlier would shift pages of buckets that already exist.
inline uint32_t CurrentSplitPoint(const Meta& meta) {
  return meta.max_bucket == 0 ? 0 : FloorLog2(meta.max_bucket) + 1;
}

// Where fresh overflow pages are actually carved: the stored overflow
// point, which may have advanced past the growth frontier when earlier
// split points' 11-bit page spaces filled up.
inline uint32_t EffectiveOvflPoint(const Meta& meta) {
  return std::max(meta.ovfl_point, CurrentSplitPoint(meta));
}

// Overflow pages physically allocated at split point `sp` (including the
// bitmap page, if any).
inline uint32_t PagesAtSplitPoint(const Meta& meta, uint32_t sp) {
  return meta.spares[sp] - (sp != 0 ? meta.spares[sp - 1] : 0);
}

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_ADDRESSING_H_
