#include "src/core/hsearch_compat.h"

#include <cstring>

namespace hashkit {
namespace hsearch {

namespace {
// The data pointer is stored verbatim as the pair's value bytes.
std::string EncodePointer(void* p) {
  std::string s(sizeof(void*), '\0');
  std::memcpy(s.data(), &p, sizeof(void*));
  return s;
}

void* DecodePointer(const std::string& s) {
  void* p = nullptr;
  if (s.size() == sizeof(void*)) {
    std::memcpy(&p, s.data(), sizeof(void*));
  }
  return p;
}
}  // namespace

Result<std::unique_ptr<Table>> Table::Create(size_t nelem, const HashOptions& options) {
  HashOptions opts = options;
  opts.nelem = static_cast<uint32_t>(nelem);
  HASHKIT_ASSIGN_OR_RETURN(auto table, HashTable::OpenInMemory(opts));
  return std::unique_ptr<Table>(new Table(std::move(table)));
}

Status Table::Search(const Entry& entry, Action action, Entry* result) {
  std::string value;
  const Status found = table_->Get(entry.key, &value);
  if (found.ok()) {
    if (result != nullptr) {
      result->key = entry.key;
      result->data = DecodePointer(value);
    }
    return Status::Ok();
  }
  if (!found.IsNotFound()) {
    return found;
  }
  if (action == Action::kFind) {
    return Status::NotFound();
  }
  HASHKIT_RETURN_IF_ERROR(table_->Put(entry.key, EncodePointer(entry.data)));
  if (result != nullptr) {
    *result = entry;
  }
  return Status::Ok();
}

namespace {
std::unique_ptr<Table> g_table;   // the single hcreate table
Entry g_scratch;                  // storage for HSearch's returned pointer
}  // namespace

bool HCreate(size_t nelem) {
  auto result = Table::Create(nelem);
  if (!result.ok()) {
    return false;
  }
  g_table = std::move(result).value();
  return true;
}

Entry* HSearch(const Entry& item, Action action) {
  if (g_table == nullptr) {
    return nullptr;
  }
  const Status st = g_table->Search(item, action, &g_scratch);
  return st.ok() ? &g_scratch : nullptr;
}

void HDestroy() { g_table.reset(); }

}  // namespace hsearch
}  // namespace hashkit
