#include "src/core/ndbm_compat.h"

namespace hashkit {
namespace ndbm {

Result<std::unique_ptr<Db>> Db::Open(const std::string& path, const HashOptions& options) {
  HASHKIT_ASSIGN_OR_RETURN(auto table, HashTable::Open(path, options));
  return std::unique_ptr<Db>(new Db(std::move(table)));
}

Datum Db::Fetch(Datum key) {
  const Status st = table_->Get(key.view(), &data_buf_);
  if (!st.ok()) {
    return Datum();
  }
  return Datum(data_buf_.data(), data_buf_.size());
}

int Db::Store(Datum key, Datum content, StoreMode mode) {
  const Status st =
      table_->Put(key.view(), content.view(), /*overwrite=*/mode == StoreMode::kReplace);
  if (st.ok()) {
    return 0;
  }
  return st.IsExists() ? 1 : -1;
}

int Db::Delete(Datum key) { return table_->Delete(key.view()).ok() ? 0 : -1; }

Datum Db::Firstkey() {
  const Status st = table_->Seq(&key_buf_, nullptr, /*first=*/true);
  return st.ok() ? Datum(key_buf_.data(), key_buf_.size()) : Datum();
}

Datum Db::Nextkey() {
  const Status st = table_->Seq(&key_buf_, nullptr, /*first=*/false);
  return st.ok() ? Datum(key_buf_.data(), key_buf_.size()) : Datum();
}

}  // namespace ndbm
}  // namespace hashkit
