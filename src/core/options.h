// hashkit: creation-time parameters for the extended linear hash table.
//
// These mirror the paper's table parameterization: bucket size, fill
// factor, expected element count, cache size, and an optional user-defined
// hash function.

#ifndef HASHKIT_SRC_CORE_OPTIONS_H_
#define HASHKIT_SRC_CORE_OPTIONS_H_

#include <cstdint>

#include "src/pagefile/eviction.h"
#include "src/util/hash_funcs.h"

namespace hashkit {

// How the package decides when to split a bucket (ablation A1 in DESIGN.md).
// The paper's contribution is the hybrid policy; the pure policies exist so
// benchmarks can quantify the hybrid's value.
enum class SplitPolicy : uint8_t {
  kHybrid = 0,        // fill-factor (controlled) + page-overflow (uncontrolled)
  kControlledOnly,    // dynahash-style: fill factor only
  kUncontrolledOnly,  // dbm-style timing: overflow only
};

// Crash-durability contract for a disk-backed table (hashkit-wal).
enum class Durability : uint8_t {
  // No write-ahead log.  A crash can tear pages mid-update; the original
  // package's behaviour and the default.
  kNone = 0,
  // Page images are logged before any main-file writeback, but commits are
  // not fsynced per-operation.  A crash never tears the table (recovery
  // restores a consistent prefix), but recent acknowledged operations may
  // be lost.  Explicit Sync() is a real durability barrier.
  kAsync,
  // As kAsync, plus the log is fsynced every `wal_group_commit` operations.
  // An acknowledged operation survives a crash once its group's fsync has
  // run; with wal_group_commit=1, every acknowledged operation survives.
  kSync,
};

struct HashOptions {
  // Bucket/page size in bytes.  Must be a power of two in
  // [kMinBucketSize, kMaxBucketSize].  Paper default: 256.
  uint32_t bsize = 256;

  // Desired average number of keys per bucket; drives controlled splitting.
  // Paper default: 8.
  uint32_t ffactor = 8;

  // Estimate of the final number of elements.  When nonzero the table is
  // created pre-sized (Figure 6's "known in advance" case); zero grows the
  // table from a single bucket.
  uint32_t nelem = 0;

  // Buffer-pool budget in bytes.  Paper default: 64 KB.  Zero keeps only
  // the minimum set of pages resident.
  uint64_t cachesize = 64 * 1024;

  // Built-in hash function selector; ignored when `custom_hash` is set.
  HashFuncId hash_id = HashFuncId::kDefault;

  // Optional user-defined hash function (paper: "hash functions may be
  // user-specified").  When reopening an existing table the package
  // verifies the function matches the one the table was built with.
  HashFn custom_hash = nullptr;

  SplitPolicy split_policy = SplitPolicy::kHybrid;

  // Takes an exclusive flock(2) on the file for the table's lifetime, so a
  // second process (or handle) cannot open it concurrently.  The paper
  // notes multi-user access as future work; single-writer exclusion is its
  // minimal safe form.
  bool exclusive_lock = false;

  // Extension addressing the paper's footnote ("the file does not contract
  // when keys are deleted"): when enabled, deletes reverse the linear-
  // hashing split sequence once the load falls below ffactor/4, merging
  // the last bucket into its buddy.  Off by default — the original
  // package's behaviour.
  bool auto_contract = false;

  // Crash-durability mode (hashkit-wal).  Anything but kNone opens a
  // write-ahead log beside the table file (`<path>.wal`) and replays it on
  // open; see OPERATIONS.md for the exact guarantees.
  Durability durability = Durability::kNone;

  // kSync only: fsync the log every Nth committed operation (group
  // commit).  1 = every operation.  Values < 1 are treated as 1.
  uint32_t wal_group_commit = 1;

  // Log size that triggers a checkpoint (flush table, truncate log).
  uint64_t wal_checkpoint_bytes = 4 * 1024 * 1024;

  // Archive the log for point-in-time recovery: every checkpoint copies
  // the log it truncates to `<path>.wal.<last_seq>` (FORMAT.md "WAL
  // archive").  Segments accumulate until the operator prunes them;
  // `db_tool restore` replays them up to a target LSN.
  bool wal_archive = false;

  // Buffer-pool replacement policy (hashkit-cache).
  EvictionPolicyKind eviction = EvictionPolicyKind::kClock;

  // Per-key time-to-live (hashkit-cache).  When set, every stored value
  // carries an 8-byte absolute-expiry stamp (milliseconds since the epoch,
  // 0 = never) ahead of the payload; the kv layer encodes/decodes the
  // stamp and treats expired keys as absent on every read path.  Because
  // the stamp lives inside the value bytes, page-level WAL replay,
  // replication, and backup preserve it with no extra machinery — an
  // expired key stays expired after recovery and never resurrects.  Every
  // handle/replica/cluster node serving one dataset must agree on this
  // flag (a stamped value read by a non-TTL handle is 8 bytes of garbage
  // prefix, and vice versa).
  bool ttl_enabled = false;

  // On-disk format for NEWLY created tables.  2 (the default) lays out a
  // per-page fingerprint tag array that the lookup path filters on; 1 is
  // the original layout, kept selectable so compatibility tests and
  // benchmarks can produce v1 files from the same binary.  Reopening an
  // existing table always keeps the format it was created with.
  uint32_t format_version = 2;
};

inline constexpr uint32_t kMinBucketSize = 64;
inline constexpr uint32_t kMaxBucketSize = 32768;  // 16-bit on-page offsets
inline constexpr uint32_t kDefaultFfactor = 8;

// Overflow addresses: 5-bit split point, 11-bit page number (paper's
// layout), so at most 32 split points and 2047 overflow pages per point.
inline constexpr uint32_t kSplitPointBits = 5;
inline constexpr uint32_t kOvflPageBits = 11;
inline constexpr uint32_t kMaxSplitPoints = 1u << kSplitPointBits;
inline constexpr uint32_t kMaxOvflPagesPerPoint = (1u << kOvflPageBits) - 1;

}  // namespace hashkit

#endif  // HASHKIT_SRC_CORE_OPTIONS_H_
