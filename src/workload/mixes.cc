#include "src/workload/mixes.h"

#include "src/util/random.h"

namespace hashkit {
namespace workload {

MixSpec MixA() {
  MixSpec spec;
  spec.reads = 0.5;
  spec.updates = 0.5;
  return spec;
}

MixSpec MixB() {
  MixSpec spec;
  spec.reads = 0.95;
  spec.updates = 0.05;
  return spec;
}

MixSpec MixC() {
  MixSpec spec;
  spec.reads = 1.0;
  spec.updates = 0.0;
  return spec;
}

MixSpec MixD() {
  MixSpec spec;
  spec.reads = 0.9;
  spec.updates = 0.0;
  spec.inserts = 0.1;
  return spec;
}

namespace {
std::string KeyForIndex(uint64_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(index));
  return buf;
}
}  // namespace

Trace GenerateTrace(const MixSpec& spec) {
  Rng rng(spec.seed);
  Trace trace;
  trace.preload_keys.reserve(spec.initial_keys);
  for (uint64_t i = 0; i < spec.initial_keys; ++i) {
    trace.preload_keys.push_back(KeyForIndex(i));
  }
  trace.preload_value = rng.AsciiString(spec.value_len);

  const double total = spec.reads + spec.updates + spec.inserts + spec.deletes;
  const double p_read = spec.reads / total;
  const double p_update = p_read + spec.updates / total;
  const double p_insert = p_update + spec.inserts / total;

  uint64_t next_key = spec.initial_keys;
  uint64_t live_high = spec.initial_keys;  // keys [0, live_high) exist-ish
  trace.ops.reserve(spec.operations);
  for (size_t i = 0; i < spec.operations; ++i) {
    const double roll = rng.NextDouble();
    Op op;
    if (roll < p_read) {
      op.type = OpType::kRead;
      op.key = KeyForIndex(spec.zipf_theta > 0 ? rng.Zipf(live_high, spec.zipf_theta)
                                               : rng.Uniform(live_high));
    } else if (roll < p_update) {
      op.type = OpType::kUpdate;
      op.key = KeyForIndex(spec.zipf_theta > 0 ? rng.Zipf(live_high, spec.zipf_theta)
                                               : rng.Uniform(live_high));
      op.value = rng.AsciiString(spec.value_len);
    } else if (roll < p_insert) {
      op.type = OpType::kInsert;
      op.key = KeyForIndex(next_key++);
      op.value = rng.AsciiString(spec.value_len);
      live_high = next_key;
    } else {
      op.type = OpType::kDelete;
      op.key = KeyForIndex(rng.Uniform(live_high));
    }
    trace.ops.push_back(std::move(op));
  }
  return trace;
}

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "read";
    case OpType::kUpdate:
      return "update";
    case OpType::kInsert:
      return "insert";
    case OpType::kDelete:
      return "delete";
  }
  return "?";
}

}  // namespace workload
}  // namespace hashkit
