// hashkit workload: the paper's password-file data set, synthesized.
//
// The original used a passwd file with ~300 accounts and built two records
// per account: one keyed by login name whose data is the remainder of the
// passwd entry, and one keyed by uid whose data is the entire entry.  We
// generate a deterministic passwd(5)-format file with the same structure.

#ifndef HASHKIT_SRC_WORKLOAD_PASSWD_H_
#define HASHKIT_SRC_WORKLOAD_PASSWD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hashkit {
namespace workload {

inline constexpr size_t kPaperAccountCount = 300;

struct PasswdRecord {
  std::string key;
  std::string value;
};

struct PasswdWorkload {
  // 2 * account_count records: login-keyed then uid-keyed per account.
  std::vector<PasswdRecord> records;
};

PasswdWorkload MakePasswdWorkload(size_t accounts = kPaperAccountCount, uint64_t seed = 42);

}  // namespace workload
}  // namespace hashkit

#endif  // HASHKIT_SRC_WORKLOAD_PASSWD_H_
