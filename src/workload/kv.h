// hashkit workload: generic random key/value generators for stress and
// property tests.

#ifndef HASHKIT_SRC_WORKLOAD_KV_H_
#define HASHKIT_SRC_WORKLOAD_KV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hashkit {
namespace workload {

struct KvSpec {
  size_t count = 1000;
  size_t min_key_len = 4;
  size_t max_key_len = 16;
  size_t min_val_len = 0;
  size_t max_val_len = 64;
  uint64_t seed = 7;
};

struct KvPair {
  std::string key;
  std::string value;
};

// Unique keys; arbitrary (possibly binary) bytes.
std::vector<KvPair> GenerateKv(const KvSpec& spec);

}  // namespace workload
}  // namespace hashkit

#endif  // HASHKIT_SRC_WORKLOAD_KV_H_
