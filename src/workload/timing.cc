#include "src/workload/timing.h"

#include <sys/resource.h>
#include <sys/time.h>

#include <chrono>
#include <cstdio>

namespace hashkit {
namespace workload {

namespace {
double TimevalToSec(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
}
}  // namespace

TimingSample& TimingSample::operator+=(const TimingSample& other) {
  user_sec += other.user_sec;
  sys_sec += other.sys_sec;
  elapsed_sec += other.elapsed_sec;
  return *this;
}

TimingSample TimingSample::operator/(double divisor) const {
  return {user_sec / divisor, sys_sec / divisor, elapsed_sec / divisor};
}

TimingSample MeasureOnce(const std::function<void()>& body) {
  rusage before{};
  rusage after{};
  getrusage(RUSAGE_SELF, &before);
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto end = std::chrono::steady_clock::now();
  getrusage(RUSAGE_SELF, &after);

  TimingSample sample;
  sample.user_sec = TimevalToSec(after.ru_utime) - TimevalToSec(before.ru_utime);
  sample.sys_sec = TimevalToSec(after.ru_stime) - TimevalToSec(before.ru_stime);
  sample.elapsed_sec = std::chrono::duration<double>(end - start).count();
  return sample;
}

TimingSample MeasureAveraged(int runs, const std::function<void()>& setup,
                             const std::function<void()>& body) {
  TimingSample total;
  for (int i = 0; i < runs; ++i) {
    if (setup) {
      setup();
    }
    total += MeasureOnce(body);
  }
  return total / static_cast<double>(runs);
}

double PercentImprovement(double old_time, double new_time) {
  if (old_time == 0.0) {
    return 0.0;
  }
  return 100.0 * (old_time - new_time) / old_time;
}

std::string FormatSample(const TimingSample& sample) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "user %7.3f  sys %7.3f  elapsed %7.3f", sample.user_sec,
                sample.sys_sec, sample.elapsed_sec);
  return buf;
}

}  // namespace workload
}  // namespace hashkit
