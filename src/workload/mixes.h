// hashkit workload: operation-mix generator (YCSB-style), a modern
// complement to the paper's create/read/verify/seq suites.  Generates a
// deterministic trace of operations over a keyspace with configurable
// read/update/insert/delete proportions and Zipf-skewed key popularity.

#ifndef HASHKIT_SRC_WORKLOAD_MIXES_H_
#define HASHKIT_SRC_WORKLOAD_MIXES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hashkit {
namespace workload {

enum class OpType : uint8_t { kRead, kUpdate, kInsert, kDelete };

struct Op {
  OpType type;
  std::string key;
  std::string value;  // for updates/inserts
};

struct MixSpec {
  // Proportions; normalized internally.
  double reads = 0.5;
  double updates = 0.5;
  double inserts = 0.0;
  double deletes = 0.0;

  size_t initial_keys = 10000;  // preloaded population
  size_t operations = 100000;
  size_t value_len = 100;
  double zipf_theta = 0.99;  // key popularity skew (0 = uniform)
  uint64_t seed = 1;
};

// The classic mixes.
MixSpec MixA();  // 50/50 read/update
MixSpec MixB();  // 95/5 read/update
MixSpec MixC();  // read only
MixSpec MixD();  // 90 read / 10 insert (working set drifts toward new keys)

struct Trace {
  std::vector<std::string> preload_keys;
  std::string preload_value;
  std::vector<Op> ops;
};

Trace GenerateTrace(const MixSpec& spec);

const char* OpTypeName(OpType type);

}  // namespace workload
}  // namespace hashkit

#endif  // HASHKIT_SRC_WORKLOAD_MIXES_H_
