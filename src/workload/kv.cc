#include "src/workload/kv.h"

#include <unordered_set>

#include "src/util/random.h"

namespace hashkit {
namespace workload {

std::vector<KvPair> GenerateKv(const KvSpec& spec) {
  Rng rng(spec.seed);
  std::unordered_set<std::string> seen;
  std::vector<KvPair> pairs;
  pairs.reserve(spec.count);
  while (pairs.size() < spec.count) {
    std::string key = rng.ByteString(rng.Range(spec.min_key_len, spec.max_key_len));
    if (!seen.insert(key).second) {
      continue;
    }
    std::string value = rng.ByteString(rng.Range(spec.min_val_len, spec.max_val_len));
    pairs.push_back({std::move(key), std::move(value)});
  }
  return pairs;
}

}  // namespace workload
}  // namespace hashkit
