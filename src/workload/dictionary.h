// hashkit workload: the paper's dictionary data set, synthesized.
//
// The original tests used 24474 keys from an online dictionary
// (/usr/share/dict/words on the HP 9000), with each key's data value being
// the ASCII string of an integer 1..24474.  No dictionary file ships in
// this environment, so we generate a deterministic English-like word list
// with the same cardinality and a comparable length distribution
// (syllable-built words, 2-24 characters, mean near 8).  Hashing behaviour
// depends on key count, uniqueness, and length profile — not on spelling —
// so the substitution preserves the experiments' shape (see DESIGN.md §3).

#ifndef HASHKIT_SRC_WORKLOAD_DICTIONARY_H_
#define HASHKIT_SRC_WORKLOAD_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hashkit {
namespace workload {

inline constexpr size_t kPaperDictionarySize = 24474;

// Deterministic for a given (count, seed).
std::vector<std::string> GenerateDictionaryWords(size_t count = kPaperDictionarySize,
                                                 uint64_t seed = 1991);

struct DictionaryWorkload {
  std::vector<std::string> keys;
  std::vector<std::string> values;  // "1" .. "N", as in the paper
};

DictionaryWorkload MakeDictionaryWorkload(size_t count = kPaperDictionarySize,
                                          uint64_t seed = 1991);

// Average key+value length, used to evaluate the paper's equation (1).
double AveragePairLength(const DictionaryWorkload& workload);

}  // namespace workload
}  // namespace hashkit

#endif  // HASHKIT_SRC_WORKLOAD_DICTIONARY_H_
