#include "src/workload/dictionary.h"

#include <unordered_set>

#include "src/util/random.h"

namespace hashkit {
namespace workload {

namespace {

const char* const kOnsets[] = {"b",  "bl", "br", "c",  "ch", "cl", "cr", "d",  "dr", "f",
                               "fl", "fr", "g",  "gl", "gr", "h",  "j",  "k",  "l",  "m",
                               "n",  "p",  "pl", "pr", "qu", "r",  "s",  "sc", "sh", "sk",
                               "sl", "sm", "sn", "sp", "st", "str", "sw", "t",  "th", "tr",
                               "tw", "v",  "w",  "wh", "y",  "z"};
const char* const kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "ee", "ie",
                               "oa", "oo", "ou", "ay", "oy", "aw", "ew"};
const char* const kCodas[] = {"",   "b",  "ck", "d",  "ft", "g",  "l",  "ld", "ll", "lt",
                              "m",  "mp", "n",  "nd", "ng", "nk", "nt", "p",  "r",  "rd",
                              "rk", "rn", "rt", "s",  "sh", "sk", "sp", "ss", "st", "t",
                              "th", "x",  "zz"};
const char* const kSuffixes[] = {"",    "",    "",    "s",   "ed",  "ing", "er",  "est",
                                 "ly",  "ness", "ful", "less", "ment", "tion", "able", "ish"};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&table)[N]) {
  return table[rng.Uniform(N)];
}

std::string MakeWord(Rng& rng) {
  // 1-3 syllables plus an occasional suffix gives a mean length near 8.
  const auto syllables = 1 + rng.Uniform(3);
  std::string word;
  for (uint64_t s = 0; s < syllables; ++s) {
    word += Pick(rng, kOnsets);
    word += Pick(rng, kNuclei);
    word += Pick(rng, kCodas);
  }
  word += Pick(rng, kSuffixes);
  return word;
}

}  // namespace

std::vector<std::string> GenerateDictionaryWords(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> words;
  words.reserve(count);
  while (words.size() < count) {
    std::string word = MakeWord(rng);
    // Occasionally append a digit-free disambiguator syllable rather than
    // rejecting, so generation terminates even at high occupancy.
    while (!seen.insert(word).second) {
      word += Pick(rng, kOnsets);
      word += Pick(rng, kNuclei);
    }
    words.push_back(std::move(word));
  }
  return words;
}

DictionaryWorkload MakeDictionaryWorkload(size_t count, uint64_t seed) {
  DictionaryWorkload workload;
  workload.keys = GenerateDictionaryWords(count, seed);
  workload.values.reserve(count);
  for (size_t i = 1; i <= count; ++i) {
    workload.values.push_back(std::to_string(i));
  }
  return workload;
}

double AveragePairLength(const DictionaryWorkload& workload) {
  size_t total = 0;
  for (size_t i = 0; i < workload.keys.size(); ++i) {
    total += workload.keys[i].size() + workload.values[i].size();
  }
  return workload.keys.empty() ? 0.0
                               : static_cast<double>(total) /
                                     static_cast<double>(workload.keys.size());
}

}  // namespace workload
}  // namespace hashkit
