// hashkit workload: user/system/elapsed timing, matching the paper's
// reporting.
//
// The paper reports user time, system time, and elapsed time for each test
// (averaged over five runs, ~1% variance).  We measure user/system via
// getrusage(RUSAGE_SELF) deltas and elapsed via a steady clock, and provide
// the same averaging protocol plus the paper's improvement formula
// (% = 100 * (old - new) / old).

#ifndef HASHKIT_SRC_WORKLOAD_TIMING_H_
#define HASHKIT_SRC_WORKLOAD_TIMING_H_

#include <functional>
#include <string>

namespace hashkit {
namespace workload {

struct TimingSample {
  double user_sec = 0.0;
  double sys_sec = 0.0;
  double elapsed_sec = 0.0;

  TimingSample& operator+=(const TimingSample& other);
  TimingSample operator/(double divisor) const;
};

// Runs `body` once and returns its resource usage.
TimingSample MeasureOnce(const std::function<void()>& body);

// The paper's protocol: run `runs` times (default five) and average.
// `setup` runs before each timed body (e.g. deleting the previous file) and
// is excluded from the measurement.
TimingSample MeasureAveraged(int runs, const std::function<void()>& setup,
                             const std::function<void()>& body);

// 100 * (old - new) / old, the paper's improvement metric.
double PercentImprovement(double old_time, double new_time);

// "user 6.4  sys 32.5  elapsed 90.4" style formatting.
std::string FormatSample(const TimingSample& sample);

}  // namespace workload
}  // namespace hashkit

#endif  // HASHKIT_SRC_WORKLOAD_TIMING_H_
