#include "src/workload/passwd.h"

#include <unordered_set>

#include "src/util/random.h"

namespace hashkit {
namespace workload {

namespace {
const char* const kFirstNames[] = {"alice", "bob",   "carol", "dave",  "erin",  "frank",
                                   "grace", "heidi", "ivan",  "judy",  "karl",  "laura",
                                   "mike",  "nina",  "oscar", "peggy", "quinn", "rob",
                                   "sybil", "trent", "ursula", "vic",  "wendy", "xavier"};
const char* const kShells[] = {"/bin/sh", "/bin/csh", "/bin/ksh", "/usr/local/bin/tcsh"};
}  // namespace

PasswdWorkload MakePasswdWorkload(size_t accounts, uint64_t seed) {
  Rng rng(seed);
  PasswdWorkload workload;
  workload.records.reserve(accounts * 2);
  std::unordered_set<std::string> used_logins;

  for (size_t i = 0; i < accounts; ++i) {
    std::string login =
        std::string(kFirstNames[rng.Uniform(std::size(kFirstNames))]) + rng.AsciiString(2);
    while (!used_logins.insert(login).second) {
      login += static_cast<char>('a' + rng.Uniform(26));
    }
    const uint64_t uid = 100 + i;
    const uint64_t gid = 10 + rng.Uniform(20);
    const std::string gecos =
        login + " " + rng.AsciiString(6) + ",Room " + std::to_string(rng.Range(100, 999));
    const std::string rest = "*:" + std::to_string(uid) + ":" + std::to_string(gid) + ":" +
                             gecos + ":/home/" + login + ":" +
                             kShells[rng.Uniform(std::size(kShells))];
    const std::string entry = login + ":" + rest;

    // Record 1: login name -> remainder of the passwd entry.
    workload.records.push_back({login, rest});
    // Record 2: uid -> entire passwd entry.
    workload.records.push_back({std::to_string(uid), entry});
  }
  return workload;
}

}  // namespace workload
}  // namespace hashkit
