#include "src/cluster/cluster_client.h"

#include <cstdlib>
#include <utility>

namespace hashkit {
namespace cluster {

namespace {

bool IsDataOp(net::Opcode op) {
  return op == net::Opcode::kPut || op == net::Opcode::kGet || op == net::Opcode::kDel;
}

}  // namespace

Result<std::unique_ptr<ClusterClient>> ClusterClient::Connect(
    const std::vector<std::string>& seeds, const ClusterClientOptions& options) {
  if (seeds.empty()) {
    return Status::InvalidArgument("cluster client needs at least one seed");
  }
  std::unique_ptr<ClusterClient> client(new ClusterClient(options));
  client->seeds_ = seeds;
  HASHKIT_RETURN_IF_ERROR(client->RefreshMap());
  return client;
}

net::Client* ClusterClient::ClientFor(const std::string& address) {
  const auto it = conns_.find(address);
  if (it != conns_.end()) {
    return it->second.get();
  }
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return nullptr;
  }
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return nullptr;
  }
  auto res = net::Client::Connect(host, static_cast<uint16_t>(port), options_.net);
  if (!res.ok()) {
    return nullptr;
  }
  net::Client* raw = res->get();
  conns_[address] = std::move(*res);
  return raw;
}

void ClusterClient::DropClient(const std::string& address) {
  conns_.erase(address);
  ++stats_.reconnects;
}

bool ClusterClient::AdoptIfNewer(std::string_view map_bytes) {
  ClusterMap m;
  size_t consumed = 0;
  if (!m.Deserialize(map_bytes, &consumed).ok()) {
    return false;
  }
  if (m.version <= map_.version) {
    return false;
  }
  map_ = std::move(m);
  return true;
}

Status ClusterClient::RefreshMap() {
  // Every node of the current image is a candidate seed, then the original
  // seed list (which may include nodes the image has forgotten).
  std::vector<std::string> candidates;
  for (const NodeInfo& n : map_.nodes) {
    candidates.push_back(n.Address());
  }
  for (const std::string& s : seeds_) {
    candidates.push_back(s);
  }
  Status last = Status::IoError("no map candidates");
  for (const std::string& addr : candidates) {
    net::Client* c = ClientFor(addr);
    if (c == nullptr) {
      last = Status::IoError("cannot reach " + addr);
      continue;
    }
    net::Request req;
    req.op = net::Opcode::kMapGet;
    std::vector<net::Response> resps;
    last = c->Pipeline({req}, &resps);
    if (!last.ok()) {
      DropClient(addr);
      continue;
    }
    ++stats_.map_refreshes;
    if (resps[0].status != StatusCode::kOk) {
      last = Status(resps[0].status, resps[0].value);
      continue;
    }
    ClusterMap m;
    size_t consumed = 0;
    HASHKIT_RETURN_IF_ERROR(m.Deserialize(resps[0].value, &consumed));
    if (m.version > map_.version) {
      map_ = std::move(m);
    }
    return Status::Ok();
  }
  return Status(last.code(), "cluster map refresh failed: " + last.message());
}

Status ClusterClient::DoOp(const net::Request& req, net::Response* out) {
  if (!IsDataOp(req.op)) {
    return Status::InvalidArgument("cluster client routes data ops only");
  }
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (map_.version == 0) {
      HASHKIT_RETURN_IF_ERROR(RefreshMap());
    }
    const uint32_t bucket = map_.BucketOfKey(req.key);
    const NodeInfo* owner = map_.FindNode(map_.OwnerOf(bucket));
    if (owner == nullptr) {
      // An image can never name an unknown owner (Deserialize validates),
      // so this is unreachable — but a refresh is the safe answer.
      HASHKIT_RETURN_IF_ERROR(RefreshMap());
      continue;
    }
    const std::string addr = owner->Address();
    net::Client* c = ClientFor(addr);
    if (c == nullptr) {
      // Owner unreachable: maybe it restarted on a new address and our
      // image predates that.
      const uint32_t before = map_.version;
      HASHKIT_RETURN_IF_ERROR(RefreshMap());
      if (map_.version == before) {
        return Status::IoError("bucket owner " + addr + " unreachable");
      }
      continue;
    }
    std::vector<net::Response> resps;
    const Status st = c->Pipeline({req}, &resps);
    if (!st.ok()) {
      // Transport error mid-call: the connection is poisoned; retry on a
      // fresh one (possibly against a fresher image).
      DropClient(addr);
      continue;
    }
    if (resps[0].status == StatusCode::kMoved) {
      ++stats_.moved_corrections;
      if (!AdoptIfNewer(resps[0].value)) {
        // The server's map is not newer than ours yet both disagree about
        // ownership — we are mid-propagation.  Ask around once.
        HASHKIT_RETURN_IF_ERROR(RefreshMap());
      }
      continue;
    }
    *out = std::move(resps[0]);
    return Status::Ok();
  }
  return Status::IoError("no owner found for key after " +
                         std::to_string(options_.max_attempts) + " attempts");
}

Status ClusterClient::Put(std::string_view key, std::string_view value, bool overwrite) {
  net::Request req;
  req.op = net::Opcode::kPut;
  req.key = key;
  req.value = value;
  if (!overwrite) {
    req.flags |= net::kFlagNoOverwrite;
  }
  net::Response resp;
  HASHKIT_RETURN_IF_ERROR(DoOp(req, &resp));
  return resp.status == StatusCode::kOk ? Status::Ok() : Status(resp.status, resp.value);
}

Status ClusterClient::Get(std::string_view key, std::string* value) {
  net::Request req;
  req.op = net::Opcode::kGet;
  req.key = key;
  net::Response resp;
  HASHKIT_RETURN_IF_ERROR(DoOp(req, &resp));
  if (resp.status != StatusCode::kOk) {
    return Status(resp.status, resp.value);
  }
  if (value != nullptr) {
    *value = std::move(resp.value);
  }
  return Status::Ok();
}

Status ClusterClient::Delete(std::string_view key) {
  net::Request req;
  req.op = net::Opcode::kDel;
  req.key = key;
  net::Response resp;
  HASHKIT_RETURN_IF_ERROR(DoOp(req, &resp));
  return resp.status == StatusCode::kOk ? Status::Ok() : Status(resp.status, resp.value);
}

Status ClusterClient::Pipeline(const std::vector<net::Request>& requests,
                               std::vector<net::Response>* responses) {
  responses->clear();
  responses->resize(requests.size());
  if (map_.version == 0) {
    HASHKIT_RETURN_IF_ERROR(RefreshMap());
  }

  // Group by target node under the current image, one pipelined batch per
  // node; anything that comes back MOVED (or rides a dead connection) is
  // retried individually through the self-correcting path.
  std::map<std::string, std::vector<size_t>> by_node;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!IsDataOp(requests[i].op)) {
      return Status::InvalidArgument("cluster pipeline routes data ops only");
    }
    const uint32_t bucket = map_.BucketOfKey(requests[i].key);
    const NodeInfo* owner = map_.FindNode(map_.OwnerOf(bucket));
    if (owner == nullptr) {
      return Status::Corruption("image names unknown owner");
    }
    by_node[owner->Address()].push_back(i);
  }

  std::vector<size_t> retries;
  for (const auto& [addr, indices] : by_node) {
    net::Client* c = ClientFor(addr);
    bool batch_failed = c == nullptr;
    std::vector<net::Response> resps;
    if (!batch_failed) {
      std::vector<net::Request> batch;
      batch.reserve(indices.size());
      for (const size_t i : indices) {
        batch.push_back(requests[i]);
      }
      if (!c->Pipeline(batch, &resps).ok()) {
        DropClient(addr);
        batch_failed = true;
      }
    }
    if (batch_failed) {
      retries.insert(retries.end(), indices.begin(), indices.end());
      continue;
    }
    for (size_t j = 0; j < indices.size(); ++j) {
      if (resps[j].status == StatusCode::kMoved) {
        ++stats_.moved_corrections;
        AdoptIfNewer(resps[j].value);
        retries.push_back(indices[j]);
      } else {
        (*responses)[indices[j]] = std::move(resps[j]);
      }
    }
  }
  for (const size_t i : retries) {
    HASHKIT_RETURN_IF_ERROR(DoOp(requests[i], &(*responses)[i]));
  }
  return Status::Ok();
}

}  // namespace cluster
}  // namespace hashkit
