// hashkit-cluster: one node's membership in the LH* keyspace, including
// the bucket-migration engine.
//
// A ClusterNode sits between the network server and the local store (it
// implements net::ClusterHooks, wired in via ServerOptions::cluster).
// Every data request is ownership-checked against the node's current map:
// owned buckets are served locally, everything else is answered MOVED with
// the node's map as the correction payload (LH*TH image adjustment).
//
// Migration moves one bucket at a time with *cutover before copy*:
//
//   source: 1. persist {outbound bucket b -> target T} + map v+1 (owner of
//              b is now T) in the node's .cmap file, install the map — from
//              this instant the source answers MOVED for b (stragglers are
//              corrected, not served stale)
//           2. MIGRATE start to T: T adopts map v+1, persists an inbound
//              marker, and begins tracking every client write to b in an
//              in-memory dirty-key set (clients learn v+1 from MOVED, so
//              writes to b race the copy — the dirty set wins those races)
//           3. collect b's pairs under an exclusive data latch (the store's
//              scan cursor is shared state; mutators are held off briefly)
//           4. stream the pairs as pipelined MIGRATE data frames; T applies
//              each unless the key is dirty (a newer client write/delete
//              must not be resurrected by the copy)
//           5. MIGRATE end: T drops the inbound marker + dirty set
//           6. delete the moved pairs locally, push map v+1 to all peers,
//              clear the outbound marker
//
// Both markers live in the .cmap file (atomic tmp+fsync+rename, CRC'd), so
// a crash on either side resumes at step 2 on restart: the transfer is
// idempotent (data frames overwrite), the map install is already durable,
// and each node's WAL covers its own store mutations.  A cluster split is
// the same engine — AdvanceSplit creates the new bucket, whose pairs are
// re-addressed out of the split bucket; when the new bucket lands on the
// coordinating node itself no data moves at all (the paper's free split).
//
// One migration runs at a time per coordinating node, and only the owner
// of a bucket may move it (and only the owner of bucket `next` may split).
// That rule is what makes stale maps harmless: a node's owned set shrinks
// only through its own coordinated, version-bumping operations.

#ifndef HASHKIT_SRC_CLUSTER_MIGRATION_H_
#define HASHKIT_SRC_CLUSTER_MIGRATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_map.h"
#include "src/kv/kv_store.h"
#include "src/net/cluster_hooks.h"
#include "src/util/status.h"

namespace hashkit {
namespace cluster {

struct ClusterNodeOptions {
  uint32_t node_id = 0;
  // How this node appears in the map other nodes and clients use to reach
  // it; must resolve back to this server's listen address.
  std::string advertise_host = "127.0.0.1";
  uint16_t advertise_port = 0;
  // Durable map + migration-marker state, e.g. "<data path>.cmap".  Empty
  // disables persistence (tests only; a restart then loses the map).
  std::string map_path;
  // Pairs per pipelined MIGRATE data batch.
  uint32_t migrate_batch = 64;
  // When > 0: after a locally-owned PUT, if the store holds more than
  // `split_threshold * owned_buckets` pairs and this node owns bucket
  // `next`, a split is scheduled automatically (the LH* load trigger).
  uint64_t split_threshold = 0;
  // When > 0: the engine pushes this node's current map to every peer
  // whenever no other work arrives for this many milliseconds (periodic
  // anti-entropy gossip).  A node that missed a migration's map push —
  // partitioned, restarting, overloaded — converges to the newest map
  // without waiting for client traffic to bounce a MOVED off it.  0
  // disables gossip (maps still spread via migration pushes and MOVED).
  uint32_t gossip_interval_ms = 0;
  // Test failpoint: abort the migration engine after streaming N data
  // batches, leaving the persisted markers in place as a crash would.
  uint32_t testonly_abort_after_batches = 0;
};

// Monotonic counters for STATS//metrics; all relaxed.
struct ClusterCounters {
  std::atomic<uint64_t> moved_replies{0};       // requests answered MOVED
  std::atomic<uint64_t> map_pushes_in{0};       // MIGRATE map frames accepted
  std::atomic<uint64_t> map_pushes_out{0};      // map frames pushed to peers
  std::atomic<uint64_t> migrations_out{0};      // buckets fully sent away
  std::atomic<uint64_t> migrations_in{0};       // buckets fully received
  std::atomic<uint64_t> keys_migrated_out{0};
  std::atomic<uint64_t> keys_migrated_in{0};
  std::atomic<uint64_t> migrate_data_skipped{0};  // dirty-key copy suppressions
  std::atomic<uint64_t> splits_local{0};          // free splits (no data moved)
  std::atomic<uint64_t> splits_remote{0};
  std::atomic<uint64_t> migration_failures{0};    // engine runs that gave up
};

class ClusterNode : public net::ClusterHooks {
 public:
  // `store` is borrowed, must be thread-safe (the server shares it), and
  // must outlive the node.
  ClusterNode(kv::KvStore* store, ClusterNodeOptions options);
  ~ClusterNode() override;
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  // Brings the node into a cluster, in precedence order:
  //  1. a persisted map at map_path (restart; resumes any pending
  //     migration from its marker),
  //  2. `join_seed` non-empty: MIGRATE join via that "host:port" — the
  //     seed assigns no buckets, the new node starts empty and is given
  //     load via split/move,
  //  3. `peers`: static bootstrap — every node derives the identical
  //     version-1 map, no coordination needed.
  // Call after the owning Server has started (advertise_port must be the
  // real bound port).  Spawns the migration engine thread.
  Status Start(const std::vector<NodeInfo>& peers, const std::string& join_seed = "");

  // Stops the engine thread; in-flight migration state stays persisted and
  // resumes on the next Start.  Idempotent.
  void Stop();

  // net::ClusterHooks:
  bool HandleRequest(const net::Request& req, net::Response* resp) override;
  void AppendStatsText(std::string* text) const override;
  void AppendMetricsText(std::string* text) const override;

  // Admin entry points (also reachable over the wire via MIGRATE frames).
  // Both only *schedule*; the engine thread performs the transfer.
  Status ScheduleMove(uint32_t bucket, uint32_t target_node);
  Status ScheduleSplit();

  // Observers (test + tool surface).
  ClusterMap MapSnapshot() const;
  uint32_t node_id() const { return options_.node_id; }
  const ClusterCounters& counters() const { return counters_; }
  // True while a scheduled or resumed transfer has not finished.
  bool MigrationActive() const;
  // True when the engine stopped on the testonly failpoint (markers left
  // in place, simulating a crash mid-stream).
  bool AbortedAtFailpoint() const { return aborted_at_failpoint_.load(); }

 private:
  struct PendingMarker {
    enum class Role : uint8_t { kNone = 0, kOutbound = 1, kInbound = 2 };
    Role role = Role::kNone;
    uint32_t bucket = 0;
    uint32_t target = 0;  // outbound only
  };
  struct Job {
    enum class Kind { kTransfer, kSplit, kPushMap } kind = Kind::kPushMap;
    uint32_t bucket = 0;
    uint32_t target = 0;
    bool installed = false;  // kTransfer: cutover already persisted (resume)
  };

  // Data-path handlers (worker threads).
  bool HandleData(const net::Request& req, net::Response* resp);
  bool HandleMigrate(const net::Request& req, net::Response* resp);
  void FillMovedLocked(net::Response* resp);  // mu_ held

  // Engine (single background thread).
  void EngineMain();
  void RunTransfer(Job job);
  void RunSplit();
  Status ExecuteTransfer(uint32_t bucket, uint32_t target_node);
  void PushMapToPeers();

  // Map/marker persistence (mu_ held).
  Status PersistLocked();
  Status LoadPersisted();

  void Enqueue(Job job);

  kv::KvStore* store_;
  const ClusterNodeOptions options_;
  ClusterCounters counters_;

  // mu_ guards the map, markers, and the inbound dirty set.  Ordering:
  // data_mu_ (shared) is always taken before mu_ on the request path;
  // the engine takes them independently, never nested.
  mutable std::mutex mu_;
  ClusterMap map_;
  PendingMarker marker_;
  // Keys written by clients while their bucket is migrating in; the copy
  // stream must not overwrite them.  Valid only while marker_ is kInbound.
  std::unordered_set<std::string> inbound_dirty_;

  // Serializes the store's shared scan cursor against migration collection:
  // every cluster-served store op holds it shared; the collector takes it
  // exclusive for the duration of its Scan pass.
  std::shared_mutex data_mu_;

  // Engine queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool engine_stop_ = false;
  bool engine_busy_ = false;
  std::thread engine_;
  std::atomic<bool> started_{false};
  std::atomic<bool> aborted_at_failpoint_{false};
  std::atomic<bool> split_pending_{false};
  std::atomic<uint64_t> puts_since_split_check_{0};

  // Live transfer progress for STATS (engine thread writes, STATS reads).
  std::atomic<uint32_t> migrating_bucket_{0};
  std::atomic<uint64_t> migrate_keys_streamed_{0};
  std::atomic<uint64_t> migrate_keys_total_{0};
};

}  // namespace cluster
}  // namespace hashkit

#endif  // HASHKIT_SRC_CLUSTER_MIGRATION_H_
