// hashkit-cluster: the client side of LH* addressing.
//
// A ClusterClient holds a possibly-stale *image* of the cluster map and a
// cached connection per node.  Every operation hashes its key against the
// image, goes straight to the node the image names, and trusts the server
// to say otherwise: a MOVED reply carries the server's current map, the
// client adopts it if strictly newer and retries.  This is the LH*TH
// client protocol — no directory service, no broadcast; a client with a
// cold image pays a bounded number of extra hops and then stays current.
//
// Like net::Client, a ClusterClient is not thread-safe; give each thread
// its own (they each converge on the same map independently).

#ifndef HASHKIT_SRC_CLUSTER_CLUSTER_CLIENT_H_
#define HASHKIT_SRC_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_map.h"
#include "src/net/client.h"
#include "src/net/proto.h"
#include "src/util/status.h"

namespace hashkit {
namespace cluster {

struct ClusterClientOptions {
  net::ClientOptions net;
  // A routing attempt = one send to the node the current image names.
  // Each MOVED or transport error costs one attempt (and refreshes or
  // adjusts the image); hitting the cap means the cluster never converged
  // for this key.
  int max_attempts = 8;
};

struct ClusterClientStats {
  uint64_t moved_corrections = 0;  // MOVED replies consumed
  uint64_t map_refreshes = 0;      // explicit MAP_GET round trips
  uint64_t reconnects = 0;         // cached connections discarded on error
};

class ClusterClient {
 public:
  // Fetches an initial map from the first reachable seed ("host:port"
  // strings — any cluster node works as a seed).
  static Result<std::unique_ptr<ClusterClient>> Connect(
      const std::vector<std::string>& seeds, const ClusterClientOptions& options);
  static Result<std::unique_ptr<ClusterClient>> Connect(const std::vector<std::string>& seeds) {
    return Connect(seeds, ClusterClientOptions());
  }

  // KvStore-shaped calls, addressed by the image and self-correcting.
  Status Put(std::string_view key, std::string_view value, bool overwrite = true);
  Status Get(std::string_view key, std::string* value);
  Status Delete(std::string_view key);

  // Pipelines `requests` (data ops only: PUT/GET/DEL), grouping them by
  // target node under the current image.  Responses come back in request
  // order; requests answered MOVED are retried individually after the
  // image adjusts.  The returned Status covers total routing failure only.
  Status Pipeline(const std::vector<net::Request>& requests,
                  std::vector<net::Response>* responses);

  // Forces a MAP_GET against a node in the image (tests; also the escape
  // hatch when every node of the image is unreachable).
  Status RefreshMap();

  // Deliberately installs a stale/foreign image (tests).
  void OverrideMap(ClusterMap map) { map_ = std::move(map); }

  const ClusterMap& map() const { return map_; }
  const ClusterClientStats& stats() const { return stats_; }

 private:
  explicit ClusterClient(ClusterClientOptions options) : options_(std::move(options)) {}

  // One routed round trip; adopts MOVED maps, drops dead connections.
  Status DoOp(const net::Request& req, net::Response* out);
  net::Client* ClientFor(const std::string& address);
  void DropClient(const std::string& address);
  // Adopts `map_bytes` if it parses and is strictly newer; returns whether
  // the image changed.
  bool AdoptIfNewer(std::string_view map_bytes);

  ClusterClientOptions options_;
  ClusterMap map_;
  std::map<std::string, std::unique_ptr<net::Client>> conns_;  // by "host:port"
  std::vector<std::string> seeds_;
  ClusterClientStats stats_;
};

}  // namespace cluster
}  // namespace hashkit

#endif  // HASHKIT_SRC_CLUSTER_CLUSTER_CLIENT_H_
