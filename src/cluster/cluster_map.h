// hashkit-cluster: the LH* cluster map — the only piece of shared state in
// the distributed linear-hash keyspace.
//
// The paper's table addresses a key by (level, next): hash the key to
// `level` bits, and if that lands before the next-split pointer, use
// `level + 1` bits.  LH* (see PAPERS.md, LH*TH) keeps exactly that math
// but assigns each *bucket* to a server node.  A map is a versioned
// snapshot of {level, next, bucket -> node}; servers carry the truth for
// the buckets they own, clients cache a possibly-stale *image* and are
// corrected lazily via MOVED replies.  There is no central directory: any
// node's map answers any client, and a stale image costs extra hops, never
// a wrong answer (a node always knows the newest map for its own buckets,
// because only the owner itself ever gives a bucket away).
//
// Maps are totally ordered by `version`; every mutation (split, move,
// join, leave) bumps it by one, performed by exactly one coordinating node
// which then pushes the new map to its peers (anti-entropy; the MOVED path
// covers any push that is lost).

#ifndef HASHKIT_SRC_CLUSTER_CLUSTER_MAP_H_
#define HASHKIT_SRC_CLUSTER_CLUSTER_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace hashkit {
namespace cluster {

// Node ids are dense small integers chosen at bootstrap (or assigned by the
// join coordinator); they never change for the life of a node and are never
// reused while the node is in the map.
struct NodeInfo {
  uint32_t id = 0;
  std::string host;
  uint16_t port = 0;

  std::string Address() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const NodeInfo& a, const NodeInfo& b) {
    return a.id == b.id && a.host == b.host && a.port == b.port;
  }
};

// The hash every cluster participant applies to a key before the (level,
// next) math.  Fixed protocol-wide (independent of whatever hash each
// node's local store uses internally): clients and servers must agree on
// it byte-for-byte or addressing falls apart.
uint32_t ClusterKeyHash(std::string_view key);

struct ClusterMap {
  uint32_t version = 0;  // 0 = "no map"; real maps start at 1
  uint8_t level = 0;     // split level i: at least 2^i buckets exist
  uint32_t next = 0;     // next bucket to split (< 2^level)
  std::vector<NodeInfo> nodes;
  // bucket -> owning node id; size == next + (1u << level).
  std::vector<uint32_t> bucket_owner;

  uint32_t bucket_count() const { return static_cast<uint32_t>(bucket_owner.size()); }

  // The paper's linear-hash addressing over cluster buckets.
  uint32_t BucketOfHash(uint32_t hash) const {
    uint32_t b = hash & ((1u << level) - 1);
    if (b < next) {
      b = hash & ((1u << (level + 1)) - 1);
    }
    return b;
  }
  uint32_t BucketOfKey(std::string_view key) const { return BucketOfHash(ClusterKeyHash(key)); }

  // Owner node id of `bucket` (callers ensure bucket < bucket_count()).
  uint32_t OwnerOf(uint32_t bucket) const { return bucket_owner[bucket]; }

  const NodeInfo* FindNode(uint32_t node_id) const;
  bool HasNode(uint32_t node_id) const { return FindNode(node_id) != nullptr; }
  uint32_t BucketsOwnedBy(uint32_t node_id) const;

  // Advances the split pointer by one step — the new bucket (next + 2^level)
  // is assigned to `target_node` and `next` moves on, rolling the level
  // over when it wraps (exactly the table's split cadence, across nodes).
  // Bumps version.  Returns the id of the bucket that was created.
  uint32_t AdvanceSplit(uint32_t target_node);

  // Wire/disk serialization (little-endian, self-delimiting):
  //   u32 'HKMP' | u32 version | u8 level | u32 next |
  //   u32 node_count | node_count * { u32 id | u16 port | u16 host_len | host } |
  //   u32 bucket_count | bucket_count * u32 owner
  void Serialize(std::string* out) const;
  // Parses one map from the front of `in`; on success `*consumed` is the
  // byte count (so callers can read trailing payload).  Validates shape:
  // bucket_count == next + 2^level, every owner present in `nodes`.
  Status Deserialize(std::string_view in, size_t* consumed);

  // A fresh map over `nodes`: the smallest power-of-two bucket count that
  // gives every node at least one bucket (level = ceil(log2(n)), next = 0),
  // buckets dealt round-robin.  version = 1.
  static Result<ClusterMap> Bootstrap(std::vector<NodeInfo> nodes);
};

}  // namespace cluster
}  // namespace hashkit

#endif  // HASHKIT_SRC_CLUSTER_CLUSTER_MAP_H_
