#include "src/cluster/cluster_map.h"

#include <algorithm>

#include "src/util/endian.h"
#include "src/util/hash_funcs.h"

namespace hashkit {
namespace cluster {

namespace {

constexpr uint32_t kMapMagic = 0x504D4B48;  // "HKMP" little-endian
constexpr uint32_t kMaxNodes = 4096;
constexpr uint32_t kMaxBuckets = 1u << 20;
constexpr uint32_t kMaxHostLen = 255;

void AppendU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void AppendU16(std::string* out, uint16_t v) {
  uint8_t b[2];
  EncodeU16(b, v);
  out->append(reinterpret_cast<const char*>(b), 2);
}

void AppendU32(std::string* out, uint32_t v) {
  uint8_t b[4];
  EncodeU32(b, v);
  out->append(reinterpret_cast<const char*>(b), 4);
}

// Cursor over a string_view with bounds-checked reads; any short read
// poisons the cursor and the caller returns kCorruption.
struct Reader {
  std::string_view in;
  size_t pos = 0;
  bool ok = true;

  bool Have(size_t n) {
    if (!ok || in.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Have(1)) return 0;
    return static_cast<uint8_t>(in[pos++]);
  }
  uint16_t U16() {
    if (!Have(2)) return 0;
    const uint16_t v = DecodeU16(reinterpret_cast<const uint8_t*>(in.data() + pos));
    pos += 2;
    return v;
  }
  uint32_t U32() {
    if (!Have(4)) return 0;
    const uint32_t v = DecodeU32(reinterpret_cast<const uint8_t*>(in.data() + pos));
    pos += 4;
    return v;
  }
  std::string Bytes(size_t n) {
    if (!Have(n)) return {};
    std::string s(in.substr(pos, n));
    pos += n;
    return s;
  }
};

}  // namespace

uint32_t ClusterKeyHash(std::string_view key) {
  return HashBytes(HashFnv1a, key);
}

const NodeInfo* ClusterMap::FindNode(uint32_t node_id) const {
  for (const NodeInfo& n : nodes) {
    if (n.id == node_id) {
      return &n;
    }
  }
  return nullptr;
}

uint32_t ClusterMap::BucketsOwnedBy(uint32_t node_id) const {
  uint32_t count = 0;
  for (const uint32_t owner : bucket_owner) {
    if (owner == node_id) {
      ++count;
    }
  }
  return count;
}

uint32_t ClusterMap::AdvanceSplit(uint32_t target_node) {
  const uint32_t new_bucket = next + (1u << level);
  bucket_owner.push_back(target_node);
  ++next;
  if (next == (1u << level)) {  // every level-i bucket split: level rolls over
    ++level;
    next = 0;
  }
  ++version;
  return new_bucket;
}

void ClusterMap::Serialize(std::string* out) const {
  AppendU32(out, kMapMagic);
  AppendU32(out, version);
  AppendU8(out, level);
  AppendU32(out, next);
  AppendU32(out, static_cast<uint32_t>(nodes.size()));
  for (const NodeInfo& n : nodes) {
    AppendU32(out, n.id);
    AppendU16(out, n.port);
    AppendU16(out, static_cast<uint16_t>(n.host.size()));
    out->append(n.host);
  }
  AppendU32(out, bucket_count());
  for (const uint32_t owner : bucket_owner) {
    AppendU32(out, owner);
  }
}

Status ClusterMap::Deserialize(std::string_view in, size_t* consumed) {
  Reader r{in};
  if (r.U32() != kMapMagic) {
    return Status::Corruption("cluster map: bad magic");
  }
  ClusterMap m;
  m.version = r.U32();
  m.level = r.U8();
  m.next = r.U32();
  const uint32_t node_count = r.U32();
  if (!r.ok || m.level > 20 || node_count == 0 || node_count > kMaxNodes) {
    return Status::Corruption("cluster map: bad header");
  }
  m.nodes.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    NodeInfo n;
    n.id = r.U32();
    n.port = r.U16();
    const uint16_t host_len = r.U16();
    if (!r.ok || host_len == 0 || host_len > kMaxHostLen) {
      return Status::Corruption("cluster map: bad node entry");
    }
    n.host = r.Bytes(host_len);
    if (!r.ok) {
      return Status::Corruption("cluster map: truncated node entry");
    }
    m.nodes.push_back(std::move(n));
  }
  const uint32_t buckets = r.U32();
  if (!r.ok || buckets > kMaxBuckets || buckets != m.next + (1u << m.level) ||
      m.next >= (1u << m.level)) {
    return Status::Corruption("cluster map: bucket count does not match level/next");
  }
  m.bucket_owner.reserve(buckets);
  for (uint32_t i = 0; i < buckets; ++i) {
    const uint32_t owner = r.U32();
    if (!r.ok) {
      return Status::Corruption("cluster map: truncated bucket table");
    }
    m.bucket_owner.push_back(owner);
  }
  for (const uint32_t owner : m.bucket_owner) {
    if (m.FindNode(owner) == nullptr) {
      return Status::Corruption("cluster map: bucket owned by unknown node");
    }
  }
  if (m.version == 0) {
    return Status::Corruption("cluster map: version 0");
  }
  *this = std::move(m);
  if (consumed != nullptr) {
    *consumed = r.pos;
  }
  return Status::Ok();
}

Result<ClusterMap> ClusterMap::Bootstrap(std::vector<NodeInfo> nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("cluster bootstrap: no nodes");
  }
  if (nodes.size() > kMaxNodes) {
    return Status::InvalidArgument("cluster bootstrap: too many nodes");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i].id == nodes[j].id) {
        return Status::InvalidArgument("cluster bootstrap: duplicate node id");
      }
    }
  }
  // Deterministic bucket deal regardless of the order peers were listed in.
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
  ClusterMap m;
  m.version = 1;
  m.level = 0;
  while ((1u << m.level) < nodes.size()) {
    ++m.level;
  }
  m.next = 0;
  m.bucket_owner.resize(1u << m.level);
  for (uint32_t b = 0; b < m.bucket_count(); ++b) {
    m.bucket_owner[b] = nodes[b % nodes.size()].id;
  }
  m.nodes = std::move(nodes);
  return m;
}

}  // namespace cluster
}  // namespace hashkit
